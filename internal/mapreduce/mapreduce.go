// Package mapreduce implements the batch-oriented baseline data
// integration stack of the paper (§1, §2): ETL pipelines as chained
// MapReduce jobs over a distributed file system, with every stage's
// intermediate results materialised back into the DFS. Its cost structure —
// scheduler launch delay per stage, whole-file reads and writes, map/reduce
// barriers — is exactly what gives the MR/DFS stack its high end-to-end
// latency, which experiment E1 contrasts with Liquid's nearline path.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/dfs"
)

// KV is one key/value record in map input or output. Records are stored
// in files as tab-separated lines.
type KV struct {
	Key   string
	Value string
}

// Mapper transforms one input record into zero or more intermediate
// records via emit.
type Mapper func(key, value string, emit func(k, v string)) error

// Reducer folds all intermediate values of one key into zero or more
// output records.
type Reducer func(key string, values []string, emit func(k, v string)) error

// IdentityMapper passes records through.
func IdentityMapper(key, value string, emit func(k, v string)) error {
	emit(key, value)
	return nil
}

// IdentityReducer emits each value unchanged.
func IdentityReducer(key string, values []string, emit func(k, v string)) error {
	for _, v := range values {
		emit(key, v)
	}
	return nil
}

// JobSpec declares one MR job.
type JobSpec struct {
	// Name prefixes intermediate paths.
	Name string
	// InputPrefix selects the DFS input files.
	InputPrefix string
	// InputFiles, when non-empty, lists the exact input files instead of
	// scanning InputPrefix — the hook input adapters use (e.g.
	// archive.MRInput feeds committed feed segments straight to map
	// tasks).
	InputFiles []string
	// Decode parses one input file into records; nil selects DecodeLines
	// (tab-separated text). Input adapters pair it with InputFiles to run
	// jobs over non-text formats such as archived segments; a decode error
	// fails the job rather than silently dropping the file's records.
	Decode func([]byte) ([]KV, error)
	// OutputDir receives part-N output files.
	OutputDir string
	// Map and Reduce are the job's logic; nil selects identity.
	Map    Mapper
	Reduce Reducer
	// NumReducers is the reduce-side parallelism (default 2).
	NumReducers int
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Map == nil {
		s.Map = IdentityMapper
	}
	if s.Reduce == nil {
		s.Reduce = IdentityReducer
	}
	if s.NumReducers == 0 {
		s.NumReducers = 2
	}
	if s.Decode == nil {
		s.Decode = func(data []byte) ([]KV, error) { return DecodeLines(data), nil }
	}
	return s
}

// JobStats reports one job execution.
type JobStats struct {
	MapInputRecords     int
	IntermediateRecords int
	OutputRecords       int
	MapDuration         time.Duration
	ShuffleDuration     time.Duration
	ReduceDuration      time.Duration
	Total               time.Duration
}

// EngineConfig parameterises the MR engine.
type EngineConfig struct {
	// SchedulerDelay models cluster-scheduler latency paid at each job
	// launch and each phase barrier (container allocation in YARN terms).
	// Zero runs at memory speed for unit tests.
	SchedulerDelay time.Duration
	// MapParallelism bounds concurrent map tasks (default 4).
	MapParallelism int
	// Sleep is injectable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.MapParallelism == 0 {
		c.MapParallelism = 4
	}
	return c
}

func (c EngineConfig) pause() {
	if c.SchedulerDelay <= 0 {
		return
	}
	if c.Sleep != nil {
		c.Sleep(c.SchedulerDelay)
		return
	}
	time.Sleep(c.SchedulerDelay)
}

// Engine executes MR jobs over a DFS.
type Engine struct {
	fs  *dfs.FS
	cfg EngineConfig
}

// NewEngine binds an engine to a file system.
func NewEngine(fs *dfs.FS, cfg EngineConfig) *Engine {
	return &Engine{fs: fs, cfg: cfg.withDefaults()}
}

// EncodeLines renders records as file content.
func EncodeLines(records []KV) []byte {
	var b strings.Builder
	for _, r := range records {
		b.WriteString(r.Key)
		b.WriteByte('\t')
		b.WriteString(r.Value)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DecodeLines parses file content into records. Malformed lines (no tab)
// become records with an empty value.
func DecodeLines(data []byte) []KV {
	var out []KV
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		k, v, found := strings.Cut(line, "\t")
		if !found {
			out = append(out, KV{Key: line})
			continue
		}
		out = append(out, KV{Key: k, Value: v})
	}
	return out
}

// Run executes one job: map over every input file (intermediates
// materialised to the DFS, partitioned for the reducers), a barrier, then
// reduce each partition into an output file.
func (e *Engine) Run(spec JobSpec) (JobStats, error) {
	spec = spec.withDefaults()
	var stats JobStats
	start := time.Now()
	if spec.Name == "" || spec.OutputDir == "" {
		return stats, errors.New("mapreduce: Name and OutputDir are required")
	}
	inputs := spec.InputFiles
	if len(inputs) == 0 {
		for _, info := range e.fs.List(spec.InputPrefix) {
			inputs = append(inputs, info.Path)
		}
	}
	if len(inputs) == 0 {
		return stats, fmt.Errorf("mapreduce: no input under %q", spec.InputPrefix)
	}

	// Job launch: scheduler allocates containers.
	e.cfg.pause()

	// ---- Map phase: parallel over input files.
	mapStart := time.Now()
	tmpDir := fmt.Sprintf("tmp/%s/", spec.Name)
	type mapResult struct {
		inRecords  int
		outRecords int
		err        error
	}
	sem := make(chan struct{}, e.cfg.MapParallelism)
	results := make(chan mapResult, len(inputs))
	for m, path := range inputs {
		sem <- struct{}{}
		go func(m int, path string) {
			defer func() { <-sem }()
			res := e.runMapTask(spec, tmpDir, m, path)
			results <- res
		}(m, path)
	}
	for range inputs {
		res := <-results
		if res.err != nil {
			e.fs.DeletePrefix(tmpDir)
			return stats, res.err
		}
		stats.MapInputRecords += res.inRecords
		stats.IntermediateRecords += res.outRecords
	}
	stats.MapDuration = time.Since(mapStart)

	// ---- Barrier: reducers start only after every mapper finished.
	e.cfg.pause()

	// ---- Shuffle + reduce phase.
	shuffleStart := time.Now()
	var reduceDur time.Duration
	for r := 0; r < spec.NumReducers; r++ {
		groups, err := e.shuffle(tmpDir, len(inputs), r)
		if err != nil {
			e.fs.DeletePrefix(tmpDir)
			return stats, err
		}
		rs := time.Now()
		var out []KV
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		emit := func(k, v string) { out = append(out, KV{Key: k, Value: v}) }
		for _, k := range keys {
			if err := spec.Reduce(k, groups[k], emit); err != nil {
				e.fs.DeletePrefix(tmpDir)
				return stats, fmt.Errorf("mapreduce: reduce %q: %w", k, err)
			}
		}
		reduceDur += time.Since(rs)
		stats.OutputRecords += len(out)
		// Write to a temporary name, then commit by rename — the
		// standard output-committer protocol.
		tmpOut := fmt.Sprintf("%s_tmp-part-%05d", spec.OutputDir, r)
		finalOut := fmt.Sprintf("%s/part-%05d", spec.OutputDir, r)
		if err := e.fs.WriteFile(tmpOut, EncodeLines(out)); err != nil {
			e.fs.DeletePrefix(tmpDir)
			return stats, err
		}
		if err := e.fs.Rename(tmpOut, finalOut); err != nil {
			e.fs.DeletePrefix(tmpDir)
			return stats, err
		}
	}
	stats.ShuffleDuration = time.Since(shuffleStart) - reduceDur
	stats.ReduceDuration = reduceDur

	// Intermediates are garbage once the job commits.
	e.fs.DeletePrefix(tmpDir)
	stats.Total = time.Since(start)
	return stats, nil
}

// runMapTask maps one input file, materialising one intermediate file per
// reduce partition.
func (e *Engine) runMapTask(spec JobSpec, tmpDir string, m int, path string) (res struct {
	inRecords  int
	outRecords int
	err        error
}) {
	data, err := e.fs.ReadFile(path)
	if err != nil {
		res.err = err
		return res
	}
	records, err := spec.Decode(data)
	if err != nil {
		res.err = fmt.Errorf("mapreduce: decode %s: %w", path, err)
		return res
	}
	res.inRecords = len(records)
	parts := make([][]KV, spec.NumReducers)
	emit := func(k, v string) {
		h := fnv.New32a()
		h.Write([]byte(k))
		p := int(h.Sum32() % uint32(spec.NumReducers))
		parts[p] = append(parts[p], KV{Key: k, Value: v})
		res.outRecords++
	}
	for _, rec := range records {
		if err := spec.Map(rec.Key, rec.Value, emit); err != nil {
			res.err = fmt.Errorf("mapreduce: map %s: %w", path, err)
			return res
		}
	}
	// Materialise every partition — this DFS round trip per stage is the
	// latency the paper's nearline path eliminates.
	for p, recs := range parts {
		name := fmt.Sprintf("%smap-%05d-part-%05d", tmpDir, m, p)
		if err := e.fs.WriteFile(name, EncodeLines(recs)); err != nil {
			res.err = err
			return res
		}
	}
	return res
}

// shuffle gathers one reducer's partition from every map task and groups
// values by key.
func (e *Engine) shuffle(tmpDir string, numMaps, r int) (map[string][]string, error) {
	groups := make(map[string][]string)
	for m := 0; m < numMaps; m++ {
		name := fmt.Sprintf("%smap-%05d-part-%05d", tmpDir, m, r)
		data, err := e.fs.ReadFile(name)
		if err != nil {
			if errors.Is(err, dfs.ErrNotFound) {
				continue // mapper emitted nothing for this partition
			}
			return nil, err
		}
		for _, rec := range DecodeLines(data) {
			groups[rec.Key] = append(groups[rec.Key], rec.Value)
		}
	}
	return groups, nil
}

// Pipeline chains jobs: each stage's output directory is the next stage's
// input prefix, re-materialised through the DFS every time.
type Pipeline struct {
	Stages []JobSpec
}

// RunPipeline executes the stages sequentially, returning per-stage stats.
func (e *Engine) RunPipeline(p Pipeline) ([]JobStats, error) {
	if len(p.Stages) == 0 {
		return nil, errors.New("mapreduce: empty pipeline")
	}
	out := make([]JobStats, 0, len(p.Stages))
	for i, spec := range p.Stages {
		if i > 0 {
			// Later stages always read the previous stage's text output.
			spec.InputPrefix = p.Stages[i-1].OutputDir + "/"
			spec.InputFiles = nil
			spec.Decode = nil
		}
		stats, err := e.Run(spec)
		if err != nil {
			return out, fmt.Errorf("mapreduce: stage %d (%s): %w", i, spec.Name, err)
		}
		out = append(out, stats)
	}
	return out, nil
}

// CleanOutputs removes the output directories of all stages, so a
// pipeline can re-run from scratch (the paper's §2.1 re-execution model).
func (e *Engine) CleanOutputs(p Pipeline) {
	for _, spec := range p.Stages {
		e.fs.DeletePrefix(spec.OutputDir + "/")
	}
}

package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dfs"
)

func newEngine(t *testing.T, cfg EngineConfig) (*Engine, *dfs.FS) {
	t.Helper()
	fs, err := dfs.Open(dfs.Config{Dir: t.TempDir(), ChunkBytes: 1 << 16, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return NewEngine(fs, cfg), fs
}

// wordCount is the canonical MR job.
func wordCountSpec(in, out string) JobSpec {
	return JobSpec{
		Name:        "wordcount",
		InputPrefix: in,
		OutputDir:   out,
		Map: func(key, value string, emit func(k, v string)) error {
			for _, w := range strings.Fields(value) {
				emit(w, "1")
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(k, v string)) error {
			emit(key, strconv.Itoa(len(values)))
			return nil
		},
		NumReducers: 3,
	}
}

// readOutput gathers all part files of an output dir into a map.
func readOutput(t *testing.T, fs *dfs.FS, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, info := range fs.List(dir + "/") {
		data, err := fs.ReadFile(info.Path)
		if err != nil {
			t.Fatal(err)
		}
		for _, kv := range DecodeLines(data) {
			out[kv.Key] = kv.Value
		}
	}
	return out
}

func TestWordCount(t *testing.T) {
	e, fs := newEngine(t, EngineConfig{})
	fs.WriteFile("/in/a", EncodeLines([]KV{
		{Key: "1", Value: "the quick brown fox"},
		{Key: "2", Value: "the lazy dog"},
	}))
	fs.WriteFile("/in/b", EncodeLines([]KV{
		{Key: "3", Value: "the fox"},
	}))
	stats, err := e.Run(wordCountSpec("/in/", "/out"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapInputRecords != 3 {
		t.Fatalf("map input = %d", stats.MapInputRecords)
	}
	if stats.IntermediateRecords != 9 {
		t.Fatalf("intermediate = %d", stats.IntermediateRecords)
	}
	got := readOutput(t, fs, "/out")
	want := map[string]string{"the": "3", "fox": "2", "quick": "1", "brown": "1", "lazy": "1", "dog": "1"}
	if len(got) != len(want) {
		t.Fatalf("output = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s", k, got[k], v)
		}
	}
	// Intermediates cleaned up after commit.
	if n := len(fs.List("tmp/")); n != 0 {
		t.Fatalf("%d intermediate files leaked", n)
	}
}

func TestIdentityDefaults(t *testing.T) {
	e, fs := newEngine(t, EngineConfig{})
	fs.WriteFile("/in/x", EncodeLines([]KV{{Key: "k1", Value: "v1"}, {Key: "k2", Value: "v2"}}))
	if _, err := e.Run(JobSpec{Name: "id", InputPrefix: "/in/", OutputDir: "/out"}); err != nil {
		t.Fatal(err)
	}
	got := readOutput(t, fs, "/out")
	if got["k1"] != "v1" || got["k2"] != "v2" {
		t.Fatalf("identity output = %v", got)
	}
}

func TestEmptyInputFails(t *testing.T) {
	e, _ := newEngine(t, EngineConfig{})
	if _, err := e.Run(JobSpec{Name: "x", InputPrefix: "/none/", OutputDir: "/out"}); err == nil {
		t.Fatal("no-input job should fail")
	}
}

func TestMapErrorAborts(t *testing.T) {
	e, fs := newEngine(t, EngineConfig{})
	fs.WriteFile("/in/x", EncodeLines([]KV{{Key: "k", Value: "v"}}))
	_, err := e.Run(JobSpec{
		Name: "boom", InputPrefix: "/in/", OutputDir: "/out",
		Map: func(k, v string, emit func(k, v string)) error {
			return fmt.Errorf("map exploded")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "map exploded") {
		t.Fatalf("err = %v", err)
	}
	if n := len(fs.List("tmp/")); n != 0 {
		t.Fatalf("%d intermediate files leaked after failure", n)
	}
	if n := len(fs.List("/out/")); n != 0 {
		t.Fatal("failed job committed output")
	}
}

func TestPipelineChainsStages(t *testing.T) {
	e, fs := newEngine(t, EngineConfig{})
	fs.WriteFile("/raw/events", EncodeLines([]KV{
		{Key: "u1", Value: "5"},
		{Key: "u2", Value: "3"},
		{Key: "u1", Value: "2"},
	}))
	sum := func(key string, values []string, emit func(k, v string)) error {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(v)
			total += n
		}
		emit(key, strconv.Itoa(total))
		return nil
	}
	double := func(key, value string, emit func(k, v string)) error {
		n, _ := strconv.Atoi(value)
		emit(key, strconv.Itoa(n*2))
		return nil
	}
	p := Pipeline{Stages: []JobSpec{
		{Name: "s1", InputPrefix: "/raw/", OutputDir: "/stage1", Reduce: sum},
		{Name: "s2", OutputDir: "/stage2", Map: double},
	}}
	stats, err := e.RunPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	got := readOutput(t, fs, "/stage2")
	if got["u1"] != "14" || got["u2"] != "6" {
		t.Fatalf("pipeline output = %v", got)
	}
	// Re-run from scratch after cleaning (the paper's §2.1 model).
	e.CleanOutputs(p)
	if _, err := e.RunPipeline(p); err != nil {
		t.Fatalf("re-run: %v", err)
	}
}

func TestSchedulerDelayDominatesLatency(t *testing.T) {
	var slept time.Duration
	e, fs := newEngine(t, EngineConfig{
		SchedulerDelay: 100 * time.Millisecond,
		Sleep:          func(d time.Duration) { slept += d },
	})
	fs.WriteFile("/in/x", EncodeLines([]KV{{Key: "k", Value: "v"}}))
	if _, err := e.Run(JobSpec{Name: "t", InputPrefix: "/in/", OutputDir: "/out"}); err != nil {
		t.Fatal(err)
	}
	// One launch pause + one barrier pause per job.
	if slept != 200*time.Millisecond {
		t.Fatalf("scheduler slept %v, want 200ms", slept)
	}
}

func TestEncodeDecodeLines(t *testing.T) {
	in := []KV{{Key: "a", Value: "1\t2"}, {Key: "", Value: "x"}, {Key: "c", Value: ""}}
	got := DecodeLines(EncodeLines(in))
	if len(got) != 3 {
		t.Fatalf("decode = %v", got)
	}
	if got[0].Key != "a" || got[0].Value != "1\t2" {
		t.Fatalf("tab in value mishandled: %+v", got[0])
	}
	if DecodeLines([]byte("noTab\n"))[0].Key != "noTab" {
		t.Fatal("tabless line mishandled")
	}
	if len(DecodeLines(nil)) != 0 {
		t.Fatal("nil decode should be empty")
	}
}

func TestManyReducersPartitionAllKeys(t *testing.T) {
	e, fs := newEngine(t, EngineConfig{})
	var records []KV
	for i := 0; i < 200; i++ {
		records = append(records, KV{Key: fmt.Sprintf("key-%d", i), Value: "1"})
	}
	fs.WriteFile("/in/big", EncodeLines(records))
	spec := JobSpec{Name: "wide", InputPrefix: "/in/", OutputDir: "/out", NumReducers: 8}
	if _, err := e.Run(spec); err != nil {
		t.Fatal(err)
	}
	got := readOutput(t, fs, "/out")
	if len(got) != 200 {
		t.Fatalf("outputs = %d, want 200 (keys lost in partitioning)", len(got))
	}
	if parts := fs.List("/out/"); len(parts) != 8 {
		t.Fatalf("part files = %d, want 8", len(parts))
	}
}

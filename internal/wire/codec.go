// Package wire defines the binary client/broker protocol of the messaging
// layer: a length-prefixed frame carrying a request or response header and a
// typed message body. All brokers, clients, replica fetchers and the offset
// manager speak this protocol over TCP, mirroring how the paper's messaging
// layer exposes produce/fetch/metadata/offset APIs (§3.1, §4.2).
//
// Encoding conventions: integers are big-endian; strings are int16-length
// prefixed UTF-8 (-1 encodes the empty string is not used; empty strings are
// length 0); byte blobs are int32-length prefixed with -1 encoding nil;
// arrays are int32-count prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrDecode is returned when a message body cannot be decoded.
var ErrDecode = errors.New("wire: malformed message")

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf     []byte
	splices []splice
}

// splice marks a point in buf where an external byte range is stitched into
// the frame at write time; see Writer.Splice.
type splice struct {
	at  int
	src ByteRange
}

// ByteRange is an externally stored byte region a response splices into its
// frame without copying it through the encode buffer — the zero-copy fetch
// path (a raw batch range of a segment file). Len must be stable for the
// lifetime of the write and WriteTo must produce exactly Len bytes; the
// framed writer precomputes the frame length from it before streaming.
type ByteRange interface {
	Len() int64
	WriteTo(w io.Writer) (int64, error)
}

// Bytes returns the encoded bytes accumulated so far. A writer carrying
// pending splices returns only the buffered part; splices are understood
// solely by the framed write path (WriteResponseFrame).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes accumulated.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer for reuse, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.splices = w.splices[:0]
}

// Splice appends an int32 length prefix for src and records src to be
// streamed into the frame at this position by the framed write path. The
// bytes of src never enter the encode buffer — on TCP connections they move
// file-to-socket via sendfile.
func (w *Writer) Splice(src ByteRange) {
	w.Int32(int32(src.Len()))
	w.splices = append(w.splices, splice{at: len(w.buf), src: src})
}

// Int8 appends a signed 8-bit integer.
func (w *Writer) Int8(v int8) { w.buf = append(w.buf, byte(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Int16 appends a signed 16-bit integer.
func (w *Writer) Int16(v int16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v))
}

// Int32 appends a signed 32-bit integer.
func (w *Writer) Int32(v int32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v))
}

// Int64 appends a signed 64-bit integer.
func (w *Writer) Int64(v int64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v))
}

// String appends an int16-length-prefixed string.
func (w *Writer) String(s string) {
	if len(s) > math.MaxInt16 {
		s = s[:math.MaxInt16]
	}
	w.Int16(int16(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes32 appends an int32-length-prefixed byte blob; nil encodes as -1.
func (w *Writer) Bytes32(b []byte) {
	if b == nil {
		w.Int32(-1)
		return
	}
	w.Int32(int32(len(b)))
	w.buf = append(w.buf, b...)
}

// ArrayLen appends an array count.
func (w *Writer) ArrayLen(n int) { w.Int32(int32(n)) }

// StringArray appends an int32-count-prefixed array of strings.
func (w *Writer) StringArray(ss []string) {
	w.ArrayLen(len(ss))
	for _, s := range ss {
		w.String(s)
	}
}

// Int32Array appends an int32-count-prefixed array of int32s.
func (w *Writer) Int32Array(vs []int32) {
	w.ArrayLen(len(vs))
	for _, v := range vs {
		w.Int32(v)
	}
}

// Reader decodes a message with a sticky error: after the first decoding
// failure all subsequent reads return zero values and Err reports the error.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrDecode
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Int8 reads a signed 8-bit integer.
func (r *Reader) Int8() int8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return int8(b[0])
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Int8() != 0 }

// Int16 reads a signed 16-bit integer.
func (r *Reader) Int16() int16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return int16(binary.BigEndian.Uint16(b))
}

// Int32 reads a signed 32-bit integer.
func (r *Reader) Int32() int32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return int32(binary.BigEndian.Uint32(b))
}

// Int64 reads a signed 64-bit integer.
func (r *Reader) Int64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// String reads an int16-length-prefixed string.
func (r *Reader) String() string {
	n := r.Int16()
	if n < 0 {
		r.fail()
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

// Bytes32 reads an int32-length-prefixed byte blob (-1 decodes to nil).
// The returned slice is a copy and safe to retain.
func (r *Reader) Bytes32() []byte {
	n := r.Int32()
	if n == -1 {
		return nil
	}
	if n < 0 {
		r.fail()
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// RawBytes32 reads an int32-length-prefixed byte blob (-1 decodes to nil)
// WITHOUT copying: the returned slice aliases the Reader's buffer. It
// exists for the two hot-path record blobs — produce-request and
// fetch-response Records — where the bytes are consumed before the
// underlying frame buffer can be reused. Any caller that retains the slice
// past that point must copy it (or use Bytes32).
func (r *Reader) RawBytes32() []byte {
	n := r.Int32()
	if n == -1 {
		return nil
	}
	if n < 0 {
		r.fail()
		return nil
	}
	return r.take(int(n))
}

// ArrayLen reads an array count, bounding it by the remaining bytes so a
// corrupt count cannot cause huge allocations.
func (r *Reader) ArrayLen() int {
	n := r.Int32()
	if n < 0 || int(n) > r.Remaining() {
		if n != 0 {
			r.fail()
		}
		return 0
	}
	return int(n)
}

// StringArray reads an int32-count-prefixed array of strings.
func (r *Reader) StringArray() []string {
	n := r.ArrayLen()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.String())
	}
	return out
}

// Int32Array reads an int32-count-prefixed array of int32s.
func (r *Reader) Int32Array() []int32 {
	n := r.ArrayLen()
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.Int32())
	}
	return out
}

// Done reports an error unless the reader consumed the whole buffer cleanly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(r.buf)-r.pos)
	}
	return nil
}

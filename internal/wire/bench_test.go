package wire

import (
	"io"
	"testing"
)

// benchFetchResponse builds a fetch response carrying one 32KiB record blob
// — the shape of the broker's hottest write.
func benchFetchResponse() *FetchResponse {
	return &FetchResponse{Topics: []FetchRespTopic{{
		Name: "events",
		Partitions: []FetchRespPartition{{
			Partition:     0,
			HighWatermark: 1 << 20,
			Records:       make([]byte, 32<<10),
		}},
	}}}
}

func BenchmarkWriteResponseFrame(b *testing.B) {
	resp := benchFetchResponse()
	b.ReportAllocs()
	b.SetBytes(32 << 10)
	for i := 0; i < b.N; i++ {
		if err := WriteResponseFrame(io.Discard, 1, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeResponseLegacy is the pre-pooling path, kept as the
// comparison baseline for B/op.
func BenchmarkEncodeResponseLegacy(b *testing.B) {
	resp := benchFetchResponse()
	b.ReportAllocs()
	b.SetBytes(32 << 10)
	for i := 0; i < b.N; i++ {
		payload := EncodeResponse(1, resp)
		if err := WriteFrame(io.Discard, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// frameSource replays one encoded frame forever.
type frameSource struct {
	frame []byte
	pos   int
}

func (s *frameSource) Read(p []byte) (int, error) {
	if s.pos == len(s.frame) {
		s.pos = 0
	}
	n := copy(p, s.frame[s.pos:])
	s.pos += n
	return n, nil
}

func BenchmarkReadFrameInto(b *testing.B) {
	var w Writer
	w.Int32(0)
	w.Bytes32(make([]byte, 32<<10))
	frame := make([]byte, 4+w.Len())
	copy(frame[4:], w.Bytes())
	frame[1] = byte(w.Len() >> 16)
	frame[2] = byte(w.Len() >> 8)
	frame[3] = byte(w.Len())
	src := &frameSource{frame: frame}
	var buf []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		payload, err := ReadFrameInto(src, buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = payload
	}
}

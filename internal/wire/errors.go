package wire

import (
	"errors"
	"fmt"
)

// ErrorCode is a protocol-level error carried in responses. Codes travel on
// the wire as int16 values; Err converts a code back into a Go error on the
// client side.
type ErrorCode int16

// Protocol error codes.
const (
	ErrNone                    ErrorCode = 0
	ErrUnknown                 ErrorCode = 1
	ErrCorruptMessage          ErrorCode = 2
	ErrUnknownTopicOrPartition ErrorCode = 3
	ErrLeaderNotAvailable      ErrorCode = 4
	ErrNotLeaderForPartition   ErrorCode = 5
	ErrRequestTimedOut         ErrorCode = 6
	ErrOffsetOutOfRange        ErrorCode = 7
	ErrCoordinatorNotAvailable ErrorCode = 8
	ErrNotCoordinator          ErrorCode = 9
	ErrIllegalGeneration       ErrorCode = 10
	ErrUnknownMemberID         ErrorCode = 11
	ErrRebalanceInProgress     ErrorCode = 12
	ErrInvalidTopic            ErrorCode = 13
	ErrTopicAlreadyExists      ErrorCode = 14
	ErrNotEnoughReplicas       ErrorCode = 15
	ErrInvalidRequest          ErrorCode = 16
	ErrUnsupportedAPI          ErrorCode = 17
	ErrBrokerNotAvailable      ErrorCode = 18
	ErrMessageTooLarge         ErrorCode = 19
	ErrStaleLeaderEpoch        ErrorCode = 20
	// ErrTableNotServed means the broker leads the partition but its table
	// materializer is not attached (yet, or anymore). Retriable: the host
	// attaches asynchronously after leadership is assumed.
	ErrTableNotServed ErrorCode = 21
	// ErrTableStale means the materializer's applied offset lags the high
	// watermark beyond the bound the read requested. Retriable: the
	// materializer catches up continuously.
	ErrTableStale ErrorCode = 22
	// ErrDuplicateSequence means the batch's (producerID, epoch, sequence)
	// was already appended: the broker deduplicated a retry and returned
	// the original base offset. Success-equivalent, never retried — the
	// records are in the log exactly once.
	ErrDuplicateSequence ErrorCode = 23
	// ErrOutOfOrderSequence means the batch's base sequence is neither the
	// next expected one nor a recent duplicate: an earlier batch from this
	// producer was lost, or the retry fell out of the broker's bounded
	// dedup window. Terminal — blindly re-sending risks gaps or duplicates,
	// so the producer must surface the error.
	ErrOutOfOrderSequence ErrorCode = 24
	// ErrFencedEpoch means a newer instance of this producer id registered
	// a higher epoch; this zombie's appends are rejected. Terminal.
	ErrFencedEpoch ErrorCode = 25
)

var errorNames = map[ErrorCode]string{
	ErrNone:                    "none",
	ErrUnknown:                 "unknown error",
	ErrCorruptMessage:          "corrupt message",
	ErrUnknownTopicOrPartition: "unknown topic or partition",
	ErrLeaderNotAvailable:      "leader not available",
	ErrNotLeaderForPartition:   "not leader for partition",
	ErrRequestTimedOut:         "request timed out",
	ErrOffsetOutOfRange:        "offset out of range",
	ErrCoordinatorNotAvailable: "group coordinator not available",
	ErrNotCoordinator:          "not coordinator for group",
	ErrIllegalGeneration:       "illegal group generation",
	ErrUnknownMemberID:         "unknown member id",
	ErrRebalanceInProgress:     "group rebalance in progress",
	ErrInvalidTopic:            "invalid topic",
	ErrTopicAlreadyExists:      "topic already exists",
	ErrNotEnoughReplicas:       "not enough in-sync replicas",
	ErrInvalidRequest:          "invalid request",
	ErrUnsupportedAPI:          "unsupported api",
	ErrBrokerNotAvailable:      "broker not available",
	ErrMessageTooLarge:         "message too large",
	ErrStaleLeaderEpoch:        "stale leader epoch",
	ErrTableNotServed:          "table not served by this broker",
	ErrTableStale:              "table read exceeds staleness bound",
	ErrDuplicateSequence:       "duplicate producer sequence (already appended)",
	ErrOutOfOrderSequence:      "out of order producer sequence",
	ErrFencedEpoch:             "producer epoch fenced by newer instance",
}

// String returns a human-readable name for the code.
func (e ErrorCode) String() string {
	if s, ok := errorNames[e]; ok {
		return s
	}
	return fmt.Sprintf("error code %d", int16(e))
}

// protocolError wraps an ErrorCode as a Go error.
type protocolError struct{ code ErrorCode }

func (p *protocolError) Error() string {
	return "liquid: " + p.code.String()
}

// Code extracts the protocol code from an error produced by ErrorCode.Err,
// unwrapping fmt.Errorf %w chains, returning ErrNone for nil and ErrUnknown
// for foreign errors.
func Code(err error) ErrorCode {
	if err == nil {
		return ErrNone
	}
	var pe *protocolError
	if errors.As(err, &pe) {
		return pe.code
	}
	return ErrUnknown
}

// Err converts the code to a Go error (nil for ErrNone). Errors for the same
// code compare equal via Code.
func (e ErrorCode) Err() error {
	if e == ErrNone {
		return nil
	}
	return &protocolError{code: e}
}

// retriable classifies every protocol code: true means a request failing
// with this code may succeed on retry after refreshing metadata (leadership
// moved, coordinator moved, transient unavailability). Exhaustive by
// construction — liquid-vet's wireclass analyzer rejects any code missing
// from this table, so adding a code forces an explicit retry decision.
var retriable = map[ErrorCode]bool{
	ErrNone:               false,
	ErrUnknown:            false,
	ErrCorruptMessage:     false,
	ErrOffsetOutOfRange:   false,
	ErrIllegalGeneration:  false,
	ErrUnknownMemberID:    false,
	ErrInvalidTopic:       false,
	ErrTopicAlreadyExists: false,
	ErrInvalidRequest:     false,
	ErrUnsupportedAPI:     false,
	ErrMessageTooLarge:    false,

	ErrLeaderNotAvailable:      true,
	ErrNotLeaderForPartition:   true,
	ErrRequestTimedOut:         true,
	ErrCoordinatorNotAvailable: true,
	ErrNotCoordinator:          true,
	ErrRebalanceInProgress:     true,
	ErrBrokerNotAvailable:      true,
	ErrNotEnoughReplicas:       true,
	ErrStaleLeaderEpoch:        true,
	ErrTableNotServed:          true,
	ErrTableStale:              true,
	// Topic metadata propagates to brokers asynchronously after creation,
	// so a brief unknown-topic window is normal.
	ErrUnknownTopicOrPartition: true,

	// The idempotent-produce codes are deliberately NOT retriable:
	// ErrDuplicateSequence is success (the producer treats it as an ack for
	// the original offset), while ErrOutOfOrderSequence and ErrFencedEpoch
	// are terminal — re-sending cannot fix a lost predecessor batch or a
	// fenced zombie, it can only create gaps or duplicates.
	ErrDuplicateSequence:  false,
	ErrOutOfOrderSequence: false,
	ErrFencedEpoch:        false,
}

// Retriable reports whether a request failing with this code may succeed on
// retry after refreshing metadata. Clients use it to drive their retry
// loops. Codes absent from the table (foreign or future) are not retried.
func (e ErrorCode) Retriable() bool {
	return retriable[e]
}

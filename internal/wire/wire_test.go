package wire

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCodecPrimitivesRoundTrip(t *testing.T) {
	var w Writer
	w.Int8(-3)
	w.Bool(true)
	w.Int16(-1234)
	w.Int32(1 << 30)
	w.Int64(-(1 << 60))
	w.String("héllo")
	w.Bytes32([]byte{1, 2, 3})
	w.Bytes32(nil)
	w.StringArray([]string{"a", "", "c"})
	w.Int32Array([]int32{7, -8})

	r := NewReader(w.Bytes())
	if got := r.Int8(); got != -3 {
		t.Fatalf("Int8 = %d", got)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if got := r.Int16(); got != -1234 {
		t.Fatalf("Int16 = %d", got)
	}
	if got := r.Int32(); got != 1<<30 {
		t.Fatalf("Int32 = %d", got)
	}
	if got := r.Int64(); got != -(1 << 60) {
		t.Fatalf("Int64 = %d", got)
	}
	if got := r.String(); got != "héllo" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes32 = %v", got)
	}
	if got := r.Bytes32(); got != nil {
		t.Fatalf("nil Bytes32 = %v", got)
	}
	if got := r.StringArray(); !reflect.DeepEqual(got, []string{"a", "", "c"}) {
		t.Fatalf("StringArray = %v", got)
	}
	if got := r.Int32Array(); !reflect.DeepEqual(got, []int32{7, -8}) {
		t.Fatalf("Int32Array = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x00}) // too short for Int32
	_ = r.Int32()
	if r.Err() == nil {
		t.Fatal("expected error after short read")
	}
	// All further reads return zero values without panicking.
	if r.Int64() != 0 || r.String() != "" || r.Bytes32() != nil {
		t.Fatal("post-error reads should return zero values")
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	var w Writer
	w.Int32(1)
	w.Int32(2)
	r := NewReader(w.Bytes())
	_ = r.Int32()
	if err := r.Done(); err == nil {
		t.Fatal("Done should report trailing bytes")
	}
}

func TestCorruptArrayLenRejected(t *testing.T) {
	var w Writer
	w.Int32(1 << 30) // absurd count with no payload
	r := NewReader(w.Bytes())
	n := r.ArrayLen()
	if n != 0 || r.Err() == nil {
		t.Fatalf("ArrayLen = %d, err = %v; want 0 and error", n, r.Err())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frame")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q", got)
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB length prefix
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// roundTrip encodes a message and decodes it into out, failing on error.
func roundTrip(t *testing.T, in, out Message) {
	t.Helper()
	var w Writer
	in.Encode(&w)
	r := NewReader(w.Bytes())
	out.Decode(r)
	if err := r.Done(); err != nil {
		t.Fatalf("decode %T: %v", in, err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	roundTrip(t, &ProduceRequest{
		RequiredAcks: -1,
		TimeoutMs:    5000,
		Topics: []ProduceTopic{{
			Name: "events",
			Partitions: []ProducePartition{
				{Partition: 0, Records: []byte("batchbytes")},
				{Partition: 3, Records: nil},
			},
		}},
	}, &ProduceRequest{})

	roundTrip(t, &ProduceResponse{
		ThrottleTimeMs: 250,
		Topics: []ProduceRespTopic{{
			Name: "events",
			Partitions: []ProduceRespPartition{
				{Partition: 0, Err: ErrNone, BaseOffset: 17, HighWatermark: 20},
				{Partition: 1, Err: ErrNotLeaderForPartition, BaseOffset: -1},
			},
		}},
	}, &ProduceResponse{})

	roundTrip(t, &FetchRequest{
		ReplicaID: -1, MaxWaitMs: 100, MinBytes: 1, MaxBytes: 1 << 20,
		Topics: []FetchTopic{{
			Name:       "events",
			Partitions: []FetchPartition{{Partition: 2, Offset: 99, MaxBytes: 4096}},
		}},
	}, &FetchRequest{})

	roundTrip(t, &FetchResponse{
		ThrottleTimeMs: 125,
		Topics: []FetchRespTopic{{
			Name: "events",
			Partitions: []FetchRespPartition{{
				Partition: 2, Err: ErrNone, HighWatermark: 120,
				LogStartOffset: 5, Records: []byte{1, 2, 3},
			}},
		}},
	}, &FetchResponse{})

	roundTrip(t, &ListOffsetsRequest{
		Topics: []ListOffsetsTopic{{
			Name:       "t",
			Partitions: []ListOffsetsPartition{{Partition: 0, Timestamp: TimestampLatest}},
		}},
	}, &ListOffsetsRequest{})

	roundTrip(t, &ListOffsetsResponse{
		Topics: []ListOffsetsRespTopic{{
			Name:       "t",
			Partitions: []ListOffsetsRespPartition{{Partition: 0, Timestamp: 88, Offset: 3}},
		}},
	}, &ListOffsetsResponse{})

	roundTrip(t, &MetadataRequest{Topics: []string{"a", "b"}}, &MetadataRequest{})

	roundTrip(t, &MetadataResponse{
		Brokers:      []BrokerMeta{{ID: 1, Host: "localhost", Port: 9092}},
		ControllerID: 1,
		Topics: []TopicMeta{{
			Err: ErrNone, Name: "a", Compacted: true,
			Partitions: []PartitionMeta{{
				ID: 0, Leader: 1, LeaderEpoch: 4,
				Replicas: []int32{1, 2, 3}, ISR: []int32{1, 2},
			}},
		}},
	}, &MetadataResponse{})

	roundTrip(t, &CreateTopicsRequest{
		Topics: []TopicSpec{{
			Name: "new", NumPartitions: 8, ReplicationFactor: 3,
			RetentionMs: 3600_000, RetentionBytes: -1, SegmentBytes: 1 << 20, Compacted: true,
		}},
	}, &CreateTopicsRequest{})

	roundTrip(t, &CreateTopicsResponse{
		Results: []TopicResult{{Name: "new", Err: ErrTopicAlreadyExists}},
	}, &CreateTopicsResponse{})

	roundTrip(t, &DeleteTopicsRequest{Names: []string{"old"}}, &DeleteTopicsRequest{})
	roundTrip(t, &DeleteTopicsResponse{
		Results: []TopicResult{{Name: "old", Err: ErrNone}},
	}, &DeleteTopicsResponse{})

	roundTrip(t, &OffsetCommitRequest{
		Group: "g", Generation: 2, MemberID: "m-1",
		Topics: []OffsetCommitTopic{{
			Name: "t",
			Partitions: []OffsetCommitPartition{
				{Partition: 0, Offset: 42, Metadata: `{"version":"v2"}`},
			},
		}},
	}, &OffsetCommitRequest{})

	roundTrip(t, &OffsetCommitResponse{
		Topics: []OffsetCommitRespTopic{{
			Name:       "t",
			Partitions: []OffsetCommitRespPartition{{Partition: 0, Err: ErrNone}},
		}},
	}, &OffsetCommitResponse{})

	roundTrip(t, &OffsetFetchRequest{
		Group:  "g",
		Topics: []OffsetFetchTopic{{Name: "t", Partitions: []int32{0, 1}}},
	}, &OffsetFetchRequest{})

	roundTrip(t, &OffsetFetchResponse{
		Topics: []OffsetFetchRespTopic{{
			Name: "t",
			Partitions: []OffsetFetchRespPartition{
				{Partition: 0, Offset: 42, Metadata: "m"},
				{Partition: 1, Offset: -1},
			},
		}},
	}, &OffsetFetchResponse{})

	roundTrip(t, &OffsetQueryRequest{
		Group: "g", Topic: "t", Partition: 1,
		AnnotationKey: "version", AnnotationValue: "v1",
	}, &OffsetQueryRequest{})

	roundTrip(t, &OffsetQueryResponse{
		Found: true, Offset: 31, Metadata: `{"version":"v1"}`,
	}, &OffsetQueryResponse{})

	roundTrip(t, &FindCoordinatorRequest{Key: "g"}, &FindCoordinatorRequest{})
	roundTrip(t, &FindCoordinatorResponse{NodeID: 2, Host: "h", Port: 1}, &FindCoordinatorResponse{})

	roundTrip(t, &JoinGroupRequest{
		Group: "g", SessionTimeoutMs: 10000, RebalanceTimeoutMs: 30000,
		MemberID: "", Protocol: "range", Metadata: []byte("topics"),
	}, &JoinGroupRequest{})

	roundTrip(t, &JoinGroupResponse{
		Generation: 1, Protocol: "range", LeaderID: "m-1", MemberID: "m-1",
		Members: []GroupMember{{MemberID: "m-1", Metadata: []byte("topics")}},
	}, &JoinGroupResponse{})

	roundTrip(t, &SyncGroupRequest{
		Group: "g", Generation: 1, MemberID: "m-1",
		Assignments: []GroupAssignment{{MemberID: "m-1", Assignment: []byte("t:0,1")}},
	}, &SyncGroupRequest{})

	roundTrip(t, &SyncGroupResponse{Assignment: []byte("t:0,1")}, &SyncGroupResponse{})
	roundTrip(t, &HeartbeatRequest{Group: "g", Generation: 1, MemberID: "m"}, &HeartbeatRequest{})
	roundTrip(t, &HeartbeatResponse{Err: ErrRebalanceInProgress}, &HeartbeatResponse{})
	roundTrip(t, &LeaveGroupRequest{Group: "g", MemberID: "m"}, &LeaveGroupRequest{})
	roundTrip(t, &LeaveGroupResponse{}, &LeaveGroupResponse{})

	roundTrip(t, &CreateTopicsRequest{
		Topics: []TopicSpec{{
			Name: "tbl", NumPartitions: 4, ReplicationFactor: 2,
			Compacted: true, Table: true,
		}},
	}, &CreateTopicsRequest{})

	roundTrip(t, &TableGetRequest{
		Topic: "tbl", Partition: 2, Key: []byte("user-17"), MaxLagOffsets: -1,
	}, &TableGetRequest{})

	roundTrip(t, &TableGetResponse{
		Err: ErrNone, Found: true, Value: []byte("v"),
		AppliedOffset: 41, HighWatermark: 41, LeaderEpoch: 3,
	}, &TableGetResponse{})

	roundTrip(t, &TableGetResponse{
		Err: ErrTableStale, AppliedOffset: 10, HighWatermark: 40, LeaderEpoch: 1,
	}, &TableGetResponse{})

	roundTrip(t, &TableRangeRequest{
		Topic: "tbl", Partition: 0, From: []byte("a"), To: nil,
		Limit: 100, MaxLagOffsets: 0,
	}, &TableRangeRequest{})

	roundTrip(t, &TableRangeResponse{
		Err: ErrNone,
		Entries: []TableEntry{
			{Key: []byte("a"), Value: []byte("1")},
			{Key: []byte("b"), Value: []byte("2")},
		},
		More: true, ApproxLen: 1234,
		AppliedOffset: 9, HighWatermark: 9, LeaderEpoch: 2,
	}, &TableRangeResponse{})
}

func TestRequestEnvelope(t *testing.T) {
	hdr := RequestHeader{API: APIProduce, CorrelationID: 7, ClientID: "test"}
	body := &MetadataRequest{Topics: []string{"x"}}
	payload := EncodeRequest(&hdr, body)
	gotHdr, r, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if gotHdr != hdr {
		t.Fatalf("header = %+v, want %+v", gotHdr, hdr)
	}
	var gotBody MetadataRequest
	gotBody.Decode(r)
	if err := r.Done(); err != nil {
		t.Fatalf("body decode: %v", err)
	}
	if !reflect.DeepEqual(&gotBody, body) {
		t.Fatalf("body = %+v", gotBody)
	}
}

func TestResponseEnvelope(t *testing.T) {
	payload := EncodeResponse(99, &HeartbeatResponse{Err: ErrNone})
	id, r, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if id != 99 {
		t.Fatalf("correlation id = %d", id)
	}
	var resp HeartbeatResponse
	resp.Decode(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRequestBodyCoversAllAPIs(t *testing.T) {
	for _, api := range []APIKey{
		APIProduce, APIFetch, APIListOffsets, APIMetadata, APICreateTopics,
		APIDeleteTopics, APIOffsetCommit, APIOffsetFetch, APIFindCoordinator,
		APIJoinGroup, APIHeartbeat, APILeaveGroup, APISyncGroup, APIOffsetQuery,
		APITierStatus, APIDescribeQuotas, APIAlterQuotas, APITableGet,
		APITableRange, APIInitProducer,
	} {
		if _, ok := NewRequestBody(api); !ok {
			t.Errorf("NewRequestBody(%d) not implemented", api)
		}
	}
	if _, ok := NewRequestBody(APIKey(99)); ok {
		t.Error("unknown API key should not resolve")
	}
}

func TestErrorCodes(t *testing.T) {
	if ErrNone.Err() != nil {
		t.Fatal("ErrNone.Err() should be nil")
	}
	err := ErrNotLeaderForPartition.Err()
	if err == nil || Code(err) != ErrNotLeaderForPartition {
		t.Fatalf("code round trip failed: %v", err)
	}
	if Code(nil) != ErrNone {
		t.Fatal("Code(nil) != ErrNone")
	}
	if !ErrNotLeaderForPartition.Retriable() {
		t.Fatal("NotLeader should be retriable")
	}
	if ErrOffsetOutOfRange.Retriable() {
		t.Fatal("OffsetOutOfRange should not be retriable")
	}
	if ErrorCode(999).String() == "" {
		t.Fatal("unknown code should still render")
	}
}

// TestIdempotentProduceCodeClassification pins the client-visible contract
// of the idempotent-produce codes, through the same Code() unwrapping the
// client applies to wrapped errors: ErrDuplicateSequence is
// success-equivalent (the retry's records are already in the log — the
// producer takes the returned base offset as its ack and MUST NOT resend),
// while ErrOutOfOrderSequence and ErrFencedEpoch are terminal — resending
// cannot recover a lost predecessor batch or un-fence a zombie epoch.
func TestIdempotentProduceCodeClassification(t *testing.T) {
	cases := []struct {
		code      ErrorCode
		retriable bool
		terminal  bool // delivery failed for good; the producer must re-init
	}{
		{ErrDuplicateSequence, false, false}, // success-equivalent, not a failure at all
		{ErrOutOfOrderSequence, false, true},
		{ErrFencedEpoch, false, true},
		// Contrast rows: the codes the produce retry loop does spin on.
		{ErrNotLeaderForPartition, true, false},
		{ErrLeaderNotAvailable, true, false},
	}
	for _, tc := range cases {
		if got := tc.code.Retriable(); got != tc.retriable {
			t.Errorf("%v.Retriable() = %v, want %v", tc.code, got, tc.retriable)
		}
		// The client sees these codes through wrapped errors; Code must
		// recover them through %w chains.
		wrapped := fmt.Errorf("client: produce t/0: %w", tc.code.Err())
		if got := Code(wrapped); got != tc.code {
			t.Errorf("Code(wrapped %v) = %v", tc.code, got)
		}
		if tc.terminal && (tc.code.Retriable() || tc.code == ErrNone) {
			t.Errorf("%v classified terminal but retriable", tc.code)
		}
	}
}

// TestQuickStringRoundTrip property-checks string codec over arbitrary
// content including NULs and invalid UTF-8.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 1<<15-1 {
			s = s[:1<<15-1]
		}
		var w Writer
		w.String(s)
		r := NewReader(w.Bytes())
		got := r.String()
		return got == s && r.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProduceRequestRoundTrip property-checks a nested message type.
func TestQuickProduceRequestRoundTrip(t *testing.T) {
	f := func(acks int16, topic string, part int32, records []byte) bool {
		in := &ProduceRequest{
			RequiredAcks: acks,
			Topics: []ProduceTopic{{
				Name:       topic,
				Partitions: []ProducePartition{{Partition: part, Records: records}},
			}},
		}
		if len(topic) > 1000 {
			return true
		}
		var w Writer
		in.Encode(&w)
		out := &ProduceRequest{}
		r := NewReader(w.Bytes())
		out.Decode(r)
		return r.Done() == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaMessageRoundTrips(t *testing.T) {
	roundTrip(t, &DescribeQuotasRequest{Principals: []string{"tenant-a", "tenant-b"}}, &DescribeQuotasRequest{})
	roundTrip(t, &DescribeQuotasResponse{
		Entries: []QuotaEntry{
			{Principal: "tenant-a", ProduceBytesPerSec: 1 << 20, FetchBytesPerSec: 4 << 20, RequestsPerSec: 100},
			{Principal: "tenant-b", RequestsPerSec: 10},
		},
	}, &DescribeQuotasResponse{})
	roundTrip(t, &AlterQuotasRequest{
		Ops: []AlterQuotaOp{
			{Entry: QuotaEntry{Principal: "tenant-a", ProduceBytesPerSec: 1 << 20}},
			{Entry: QuotaEntry{Principal: "tenant-b"}, Remove: true},
		},
	}, &AlterQuotasRequest{})
	roundTrip(t, &AlterQuotasResponse{
		Results: []TopicResult{{Name: "tenant-a"}, {Name: "", Err: ErrInvalidRequest}},
	}, &AlterQuotasResponse{})
}

func TestTierMessageRoundTrips(t *testing.T) {
	roundTrip(t, &TierStatusRequest{Topics: []string{"events", "logs"}}, &TierStatusRequest{})
	roundTrip(t, &TierStatusResponse{
		Topics: []TierStatusTopic{{
			Name: "events",
			Partitions: []TierStatusPartition{{
				Partition:        2,
				Err:              ErrNotLeaderForPartition,
				Tiered:           true,
				EarliestOffset:   7,
				LocalStartOffset: 4000,
				NextOffset:       9000,
				TieredNextOffset: 4200,
				LocalSegments:    3,
				LocalBytes:       1 << 20,
				TieredSegments:   40,
				TieredBytes:      9 << 20,
				TieredRecords:    123456,
			}},
		}},
	}, &TierStatusResponse{})
	roundTrip(t, &CreateTopicsRequest{Topics: []TopicSpec{{
		Name:              "tiered",
		NumPartitions:     4,
		ReplicationFactor: 3,
		RetentionMs:       -1,
		RetentionBytes:    1 << 40,
		SegmentBytes:      1 << 20,
		Tiered:            true,
		HotRetentionMs:    3600_000,
		HotRetentionBytes: 64 << 20,
	}}}, &CreateTopicsRequest{})
}

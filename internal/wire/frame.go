package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single protocol frame. Frames beyond this are
// rejected to protect brokers from corrupt length prefixes.
const MaxFrameSize = 64 << 20 // 64 MiB

// ErrFrameTooLarge reports a length prefix beyond MaxFrameSize — the framing
// violation a corrupt, truncated or byte-flipped stream produces. Both read
// paths return it (wrapped with the offending size) so transports and fault
// injectors can distinguish a framing violation from plain connection loss.
var ErrFrameTooLarge = errors.New("wire: frame exceeds max size")

// WriteFrame writes a length-prefixed frame containing payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes, max %d", ErrFrameTooLarge, len(payload), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes, max %d", ErrFrameTooLarge, n, MaxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeRequest serialises a request header + body into one payload.
func EncodeRequest(hdr *RequestHeader, body Message) []byte {
	var w Writer
	hdr.Encode(&w)
	body.Encode(&w)
	return w.Bytes()
}

// EncodeResponse serialises a correlation id + body into one payload.
func EncodeResponse(correlationID int32, body Message) []byte {
	var w Writer
	w.Int32(correlationID)
	body.Encode(&w)
	return w.Bytes()
}

// DecodeRequest splits a request payload into its header and body reader.
func DecodeRequest(payload []byte) (RequestHeader, *Reader, error) {
	r := NewReader(payload)
	var hdr RequestHeader
	hdr.Decode(r)
	if err := r.Err(); err != nil {
		return RequestHeader{}, nil, err
	}
	return hdr, r, nil
}

// DecodeResponse splits a response payload into its correlation id and body
// reader.
func DecodeResponse(payload []byte) (int32, *Reader, error) {
	r := NewReader(payload)
	id := r.Int32()
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	return id, r, nil
}

// NewRequestBody returns a zero value of the request type for an API key,
// used by the broker's dispatch loop.
func NewRequestBody(api APIKey) (Message, bool) {
	switch api {
	case APIProduce:
		return &ProduceRequest{}, true
	case APIFetch:
		return &FetchRequest{}, true
	case APIListOffsets:
		return &ListOffsetsRequest{}, true
	case APIMetadata:
		return &MetadataRequest{}, true
	case APICreateTopics:
		return &CreateTopicsRequest{}, true
	case APIDeleteTopics:
		return &DeleteTopicsRequest{}, true
	case APIOffsetCommit:
		return &OffsetCommitRequest{}, true
	case APIOffsetFetch:
		return &OffsetFetchRequest{}, true
	case APIFindCoordinator:
		return &FindCoordinatorRequest{}, true
	case APIJoinGroup:
		return &JoinGroupRequest{}, true
	case APIHeartbeat:
		return &HeartbeatRequest{}, true
	case APILeaveGroup:
		return &LeaveGroupRequest{}, true
	case APISyncGroup:
		return &SyncGroupRequest{}, true
	case APIOffsetQuery:
		return &OffsetQueryRequest{}, true
	case APITierStatus:
		return &TierStatusRequest{}, true
	case APIDescribeQuotas:
		return &DescribeQuotasRequest{}, true
	case APIAlterQuotas:
		return &AlterQuotasRequest{}, true
	case APITableGet:
		return &TableGetRequest{}, true
	case APITableRange:
		return &TableRangeRequest{}, true
	case APIInitProducer:
		return &InitProducerRequest{}, true
	}
	return nil, false
}

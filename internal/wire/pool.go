package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// maxPooledBuf caps the capacity of buffers returned to the pools, so one
// giant frame cannot pin megabytes inside every pool slot forever.
const maxPooledBuf = 1 << 20

// writerPool recycles encode buffers for the framed write path. Every
// request and response a broker or client writes goes through one pooled
// Writer, so the steady-state encode path allocates nothing.
var writerPool = sync.Pool{
	New: func() any { return &Writer{buf: make([]byte, 0, 4096)} },
}

// GetWriter returns a reset Writer from the pool.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns a Writer to the pool. The caller must not retain any
// slice of its buffer.
func PutWriter(w *Writer) {
	if cap(w.buf) > maxPooledBuf {
		return
	}
	writerPool.Put(w)
}

// writeFramed encodes a payload via fill into a pooled buffer with the
// 4-byte length prefix in place, and writes the whole frame with a single
// Write call — one buffer, one copy, no per-frame allocation.
func writeFramed(dst io.Writer, fill func(*Writer)) error {
	w := GetWriter()
	defer PutWriter(w)
	w.Int32(0) // length prefix placeholder
	fill(w)
	if len(w.splices) > 0 {
		return writeSpliced(dst, w)
	}
	n := len(w.buf) - 4
	if n > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes, max %d", ErrFrameTooLarge, n, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(w.buf[:4], uint32(n))
	_, err := dst.Write(w.buf)
	return err
}

// writeSpliced writes a frame whose payload interleaves the writer's buffer
// with external byte ranges (the zero-copy fetch path). The length prefix
// covers the spliced bytes; each range then streams straight from its source
// into dst — sendfile when dst is a TCP connection and the source a file. A
// source that comes up short (a segment truncated mid-serve by a follower
// demotion) is zero-padded to its promised length so the frame boundary
// survives; readers reject the padding at the batch level and re-poll.
func writeSpliced(dst io.Writer, w *Writer) error {
	total := int64(len(w.buf) - 4)
	for _, sp := range w.splices {
		total += sp.src.Len()
	}
	if total > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes, max %d", ErrFrameTooLarge, total, MaxFrameSize)
	}
	binary.BigEndian.PutUint32(w.buf[:4], uint32(total))
	start := 0
	for _, sp := range w.splices {
		if _, err := dst.Write(w.buf[start:sp.at]); err != nil {
			return err
		}
		start = sp.at
		want := sp.src.Len()
		n, _ := sp.src.WriteTo(dst)
		if n < want {
			if err := writeZeros(dst, want-n); err != nil {
				return err
			}
		}
	}
	_, err := dst.Write(w.buf[start:])
	return err
}

// zeroPad is a shared all-zero block for padding short splices (read-only).
var zeroPad [4096]byte

func writeZeros(dst io.Writer, n int64) error {
	for n > 0 {
		chunk := int64(len(zeroPad))
		if chunk > n {
			chunk = n
		}
		if _, err := dst.Write(zeroPad[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// WriteRequestFrame encodes a request header + body and writes it as one
// frame using a pooled buffer.
func WriteRequestFrame(dst io.Writer, hdr *RequestHeader, body Message) error {
	return writeFramed(dst, func(w *Writer) {
		hdr.Encode(w)
		body.Encode(w)
	})
}

// WriteResponseFrame encodes a correlation id + response body and writes it
// as one frame using a pooled buffer.
func WriteResponseFrame(dst io.Writer, correlationID int32, body Message) error {
	return writeFramed(dst, func(w *Writer) {
		w.Int32(correlationID)
		body.Encode(w)
	})
}

// ReadFrameInto reads one length-prefixed frame, reusing buf's capacity
// when it suffices. It returns the payload, which aliases buf (or a larger
// replacement — pass the returned slice back in on the next call). Callers
// own the lifetime: anything decoded from the payload that must outlive the
// next ReadFrameInto call has to be copied (Reader.Bytes32 copies;
// Reader.RawBytes32 does not).
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes, max %d", ErrFrameTooLarge, n, MaxFrameSize)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

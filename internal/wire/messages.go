package wire

import "fmt"

// APIKey identifies a request type.
type APIKey int16

// Request API keys. The numbering loosely follows the Kafka protocol for
// familiarity; OffsetQuery is Liquid-specific (metadata-based access to the
// offset manager, paper §4.2).
const (
	APIProduce         APIKey = 0
	APIFetch           APIKey = 1
	APIListOffsets     APIKey = 2
	APIMetadata        APIKey = 3
	APICreateTopics    APIKey = 4
	APIDeleteTopics    APIKey = 5
	APIOffsetCommit    APIKey = 8
	APIOffsetFetch     APIKey = 9
	APIFindCoordinator APIKey = 10
	APIJoinGroup       APIKey = 11
	APIHeartbeat       APIKey = 12
	APILeaveGroup      APIKey = 13
	APISyncGroup       APIKey = 14
	APIOffsetQuery     APIKey = 40
	// APITierStatus is Liquid-specific: per-partition tiered-storage
	// status (hot/cold segment counts and the local vs tiered start
	// offsets) served by each partition's leader.
	APITierStatus APIKey = 41
	// APIDescribeQuotas / APIAlterQuotas manage per-principal (client-id)
	// rate quotas. Quota configs are persisted in the coordination service
	// so every broker converges on the same limits and they survive
	// failover (§3.2/§4.4 multi-tenancy: a runaway producer must not
	// degrade co-located tenants).
	APIDescribeQuotas APIKey = 42
	APIAlterQuotas    APIKey = 43
	// APITableGet / APITableRange are Liquid-specific serve-side reads
	// (paper §2/§3.2: "who viewed my profile"-style point lookups). A
	// broker answers them from the table materializer attached to the
	// compacted-feed partitions it leads.
	APITableGet   APIKey = 44
	APITableRange APIKey = 45
	// APIInitProducer allocates an idempotent-producer identity: a cluster
	// unique producerID plus an epoch. Named producers re-registering bump
	// the epoch so earlier instances (zombies) are fenced; anonymous
	// producers get a fresh id at epoch 0.
	APIInitProducer APIKey = 46
)

// String returns the lowercase API name, used as the per-API metric label
// and in slowlog entries. Unknown keys render as "api-<n>".
func (k APIKey) String() string {
	switch k {
	case APIProduce:
		return "produce"
	case APIFetch:
		return "fetch"
	case APIListOffsets:
		return "list-offsets"
	case APIMetadata:
		return "metadata"
	case APICreateTopics:
		return "create-topics"
	case APIDeleteTopics:
		return "delete-topics"
	case APIOffsetCommit:
		return "offset-commit"
	case APIOffsetFetch:
		return "offset-fetch"
	case APIFindCoordinator:
		return "find-coordinator"
	case APIJoinGroup:
		return "join-group"
	case APIHeartbeat:
		return "heartbeat"
	case APILeaveGroup:
		return "leave-group"
	case APISyncGroup:
		return "sync-group"
	case APIOffsetQuery:
		return "offset-query"
	case APITierStatus:
		return "tier-status"
	case APIDescribeQuotas:
		return "describe-quotas"
	case APIAlterQuotas:
		return "alter-quotas"
	case APITableGet:
		return "table-get"
	case APITableRange:
		return "table-range"
	case APIInitProducer:
		return "init-producer"
	}
	return fmt.Sprintf("api-%d", int16(k))
}

// Message is any protocol body that can encode and decode itself.
type Message interface {
	Encode(w *Writer)
	Decode(r *Reader)
}

// Special timestamp values for ListOffsets.
const (
	// TimestampEarliest asks for the log start offset.
	TimestampEarliest int64 = -2
	// TimestampLatest asks for the log end offset (next offset to be
	// assigned, also called the high watermark from a consumer's view).
	TimestampLatest int64 = -1
)

// RequestHeader precedes every request body in a frame.
type RequestHeader struct {
	API           APIKey
	CorrelationID int32
	ClientID      string
}

// Encode writes the header.
func (h *RequestHeader) Encode(w *Writer) {
	w.Int16(int16(h.API))
	w.Int32(h.CorrelationID)
	w.String(h.ClientID)
}

// Decode reads the header.
func (h *RequestHeader) Decode(r *Reader) {
	h.API = APIKey(r.Int16())
	h.CorrelationID = r.Int32()
	h.ClientID = r.String()
}

// ---------------------------------------------------------------- Produce

// ProduceRequest appends record batches to partitions.
// RequiredAcks follows the durability trade-off of the paper (§4.3):
// 0 = fire-and-forget, 1 = leader ack, -1 = all in-sync replicas.
type ProduceRequest struct {
	RequiredAcks int16
	TimeoutMs    int32
	Topics       []ProduceTopic
}

// ProduceTopic carries the partitions of one topic in a ProduceRequest.
type ProduceTopic struct {
	Name       string
	Partitions []ProducePartition
}

// ProducePartition carries one partition's encoded record batches. On the
// decode side Records aliases the request frame buffer (zero-copy): brokers
// append it to the log before reading the next frame, so it must not be
// retained past the request's dispatch.
type ProducePartition struct {
	Partition int32
	Records   []byte
}

// Encode implements Message.
func (m *ProduceRequest) Encode(w *Writer) {
	w.Int16(m.RequiredAcks)
	w.Int32(m.TimeoutMs)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Bytes32(p.Records)
		}
	}
}

// Decode implements Message.
func (m *ProduceRequest) Decode(r *Reader) {
	m.RequiredAcks = r.Int16()
	m.TimeoutMs = r.Int32()
	n := r.ArrayLen()
	m.Topics = make([]ProduceTopic, 0, n)
	for i := 0; i < n; i++ {
		var t ProduceTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]ProducePartition, 0, pn)
		for j := 0; j < pn; j++ {
			var p ProducePartition
			p.Partition = r.Int32()
			p.Records = r.RawBytes32()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// ProduceResponse reports per-partition append results. ThrottleTimeMs is
// the broker's backpressure verdict: how long the principal should delay
// its next request because a quota was exceeded (0 = unthrottled). The
// broker never blocks its handler — it charges the quota, computes the
// penalty, and responds immediately; a well-behaved client honors the
// delay before its next produce.
type ProduceResponse struct {
	ThrottleTimeMs int32
	Topics         []ProduceRespTopic
}

// ProduceRespTopic groups per-partition results for one topic.
type ProduceRespTopic struct {
	Name       string
	Partitions []ProduceRespPartition
}

// ProduceRespPartition is the result of appending to one partition.
type ProduceRespPartition struct {
	Partition     int32
	Err           ErrorCode
	BaseOffset    int64
	HighWatermark int64
}

// Encode implements Message.
func (m *ProduceResponse) Encode(w *Writer) {
	w.Int32(m.ThrottleTimeMs)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int16(int16(p.Err))
			w.Int64(p.BaseOffset)
			w.Int64(p.HighWatermark)
		}
	}
}

// Decode implements Message.
func (m *ProduceResponse) Decode(r *Reader) {
	m.ThrottleTimeMs = r.Int32()
	n := r.ArrayLen()
	m.Topics = make([]ProduceRespTopic, 0, n)
	for i := 0; i < n; i++ {
		var t ProduceRespTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]ProduceRespPartition, 0, pn)
		for j := 0; j < pn; j++ {
			var p ProduceRespPartition
			p.Partition = r.Int32()
			p.Err = ErrorCode(r.Int16())
			p.BaseOffset = r.Int64()
			p.HighWatermark = r.Int64()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// ------------------------------------------------------------------ Fetch

// FetchRequest pulls record batches from partitions. Consumers use
// ReplicaID -1; follower brokers use their own broker id, which entitles
// them to read beyond the high watermark and drives ISR tracking (§4.3).
type FetchRequest struct {
	ReplicaID int32
	MaxWaitMs int32
	MinBytes  int32
	MaxBytes  int32
	Topics    []FetchTopic
}

// FetchTopic carries the partitions of one topic in a FetchRequest.
type FetchTopic struct {
	Name       string
	Partitions []FetchPartition
}

// FetchPartition requests data from one partition starting at Offset.
type FetchPartition struct {
	Partition int32
	Offset    int64
	MaxBytes  int32
}

// Encode implements Message.
func (m *FetchRequest) Encode(w *Writer) {
	w.Int32(m.ReplicaID)
	w.Int32(m.MaxWaitMs)
	w.Int32(m.MinBytes)
	w.Int32(m.MaxBytes)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int64(p.Offset)
			w.Int32(p.MaxBytes)
		}
	}
}

// Decode implements Message.
func (m *FetchRequest) Decode(r *Reader) {
	m.ReplicaID = r.Int32()
	m.MaxWaitMs = r.Int32()
	m.MinBytes = r.Int32()
	m.MaxBytes = r.Int32()
	n := r.ArrayLen()
	m.Topics = make([]FetchTopic, 0, n)
	for i := 0; i < n; i++ {
		var t FetchTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]FetchPartition, 0, pn)
		for j := 0; j < pn; j++ {
			var p FetchPartition
			p.Partition = r.Int32()
			p.Offset = r.Int64()
			p.MaxBytes = r.Int32()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// FetchResponse returns record batches per partition. ThrottleTimeMs
// carries the broker's quota verdict, exactly as on ProduceResponse;
// replication fetches (follower ReplicaIDs) are exempt and always see 0.
type FetchResponse struct {
	ThrottleTimeMs int32
	Topics         []FetchRespTopic
}

// FetchRespTopic groups per-partition fetch results for one topic.
type FetchRespTopic struct {
	Name       string
	Partitions []FetchRespPartition
}

// FetchRespPartition is the fetch result for one partition. On the decode
// side Records aliases the response frame buffer (zero-copy): consumers and
// replica fetchers decode or append it before issuing their next request on
// the connection, so it must not be retained past that.
type FetchRespPartition struct {
	Partition      int32
	Err            ErrorCode
	HighWatermark  int64
	LogStartOffset int64
	Records        []byte
	// RecordsRange, when non-nil, takes the place of Records on the encode
	// side: the batch bytes are spliced into the response frame straight
	// from their storage (zero-copy fetch) instead of being copied through
	// the encode buffer. Encode-only — the decode side always materializes
	// Records, since the wire bytes are identical either way.
	RecordsRange ByteRange
}

// Encode implements Message.
func (m *FetchResponse) Encode(w *Writer) {
	w.Int32(m.ThrottleTimeMs)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int16(int16(p.Err))
			w.Int64(p.HighWatermark)
			w.Int64(p.LogStartOffset)
			if p.RecordsRange != nil {
				w.Splice(p.RecordsRange)
			} else {
				w.Bytes32(p.Records)
			}
		}
	}
}

// Decode implements Message.
func (m *FetchResponse) Decode(r *Reader) {
	m.ThrottleTimeMs = r.Int32()
	n := r.ArrayLen()
	m.Topics = make([]FetchRespTopic, 0, n)
	for i := 0; i < n; i++ {
		var t FetchRespTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]FetchRespPartition, 0, pn)
		for j := 0; j < pn; j++ {
			var p FetchRespPartition
			p.Partition = r.Int32()
			p.Err = ErrorCode(r.Int16())
			p.HighWatermark = r.Int64()
			p.LogStartOffset = r.Int64()
			p.Records = r.RawBytes32()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// ----------------------------------------------------------- ListOffsets

// ListOffsetsRequest resolves timestamps to offsets, supporting the
// rewindability property (§3.1): earliest, latest, or first offset at/after
// a given timestamp.
type ListOffsetsRequest struct {
	Topics []ListOffsetsTopic
}

// ListOffsetsTopic carries per-partition timestamp queries for one topic.
type ListOffsetsTopic struct {
	Name       string
	Partitions []ListOffsetsPartition
}

// ListOffsetsPartition queries one partition at a timestamp (or the special
// TimestampEarliest / TimestampLatest values).
type ListOffsetsPartition struct {
	Partition int32
	Timestamp int64
}

// Encode implements Message.
func (m *ListOffsetsRequest) Encode(w *Writer) {
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			w.Int32(t.Partitions[j].Partition)
			w.Int64(t.Partitions[j].Timestamp)
		}
	}
}

// Decode implements Message.
func (m *ListOffsetsRequest) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Topics = make([]ListOffsetsTopic, 0, n)
	for i := 0; i < n; i++ {
		var t ListOffsetsTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]ListOffsetsPartition, 0, pn)
		for j := 0; j < pn; j++ {
			t.Partitions = append(t.Partitions, ListOffsetsPartition{
				Partition: r.Int32(),
				Timestamp: r.Int64(),
			})
		}
		m.Topics = append(m.Topics, t)
	}
}

// ListOffsetsResponse returns resolved offsets.
type ListOffsetsResponse struct {
	Topics []ListOffsetsRespTopic
}

// ListOffsetsRespTopic groups per-partition results for one topic.
type ListOffsetsRespTopic struct {
	Name       string
	Partitions []ListOffsetsRespPartition
}

// ListOffsetsRespPartition is the resolved offset for one partition.
type ListOffsetsRespPartition struct {
	Partition int32
	Err       ErrorCode
	Timestamp int64
	Offset    int64
}

// Encode implements Message.
func (m *ListOffsetsResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int16(int16(p.Err))
			w.Int64(p.Timestamp)
			w.Int64(p.Offset)
		}
	}
}

// Decode implements Message.
func (m *ListOffsetsResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Topics = make([]ListOffsetsRespTopic, 0, n)
	for i := 0; i < n; i++ {
		var t ListOffsetsRespTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]ListOffsetsRespPartition, 0, pn)
		for j := 0; j < pn; j++ {
			var p ListOffsetsRespPartition
			p.Partition = r.Int32()
			p.Err = ErrorCode(r.Int16())
			p.Timestamp = r.Int64()
			p.Offset = r.Int64()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// -------------------------------------------------------------- Metadata

// MetadataRequest asks for cluster metadata; an empty Topics slice means
// all topics.
type MetadataRequest struct {
	Topics []string
}

// Encode implements Message.
func (m *MetadataRequest) Encode(w *Writer) { w.StringArray(m.Topics) }

// Decode implements Message.
func (m *MetadataRequest) Decode(r *Reader) { m.Topics = r.StringArray() }

// BrokerMeta describes one live broker. OpsAddr is the broker's ops-plane
// HTTP address ("" when the broker runs without one); clients use it to
// reach /metrics and friends without separate discovery.
type BrokerMeta struct {
	ID      int32
	Host    string
	Port    int32
	OpsAddr string
}

// PartitionMeta describes current leadership for one partition.
type PartitionMeta struct {
	Err         ErrorCode
	ID          int32
	Leader      int32
	LeaderEpoch int32
	Replicas    []int32
	ISR         []int32
}

// TopicMeta describes one topic.
type TopicMeta struct {
	Err        ErrorCode
	Name       string
	Compacted  bool
	Partitions []PartitionMeta
}

// MetadataResponse returns the cluster view: live brokers, the controller,
// and topic/partition leadership.
type MetadataResponse struct {
	Brokers      []BrokerMeta
	ControllerID int32
	Topics       []TopicMeta
}

// Encode implements Message.
func (m *MetadataResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Brokers))
	for i := range m.Brokers {
		w.Int32(m.Brokers[i].ID)
		w.String(m.Brokers[i].Host)
		w.Int32(m.Brokers[i].Port)
		w.String(m.Brokers[i].OpsAddr)
	}
	w.Int32(m.ControllerID)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.Int16(int16(t.Err))
		w.String(t.Name)
		w.Bool(t.Compacted)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int16(int16(p.Err))
			w.Int32(p.ID)
			w.Int32(p.Leader)
			w.Int32(p.LeaderEpoch)
			w.Int32Array(p.Replicas)
			w.Int32Array(p.ISR)
		}
	}
}

// Decode implements Message.
func (m *MetadataResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Brokers = make([]BrokerMeta, 0, n)
	for i := 0; i < n; i++ {
		m.Brokers = append(m.Brokers, BrokerMeta{
			ID:      r.Int32(),
			Host:    r.String(),
			Port:    r.Int32(),
			OpsAddr: r.String(),
		})
	}
	m.ControllerID = r.Int32()
	tn := r.ArrayLen()
	m.Topics = make([]TopicMeta, 0, tn)
	for i := 0; i < tn; i++ {
		var t TopicMeta
		t.Err = ErrorCode(r.Int16())
		t.Name = r.String()
		t.Compacted = r.Bool()
		pn := r.ArrayLen()
		t.Partitions = make([]PartitionMeta, 0, pn)
		for j := 0; j < pn; j++ {
			var p PartitionMeta
			p.Err = ErrorCode(r.Int16())
			p.ID = r.Int32()
			p.Leader = r.Int32()
			p.LeaderEpoch = r.Int32()
			p.Replicas = r.Int32Array()
			p.ISR = r.Int32Array()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// ---------------------------------------------------- Create/DeleteTopics

// TopicSpec configures a new topic. Zero values select broker defaults.
type TopicSpec struct {
	Name              string
	NumPartitions     int32
	ReplicationFactor int16
	RetentionMs       int64 // 0 = broker default, -1 = unlimited
	RetentionBytes    int64 // 0 = broker default, -1 = unlimited
	SegmentBytes      int32 // 0 = broker default
	Compacted         bool
	// Tiered enables tiered log storage: the partition leader offloads
	// sealed segments to the DFS and serves reads below the local log
	// start from the cold tier. RetentionMs/RetentionBytes then bound the
	// TOTAL (hot + cold) horizon and HotRetention* bound the local one.
	// Mutually exclusive with Compacted.
	Tiered            bool
	HotRetentionMs    int64 // 0 = broker default, -1 = unlimited
	HotRetentionBytes int64 // 0 = broker default, -1 = unlimited
	// Table marks the feed as queryable: each partition leader keeps a
	// materialized key→value view of the compacted log and serves
	// TableGet/TableRange from it. Requires Compacted.
	Table bool
}

// CreateTopicsRequest creates one or more topics cluster-wide.
type CreateTopicsRequest struct {
	Topics []TopicSpec
}

// Encode implements Message.
func (m *CreateTopicsRequest) Encode(w *Writer) {
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.Int32(t.NumPartitions)
		w.Int16(t.ReplicationFactor)
		w.Int64(t.RetentionMs)
		w.Int64(t.RetentionBytes)
		w.Int32(t.SegmentBytes)
		w.Bool(t.Compacted)
		w.Bool(t.Tiered)
		w.Int64(t.HotRetentionMs)
		w.Int64(t.HotRetentionBytes)
		w.Bool(t.Table)
	}
}

// Decode implements Message.
func (m *CreateTopicsRequest) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Topics = make([]TopicSpec, 0, n)
	for i := 0; i < n; i++ {
		var t TopicSpec
		t.Name = r.String()
		t.NumPartitions = r.Int32()
		t.ReplicationFactor = r.Int16()
		t.RetentionMs = r.Int64()
		t.RetentionBytes = r.Int64()
		t.SegmentBytes = r.Int32()
		t.Compacted = r.Bool()
		t.Tiered = r.Bool()
		t.HotRetentionMs = r.Int64()
		t.HotRetentionBytes = r.Int64()
		t.Table = r.Bool()
		m.Topics = append(m.Topics, t)
	}
}

// TopicResult is the per-topic outcome of a create or delete request.
type TopicResult struct {
	Name string
	Err  ErrorCode
}

// CreateTopicsResponse reports per-topic results.
type CreateTopicsResponse struct {
	Results []TopicResult
}

// Encode implements Message.
func (m *CreateTopicsResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Results))
	for i := range m.Results {
		w.String(m.Results[i].Name)
		w.Int16(int16(m.Results[i].Err))
	}
}

// Decode implements Message.
func (m *CreateTopicsResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Results = make([]TopicResult, 0, n)
	for i := 0; i < n; i++ {
		m.Results = append(m.Results, TopicResult{Name: r.String(), Err: ErrorCode(r.Int16())})
	}
}

// DeleteTopicsRequest removes topics cluster-wide.
type DeleteTopicsRequest struct {
	Names []string
}

// Encode implements Message.
func (m *DeleteTopicsRequest) Encode(w *Writer) { w.StringArray(m.Names) }

// Decode implements Message.
func (m *DeleteTopicsRequest) Decode(r *Reader) { m.Names = r.StringArray() }

// DeleteTopicsResponse reports per-topic results.
type DeleteTopicsResponse struct {
	Results []TopicResult
}

// Encode implements Message.
func (m *DeleteTopicsResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Results))
	for i := range m.Results {
		w.String(m.Results[i].Name)
		w.Int16(int16(m.Results[i].Err))
	}
}

// Decode implements Message.
func (m *DeleteTopicsResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Results = make([]TopicResult, 0, n)
	for i := 0; i < n; i++ {
		m.Results = append(m.Results, TopicResult{Name: r.String(), Err: ErrorCode(r.Int16())})
	}
}

// ---------------------------------------------------------- Offset APIs

// OffsetCommitRequest checkpoints consumed offsets with optional metadata
// annotations (the offset manager of paper §3.1/§4.2). Metadata is an
// opaque string; Liquid clients store annotation maps in it.
type OffsetCommitRequest struct {
	Group      string
	Generation int32
	MemberID   string
	Topics     []OffsetCommitTopic
}

// OffsetCommitTopic carries per-partition commits for one topic.
type OffsetCommitTopic struct {
	Name       string
	Partitions []OffsetCommitPartition
}

// OffsetCommitPartition commits one partition's offset and annotations.
type OffsetCommitPartition struct {
	Partition int32
	Offset    int64
	Metadata  string
}

// Encode implements Message.
func (m *OffsetCommitRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.Int32(m.Generation)
	w.String(m.MemberID)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int64(p.Offset)
			w.String(p.Metadata)
		}
	}
}

// Decode implements Message.
func (m *OffsetCommitRequest) Decode(r *Reader) {
	m.Group = r.String()
	m.Generation = r.Int32()
	m.MemberID = r.String()
	n := r.ArrayLen()
	m.Topics = make([]OffsetCommitTopic, 0, n)
	for i := 0; i < n; i++ {
		var t OffsetCommitTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]OffsetCommitPartition, 0, pn)
		for j := 0; j < pn; j++ {
			t.Partitions = append(t.Partitions, OffsetCommitPartition{
				Partition: r.Int32(),
				Offset:    r.Int64(),
				Metadata:  r.String(),
			})
		}
		m.Topics = append(m.Topics, t)
	}
}

// OffsetCommitResponse reports per-partition commit results.
type OffsetCommitResponse struct {
	Topics []OffsetCommitRespTopic
}

// OffsetCommitRespTopic groups results for one topic.
type OffsetCommitRespTopic struct {
	Name       string
	Partitions []OffsetCommitRespPartition
}

// OffsetCommitRespPartition is the commit result for one partition.
type OffsetCommitRespPartition struct {
	Partition int32
	Err       ErrorCode
}

// Encode implements Message.
func (m *OffsetCommitResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			w.Int32(t.Partitions[j].Partition)
			w.Int16(int16(t.Partitions[j].Err))
		}
	}
}

// Decode implements Message.
func (m *OffsetCommitResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Topics = make([]OffsetCommitRespTopic, 0, n)
	for i := 0; i < n; i++ {
		var t OffsetCommitRespTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]OffsetCommitRespPartition, 0, pn)
		for j := 0; j < pn; j++ {
			t.Partitions = append(t.Partitions, OffsetCommitRespPartition{
				Partition: r.Int32(),
				Err:       ErrorCode(r.Int16()),
			})
		}
		m.Topics = append(m.Topics, t)
	}
}

// OffsetFetchRequest reads back the latest committed offsets for a group.
type OffsetFetchRequest struct {
	Group  string
	Topics []OffsetFetchTopic
}

// OffsetFetchTopic names the partitions to fetch for one topic.
type OffsetFetchTopic struct {
	Name       string
	Partitions []int32
}

// Encode implements Message.
func (m *OffsetFetchRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		w.String(m.Topics[i].Name)
		w.Int32Array(m.Topics[i].Partitions)
	}
}

// Decode implements Message.
func (m *OffsetFetchRequest) Decode(r *Reader) {
	m.Group = r.String()
	n := r.ArrayLen()
	m.Topics = make([]OffsetFetchTopic, 0, n)
	for i := 0; i < n; i++ {
		m.Topics = append(m.Topics, OffsetFetchTopic{
			Name:       r.String(),
			Partitions: r.Int32Array(),
		})
	}
}

// OffsetFetchResponse returns the latest committed offsets. Offset -1 means
// no commit exists for that partition.
type OffsetFetchResponse struct {
	Topics []OffsetFetchRespTopic
}

// OffsetFetchRespTopic groups results for one topic.
type OffsetFetchRespTopic struct {
	Name       string
	Partitions []OffsetFetchRespPartition
}

// OffsetFetchRespPartition is a committed offset with its annotations.
type OffsetFetchRespPartition struct {
	Partition int32
	Err       ErrorCode
	Offset    int64
	Metadata  string
}

// Encode implements Message.
func (m *OffsetFetchResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int16(int16(p.Err))
			w.Int64(p.Offset)
			w.String(p.Metadata)
		}
	}
}

// Decode implements Message.
func (m *OffsetFetchResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Topics = make([]OffsetFetchRespTopic, 0, n)
	for i := 0; i < n; i++ {
		var t OffsetFetchRespTopic
		t.Name = r.String()
		pn := r.ArrayLen()
		t.Partitions = make([]OffsetFetchRespPartition, 0, pn)
		for j := 0; j < pn; j++ {
			var p OffsetFetchRespPartition
			p.Partition = r.Int32()
			p.Err = ErrorCode(r.Int16())
			p.Offset = r.Int64()
			p.Metadata = r.String()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// OffsetQueryRequest performs metadata-based access (paper §4.2): find the
// most recent checkpoint for (Group, Topic, Partition) whose annotation
// AnnotationKey equals AnnotationValue, or — when AnnotationKey is
// "@timestamp" — the last checkpoint taken at or before the millisecond
// timestamp in AnnotationValue.
type OffsetQueryRequest struct {
	Group           string
	Topic           string
	Partition       int32
	AnnotationKey   string
	AnnotationValue string
}

// Encode implements Message.
func (m *OffsetQueryRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.String(m.Topic)
	w.Int32(m.Partition)
	w.String(m.AnnotationKey)
	w.String(m.AnnotationValue)
}

// Decode implements Message.
func (m *OffsetQueryRequest) Decode(r *Reader) {
	m.Group = r.String()
	m.Topic = r.String()
	m.Partition = r.Int32()
	m.AnnotationKey = r.String()
	m.AnnotationValue = r.String()
}

// OffsetQueryResponse returns the matched checkpoint, if any.
type OffsetQueryResponse struct {
	Err      ErrorCode
	Found    bool
	Offset   int64
	Metadata string
}

// Encode implements Message.
func (m *OffsetQueryResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.Bool(m.Found)
	w.Int64(m.Offset)
	w.String(m.Metadata)
}

// Decode implements Message.
func (m *OffsetQueryResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	m.Found = r.Bool()
	m.Offset = r.Int64()
	m.Metadata = r.String()
}

// ------------------------------------------------- Idempotent producers

// InitProducerRequest asks any broker for a producer identity. Name is
// optional: a named (transactional-style) producer that re-registers under
// the same name receives the same producerID with a bumped epoch, fencing
// its earlier instance; an anonymous producer (empty name) receives a fresh
// id at epoch 0.
type InitProducerRequest struct {
	Name string
}

// Encode implements Message.
func (m *InitProducerRequest) Encode(w *Writer) { w.String(m.Name) }

// Decode implements Message.
func (m *InitProducerRequest) Decode(r *Reader) { m.Name = r.String() }

// InitProducerResponse carries the allocated identity. The producer stamps
// (ProducerID, Epoch, sequence) onto every sealed batch it sends.
type InitProducerResponse struct {
	Err        ErrorCode
	ProducerID int64
	Epoch      int32
}

// Encode implements Message.
func (m *InitProducerResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.Int64(m.ProducerID)
	w.Int32(m.Epoch)
}

// Decode implements Message.
func (m *InitProducerResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	m.ProducerID = r.Int64()
	m.Epoch = r.Int32()
}

// --------------------------------------------------------- Group APIs

// FindCoordinatorRequest locates the broker coordinating a consumer group.
type FindCoordinatorRequest struct {
	Key string // group id
}

// Encode implements Message.
func (m *FindCoordinatorRequest) Encode(w *Writer) { w.String(m.Key) }

// Decode implements Message.
func (m *FindCoordinatorRequest) Decode(r *Reader) { m.Key = r.String() }

// FindCoordinatorResponse names the coordinating broker.
type FindCoordinatorResponse struct {
	Err    ErrorCode
	NodeID int32
	Host   string
	Port   int32
}

// Encode implements Message.
func (m *FindCoordinatorResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.Int32(m.NodeID)
	w.String(m.Host)
	w.Int32(m.Port)
}

// Decode implements Message.
func (m *FindCoordinatorResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	m.NodeID = r.Int32()
	m.Host = r.String()
	m.Port = r.Int32()
}

// JoinGroupRequest enters a consumer group, triggering a rebalance. The
// first joiner becomes the group leader and later computes the partition
// assignment client-side (§3.1 consumer groups).
type JoinGroupRequest struct {
	Group              string
	SessionTimeoutMs   int32
	RebalanceTimeoutMs int32
	MemberID           string // empty on first join
	Protocol           string // assignment strategy name, e.g. "range"
	Metadata           []byte // subscribed topics, encoded by the client
}

// Encode implements Message.
func (m *JoinGroupRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.Int32(m.SessionTimeoutMs)
	w.Int32(m.RebalanceTimeoutMs)
	w.String(m.MemberID)
	w.String(m.Protocol)
	w.Bytes32(m.Metadata)
}

// Decode implements Message.
func (m *JoinGroupRequest) Decode(r *Reader) {
	m.Group = r.String()
	m.SessionTimeoutMs = r.Int32()
	m.RebalanceTimeoutMs = r.Int32()
	m.MemberID = r.String()
	m.Protocol = r.String()
	m.Metadata = r.Bytes32()
}

// GroupMember is a member's id and subscription metadata, sent to the group
// leader so it can compute an assignment.
type GroupMember struct {
	MemberID string
	Metadata []byte
}

// JoinGroupResponse reports the new generation. Only the leader receives
// the full member list.
type JoinGroupResponse struct {
	Err        ErrorCode
	Generation int32
	Protocol   string
	LeaderID   string
	MemberID   string
	Members    []GroupMember
}

// Encode implements Message.
func (m *JoinGroupResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.Int32(m.Generation)
	w.String(m.Protocol)
	w.String(m.LeaderID)
	w.String(m.MemberID)
	w.ArrayLen(len(m.Members))
	for i := range m.Members {
		w.String(m.Members[i].MemberID)
		w.Bytes32(m.Members[i].Metadata)
	}
}

// Decode implements Message.
func (m *JoinGroupResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	m.Generation = r.Int32()
	m.Protocol = r.String()
	m.LeaderID = r.String()
	m.MemberID = r.String()
	n := r.ArrayLen()
	m.Members = make([]GroupMember, 0, n)
	for i := 0; i < n; i++ {
		m.Members = append(m.Members, GroupMember{
			MemberID: r.String(),
			Metadata: r.Bytes32(),
		})
	}
}

// GroupAssignment carries one member's partition assignment from the group
// leader to the coordinator.
type GroupAssignment struct {
	MemberID   string
	Assignment []byte
}

// SyncGroupRequest distributes assignments: the leader includes all
// members' assignments; followers send none and receive theirs.
type SyncGroupRequest struct {
	Group       string
	Generation  int32
	MemberID    string
	Assignments []GroupAssignment
}

// Encode implements Message.
func (m *SyncGroupRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.Int32(m.Generation)
	w.String(m.MemberID)
	w.ArrayLen(len(m.Assignments))
	for i := range m.Assignments {
		w.String(m.Assignments[i].MemberID)
		w.Bytes32(m.Assignments[i].Assignment)
	}
}

// Decode implements Message.
func (m *SyncGroupRequest) Decode(r *Reader) {
	m.Group = r.String()
	m.Generation = r.Int32()
	m.MemberID = r.String()
	n := r.ArrayLen()
	m.Assignments = make([]GroupAssignment, 0, n)
	for i := 0; i < n; i++ {
		m.Assignments = append(m.Assignments, GroupAssignment{
			MemberID:   r.String(),
			Assignment: r.Bytes32(),
		})
	}
}

// SyncGroupResponse returns this member's assignment.
type SyncGroupResponse struct {
	Err        ErrorCode
	Assignment []byte
}

// Encode implements Message.
func (m *SyncGroupResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.Bytes32(m.Assignment)
}

// Decode implements Message.
func (m *SyncGroupResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	m.Assignment = r.Bytes32()
}

// HeartbeatRequest keeps a group member alive between polls.
type HeartbeatRequest struct {
	Group      string
	Generation int32
	MemberID   string
}

// Encode implements Message.
func (m *HeartbeatRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.Int32(m.Generation)
	w.String(m.MemberID)
}

// Decode implements Message.
func (m *HeartbeatRequest) Decode(r *Reader) {
	m.Group = r.String()
	m.Generation = r.Int32()
	m.MemberID = r.String()
}

// HeartbeatResponse carries the liveness verdict; ErrRebalanceInProgress
// instructs the member to rejoin.
type HeartbeatResponse struct {
	Err ErrorCode
}

// Encode implements Message.
func (m *HeartbeatResponse) Encode(w *Writer) { w.Int16(int16(m.Err)) }

// Decode implements Message.
func (m *HeartbeatResponse) Decode(r *Reader) { m.Err = ErrorCode(r.Int16()) }

// LeaveGroupRequest removes a member, triggering an immediate rebalance.
type LeaveGroupRequest struct {
	Group    string
	MemberID string
}

// Encode implements Message.
func (m *LeaveGroupRequest) Encode(w *Writer) {
	w.String(m.Group)
	w.String(m.MemberID)
}

// Decode implements Message.
func (m *LeaveGroupRequest) Decode(r *Reader) {
	m.Group = r.String()
	m.MemberID = r.String()
}

// LeaveGroupResponse acknowledges departure.
type LeaveGroupResponse struct {
	Err ErrorCode
}

// Encode implements Message.
func (m *LeaveGroupResponse) Encode(w *Writer) { w.Int16(int16(m.Err)) }

// Decode implements Message.
func (m *LeaveGroupResponse) Decode(r *Reader) { m.Err = ErrorCode(r.Int16()) }

// ------------------------------------------------------------ tier status

// TierStatusRequest asks a broker for the tiered-storage status of the
// partitions it leads. An empty Topics list means every tiered topic the
// broker hosts.
type TierStatusRequest struct {
	Topics []string
}

// Encode implements Message.
func (m *TierStatusRequest) Encode(w *Writer) { w.StringArray(m.Topics) }

// Decode implements Message.
func (m *TierStatusRequest) Decode(r *Reader) { m.Topics = r.StringArray() }

// TierStatusResponse carries per-partition tier state.
type TierStatusResponse struct {
	Topics []TierStatusTopic
}

// TierStatusTopic groups one topic's partition statuses.
type TierStatusTopic struct {
	Name       string
	Partitions []TierStatusPartition
}

// TierStatusPartition is one partition's tiered-storage status as seen by
// its leader. EarliestOffset is the earliest offset a consumer can rewind
// to (tiered-earliest when cold segments exist, the local log start
// otherwise); LocalStartOffset is the first offset still held locally.
type TierStatusPartition struct {
	Partition        int32
	Err              ErrorCode
	Tiered           bool
	EarliestOffset   int64
	LocalStartOffset int64
	NextOffset       int64 // log end offset
	TieredNextOffset int64 // offload frontier: offsets below are tiered
	LocalSegments    int32
	LocalBytes       int64
	TieredSegments   int32
	TieredBytes      int64
	TieredRecords    int64
}

// Encode implements Message.
func (m *TierStatusResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Topics))
	for i := range m.Topics {
		t := &m.Topics[i]
		w.String(t.Name)
		w.ArrayLen(len(t.Partitions))
		for j := range t.Partitions {
			p := &t.Partitions[j]
			w.Int32(p.Partition)
			w.Int16(int16(p.Err))
			w.Bool(p.Tiered)
			w.Int64(p.EarliestOffset)
			w.Int64(p.LocalStartOffset)
			w.Int64(p.NextOffset)
			w.Int64(p.TieredNextOffset)
			w.Int32(p.LocalSegments)
			w.Int64(p.LocalBytes)
			w.Int32(p.TieredSegments)
			w.Int64(p.TieredBytes)
			w.Int64(p.TieredRecords)
		}
	}
}

// Decode implements Message.
func (m *TierStatusResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Topics = make([]TierStatusTopic, 0, n)
	for i := 0; i < n; i++ {
		var t TierStatusTopic
		t.Name = r.String()
		np := r.ArrayLen()
		t.Partitions = make([]TierStatusPartition, 0, np)
		for j := 0; j < np; j++ {
			var p TierStatusPartition
			p.Partition = r.Int32()
			p.Err = ErrorCode(r.Int16())
			p.Tiered = r.Bool()
			p.EarliestOffset = r.Int64()
			p.LocalStartOffset = r.Int64()
			p.NextOffset = r.Int64()
			p.TieredNextOffset = r.Int64()
			p.LocalSegments = r.Int32()
			p.LocalBytes = r.Int64()
			p.TieredSegments = r.Int32()
			p.TieredBytes = r.Int64()
			p.TieredRecords = r.Int64()
			t.Partitions = append(t.Partitions, p)
		}
		m.Topics = append(m.Topics, t)
	}
}

// ----------------------------------------------------------------- quotas

// QuotaEntry is one principal's rate quota. Zero limits mean unlimited on
// that dimension. Rates are sustained per-second budgets; brokers allow a
// one-second burst on top before throttling (token bucket).
type QuotaEntry struct {
	// Principal is the client-id the quota applies to.
	Principal string
	// ProduceBytesPerSec bounds appended record-payload bytes.
	ProduceBytesPerSec int64
	// FetchBytesPerSec bounds consumer fetch-response bytes (replication
	// fetches are exempt).
	FetchBytesPerSec int64
	// RequestsPerSec bounds the principal's total request rate.
	RequestsPerSec int64
}

func (q *QuotaEntry) encode(w *Writer) {
	w.String(q.Principal)
	w.Int64(q.ProduceBytesPerSec)
	w.Int64(q.FetchBytesPerSec)
	w.Int64(q.RequestsPerSec)
}

func (q *QuotaEntry) decode(r *Reader) {
	q.Principal = r.String()
	q.ProduceBytesPerSec = r.Int64()
	q.FetchBytesPerSec = r.Int64()
	q.RequestsPerSec = r.Int64()
}

// DescribeQuotasRequest reads back configured quotas. An empty Principals
// list returns every persisted quota.
type DescribeQuotasRequest struct {
	Principals []string
}

// Encode implements Message.
func (m *DescribeQuotasRequest) Encode(w *Writer) { w.StringArray(m.Principals) }

// Decode implements Message.
func (m *DescribeQuotasRequest) Decode(r *Reader) { m.Principals = r.StringArray() }

// DescribeQuotasResponse returns the persisted quota entries. Principals
// asked for but unconfigured are omitted (they run at the broker default).
type DescribeQuotasResponse struct {
	Err     ErrorCode
	Entries []QuotaEntry
}

// Encode implements Message.
func (m *DescribeQuotasResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.ArrayLen(len(m.Entries))
	for i := range m.Entries {
		m.Entries[i].encode(w)
	}
}

// Decode implements Message.
func (m *DescribeQuotasResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	n := r.ArrayLen()
	m.Entries = make([]QuotaEntry, 0, n)
	for i := 0; i < n; i++ {
		var q QuotaEntry
		q.decode(r)
		m.Entries = append(m.Entries, q)
	}
}

// AlterQuotaOp sets or removes one principal's quota.
type AlterQuotaOp struct {
	Entry QuotaEntry
	// Remove deletes the principal's quota (it falls back to the broker
	// default); Entry's limits are ignored.
	Remove bool
}

// AlterQuotasRequest upserts or removes quotas. Any broker accepts it: the
// config is written to the coordination service, and every broker converges
// through its watch.
type AlterQuotasRequest struct {
	Ops []AlterQuotaOp
}

// Encode implements Message.
func (m *AlterQuotasRequest) Encode(w *Writer) {
	w.ArrayLen(len(m.Ops))
	for i := range m.Ops {
		m.Ops[i].Entry.encode(w)
		w.Bool(m.Ops[i].Remove)
	}
}

// Decode implements Message.
func (m *AlterQuotasRequest) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Ops = make([]AlterQuotaOp, 0, n)
	for i := 0; i < n; i++ {
		var op AlterQuotaOp
		op.Entry.decode(r)
		op.Remove = r.Bool()
		m.Ops = append(m.Ops, op)
	}
}

// AlterQuotasResponse reports per-principal outcomes (Name = principal).
type AlterQuotasResponse struct {
	Results []TopicResult
}

// Encode implements Message.
func (m *AlterQuotasResponse) Encode(w *Writer) {
	w.ArrayLen(len(m.Results))
	for i := range m.Results {
		w.String(m.Results[i].Name)
		w.Int16(int16(m.Results[i].Err))
	}
}

// Decode implements Message.
func (m *AlterQuotasResponse) Decode(r *Reader) {
	n := r.ArrayLen()
	m.Results = make([]TopicResult, 0, n)
	for i := 0; i < n; i++ {
		m.Results = append(m.Results, TopicResult{Name: r.String(), Err: ErrorCode(r.Int16())})
	}
}

// ----------------------------------------------------------------- tables

// TableGetRequest is a point read against the materialized table of one
// compacted-feed partition, answered by the partition leader. MaxLagOffsets
// bounds acceptable staleness: if the materializer's applied offset lags the
// high watermark by more than MaxLagOffsets the broker answers ErrTableStale
// instead of a possibly-stale value. Negative means any staleness is fine;
// zero demands applied == high watermark (read-your-acked-writes).
type TableGetRequest struct {
	Topic         string
	Partition     int32
	Key           []byte
	MaxLagOffsets int64
}

// Encode implements Message.
func (m *TableGetRequest) Encode(w *Writer) {
	w.String(m.Topic)
	w.Int32(m.Partition)
	w.Bytes32(m.Key)
	w.Int64(m.MaxLagOffsets)
}

// Decode implements Message.
func (m *TableGetRequest) Decode(r *Reader) {
	m.Topic = r.String()
	m.Partition = r.Int32()
	m.Key = r.Bytes32()
	m.MaxLagOffsets = r.Int64()
}

// TableGetResponse carries the lookup result plus the freshness watermark
// (applied offset vs high watermark) and the leader epoch the answer was
// served under, so clients can reason about staleness and fencing.
type TableGetResponse struct {
	Err           ErrorCode
	Found         bool
	Value         []byte
	AppliedOffset int64
	HighWatermark int64
	LeaderEpoch   int32
}

// Encode implements Message.
func (m *TableGetResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.Bool(m.Found)
	w.Bytes32(m.Value)
	w.Int64(m.AppliedOffset)
	w.Int64(m.HighWatermark)
	w.Int32(m.LeaderEpoch)
}

// Decode implements Message.
func (m *TableGetResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	m.Found = r.Bool()
	m.Value = r.Bytes32()
	m.AppliedOffset = r.Int64()
	m.HighWatermark = r.Int64()
	m.LeaderEpoch = r.Int32()
}

// TableEntry is one key→value pair in a range response.
type TableEntry struct {
	Key   []byte
	Value []byte
}

// TableRangeRequest scans the materialized table of one partition in
// ascending key order over [From, To). Nil bounds are open. Limit bounds the
// returned entries; Limit <= 0 returns none — a status-only probe that still
// reports the freshness watermark (TableStatus is built on it).
// MaxLagOffsets behaves as in TableGetRequest.
type TableRangeRequest struct {
	Topic         string
	Partition     int32
	From          []byte
	To            []byte
	Limit         int32
	MaxLagOffsets int64
}

// Encode implements Message.
func (m *TableRangeRequest) Encode(w *Writer) {
	w.String(m.Topic)
	w.Int32(m.Partition)
	w.Bytes32(m.From)
	w.Bytes32(m.To)
	w.Int32(m.Limit)
	w.Int64(m.MaxLagOffsets)
}

// Decode implements Message.
func (m *TableRangeRequest) Decode(r *Reader) {
	m.Topic = r.String()
	m.Partition = r.Int32()
	m.From = r.Bytes32()
	m.To = r.Bytes32()
	m.Limit = r.Int32()
	m.MaxLagOffsets = r.Int64()
}

// TableRangeResponse carries the scanned entries. More reports that the scan
// stopped at Limit with keys remaining; resume with From = last key + one
// zero byte. ApproxLen is the partition table's approximate entry count.
type TableRangeResponse struct {
	Err           ErrorCode
	Entries       []TableEntry
	More          bool
	ApproxLen     int64
	AppliedOffset int64
	HighWatermark int64
	LeaderEpoch   int32
}

// Encode implements Message.
func (m *TableRangeResponse) Encode(w *Writer) {
	w.Int16(int16(m.Err))
	w.ArrayLen(len(m.Entries))
	for i := range m.Entries {
		w.Bytes32(m.Entries[i].Key)
		w.Bytes32(m.Entries[i].Value)
	}
	w.Bool(m.More)
	w.Int64(m.ApproxLen)
	w.Int64(m.AppliedOffset)
	w.Int64(m.HighWatermark)
	w.Int32(m.LeaderEpoch)
}

// Decode implements Message.
func (m *TableRangeResponse) Decode(r *Reader) {
	m.Err = ErrorCode(r.Int16())
	n := r.ArrayLen()
	m.Entries = make([]TableEntry, 0, n)
	for i := 0; i < n; i++ {
		var e TableEntry
		e.Key = r.Bytes32()
		e.Value = r.Bytes32()
		m.Entries = append(m.Entries, e)
	}
	m.More = r.Bool()
	m.ApproxLen = r.Int64()
	m.AppliedOffset = r.Int64()
	m.HighWatermark = r.Int64()
	m.LeaderEpoch = r.Int32()
}

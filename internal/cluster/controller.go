package cluster

import (
	"errors"
	"log/slog"
	"time"

	"repro/internal/coord"
)

// Controller is the cluster-wide leadership manager. Every broker runs one;
// they race for the /controller ephemeral node and exactly one wins. The
// winner watches broker registrations and, when a broker dies, moves
// leadership of its partitions to another in-sync replica (paper §4.3
// "hand-over process selects a new leader among its followers").
type Controller struct {
	reg      *Registry
	sid      coord.SessionID
	brokerID int32
	logger   *slog.Logger

	stop chan struct{}
	done chan struct{}
}

// NewController creates a controller candidate for a broker.
func NewController(reg *Registry, sid coord.SessionID, brokerID int32, logger *slog.Logger) *Controller {
	if logger == nil {
		logger = slog.Default()
	}
	return &Controller{
		reg:      reg,
		sid:      sid,
		brokerID: brokerID,
		logger:   logger.With("component", "controller", "broker", brokerID),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the election/failover loop.
func (c *Controller) Start() {
	go c.run()
}

// Stop halts the loop and waits for it to exit.
func (c *Controller) Stop() {
	close(c.stop)
	<-c.done
}

func (c *Controller) run() {
	defer close(c.done)
	// Watch broker registrations and the controller node before electing,
	// so no deletion can slip between the initial scan and the watch.
	events, cancel := c.reg.Store().Watch("/")
	defer func() { cancel() }()

	isController := c.tryElect()
	if isController {
		c.failoverAll()
	}
	for {
		select {
		case <-c.stop:
			return
		case ev, ok := <-events:
			if !ok {
				// Watch overflowed: re-register and resync.
				cancel()
				events, cancel = c.reg.Store().Watch("/")
				if isController {
					c.failoverAll()
				}
				continue
			}
			switch {
			case ev.Path == ControllerPath && ev.Type == coord.EventDeleted:
				// Previous controller died: race for the seat.
				if !isController && c.tryElect() {
					isController = true
					c.failoverAll()
				}
			case ev.Type == coord.EventDeleted:
				if id, ok := ParseBrokerPath(ev.Path); ok && isController {
					c.logger.Info("broker failure detected", "dead", id)
					c.handleBrokerFailure(id)
				}
			}
		}
	}
}

// tryElect attempts to win the controller election.
func (c *Controller) tryElect() bool {
	won, err := c.reg.ElectController(c.sid, c.brokerID)
	if err != nil {
		return false
	}
	if won {
		c.logger.Info("elected controller")
	}
	return won
}

// IsController reports whether this broker currently holds the seat.
func (c *Controller) IsController() bool {
	return c.reg.ControllerID() == c.brokerID
}

// failoverAll sweeps every partition, repairing leadership for any whose
// leader is dead. Run when winning the election, since failures may have
// happened while there was no controller.
func (c *Controller) failoverAll() {
	live := liveSet(c.reg)
	for _, topic := range c.reg.Topics() {
		info, err := c.reg.GetTopic(topic)
		if err != nil {
			continue
		}
		for p := range info.Assignment {
			c.repairPartition(topic, int32(p), live)
		}
	}
}

// handleBrokerFailure repairs every partition the dead broker led or
// replicated.
func (c *Controller) handleBrokerFailure(dead int32) {
	live := liveSet(c.reg)
	for _, topic := range c.reg.Topics() {
		info, err := c.reg.GetTopic(topic)
		if err != nil {
			continue
		}
		for p, replicas := range info.Assignment {
			affected := false
			for _, r := range replicas {
				if r == dead {
					affected = true
					break
				}
			}
			if affected {
				c.repairPartition(topic, int32(p), live)
			}
		}
	}
}

// repairPartition re-elects a leader from the ISR if the current leader is
// dead, and shrinks the ISR to live brokers. Retries CAS conflicts against
// concurrent leader-side ISR updates.
func (c *Controller) repairPartition(topic string, partition int32, live map[int32]bool) {
	for attempt := 0; attempt < 5; attempt++ {
		st, ver, err := c.reg.PartitionState(topic, partition)
		if err != nil {
			return
		}
		newISR := st.ISR[:0:0]
		for _, r := range st.ISR {
			if live[r] {
				newISR = append(newISR, r)
			}
		}
		leaderDead := !live[st.Leader] || st.Leader < 0
		if !leaderDead && len(newISR) == len(st.ISR) {
			return // nothing to repair
		}
		next := st
		next.ISR = newISR
		if leaderDead {
			if len(newISR) > 0 {
				next.Leader = newISR[0]
			} else {
				// No in-sync replica left: partition offline until a
				// replica returns. Electing an out-of-sync replica would
				// lose committed data (unclean election), which the
				// design forbids.
				next.Leader = -1
			}
			next.Epoch = st.Epoch + 1
		}
		if _, err := c.reg.SetPartitionState(topic, partition, next, ver); err != nil {
			if errors.Is(err, coord.ErrBadVersion) {
				time.Sleep(time.Millisecond)
				continue
			}
			return
		}
		c.logger.Info("partition repaired",
			"topic", topic, "partition", partition,
			"leader", next.Leader, "epoch", next.Epoch, "isr", next.ISR)
		return
	}
}

// liveSet snapshots live broker ids.
func liveSet(reg *Registry) map[int32]bool {
	out := make(map[int32]bool)
	for _, b := range reg.LiveBrokers() {
		out[b.ID] = true
	}
	return out
}

package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/coord"
)

func newRegistry() (*Registry, *coord.Store) {
	store := coord.New(coord.Config{})
	return NewRegistry(store), store
}

func TestBrokerRegistration(t *testing.T) {
	reg, store := newRegistry()
	sid := store.CreateSession(time.Hour)
	for i := int32(3); i >= 1; i-- {
		if err := reg.RegisterBroker(sid, BrokerInfo{ID: i, Host: "h", Port: 9000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	live := reg.LiveBrokers()
	if len(live) != 3 {
		t.Fatalf("live = %v", live)
	}
	for i, b := range live {
		if b.ID != int32(i+1) {
			t.Fatalf("brokers not sorted: %v", live)
		}
	}
	if !reg.BrokerAlive(2) || reg.BrokerAlive(9) {
		t.Fatal("BrokerAlive wrong")
	}
	if got := live[0].Addr(); got != "h:9001" {
		t.Fatalf("Addr = %q", got)
	}
}

func TestTopicLifecycle(t *testing.T) {
	reg, _ := newRegistry()
	info := TopicInfo{
		Name:       "events",
		Config:     TopicConfig{NumPartitions: 2, ReplicationFactor: 2},
		Assignment: [][]int32{{1, 2}, {2, 1}},
	}
	if err := reg.CreateTopic(info); err != nil {
		t.Fatal(err)
	}
	got, err := reg.GetTopic("events")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, info) {
		t.Fatalf("GetTopic = %+v", got)
	}
	if names := reg.Topics(); len(names) != 1 || names[0] != "events" {
		t.Fatalf("Topics = %v", names)
	}
	// Initial partition states: leader = first replica, ISR = all.
	st, ver, err := reg.PartitionState("events", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leader != 1 || st.Epoch != 1 || !reflect.DeepEqual(st.ISR, []int32{1, 2}) || ver != 1 {
		t.Fatalf("state = %+v v%d", st, ver)
	}
	st1, _, _ := reg.PartitionState("events", 1)
	if st1.Leader != 2 {
		t.Fatalf("partition 1 leader = %d", st1.Leader)
	}
	if err := reg.DeleteTopic("events"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.GetTopic("events"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("after delete: %v", err)
	}
	if _, _, err := reg.PartitionState("events", 0); err == nil {
		t.Fatal("partition state should be deleted with the topic")
	}
}

func TestPartitionStateCAS(t *testing.T) {
	reg, _ := newRegistry()
	reg.CreateTopic(TopicInfo{Name: "t", Assignment: [][]int32{{1, 2}}})
	st, ver, _ := reg.PartitionState("t", 0)
	st.ISR = []int32{1}
	nv, err := reg.SetPartitionState("t", 0, st, ver)
	if err != nil || nv != ver+1 {
		t.Fatalf("CAS: nv=%d err=%v", nv, err)
	}
	if _, err := reg.SetPartitionState("t", 0, st, ver); !errors.Is(err, coord.ErrBadVersion) {
		t.Fatalf("stale CAS: %v", err)
	}
}

func TestAssignReplicas(t *testing.T) {
	got, err := AssignReplicas([]int32{3, 1, 2}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{{1, 2}, {2, 3}, {3, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("assignment = %v, want %v", got, want)
	}
	// Leadership (first replica) is spread across brokers.
	leaders := map[int32]int{}
	for _, rs := range got {
		leaders[rs[0]]++
	}
	if len(leaders) != 3 {
		t.Fatalf("leaders not spread: %v", leaders)
	}
}

func TestAssignReplicasErrors(t *testing.T) {
	if _, err := AssignReplicas(nil, 1, 1); err == nil {
		t.Fatal("no brokers should fail")
	}
	if _, err := AssignReplicas([]int32{1}, 1, 3); err == nil {
		t.Fatal("rf > brokers should fail")
	}
	// rf < 1 coerces to 1.
	got, err := AssignReplicas([]int32{1}, 2, 0)
	if err != nil || len(got[0]) != 1 {
		t.Fatalf("rf coercion: %v %v", got, err)
	}
}

func TestControllerElection(t *testing.T) {
	reg, store := newRegistry()
	s1 := store.CreateSession(time.Hour)
	s2 := store.CreateSession(time.Hour)
	won, _ := reg.ElectController(s1, 1)
	if !won || reg.ControllerID() != 1 {
		t.Fatalf("election failed: controller=%d", reg.ControllerID())
	}
	won, _ = reg.ElectController(s2, 2)
	if won {
		t.Fatal("second candidate should lose")
	}
	store.CloseSession(s1)
	if reg.ControllerID() != -1 {
		t.Fatal("controller seat should be empty")
	}
}

func TestParsePaths(t *testing.T) {
	if topic, p, ok := ParseStatePath("/state/events/3"); !ok || topic != "events" || p != 3 {
		t.Fatalf("ParseStatePath = %q %d %v", topic, p, ok)
	}
	if topic, p, ok := ParseStatePath("/state/my-topic.v2/12"); !ok || topic != "my-topic.v2" || p != 12 {
		t.Fatalf("ParseStatePath = %q %d %v", topic, p, ok)
	}
	for _, bad := range []string{"/brokers/1", "/state/noslash", "/state/t/x"} {
		if _, _, ok := ParseStatePath(bad); ok {
			t.Fatalf("ParseStatePath(%q) should fail", bad)
		}
	}
	if id, ok := ParseBrokerPath("/brokers/7"); !ok || id != 7 {
		t.Fatalf("ParseBrokerPath = %d %v", id, ok)
	}
	if _, ok := ParseBrokerPath("/topics/x"); ok {
		t.Fatal("foreign path parsed as broker")
	}
}

func TestInISR(t *testing.T) {
	st := PartitionState{ISR: []int32{1, 3}}
	if !st.InISR(1) || !st.InISR(3) || st.InISR(2) {
		t.Fatal("InISR wrong")
	}
}

// startController runs a controller for a broker with its own session.
func startController(t *testing.T, reg *Registry, store *coord.Store, id int32, timeout time.Duration) (*Controller, coord.SessionID) {
	t.Helper()
	sid := store.CreateSession(timeout)
	if err := reg.RegisterBroker(sid, BrokerInfo{ID: id, Host: "h", Port: 9000 + id}); err != nil {
		t.Fatal(err)
	}
	c := NewController(reg, sid, id, nil)
	c.Start()
	t.Cleanup(c.Stop)
	return c, sid
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestControllerFailsOverDeadLeader(t *testing.T) {
	reg, store := newRegistry()
	_, s1 := startController(t, reg, store, 1, 400*time.Millisecond)
	startController(t, reg, store, 2, time.Hour)
	startController(t, reg, store, 3, time.Hour)

	reg.CreateTopic(TopicInfo{
		Name:       "t",
		Config:     TopicConfig{NumPartitions: 2, ReplicationFactor: 3},
		Assignment: [][]int32{{1, 2, 3}, {2, 3, 1}},
	})

	// Broker 1 (leader of partition 0 and a controller candidate) dies:
	// its session is closed, as a graceful shutdown would.
	store.CloseSession(s1)

	waitFor(t, "leadership to move off broker 1", 3*time.Second, func() bool {
		st, _, err := reg.PartitionState("t", 0)
		return err == nil && st.Leader != 1 && st.Leader != -1
	})
	st, _, _ := reg.PartitionState("t", 0)
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2 after one failover", st.Epoch)
	}
	if st.InISR(1) {
		t.Fatalf("dead broker still in ISR: %+v", st)
	}
	// Partition 1's leader (2) was alive: leadership unchanged, but the
	// dead broker left its ISR.
	waitFor(t, "isr shrink on partition 1", 3*time.Second, func() bool {
		st1, _, err := reg.PartitionState("t", 1)
		return err == nil && st1.Leader == 2 && !st1.InISR(1)
	})
	// A new controller eventually holds the seat.
	waitFor(t, "controller re-election", 3*time.Second, func() bool {
		id := reg.ControllerID()
		return id == 2 || id == 3
	})
}

func TestControllerMarksPartitionOfflineWithoutISR(t *testing.T) {
	reg, store := newRegistry()
	_, s1 := startController(t, reg, store, 1, time.Hour)
	startController(t, reg, store, 2, time.Hour)

	reg.CreateTopic(TopicInfo{
		Name:       "solo",
		Config:     TopicConfig{NumPartitions: 1, ReplicationFactor: 1},
		Assignment: [][]int32{{1}},
	})
	store.CloseSession(s1)

	waitFor(t, "partition offline", 3*time.Second, func() bool {
		st, _, err := reg.PartitionState("solo", 0)
		return err == nil && st.Leader == -1
	})
	st, _, _ := reg.PartitionState("solo", 0)
	if len(st.ISR) != 0 {
		t.Fatalf("ISR should be empty, got %+v", st)
	}
}

func TestWaitForBrokers(t *testing.T) {
	reg, store := newRegistry()
	go func() {
		time.Sleep(30 * time.Millisecond)
		sid := store.CreateSession(time.Hour)
		reg.RegisterBroker(sid, BrokerInfo{ID: 1})
	}()
	live := reg.WaitForBrokers(1, 2*time.Second)
	if len(live) != 1 {
		t.Fatalf("live = %v", live)
	}
	if got := reg.WaitForBrokers(5, 50*time.Millisecond); len(got) != 1 {
		t.Fatalf("timeout path = %v", got)
	}
}

func TestQuotaRegistryRoundTrip(t *testing.T) {
	reg, _ := newRegistry()

	if _, ok, err := reg.GetQuota("tenant-a"); err != nil || ok {
		t.Fatalf("unconfigured quota: ok=%v err=%v", ok, err)
	}
	q := QuotaConfig{ProduceBytesPerSec: 1 << 20, FetchBytesPerSec: 4 << 20, RequestsPerSec: 100}
	if err := reg.SetQuota("tenant-a", q); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}
	got, ok, err := reg.GetQuota("tenant-a")
	if err != nil || !ok || got != q {
		t.Fatalf("GetQuota = %+v ok=%v err=%v, want %+v", got, ok, err, q)
	}

	// Upsert overwrites in place.
	q.RequestsPerSec = 50
	if err := reg.SetQuota("tenant-a", q); err != nil {
		t.Fatalf("SetQuota upsert: %v", err)
	}
	if got, _, _ := reg.GetQuota("tenant-a"); got.RequestsPerSec != 50 {
		t.Fatalf("upsert not applied: %+v", got)
	}

	if err := reg.SetQuota("tenant-b", QuotaConfig{RequestsPerSec: 10}); err != nil {
		t.Fatalf("SetQuota tenant-b: %v", err)
	}
	all := reg.Quotas()
	if len(all) != 2 || all["tenant-a"].RequestsPerSec != 50 || all["tenant-b"].RequestsPerSec != 10 {
		t.Fatalf("Quotas() = %+v", all)
	}

	if err := reg.DeleteQuota("tenant-a"); err != nil {
		t.Fatalf("DeleteQuota: %v", err)
	}
	if err := reg.DeleteQuota("tenant-a"); err != nil {
		t.Fatalf("DeleteQuota of absent quota should be nil, got %v", err)
	}
	if _, ok, _ := reg.GetQuota("tenant-a"); ok {
		t.Fatal("quota survived delete")
	}

	if err := reg.SetQuota("", QuotaConfig{}); err == nil {
		t.Fatal("empty principal accepted")
	}
}

func TestParseQuotaPath(t *testing.T) {
	if p, ok := ParseQuotaPath("/quotas/tenant-a"); !ok || p != "tenant-a" {
		t.Fatalf("ParseQuotaPath = %q, %v", p, ok)
	}
	for _, path := range []string{"/quotas/", "/topics/x", "/state/t/0"} {
		if _, ok := ParseQuotaPath(path); ok {
			t.Fatalf("ParseQuotaPath(%q) should not match", path)
		}
	}
}

// TestAllocateProducerAnonymous: every anonymous init gets a fresh unique
// id at epoch 0 — ids never collide even under concurrent allocation.
func TestAllocateProducerAnonymous(t *testing.T) {
	reg, _ := newRegistry()
	seen := make(map[int64]bool)
	for i := 0; i < 10; i++ {
		pi, err := reg.AllocateProducer("")
		if err != nil {
			t.Fatal(err)
		}
		if pi.Epoch != 0 {
			t.Fatalf("anonymous producer got epoch %d, want 0", pi.Epoch)
		}
		if seen[pi.ID] {
			t.Fatalf("producer id %d allocated twice", pi.ID)
		}
		seen[pi.ID] = true
	}
}

// TestAllocateProducerNamedEpochBump: a named producer keeps its id across
// re-inits while the epoch climbs — that is what fences a zombie instance
// after its replacement registered.
func TestAllocateProducerNamedEpochBump(t *testing.T) {
	reg, _ := newRegistry()
	first, err := reg.AllocateProducer("etl-loader")
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch != 0 {
		t.Fatalf("first init epoch = %d, want 0", first.Epoch)
	}
	for want := int32(1); want <= 3; want++ {
		pi, err := reg.AllocateProducer("etl-loader")
		if err != nil {
			t.Fatal(err)
		}
		if pi.ID != first.ID {
			t.Fatalf("named producer id changed: %d -> %d", first.ID, pi.ID)
		}
		if pi.Epoch != want {
			t.Fatalf("epoch = %d, want %d", pi.Epoch, want)
		}
	}
	// A different name gets a different id.
	other, err := reg.AllocateProducer("other")
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == first.ID {
		t.Fatal("distinct names share a producer id")
	}
}

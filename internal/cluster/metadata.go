// Package cluster defines the messaging layer's cluster metadata — broker
// registration, topic assignments, and per-partition leader/ISR state — and
// the controller that reassigns leadership when brokers fail (paper §4.3).
// All state lives in the coordination service so that every broker observes
// the same view through watches.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/coord"
)

// Well-known coordination paths.
const (
	BrokersPrefix  = "/brokers/"
	ControllerPath = "/controller"
	TopicsPrefix   = "/topics/"
	StatePrefix    = "/state/"
	QuotasPrefix   = "/quotas/"
	// ProducersPrefix holds idempotent-producer allocation state: the id
	// counter and per-name registrations (id + fencing epoch).
	ProducersPrefix = "/producers/"
)

// ErrNoTopic reports a lookup of an unknown topic.
var ErrNoTopic = errors.New("cluster: no such topic")

// BrokerInfo describes one broker's address. OpsAddr is the broker's
// ops-plane HTTP endpoint (/metrics, /healthz, ...), empty when disabled.
type BrokerInfo struct {
	ID      int32  `json:"id"`
	Host    string `json:"host"`
	Port    int32  `json:"port"`
	OpsAddr string `json:"opsAddr,omitempty"`
}

// Addr renders host:port.
func (b BrokerInfo) Addr() string { return fmt.Sprintf("%s:%d", b.Host, b.Port) }

// TopicConfig carries per-topic log settings. For tiered topics,
// RetentionMs/RetentionBytes bound the TOTAL (hot local + cold tiered)
// horizon and HotRetentionMs/HotRetentionBytes bound the local one.
type TopicConfig struct {
	NumPartitions     int32 `json:"numPartitions"`
	ReplicationFactor int16 `json:"replicationFactor"`
	RetentionMs       int64 `json:"retentionMs"`
	RetentionBytes    int64 `json:"retentionBytes"`
	SegmentBytes      int32 `json:"segmentBytes"`
	Compacted         bool  `json:"compacted"`
	// Tiered enables tiered log storage (internal/tier): leaders offload
	// sealed segments to the DFS and serve unbounded rewind transparently.
	Tiered            bool  `json:"tiered,omitempty"`
	HotRetentionMs    int64 `json:"hotRetentionMs,omitempty"`
	HotRetentionBytes int64 `json:"hotRetentionBytes,omitempty"`
	// Table marks the feed queryable (internal/table): each partition
	// leader materializes the compacted log into a key→value view and
	// serves point reads and range scans from it. Requires Compacted.
	Table bool `json:"table,omitempty"`
}

// TopicInfo is a topic's full metadata: configuration plus the replica
// assignment (Assignment[p] lists the broker ids replicating partition p;
// the first entry is the preferred leader).
type TopicInfo struct {
	Name       string      `json:"name"`
	Config     TopicConfig `json:"config"`
	Assignment [][]int32   `json:"assignment"`
}

// PartitionState is the dynamic leadership state of one partition.
type PartitionState struct {
	Leader int32   `json:"leader"` // -1 when offline
	Epoch  int32   `json:"epoch"`
	ISR    []int32 `json:"isr"`
}

// InISR reports whether broker id is in the in-sync replica set.
func (p PartitionState) InISR(id int32) bool {
	for _, r := range p.ISR {
		if r == id {
			return true
		}
	}
	return false
}

// brokerPath renders the registration path for a broker id.
func brokerPath(id int32) string { return BrokersPrefix + strconv.Itoa(int(id)) }

// statePath renders the partition-state path.
func statePath(topic string, partition int32) string {
	return StatePrefix + topic + "/" + strconv.Itoa(int(partition))
}

// Registry is a typed facade over the coordination store.
type Registry struct {
	store *coord.Store
}

// NewRegistry wraps a coordination store.
func NewRegistry(store *coord.Store) *Registry { return &Registry{store: store} }

// Store exposes the underlying coordination store for watch registration.
func (r *Registry) Store() *coord.Store { return r.store }

// RegisterBroker publishes an ephemeral registration for a broker. The node
// disappears when the broker's session expires, signalling failure.
func (r *Registry) RegisterBroker(sid coord.SessionID, info BrokerInfo) error {
	b, err := json.Marshal(info)
	if err != nil {
		return err
	}
	_, err = r.store.Create(brokerPath(info.ID), b, sid)
	return err
}

// LiveBrokers returns currently registered brokers sorted by id.
func (r *Registry) LiveBrokers() []BrokerInfo {
	var out []BrokerInfo
	for _, path := range r.store.List(BrokersPrefix) {
		v, _, err := r.store.Get(path)
		if err != nil {
			continue
		}
		var info BrokerInfo
		if json.Unmarshal(v, &info) == nil {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BrokerAlive reports whether a broker registration exists.
func (r *Registry) BrokerAlive(id int32) bool {
	_, _, err := r.store.Get(brokerPath(id))
	return err == nil
}

// CreateTopic writes topic metadata and the initial state of each
// partition: leader = first assigned replica, ISR = all assigned replicas.
func (r *Registry) CreateTopic(info TopicInfo) error {
	b, err := json.Marshal(info)
	if err != nil {
		return err
	}
	if _, err := r.store.Create(TopicsPrefix+info.Name, b, coord.NoSession); err != nil {
		return err
	}
	for p, replicas := range info.Assignment {
		st := PartitionState{Leader: replicas[0], Epoch: 1, ISR: append([]int32(nil), replicas...)}
		sb, err := json.Marshal(st)
		if err != nil {
			return err
		}
		if _, err := r.store.Create(statePath(info.Name, int32(p)), sb, coord.NoSession); err != nil {
			return err
		}
	}
	return nil
}

// DeleteTopic removes topic metadata and partition states.
func (r *Registry) DeleteTopic(name string) error {
	info, err := r.GetTopic(name)
	if err != nil {
		return err
	}
	for p := range info.Assignment {
		_ = r.store.Delete(statePath(name, int32(p)), -1)
	}
	return r.store.Delete(TopicsPrefix+name, -1)
}

// GetTopic returns a topic's metadata.
func (r *Registry) GetTopic(name string) (TopicInfo, error) {
	v, _, err := r.store.Get(TopicsPrefix + name)
	if err != nil {
		return TopicInfo{}, fmt.Errorf("%w: %s", ErrNoTopic, name)
	}
	var info TopicInfo
	if err := json.Unmarshal(v, &info); err != nil {
		return TopicInfo{}, err
	}
	return info, nil
}

// Topics returns all topic names, sorted.
func (r *Registry) Topics() []string {
	paths := r.store.List(TopicsPrefix)
	out := make([]string, 0, len(paths))
	for _, p := range paths {
		out = append(out, strings.TrimPrefix(p, TopicsPrefix))
	}
	return out
}

// PartitionState reads a partition's leadership state and its CAS version.
func (r *Registry) PartitionState(topic string, partition int32) (PartitionState, int64, error) {
	v, ver, err := r.store.Get(statePath(topic, partition))
	if err != nil {
		return PartitionState{}, 0, err
	}
	var st PartitionState
	if err := json.Unmarshal(v, &st); err != nil {
		return PartitionState{}, 0, err
	}
	return st, ver, nil
}

// SetPartitionState writes a partition's leadership state with CAS.
func (r *Registry) SetPartitionState(topic string, partition int32, st PartitionState, expectedVersion int64) (int64, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return 0, err
	}
	return r.store.Set(statePath(topic, partition), b, expectedVersion)
}

// QuotaConfig is one principal's (client-id's) rate quota, persisted in
// the coordination service so every broker converges on the same limits
// and they survive broker failover (§3.2/§4.4 multi-tenancy). Zero fields
// mean unlimited on that dimension.
type QuotaConfig struct {
	// ProduceBytesPerSec bounds appended record-payload bytes per second.
	ProduceBytesPerSec int64 `json:"produceBytesPerSec,omitempty"`
	// FetchBytesPerSec bounds consumer fetch-response bytes per second.
	FetchBytesPerSec int64 `json:"fetchBytesPerSec,omitempty"`
	// RequestsPerSec bounds the principal's total request rate.
	RequestsPerSec int64 `json:"requestsPerSec,omitempty"`
}

// IsZero reports whether the quota enforces nothing.
func (q QuotaConfig) IsZero() bool {
	return q.ProduceBytesPerSec == 0 && q.FetchBytesPerSec == 0 && q.RequestsPerSec == 0
}

// quotaPath renders the coordination path for a principal's quota.
func quotaPath(principal string) string { return QuotasPrefix + principal }

// SetQuota upserts a principal's quota.
func (r *Registry) SetQuota(principal string, q QuotaConfig) error {
	if principal == "" {
		return errors.New("cluster: quota principal must not be empty")
	}
	b, err := json.Marshal(q)
	if err != nil {
		return err
	}
	if _, err := r.store.Set(quotaPath(principal), b, -1); err == nil {
		return nil
	}
	_, err = r.store.Create(quotaPath(principal), b, coord.NoSession)
	if errors.Is(err, coord.ErrExists) {
		// Lost a create race; the node exists now, so Set must succeed.
		_, err = r.store.Set(quotaPath(principal), b, -1)
	}
	return err
}

// DeleteQuota removes a principal's quota (it falls back to the broker
// default). Deleting an absent quota is not an error.
func (r *Registry) DeleteQuota(principal string) error {
	err := r.store.Delete(quotaPath(principal), -1)
	if errors.Is(err, coord.ErrNotFound) {
		return nil
	}
	return err
}

// GetQuota reads a principal's quota; ok is false when none is configured.
func (r *Registry) GetQuota(principal string) (QuotaConfig, bool, error) {
	v, _, err := r.store.Get(quotaPath(principal))
	if err != nil {
		if errors.Is(err, coord.ErrNotFound) {
			return QuotaConfig{}, false, nil
		}
		return QuotaConfig{}, false, err
	}
	var q QuotaConfig
	if err := json.Unmarshal(v, &q); err != nil {
		return QuotaConfig{}, false, err
	}
	return q, true, nil
}

// Quotas returns every persisted quota, keyed by principal.
func (r *Registry) Quotas() map[string]QuotaConfig {
	out := make(map[string]QuotaConfig)
	for _, path := range r.store.List(QuotasPrefix) {
		principal := strings.TrimPrefix(path, QuotasPrefix)
		if q, ok, err := r.GetQuota(principal); err == nil && ok {
			out[principal] = q
		}
	}
	return out
}

// ParseQuotaPath extracts the principal from a /quotas/<principal> path.
func ParseQuotaPath(path string) (string, bool) {
	rest, found := strings.CutPrefix(path, QuotasPrefix)
	if !found || rest == "" {
		return "", false
	}
	return rest, true
}

// ------------------------------------------------- idempotent producers

// ProducerIdentity is an allocated idempotent-producer identity: a cluster
// unique id plus the epoch under which this instance produces. Brokers fence
// batches stamped with an older epoch than the newest they have seen.
type ProducerIdentity struct {
	ID    int64 `json:"id"`
	Epoch int32 `json:"epoch"`
}

const producerIDCounterPath = ProducersPrefix + "next-id"

func producerNamePath(name string) string { return ProducersPrefix + "names/" + name }

// AllocateProducer hands out a producer identity through the coordination
// store. An anonymous producer (empty name) gets a fresh id at epoch 0. A
// named producer gets a stable id keyed by its name with the epoch bumped on
// every registration: the newest instance holds the highest epoch, and
// brokers reject batches from earlier epochs (zombie fencing). All updates
// are CAS loops, so concurrent registrations race safely.
func (r *Registry) AllocateProducer(name string) (ProducerIdentity, error) {
	if name == "" {
		id, err := r.nextProducerID()
		if err != nil {
			return ProducerIdentity{}, err
		}
		return ProducerIdentity{ID: id, Epoch: 0}, nil
	}
	for attempt := 0; attempt < 16; attempt++ {
		v, ver, err := r.store.Get(producerNamePath(name))
		if errors.Is(err, coord.ErrNotFound) {
			id, err := r.nextProducerID()
			if err != nil {
				return ProducerIdentity{}, err
			}
			pi := ProducerIdentity{ID: id, Epoch: 0}
			b, _ := json.Marshal(pi)
			if _, err := r.store.Create(producerNamePath(name), b, coord.NoSession); err == nil {
				return pi, nil
			} else if !errors.Is(err, coord.ErrExists) {
				return ProducerIdentity{}, err
			}
			continue // lost the create race: re-read and bump instead
		}
		if err != nil {
			return ProducerIdentity{}, err
		}
		var pi ProducerIdentity
		if err := json.Unmarshal(v, &pi); err != nil {
			return ProducerIdentity{}, err
		}
		pi.Epoch++
		b, _ := json.Marshal(pi)
		if _, err := r.store.Set(producerNamePath(name), b, ver); err == nil {
			return pi, nil
		} else if !errors.Is(err, coord.ErrBadVersion) {
			return ProducerIdentity{}, err
		}
	}
	return ProducerIdentity{}, errors.New("cluster: producer registration contention")
}

// nextProducerID CAS-increments the shared id counter.
func (r *Registry) nextProducerID() (int64, error) {
	for attempt := 0; attempt < 64; attempt++ {
		v, ver, err := r.store.Get(producerIDCounterPath)
		if errors.Is(err, coord.ErrNotFound) {
			if _, err := r.store.Create(producerIDCounterPath, []byte("1"), coord.NoSession); err == nil {
				return 0, nil
			} else if !errors.Is(err, coord.ErrExists) {
				return 0, err
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		next, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("cluster: corrupt producer-id counter %q", v)
		}
		if _, err := r.store.Set(producerIDCounterPath, []byte(strconv.FormatInt(next+1, 10)), ver); err == nil {
			return next, nil
		} else if !errors.Is(err, coord.ErrBadVersion) {
			return 0, err
		}
	}
	return 0, errors.New("cluster: producer-id counter contention")
}

// ElectController attempts to become the controller, returning true on win.
func (r *Registry) ElectController(sid coord.SessionID, brokerID int32) (bool, error) {
	return r.store.TryAcquire(ControllerPath, sid, []byte(strconv.Itoa(int(brokerID))))
}

// ControllerID returns the current controller's broker id, or -1 if none.
func (r *Registry) ControllerID() int32 {
	v, _, err := r.store.Get(ControllerPath)
	if err != nil {
		return -1
	}
	id, err := strconv.Atoi(string(v))
	if err != nil {
		return -1
	}
	return int32(id)
}

// AssignReplicas distributes numPartitions partitions over the given broker
// ids with the requested replication factor, round-robin with a rotating
// start so leadership spreads evenly (the load-balancing the paper leans on
// in §4.4). Broker ids are sorted first for determinism.
func AssignReplicas(brokerIDs []int32, numPartitions int32, rf int16) ([][]int32, error) {
	if len(brokerIDs) == 0 {
		return nil, errors.New("cluster: no live brokers")
	}
	if int(rf) > len(brokerIDs) {
		return nil, fmt.Errorf("cluster: replication factor %d exceeds %d live brokers", rf, len(brokerIDs))
	}
	if rf < 1 {
		rf = 1
	}
	ids := append([]int32(nil), brokerIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([][]int32, numPartitions)
	for p := int32(0); p < numPartitions; p++ {
		replicas := make([]int32, rf)
		for i := int16(0); i < rf; i++ {
			replicas[i] = ids[(int(p)+int(i))%len(ids)]
		}
		out[p] = replicas
	}
	return out, nil
}

// ParseStatePath splits a /state/<topic>/<partition> path. ok is false for
// foreign paths.
func ParseStatePath(path string) (topic string, partition int32, ok bool) {
	rest, found := strings.CutPrefix(path, StatePrefix)
	if !found {
		return "", 0, false
	}
	idx := strings.LastIndex(rest, "/")
	if idx <= 0 {
		return "", 0, false
	}
	p, err := strconv.Atoi(rest[idx+1:])
	if err != nil {
		return "", 0, false
	}
	return rest[:idx], int32(p), true
}

// ParseBrokerPath extracts the broker id from a /brokers/<id> path.
func ParseBrokerPath(path string) (int32, bool) {
	rest, found := strings.CutPrefix(path, BrokersPrefix)
	if !found {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return int32(id), true
}

// WaitForBrokers blocks until n brokers are registered or the timeout
// elapses, returning the live set. Used by cluster bootstrap and tests.
func (r *Registry) WaitForBrokers(n int, timeout time.Duration) []BrokerInfo {
	deadline := time.Now().Add(timeout)
	for {
		live := r.LiveBrokers()
		if len(live) >= n || time.Now().After(deadline) {
			return live
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package client

import "encoding/json"

// EncodeAnnotations marshals checkpoint annotations (e.g. software version,
// rewind markers) into the metadata string stored by the offset manager
// (paper §4.2). A nil or empty map encodes as the empty string.
func EncodeAnnotations(a map[string]string) string {
	if len(a) == 0 {
		return ""
	}
	b, err := json.Marshal(a)
	if err != nil {
		return ""
	}
	return string(b)
}

// DecodeAnnotations parses a checkpoint metadata string back into an
// annotation map. Invalid or empty metadata yields an empty map.
func DecodeAnnotations(s string) map[string]string {
	out := make(map[string]string)
	if s == "" {
		return out
	}
	_ = json.Unmarshal([]byte(s), &out)
	return out
}

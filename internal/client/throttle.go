package client

import (
	"sync"
	"time"
)

// ThrottleStats reports how often (and for how long) a client delayed its
// requests to honor broker-side quota verdicts (ThrottleTimeMs) — the
// client half of the multi-tenant backpressure loop.
type ThrottleStats struct {
	// Count is how many responses carried a non-zero throttle.
	Count int64
	// Delay is the cumulative wall-clock delay actually honored (time
	// spent waiting in await, not the sum of verdicts received — several
	// senders can honor one verdict window together).
	Delay time.Duration
}

// throttleTracker holds broker quota verdicts for one client role and
// paces its requests. Producer and Consumer share it: the producer keys
// everything under 0 (one pacing lane per producer), the consumer keys by
// broker id (a verdict from one leader must not stall fetches to others).
//
// Honoring is cooperative by design: the broker charges its buckets and
// answers immediately (it never delays a handler), so a client that skips
// the pacing — including a producer recreated per send, which always
// starts verdict-free — gains nothing durable: the server-side deficit
// keeps growing and every response keeps carrying a bigger verdict.
type throttleTracker struct {
	mu    sync.Mutex
	until map[int32]time.Time
	stats ThrottleStats
}

// note records a ThrottleTimeMs verdict from a response.
func (t *throttleTracker) note(key int32, ms int32) {
	if ms <= 0 {
		return
	}
	d := time.Duration(ms) * time.Millisecond
	t.mu.Lock()
	if t.until == nil {
		t.until = make(map[int32]time.Time)
	}
	if u := time.Now().Add(d); u.After(t.until[key]) {
		t.until[key] = u
	}
	t.stats.Count++
	t.mu.Unlock()
}

// await honors the outstanding verdict for key before the next request,
// waiting at most maxWait and aborting early when cancel closes (a
// closing producer's final flush ships rather than hanging — see the
// cooperative-honoring note on the type). It returns how long it actually
// waited and whether the verdict was honored in full; false means the
// caller should skip this request round and try again later, with the
// wait already spent counted against its own budget.
func (t *throttleTracker) await(key int32, maxWait time.Duration, cancel <-chan struct{}) (time.Duration, bool) {
	t.mu.Lock()
	until := t.until[key]
	t.mu.Unlock()
	d := time.Until(until)
	if d <= 0 {
		return 0, true
	}
	wait, honored := d, true
	if d > maxWait {
		wait, honored = maxWait, false
	}
	if wait <= 0 {
		return 0, honored
	}
	start := time.Now()
	select {
	case <-time.After(wait):
	case <-cancel: // nil channel blocks forever, i.e. no cancellation
		wait = time.Since(start)
	}
	t.mu.Lock()
	t.stats.Delay += wait
	t.mu.Unlock()
	return wait, honored
}

// throttled snapshots the stats.
func (t *throttleTracker) throttled() ThrottleStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

package client

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Errors returned by the cluster client.
var (
	// ErrNoBrokers reports that no bootstrap broker was reachable.
	ErrNoBrokers = errors.New("client: no reachable brokers")
	// ErrUnknownPartition reports routing to a nonexistent partition.
	ErrUnknownPartition = errors.New("client: unknown topic or partition")
	// ErrNoLeader reports a partition without an elected leader.
	ErrNoLeader = errors.New("client: partition has no leader")
)

// Config parameterises a Client.
type Config struct {
	// Bootstrap lists broker addresses used for initial metadata.
	Bootstrap []string
	// ClientID identifies this client in requests and logs.
	ClientID string
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// RetryBackoff is the delay between retries of retriable failures.
	RetryBackoff time.Duration
	// MaxRetries bounds retries of retriable failures.
	MaxRetries int
	// MetadataTTL is how long cached metadata is trusted.
	MetadataTTL time.Duration
	// Dialer opens transport connections; nil means plain TCP. Chaos
	// harnesses inject a fault-wrapping dialer here so every connection the
	// client (and its producers/consumers) opens crosses the injected
	// network.
	Dialer Dialer
	// Metrics, when non-nil, receives client-side instrumentation: acked
	// produce records, consumed records and the end-to-end produce→consume
	// latency histogram (batch-append timestamp to fetch decode) per
	// topic. Nil disables client instrumentation entirely.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.ClientID == "" {
		c.ClientID = "liquid"
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.MetadataTTL == 0 {
		c.MetadataTTL = 10 * time.Second
	}
	return c
}

// Client is a cluster-aware protocol client: it maintains a metadata cache
// (brokers, partition leaders) and shared connections, and offers admin
// operations. Producers, consumers and the processing layer share one
// Client.
type Client struct {
	cfg Config
	met *clientMetrics // nil unless Config.Metrics is set

	mu     sync.Mutex
	conns  map[int32]*Conn // shared request/response conns by broker id
	meta   *wire.MetadataResponse
	metaAt time.Time
	closed bool
}

// clientMetrics pre-resolves the client-side families so producers and
// consumers record into child metrics without per-record registry lookups.
type clientMetrics struct {
	produceAcked   *metrics.CounterFamily   // client.produce.acked.records{topic}
	consumeRecords *metrics.CounterFamily   // client.consume.records{topic}
	e2eLatency     *metrics.HistogramFamily // client.e2e.latency.ns{topic}
}

func newClientMetrics(reg *metrics.Registry) *clientMetrics {
	return &clientMetrics{
		produceAcked:   reg.CounterFamily("client.produce.acked.records", "topic"),
		consumeRecords: reg.CounterFamily("client.consume.records", "topic"),
		e2eLatency:     reg.HistogramFamily("client.e2e.latency.ns", "topic"),
	}
}

// New creates a client. It does not dial until first use.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Bootstrap) == 0 {
		return nil, ErrNoBrokers
	}
	c := &Client{cfg: cfg, conns: make(map[int32]*Conn)}
	if cfg.Metrics != nil {
		c.met = newClientMetrics(cfg.Metrics)
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Client) Config() Config { return c.cfg }

// dialAny opens a throwaway connection to any bootstrap broker.
func (c *Client) dialAny() (*Conn, error) {
	var lastErr error
	for _, addr := range c.cfg.Bootstrap {
		conn, err := DialWith(c.cfg.Dialer, addr, c.cfg.ClientID, c.cfg.DialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %v", ErrNoBrokers, lastErr)
}

// RefreshMetadata fetches cluster metadata from any broker.
func (c *Client) RefreshMetadata() error {
	conn, err := c.dialAny()
	if err != nil {
		return err
	}
	defer conn.Close()
	var resp wire.MetadataResponse
	if err := conn.RoundTrip(wire.APIMetadata, &wire.MetadataRequest{}, &resp); err != nil {
		return err
	}
	c.mu.Lock()
	c.meta = &resp
	c.metaAt = time.Now()
	c.mu.Unlock()
	return nil
}

// metadata returns cached metadata, refreshing if stale or absent.
func (c *Client) metadata() (*wire.MetadataResponse, error) {
	c.mu.Lock()
	meta, at := c.meta, c.metaAt
	ttl := c.cfg.MetadataTTL
	c.mu.Unlock()
	if meta != nil && time.Since(at) < ttl {
		return meta, nil
	}
	if err := c.RefreshMetadata(); err != nil {
		if meta != nil {
			return meta, nil // stale is better than nothing
		}
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta, nil
}

// Brokers returns the known brokers.
func (c *Client) Brokers() ([]wire.BrokerMeta, error) {
	meta, err := c.metadata()
	if err != nil {
		return nil, err
	}
	return meta.Brokers, nil
}

// TopicNames lists all topics known to the cluster, sorted.
func (c *Client) TopicNames() ([]string, error) {
	meta, err := c.metadata()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(meta.Topics))
	for i := range meta.Topics {
		if meta.Topics[i].Err == wire.ErrNone {
			out = append(out, meta.Topics[i].Name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// PartitionCount returns the number of partitions of a topic.
func (c *Client) PartitionCount(topic string) (int32, error) {
	meta, err := c.metadata()
	if err != nil {
		return 0, err
	}
	for i := range meta.Topics {
		if meta.Topics[i].Name == topic && meta.Topics[i].Err == wire.ErrNone {
			return int32(len(meta.Topics[i].Partitions)), nil
		}
	}
	// Unknown topic: force one refresh in case it was just created.
	if err := c.RefreshMetadata(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	meta = c.meta
	c.mu.Unlock()
	for i := range meta.Topics {
		if meta.Topics[i].Name == topic && meta.Topics[i].Err == wire.ErrNone {
			return int32(len(meta.Topics[i].Partitions)), nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrUnknownPartition, topic)
}

// LeaderFor returns the broker id leading a partition.
func (c *Client) LeaderFor(topic string, partition int32) (int32, error) {
	meta, err := c.metadata()
	if err != nil {
		return -1, err
	}
	for i := range meta.Topics {
		t := &meta.Topics[i]
		if t.Name != topic {
			continue
		}
		for j := range t.Partitions {
			if t.Partitions[j].ID == partition {
				leader := t.Partitions[j].Leader
				if leader < 0 {
					return -1, ErrNoLeader
				}
				return leader, nil
			}
		}
	}
	return -1, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topic, partition)
}

// brokerAddr resolves a broker id to its address.
func (c *Client) brokerAddr(id int32) (string, error) {
	meta, err := c.metadata()
	if err != nil {
		return "", err
	}
	for _, b := range meta.Brokers {
		if b.ID == id {
			return fmt.Sprintf("%s:%d", b.Host, b.Port), nil
		}
	}
	return "", fmt.Errorf("client: broker %d not in metadata", id)
}

// ConnTo returns a shared connection to a broker, dialing if needed.
// Callers must not issue blocking (long-poll) requests on shared
// connections; use DialDedicated for those.
func (c *Client) ConnTo(brokerID int32) (*Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	conn, ok := c.conns[brokerID]
	c.mu.Unlock()
	if ok && !conn.Closed() {
		return conn, nil
	}
	addr, err := c.brokerAddr(brokerID)
	if err != nil {
		return nil, err
	}
	nc, err := DialWith(c.cfg.Dialer, addr, c.cfg.ClientID, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		nc.Close()
		return nil, ErrConnClosed
	}
	if old, ok := c.conns[brokerID]; ok && !old.Closed() {
		nc.Close()
		return old, nil
	}
	c.conns[brokerID] = nc
	return nc, nil
}

// DialDedicated opens a new private connection to a broker, suitable for
// blocking requests (long-poll fetches, group joins).
func (c *Client) DialDedicated(brokerID int32) (*Conn, error) {
	addr, err := c.brokerAddr(brokerID)
	if err != nil {
		return nil, err
	}
	return DialWith(c.cfg.Dialer, addr, c.cfg.ClientID, c.cfg.DialTimeout)
}

// InvalidateMetadata forces the next metadata access to refresh; called
// after retriable routing errors.
func (c *Client) InvalidateMetadata() {
	c.mu.Lock()
	c.metaAt = time.Time{}
	c.mu.Unlock()
}

// dropConn discards a cached connection after an error.
func (c *Client) dropConn(brokerID int32) {
	c.mu.Lock()
	if conn, ok := c.conns[brokerID]; ok {
		conn.Close()
		delete(c.conns, brokerID)
	}
	c.mu.Unlock()
}

// CreateTopic creates a topic cluster-wide.
func (c *Client) CreateTopic(spec wire.TopicSpec) error {
	conn, err := c.dialAny()
	if err != nil {
		return err
	}
	defer conn.Close()
	var resp wire.CreateTopicsResponse
	err = conn.RoundTrip(wire.APICreateTopics, &wire.CreateTopicsRequest{Topics: []wire.TopicSpec{spec}}, &resp)
	if err != nil {
		return err
	}
	if len(resp.Results) != 1 {
		return errors.New("client: malformed create response")
	}
	c.InvalidateMetadata()
	return resp.Results[0].Err.Err()
}

// DeleteTopic deletes a topic cluster-wide.
func (c *Client) DeleteTopic(name string) error {
	conn, err := c.dialAny()
	if err != nil {
		return err
	}
	defer conn.Close()
	var resp wire.DeleteTopicsResponse
	err = conn.RoundTrip(wire.APIDeleteTopics, &wire.DeleteTopicsRequest{Names: []string{name}}, &resp)
	if err != nil {
		return err
	}
	if len(resp.Results) != 1 {
		return errors.New("client: malformed delete response")
	}
	c.InvalidateMetadata()
	return resp.Results[0].Err.Err()
}

// SetQuota persists a principal's (client-id's) rate quota cluster-wide.
// Any broker accepts the write; all brokers converge through the
// coordination service, and the quota survives broker failover. Zero
// fields mean unlimited on that dimension.
func (c *Client) SetQuota(entry wire.QuotaEntry) error {
	return c.alterQuota(wire.AlterQuotaOp{Entry: entry})
}

// DeleteQuota removes a principal's quota; the principal falls back to the
// broker default.
func (c *Client) DeleteQuota(principal string) error {
	return c.alterQuota(wire.AlterQuotaOp{Entry: wire.QuotaEntry{Principal: principal}, Remove: true})
}

func (c *Client) alterQuota(op wire.AlterQuotaOp) error {
	conn, err := c.dialAny()
	if err != nil {
		return err
	}
	defer conn.Close()
	var resp wire.AlterQuotasResponse
	if err := conn.RoundTrip(wire.APIAlterQuotas, &wire.AlterQuotasRequest{Ops: []wire.AlterQuotaOp{op}}, &resp); err != nil {
		return err
	}
	if len(resp.Results) != 1 {
		return errors.New("client: malformed alter quotas response")
	}
	return resp.Results[0].Err.Err()
}

// DescribeQuotas returns the persisted quota entries for the named
// principals, or every persisted quota when none are named. Principals
// without a persisted quota are omitted (they run at the broker default).
func (c *Client) DescribeQuotas(principals ...string) ([]wire.QuotaEntry, error) {
	conn, err := c.dialAny()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	var resp wire.DescribeQuotasResponse
	if err := conn.RoundTrip(wire.APIDescribeQuotas, &wire.DescribeQuotasRequest{Principals: principals}, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, resp.Err.Err()
}

// ListOffset resolves a timestamp to an offset on the partition leader.
// Use wire.TimestampEarliest / wire.TimestampLatest for the log ends.
func (c *Client) ListOffset(topic string, partition int32, timestamp int64) (int64, error) {
	var offset int64 = -1
	err := c.withLeaderRetry(topic, partition, func(conn *Conn) (wire.ErrorCode, error) {
		req := &wire.ListOffsetsRequest{Topics: []wire.ListOffsetsTopic{{
			Name:       topic,
			Partitions: []wire.ListOffsetsPartition{{Partition: partition, Timestamp: timestamp}},
		}}}
		var resp wire.ListOffsetsResponse
		if err := conn.RoundTrip(wire.APIListOffsets, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		if len(resp.Topics) != 1 || len(resp.Topics[0].Partitions) != 1 {
			return wire.ErrNone, errors.New("client: malformed list offsets response")
		}
		p := resp.Topics[0].Partitions[0]
		offset = p.Offset
		return p.Err, nil
	})
	return offset, err
}

// TierStatus returns the tiered-storage status of every partition of a
// topic, each answered by its current leader: hot/cold segment counts,
// tiered bytes, and the local vs tiered start offsets. Works on non-tiered
// topics too (the tiered fields are zero and Tiered is false). Each
// broker's response answers every partition it leads at once, so the call
// costs one round trip per leader, not per partition.
func (c *Client) TierStatus(topic string) ([]wire.TierStatusPartition, error) {
	n, err := c.PartitionCount(topic)
	if err != nil {
		return nil, err
	}
	statuses := make([]*wire.TierStatusPartition, n)
	for p := int32(0); p < n; p++ {
		if statuses[p] != nil {
			continue // already answered by an earlier leader's response
		}
		err := c.withLeaderRetry(topic, p, func(conn *Conn) (wire.ErrorCode, error) {
			req := &wire.TierStatusRequest{Topics: []string{topic}}
			var resp wire.TierStatusResponse
			if err := conn.RoundTrip(wire.APITierStatus, req, &resp); err != nil {
				return wire.ErrNone, err
			}
			// Retry p if unanswered (the leader moved between metadata
			// and the request); keep every good answer either way.
			code := wire.ErrNotLeaderForPartition
			for i := range resp.Topics {
				if resp.Topics[i].Name != topic {
					continue
				}
				for j := range resp.Topics[i].Partitions {
					q := resp.Topics[i].Partitions[j]
					if q.Partition == p {
						code = q.Err
					}
					if q.Err == wire.ErrNone && q.Partition >= 0 && q.Partition < n && statuses[q.Partition] == nil {
						statuses[q.Partition] = &q
					}
				}
			}
			return code, nil
		})
		if err != nil {
			return nil, err
		}
		if statuses[p] == nil {
			return nil, fmt.Errorf("client: no tier status for %s/%d", topic, p)
		}
	}
	out := make([]wire.TierStatusPartition, n)
	for i, s := range statuses {
		out[i] = *s
	}
	return out, nil
}

// withLeaderRetry runs fn against the partition leader, retrying retriable
// protocol codes and connection failures with metadata refreshes.
func (c *Client) withLeaderRetry(topic string, partition int32, fn func(*Conn) (wire.ErrorCode, error)) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.RetryBackoff)
			c.InvalidateMetadata()
		}
		leader, err := c.LeaderFor(topic, partition)
		if err != nil {
			lastErr = err
			continue
		}
		conn, err := c.ConnTo(leader)
		if err != nil {
			lastErr = err
			continue
		}
		code, err := fn(conn)
		if err != nil {
			c.dropConn(leader)
			lastErr = err
			continue
		}
		if code == wire.ErrNone {
			return nil
		}
		lastErr = code.Err()
		if !code.Retriable() {
			return lastErr
		}
	}
	return fmt.Errorf("client: retries exhausted for %s/%d: %w", topic, partition, lastErr)
}

// InitProducer obtains an idempotent-producer identity (id + epoch) from
// any broker. A named producer gets its stable id back with a bumped epoch,
// fencing any earlier instance still sending under the old one; an empty
// name allocates a fresh id at epoch 0.
func (c *Client) InitProducer(name string) (int64, int32, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.RetryBackoff)
		}
		conn, err := c.dialAny()
		if err != nil {
			lastErr = err
			continue
		}
		var resp wire.InitProducerResponse
		err = conn.RoundTrip(wire.APIInitProducer, &wire.InitProducerRequest{Name: name}, &resp)
		conn.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Err != wire.ErrNone {
			lastErr = resp.Err.Err()
			if !resp.Err.Retriable() {
				return -1, -1, lastErr
			}
			continue
		}
		return resp.ProducerID, resp.Epoch, nil
	}
	return -1, -1, fmt.Errorf("client: init producer: %w", lastErr)
}

// FindCoordinator locates the group coordinator broker.
func (c *Client) FindCoordinator(group string) (int32, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.RetryBackoff)
		}
		conn, err := c.dialAny()
		if err != nil {
			lastErr = err
			continue
		}
		var resp wire.FindCoordinatorResponse
		err = conn.RoundTrip(wire.APIFindCoordinator, &wire.FindCoordinatorRequest{Key: group}, &resp)
		conn.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Err == wire.ErrNone {
			return resp.NodeID, nil
		}
		lastErr = resp.Err.Err()
		if !resp.Err.Retriable() {
			return -1, lastErr
		}
	}
	return -1, fmt.Errorf("client: coordinator lookup failed: %w", lastErr)
}

// CommitOffsets checkpoints offsets with annotations through the offset
// manager (paper §4.2). Annotations are marshalled into the checkpoint
// metadata; pass nil for a plain commit.
func (c *Client) CommitOffsets(group string, offsets map[string]map[int32]int64, annotations map[string]string) error {
	metadata := EncodeAnnotations(annotations)
	req := &wire.OffsetCommitRequest{Group: group}
	for topic, parts := range offsets {
		t := wire.OffsetCommitTopic{Name: topic}
		for p, off := range parts {
			t.Partitions = append(t.Partitions, wire.OffsetCommitPartition{
				Partition: p, Offset: off, Metadata: metadata,
			})
		}
		req.Topics = append(req.Topics, t)
	}
	return c.withCoordinatorRetry(group, func(conn *Conn) (wire.ErrorCode, error) {
		var resp wire.OffsetCommitResponse
		if err := conn.RoundTrip(wire.APIOffsetCommit, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		for _, t := range resp.Topics {
			for _, p := range t.Partitions {
				if p.Err != wire.ErrNone {
					return p.Err, nil
				}
			}
		}
		return wire.ErrNone, nil
	})
}

// FetchOffsets returns the latest committed offsets for a group; absent
// partitions map to -1.
func (c *Client) FetchOffsets(group, topic string, partitions []int32) (map[int32]int64, error) {
	out := make(map[int32]int64, len(partitions))
	err := c.withCoordinatorRetry(group, func(conn *Conn) (wire.ErrorCode, error) {
		req := &wire.OffsetFetchRequest{
			Group:  group,
			Topics: []wire.OffsetFetchTopic{{Name: topic, Partitions: partitions}},
		}
		var resp wire.OffsetFetchResponse
		if err := conn.RoundTrip(wire.APIOffsetFetch, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		for _, t := range resp.Topics {
			for _, p := range t.Partitions {
				if p.Err != wire.ErrNone {
					return p.Err, nil
				}
				out[p.Partition] = p.Offset
			}
		}
		return wire.ErrNone, nil
	})
	return out, err
}

// QueryOffset performs metadata-based access: the most recent checkpoint
// whose annotation matches, or — with key "@timestamp" — the last
// checkpoint at or before the timestamp (milliseconds, as a string).
func (c *Client) QueryOffset(group, topic string, partition int32, key, value string) (offset int64, found bool, err error) {
	offset = -1
	err = c.withCoordinatorRetry(group, func(conn *Conn) (wire.ErrorCode, error) {
		req := &wire.OffsetQueryRequest{
			Group: group, Topic: topic, Partition: partition,
			AnnotationKey: key, AnnotationValue: value,
		}
		var resp wire.OffsetQueryResponse
		if err := conn.RoundTrip(wire.APIOffsetQuery, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		if resp.Err != wire.ErrNone {
			return resp.Err, nil
		}
		found = resp.Found
		offset = resp.Offset
		return wire.ErrNone, nil
	})
	return offset, found, err
}

// withCoordinatorRetry runs fn against the group coordinator with retries.
func (c *Client) withCoordinatorRetry(group string, fn func(*Conn) (wire.ErrorCode, error)) error {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.RetryBackoff)
			c.InvalidateMetadata()
		}
		coord, err := c.FindCoordinator(group)
		if err != nil {
			lastErr = err
			continue
		}
		conn, err := c.ConnTo(coord)
		if err != nil {
			lastErr = err
			continue
		}
		code, err := fn(conn)
		if err != nil {
			c.dropConn(coord)
			lastErr = err
			continue
		}
		if code == wire.ErrNone {
			return nil
		}
		lastErr = code.Err()
		if !code.Retriable() {
			return lastErr
		}
	}
	return fmt.Errorf("client: coordinator retries exhausted for group %s: %w", group, lastErr)
}

// Close closes all shared connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, conn := range c.conns {
		conn.Close()
		delete(c.conns, id)
	}
}

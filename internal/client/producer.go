package client

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/storage/record"
	"repro/internal/wire"
)

// ErrProducerClosed reports sends on a closed producer.
var ErrProducerClosed = errors.New("client: producer closed")

// Message is a produced or consumed message.
type Message struct {
	Topic     string
	Partition int32 // assigned by the partitioner when producing
	Offset    int64 // assigned by the broker
	Timestamp int64 // ms since epoch; 0 lets the broker stamp append time
	Key       []byte
	Value     []byte
	Headers   []record.Header
}

// Partitioner chooses a partition for a message.
type Partitioner interface {
	Partition(msg *Message, numPartitions int32) int32
}

// HashPartitioner routes keyed messages by FNV-1a of the key (semantic
// routing: all updates for a key share a partition and therefore a total
// order) and unkeyed messages round-robin (load balancing), the two
// policies named in §3.1.
type HashPartitioner struct {
	mu sync.Mutex
	rr uint32
}

// Partition implements Partitioner.
func (h *HashPartitioner) Partition(msg *Message, numPartitions int32) int32 {
	if msg.Key == nil {
		h.mu.Lock()
		h.rr++
		v := h.rr
		h.mu.Unlock()
		return int32(v % uint32(numPartitions))
	}
	f := fnv.New32a()
	f.Write(msg.Key)
	return int32(f.Sum32() % uint32(numPartitions))
}

// RoundRobinPartitioner ignores keys and spreads messages evenly.
type RoundRobinPartitioner struct {
	mu sync.Mutex
	rr uint32
}

// Partition implements Partitioner.
func (r *RoundRobinPartitioner) Partition(_ *Message, numPartitions int32) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rr++
	return int32(r.rr % uint32(numPartitions))
}

// Codec selects the wire/storage compression of produced batches.
type Codec = record.Codec

// Producer batch codecs (all stdlib).
const (
	// CodecNone sends batches uncompressed.
	CodecNone = record.CodecNone
	// CodecGzip compresses batches with gzip.
	CodecGzip = record.CodecGzip
	// CodecFlate compresses batches with raw DEFLATE (smaller framing
	// than gzip, same algorithm).
	CodecFlate = record.CodecFlate
)

// ParseCodec maps a configuration string ("none", "gzip", "flate") to a
// Codec; CLIs use it for -codec flags.
func ParseCodec(s string) (Codec, error) { return record.ParseCodec(s) }

// ProducerConfig parameterises a Producer.
type ProducerConfig struct {
	// Acks selects durability: 0 fire-and-forget, 1 leader ack,
	// -1 all in-sync replicas (paper §4.3).
	Acks int16
	// BatchBytes flushes a partition's buffer when it grows past this.
	BatchBytes int
	// Linger bounds how long records wait for batching before the
	// background flusher sends them.
	Linger time.Duration
	// Partitioner routes messages; nil selects HashPartitioner.
	Partitioner Partitioner
	// TimeoutMs is the broker-side wait bound for acks=all.
	TimeoutMs int32
	// Codec compresses each flushed batch on the wire and in the log
	// (CodecNone, CodecGzip or CodecFlate). Brokers store, replicate and
	// serve the compressed batch verbatim; consumers decompress
	// transparently. Compression is per sealed batch, so topics may mix
	// codecs freely (paper §3.1: batches move through the brokers as
	// opaque blobs).
	Codec record.Codec
	// OnError receives asynchronous delivery failures (after retries).
	OnError func(Message, error)
	// Name optionally identifies the producer across restarts: a named
	// producer re-registering receives its stable producer id with a
	// bumped epoch, fencing a zombie instance still sending under the old
	// one. Anonymous producers get a fresh id per instance.
	Name string
	// DisableIdempotence opts out of idempotent produce. By default every
	// acknowledged produce (acks 1 or all) carries a producer id, epoch and
	// per-partition sequence, letting brokers deduplicate retried batches —
	// a retry across a leader failover appends exactly once. Fire-and-forget
	// (AcksNone) sends are never idempotent: with no response there is
	// nothing to retry.
	DisableIdempotence bool
}

func (c ProducerConfig) withDefaults() ProducerConfig {
	if c.Acks == 0 {
		// Acks 0 must be requested explicitly via AcksNone: a zero struct
		// gets safe leader acks.
		c.Acks = 1
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 64 << 10
	}
	if c.Linger == 0 {
		c.Linger = 5 * time.Millisecond
	}
	if c.Partitioner == nil {
		c.Partitioner = &HashPartitioner{}
	}
	if c.TimeoutMs == 0 {
		c.TimeoutMs = 5000
	}
	return c
}

// AcksNone is the explicit fire-and-forget setting for
// ProducerConfig.Acks.
const AcksNone int16 = -99

// AcksAll waits for the full in-sync replica set.
const AcksAll int16 = -1

// effectiveAcks maps the config sentinel to the wire value.
func effectiveAcks(acks int16) int16 {
	if acks == AcksNone {
		return 0
	}
	return acks
}

// Producer batches messages per partition and publishes them to partition
// leaders. Safe for concurrent use.
type Producer struct {
	c   *Client
	cfg ProducerConfig

	mu      sync.Mutex
	batches map[string]map[int32][]record.Record // topic -> partition -> pending
	pending int
	closed  bool

	// flushMu serialises flushOnce end to end (drain + delivery). Without
	// it, Flush could observe an empty buffer and return while a linger
	// tick was still delivering records enqueued before the Flush call —
	// breaking the "synchronously delivers everything buffered so far"
	// contract (and Close's equivalent). Holding it across delivery means
	// Flush returns only after any in-flight flush has finished AND the
	// remainder it drained itself is delivered or reported to OnError.
	flushMu sync.Mutex

	// throttle holds the broker's backpressure verdicts (ThrottleTimeMs
	// on produce responses); the next produce request honors them.
	throttle throttleTracker

	// idemMu guards the idempotence state below AND is held across each
	// stamped send: sequence allocation and delivery must not interleave
	// between concurrent produce calls, or a later sequence could reach the
	// broker first and be rejected as out of order.
	idemMu sync.Mutex
	pid    int64 // allocated producer id; -1 until initialised
	pepoch int32
	pidOK  bool                       // identity is live
	seqs   map[string]map[int32]int64 // topic -> partition -> next base sequence

	flushNow chan struct{}
	done     chan struct{}
}

// NewProducer creates a producer on a client.
func NewProducer(c *Client, cfg ProducerConfig) *Producer {
	p := &Producer{
		c:        c,
		cfg:      cfg.withDefaults(),
		batches:  make(map[string]map[int32][]record.Record),
		pid:      -1,
		seqs:     make(map[string]map[int32]int64),
		flushNow: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go p.flushLoop()
	return p
}

// Send buffers a message for delivery, routed by the configured
// partitioner (Message.Partition is ignored; use SendExplicit for manual
// routing). Delivery happens on the next flush (size, linger, or explicit
// Flush).
func (p *Producer) Send(msg Message) error {
	n, err := p.c.PartitionCount(msg.Topic)
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("%w: %s", ErrUnknownPartition, msg.Topic)
	}
	return p.enqueue(msg, p.cfg.Partitioner.Partition(&msg, n))
}

// SendExplicit buffers a message for the exact partition in
// Message.Partition, bypassing the partitioner. The processing layer uses
// it to route changelog updates to the owning task's partition.
func (p *Producer) SendExplicit(msg Message) error {
	n, err := p.c.PartitionCount(msg.Topic)
	if err != nil {
		return err
	}
	if msg.Partition < 0 || msg.Partition >= n {
		return fmt.Errorf("%w: %s/%d", ErrUnknownPartition, msg.Topic, msg.Partition)
	}
	return p.enqueue(msg, msg.Partition)
}

// enqueue adds a record to the partition's pending batch.
func (p *Producer) enqueue(msg Message, partition int32) error {
	rec := record.Record{
		Timestamp: msg.Timestamp,
		Key:       msg.Key,
		Value:     msg.Value,
		Headers:   msg.Headers,
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrProducerClosed
	}
	byPart, ok := p.batches[msg.Topic]
	if !ok {
		byPart = make(map[int32][]record.Record)
		p.batches[msg.Topic] = byPart
	}
	byPart[partition] = append(byPart[partition], rec)
	p.pending += len(msg.Key) + len(msg.Value) + 64
	needFlush := p.pending >= p.cfg.BatchBytes
	p.mu.Unlock()
	if needFlush {
		select {
		case p.flushNow <- struct{}{}:
		default:
		}
	}
	return nil
}

// SendSync delivers one message immediately (partitioner-routed),
// returning its assigned offset.
func (p *Producer) SendSync(msg Message) (int64, error) {
	n, err := p.c.PartitionCount(msg.Topic)
	if err != nil {
		return -1, err
	}
	partition := p.cfg.Partitioner.Partition(&msg, n)
	recs := []record.Record{{
		Timestamp: msg.Timestamp,
		Key:       msg.Key,
		Value:     msg.Value,
		Headers:   msg.Headers,
	}}
	return p.produce(msg.Topic, partition, recs)
}

// flushLoop sends buffered batches on linger expiry or explicit flush
// signals.
func (p *Producer) flushLoop() {
	ticker := time.NewTicker(p.cfg.Linger)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
		case <-p.flushNow:
		}
		p.flushOnce()
	}
}

// Flush synchronously delivers everything buffered so far: when it
// returns, every record enqueued before the call has been delivered or
// reported to OnError — including records a concurrent linger tick claimed
// first (flushOnce is serialised, so Flush waits that delivery out).
func (p *Producer) Flush() error {
	return p.flushOnce()
}

// flushOnce drains the buffer and produces each partition's batch. The
// flush mutex covers the whole drain+deliver window; see its field doc.
func (p *Producer) flushOnce() error {
	p.flushMu.Lock()
	defer p.flushMu.Unlock()
	p.mu.Lock()
	batches := p.batches
	p.batches = make(map[string]map[int32][]record.Record)
	p.pending = 0
	p.mu.Unlock()

	var firstErr error
	for topic, byPart := range batches {
		for partition, recs := range byPart {
			if len(recs) == 0 {
				continue
			}
			if _, err := p.produce(topic, partition, recs); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				if p.cfg.OnError != nil {
					for _, r := range recs {
						p.cfg.OnError(Message{
							Topic: topic, Partition: partition,
							Key: r.Key, Value: r.Value, Timestamp: r.Timestamp,
						}, err)
					}
				}
			}
		}
	}
	return firstErr
}

// noteThrottle records a ThrottleTimeMs verdict from a produce response.
func (p *Producer) noteThrottle(ms int32) { p.throttle.note(0, ms) }

// Throttled reports how often the producer was throttled by broker quotas
// and the cumulative delay it honored.
func (p *Producer) Throttled() ThrottleStats { return p.throttle.throttled() }

// idempotent reports whether this producer stamps batches with a producer
// identity: the default for acknowledged produces, never for AcksNone.
func (p *Producer) idempotent() bool {
	return !p.cfg.DisableIdempotence && p.cfg.Acks != AcksNone
}

// ensureIdentityLocked initialises the producer identity on first use (and
// after a terminal delivery failure invalidated it). Called with idemMu
// held.
func (p *Producer) ensureIdentityLocked() error {
	if p.pidOK {
		return nil
	}
	id, epoch, err := p.c.InitProducer(p.cfg.Name)
	if err != nil {
		return fmt.Errorf("client: init producer: %w", err)
	}
	p.pid, p.pepoch, p.pidOK = id, epoch, true
	// A fresh identity starts a fresh sequence space: named producers keep
	// their id but produce under a higher epoch, which resets the broker's
	// window; anonymous producers get a new id entirely.
	p.seqs = make(map[string]map[int32]int64)
	return nil
}

// nextSeqLocked returns the partition's next base sequence (idemMu held).
func (p *Producer) nextSeqLocked(topic string, partition int32) int64 {
	byPart, ok := p.seqs[topic]
	if !ok {
		byPart = make(map[int32]int64)
		p.seqs[topic] = byPart
	}
	return byPart[partition]
}

// produce delivers one batch to the partition leader with retries,
// returning the base offset (or -1 for acks=0). Zero timestamps are
// stamped with send time here: the broker appends the sealed batch
// verbatim and never rewrites record timestamps.
//
// Idempotent sends (the default for acked produces) stamp the sealed batch
// once with (producerID, epoch, baseSequence) BEFORE the retry loop: every
// retry resends the identical bytes, so a broker that already appended the
// batch — the classic acks=all resend window, where the ack was lost to a
// leader failover — recognises it and answers with the original offsets
// (ErrDuplicateSequence, handled here as success) instead of appending
// twice. On a terminal failure the delivery outcome is unknown, so the
// identity is invalidated and the next send re-registers: the app saw an
// error, and a fresh id/epoch guarantees the broker never silently matches
// a later batch against the orphaned sequence.
func (p *Producer) produce(topic string, partition int32, recs []record.Record) (int64, error) {
	// Honor any outstanding quota verdict (the client half of
	// backpressure; verdicts are server-capped, so the wait is bounded).
	// A closing producer's final flush ships without the wait — see the
	// cooperative-honoring note on throttleTracker.
	p.throttle.await(0, time.Hour, p.done)
	now := time.Now().UnixMilli()
	for i := range recs {
		if recs[i].Timestamp == 0 {
			recs[i].Timestamp = now
		}
	}
	payload := record.EncodeBatch(0, recs)
	if p.cfg.Codec != record.CodecNone {
		sealed, err := record.Compress(payload, p.cfg.Codec)
		if err != nil {
			return -1, fmt.Errorf("client: compress batch: %w", err)
		}
		payload = sealed
	}
	idem := p.idempotent()
	if idem {
		// idemMu is held across the whole delivery so concurrent produce
		// calls cannot reorder sequences on the wire.
		p.idemMu.Lock()
		defer p.idemMu.Unlock()
		if err := p.ensureIdentityLocked(); err != nil {
			return -1, err
		}
		if err := record.StampProducer(payload, p.pid, p.pepoch, p.nextSeqLocked(topic, partition)); err != nil {
			return -1, err
		}
	}
	req := &wire.ProduceRequest{
		RequiredAcks: effectiveAcks(p.cfg.Acks),
		TimeoutMs:    p.cfg.TimeoutMs,
		Topics: []wire.ProduceTopic{{
			Name:       topic,
			Partitions: []wire.ProducePartition{{Partition: partition, Records: payload}},
		}},
	}
	if p.cfg.Acks == AcksNone {
		// Fire-and-forget: no response frame exists.
		leader, err := p.c.LeaderFor(topic, partition)
		if err != nil {
			return -1, err
		}
		conn, err := p.c.ConnTo(leader)
		if err != nil {
			return -1, err
		}
		if err := conn.SendOnly(wire.APIProduce, req); err != nil {
			p.c.dropConn(leader)
			return -1, err
		}
		return -1, nil
	}
	var base int64 = -1
	err := p.c.withLeaderRetry(topic, partition, func(conn *Conn) (wire.ErrorCode, error) {
		var resp wire.ProduceResponse
		if err := conn.RoundTrip(wire.APIProduce, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		p.noteThrottle(resp.ThrottleTimeMs)
		if len(resp.Topics) != 1 || len(resp.Topics[0].Partitions) != 1 {
			return wire.ErrNone, errors.New("client: malformed produce response")
		}
		pr := resp.Topics[0].Partitions[0]
		base = pr.BaseOffset
		if pr.Err == wire.ErrDuplicateSequence {
			// A retry the broker deduplicated: the records are in the log
			// exactly once, at the base offset this response carries.
			return wire.ErrNone, nil
		}
		return pr.Err, nil
	})
	if idem {
		if err == nil {
			p.seqs[topic][partition] += int64(len(recs))
		} else {
			p.pidOK = false
		}
	}
	// Acked-record accounting happens exactly here — the single point
	// where an acked produce resolves successfully — so the counter equals
	// the number of records the application saw confirmed (the chaos
	// suite's conservation invariant depends on that equality).
	if err == nil && p.c.met != nil {
		p.c.met.produceAcked.With(topic).Add(int64(len(recs)))
	}
	return base, err
}

// Close flushes outstanding messages and stops the producer.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	return p.flushOnce()
}

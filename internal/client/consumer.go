package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage/record"
	"repro/internal/wire"
)

// Special start offsets for Consumer.Assign.
const (
	// StartEarliest begins at the earliest available offset: the
	// tiered-earliest on topics with tiered log storage (rewinding past
	// local retention into the cold tier), the log start otherwise.
	StartEarliest int64 = -2
	// StartLatest begins at the current log end (only new data).
	StartLatest int64 = -1
)

// OffsetResetPolicy chooses what to do when the consumer's position falls
// outside the log (e.g. retention deleted it).
type OffsetResetPolicy int

// Reset policies.
const (
	// ResetEarliest jumps to the earliest available offset (the
	// tiered-earliest when tiering is on, the local log start otherwise).
	ResetEarliest OffsetResetPolicy = iota
	// ResetLatest jumps to the log end.
	ResetLatest
	// ResetError surfaces the error to the caller.
	ResetError
)

// ConsumerConfig parameterises a Consumer.
type ConsumerConfig struct {
	// MinBytes is the broker-side wait threshold for long-poll fetches.
	MinBytes int32
	// MaxBytes bounds one fetch response per partition.
	MaxBytes int32
	// OnReset chooses the out-of-range recovery policy.
	OnReset OffsetResetPolicy
}

func (c ConsumerConfig) withDefaults() ConsumerConfig {
	if c.MinBytes == 0 {
		c.MinBytes = 1
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 4 << 20
	}
	return c
}

// consumerTP tracks one assigned partition.
type consumerTP struct {
	topic     string
	partition int32
	position  int64
}

// Consumer pulls messages from explicitly assigned partitions, tracking a
// position per partition (paper §3.1: consumers pull by offset and own
// their positions). It opens a dedicated long-poll connection per leader
// broker.
type Consumer struct {
	c   *Client
	cfg ConsumerConfig

	mu       sync.Mutex
	assigned map[string]*consumerTP // "topic/partition" -> state
	conns    map[int32]*Conn        // dedicated fetch conns by broker id
	closed   bool

	// throttle holds broker quota verdicts (ThrottleTimeMs on fetch
	// responses), keyed by broker id; the next fetch to that broker
	// honors them.
	throttle throttleTracker
}

// NewConsumer creates a consumer on a client.
func NewConsumer(c *Client, cfg ConsumerConfig) *Consumer {
	return &Consumer{
		c:        c,
		cfg:      cfg.withDefaults(),
		assigned: make(map[string]*consumerTP),
		conns:    make(map[int32]*Conn),
	}
}

func tpKey(topic string, partition int32) string {
	return fmt.Sprintf("%s/%d", topic, partition)
}

// Assign adds a partition at the given start offset (StartEarliest,
// StartLatest, or an absolute offset).
func (c *Consumer) Assign(topic string, partition int32, offset int64) error {
	start := offset
	if offset == StartEarliest || offset == StartLatest {
		ts := wire.TimestampEarliest
		if offset == StartLatest {
			ts = wire.TimestampLatest
		}
		resolved, err := c.c.ListOffset(topic, partition, ts)
		if err != nil {
			return err
		}
		start = resolved
	}
	if start < 0 {
		return fmt.Errorf("client: invalid start offset %d", start)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.assigned[tpKey(topic, partition)] = &consumerTP{
		topic:     topic,
		partition: partition,
		position:  start,
	}
	return nil
}

// Unassign removes a partition.
func (c *Consumer) Unassign(topic string, partition int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.assigned, tpKey(topic, partition))
}

// UnassignAll removes every partition.
func (c *Consumer) UnassignAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.assigned = make(map[string]*consumerTP)
}

// Position returns the next offset to be fetched, or -1 if unassigned.
func (c *Consumer) Position(topic string, partition int32) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.assigned[tpKey(topic, partition)]; ok {
		return s.position
	}
	return -1
}

// Seek moves the position of an assigned partition.
func (c *Consumer) Seek(topic string, partition int32, offset int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.assigned[tpKey(topic, partition)]
	if !ok {
		return fmt.Errorf("client: %s/%d not assigned", topic, partition)
	}
	s.position = offset
	return nil
}

// Assignments returns the currently assigned topic partitions as
// topic -> partitions.
func (c *Consumer) Assignments() map[string][]int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]int32)
	for _, s := range c.assigned {
		out[s.topic] = append(out[s.topic], s.partition)
	}
	return out
}

// Poll fetches available messages from all assigned partitions, waiting up
// to maxWait for at least one byte. Leaders are polled in parallel.
func (c *Consumer) Poll(maxWait time.Duration) ([]Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrConnClosed
	}
	snapshot := make([]*consumerTP, 0, len(c.assigned))
	for _, s := range c.assigned {
		snapshot = append(snapshot, s)
	}
	c.mu.Unlock()
	if len(snapshot) == 0 {
		return nil, errors.New("client: no partitions assigned")
	}

	// Group by current leader.
	byLeader := make(map[int32][]*consumerTP)
	for _, s := range snapshot {
		leader, err := c.c.LeaderFor(s.topic, s.partition)
		if err != nil {
			continue // leaderless partitions are skipped this round
		}
		byLeader[leader] = append(byLeader[leader], s)
	}
	if len(byLeader) == 0 {
		c.c.InvalidateMetadata()
		time.Sleep(10 * time.Millisecond)
		return nil, nil
	}

	type result struct {
		msgs []Message
		err  error
	}
	results := make(chan result, len(byLeader))
	for leader, parts := range byLeader {
		go func(leader int32, parts []*consumerTP) {
			msgs, err := c.fetchFrom(leader, parts, maxWait)
			results <- result{msgs: msgs, err: err}
		}(leader, parts)
	}
	var out []Message
	var firstErr error
	for range byLeader {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		out = append(out, r.msgs...)
	}
	if len(out) > 0 {
		return out, nil // data trumps partial errors
	}
	return out, firstErr
}

// fetchConn returns the dedicated fetch connection for a broker.
func (c *Consumer) fetchConn(leader int32) (*Conn, error) {
	c.mu.Lock()
	conn, ok := c.conns[leader]
	c.mu.Unlock()
	if ok && !conn.Closed() {
		return conn, nil
	}
	conn, err := c.c.DialDedicated(leader)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, ErrConnClosed
	}
	if old, ok := c.conns[leader]; ok && !old.Closed() {
		conn.Close()
		return old, nil
	}
	c.conns[leader] = conn
	return conn, nil
}

// Throttled reports how often the consumer was throttled by broker quotas
// and the cumulative delay it honored.
func (c *Consumer) Throttled() ThrottleStats { return c.throttle.throttled() }

// fetchFrom issues one fetch to a leader for its partitions. An
// outstanding quota verdict from that broker is honored first, and the
// honored wait plus the long-poll budget together never exceed the
// caller's maxWait: a verdict longer than the budget makes this round
// yield nothing (the remainder is honored on later polls), a shorter one
// shrinks the long-poll window by the time already spent — so Poll's
// latency contract holds even under a 30s verdict.
func (c *Consumer) fetchFrom(leader int32, parts []*consumerTP, maxWait time.Duration) ([]Message, error) {
	slept, honored := c.throttle.await(leader, maxWait, nil)
	if !honored {
		return nil, nil // still throttled; this poll round yields nothing
	}
	maxWait -= slept
	conn, err := c.fetchConn(leader)
	if err != nil {
		c.c.InvalidateMetadata()
		return nil, err
	}
	req := &wire.FetchRequest{
		ReplicaID: -1,
		MaxWaitMs: int32(maxWait / time.Millisecond),
		MinBytes:  c.cfg.MinBytes,
		MaxBytes:  c.cfg.MaxBytes,
	}
	byTopic := make(map[string][]wire.FetchPartition)
	pos := make(map[string]int64, len(parts))
	for _, s := range parts {
		c.mu.Lock()
		p := s.position
		c.mu.Unlock()
		pos[tpKey(s.topic, s.partition)] = p
		byTopic[s.topic] = append(byTopic[s.topic], wire.FetchPartition{
			Partition: s.partition,
			Offset:    p,
			MaxBytes:  c.cfg.MaxBytes,
		})
	}
	for topic, ps := range byTopic {
		req.Topics = append(req.Topics, wire.FetchTopic{Name: topic, Partitions: ps})
	}
	var resp wire.FetchResponse
	if err := conn.RoundTrip(wire.APIFetch, req, &resp); err != nil {
		c.mu.Lock()
		delete(c.conns, leader)
		c.mu.Unlock()
		c.c.InvalidateMetadata()
		return nil, err
	}
	c.throttle.note(leader, resp.ThrottleTimeMs)
	var out []Message
	for i := range resp.Topics {
		t := &resp.Topics[i]
		for j := range t.Partitions {
			p := &t.Partitions[j]
			key := tpKey(t.Name, p.Partition)
			want := pos[key]
			switch p.Err {
			case wire.ErrNone:
				msgs, next, err := decodeFetched(t.Name, p.Partition, p.Records, want)
				if err != nil {
					return out, err
				}
				if next > want {
					c.advance(key, next)
				}
				if m := c.c.met; m != nil && len(msgs) > 0 {
					m.consumeRecords.With(t.Name).Add(int64(len(msgs)))
					// End-to-end latency: producer-stamped record
					// timestamp (ms) to decode time. Clock skew can make
					// it negative on multi-host setups; clamp rather
					// than pollute the histogram.
					nowMs := time.Now().UnixMilli()
					h := m.e2eLatency.With(t.Name)
					for i := range msgs {
						if ts := msgs[i].Timestamp; ts > 0 {
							lat := (nowMs - ts) * int64(time.Millisecond)
							if lat < 0 {
								lat = 0
							}
							h.Observe(lat)
						}
					}
				}
				out = append(out, msgs...)
			case wire.ErrOffsetOutOfRange:
				if err := c.handleReset(t.Name, p.Partition, p.LogStartOffset); err != nil {
					return out, err
				}
			case wire.ErrNotLeaderForPartition, wire.ErrUnknownTopicOrPartition,
				wire.ErrLeaderNotAvailable, wire.ErrBrokerNotAvailable:
				c.c.InvalidateMetadata()
			default:
				return out, p.Err.Err()
			}
		}
	}
	return out, nil
}

// advance moves a partition's position forward if still assigned.
func (c *Consumer) advance(key string, next int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.assigned[key]; ok && next > s.position {
		s.position = next
	}
}

// handleReset applies the out-of-range policy. earliest is what the broker
// reported as the earliest AVAILABLE offset — tiered-earliest when the
// partition has cold segments — so the consumer resumes exactly where data
// begins instead of guessing.
func (c *Consumer) handleReset(topic string, partition int32, earliest int64) error {
	switch c.cfg.OnReset {
	case ResetEarliest:
		// The fetch response already carries the earliest available
		// offset.
		return c.Seek(topic, partition, earliest)
	case ResetLatest:
		off, err := c.c.ListOffset(topic, partition, wire.TimestampLatest)
		if err != nil {
			return err
		}
		return c.Seek(topic, partition, off)
	default:
		return wire.ErrOffsetOutOfRange.Err()
	}
}

// decodeFetched converts a fetch payload into messages at or after want,
// returning the next fetch position.
func decodeFetched(topic string, partition int32, data []byte, want int64) ([]Message, int64, error) {
	var out []Message
	next := want
	err := record.ScanRecords(data, func(r record.Record) error {
		if r.Offset < want {
			return nil // records below the requested offset inside a batch
		}
		out = append(out, Message{
			Topic:     topic,
			Partition: partition,
			Offset:    r.Offset,
			Timestamp: r.Timestamp,
			Key:       r.Key,
			Value:     r.Value,
			Headers:   r.Headers,
		})
		next = r.Offset + 1
		return nil
	})
	if err != nil {
		return nil, want, err
	}
	return out, next, nil
}

// Close releases the consumer's dedicated connections.
func (c *Consumer) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for id, conn := range c.conns {
		conn.Close()
		delete(c.conns, id)
	}
}

package client

import (
	"reflect"
	"testing"
	"testing/quick"
)

// The client's integration behaviour (produce/consume/groups/failover) is
// covered end-to-end in internal/broker and internal/processing tests;
// this file unit-tests the client-local logic: partitioners, annotation
// codecs, and config validation.

func TestHashPartitionerStableForKeys(t *testing.T) {
	p := &HashPartitioner{}
	msg := &Message{Key: []byte("user-42")}
	first := p.Partition(msg, 8)
	for i := 0; i < 50; i++ {
		if got := p.Partition(msg, 8); got != first {
			t.Fatalf("keyed partition moved: %d -> %d", first, got)
		}
	}
	if first < 0 || first >= 8 {
		t.Fatalf("partition %d out of range", first)
	}
}

func TestHashPartitionerSpreadsKeys(t *testing.T) {
	p := &HashPartitioner{}
	counts := make(map[int32]int)
	for i := 0; i < 1000; i++ {
		msg := &Message{Key: []byte{byte(i), byte(i >> 8), 'k'}}
		counts[p.Partition(msg, 8)]++
	}
	if len(counts) < 6 {
		t.Fatalf("keys landed on only %d/8 partitions: %v", len(counts), counts)
	}
}

func TestHashPartitionerRoundRobinsUnkeyed(t *testing.T) {
	p := &HashPartitioner{}
	counts := make(map[int32]int)
	for i := 0; i < 80; i++ {
		counts[p.Partition(&Message{}, 8)]++
	}
	for part, n := range counts {
		if n != 10 {
			t.Fatalf("partition %d got %d/80 unkeyed messages, want 10", part, n)
		}
	}
}

func TestRoundRobinPartitionerIgnoresKeys(t *testing.T) {
	p := &RoundRobinPartitioner{}
	seen := make(map[int32]bool)
	for i := 0; i < 4; i++ {
		seen[p.Partition(&Message{Key: []byte("same")}, 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("round robin visited %d/4 partitions", len(seen))
	}
}

func TestQuickPartitionerInRange(t *testing.T) {
	p := &HashPartitioner{}
	f := func(key []byte, n uint8) bool {
		parts := int32(n%32) + 1
		got := p.Partition(&Message{Key: key}, parts)
		return got >= 0 && got < parts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	in := map[string]string{"version": "v2", "ts": "12345"}
	out := DecodeAnnotations(EncodeAnnotations(in))
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v -> %v", in, out)
	}
}

func TestAnnotationsEmpty(t *testing.T) {
	if got := EncodeAnnotations(nil); got != "" {
		t.Fatalf("nil encodes to %q", got)
	}
	if got := DecodeAnnotations(""); len(got) != 0 {
		t.Fatalf("empty decodes to %v", got)
	}
	if got := DecodeAnnotations("not-json"); len(got) != 0 {
		t.Fatalf("garbage decodes to %v", got)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no bootstrap accepted")
	}
	c, err := New(Config{Bootstrap: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	if cfg.ClientID == "" || cfg.MaxRetries == 0 || cfg.DialTimeout == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestClientUnreachableBootstrap(t *testing.T) {
	c, err := New(Config{Bootstrap: []string{"127.0.0.1:1"}, DialTimeout: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RefreshMetadata(); err == nil {
		t.Fatal("metadata against dead broker should fail")
	}
}

func TestGroupConfigValidation(t *testing.T) {
	c, _ := New(Config{Bootstrap: []string{"127.0.0.1:1"}})
	defer c.Close()
	if _, err := NewGroupConsumer(c, ConsumerConfig{}, GroupConfig{}); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := NewGroupConsumer(c, ConsumerConfig{}, GroupConfig{Group: "g"}); err == nil {
		t.Fatal("no topics accepted")
	}
}

func TestConsumerAssignValidation(t *testing.T) {
	c, _ := New(Config{Bootstrap: []string{"127.0.0.1:1"}})
	defer c.Close()
	cons := NewConsumer(c, ConsumerConfig{})
	defer cons.Close()
	if got := cons.Position("t", 0); got != -1 {
		t.Fatalf("unassigned position = %d", got)
	}
	if err := cons.Seek("t", 0, 5); err == nil {
		t.Fatal("seek on unassigned partition accepted")
	}
	if _, err := cons.Poll(1); err == nil {
		t.Fatal("poll with no assignment accepted")
	}
}

func TestEffectiveAcks(t *testing.T) {
	if effectiveAcks(AcksNone) != 0 {
		t.Fatal("AcksNone should map to wire 0")
	}
	if effectiveAcks(1) != 1 || effectiveAcks(AcksAll) != -1 {
		t.Fatal("pass-through acks wrong")
	}
	cfg := ProducerConfig{}.withDefaults()
	if cfg.Acks != 1 {
		t.Fatalf("zero-value acks should default to leader acks, got %d", cfg.Acks)
	}
}

func TestMessageTopicsRequired(t *testing.T) {
	// tpKey formatting used across consumer internals.
	if tpKey("a", 3) != "a/3" {
		t.Fatal("tpKey format changed")
	}
}

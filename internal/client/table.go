package client

import "repro/internal/wire"

// TableGetResult is one point read against a partition's materialized
// table. AppliedOffset/HighWatermark report the freshness of the view the
// answer came from; LeaderEpoch is the epoch it was served under.
type TableGetResult struct {
	Found         bool
	Value         []byte
	AppliedOffset int64
	HighWatermark int64
	LeaderEpoch   int32
}

// TableGet performs a point read against the materialized table of one
// partition, routed to its current leader with retry-on-move.
// maxLagOffsets bounds acceptable staleness (hw − applied): negative
// accepts any lag, zero demands a fully caught-up view. A read rejected for
// staleness retries until the materializer catches up or retries exhaust.
func (c *Client) TableGet(topic string, partition int32, key []byte, maxLagOffsets int64) (TableGetResult, error) {
	var out TableGetResult
	err := c.withLeaderRetry(topic, partition, func(conn *Conn) (wire.ErrorCode, error) {
		req := &wire.TableGetRequest{
			Topic: topic, Partition: partition,
			Key: key, MaxLagOffsets: maxLagOffsets,
		}
		var resp wire.TableGetResponse
		if err := conn.RoundTrip(wire.APITableGet, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		if resp.Err != wire.ErrNone {
			return resp.Err, nil
		}
		out = TableGetResult{
			Found:         resp.Found,
			Value:         resp.Value,
			AppliedOffset: resp.AppliedOffset,
			HighWatermark: resp.HighWatermark,
			LeaderEpoch:   resp.LeaderEpoch,
		}
		return wire.ErrNone, nil
	})
	return out, err
}

// TableRangeResult is one range scan against a partition's materialized
// table. More reports the scan stopped at the limit with keys remaining.
type TableRangeResult struct {
	Entries       []wire.TableEntry
	More          bool
	ApproxLen     int64
	AppliedOffset int64
	HighWatermark int64
	LeaderEpoch   int32
}

// TableRange scans keys in [from, to) of one partition's materialized table
// in ascending order, routed to its current leader with retry-on-move. Nil
// bounds are open; limit bounds the returned entries (limit <= 0 returns
// none — a freshness probe). maxLagOffsets behaves as in TableGet.
func (c *Client) TableRange(topic string, partition int32, from, to []byte, limit int32, maxLagOffsets int64) (TableRangeResult, error) {
	var out TableRangeResult
	err := c.withLeaderRetry(topic, partition, func(conn *Conn) (wire.ErrorCode, error) {
		req := &wire.TableRangeRequest{
			Topic: topic, Partition: partition,
			From: from, To: to, Limit: limit, MaxLagOffsets: maxLagOffsets,
		}
		var resp wire.TableRangeResponse
		if err := conn.RoundTrip(wire.APITableRange, req, &resp); err != nil {
			return wire.ErrNone, err
		}
		if resp.Err != wire.ErrNone {
			return resp.Err, nil
		}
		out = TableRangeResult{
			Entries:       resp.Entries,
			More:          resp.More,
			ApproxLen:     resp.ApproxLen,
			AppliedOffset: resp.AppliedOffset,
			HighWatermark: resp.HighWatermark,
			LeaderEpoch:   resp.LeaderEpoch,
		}
		return wire.ErrNone, nil
	})
	return out, err
}

// TableStatusPartition is one partition's materializer state as reported by
// its leader. Lag is HighWatermark − AppliedOffset.
type TableStatusPartition struct {
	Partition     int32
	ApproxLen     int64
	AppliedOffset int64
	HighWatermark int64
	LeaderEpoch   int32
}

// Lag returns how many committed offsets the materialized view trails by.
func (s TableStatusPartition) Lag() int64 { return s.HighWatermark - s.AppliedOffset }

// TableStatus reports every partition's materializer freshness, each
// answered by its current leader via a status-only range probe.
func (c *Client) TableStatus(topic string) ([]TableStatusPartition, error) {
	n, err := c.PartitionCount(topic)
	if err != nil {
		return nil, err
	}
	out := make([]TableStatusPartition, n)
	for p := int32(0); p < n; p++ {
		res, err := c.TableRange(topic, p, nil, nil, 0, -1)
		if err != nil {
			return nil, err
		}
		out[p] = TableStatusPartition{
			Partition:     p,
			ApproxLen:     res.ApproxLen,
			AppliedOffset: res.AppliedOffset,
			HighWatermark: res.HighWatermark,
			LeaderEpoch:   res.LeaderEpoch,
		}
	}
	return out, nil
}

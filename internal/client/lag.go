package client

import (
	"sort"
	"strings"

	"repro/internal/wire"
)

// GroupLagEntry is one partition's consumer-group lag as observed from the
// client: the group's committed offset against the partition's latest
// offset (the high watermark a fetch at TimestampLatest resolves to).
type GroupLagEntry struct {
	Topic         string `json:"topic"`
	Partition     int32  `json:"partition"`
	Committed     int64  `json:"committed"`
	HighWatermark int64  `json:"highWatermark"`
	Lag           int64  `json:"lag"`
}

// GroupLag computes the group's lag on every partition it has committed an
// offset for, across all non-internal topics. This is the client-side view
// behind `liquid-admin lag <group>`: it needs only the existing
// offset-fetch and list-offsets APIs, so it works against any broker —
// including ones whose ops HTTP server is disabled.
func (c *Client) GroupLag(group string) ([]GroupLagEntry, error) {
	topics, err := c.TopicNames()
	if err != nil {
		return nil, err
	}
	var out []GroupLagEntry
	for _, topic := range topics {
		if strings.HasPrefix(topic, "__") {
			continue // internal topics (offsets feed) are not group-consumed
		}
		n, err := c.PartitionCount(topic)
		if err != nil || n <= 0 {
			continue
		}
		parts := make([]int32, n)
		for i := range parts {
			parts[i] = int32(i)
		}
		offs, err := c.FetchOffsets(group, topic, parts)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			committed, ok := offs[p]
			if !ok || committed < 0 {
				continue // group never committed here
			}
			hw, err := c.ListOffset(topic, p, wire.TimestampLatest)
			if err != nil {
				return nil, err
			}
			lag := hw - committed
			if lag < 0 {
				lag = 0
			}
			out = append(out, GroupLagEntry{
				Topic:         topic,
				Partition:     p,
				Committed:     committed,
				HighWatermark: hw,
				Lag:           lag,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Topic != out[j].Topic {
			return out[i].Topic < out[j].Topic
		}
		return out[i].Partition < out[j].Partition
	})
	return out, nil
}

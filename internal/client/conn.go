// Package client implements the messaging layer's client side: framed
// connections, a cluster-aware metadata cache, a batching producer with
// pluggable partitioners, partition consumers with long-poll fetches, and
// consumer groups with client-side assignment (paper §3.1). The processing
// layer and all back-end examples are built on these primitives.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrConnClosed reports use of a closed connection.
var ErrConnClosed = errors.New("client: connection closed")

// Dialer opens a transport connection to a broker address. The default is
// plain TCP (net.DialTimeout); fault-injection harnesses substitute a dialer
// that wraps connections with chaos transports (internal/chaos).
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

// defaultDialer is the production TCP dialer.
func defaultDialer(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Conn is a synchronous framed protocol connection. One request is in
// flight at a time per Conn; components that block server-side (long-poll
// fetches, group joins) use dedicated connections.
type Conn struct {
	mu       sync.Mutex
	nc       net.Conn
	clientID string
	nextCorr int32
	closed   bool
}

// Dial connects to a broker address over plain TCP.
func Dial(addr, clientID string, timeout time.Duration) (*Conn, error) {
	return DialWith(nil, addr, clientID, timeout)
}

// DialWith connects to a broker address through the given dialer (nil means
// plain TCP). Components that dial on behalf of a configured client or
// broker route through this so an injected transport sees every connection.
func DialWith(dial Dialer, addr, clientID string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if dial == nil {
		dial = defaultDialer
	}
	nc, err := dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Conn{nc: nc, clientID: clientID}, nil
}

// RoundTrip sends a request and decodes the response body into resp.
func (c *Conn) RoundTrip(api wire.APIKey, req, resp wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	c.nextCorr++
	hdr := wire.RequestHeader{API: api, CorrelationID: c.nextCorr, ClientID: c.clientID}
	if err := wire.WriteRequestFrame(c.nc, &hdr, req); err != nil {
		c.closeLocked()
		return fmt.Errorf("client: send: %w", err)
	}
	// The response frame is freshly allocated per round trip: decoded
	// messages (including zero-copy fetch Records) may alias it safely.
	payload, err := wire.ReadFrame(c.nc)
	if err != nil {
		c.closeLocked()
		return fmt.Errorf("client: recv: %w", err)
	}
	corr, r, err := wire.DecodeResponse(payload)
	if err != nil {
		c.closeLocked()
		return err
	}
	if corr != hdr.CorrelationID {
		c.closeLocked()
		return fmt.Errorf("client: correlation mismatch: got %d want %d", corr, hdr.CorrelationID)
	}
	resp.Decode(r)
	if err := r.Err(); err != nil {
		c.closeLocked()
		return err
	}
	return nil
}

// SendOnly writes a request without waiting for a response. Used for
// acks=0 produces, where the broker does not reply (the minimum-durability
// point of the paper's §4.3 trade-off).
func (c *Conn) SendOnly(api wire.APIKey, req wire.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	c.nextCorr++
	hdr := wire.RequestHeader{API: api, CorrelationID: c.nextCorr, ClientID: c.clientID}
	if err := wire.WriteRequestFrame(c.nc, &hdr, req); err != nil {
		c.closeLocked()
		return fmt.Errorf("client: send: %w", err)
	}
	return nil
}

// SetDeadline bounds the next I/O operations.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	return c.nc.SetDeadline(t)
}

func (c *Conn) closeLocked() {
	if !c.closed {
		c.closed = true
		c.nc.Close()
	}
}

// Close closes the connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
	return nil
}

// Closed reports whether the connection has been closed.
func (c *Conn) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

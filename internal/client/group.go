package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrGroupClosed reports use of a closed group consumer.
var ErrGroupClosed = errors.New("client: group consumer closed")

// GroupConfig parameterises a GroupConsumer.
type GroupConfig struct {
	// Group is the consumer group id. Groups get queue semantics within
	// and pub/sub semantics across (paper §3.1).
	Group string
	// Topics is the subscription.
	Topics []string
	// SessionTimeout bounds missed heartbeats before eviction.
	SessionTimeout time.Duration
	// RebalanceTimeout bounds the join barrier.
	RebalanceTimeout time.Duration
	// HeartbeatInterval is the background heartbeat period.
	HeartbeatInterval time.Duration
	// AutoCommit commits positions after each Poll and on rebalance.
	AutoCommit bool
	// StartFrom applies when no committed offset exists.
	StartFrom int64 // StartEarliest or StartLatest
	// Annotations are attached to every offset commit (e.g. software
	// version for rewind, paper §4.2).
	Annotations map[string]string
	// OnAssigned, if set, observes each new assignment.
	OnAssigned func(map[string][]int32)
}

func (c GroupConfig) withDefaults() GroupConfig {
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 10 * time.Second
	}
	if c.RebalanceTimeout == 0 {
		c.RebalanceTimeout = 3 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = c.SessionTimeout / 5
	}
	if c.StartFrom == 0 {
		c.StartFrom = StartEarliest
	}
	return c
}

// memberMetadata is the subscription a member sends when joining; the
// group leader uses it to compute assignments.
type memberMetadata struct {
	Topics []string `json:"topics"`
}

// assignmentData is the per-member assignment distributed via SyncGroup.
type assignmentData struct {
	Topics map[string][]int32 `json:"topics"`
}

// GroupConsumer is a consumer participating in a consumer group: it joins
// via the coordinator, receives a partition assignment (computed by the
// group leader with a range strategy), polls those partitions, and commits
// offsets through the offset manager.
type GroupConsumer struct {
	c     *Client
	cfg   GroupConfig
	inner *Consumer

	mu         sync.Mutex
	coordConn  *Conn // dedicated: joins block server-side
	coordID    int32
	memberID   string
	generation int32
	assignment map[string][]int32
	needRejoin bool
	closed     bool

	hbStop chan struct{}
	hbDone chan struct{}
}

// NewGroupConsumer creates a group consumer; it joins lazily on first Poll.
func NewGroupConsumer(c *Client, consumerCfg ConsumerConfig, cfg GroupConfig) (*GroupConsumer, error) {
	cfg = cfg.withDefaults()
	if cfg.Group == "" || len(cfg.Topics) == 0 {
		return nil, errors.New("client: group and topics are required")
	}
	return &GroupConsumer{
		c:          c,
		cfg:        cfg,
		inner:      NewConsumer(c, consumerCfg),
		coordID:    -1,
		needRejoin: true,
	}, nil
}

// Assignment returns the current assignment (topic -> partitions).
func (g *GroupConsumer) Assignment() map[string][]int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string][]int32, len(g.assignment))
	for t, ps := range g.assignment {
		out[t] = append([]int32(nil), ps...)
	}
	return out
}

// Position returns the next offset to be fetched for an assigned
// partition, or -1 if unassigned.
func (g *GroupConsumer) Position(topic string, partition int32) int64 {
	return g.inner.Position(topic, partition)
}

// Seek moves the fetch position of an assigned partition. Consumers whose
// durable progress lives outside the offset manager (e.g. the archiver's
// manifests) use it to realign after an assignment.
func (g *GroupConsumer) Seek(topic string, partition int32, offset int64) error {
	return g.inner.Seek(topic, partition, offset)
}

// MemberID returns the coordinator-assigned member id (empty before the
// first join).
func (g *GroupConsumer) MemberID() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.memberID
}

// Generation returns the current group generation.
func (g *GroupConsumer) Generation() int32 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// Poll ensures membership and fetches from the assigned partitions.
func (g *GroupConsumer) Poll(maxWait time.Duration) ([]Message, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrGroupClosed
	}
	rejoin := g.needRejoin
	g.mu.Unlock()
	if rejoin {
		if err := g.rejoin(); err != nil {
			return nil, err
		}
	}
	g.mu.Lock()
	empty := len(g.assignment) == 0
	g.mu.Unlock()
	if empty {
		time.Sleep(maxWait) // no partitions this generation
		return nil, nil
	}
	msgs, err := g.inner.Poll(maxWait)
	if g.cfg.AutoCommit && len(msgs) > 0 {
		if cerr := g.Commit(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return msgs, err
}

// Commit checkpoints the current positions with the configured
// annotations.
func (g *GroupConsumer) Commit() error {
	positions := make(map[string]map[int32]int64)
	g.mu.Lock()
	assignment := g.assignment
	g.mu.Unlock()
	for topic, parts := range assignment {
		for _, p := range parts {
			pos := g.inner.Position(topic, p)
			if pos < 0 {
				continue
			}
			if positions[topic] == nil {
				positions[topic] = make(map[int32]int64)
			}
			positions[topic][p] = pos
		}
	}
	if len(positions) == 0 {
		return nil
	}
	return g.c.CommitOffsets(g.cfg.Group, positions, g.cfg.Annotations)
}

// rejoin runs the full join/sync cycle and installs the new assignment.
func (g *GroupConsumer) rejoin() error {
	g.stopHeartbeat()
	if g.cfg.AutoCommit {
		_ = g.Commit() // best-effort revoke commit
	}

	conn, err := g.coordinatorConn()
	if err != nil {
		return err
	}
	g.mu.Lock()
	memberID := g.memberID
	g.mu.Unlock()

	joinReq := &wire.JoinGroupRequest{
		Group:              g.cfg.Group,
		SessionTimeoutMs:   int32(g.cfg.SessionTimeout / time.Millisecond),
		RebalanceTimeoutMs: int32(g.cfg.RebalanceTimeout / time.Millisecond),
		MemberID:           memberID,
		Protocol:           "range",
	}
	meta, _ := json.Marshal(memberMetadata{Topics: g.cfg.Topics})
	joinReq.Metadata = meta

	var joinResp wire.JoinGroupResponse
	if err := conn.RoundTrip(wire.APIJoinGroup, joinReq, &joinResp); err != nil {
		g.dropCoordinator()
		return err
	}
	switch joinResp.Err {
	case wire.ErrNone:
		// Keep the coordinator-assigned member id even if the rest of
		// this cycle fails: rejoining under the same id avoids leaving a
		// ghost member that stalls the next join barrier.
		g.mu.Lock()
		g.memberID = joinResp.MemberID
		g.mu.Unlock()
	case wire.ErrUnknownMemberID:
		g.mu.Lock()
		g.memberID = ""
		g.mu.Unlock()
		return joinResp.Err.Err()
	case wire.ErrNotCoordinator, wire.ErrCoordinatorNotAvailable:
		g.dropCoordinator()
		return joinResp.Err.Err()
	default:
		return joinResp.Err.Err()
	}

	syncReq := &wire.SyncGroupRequest{
		Group:      g.cfg.Group,
		Generation: joinResp.Generation,
		MemberID:   joinResp.MemberID,
	}
	if joinResp.MemberID == joinResp.LeaderID {
		assignments, err := g.computeAssignments(joinResp.Members)
		if err != nil {
			return err
		}
		syncReq.Assignments = assignments
	}
	var syncResp wire.SyncGroupResponse
	if err := conn.RoundTrip(wire.APISyncGroup, syncReq, &syncResp); err != nil {
		g.dropCoordinator()
		return err
	}
	if syncResp.Err != wire.ErrNone {
		if syncResp.Err == wire.ErrNotCoordinator {
			g.dropCoordinator()
		}
		return syncResp.Err.Err()
	}

	var assigned assignmentData
	if len(syncResp.Assignment) > 0 {
		if err := json.Unmarshal(syncResp.Assignment, &assigned); err != nil {
			return fmt.Errorf("client: bad assignment: %w", err)
		}
	}
	if assigned.Topics == nil {
		assigned.Topics = make(map[string][]int32)
	}

	// Install the assignment: resolve start offsets from commits.
	g.inner.UnassignAll()
	for topic, parts := range assigned.Topics {
		committed, err := g.c.FetchOffsets(g.cfg.Group, topic, parts)
		if err != nil {
			return err
		}
		for _, p := range parts {
			start := committed[p]
			if start < 0 {
				start = g.cfg.StartFrom
			}
			if err := g.inner.Assign(topic, p, start); err != nil {
				return err
			}
		}
	}
	g.mu.Lock()
	g.memberID = joinResp.MemberID
	g.generation = joinResp.Generation
	g.assignment = assigned.Topics
	g.needRejoin = false
	g.mu.Unlock()
	g.startHeartbeat()
	if g.cfg.OnAssigned != nil {
		g.cfg.OnAssigned(g.Assignment())
	}
	return nil
}

// computeAssignments implements the range strategy over all members'
// subscriptions: for each topic, contiguous partition ranges are dealt to
// subscribed members in member-id order.
func (g *GroupConsumer) computeAssignments(members []wire.GroupMember) ([]wire.GroupAssignment, error) {
	subs := make(map[string][]string) // topic -> member ids
	for _, m := range members {
		var meta memberMetadata
		if err := json.Unmarshal(m.Metadata, &meta); err != nil {
			continue
		}
		for _, t := range meta.Topics {
			subs[t] = append(subs[t], m.MemberID)
		}
	}
	perMember := make(map[string]map[string][]int32) // member -> topic -> parts
	for topic, memberIDs := range subs {
		sort.Strings(memberIDs)
		n, err := g.c.PartitionCount(topic)
		if err != nil {
			return nil, err
		}
		count := int32(len(memberIDs))
		base := n / count
		extra := n % count
		next := int32(0)
		for i, id := range memberIDs {
			take := base
			if int32(i) < extra {
				take++
			}
			for p := next; p < next+take; p++ {
				if perMember[id] == nil {
					perMember[id] = make(map[string][]int32)
				}
				perMember[id][topic] = append(perMember[id][topic], p)
			}
			next += take
		}
	}
	out := make([]wire.GroupAssignment, 0, len(members))
	for _, m := range members {
		data, err := json.Marshal(assignmentData{Topics: perMember[m.MemberID]})
		if err != nil {
			return nil, err
		}
		out = append(out, wire.GroupAssignment{MemberID: m.MemberID, Assignment: data})
	}
	return out, nil
}

// coordinatorConn returns (establishing if needed) the dedicated
// coordinator connection.
func (g *GroupConsumer) coordinatorConn() (*Conn, error) {
	g.mu.Lock()
	conn := g.coordConn
	g.mu.Unlock()
	if conn != nil && !conn.Closed() {
		return conn, nil
	}
	id, err := g.c.FindCoordinator(g.cfg.Group)
	if err != nil {
		return nil, err
	}
	conn, err = g.c.DialDedicated(id)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		conn.Close()
		return nil, ErrGroupClosed
	}
	if g.coordConn != nil {
		g.coordConn.Close()
	}
	g.coordConn = conn
	g.coordID = id
	return conn, nil
}

// dropCoordinator discards the coordinator connection (it moved or died).
func (g *GroupConsumer) dropCoordinator() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.coordConn != nil {
		g.coordConn.Close()
		g.coordConn = nil
	}
	g.coordID = -1
}

// startHeartbeat launches the background heartbeat for the current
// generation.
func (g *GroupConsumer) startHeartbeat() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hbStop = make(chan struct{})
	g.hbDone = make(chan struct{})
	memberID, generation := g.memberID, g.generation
	stop, done := g.hbStop, g.hbDone
	go func() {
		defer close(done)
		ticker := time.NewTicker(g.cfg.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			id, err := g.c.FindCoordinator(g.cfg.Group)
			if err != nil {
				continue
			}
			conn, err := g.c.ConnTo(id)
			if err != nil {
				continue
			}
			var resp wire.HeartbeatResponse
			req := &wire.HeartbeatRequest{Group: g.cfg.Group, Generation: generation, MemberID: memberID}
			if err := g.c.ConnErr(conn.RoundTrip(wire.APIHeartbeat, req, &resp), id); err != nil {
				continue
			}
			switch resp.Err {
			case wire.ErrNone:
			case wire.ErrRebalanceInProgress, wire.ErrIllegalGeneration:
				// Flag the rejoin but KEEP heartbeating: the beats keep
				// this member alive at the coordinator while the next
				// Poll works its way to the join barrier.
				g.mu.Lock()
				g.needRejoin = true
				g.mu.Unlock()
			case wire.ErrUnknownMemberID:
				g.mu.Lock()
				g.needRejoin = true
				g.memberID = ""
				g.mu.Unlock()
				return
			case wire.ErrNotCoordinator:
				g.mu.Lock()
				g.needRejoin = true
				g.mu.Unlock()
				g.dropCoordinator()
				return
			default:
				g.mu.Lock()
				g.needRejoin = true
				g.mu.Unlock()
				return
			}
		}
	}()
}

// ConnErr drops the cached connection to id when err != nil and passes the
// error through.
func (c *Client) ConnErr(err error, id int32) error {
	if err != nil {
		c.dropConn(id)
	}
	return err
}

// stopHeartbeat halts the background heartbeat, if running.
func (g *GroupConsumer) stopHeartbeat() {
	g.mu.Lock()
	stop, done := g.hbStop, g.hbDone
	g.hbStop, g.hbDone = nil, nil
	g.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Close leaves the group and releases connections.
func (g *GroupConsumer) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	memberID := g.memberID
	conn := g.coordConn
	g.mu.Unlock()

	g.stopHeartbeat()
	if g.cfg.AutoCommit {
		_ = g.Commit()
	}
	if conn != nil && !conn.Closed() && memberID != "" {
		var resp wire.LeaveGroupResponse
		_ = conn.RoundTrip(wire.APILeaveGroup, &wire.LeaveGroupRequest{
			Group:    g.cfg.Group,
			MemberID: memberID,
		}, &resp)
		conn.Close()
	}
	g.inner.Close()
	return nil
}

package client

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// fakeBroker is a minimal wire-protocol server for client-local tests: it
// answers metadata with itself as leader of every partition of topic
// "t" and lets the test hold produce responses open, which is how the
// flush-race regression test wins the background-flush race
// deterministically (no sleeps, no timing assumptions).
type fakeBroker struct {
	ln   net.Listener
	addr string

	produceStarted chan struct{} // signalled when a produce request arrives
	releaseProduce chan struct{} // closed to let produce responses flow
	produced       atomic.Int64  // records acked so far
	failProduces   atomic.Int32  // produce attempts to fail with not-leader
}

func startFakeBroker(t *testing.T) *fakeBroker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeBroker{
		ln:             ln,
		addr:           ln.Addr().String(),
		produceStarted: make(chan struct{}, 16),
		releaseProduce: make(chan struct{}),
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go f.serve(conn)
		}
	}()
	return f
}

func (f *fakeBroker) serve(conn net.Conn) {
	defer conn.Close()
	port := int32(f.ln.Addr().(*net.TCPAddr).Port)
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		hdr, r, err := wire.DecodeRequest(payload)
		if err != nil {
			return
		}
		var resp wire.Message
		switch hdr.API {
		case wire.APIMetadata:
			resp = &wire.MetadataResponse{
				Brokers:      []wire.BrokerMeta{{ID: 1, Host: "127.0.0.1", Port: port}},
				ControllerID: 1,
				Topics: []wire.TopicMeta{{
					Name: "t",
					Partitions: []wire.PartitionMeta{
						{ID: 0, Leader: 1, Replicas: []int32{1}, ISR: []int32{1}},
					},
				}},
			}
		case wire.APIProduce:
			var req wire.ProduceRequest
			req.Decode(r)
			f.produceStarted <- struct{}{}
			if f.failProduces.Load() > 0 {
				// A failed attempt answers immediately (no hold): the
				// client's retry loop proceeds, and the NEXT attempt blocks
				// on releaseProduce — that is how the retry/Flush test
				// freezes a delivery mid-retry.
				f.failProduces.Add(-1)
				pr := &wire.ProduceResponse{}
				for _, t := range req.Topics {
					rt := wire.ProduceRespTopic{Name: t.Name}
					for _, p := range t.Partitions {
						rt.Partitions = append(rt.Partitions, wire.ProduceRespPartition{
							Partition: p.Partition, Err: wire.ErrNotLeaderForPartition, BaseOffset: -1,
						})
					}
					pr.Topics = append(pr.Topics, rt)
				}
				resp = pr
				break
			}
			<-f.releaseProduce
			pr := &wire.ProduceResponse{}
			n := int64(0)
			for _, t := range req.Topics {
				rt := wire.ProduceRespTopic{Name: t.Name}
				for _, p := range t.Partitions {
					n++
					rt.Partitions = append(rt.Partitions, wire.ProduceRespPartition{
						Partition: p.Partition, BaseOffset: 0,
					})
				}
				pr.Topics = append(pr.Topics, rt)
			}
			f.produced.Add(n)
			resp = pr
		case wire.APIInitProducer:
			resp = &wire.InitProducerResponse{ProducerID: 1, Epoch: 0}
		default:
			resp = &wire.ProduceResponse{}
		}
		if err := wire.WriteResponseFrame(conn, hdr.CorrelationID, resp); err != nil {
			return
		}
	}
}

// newRaceProducer builds a producer whose background flusher claims every
// enqueued record immediately (BatchBytes 1) — the same code path a linger
// tick takes, made deterministic.
func newRaceProducer(t *testing.T, f *fakeBroker) (*Client, *Producer) {
	t.Helper()
	c, err := New(Config{Bootstrap: []string{f.addr}, MetadataTTL: time.Hour})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(c.Close)
	p := NewProducer(c, ProducerConfig{
		BatchBytes: 1,         // any send triggers an immediate background flush
		Linger:     time.Hour, // the ticker itself must never interfere
	})
	return c, p
}

// TestFlushWaitsForInFlightBackgroundFlush is the regression test for the
// Flush/linger-tick delivery race: a record enqueued before Flush() is
// claimed by the background flusher, whose produce we hold open on the
// broker. Flush must not return while that delivery is in flight — the old
// implementation saw an empty buffer and returned immediately, breaking
// the "synchronously delivers everything buffered so far" contract.
func TestFlushWaitsForInFlightBackgroundFlush(t *testing.T) {
	f := startFakeBroker(t)
	_, p := newRaceProducer(t, f)

	if err := p.Send(Message{Topic: "t", Value: []byte("v")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	// The background flush has claimed the record and is now blocked in
	// its produce round trip on the broker.
	select {
	case <-f.produceStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("background flush never reached the broker")
	}

	flushed := make(chan error, 1)
	go func() { flushed <- p.Flush() }()

	// Flush must still be waiting: the claimed record is not delivered.
	select {
	case err := <-flushed:
		t.Fatalf("Flush returned (err=%v) while the claimed record was undelivered", err)
	case <-time.After(100 * time.Millisecond):
	}
	if got := f.produced.Load(); got != 0 {
		t.Fatalf("broker acked %d records before release", got)
	}

	close(f.releaseProduce)
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatalf("Flush: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush never returned after delivery completed")
	}
	if got := f.produced.Load(); got != 1 {
		t.Fatalf("broker acked %d records, want 1", got)
	}
}

// TestCloseWaitsForInFlightBackgroundFlush pins the same guarantee for
// Close, which inherited the race.
func TestCloseWaitsForInFlightBackgroundFlush(t *testing.T) {
	f := startFakeBroker(t)
	_, p := newRaceProducer(t, f)

	if err := p.Send(Message{Topic: "t", Value: []byte("v")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-f.produceStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("background flush never reached the broker")
	}

	closed := make(chan error, 1)
	go func() { closed <- p.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (err=%v) while the claimed record was undelivered", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(f.releaseProduce)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned after delivery completed")
	}
	if got := f.produced.Load(); got != 1 {
		t.Fatalf("broker acked %d records, want 1", got)
	}
}

// TestFlushWaitsForBatchAwaitingRetry pins the retry half of the Flush
// contract: a batch whose first delivery attempt failed with a retriable
// error is still owed to Flush — it is in the client's retry loop, not
// delivered, and Flush returning early would let the app drop it on exit.
// The fake broker fails the first produce attempt with not-leader and holds
// the retry attempt open; Flush must block until the retry completes.
func TestFlushWaitsForBatchAwaitingRetry(t *testing.T) {
	f := startFakeBroker(t)
	f.failProduces.Store(1)
	_, p := newRaceProducer(t, f)

	if err := p.Send(Message{Topic: "t", Value: []byte("v")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Attempt 1 fails fast with not-leader; attempt 2 (the retry of the
	// same stamped batch) blocks on the broker.
	for attempt := 0; attempt < 2; attempt++ {
		select {
		case <-f.produceStarted:
		case <-time.After(10 * time.Second):
			t.Fatalf("produce attempt %d never reached the broker", attempt+1)
		}
	}

	flushed := make(chan error, 1)
	go func() { flushed <- p.Flush() }()

	// Flush must still be waiting: the batch is mid-retry, not delivered.
	select {
	case err := <-flushed:
		t.Fatalf("Flush returned (err=%v) while the batch was awaiting retry", err)
	case <-time.After(100 * time.Millisecond):
	}
	if got := f.produced.Load(); got != 0 {
		t.Fatalf("broker acked %d records before release", got)
	}

	close(f.releaseProduce)
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatalf("Flush: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush never returned after the retry completed")
	}
	if got := f.produced.Load(); got != 1 {
		t.Fatalf("broker acked %d records, want 1", got)
	}
}

// TestProducerHonorsThrottle verifies the client half of quota
// backpressure: a ThrottleTimeMs verdict on a produce response delays the
// next produce and is visible in Throttled().
func TestProducerHonorsThrottle(t *testing.T) {
	f := startFakeBroker(t)
	close(f.releaseProduce) // responses flow freely in this test
	c, err := New(Config{Bootstrap: []string{f.addr}, MetadataTTL: time.Hour})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer c.Close()
	p := NewProducer(c, ProducerConfig{})
	defer p.Close()

	// Swap the fake broker to a throttling one is overkill; instead feed
	// the verdict directly and observe the pacing produce applies.
	p.noteThrottle(50)
	if st := p.Throttled(); st.Count != 1 {
		t.Fatalf("Throttled() = %+v, want Count 1", st)
	}
	start := time.Now()
	if _, err := p.SendSync(Message{Topic: "t", Value: []byte("v")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("produce did not honor the throttle: took %v, want >= ~50ms", elapsed)
	}
	// Delay records the wall-clock wait actually honored.
	if st := p.Throttled(); st.Delay < 45*time.Millisecond {
		t.Fatalf("Throttled() = %+v, want Delay >= ~50ms", st)
	}
}

// Package coord provides the coordination service of the messaging layer, a
// stand-in for the ZooKeeper ensemble in the paper (§4.3): a logically
// centralised, versioned key-value store with ephemeral nodes bound to
// heartbeat sessions, prefix watches, and compare-and-swap updates. Brokers
// use it for liveness registration, controller election, topic metadata and
// per-partition leader/ISR state.
//
// The store is a single in-process instance (the paper treats ZooKeeper as a
// given, logically centralised service; replicating the coordinator itself
// is outside the paper's scope).
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by store operations.
var (
	// ErrExists reports a create of a path that already exists.
	ErrExists = errors.New("coord: node exists")
	// ErrNotFound reports an operation on a missing path.
	ErrNotFound = errors.New("coord: node not found")
	// ErrBadVersion reports a failed compare-and-swap.
	ErrBadVersion = errors.New("coord: version mismatch")
	// ErrNoSession reports use of an expired or unknown session.
	ErrNoSession = errors.New("coord: no such session")
)

// SessionID identifies a heartbeat session. Ephemeral nodes are deleted
// when their owning session expires, which is how broker failures become
// visible to the controller.
type SessionID int64

// NoSession marks a node as persistent.
const NoSession SessionID = 0

// EventType classifies a watch event.
type EventType int

// Watch event types.
const (
	EventCreated EventType = iota
	EventUpdated
	EventDeleted
)

func (e EventType) String() string {
	switch e {
	case EventCreated:
		return "created"
	case EventUpdated:
		return "updated"
	case EventDeleted:
		return "deleted"
	}
	return "unknown"
}

// Event describes a change to a node.
type Event struct {
	Type    EventType
	Path    string
	Value   []byte
	Version int64
}

// node is one entry in the store.
type node struct {
	value   []byte
	version int64
	owner   SessionID
}

// session tracks a client's liveness.
type session struct {
	id       SessionID
	timeout  time.Duration
	deadline time.Time
}

// watcher receives events for paths under a prefix. Slow watchers whose
// buffers overflow are closed and must re-register and re-read state, the
// same contract ZooKeeper clients must honour.
type watcher struct {
	prefix string
	ch     chan Event
}

// Config parameterises the store.
type Config struct {
	// Now is an injectable clock for tests; nil means time.Now.
	Now func() time.Time
	// DefaultSessionTimeout applies when CreateSession is given zero.
	DefaultSessionTimeout time.Duration
	// WatchBuffer is the per-watcher channel capacity.
	WatchBuffer int
}

func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.DefaultSessionTimeout == 0 {
		c.DefaultSessionTimeout = 6 * time.Second
	}
	if c.WatchBuffer == 0 {
		c.WatchBuffer = 1024
	}
	return c
}

// Store is the coordination service. All methods are safe for concurrent
// use.
type Store struct {
	cfg Config

	mu          sync.Mutex
	nodes       map[string]*node
	sessions    map[SessionID]*session
	watchers    []*watcher
	nextSession SessionID
}

// New returns an empty store.
func New(cfg Config) *Store {
	return &Store{
		cfg:      cfg.withDefaults(),
		nodes:    make(map[string]*node),
		sessions: make(map[SessionID]*session),
	}
}

// CreateSession opens a heartbeat session. The caller must call KeepAlive
// within the timeout or the session's ephemeral nodes are deleted on the
// next ExpireSessions pass.
func (s *Store) CreateSession(timeout time.Duration) SessionID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if timeout <= 0 {
		timeout = s.cfg.DefaultSessionTimeout
	}
	s.nextSession++
	id := s.nextSession
	s.sessions[id] = &session{
		id:       id,
		timeout:  timeout,
		deadline: s.cfg.Now().Add(timeout),
	}
	return id
}

// KeepAlive extends a session's deadline.
func (s *Store) KeepAlive(id SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return ErrNoSession
	}
	sess.deadline = s.cfg.Now().Add(sess.timeout)
	return nil
}

// CloseSession ends a session immediately, deleting its ephemeral nodes.
func (s *Store) CloseSession(id SessionID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(id)
}

// ExpireSessions deletes ephemeral nodes of every session whose deadline
// passed, returning the expired session ids. Brokers run this on a ticker;
// tests call it directly with a controlled clock.
func (s *Store) ExpireSessions() []SessionID {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	var expired []SessionID
	for id, sess := range s.sessions {
		if now.After(sess.deadline) {
			expired = append(expired, id)
		}
	}
	for _, id := range expired {
		s.expireLocked(id)
	}
	return expired
}

// expireLocked removes the session and its ephemeral nodes.
func (s *Store) expireLocked(id SessionID) {
	if _, ok := s.sessions[id]; !ok {
		return
	}
	delete(s.sessions, id)
	for path, n := range s.nodes {
		if n.owner == id {
			delete(s.nodes, path)
			s.notifyLocked(Event{Type: EventDeleted, Path: path, Version: n.version})
		}
	}
}

// SessionAlive reports whether the session exists and has not expired.
func (s *Store) SessionAlive(id SessionID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return ok && !s.cfg.Now().After(sess.deadline)
}

// Create adds a node. owner NoSession makes it persistent; otherwise the
// node is ephemeral and vanishes with the session.
func (s *Store) Create(path string, value []byte, owner SessionID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[path]; ok {
		return 0, fmt.Errorf("%w: %s", ErrExists, path)
	}
	if owner != NoSession {
		if _, ok := s.sessions[owner]; !ok {
			return 0, ErrNoSession
		}
	}
	n := &node{value: append([]byte(nil), value...), version: 1, owner: owner}
	s.nodes[path] = n
	s.notifyLocked(Event{Type: EventCreated, Path: path, Value: n.value, Version: 1})
	return 1, nil
}

// Get returns a node's value and version.
func (s *Store) Get(path string) ([]byte, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[path]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]byte(nil), n.value...), n.version, nil
}

// Set updates a node's value. expectedVersion -1 skips the version check;
// otherwise the update succeeds only if the current version matches
// (compare-and-swap, used for ISR updates so concurrent leader/controller
// writes cannot clobber each other).
func (s *Store) Set(path string, value []byte, expectedVersion int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if expectedVersion >= 0 && n.version != expectedVersion {
		return 0, fmt.Errorf("%w: %s at v%d, expected v%d", ErrBadVersion, path, n.version, expectedVersion)
	}
	n.value = append([]byte(nil), value...)
	n.version++
	s.notifyLocked(Event{Type: EventUpdated, Path: path, Value: n.value, Version: n.version})
	return n.version, nil
}

// Delete removes a node, with the same version semantics as Set.
func (s *Store) Delete(path string, expectedVersion int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if expectedVersion >= 0 && n.version != expectedVersion {
		return fmt.Errorf("%w: %s at v%d, expected v%d", ErrBadVersion, path, n.version, expectedVersion)
	}
	delete(s.nodes, path)
	s.notifyLocked(Event{Type: EventDeleted, Path: path, Version: n.version})
	return nil
}

// List returns the sorted paths under prefix.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for path := range s.nodes {
		if strings.HasPrefix(path, prefix) {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// Watch subscribes to events for all paths under prefix. The returned
// cancel function unsubscribes. If the subscriber falls behind and the
// buffer fills, the channel is closed: the subscriber must re-register and
// re-read current state.
func (s *Store) Watch(prefix string) (<-chan Event, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := &watcher{prefix: prefix, ch: make(chan Event, s.cfg.WatchBuffer)}
	s.watchers = append(s.watchers, w)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, x := range s.watchers {
			if x == w {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				close(w.ch)
				return
			}
		}
	}
	return w.ch, cancel
}

// notifyLocked fans an event out to matching watchers.
func (s *Store) notifyLocked(ev Event) {
	kept := s.watchers[:0]
	for _, w := range s.watchers {
		if !strings.HasPrefix(ev.Path, w.prefix) {
			kept = append(kept, w)
			continue
		}
		select {
		case w.ch <- ev:
			kept = append(kept, w)
		default:
			// Overflow: drop the watcher; it must re-sync.
			close(w.ch)
		}
	}
	s.watchers = kept
}

// StartExpiry launches a background goroutine calling ExpireSessions every
// interval, returning a stop function. One pump per store is enough; the
// cluster facade owns it.
func (s *Store) StartExpiry(interval time.Duration) func() {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		//lint:ignore clockdiscipline the expiry pump runs on real time by design; session deadlines use the injected clock
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s.ExpireSessions()
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// TryAcquire attempts to create an ephemeral node at path, implementing
// leader election: the winner's session holds the node until it dies.
// It returns true if this session now holds the lock.
func (s *Store) TryAcquire(path string, owner SessionID, value []byte) (bool, error) {
	_, err := s.Create(path, value, owner)
	if errors.Is(err, ErrExists) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

package coord

import (
	"errors"
	"testing"
	"time"
)

// testClock is a controllable clock.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time { return c.t }

func newTestStore() (*Store, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	return New(Config{Now: clk.now}), clk
}

func TestCreateGetSetDelete(t *testing.T) {
	s, _ := newTestStore()
	v, err := s.Create("/a", []byte("1"), NoSession)
	if err != nil || v != 1 {
		t.Fatalf("Create: v=%d err=%v", v, err)
	}
	if _, err := s.Create("/a", []byte("x"), NoSession); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	val, ver, err := s.Get("/a")
	if err != nil || string(val) != "1" || ver != 1 {
		t.Fatalf("Get: %q v%d %v", val, ver, err)
	}
	v2, err := s.Set("/a", []byte("2"), 1)
	if err != nil || v2 != 2 {
		t.Fatalf("Set: v=%d err=%v", v2, err)
	}
	if _, err := s.Set("/a", []byte("x"), 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale CAS: %v", err)
	}
	if _, err := s.Set("/a", []byte("3"), -1); err != nil {
		t.Fatalf("unconditional set: %v", err)
	}
	if err := s.Delete("/a", 2); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale delete: %v", err)
	}
	if err := s.Delete("/a", 3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, _, err := s.Get("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
}

func TestValueIsolation(t *testing.T) {
	s, _ := newTestStore()
	in := []byte("abc")
	s.Create("/a", in, NoSession)
	in[0] = 'X' // caller mutates its buffer
	got, _, _ := s.Get("/a")
	if string(got) != "abc" {
		t.Fatalf("store shares caller memory: %q", got)
	}
	got[0] = 'Y' // reader mutates the returned buffer
	got2, _, _ := s.Get("/a")
	if string(got2) != "abc" {
		t.Fatalf("store shares reader memory: %q", got2)
	}
}

func TestList(t *testing.T) {
	s, _ := newTestStore()
	s.Create("/brokers/2", nil, NoSession)
	s.Create("/brokers/1", nil, NoSession)
	s.Create("/topics/a", nil, NoSession)
	got := s.List("/brokers/")
	if len(got) != 2 || got[0] != "/brokers/1" || got[1] != "/brokers/2" {
		t.Fatalf("List = %v", got)
	}
}

func TestEphemeralNodesDieWithSession(t *testing.T) {
	s, clk := newTestStore()
	sid := s.CreateSession(time.Second)
	if _, err := s.Create("/brokers/1", []byte("b1"), sid); err != nil {
		t.Fatal(err)
	}
	s.Create("/persistent", nil, NoSession)

	clk.t = clk.t.Add(2 * time.Second)
	expired := s.ExpireSessions()
	if len(expired) != 1 || expired[0] != sid {
		t.Fatalf("expired = %v", expired)
	}
	if _, _, err := s.Get("/brokers/1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ephemeral survived expiry: %v", err)
	}
	if _, _, err := s.Get("/persistent"); err != nil {
		t.Fatalf("persistent node died: %v", err)
	}
}

func TestKeepAliveExtendsSession(t *testing.T) {
	s, clk := newTestStore()
	sid := s.CreateSession(time.Second)
	s.Create("/n", nil, sid)
	for i := 0; i < 5; i++ {
		clk.t = clk.t.Add(800 * time.Millisecond)
		if err := s.KeepAlive(sid); err != nil {
			t.Fatal(err)
		}
		if got := s.ExpireSessions(); len(got) != 0 {
			t.Fatalf("session expired despite keepalive at step %d", i)
		}
	}
	if !s.SessionAlive(sid) {
		t.Fatal("session should be alive")
	}
}

func TestCloseSessionImmediate(t *testing.T) {
	s, _ := newTestStore()
	sid := s.CreateSession(time.Hour)
	s.Create("/n", nil, sid)
	s.CloseSession(sid)
	if _, _, err := s.Get("/n"); !errors.Is(err, ErrNotFound) {
		t.Fatal("ephemeral should be gone after CloseSession")
	}
	if s.SessionAlive(sid) {
		t.Fatal("session should be dead")
	}
	if err := s.KeepAlive(sid); !errors.Is(err, ErrNoSession) {
		t.Fatalf("KeepAlive on dead session: %v", err)
	}
}

func TestCreateWithDeadSessionFails(t *testing.T) {
	s, _ := newTestStore()
	sid := s.CreateSession(time.Second)
	s.CloseSession(sid)
	if _, err := s.Create("/n", nil, sid); !errors.Is(err, ErrNoSession) {
		t.Fatalf("create with dead session: %v", err)
	}
}

func TestWatchDeliversEvents(t *testing.T) {
	s, _ := newTestStore()
	events, cancel := s.Watch("/topics/")
	defer cancel()

	s.Create("/topics/a", []byte("v1"), NoSession)
	s.Set("/topics/a", []byte("v2"), -1)
	s.Delete("/topics/a", -1)
	s.Create("/other", nil, NoSession) // outside the prefix: not delivered

	want := []EventType{EventCreated, EventUpdated, EventDeleted}
	for i, wt := range want {
		select {
		case ev := <-events:
			if ev.Type != wt || ev.Path != "/topics/a" {
				t.Fatalf("event %d = %+v, want type %v", i, ev, wt)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected event %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestWatchExpiryEmitsDeleted(t *testing.T) {
	s, clk := newTestStore()
	sid := s.CreateSession(time.Second)
	s.Create("/brokers/7", nil, sid)
	events, cancel := s.Watch("/brokers/")
	defer cancel()

	clk.t = clk.t.Add(5 * time.Second)
	s.ExpireSessions()
	select {
	case ev := <-events:
		if ev.Type != EventDeleted || ev.Path != "/brokers/7" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no deletion event after session expiry")
	}
}

func TestWatchOverflowClosesChannel(t *testing.T) {
	s := New(Config{WatchBuffer: 2})
	events, cancel := s.Watch("/")
	defer cancel()
	for i := 0; i < 10; i++ {
		s.Create("/n"+string(rune('a'+i)), nil, NoSession)
	}
	// Drain: channel must eventually be closed, not blocked.
	closed := false
	for i := 0; i < 20; i++ {
		_, ok := <-events
		if !ok {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatal("overflowed watcher was not closed")
	}
}

func TestCancelWatch(t *testing.T) {
	s, _ := newTestStore()
	events, cancel := s.Watch("/")
	cancel()
	if _, ok := <-events; ok {
		t.Fatal("cancelled watch channel should be closed")
	}
	// Cancel twice is safe.
	cancel()
}

func TestTryAcquireElection(t *testing.T) {
	s, clk := newTestStore()
	s1 := s.CreateSession(time.Second)
	s2 := s.CreateSession(time.Hour)

	won, err := s.TryAcquire("/controller", s1, []byte("1"))
	if err != nil || !won {
		t.Fatalf("first acquire: won=%v err=%v", won, err)
	}
	won, err = s.TryAcquire("/controller", s2, []byte("2"))
	if err != nil || won {
		t.Fatalf("second acquire should lose: won=%v err=%v", won, err)
	}
	// Holder dies; the seat opens.
	clk.t = clk.t.Add(2 * time.Second)
	s.ExpireSessions()
	won, err = s.TryAcquire("/controller", s2, []byte("2"))
	if err != nil || !won {
		t.Fatalf("post-expiry acquire: won=%v err=%v", won, err)
	}
	v, _, _ := s.Get("/controller")
	if string(v) != "2" {
		t.Fatalf("controller = %q", v)
	}
}

func TestStartExpiryPump(t *testing.T) {
	s := New(Config{})
	stop := s.StartExpiry(10 * time.Millisecond)
	defer stop()
	sid := s.CreateSession(30 * time.Millisecond)
	s.Create("/n", nil, sid)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := s.Get("/n"); errors.Is(err, ErrNotFound) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("expiry pump never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentElectionsExactlyOneWinner(t *testing.T) {
	s := New(Config{})
	const candidates = 16
	type result struct {
		id  SessionID
		won bool
	}
	results := make(chan result, candidates)
	start := make(chan struct{})
	for i := 0; i < candidates; i++ {
		sid := s.CreateSession(time.Hour)
		go func(sid SessionID) {
			<-start
			won, err := s.TryAcquire("/controller", sid, []byte("me"))
			if err != nil {
				won = false
			}
			results <- result{id: sid, won: won}
		}(sid)
	}
	close(start)
	winners := 0
	var winner SessionID
	for i := 0; i < candidates; i++ {
		r := <-results
		if r.won {
			winners++
			winner = r.id
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners, want exactly 1", winners)
	}
	// The winner dying frees the seat for exactly one successor.
	s.CloseSession(winner)
	sid := s.CreateSession(time.Hour)
	won, err := s.TryAcquire("/controller", sid, []byte("next"))
	if err != nil || !won {
		t.Fatalf("succession failed: %v %v", won, err)
	}
}

func TestConcurrentSessionsAndWrites(t *testing.T) {
	s, _ := newTestStore()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- true }()
			sid := s.CreateSession(time.Hour)
			base := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				path := "/x/" + base + string(rune('0'+i%10))
				s.Create(path, []byte{byte(i)}, sid)
				s.Get(path)
				s.Set(path, []byte{byte(i + 1)}, -1)
				s.KeepAlive(sid)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := len(s.List("/x/")); got != 40 {
		t.Fatalf("nodes = %d, want 40", got)
	}
}

package processing_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/processing"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// TestStatefulJobRestoresFromCompressedChangelog runs the restore path with
// ChangelogCodec set: the changelog feed holds compressed batches (asserted
// on the raw stored bytes) and a restarted job rebuilds its state from them
// without any broker-side recompression.
func TestStatefulJobRestoresFromCompressedChangelog(t *testing.T) {
	s := startStack(t)
	if err := s.CreateFeed("cupdates", 1, 1); err != nil {
		t.Fatal(err)
	}
	cfg := processing.JobConfig{
		Name:               "ccounter",
		Inputs:             []string{"cupdates"},
		Factory:            func() processing.StreamTask { return countTask{} },
		Stores:             []processing.StoreSpec{{Name: "counts"}},
		CheckpointInterval: 100 * time.Millisecond,
		ChangelogCodec:     client.CodecGzip,
	}
	job, err := s.RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const keys, rounds = 5, 10
	produceN(t, s, "cupdates", keys*rounds,
		func(i int) string { return fmt.Sprintf("user-%d", i%keys) },
		func(i int) string { return "update" })
	waitCounter(t, job.Metrics().Counter("ccounter.processed"), keys*rounds, 10*time.Second)
	if err := job.Stop(); err != nil {
		t.Fatal(err)
	}

	// The changelog feed must hold compressed batches, stored verbatim:
	// fetch the raw bytes and check the first batch's codec.
	c := s.Client()
	leader, err := c.LeaderFor("ccounter-counts-changelog", 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.DialDedicated(leader)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var resp wire.FetchResponse
	err = conn.RoundTrip(wire.APIFetch, &wire.FetchRequest{
		ReplicaID: -1, MaxWaitMs: 1000, MinBytes: 1, MaxBytes: 1 << 20,
		Topics: []wire.FetchTopic{{
			Name:       "ccounter-counts-changelog",
			Partitions: []wire.FetchPartition{{Partition: 0, Offset: 0, MaxBytes: 1 << 20}},
		}},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	raw := resp.Topics[0].Partitions[0].Records
	if len(raw) == 0 {
		t.Fatal("changelog is empty")
	}
	codec, err := record.PeekCodec(raw)
	if err != nil || codec != record.CodecGzip {
		t.Fatalf("changelog batch codec = %v, %v (want gzip)", codec, err)
	}

	// Restart: state must be rebuilt from the compressed changelog.
	job2, err := s.RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "cupdates", keys,
		func(i int) string { return fmt.Sprintf("user-%d", i%keys) },
		func(i int) string { return "update" })
	waitCounter(t, job2.Metrics().Counter("ccounter.processed"), keys, 10*time.Second)
	if err := job2.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := job2.Metrics().Counter("ccounter.restored.records").Value(); got == 0 {
		t.Fatal("no records were restored from the compressed changelog")
	}
	counts := changelogState(t, s, "ccounter-counts-changelog", 1)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("user-%d", k)
		if counts[key] != strconv.Itoa(rounds+1) {
			t.Fatalf("count[%s] = %q, want %d", key, counts[key], rounds+1)
		}
	}
}

package processing

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/state"
	"repro/internal/wire"
)

// StoreSpec declares one state store of a job.
type StoreSpec struct {
	// Name is the handle tasks use via TaskContext.Store.
	Name string
	// Persistent selects the on-disk log-structured store instead of the
	// in-memory map (the RocksDB stand-in of paper §4.4).
	Persistent bool
	// NoChangelog disables fault tolerance for this store: state is lost
	// on failure. The default (false) publishes every update to a
	// compacted changelog feed named <job>-<store>-changelog, from which
	// state is restored after failure (paper §3.2).
	NoChangelog bool
}

// changelogTopic names the derived feed backing a store.
func changelogTopic(job, store string) string {
	return fmt.Sprintf("%s-%s-changelog", job, store)
}

// changelogStore wraps a local store, mirroring every write to the
// changelog feed. Reads are local (paper §3.2: "stateful jobs access state
// locally for efficiency").
type changelogStore struct {
	state.Store
	topic     string
	partition int32
	producer  *client.Producer
}

// Put writes locally and appends to the changelog.
func (s *changelogStore) Put(key, value []byte) error {
	if err := s.Store.Put(key, value); err != nil {
		return err
	}
	return s.producer.SendExplicit(client.Message{
		Topic:     s.topic,
		Partition: s.partition,
		Key:       key,
		Value:     value,
	})
}

// Delete removes locally and appends a tombstone to the changelog.
func (s *changelogStore) Delete(key []byte) error {
	if err := s.Store.Delete(key); err != nil {
		return err
	}
	return s.producer.SendExplicit(client.Message{
		Topic:     s.topic,
		Partition: s.partition,
		Key:       key,
		Value:     nil,
	})
}

// buildStores creates the local stores for one task, wrapping them with
// changelogs where configured.
func (j *Job) buildStores(taskID int32) (map[string]state.Store, error) {
	stores := make(map[string]state.Store, len(j.cfg.Stores))
	for _, spec := range j.cfg.Stores {
		var base state.Store
		if spec.Persistent {
			dir := filepath.Join(j.cfg.DataDir, fmt.Sprintf("%s-%s-%d", j.cfg.Name, spec.Name, taskID))
			kv, err := state.OpenKV(dir, state.KVConfig{})
			if err != nil {
				return nil, err
			}
			base = kv
		} else {
			base = state.NewMem()
		}
		if spec.NoChangelog {
			stores[spec.Name] = base
			continue
		}
		stores[spec.Name] = &changelogStore{
			Store:     base,
			topic:     changelogTopic(j.cfg.Name, spec.Name),
			partition: taskID,
			producer:  j.changelogProducer,
		}
	}
	return stores, nil
}

// restoreStores replays each store's changelog partition into the local
// store — the failure-recovery path of paper §3.2. It returns the number
// of records replayed.
func (j *Job) restoreStores(taskID int32, stores map[string]state.Store) (int, error) {
	replayed := 0
	for _, spec := range j.cfg.Stores {
		if spec.NoChangelog {
			continue
		}
		topic := changelogTopic(j.cfg.Name, spec.Name)
		target := stores[spec.Name]
		// Bypass the changelog wrapper: restoring must not re-publish.
		if cs, ok := target.(*changelogStore); ok {
			target = cs.Store
		}
		end, err := j.client.ListOffset(topic, taskID, wire.TimestampLatest)
		if err != nil {
			return replayed, fmt.Errorf("processing: changelog end: %w", err)
		}
		if end == 0 {
			continue
		}
		cons := client.NewConsumer(j.client, client.ConsumerConfig{})
		if err := cons.Assign(topic, taskID, client.StartEarliest); err != nil {
			cons.Close()
			return replayed, err
		}
		for cons.Position(topic, taskID) < end {
			msgs, err := cons.Poll(time.Second)
			if err != nil {
				cons.Close()
				return replayed, err
			}
			for _, m := range msgs {
				if m.Value == nil {
					if err := target.Delete(m.Key); err != nil {
						cons.Close()
						return replayed, err
					}
				} else {
					if err := target.Put(m.Key, m.Value); err != nil {
						cons.Close()
						return replayed, err
					}
				}
				replayed++
			}
		}
		cons.Close()
	}
	return replayed, nil
}

// ensureChangelogTopics creates the compacted changelog topics sized to
// the job's task count.
func (j *Job) ensureChangelogTopics(numTasks int32) error {
	for _, spec := range j.cfg.Stores {
		if spec.NoChangelog {
			continue
		}
		err := j.client.CreateTopic(wire.TopicSpec{
			Name:              changelogTopic(j.cfg.Name, spec.Name),
			NumPartitions:     numTasks,
			ReplicationFactor: j.cfg.ChangelogReplication,
			Compacted:         true,
		})
		if err != nil && wire.Code(err) != wire.ErrTopicAlreadyExists {
			return err
		}
	}
	return nil
}

package processing

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/isolation"
	"repro/internal/metrics"
)

// JobConfig declares one processing-layer job.
type JobConfig struct {
	// Name identifies the job; it prefixes changelog topics, the
	// checkpoint group and lineage annotations.
	Name string
	// Inputs are the feeds the job consumes. Task i consumes partition i
	// of every input that has at least i+1 partitions.
	Inputs []string
	// Factory builds the per-task processing logic.
	Factory TaskFactory
	// Stores declares the job's local state.
	Stores []StoreSpec
	// WindowInterval enables periodic Window calls on WindowedTasks.
	WindowInterval time.Duration
	// CheckpointInterval bounds how often consumed offsets are
	// checkpointed to the offset manager (default 1s).
	CheckpointInterval time.Duration
	// Annotations are attached to every checkpoint — e.g. the job's
	// software version, enabling rewind-by-version (paper §4.2).
	Annotations map[string]string
	// StartFrom applies when no checkpoint exists (default earliest).
	StartFrom int64
	// DataDir hosts persistent stores.
	DataDir string
	// PollWait is the long-poll budget per fetch (default 100ms).
	PollWait time.Duration
	// Governor optionally bounds the job's resources (ETL-as-a-service,
	// paper §4.4). Nil means unconstrained.
	Governor *isolation.Governor
	// ChangelogReplication sets the changelog topics' replication factor.
	ChangelogReplication int16
	// ChangelogCodec compresses changelog batches on the wire and in the
	// log (client.CodecNone/Gzip/Flate). Restore decompresses
	// transparently, so it can be enabled or disabled at any point in a
	// changelog's life.
	ChangelogCodec client.Codec
	// MaxTaskRestarts bounds automatic task restarts after processing
	// errors before the task gives up (default 5).
	MaxTaskRestarts int
	// Logger receives job events; nil discards.
	Logger *slog.Logger
	// Metrics receives job counters; nil creates a private registry.
	Metrics *metrics.Registry
}

func (c JobConfig) withDefaults() JobConfig {
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = time.Second
	}
	if c.StartFrom == 0 {
		c.StartFrom = client.StartEarliest
	}
	if c.PollWait == 0 {
		c.PollWait = 100 * time.Millisecond
	}
	if c.ChangelogReplication == 0 {
		c.ChangelogReplication = 1
	}
	if c.MaxTaskRestarts == 0 {
		c.MaxTaskRestarts = 5
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.DataDir == "" {
		c.DataDir = os.TempDir()
	}
	return c
}

// group names the job's checkpoint group at the offset manager.
func (c JobConfig) group() string { return "job-" + c.Name }

// Job is a running processing-layer job: a set of partition-parallel
// stateful tasks consuming input feeds and producing derived feeds.
type Job struct {
	cfg    JobConfig
	client *client.Client
	logger *slog.Logger

	collectorProducer *client.Producer
	changelogProducer *client.Producer

	mu      sync.Mutex
	tasks   []*taskRunner
	started bool
	stopped bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewJob validates the config and prepares a job; Start launches it.
func NewJob(c *client.Client, cfg JobConfig) (*Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, errors.New("processing: job name is required")
	}
	if len(cfg.Inputs) == 0 {
		return nil, errors.New("processing: at least one input feed is required")
	}
	if cfg.Factory == nil {
		return nil, errors.New("processing: task factory is required")
	}
	return &Job{
		cfg:    cfg,
		client: c,
		logger: cfg.Logger.With("job", cfg.Name),
		stopCh: make(chan struct{}),
	}, nil
}

// Metrics returns the job's metrics registry. Notable entries:
// "<job>.processed" (counter), "<job>.process.ns" (histogram),
// "<job>.checkpoints", "<job>.restores", "<job>.restored.records".
func (j *Job) Metrics() *metrics.Registry { return j.cfg.Metrics }

// Name returns the job name.
func (j *Job) Name() string { return j.cfg.Name }

// NumTasks returns the task (partition) count; valid after Start.
func (j *Job) NumTasks() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.tasks)
}

// Start resolves input partitions, creates changelog topics, restores
// state and launches one task per partition.
func (j *Job) Start() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started {
		return errors.New("processing: job already started")
	}
	numTasks := int32(0)
	for _, topic := range j.cfg.Inputs {
		n, err := j.client.PartitionCount(topic)
		if err != nil {
			return fmt.Errorf("processing: input %s: %w", topic, err)
		}
		if n > numTasks {
			numTasks = n
		}
	}
	if numTasks == 0 {
		return errors.New("processing: inputs have no partitions")
	}
	if err := j.ensureChangelogTopics(numTasks); err != nil {
		return err
	}
	j.collectorProducer = client.NewProducer(j.client, client.ProducerConfig{})
	j.changelogProducer = client.NewProducer(j.client, client.ProducerConfig{Codec: j.cfg.ChangelogCodec})

	for i := int32(0); i < numTasks; i++ {
		tr := &taskRunner{job: j, id: i}
		j.tasks = append(j.tasks, tr)
		j.wg.Add(1)
		go func() {
			defer j.wg.Done()
			tr.run()
		}()
	}
	j.started = true
	j.logger.Info("job started", "tasks", numTasks, "inputs", j.cfg.Inputs)
	return nil
}

// Stop gracefully halts all tasks: each takes a final checkpoint after
// flushing its outputs, so a restart resumes exactly where it left off.
func (j *Job) Stop() error {
	j.mu.Lock()
	if !j.started || j.stopped {
		j.mu.Unlock()
		return nil
	}
	j.stopped = true
	j.mu.Unlock()
	close(j.stopCh)
	j.wg.Wait()
	var first error
	if err := j.collectorProducer.Close(); err != nil {
		first = err
	}
	if err := j.changelogProducer.Close(); err != nil && first == nil {
		first = err
	}
	j.logger.Info("job stopped")
	return first
}

// taskRunner drives one task: poll -> process -> window -> checkpoint,
// with restart-on-error recovery through changelog replay.
type taskRunner struct {
	job *Job
	id  int32
	// assignedOnce guards the tasks.assigned counter: restarts re-run the
	// assignment loop, but each task must count exactly once so waiters
	// comparing the counter to NumTasks() see distinct tasks.
	assignedOnce sync.Once
}

// run executes the task until the job stops, restarting after processing
// failures up to the configured budget.
func (t *taskRunner) run() {
	cfg := t.job.cfg
	for attempt := 0; ; attempt++ {
		err := t.runOnce()
		if err == nil {
			return // graceful stop
		}
		t.job.cfg.Metrics.Counter(cfg.Name + ".task.failures").Inc()
		t.job.logger.Warn("task failed", "task", t.id, "attempt", attempt, "err", err)
		if attempt >= cfg.MaxTaskRestarts {
			t.job.logger.Error("task giving up", "task", t.id)
			return
		}
		select {
		case <-t.job.stopCh:
			return
		case <-time.After(backoff(attempt, 50*time.Millisecond, 2*time.Second)):
		}
	}
}

// runOnce builds state, restores, and processes until stop (nil) or
// failure (error).
func (t *taskRunner) runOnce() error {
	cfg := t.job.cfg
	reg := cfg.Metrics

	stores, err := t.job.buildStores(t.id)
	if err != nil {
		return err
	}
	closeStores := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	restoreStart := time.Now()
	replayed, err := t.job.restoreStores(t.id, stores)
	if err != nil {
		closeStores()
		return err
	}
	if replayed > 0 {
		reg.Counter(cfg.Name + ".restores").Inc()
		reg.Counter(cfg.Name + ".restored.records").Add(int64(replayed))
		reg.Histogram(cfg.Name + ".restore.ns").ObserveSince(restoreStart)
	}

	ctx := &TaskContext{Job: cfg.Name, TaskID: t.id, Metrics: reg, stores: stores}
	task := cfg.Factory()
	if init, ok := task.(InitableTask); ok {
		if err := init.Init(ctx); err != nil {
			closeStores()
			return err
		}
	}
	defer func() {
		if cl, ok := task.(ClosableTask); ok {
			cl.Close()
		}
		closeStores()
	}()

	collector := &Collector{
		job:      cfg.Name,
		producer: t.job.collectorProducer,
		sent:     reg.Counter(cfg.Name + ".sent"),
	}

	// Assign inputs from the last checkpoint (incremental processing:
	// already-processed data is skipped, paper §4.2).
	consumer := client.NewConsumer(t.job.client, client.ConsumerConfig{})
	defer consumer.Close()
	positions := make(map[string]int64)
	for _, topic := range cfg.Inputs {
		n, err := t.job.client.PartitionCount(topic)
		if err != nil || t.id >= n {
			continue
		}
		committed, err := t.job.client.FetchOffsets(cfg.group(), topic, []int32{t.id})
		if err != nil {
			return err
		}
		start := committed[t.id]
		if start < 0 {
			start = cfg.StartFrom
		}
		if err := consumer.Assign(topic, t.id, start); err != nil {
			return err
		}
		positions[topic] = consumer.Position(topic, t.id)
	}
	// Signal that start offsets are resolved: tests and operators can wait
	// for counter == NumTasks() instead of sleeping (a StartLatest job's
	// point-in-time "now" is fixed exactly here). Counted once per task —
	// restarts must not inflate it past the task count.
	t.assignedOnce.Do(func() { reg.Counter(cfg.Name + ".tasks.assigned").Inc() })

	processed := reg.Counter(cfg.Name + ".processed")
	procNS := reg.Histogram(cfg.Name + ".process.ns")
	e2eNS := reg.Histogram(cfg.Name + ".e2e.ns")
	lastCheckpoint := time.Now()
	lastWindow := time.Now()
	windowed, hasWindow := task.(WindowedTask)

	checkpoint := func() error {
		if err := collector.Flush(); err != nil {
			return err
		}
		if err := t.job.changelogProducer.Flush(); err != nil {
			return err
		}
		commit := make(map[string]map[int32]int64)
		for topic := range positions {
			pos := consumer.Position(topic, t.id)
			if pos < 0 {
				continue
			}
			commit[topic] = map[int32]int64{t.id: pos}
		}
		if len(commit) == 0 {
			return nil
		}
		if err := t.job.client.CommitOffsets(cfg.group(), commit, cfg.Annotations); err != nil {
			return err
		}
		reg.Counter(cfg.Name + ".checkpoints").Inc()
		return nil
	}

	for {
		select {
		case <-t.job.stopCh:
			return checkpoint() // final checkpoint; nil error = done
		default:
		}
		msgs, err := consumer.Poll(cfg.PollWait)
		if err != nil {
			// Transient broker churn: back off briefly and retry.
			select {
			case <-t.job.stopCh:
				return checkpoint()
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		for _, msg := range msgs {
			start := time.Now()
			var perr error
			cfg.Governor.Meter(func() {
				perr = task.Process(msg, ctx, collector)
			})
			procNS.ObserveSince(start)
			if msg.Timestamp > 0 {
				e2e := time.Now().UnixMilli() - msg.Timestamp
				e2eNS.Observe(e2e * int64(time.Millisecond))
			}
			if perr != nil {
				return fmt.Errorf("processing: task %d: %w", t.id, perr)
			}
			processed.Inc()
		}
		now := time.Now()
		if hasWindow && cfg.WindowInterval > 0 && now.Sub(lastWindow) >= cfg.WindowInterval {
			lastWindow = now
			var werr error
			cfg.Governor.Meter(func() {
				werr = windowed.Window(ctx, collector)
			})
			if werr != nil {
				return fmt.Errorf("processing: task %d window: %w", t.id, werr)
			}
		}
		if now.Sub(lastCheckpoint) >= cfg.CheckpointInterval {
			lastCheckpoint = now
			if err := checkpoint(); err != nil {
				return err
			}
		}
	}
}

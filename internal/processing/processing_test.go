package processing_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/processing"
)

// startStack boots a small single-broker stack for job tests.
func startStack(t *testing.T) *core.Stack {
	t.Helper()
	s, err := core.Start(core.Config{
		Brokers:        1,
		SessionTimeout: 800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func produceN(t *testing.T, s *core.Stack, topic string, n int, keyFn func(int) string, valFn func(int) string) {
	t.Helper()
	p := s.NewProducer(client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < n; i++ {
		var key []byte
		if keyFn != nil {
			key = []byte(keyFn(i))
		}
		if err := p.Send(client.Message{Topic: topic, Key: key, Value: []byte(valFn(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// drain reads n messages from all partitions of a topic.
func drain(t *testing.T, s *core.Stack, topic string, parts int32, n int, timeout time.Duration) []client.Message {
	t.Helper()
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	for p := int32(0); p < parts; p++ {
		if err := cons.Assign(topic, p, client.StartEarliest); err != nil {
			t.Fatal(err)
		}
	}
	var out []client.Message
	deadline := time.Now().Add(timeout)
	for len(out) < n && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		out = append(out, msgs...)
	}
	if len(out) < n {
		t.Fatalf("drained %d/%d from %s", len(out), n, topic)
	}
	return out
}

// upperTask is a stateless transform: value -> upper-cased value.
type upperTask struct{}

func (upperTask) Process(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
	up := make([]byte, len(msg.Value))
	for i, b := range msg.Value {
		if b >= 'a' && b <= 'z' {
			b -= 32
		}
		up[i] = b
	}
	return out.Send("clean", msg.Key, up)
}

func TestStatelessTransformJob(t *testing.T) {
	s := startStack(t)
	if err := s.CreateFeed("raw", 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateFeed("clean", 2, 1); err != nil {
		t.Fatal(err)
	}
	job, err := s.RunJob(processing.JobConfig{
		Name:    "upper",
		Inputs:  []string{"raw"},
		Factory: func() processing.StreamTask { return upperTask{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d, want 2 (one per partition)", job.NumTasks())
	}
	produceN(t, s, "raw", 40, nil, func(i int) string { return fmt.Sprintf("event-%d", i) })
	msgs := drain(t, s, "clean", 2, 40, 15*time.Second)
	seen := map[string]bool{}
	for _, m := range msgs {
		seen[string(m.Value)] = true
		// Derived feeds carry lineage annotations (paper §3).
		found := false
		for _, h := range m.Headers {
			if h.Key == "liquid.lineage" && string(h.Value) == "upper" {
				found = true
			}
		}
		if !found {
			t.Fatalf("message lacks lineage header: %+v", m.Headers)
		}
	}
	for i := 0; i < 40; i++ {
		if !seen[fmt.Sprintf("EVENT-%d", i)] {
			t.Fatalf("missing EVENT-%d", i)
		}
	}
	if got := job.Metrics().Counter("upper.processed").Value(); got < 40 {
		t.Fatalf("processed counter = %d", got)
	}
}

// countTask counts occurrences per key into the "counts" store.
type countTask struct{}

func (countTask) Process(msg client.Message, ctx *processing.TaskContext, _ *processing.Collector) error {
	store := ctx.Store("counts")
	cur := 0
	if v, ok, err := store.Get(msg.Key); err != nil {
		return err
	} else if ok {
		cur, _ = strconv.Atoi(string(v))
	}
	return store.Put(msg.Key, []byte(strconv.Itoa(cur+1)))
}

// readCounts replays a job's final counts from its store via a fresh task
// context — here we read them from the changelog-backed store by
// restarting the job and exposing state through an output; simpler: the
// test queries the store via a probe task. For directness the tests below
// read the changelog topic.
func TestStatefulJobRestoresFromChangelog(t *testing.T) {
	s := startStack(t)
	if err := s.CreateFeed("updates", 1, 1); err != nil {
		t.Fatal(err)
	}
	cfg := processing.JobConfig{
		Name:               "counter",
		Inputs:             []string{"updates"},
		Factory:            func() processing.StreamTask { return countTask{} },
		Stores:             []processing.StoreSpec{{Name: "counts"}},
		CheckpointInterval: 100 * time.Millisecond,
	}
	job, err := s.RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const keys, rounds = 5, 10
	produceN(t, s, "updates", keys*rounds,
		func(i int) string { return fmt.Sprintf("user-%d", i%keys) },
		func(i int) string { return "update" })

	waitCounter(t, job.Metrics().Counter("counter.processed"), keys*rounds, 10*time.Second)
	if err := job.Stop(); err != nil {
		t.Fatal(err)
	}

	// Restart the job under the same name: state must be rebuilt from
	// the changelog, and processing must resume from the checkpoint
	// (no reprocessing of old input).
	job2, err := s.RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "updates", keys,
		func(i int) string { return fmt.Sprintf("user-%d", i%keys) },
		func(i int) string { return "update" })
	waitCounter(t, job2.Metrics().Counter("counter.processed"), keys, 10*time.Second)
	if err := job2.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := job2.Metrics().Counter("counter.restored.records").Value(); got == 0 {
		t.Fatal("no records were restored from the changelog")
	}

	// Final counts: replay the changelog's latest values.
	counts := changelogState(t, s, "counter-counts-changelog", 1)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("user-%d", k)
		if counts[key] != strconv.Itoa(rounds+1) {
			t.Fatalf("count[%s] = %q, want %d", key, counts[key], rounds+1)
		}
	}
	// Incremental processing: the restarted job only processed the delta.
	if got := job2.Metrics().Counter("counter.processed").Value(); got != keys {
		t.Fatalf("restarted job processed %d messages, want %d (delta only)", got, keys)
	}
}

// changelogState replays a changelog topic into its latest per-key values.
func changelogState(t *testing.T, s *core.Stack, topic string, parts int32) map[string]string {
	t.Helper()
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	state := make(map[string]string)
	for p := int32(0); p < parts; p++ {
		end, err := s.Client().ListOffset(topic, p, -1)
		if err != nil {
			t.Fatal(err)
		}
		if end == 0 {
			continue
		}
		if err := cons.Assign(topic, p, client.StartEarliest); err != nil {
			t.Fatal(err)
		}
		for cons.Position(topic, p) < end {
			msgs, err := cons.Poll(500 * time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range msgs {
				if m.Value == nil {
					delete(state, string(m.Key))
				} else {
					state[string(m.Key)] = string(m.Value)
				}
			}
		}
		cons.Unassign(topic, p)
	}
	return state
}

func waitCounter(t *testing.T, c interface{ Value() int64 }, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter reached %d, want %d", c.Value(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// flakyTask fails once on a marker message, then succeeds — exercising the
// restart/restore path.
type flakyTask struct {
	failed *atomic.Bool
}

func (f flakyTask) Process(msg client.Message, ctx *processing.TaskContext, out *processing.Collector) error {
	if string(msg.Value) == "poison" && !f.failed.Swap(true) {
		return errors.New("injected failure")
	}
	store := ctx.Store("seen")
	n := 0
	if v, ok, _ := store.Get([]byte("n")); ok {
		n, _ = strconv.Atoi(string(v))
	}
	if err := store.Put([]byte("n"), []byte(strconv.Itoa(n+1))); err != nil {
		return err
	}
	return out.Send("survived", msg.Key, msg.Value)
}

func TestTaskRestartAfterProcessingFailure(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("in", 1, 1)
	s.CreateFeed("survived", 1, 1)
	var failed atomic.Bool
	job, err := s.RunJob(processing.JobConfig{
		Name:               "flaky",
		Inputs:             []string{"in"},
		Factory:            func() processing.StreamTask { return flakyTask{failed: &failed} },
		Stores:             []processing.StoreSpec{{Name: "seen"}},
		CheckpointInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewProducer(client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("m%d", i)
		if i == 5 {
			v = "poison"
		}
		if _, err := p.SendSync(client.Message{Topic: "in", Value: []byte(v)}); err != nil {
			t.Fatal(err)
		}
	}
	// All 10 messages eventually come out (at-least-once: duplicates
	// possible around the failure, loss is not).
	got := drain(t, s, "survived", 1, 10, 15*time.Second)
	seen := map[string]bool{}
	for _, m := range got {
		seen[string(m.Value)] = true
	}
	for i := 0; i < 10; i++ {
		v := fmt.Sprintf("m%d", i)
		if i == 5 {
			v = "poison"
		}
		if !seen[v] {
			t.Fatalf("lost message %q across task restart", v)
		}
	}
	if job.Metrics().Counter("flaky.task.failures").Value() == 0 {
		t.Fatal("failure was not recorded")
	}
}

// windowTask accumulates values and emits a JSON summary on each window.
type windowTask struct {
	count int
}

func (w *windowTask) Process(msg client.Message, _ *processing.TaskContext, _ *processing.Collector) error {
	w.count++
	return nil
}

func (w *windowTask) Window(_ *processing.TaskContext, out *processing.Collector) error {
	if w.count == 0 {
		return nil
	}
	b, _ := json.Marshal(map[string]int{"count": w.count})
	w.count = 0
	return out.Send("summaries", nil, b)
}

func TestWindowedAggregation(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("ticks", 1, 1)
	s.CreateFeed("summaries", 1, 1)
	_, err := s.RunJob(processing.JobConfig{
		Name:           "windows",
		Inputs:         []string{"ticks"},
		Factory:        func() processing.StreamTask { return &windowTask{} },
		WindowInterval: 100 * time.Millisecond,
		PollWait:       20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "ticks", 30, nil, func(i int) string { return "tick" })
	// At least one summary arrives, and the sum of counts equals 30.
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("summaries", 0, client.StartEarliest)
	total := 0
	deadline := time.Now().Add(15 * time.Second)
	for total < 30 && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			var s map[string]int
			if err := json.Unmarshal(m.Value, &s); err != nil {
				t.Fatalf("bad summary %q: %v", m.Value, err)
			}
			total += s["count"]
		}
	}
	if total != 30 {
		t.Fatalf("window totals = %d, want 30", total)
	}
}

// annotateTask does nothing; used to exercise checkpoint annotations.
type annotateTask struct{}

func (annotateTask) Process(client.Message, *processing.TaskContext, *processing.Collector) error {
	return nil
}

func TestCheckpointsCarryVersionAnnotations(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("src", 1, 1)
	job, err := s.RunJob(processing.JobConfig{
		Name:               "annot",
		Inputs:             []string{"src"},
		Factory:            func() processing.StreamTask { return annotateTask{} },
		Annotations:        map[string]string{"version": "v1"},
		CheckpointInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "src", 10, nil, func(i int) string { return fmt.Sprintf("e%d", i) })
	waitCounter(t, job.Metrics().Counter("annot.processed"), 10, 10*time.Second)
	job.Stop()

	// The offset manager can answer "where was version v1?" — the rewind
	// primitive of paper §4.2.
	off, found, err := s.Client().QueryOffset("job-annot", "src", 0, "version", "v1")
	if err != nil || !found {
		t.Fatalf("QueryOffset: off=%d found=%v err=%v", off, found, err)
	}
	if off != 10 {
		t.Fatalf("checkpointed offset = %d, want 10", off)
	}
}

func TestJobValidation(t *testing.T) {
	s := startStack(t)
	if _, err := processing.NewJob(s.Client(), processing.JobConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := processing.NewJob(s.Client(), processing.JobConfig{Name: "x"}); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if _, err := processing.NewJob(s.Client(), processing.JobConfig{Name: "x", Inputs: []string{"t"}}); err == nil {
		t.Fatal("missing factory accepted")
	}
	j, err := processing.NewJob(s.Client(), processing.JobConfig{
		Name: "x", Inputs: []string{"missing-topic"},
		Factory: func() processing.StreamTask { return annotateTask{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Start(); err == nil {
		t.Fatal("start with missing input topic should fail")
	}
}

// persistentCountTask is countTask over a persistent store.
func TestPersistentStoreJob(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("pin", 1, 1)
	job, err := s.RunJob(processing.JobConfig{
		Name:               "pcount",
		Inputs:             []string{"pin"},
		Factory:            func() processing.StreamTask { return countTask{} },
		Stores:             []processing.StoreSpec{{Name: "counts", Persistent: true}},
		CheckpointInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "pin", 20, func(i int) string { return fmt.Sprintf("k%d", i%4) }, func(i int) string { return "u" })
	waitCounter(t, job.Metrics().Counter("pcount.processed"), 20, 10*time.Second)
	job.Stop()
	counts := changelogState(t, s, "pcount-counts-changelog", 1)
	for i := 0; i < 4; i++ {
		if counts[fmt.Sprintf("k%d", i)] != "5" {
			t.Fatalf("counts = %v", counts)
		}
	}
}

func TestMultiInputJob(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("a", 2, 1)
	s.CreateFeed("b", 2, 1)
	s.CreateFeed("merged", 2, 1)
	type mergeTask struct{ upperTask } // reuse transform to "merged"
	_ = mergeTask{}
	job, err := s.RunJob(processing.JobConfig{
		Name:   "merge",
		Inputs: []string{"a", "b"},
		Factory: func() processing.StreamTask {
			return processing.TaskFunc(func(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
				return out.Send("merged", msg.Key, msg.Value)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d", job.NumTasks())
	}
	produceN(t, s, "a", 10, nil, func(i int) string { return fmt.Sprintf("a%d", i) })
	produceN(t, s, "b", 10, nil, func(i int) string { return fmt.Sprintf("b%d", i) })
	msgs := drain(t, s, "merged", 2, 20, 15*time.Second)
	if len(msgs) < 20 {
		t.Fatalf("merged %d messages", len(msgs))
	}
}

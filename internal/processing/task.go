// Package processing implements the processing layer of the stack — the
// Apache Samza equivalent (paper §3.2): ETL-like jobs composed of one task
// per input partition, with explicit local state backed by changelog feeds
// in the messaging layer, periodic offset checkpoints with annotations for
// incremental processing (§4.2), windowed computation, failure recovery by
// changelog replay, and per-job resource isolation (§4.4).
package processing

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/storage/record"
)

// StreamTask is the processing logic of a job: Process is invoked for
// every input message of the task's partition, in offset order per
// partition. Implementations may also satisfy InitableTask, WindowedTask
// and ClosableTask.
type StreamTask interface {
	Process(msg client.Message, ctx *TaskContext, out *Collector) error
}

// InitableTask receives the task context before the first message —
// typically to look up state stores.
type InitableTask interface {
	Init(ctx *TaskContext) error
}

// WindowedTask receives periodic Window calls (JobConfig.WindowInterval),
// used for time-based aggregation and emission.
type WindowedTask interface {
	Window(ctx *TaskContext, out *Collector) error
}

// ClosableTask is torn down on job shutdown.
type ClosableTask interface {
	Close() error
}

// TaskFactory builds one StreamTask instance per task (partition).
type TaskFactory func() StreamTask

// TaskFunc adapts a plain function to StreamTask, for stateless jobs.
type TaskFunc func(msg client.Message, ctx *TaskContext, out *Collector) error

// Process implements StreamTask.
func (f TaskFunc) Process(msg client.Message, ctx *TaskContext, out *Collector) error {
	return f(msg, ctx, out)
}

// TaskContext is a task's runtime environment.
type TaskContext struct {
	// Job is the owning job's name.
	Job string
	// TaskID equals the input partition this task owns.
	TaskID int32
	// Metrics is the job's registry.
	Metrics *metrics.Registry

	stores map[string]state.Store
}

// Store returns the named state store declared in the job config. It
// panics on unknown names: that is a programming error in the job, caught
// in development.
func (c *TaskContext) Store(name string) state.Store {
	s, ok := c.stores[name]
	if !ok {
		panic(fmt.Sprintf("processing: job %q declares no store %q", c.Job, name))
	}
	return s
}

// Collector emits messages to derived output feeds. Every message is
// annotated with a lineage header naming the producing job (paper §3:
// derived feeds carry lineage information).
type Collector struct {
	job      string
	producer *client.Producer
	sent     *metrics.Counter
}

// Send publishes key/value to an output topic, partitioned by key.
func (c *Collector) Send(topic string, key, value []byte) error {
	return c.SendMessage(client.Message{Topic: topic, Key: key, Value: value})
}

// SendTo publishes to an explicit partition.
func (c *Collector) SendTo(topic string, partition int32, key, value []byte) error {
	msg := client.Message{Topic: topic, Partition: partition, Key: key, Value: value}
	msg.Headers = append(msg.Headers, lineageHeader(c.job))
	if err := c.producer.SendExplicit(msg); err != nil {
		return err
	}
	c.sent.Inc()
	return nil
}

// SendMessage publishes a full message (partitioner-routed), adding the
// lineage header.
func (c *Collector) SendMessage(msg client.Message) error {
	msg.Headers = append(msg.Headers, lineageHeader(c.job))
	if err := c.producer.Send(msg); err != nil {
		return err
	}
	c.sent.Inc()
	return nil
}

// Flush forces buffered output to the messaging layer.
func (c *Collector) Flush() error { return c.producer.Flush() }

// lineageHeader builds the standard lineage annotation.
func lineageHeader(job string) record.Header {
	return record.Header{Key: "liquid.lineage", Value: []byte(job)}
}

// backoff sleeps with exponential growth capped at max; attempt counts
// from 0.
func backoff(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return d
}

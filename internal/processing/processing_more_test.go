package processing_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/isolation"
	"repro/internal/processing"
)

// burnTask spins for a fixed CPU time per message.
type burnTask struct{ d time.Duration }

func (b burnTask) Process(client.Message, *processing.TaskContext, *processing.Collector) error {
	start := time.Now()
	for time.Since(start) < b.d {
	}
	return nil
}

func TestGovernedJobIsThrottled(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("burn", 1, 1)
	gov := isolation.New(isolation.Config{CPUShare: 0.2, Burst: time.Millisecond})
	job, err := s.RunJob(processing.JobConfig{
		Name:     "burner",
		Inputs:   []string{"burn"},
		Factory:  func() processing.StreamTask { return burnTask{d: 2 * time.Millisecond} },
		Governor: gov,
		PollWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "burn", 50, nil, func(i int) string { return "x" })
	// 50 messages x 2ms CPU at a 20% share needs >= ~400ms wall fair
	// share (50*2/0.2 = 500ms); unthrottled it would take ~100ms.
	start := time.Now()
	waitCounter(t, job.Metrics().Counter("burner.processed"), 50, 30*time.Second)
	elapsed := time.Since(start)
	if elapsed < 300*time.Millisecond {
		t.Fatalf("governed job finished in %v; throttling ineffective", elapsed)
	}
	if gov.Usage().ThrottleCount == 0 {
		t.Fatal("governor never throttled")
	}
}

func TestCollectorSendToExplicitPartition(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("rin", 1, 1)
	s.CreateFeed("rout", 4, 1)
	_, err := s.RunJob(processing.JobConfig{
		Name:   "router",
		Inputs: []string{"rin"},
		Factory: func() processing.StreamTask {
			return processing.TaskFunc(func(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
				// Route everything to partition 3 regardless of key.
				return out.SendTo("rout", 3, msg.Key, msg.Value)
			})
		},
		PollWait: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "rin", 12, func(i int) string { return fmt.Sprintf("k%d", i) }, func(i int) string { return "v" })
	msgs := drain(t, s, "rout", 4, 12, 15*time.Second)
	for _, m := range msgs {
		if m.Partition != 3 {
			t.Fatalf("message on partition %d, want 3", m.Partition)
		}
	}
}

func TestJobStartLatestSkipsHistory(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("hist", 1, 1)
	s.CreateFeed("hist-out", 1, 1)
	// History the job must not process.
	produceN(t, s, "hist", 25, nil, func(i int) string { return fmt.Sprintf("old-%d", i) })

	job, err := s.RunJob(processing.JobConfig{
		Name:      "fresh",
		Inputs:    []string{"hist"},
		StartFrom: client.StartLatest,
		Factory: func() processing.StreamTask {
			return processing.TaskFunc(func(msg client.Message, _ *processing.TaskContext, out *processing.Collector) error {
				return out.Send("hist-out", msg.Key, msg.Value)
			})
		},
		PollWait: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the task to resolve its StartLatest position (the
	// tasks.assigned counter fires exactly when start offsets are fixed),
	// then produce new records — deterministic, no sleep to flake on.
	assignDeadline := time.Now().Add(15 * time.Second)
	for job.Metrics().Counter("fresh.tasks.assigned").Value() < int64(job.NumTasks()) {
		if time.Now().After(assignDeadline) {
			t.Fatal("task never resolved its start offsets")
		}
		time.Sleep(5 * time.Millisecond)
	}
	produceN(t, s, "hist", 5, nil, func(i int) string { return fmt.Sprintf("new-%d", i) })
	msgs := drain(t, s, "hist-out", 1, 5, 15*time.Second)
	for _, m := range msgs {
		if string(m.Value[:3]) != "new" {
			t.Fatalf("StartLatest job processed history: %q", m.Value)
		}
	}
	if got := job.Metrics().Counter("fresh.processed").Value(); got > 5 {
		t.Fatalf("processed %d, want <= 5", got)
	}
}

func TestTwoStoresPerJob(t *testing.T) {
	s := startStack(t)
	s.CreateFeed("multi", 1, 1)
	job, err := s.RunJob(processing.JobConfig{
		Name:   "twostores",
		Inputs: []string{"multi"},
		Stores: []processing.StoreSpec{{Name: "a"}, {Name: "b", Persistent: true}},
		Factory: func() processing.StreamTask {
			return processing.TaskFunc(func(msg client.Message, ctx *processing.TaskContext, _ *processing.Collector) error {
				if err := ctx.Store("a").Put(msg.Value, []byte("1")); err != nil {
					return err
				}
				return ctx.Store("b").Put(msg.Value, []byte("2"))
			})
		},
		CheckpointInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	produceN(t, s, "multi", 10, nil, func(i int) string { return fmt.Sprintf("k%d", i) })
	waitCounter(t, job.Metrics().Counter("twostores.processed"), 10, 10*time.Second)
	job.Stop()
	// Both changelogs exist and carry the state.
	for _, store := range []string{"a", "b"} {
		state := changelogState(t, s, "twostores-"+store+"-changelog", 1)
		if len(state) != 10 {
			t.Fatalf("store %s changelog has %d keys", store, len(state))
		}
	}
}

func TestUnknownStorePanicsWithClearMessage(t *testing.T) {
	ctx := &processing.TaskContext{Job: "j"}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for unknown store")
		}
	}()
	// TaskContext with no stores: Store must panic (programming error).
	_ = ctx.Store("nope")
}

package table

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/client"
)

// Router routes table reads: it hashes a key to its partition with the
// exact hash the producer-side HashPartitioner uses (FNV-1a mod partition
// count), so every key is looked up in the partition its updates were
// produced to, and sends the read to the broker currently materializing
// that partition. Leadership moves are absorbed by the client's
// retry-on-move loop. A Router is safe for concurrent use.
type Router struct {
	c     *client.Client
	topic string
	parts atomic.Int32 // cached partition count; immutable once created
}

// NewRouter returns a router for one table topic.
func NewRouter(c *client.Client, topic string) *Router {
	return &Router{c: c, topic: topic}
}

// Topic returns the table's topic name.
func (r *Router) Topic() string { return r.topic }

// Partitions returns the table's partition count.
func (r *Router) Partitions() (int32, error) {
	if n := r.parts.Load(); n > 0 {
		return n, nil
	}
	n, err := r.c.PartitionCount(r.topic)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("table: topic %q has no partitions", r.topic)
	}
	r.parts.Store(n)
	return n, nil
}

// HashKey returns the partition a key's updates hash to. It MUST match
// client.HashPartitioner (FNV-1a mod partition count): a divergent hash
// would answer reads from a partition the key was never written to.
func HashKey(key []byte, numPartitions int32) int32 {
	f := fnv.New32a()
	f.Write(key)
	return int32(f.Sum32() % uint32(numPartitions))
}

// PartitionFor returns the partition a key's updates hash to.
func (r *Router) PartitionFor(key []byte) (int32, error) {
	n, err := r.Partitions()
	if err != nil {
		return 0, err
	}
	return HashKey(key, n), nil
}

// Get performs a point read for key with the given staleness bound
// (hw − applied lag in offsets; negative = any, zero = fully caught up).
func (r *Router) Get(key []byte, maxLagOffsets int64) (client.TableGetResult, error) {
	p, err := r.PartitionFor(key)
	if err != nil {
		return client.TableGetResult{}, err
	}
	return r.c.TableGet(r.topic, p, key, maxLagOffsets)
}

// RangePartition scans keys in [from, to) of one partition in ascending
// order; see client.TableRange. A table's keyspace is hash-partitioned, so
// a global ordered scan requires merging the per-partition scans —
// RangeAll does a simple concatenation for callers that only need
// per-partition order.
func (r *Router) RangePartition(partition int32, from, to []byte, limit int32, maxLagOffsets int64) (client.TableRangeResult, error) {
	return r.c.TableRange(r.topic, partition, from, to, limit, maxLagOffsets)
}

// RangeAll scans [from, to) across every partition, concatenating the
// per-partition results in partition order (each slice ascending by key;
// the concatenation is NOT globally sorted). limit bounds the TOTAL number
// of returned entries.
func (r *Router) RangeAll(from, to []byte, limit int32, maxLagOffsets int64) ([]client.TableRangeResult, error) {
	n, err := r.Partitions()
	if err != nil {
		return nil, err
	}
	out := make([]client.TableRangeResult, 0, n)
	remaining := limit
	for p := int32(0); p < n; p++ {
		if limit > 0 && remaining <= 0 {
			break
		}
		res, err := r.c.TableRange(r.topic, p, from, to, remaining, maxLagOffsets)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		remaining -= int32(len(res.Entries))
	}
	return out, nil
}

// Status reports every partition's materializer freshness.
func (r *Router) Status() ([]client.TableStatusPartition, error) {
	return r.c.TableStatus(r.topic)
}

// Package table turns a compacted feed into a queryable key→value view —
// the paper's serve-side reads (§2, §3.2): workloads like "who viewed my
// profile" need point lookups over the same lineage of data the nearline
// feed carries, not another copy loaded into a separate store.
//
// A table is declared at topic creation (TopicSpec.Table, requires
// Compacted). Each partition leader attaches a Partition materializer that
// consumes its own committed log — the byte-identical compressed-batch read
// path replication and consumers use — into an internal/state.Store,
// changelog-style: nil-value records delete, everything else upserts, and
// the applied offset advances past each record exactly once. Reads are
// answered locally by the leader (TableGet/TableRange wire APIs) with a
// freshness watermark (applied offset vs high watermark) so callers choose
// their own staleness bound. The Router hashes keys with the producer's
// partitioner and routes each read to the broker currently serving that
// partition, retrying on moves; Table[K, V] wraps the Router in typed
// codecs.
package table

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/state"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// Source is one partition's committed log as the materializer consumes it.
// The broker implements it over its replica; tests implement it over an
// in-memory log.
type Source interface {
	// ReadCommitted returns encoded record batches at offset, bounded by
	// maxBytes but always containing at least one whole batch when data
	// exists. It also reports the high watermark and the earliest
	// available offset (compaction advances it past dropped prefixes).
	ReadCommitted(offset int64, maxBytes int) (data []byte, hw, earliest int64, code wire.ErrorCode)
	// Notify returns a channel closed on the next append or
	// high-watermark advance.
	Notify() <-chan struct{}
}

// readMaxBytes bounds one materializer fetch. Large enough to amortize the
// scan, small enough to keep apply latency (and thus staleness) low.
const readMaxBytes = 4 << 20

// Partition materializes one compacted-feed partition into a state.Store.
// It bootstraps from offset 0 (changelog restore) and then follows the high
// watermark continuously. Get/Range/ApproxLen may be called concurrently
// with materialization; Freshness reports how far behind the view is.
type Partition struct {
	src   Source
	store state.Store

	applied atomic.Int64 // next offset to apply; offsets below are in the store
	hw      atomic.Int64 // last observed high watermark

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	failure  atomic.Value // error: terminal materializer failure
}

// NewPartition starts materializing src into store and returns the running
// Partition. The Partition owns store and closes it on Close.
func NewPartition(src Source, store state.Store) *Partition {
	p := &Partition{
		src:   src,
		store: store,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *Partition) run() {
	defer close(p.done)
	pos := int64(0)
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		// Grab the notification channel BEFORE reading so an append that
		// lands between the read and the wait still wakes us.
		notify := p.src.Notify()
		data, hw, earliest, code := p.src.ReadCommitted(pos, readMaxBytes)
		switch code {
		case wire.ErrNone:
		case wire.ErrOffsetOutOfRange:
			if pos < earliest {
				// Compaction advanced the log start. Safe to skip: a
				// compacted log only drops records superseded by a later
				// record for the same key, so the state at earliest
				// subsumes everything below it.
				pos = earliest
				continue
			}
			p.failure.Store(fmt.Errorf("table: offset %d beyond log (earliest %d, hw %d)", pos, earliest, hw))
			return
		default:
			// Not leader anymore, or the replica closed: terminal — the
			// broker detaches and a new leader rematerializes.
			p.failure.Store(code.Err())
			return
		}
		p.hw.Store(hw)
		if len(data) == 0 {
			p.applied.Store(pos)
			select {
			case <-notify:
			case <-p.stop:
				return
			}
			continue
		}
		next := pos
		err := record.ScanRecords(data, func(rec record.Record) error {
			if rec.Offset < next {
				return nil // batch prefix below the requested offset
			}
			if rec.Value == nil {
				if err := p.store.Delete(rec.Key); err != nil {
					return err
				}
			} else if err := p.store.Put(rec.Key, rec.Value); err != nil {
				return err
			}
			next = rec.Offset + 1
			return nil
		})
		if err != nil {
			p.failure.Store(fmt.Errorf("table: apply at offset %d: %w", next, err))
			return
		}
		if next == pos {
			// A non-empty read that applied nothing would spin; treat it
			// as corruption rather than loop.
			p.failure.Store(fmt.Errorf("table: no records decoded at offset %d (%d bytes)", pos, len(data)))
			return
		}
		pos = next
		p.applied.Store(pos)
	}
}

// Get returns the current value for key.
func (p *Partition) Get(key []byte) ([]byte, bool, error) {
	return p.store.Get(key)
}

// Range calls fn over keys in [from, to) in ascending order; nil bounds are
// open and fn returning false stops the scan.
func (p *Partition) Range(from, to []byte, fn func(key, value []byte) bool) error {
	return p.store.Range(from, to, fn)
}

// ApproxLen returns the approximate number of live keys. Approximate
// because materialization advances concurrently.
func (p *Partition) ApproxLen() int { return p.store.Len() }

// Freshness returns the applied offset (next offset to materialize) and the
// last observed high watermark. applied == hw means the view reflects every
// committed write.
func (p *Partition) Freshness() (applied, hw int64) {
	return p.applied.Load(), p.hw.Load()
}

// Err returns the terminal materializer failure, if any.
func (p *Partition) Err() error {
	if v := p.failure.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Close stops materialization, waits for the loop to exit, and closes the
// store.
func (p *Partition) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	return p.store.Close()
}

package table

import (
	"testing"

	"repro/internal/lint/leakcheck"
)

// TestMain fails the suite if broker/stack goroutines outlive the tests;
// see internal/lint/leakcheck.
func TestMain(m *testing.M) { leakcheck.Main(m) }

package table

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/state"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// fakeSource is an in-memory committed log for materializer tests: batches
// are appended under a lock, readers see everything at or above `earliest`,
// and Notify wakes the tailer exactly like the broker's replica does.
type fakeSource struct {
	mu       sync.Mutex
	batches  [][]byte // encoded batches, in offset order
	bases    []int64  // base offset per batch
	hw       int64
	earliest int64
	code     wire.ErrorCode // forced error, ErrNone = healthy
	notify   chan struct{}
}

func newFakeSource() *fakeSource {
	return &fakeSource{notify: make(chan struct{})}
}

// append encodes one batch of records at the current end of the log and
// advances the high watermark past it.
func (f *fakeSource) append(recs ...record.Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	base := f.hw
	for i := range recs {
		recs[i].Offset = base + int64(i)
	}
	f.batches = append(f.batches, record.EncodeBatch(base, recs))
	f.bases = append(f.bases, base)
	f.hw = base + int64(len(recs))
	close(f.notify)
	f.notify = make(chan struct{})
}

// compactTo drops batches entirely below offset, advancing earliest — the
// log-start jump a compaction or a retention sweep produces.
func (f *fakeSource) compactTo(offset int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keep := 0
	for i, b := range f.batches {
		batch, _, err := record.DecodeBatch(b)
		if err != nil {
			panic(err)
		}
		if batch.LastOffset() < offset {
			keep = i + 1
		}
	}
	f.batches = f.batches[keep:]
	f.bases = f.bases[keep:]
	f.earliest = offset
	close(f.notify)
	f.notify = make(chan struct{})
}

func (f *fakeSource) fail(code wire.ErrorCode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.code = code
	close(f.notify)
	f.notify = make(chan struct{})
}

func (f *fakeSource) ReadCommitted(offset int64, maxBytes int) ([]byte, int64, int64, wire.ErrorCode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.code != wire.ErrNone {
		return nil, f.hw, f.earliest, f.code
	}
	if offset < f.earliest {
		return nil, f.hw, f.earliest, wire.ErrOffsetOutOfRange
	}
	var out []byte
	for i, b := range f.batches {
		batch, _, err := record.DecodeBatch(b)
		if err != nil {
			panic(err)
		}
		if batch.LastOffset() < offset || f.bases[i] >= f.hw {
			continue
		}
		if len(out) > 0 && len(out)+len(b) > maxBytes {
			break
		}
		out = append(out, b...)
	}
	return out, f.hw, f.earliest, wire.ErrNone
}

func (f *fakeSource) Notify() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.notify
}

// awaitApplied blocks until the partition has applied through hw (lag 0) or
// the deadline passes.
func awaitApplied(t *testing.T, p *Partition, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		applied, _ := p.Freshness()
		if applied >= want {
			return
		}
		if err := p.Err(); err != nil {
			t.Fatalf("materializer failed while waiting for offset %d: %v", want, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("applied %d never reached %d", applied, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func rec(key, value string) record.Record {
	r := record.Record{Key: []byte(key)}
	if value != "" {
		r.Value = []byte(value)
	}
	return r
}

func TestPartitionMaterializesChangelog(t *testing.T) {
	src := newFakeSource()
	src.append(rec("a", "1"), rec("b", "1"), rec("c", "1"))
	p := NewPartition(src, state.NewMem())
	defer p.Close()
	awaitApplied(t, p, 3)

	// Upserts, overwrites and tombstones arriving after bootstrap.
	src.append(rec("b", "2"), rec("a", "")) // overwrite b, delete a
	src.append(rec("d", "1"))
	awaitApplied(t, p, 6)

	if v, ok, _ := p.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("b = %q %v, want overwrite to 2", v, ok)
	}
	if _, ok, _ := p.Get([]byte("a")); ok {
		t.Fatal("tombstoned key a still visible")
	}
	if v, ok, _ := p.Get([]byte("d")); !ok || string(v) != "1" {
		t.Fatalf("d = %q %v", v, ok)
	}
	if got := p.ApproxLen(); got != 3 {
		t.Fatalf("ApproxLen = %d, want 3 (b, c, d)", got)
	}
	applied, hw := p.Freshness()
	if applied != 6 || hw != 6 {
		t.Fatalf("freshness = %d/%d, want 6/6", applied, hw)
	}

	var keys []string
	if err := p.Range(nil, nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != fmt.Sprint([]string{"b", "c", "d"}) {
		t.Fatalf("Range keys = %v", keys)
	}
}

// TestPartitionJumpsCompactedPrefix pins the bootstrap-vs-compaction rule:
// when the log start has advanced past the materializer's position, it must
// jump to earliest and keep going — a compacted log only drops superseded
// records, so the state at earliest subsumes the dropped prefix.
func TestPartitionJumpsCompactedPrefix(t *testing.T) {
	src := newFakeSource()
	src.append(rec("a", "old"), rec("b", "old"))
	src.append(rec("a", "new"), rec("b", "new"))
	// Compaction dropped the first batch before the materializer started.
	src.compactTo(2)

	p := NewPartition(src, state.NewMem())
	defer p.Close()
	awaitApplied(t, p, 4)
	if v, ok, _ := p.Get([]byte("a")); !ok || string(v) != "new" {
		t.Fatalf("a = %q %v after prefix jump", v, ok)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("healthy materializer reports %v", err)
	}
}

// TestPartitionTerminalOnLeadershipLoss pins the failure contract the
// broker's detach path relies on: a non-retriable read error ends the loop
// and surfaces through Err, and Close still returns cleanly afterwards.
func TestPartitionTerminalOnLeadershipLoss(t *testing.T) {
	src := newFakeSource()
	src.append(rec("a", "1"))
	p := NewPartition(src, state.NewMem())
	awaitApplied(t, p, 1)

	src.fail(wire.ErrNotLeaderForPartition)
	deadline := time.Now().Add(10 * time.Second)
	for p.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("materializer never turned terminal after leadership loss")
		}
		time.Sleep(time.Millisecond)
	}
	if code := wire.Code(p.Err()); code != wire.ErrNotLeaderForPartition {
		t.Fatalf("terminal error = %v, want not-leader", p.Err())
	}
	// The last applied state stays readable until the broker detaches.
	if v, ok, _ := p.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("a = %q %v after terminal failure", v, ok)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close after terminal failure: %v", err)
	}
}

func TestPartitionCloseStopsTailer(t *testing.T) {
	src := newFakeSource()
	p := NewPartition(src, state.NewMem())
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle tailer")
	}
	// Idempotent.
	if err := p.Close(); !errors.Is(err, state.ErrClosed) && err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestHashKeyRange(t *testing.T) {
	for _, n := range []int32{1, 2, 8, 64} {
		for i := 0; i < 200; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			p := HashKey(key, n)
			if p < 0 || p >= n {
				t.Fatalf("HashKey(%q, %d) = %d out of range", key, n, p)
			}
		}
	}
	if a, b := HashKey([]byte("x"), 8), HashKey([]byte("x"), 8); a != b {
		t.Fatalf("HashKey not deterministic: %d vs %d", a, b)
	}
}

func TestCodecs(t *testing.T) {
	sc := StringCodec()
	b, err := sc.Encode("hello")
	if err != nil || string(b) != "hello" {
		t.Fatalf("string encode = %q %v", b, err)
	}
	s, err := sc.Decode(b)
	if err != nil || s != "hello" {
		t.Fatalf("string decode = %q %v", s, err)
	}

	bc := BytesCodec()
	raw := []byte{0, 1, 2}
	eb, err := bc.Encode(raw)
	if err != nil || !bytes.Equal(eb, raw) {
		t.Fatalf("bytes encode = %v %v", eb, err)
	}

	type profile struct {
		Name  string `json:"name"`
		Views int    `json:"views"`
	}
	jc := JSONCodec[profile]()
	in := profile{Name: "ada", Views: 7}
	jb, err := jc.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := jc.Decode(jb)
	if err != nil || out != in {
		t.Fatalf("json round trip = %+v %v", out, err)
	}
}

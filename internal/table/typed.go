package table

import (
	"encoding/json"
	"fmt"

	"repro/internal/client"
)

// Codec converts values of one Go type to and from their feed
// representation.
type Codec[T any] interface {
	Encode(T) ([]byte, error)
	Decode([]byte) (T, error)
}

type stringCodec struct{}

func (stringCodec) Encode(s string) ([]byte, error) { return []byte(s), nil }
func (stringCodec) Decode(b []byte) (string, error) { return string(b), nil }

// StringCodec stores strings as raw UTF-8 bytes.
func StringCodec() Codec[string] { return stringCodec{} }

type bytesCodec struct{}

func (bytesCodec) Encode(b []byte) ([]byte, error) { return b, nil }
func (bytesCodec) Decode(b []byte) ([]byte, error) { return b, nil }

// BytesCodec stores byte slices verbatim.
func BytesCodec() Codec[[]byte] { return bytesCodec{} }

type jsonCodec[T any] struct{}

func (jsonCodec[T]) Encode(v T) ([]byte, error) { return json.Marshal(v) }
func (jsonCodec[T]) Decode(b []byte) (T, error) {
	var v T
	err := json.Unmarshal(b, &v)
	return v, err
}

// JSONCodec stores values as JSON.
func JSONCodec[T any]() Codec[T] { return jsonCodec[T]{} }

// Table is the typed facade over a queryable feed: writes go through a
// keyed producer (the same hash-partitioned path any producer uses), reads
// go through the Router to the partition leader's materialized view. The
// zero staleness bound is "any" — callers needing read-your-writes use
// GetWithin(key, 0).
type Table[K, V any] struct {
	router *Router
	kc     Codec[K]
	vc     Codec[V]
	prod   *client.Producer
}

// New returns a typed table over topic. The topic must have been created
// with TopicSpec.Table (reads fail with "table not served" otherwise).
func New[K, V any](c *client.Client, topic string, kc Codec[K], vc Codec[V]) *Table[K, V] {
	return &Table[K, V]{
		router: NewRouter(c, topic),
		kc:     kc,
		vc:     vc,
		// Acks=all so an acked Put survives leader failover — the
		// materialized view must never lose an acknowledged update.
		prod: client.NewProducer(c, client.ProducerConfig{Acks: client.AcksAll}),
	}
}

// Router returns the underlying untyped router.
func (t *Table[K, V]) Router() *Router { return t.router }

// Get returns the current value for key, accepting any staleness.
func (t *Table[K, V]) Get(key K) (V, bool, error) {
	return t.GetWithin(key, -1)
}

// GetWithin returns the current value for key, requiring the serving view
// to lag the high watermark by at most maxLagOffsets (0 = fully caught up).
func (t *Table[K, V]) GetWithin(key K, maxLagOffsets int64) (V, bool, error) {
	var zero V
	kb, err := t.kc.Encode(key)
	if err != nil {
		return zero, false, fmt.Errorf("table: encode key: %w", err)
	}
	res, err := t.router.Get(kb, maxLagOffsets)
	if err != nil || !res.Found {
		return zero, false, err
	}
	v, err := t.vc.Decode(res.Value)
	if err != nil {
		return zero, false, fmt.Errorf("table: decode value: %w", err)
	}
	return v, true, nil
}

// Put upserts key to value. The write is asynchronous and batched; Flush
// forces delivery, and an acked write is readable via GetWithin(key, 0).
func (t *Table[K, V]) Put(key K, value V) error {
	kb, err := t.kc.Encode(key)
	if err != nil {
		return fmt.Errorf("table: encode key: %w", err)
	}
	vb, err := t.vc.Encode(value)
	if err != nil {
		return fmt.Errorf("table: encode value: %w", err)
	}
	if vb == nil {
		vb = []byte{} // nil is the tombstone encoding; keep empty values distinct
	}
	return t.prod.Send(client.Message{Topic: t.router.Topic(), Key: kb, Value: vb})
}

// Delete removes key by producing a tombstone (nil value), the compacted
// log's deletion marker.
func (t *Table[K, V]) Delete(key K) error {
	kb, err := t.kc.Encode(key)
	if err != nil {
		return fmt.Errorf("table: encode key: %w", err)
	}
	return t.prod.Send(client.Message{Topic: t.router.Topic(), Key: kb, Value: nil})
}

// Flush delivers all buffered writes and waits for their acks.
func (t *Table[K, V]) Flush() error { return t.prod.Flush() }

// Status reports every partition's materializer freshness.
func (t *Table[K, V]) Status() ([]client.TableStatusPartition, error) {
	return t.router.Status()
}

// Close flushes and releases the writer. Reads remain usable (they share
// the Client, not the producer).
func (t *Table[K, V]) Close() error { return t.prod.Close() }

package compact

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/storage/log"
	"repro/internal/storage/record"
)

// TestQuickCompactionPreservesLatestState property-checks the core
// compaction invariant over random keyed workloads: replaying the log
// after compaction yields exactly the same final key->value state as
// before, and the log end offset never moves.
func TestQuickCompactionPreservesLatestState(t *testing.T) {
	f := func(seed int64, opsRaw uint16) bool {
		ops := int(opsRaw%2000) + 50
		dir, err := os.MkdirTemp("", "cprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := log.Open(dir, log.Config{SegmentBytes: 2 << 10, Compacted: true})
		if err != nil {
			return false
		}
		defer l.Close()

		rng := rand.New(rand.NewSource(seed))
		keys := rng.Intn(30) + 1
		for i := 0; i < ops; i++ {
			key := []byte(fmt.Sprintf("k%d", rng.Intn(keys)))
			var value []byte
			if rng.Intn(10) != 0 { // 10% tombstones
				value = []byte(fmt.Sprintf("v%d", i))
			}
			if _, err := l.Append([]record.Record{{Timestamp: 1, Key: key, Value: value}}); err != nil {
				return false
			}
		}
		replay := func() (map[string]string, bool) {
			state := make(map[string]string)
			off := l.StartOffset()
			for {
				data, err := l.Read(off, 1<<20)
				if err != nil {
					return nil, false
				}
				if len(data) == 0 {
					return state, true
				}
				record.ScanRecords(data, func(r record.Record) error {
					if r.Offset < off {
						return nil
					}
					off = r.Offset + 1
					if r.Value == nil {
						delete(state, string(r.Key))
					} else {
						state[string(r.Key)] = string(r.Value)
					}
					return nil
				})
			}
		}
		before, ok := replay()
		if !ok {
			return false
		}
		end := l.NextOffset()
		if _, err := Compact(l); err != nil {
			return false
		}
		after, ok := replay()
		if !ok {
			return false
		}
		if l.NextOffset() != end {
			return false
		}
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		// A second pass is a fixed point for state.
		if _, err := Compact(l); err != nil {
			return false
		}
		again, ok := replay()
		if !ok || len(again) != len(after) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionUnderConcurrentAppends runs the cleaner while a writer
// keeps appending: no error, no state corruption.
func TestCompactionUnderConcurrentAppends(t *testing.T) {
	l, err := log.Open(t.TempDir(), log.Config{SegmentBytes: 2 << 10, Compacted: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.Append([]record.Record{{
				Timestamp: 1,
				Key:       []byte(fmt.Sprintf("k%d", i%16)),
				Value:     []byte(fmt.Sprintf("v%d", i)),
			}})
			i++
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := Compact(l); err != nil {
			t.Fatalf("compact during appends: %v", err)
		}
	}
	close(stop)
	<-done
	// Log is still consistent: monotone offsets on full replay.
	off := l.StartOffset()
	for {
		data, err := l.Read(off, 1<<20)
		if err != nil {
			t.Fatalf("read after concurrent compaction: %v", err)
		}
		if len(data) == 0 {
			break
		}
		err = record.ScanRecords(data, func(r record.Record) error {
			if r.Offset >= off {
				off = r.Offset + 1
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

package compact

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/storage/log"
	"repro/internal/storage/record"
)

func openLog(t *testing.T, cfg log.Config) *log.Log {
	t.Helper()
	cfg.Compacted = true
	l, err := log.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func put(t *testing.T, l *log.Log, key, value string) {
	t.Helper()
	var v []byte
	if value != "" {
		v = []byte(value)
	}
	_, err := l.Append([]record.Record{{Timestamp: time.Now().UnixMilli(), Key: []byte(key), Value: v}})
	if err != nil {
		t.Fatal(err)
	}
}

// latestPerKey replays the log and returns the final value per key, with
// deleted keys absent.
func latestPerKey(t *testing.T, l *log.Log) map[string]string {
	t.Helper()
	state := make(map[string]string)
	off := l.StartOffset()
	for {
		data, err := l.Read(off, 1<<20)
		if err != nil {
			t.Fatalf("Read(%d): %v", off, err)
		}
		if len(data) == 0 {
			return state
		}
		record.ScanRecords(data, func(r record.Record) error {
			if r.Offset < off {
				return nil
			}
			if r.Value == nil {
				delete(state, string(r.Key))
			} else {
				state[string(r.Key)] = string(r.Value)
			}
			off = r.Offset + 1
			return nil
		})
	}
}

func countRecords(t *testing.T, l *log.Log) int {
	t.Helper()
	n := 0
	off := l.StartOffset()
	for {
		data, err := l.Read(off, 1<<20)
		if err != nil || len(data) == 0 {
			return n
		}
		record.ScanRecords(data, func(r record.Record) error {
			if r.Offset >= off {
				n++
				off = r.Offset + 1
			}
			return nil
		})
	}
}

func TestCompactKeepsLatestPerKey(t *testing.T) {
	l := openLog(t, log.Config{SegmentBytes: 512})
	// Write 200 updates over 10 keys -> many segments.
	for i := 0; i < 200; i++ {
		put(t, l, fmt.Sprintf("user-%d", i%10), fmt.Sprintf("profile-v%d", i))
	}
	before := latestPerKey(t, l)
	recordsBefore := countRecords(t, l)

	stats, err := Compact(l)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if stats.RecordsAfter >= stats.RecordsBefore {
		t.Fatalf("no shrink: %+v", stats)
	}
	after := latestPerKey(t, l)
	if len(after) != len(before) {
		t.Fatalf("key count changed: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Errorf("key %s: %q -> %q", k, v, after[k])
		}
	}
	if got := countRecords(t, l); got >= recordsBefore {
		t.Fatalf("records %d -> %d: no reduction", recordsBefore, got)
	}
	// The log end offset is unchanged: compaction never loses position.
	if got := countRecords(t, l); got < 10 {
		t.Fatalf("fewer records than keys: %d", got)
	}
}

func TestCompactPreservesOffsets(t *testing.T) {
	l := openLog(t, log.Config{SegmentBytes: 256})
	for i := 0; i < 60; i++ {
		put(t, l, fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))
	}
	end := l.NextOffset()
	if _, err := Compact(l); err != nil {
		t.Fatal(err)
	}
	if l.NextOffset() != end {
		t.Fatalf("log end moved: %d -> %d", end, l.NextOffset())
	}
	// Surviving records keep their original (pre-compaction) offsets: the
	// newest update for each key written into an inactive segment.
	off := l.StartOffset()
	data, err := l.Read(off, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	err = record.ScanRecords(data, func(r record.Record) error {
		if r.Offset < off {
			t.Errorf("offset went backwards: %d < %d", r.Offset, off)
		}
		off = r.Offset + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompactRetainsLatestTombstone(t *testing.T) {
	l := openLog(t, log.Config{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		put(t, l, "victim", fmt.Sprintf("v%d", i))
	}
	put(t, l, "victim", "") // tombstone
	// Push the tombstone out of the active segment.
	for i := 0; i < 30; i++ {
		put(t, l, "other", fmt.Sprintf("v%d", i))
	}
	if _, err := Compact(l); err != nil {
		t.Fatal(err)
	}
	state := latestPerKey(t, l)
	if _, ok := state["victim"]; ok {
		t.Fatalf("victim should be deleted, state = %v", state)
	}
	// The tombstone itself must still be present so that replaying
	// consumers observe the deletion.
	sawTombstone := false
	off := l.StartOffset()
	for {
		data, err := l.Read(off, 1<<20)
		if err != nil || len(data) == 0 {
			break
		}
		record.ScanRecords(data, func(r record.Record) error {
			if r.Offset >= off {
				if string(r.Key) == "victim" && r.Value == nil {
					sawTombstone = true
				}
				off = r.Offset + 1
			}
			return nil
		})
	}
	if !sawTombstone {
		t.Fatal("latest tombstone was dropped by compaction")
	}
}

func TestCompactKeepsUnkeyedRecords(t *testing.T) {
	l := openLog(t, log.Config{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		if _, err := l.Append([]record.Record{{Timestamp: 1, Value: []byte(fmt.Sprintf("event-%d", i))}}); err != nil {
			t.Fatal(err)
		}
	}
	before := countRecords(t, l)
	if _, err := Compact(l); err != nil {
		t.Fatal(err)
	}
	if got := countRecords(t, l); got != before {
		t.Fatalf("unkeyed records dropped: %d -> %d", before, got)
	}
}

func TestCompactSingleSegmentNoop(t *testing.T) {
	l := openLog(t, log.Config{})
	put(t, l, "a", "1")
	stats, err := Compact(l)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsScanned != 0 {
		t.Fatalf("stats = %+v, want nothing scanned", stats)
	}
}

func TestCompactIdempotent(t *testing.T) {
	l := openLog(t, log.Config{SegmentBytes: 512})
	for i := 0; i < 200; i++ {
		put(t, l, fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}
	if _, err := Compact(l); err != nil {
		t.Fatal(err)
	}
	state1 := latestPerKey(t, l)
	stats2, err := Compact(l)
	if err != nil {
		t.Fatal(err)
	}
	state2 := latestPerKey(t, l)
	if len(state1) != len(state2) {
		t.Fatalf("second compaction changed state: %v vs %v", state1, state2)
	}
	if stats2.RecordsAfter != stats2.RecordsBefore {
		t.Fatalf("second pass should drop nothing new: %+v", stats2)
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := log.Config{SegmentBytes: 512, Compacted: true}
	l, err := log.Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		l.Append([]record.Record{{Timestamp: 1, Key: []byte(fmt.Sprintf("k%d", i%5)), Value: []byte(fmt.Sprintf("v%d", i))}})
	}
	if _, err := Compact(l); err != nil {
		t.Fatal(err)
	}
	end := l.NextOffset()
	l.Close()

	l2, err := log.Open(dir, cfg)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer l2.Close()
	if l2.NextOffset() != end {
		t.Fatalf("log end after reopen = %d, want %d", l2.NextOffset(), end)
	}
	state := latestPerKey(t, l2)
	if len(state) != 5 {
		t.Fatalf("state = %v, want 5 keys", state)
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, ok := state[k]; !ok {
			t.Errorf("missing key %s", k)
		}
	}
}

func TestStatsRatio(t *testing.T) {
	s := Stats{BytesBefore: 100, BytesAfter: 25}
	if got := s.Ratio(); got != 0.25 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := (Stats{}).Ratio(); got != 1 {
		t.Fatalf("empty Ratio = %v, want 1", got)
	}
}

func TestCleanerCompactsPeriodically(t *testing.T) {
	l := openLog(t, log.Config{SegmentBytes: 512})
	for i := 0; i < 200; i++ {
		put(t, l, fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}
	before := countRecords(t, l)
	cl := NewCleaner(10*time.Millisecond, func() []*log.Log { return []*log.Log{l} })
	cl.Start()
	deadline := time.Now().Add(2 * time.Second)
	for countRecords(t, l) >= before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cl.Stop()
	if got := countRecords(t, l); got >= before {
		t.Fatalf("cleaner never compacted: %d records", got)
	}
}

// Package compact implements key-based log compaction (paper §4.1): the
// inactive segments of a log are rewritten keeping only the most recent
// record for each key, preserving surviving records' original offsets.
// Compaction shrinks changelogs that back processing-layer state, which both
// reduces storage and speeds up state recovery after failures.
package compact

import (
	"fmt"
	"time"

	"repro/internal/storage/log"
	"repro/internal/storage/record"
)

// Stats summarises one compaction pass.
type Stats struct {
	SegmentsScanned int
	RecordsBefore   int
	RecordsAfter    int
	BytesBefore     int64
	BytesAfter      int64
}

// Ratio returns BytesAfter / BytesBefore, or 1 when nothing was scanned.
func (s Stats) Ratio() float64 {
	if s.BytesBefore == 0 {
		return 1
	}
	return float64(s.BytesAfter) / float64(s.BytesBefore)
}

// Compact performs one compaction pass over l. Records without keys are
// always retained (compaction is meaningful only for keyed data). The most
// recent record for each key — judged over the entire log, including the
// active segment — survives; older versions in inactive segments are
// dropped. Tombstones (nil values) that are the latest for their key are
// retained so that replicating consumers observe the deletion.
func Compact(l *log.Log) (Stats, error) {
	var stats Stats
	segs := l.Segments()
	if len(segs) < 2 {
		return stats, nil // only the active segment: nothing compactable
	}
	inactive := segs[:len(segs)-1]

	// Pass 1: newest offset per key across the whole log.
	latest := make(map[string]int64)
	for _, si := range segs {
		data, err := l.ReadSegment(si.BaseOffset)
		if err != nil {
			return stats, err
		}
		err = record.ScanRecords(data, func(r record.Record) error {
			if r.Key != nil {
				latest[string(r.Key)] = r.Offset
			}
			return nil
		})
		if err != nil {
			return stats, fmt.Errorf("compact: scan segment %d: %w", si.BaseOffset, err)
		}
	}

	// Pass 2: rewrite inactive segments keeping only surviving records.
	segmentBytes := l.Config().SegmentBytes
	var (
		oldBases    []int64
		newSegments [][]byte
		current     []byte
		batchBuf    []record.Record
	)
	flushBatch := func() {
		if len(batchBuf) == 0 {
			return
		}
		enc := record.EncodeBatchKeepOffsets(batchBuf)
		if int64(len(current)+len(enc)) > segmentBytes && len(current) > 0 {
			newSegments = append(newSegments, current)
			current = nil
		}
		current = append(current, enc...)
		batchBuf = batchBuf[:0]
	}
	for _, si := range inactive {
		stats.SegmentsScanned++
		stats.BytesBefore += si.Size
		oldBases = append(oldBases, si.BaseOffset)
		data, err := l.ReadSegment(si.BaseOffset)
		if err != nil {
			return stats, err
		}
		err = record.ScanRecords(data, func(r record.Record) error {
			stats.RecordsBefore++
			keep := r.Key == nil || latest[string(r.Key)] == r.Offset
			if keep {
				stats.RecordsAfter++
				batchBuf = append(batchBuf, r)
				if len(batchBuf) >= 512 {
					flushBatch()
				}
			}
			return nil
		})
		if err != nil {
			return stats, fmt.Errorf("compact: rewrite segment %d: %w", si.BaseOffset, err)
		}
		flushBatch()
	}
	if len(current) > 0 {
		newSegments = append(newSegments, current)
	}
	for _, s := range newSegments {
		stats.BytesAfter += int64(len(s))
	}
	if err := l.ReplaceSegments(oldBases, newSegments); err != nil {
		return stats, err
	}
	return stats, nil
}

// Cleaner periodically compacts a set of logs in the background, the way
// the paper describes asynchronous scanning of the log (§4.1).
type Cleaner struct {
	interval time.Duration
	logs     func() []*log.Log
	stop     chan struct{}
	done     chan struct{}
}

// NewCleaner creates a cleaner that compacts every log returned by logs()
// each interval. Start must be called to begin cleaning.
func NewCleaner(interval time.Duration, logs func() []*log.Log) *Cleaner {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Cleaner{
		interval: interval,
		logs:     logs,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background cleaning loop.
func (c *Cleaner) Start() {
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-ticker.C:
				for _, l := range c.logs() {
					if l.Config().Compacted {
						_, _ = Compact(l) // best effort; next tick retries
					}
				}
			}
		}
	}()
}

// Stop halts the cleaner and waits for the loop to exit.
func (c *Cleaner) Stop() {
	close(c.stop)
	<-c.done
}

package cache

import (
	"testing"
	"time"
)

// fixedClock is an adjustable test clock.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time { return c.t }

func newTestCache(capacity int64) (*Cache, *fixedClock) {
	clk := &fixedClock{t: time.Unix(0, 0)}
	c := New(Config{
		PageSize:           100,
		CapacityBytes:      capacity,
		DiskPenaltyPerPage: time.Millisecond,
		FlushDelay:         time.Second,
		Now:                clk.now,
	})
	return c, clk
}

func TestWriteThenReadHits(t *testing.T) {
	c, _ := newTestCache(1000) // 10 pages
	c.OnWrite(0, 0, 300)       // pages 0,1,2
	penalty := c.OnRead(0, 0, 300)
	if penalty != 0 {
		t.Fatalf("penalty = %v, want 0 for resident pages", penalty)
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestColdReadPaysPenalty(t *testing.T) {
	c, _ := newTestCache(1000)
	penalty := c.OnRead(0, 0, 250) // pages 0,1,2 never written
	if penalty != 3*time.Millisecond {
		t.Fatalf("penalty = %v, want 3ms", penalty)
	}
	// Second read of the same range is now resident.
	if p := c.OnRead(0, 0, 250); p != 0 {
		t.Fatalf("second read penalty = %v, want 0", p)
	}
}

func TestLRUEvictionOldFirst(t *testing.T) {
	c, clk := newTestCache(500) // 5 pages
	clk.t = clk.t.Add(10 * time.Second)
	// Write 10 pages; dirty pages flush after 1s, so advance the clock to
	// make them all clean and evictable.
	for i := int64(0); i < 10; i++ {
		c.OnWrite(0, i*100, 100)
		clk.t = clk.t.Add(2 * time.Second)
	}
	s := c.Stats()
	if s.ResidentPages != 5 {
		t.Fatalf("resident = %d, want 5", s.ResidentPages)
	}
	// The head of the log (most recent pages 5..9) is resident.
	if p := c.OnRead(0, 900, 100); p != 0 {
		t.Fatalf("head read penalty = %v, want 0 (anti-caching)", p)
	}
	// The cold tail (pages 0..4) was evicted.
	if p := c.OnRead(0, 0, 100); p == 0 {
		t.Fatal("cold tail read should pay a disk penalty")
	}
}

func TestDirtyPagesResistEviction(t *testing.T) {
	c, clk := newTestCache(300) // 3 pages
	// Write 3 pages at t=0; all dirty until t=1s.
	c.OnWrite(0, 0, 300)
	// A read of 2 new pages at t=0 must evict, but pages 0-2 are dirty:
	// eviction falls back to forced writeback.
	_ = c.OnRead(1, 0, 200)
	s := c.Stats()
	if s.ForcedWritebacks == 0 {
		t.Fatalf("expected forced writebacks, stats %+v", s)
	}
	// After the flush delay, eviction is clean.
	clk.t = clk.t.Add(2 * time.Second)
	_ = c.OnRead(2, 0, 200)
	s2 := c.Stats()
	if s2.ForcedWritebacks != s.ForcedWritebacks {
		t.Fatalf("clean pages should evict without writeback: %+v", s2)
	}
}

func TestSequentialScanLargerThanCache(t *testing.T) {
	c, clk := newTestCache(500)
	clk.t = clk.t.Add(time.Hour)
	// Cold sequential scan over 100 pages: every page misses exactly once.
	for i := int64(0); i < 100; i++ {
		c.OnRead(0, i*100, 100)
	}
	s := c.Stats()
	if s.Misses != 100 || s.Hits != 0 {
		t.Fatalf("stats = %+v, want 100 misses", s)
	}
	if s.ResidentPages != 5 {
		t.Fatalf("resident = %d, want capacity 5", s.ResidentPages)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats should have ratio 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRatio(); got != 0.75 {
		t.Fatalf("ratio = %v, want 0.75", got)
	}
}

func TestResetKeepsResidency(t *testing.T) {
	c, _ := newTestCache(1000)
	c.OnWrite(0, 0, 500)
	c.Reset()
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("counters not reset: %+v", s)
	}
	if s.ResidentPages != 5 {
		t.Fatalf("residency lost on reset: %+v", s)
	}
	if p := c.OnRead(0, 0, 500); p != 0 {
		t.Fatal("previously written pages should still be resident")
	}
}

func TestPageRangeInclusive(t *testing.T) {
	c, _ := newTestCache(10000)
	// A 1-byte read straddling nothing: exactly one page touched.
	c.OnRead(0, 150, 1)
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", s)
	}
	// A read straddling a page boundary touches two pages.
	c.OnRead(0, 295, 10)
	if s := c.Stats(); s.Misses != 3 {
		t.Fatalf("stats = %+v, want 3 misses total", s)
	}
}

func TestZeroLengthAccessTouchesOnePage(t *testing.T) {
	c, _ := newTestCache(10000)
	c.OnRead(0, 0, 0)
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDistinctFilesDistinctPages(t *testing.T) {
	c, _ := newTestCache(10000)
	c.OnWrite(1, 0, 100)
	if p := c.OnRead(2, 0, 100); p == 0 {
		t.Fatal("file 2 page 0 should not be resident from file 1 write")
	}
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	c.OnWrite(0, 0, 4096)
	if p := c.OnRead(0, 0, 4096); p != 0 {
		t.Fatalf("default config read-after-write penalty = %v", p)
	}
}

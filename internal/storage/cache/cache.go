// Package cache models OS file-system page caching for the messaging
// layer's "anti-caching" behaviour (paper §4.1): freshly appended log pages
// stay RAM-resident and are flushed/evicted as they age, so reads near the
// head of the log are memory-speed while cold historical reads pay a disk
// penalty. The model tracks page residency with an LRU, distinguishes dirty
// (not yet flushed) pages that cannot be evicted until the flush-behind
// delay elapses, and reports a simulated disk penalty per missed page so
// experiments are deterministic on any machine.
package cache

import (
	"sync"
	"time"
)

// Config parameterises the page-cache model.
type Config struct {
	// PageSize is the tracking granularity in bytes.
	PageSize int64
	// CapacityBytes bounds resident data; beyond it, LRU eviction runs.
	CapacityBytes int64
	// DiskPenaltyPerPage is the simulated extra latency for reading one
	// non-resident page from disk.
	DiskPenaltyPerPage time.Duration
	// FlushDelay is the flush-behind window: a dirty page becomes clean
	// (evictable) this long after it was written, mimicking the
	// configurable OS write-back timeout the paper relies on.
	FlushDelay time.Duration
	// Now is an injectable clock for tests; nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.CapacityBytes == 0 {
		c.CapacityBytes = 64 << 20
	}
	if c.DiskPenaltyPerPage == 0 {
		c.DiskPenaltyPerPage = 50 * time.Microsecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// pageKey identifies one page of one file (segment).
type pageKey struct {
	file int64
	page int64
}

// page is an LRU node.
type page struct {
	key        pageKey
	dirtyUntil time.Time
	prev, next *page
}

// Stats are cumulative counters for the cache model.
type Stats struct {
	Hits             int64
	Misses           int64
	Evictions        int64
	ForcedWritebacks int64 // dirty pages evicted before their flush delay
	ResidentPages    int64
	ResidentBytes    int64
}

// Cache is the page-residency model. All methods are safe for concurrent
// use.
type Cache struct {
	cfg Config

	mu    sync.Mutex
	pages map[pageKey]*page
	head  *page // most recently used
	tail  *page // least recently used
	stats Stats
}

// New returns a cache model with the given configuration.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	return &Cache{cfg: cfg, pages: make(map[pageKey]*page)}
}

// capacityPages returns the page capacity.
func (c *Cache) capacityPages() int64 {
	n := c.cfg.CapacityBytes / c.cfg.PageSize
	if n < 1 {
		n = 1
	}
	return n
}

func (c *Cache) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		c.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		c.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (c *Cache) pushFront(p *page) {
	p.next = c.head
	p.prev = nil
	if c.head != nil {
		c.head.prev = p
	}
	c.head = p
	if c.tail == nil {
		c.tail = p
	}
}

// touch inserts or refreshes a page, returning whether it was resident.
func (c *Cache) touch(k pageKey, dirtyUntil time.Time) bool {
	if p, ok := c.pages[k]; ok {
		c.unlink(p)
		c.pushFront(p)
		if dirtyUntil.After(p.dirtyUntil) {
			p.dirtyUntil = dirtyUntil
		}
		return true
	}
	p := &page{key: k, dirtyUntil: dirtyUntil}
	c.pages[k] = p
	c.pushFront(p)
	c.evictLocked()
	return false
}

// evictLocked removes LRU pages until within capacity, preferring clean
// pages; a dirty LRU page is force-written-back when nothing clean remains
// behind it.
func (c *Cache) evictLocked() {
	now := c.cfg.Now()
	capacity := c.capacityPages()
	for int64(len(c.pages)) > capacity {
		// Walk from the tail looking for a clean page, never evicting the
		// most-recently-used page (the one just touched).
		victim := c.tail
		for victim != nil && victim != c.head && victim.dirtyUntil.After(now) {
			victim = victim.prev
		}
		forced := false
		if victim == nil || victim == c.head {
			victim = c.tail // everything dirty: force writeback of LRU
			forced = true
		}
		if victim == nil || victim == c.head {
			return
		}
		c.unlink(victim)
		delete(c.pages, victim.key)
		c.stats.Evictions++
		if forced {
			c.stats.ForcedWritebacks++
		}
	}
}

// pageRange converts a byte range to inclusive page indexes.
func (c *Cache) pageRange(off, n int64) (int64, int64) {
	if n <= 0 {
		n = 1
	}
	first := off / c.cfg.PageSize
	last := (off + n - 1) / c.cfg.PageSize
	return first, last
}

// OnWrite marks the written byte range resident and dirty. Appends keep the
// head of the log in RAM by default — the anti-caching property.
func (c *Cache) OnWrite(file, off, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dirtyUntil := c.cfg.Now().Add(c.cfg.FlushDelay)
	first, last := c.pageRange(off, n)
	for p := first; p <= last; p++ {
		c.touch(pageKey{file, p}, dirtyUntil)
	}
}

// OnRead accounts a read of the byte range, returning the simulated disk
// penalty for non-resident pages. Read pages become resident (the OS loads
// and then prefetches them).
func (c *Cache) OnRead(file, off, n int64) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	first, last := c.pageRange(off, n)
	var misses int64
	for p := first; p <= last; p++ {
		if c.touch(pageKey{file, p}, time.Time{}) {
			c.stats.Hits++
		} else {
			c.stats.Misses++
			misses++
		}
	}
	return time.Duration(misses) * c.cfg.DiskPenaltyPerPage
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ResidentPages = int64(len(c.pages))
	s.ResidentBytes = s.ResidentPages * c.cfg.PageSize
	return s
}

// HitRatio returns hits / (hits+misses), or 0 when no reads happened.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Reset clears counters but keeps residency state, so experiments can warm
// the cache and then measure.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

package record

import (
	"fmt"
	"testing"
)

// makeRecords builds n records with small keys and payload-byte values.
func makeRecords(n, valueBytes int) []Record {
	value := make([]byte, valueBytes)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Timestamp: int64(1000 + i),
			Key:       []byte(fmt.Sprintf("key-%d", i%64)),
			Value:     value,
		}
	}
	return recs
}

func BenchmarkEncodeBatch(b *testing.B) {
	recs := makeRecords(64, 512)
	b.ReportAllocs()
	b.SetBytes(64 * 512)
	for i := 0; i < b.N; i++ {
		EncodeBatch(0, recs)
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeekBatchInfo(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PeekBatchInfo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanRecords(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		n := 0
		ScanRecords(buf, func(Record) error {
			n++
			return nil
		})
		if n != 64 {
			b.Fatal("wrong count")
		}
	}
}

package record

import (
	"fmt"
	"testing"
)

// makeRecords builds n records with small keys and payload-byte values.
func makeRecords(n, valueBytes int) []Record {
	value := make([]byte, valueBytes)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Timestamp: int64(1000 + i),
			Key:       []byte(fmt.Sprintf("key-%d", i%64)),
			Value:     value,
		}
	}
	return recs
}

func BenchmarkEncodeBatch(b *testing.B) {
	recs := makeRecords(64, 512)
	b.ReportAllocs()
	b.SetBytes(64 * 512)
	for i := 0; i < b.N; i++ {
		EncodeBatch(0, recs)
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeekBatchInfo(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PeekBatchInfo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanRecords(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		n := 0
		ScanRecords(buf, func(Record) error {
			n++
			return nil
		})
		if n != 64 {
			b.Fatal("wrong count")
		}
	}
}

func BenchmarkEncodeBatchInto(b *testing.B) {
	recs := makeRecords(64, 512)
	buf := make([]byte, 0, 64<<10)
	b.ReportAllocs()
	b.SetBytes(64 * 512)
	for i := 0; i < b.N; i++ {
		buf = EncodeBatchInto(buf[:0], 0, recs)
	}
}

func BenchmarkCheckBatch(b *testing.B) {
	buf := EncodeBatch(0, makeRecords(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := CheckBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCompressible builds records whose values compress well (the E16
// payload shape).
func benchCompressible(n, valueBytes int) []Record {
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = "timestamp=2015-01-04 level=INFO service=liquid msg=ok "[i%52]
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Timestamp: int64(1000 + i), Value: value}
	}
	return recs
}

func BenchmarkCompressGzip(b *testing.B) {
	buf := EncodeBatch(0, benchCompressible(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(buf, CodecGzip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressFlate(b *testing.B) {
	buf := EncodeBatch(0, benchCompressible(64, 512))
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(buf, CodecFlate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCompressedBatch(b *testing.B) {
	plain := EncodeBatch(0, benchCompressible(64, 512))
	sealed, err := Compress(plain, CodecFlate)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(plain)))
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBatch(sealed); err != nil {
			b.Fatal(err)
		}
	}
}

package record

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{Timestamp: 1000, Key: []byte("k1"), Value: []byte("v1")},
		{Timestamp: 1005, Key: nil, Value: []byte("no key")},
		{Timestamp: 990, Key: []byte("k2"), Value: nil}, // tombstone
		{Timestamp: 1010, Key: []byte("k3"), Value: []byte("v3"),
			Headers: []Header{{Key: "lineage", Value: []byte("job-7")}, {Key: "v", Value: nil}}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	buf := EncodeBatch(42, sampleRecords())
	b, n, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	if b.BaseOffset != 42 {
		t.Fatalf("BaseOffset = %d, want 42", b.BaseOffset)
	}
	if len(b.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(b.Records))
	}
	for i, r := range b.Records {
		if r.Offset != 42+int64(i) {
			t.Errorf("record %d offset = %d, want %d", i, r.Offset, 42+i)
		}
	}
	want := sampleRecords()
	for i := range want {
		got := b.Records[i]
		if !bytes.Equal(got.Key, want[i].Key) || !bytes.Equal(got.Value, want[i].Value) {
			t.Errorf("record %d = %v, want key=%q value=%q", i, got, want[i].Key, want[i].Value)
		}
		if got.Timestamp != want[i].Timestamp {
			t.Errorf("record %d timestamp = %d, want %d", i, got.Timestamp, want[i].Timestamp)
		}
	}
	// Headers survive.
	h := b.Records[3].Headers
	if len(h) != 2 || h[0].Key != "lineage" || string(h[0].Value) != "job-7" {
		t.Fatalf("headers = %v", h)
	}
}

func TestNilVsEmptyPreserved(t *testing.T) {
	recs := []Record{
		{Key: nil, Value: []byte{}},
		{Key: []byte{}, Value: nil},
	}
	buf := EncodeBatch(0, recs)
	b, _, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if b.Records[0].Key != nil {
		t.Error("nil key decoded as non-nil")
	}
	if b.Records[0].Value == nil {
		t.Error("empty value decoded as nil")
	}
	if b.Records[1].Value != nil {
		t.Error("nil value (tombstone) decoded as non-nil")
	}
	if b.Records[1].Key == nil {
		t.Error("empty key decoded as nil")
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	buf := EncodeBatch(0, sampleRecords())
	for _, pos := range []int{crcDataOffset, len(buf) / 2, len(buf) - 1} {
		cp := append([]byte(nil), buf...)
		cp[pos] ^= 0xFF
		if _, _, err := DecodeBatch(cp); err != ErrCorrupt {
			t.Errorf("flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
}

func TestShortBuffer(t *testing.T) {
	buf := EncodeBatch(0, sampleRecords())
	for _, n := range []int{0, 4, 11, len(buf) - 1} {
		if _, _, err := DecodeBatch(buf[:n]); err != ErrShort {
			t.Errorf("len %d: err = %v, want ErrShort", n, err)
		}
	}
}

func TestPeekBatchInfo(t *testing.T) {
	recs := sampleRecords()
	buf := EncodeBatch(100, recs)
	info, err := PeekBatchInfo(buf)
	if err != nil {
		t.Fatalf("PeekBatchInfo: %v", err)
	}
	if info.BaseOffset != 100 || info.LastOffset != 103 {
		t.Fatalf("offsets = [%d, %d], want [100, 103]", info.BaseOffset, info.LastOffset)
	}
	if info.RecordCount != 4 {
		t.Fatalf("RecordCount = %d, want 4", info.RecordCount)
	}
	if info.MaxTimestamp != 1010 {
		t.Fatalf("MaxTimestamp = %d, want 1010", info.MaxTimestamp)
	}
	if info.Length != len(buf) {
		t.Fatalf("Length = %d, want %d", info.Length, len(buf))
	}
}

// TestStampProducerRoundTrip: stamping a sealed batch sets the producer
// fields without touching the CRC'd payload (the fields live beside the
// base offset, outside the checksum), so a batch can be stamped after
// encoding — and after compression — and still validate.
func TestStampProducerRoundTrip(t *testing.T) {
	buf := EncodeBatch(50, sampleRecords())
	info, err := PeekBatchInfo(buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Idempotent() {
		t.Fatal("unstamped batch claims a producer identity")
	}
	if err := StampProducer(buf, 42, 3, 1000); err != nil {
		t.Fatalf("StampProducer: %v", err)
	}
	info, err = PeekBatchInfo(buf)
	if err != nil {
		t.Fatalf("PeekBatchInfo after stamp: %v", err)
	}
	if !info.Idempotent() || info.ProducerID != 42 || info.ProducerEpoch != 3 || info.BaseSequence != 1000 {
		t.Fatalf("stamp round trip: %+v", info)
	}
	// Sequences advance record-by-record with offsets.
	if got := info.LastSequence(); got != 1003 {
		t.Fatalf("LastSequence = %d, want 1003", got)
	}
	// The CRC still validates: the stamp is outside the checksummed region.
	if _, _, err := DecodeBatch(buf); err != nil {
		t.Fatalf("DecodeBatch after stamp: %v", err)
	}
	// Restamping the base offset (what AppendSealed does) keeps the stamps.
	if err := RestampBase(buf, 90); err != nil {
		t.Fatal(err)
	}
	info, _ = PeekBatchInfo(buf)
	if info.BaseOffset != 90 || info.ProducerID != 42 || info.BaseSequence != 1000 {
		t.Fatalf("restamped batch lost producer fields: %+v", info)
	}
}

// TestStampProducerSurvivesCompression: stamps applied to an uncompressed
// batch ride through Compress (the header prefix is copied) and stamps
// applied directly to a compressed batch dedup-validate too — the broker
// never inflates the blob to read them.
func TestStampProducerSurvivesCompression(t *testing.T) {
	plain := EncodeBatch(0, sampleRecords())
	if err := StampProducer(plain, 7, 1, 55); err != nil {
		t.Fatal(err)
	}
	sealed, err := Compress(plain, CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	info, err := PeekBatchInfo(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if info.ProducerID != 7 || info.ProducerEpoch != 1 || info.BaseSequence != 55 {
		t.Fatalf("compressed batch lost stamps: %+v", info)
	}
	// Stamping the sealed blob in place — the client compresses first,
	// stamps last — works without recompressing.
	if err := StampProducer(sealed, 8, 2, 99); err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(sealed)
	if err != nil {
		t.Fatalf("Decompress after stamp: %v", err)
	}
	info, err = PeekBatchInfo(back)
	if err != nil {
		t.Fatal(err)
	}
	if info.ProducerID != 8 || info.ProducerEpoch != 2 || info.BaseSequence != 99 {
		t.Fatalf("stamps did not survive decompress: %+v", info)
	}
	if info.RecordCount != 4 {
		t.Fatalf("RecordCount = %d, want 4", info.RecordCount)
	}
}

// TestPeekBatchInfoRejectsMixedSentinels: the producer fields sit outside
// the CRC, so PeekBatchInfo applies structural checks of its own — a batch
// carrying a real producer id with sentinel epoch/sequence (or vice versa)
// is corrupt, never a half-tracked dedup entry.
func TestPeekBatchInfoRejectsMixedSentinels(t *testing.T) {
	mk := func(pid int64, epoch int32, seq int64) []byte {
		buf := EncodeBatch(0, sampleRecords())
		if err := StampProducer(buf, pid, epoch, seq); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	bad := [][]byte{
		mk(5, NoProducerEpoch, 0), // id without epoch
		mk(5, 0, NoSequence),      // id without sequence
		mk(NoProducerID, 3, 0),    // epoch without id
		mk(NoProducerID, -5, 0),   // epoch below the sentinel
		mk(-7, 0, 0),              // id below the sentinel
		mk(5, 0, -9),              // sequence below the sentinel
	}
	for i, buf := range bad {
		if _, err := PeekBatchInfo(buf); err == nil {
			t.Errorf("case %d: mixed/invalid producer fields accepted", i)
		}
	}
	if _, err := PeekBatchInfo(mk(NoProducerID, NoProducerEpoch, NoSequence)); err != nil {
		t.Errorf("all-sentinel batch rejected: %v", err)
	}
}

func TestScanMultipleBatches(t *testing.T) {
	var buf []byte
	buf = append(buf, EncodeBatch(0, sampleRecords())...)
	buf = append(buf, EncodeBatch(4, sampleRecords()[:2])...)
	var bases []int64
	err := Scan(buf, func(b Batch) error {
		bases = append(bases, b.BaseOffset)
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if !reflect.DeepEqual(bases, []int64{0, 4}) {
		t.Fatalf("bases = %v, want [0 4]", bases)
	}
	n, err := CountRecords(buf)
	if err != nil || n != 6 {
		t.Fatalf("CountRecords = %d, %v; want 6, nil", n, err)
	}
}

func TestScanToleratesTrailingPartial(t *testing.T) {
	full := EncodeBatch(0, sampleRecords())
	buf := append(append([]byte(nil), full...), full[:10]...)
	count := 0
	err := Scan(buf, func(b Batch) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if count != 1 {
		t.Fatalf("scanned %d batches, want 1", count)
	}
}

func TestEncodeBatchKeepOffsets(t *testing.T) {
	recs := []Record{
		{Offset: 10, Timestamp: 5, Key: []byte("a"), Value: []byte("1")},
		{Offset: 17, Timestamp: 9, Key: []byte("b"), Value: []byte("2")}, // gap
		{Offset: 30, Timestamp: 7, Key: []byte("c"), Value: []byte("3")},
	}
	buf := EncodeBatchKeepOffsets(recs)
	info, err := PeekBatchInfo(buf)
	if err != nil {
		t.Fatalf("PeekBatchInfo: %v", err)
	}
	if info.BaseOffset != 10 || info.LastOffset != 30 {
		t.Fatalf("offsets = [%d, %d], want [10, 30]", info.BaseOffset, info.LastOffset)
	}
	b, _, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	got := []int64{b.Records[0].Offset, b.Records[1].Offset, b.Records[2].Offset}
	if !reflect.DeepEqual(got, []int64{10, 17, 30}) {
		t.Fatalf("offsets = %v, want [10 17 30]", got)
	}
	if b.Records[1].Timestamp != 9 {
		t.Fatalf("timestamp = %d, want 9", b.Records[1].Timestamp)
	}
}

func TestBatchHelpers(t *testing.T) {
	b, _, err := DecodeBatch(EncodeBatch(5, sampleRecords()))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.LastOffset(); got != 8 {
		t.Fatalf("LastOffset = %d, want 8", got)
	}
	if got := b.MaxTimestamp(); got != 1010 {
		t.Fatalf("MaxTimestamp = %d, want 1010", got)
	}
}

// TestQuickRoundTrip is a property test: any generated batch round-trips
// exactly through encode/decode.
func TestQuickRoundTrip(t *testing.T) {
	f := func(base int64, keys [][]byte, values [][]byte, tss []int64) bool {
		if base < 0 {
			base = -base
		}
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		if len(tss) < n {
			n = len(tss)
		}
		if n == 0 {
			return true
		}
		if n > 64 {
			n = 64
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			ts := tss[i]
			if ts < 0 {
				ts = -ts
			}
			recs[i] = Record{Timestamp: ts % (1 << 40), Key: keys[i], Value: values[i]}
		}
		buf := EncodeBatch(base%(1<<40), recs)
		b, consumed, err := DecodeBatch(buf)
		if err != nil || consumed != len(buf) || len(b.Records) != n {
			return false
		}
		for i := range recs {
			if !bytes.Equal(b.Records[i].Key, recs[i].Key) ||
				!bytes.Equal(b.Records[i].Value, recs[i].Value) ||
				b.Records[i].Timestamp != recs[i].Timestamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorruptionNeverPanics fuzzes random corruption. Flips within the
// CRC-protected region (attributes onward) must be detected; flips in the
// base-offset/length prefix are deliberately outside CRC coverage (the
// broker rewrites base offsets without recomputing checksums, as in Kafka's
// format) and only need to decode without panicking.
func TestQuickCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := EncodeBatch(0, sampleRecords())
	orig, _, _ := DecodeBatch(base)
	for i := 0; i < 500; i++ {
		cp := append([]byte(nil), base...)
		pos := rng.Intn(len(cp))
		cp[pos] ^= byte(1 + rng.Intn(255))
		b, _, err := DecodeBatch(cp) // must not panic
		if err == nil && pos >= crcDataOffset {
			t.Fatalf("in-CRC corruption at %d accepted: %+v", pos, b)
		}
		if err == nil && pos < 12 {
			// Unprotected prefix: offsets may shift but record payloads
			// must be intact (CRC still covers them).
			for j := range orig.Records {
				if !bytes.Equal(b.Records[j].Value, orig.Records[j].Value) {
					t.Fatalf("payload changed by prefix flip at %d", pos)
				}
			}
		}
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Offset: 3, Timestamp: 9, Key: []byte("k"), Value: []byte("vv")}
	if got := r.String(); got != `Record{off=3 ts=9 key="k" value=2B}` {
		t.Fatalf("String() = %q", got)
	}
}

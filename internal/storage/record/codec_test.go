package record

import (
	"bytes"
	"errors"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Timestamp: int64(1000 + i),
			Key:       []byte{byte('a' + i%26)},
			Value:     bytes.Repeat([]byte("payload-"), 8),
			Headers:   []Header{{Key: "h", Value: []byte{byte(i)}}},
		}
	}
	return recs
}

func TestCodecRoundTrip(t *testing.T) {
	recs := testRecords(10)
	plain := EncodeBatch(42, recs)
	for _, codec := range []Codec{CodecNone, CodecGzip, CodecFlate} {
		t.Run(codec.String(), func(t *testing.T) {
			sealed, err := Compress(plain, codec)
			if err != nil {
				t.Fatal(err)
			}
			got, n, err := DecodeBatch(sealed)
			if err != nil {
				t.Fatalf("DecodeBatch: %v", err)
			}
			if n != len(sealed) {
				t.Fatalf("consumed %d, want %d", n, len(sealed))
			}
			if got.BaseOffset != 42 || len(got.Records) != len(recs) {
				t.Fatalf("decoded base=%d count=%d", got.BaseOffset, len(got.Records))
			}
			for i, r := range got.Records {
				want := recs[i]
				if r.Offset != 42+int64(i) || r.Timestamp != want.Timestamp ||
					!bytes.Equal(r.Key, want.Key) || !bytes.Equal(r.Value, want.Value) ||
					len(r.Headers) != 1 || r.Headers[0].Key != "h" {
					t.Fatalf("record %d mismatch: %+v", i, r)
				}
			}
			// Header metadata must survive sealing so brokers can index
			// compressed batches without inflating them.
			info, err := PeekBatchInfo(sealed)
			if err != nil {
				t.Fatal(err)
			}
			if info.BaseOffset != 42 || info.LastOffset != 51 || info.RecordCount != 10 {
				t.Fatalf("sealed info = %+v", info)
			}
			if info.Length != len(sealed) {
				t.Fatalf("sealed length = %d, want %d", info.Length, len(sealed))
			}
			pc, err := PeekCodec(sealed)
			if err != nil || pc != codec {
				t.Fatalf("PeekCodec = %v, %v", pc, err)
			}
			if _, err := CheckBatch(sealed); err != nil {
				t.Fatalf("CheckBatch: %v", err)
			}
		})
	}
}

func TestCompressShrinksCompressible(t *testing.T) {
	recs := make([]Record, 32)
	for i := range recs {
		recs[i] = Record{Timestamp: 1, Value: bytes.Repeat([]byte("abcdefgh"), 128)}
	}
	plain := EncodeBatch(0, recs)
	for _, codec := range []Codec{CodecGzip, CodecFlate} {
		sealed, err := Compress(plain, codec)
		if err != nil {
			t.Fatal(err)
		}
		if len(sealed) >= len(plain)/4 {
			t.Fatalf("%s: sealed %dB not < 1/4 of plain %dB", codec, len(sealed), len(plain))
		}
	}
}

func TestDecompressRestoresPlainBatch(t *testing.T) {
	plain := EncodeBatch(7, testRecords(5))
	sealed, err := Compress(plain, CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("Decompress(Compress(b)) != b")
	}
}

func TestCorruptCompressedBatchRejected(t *testing.T) {
	plain := EncodeBatch(0, testRecords(8))
	for _, codec := range []Codec{CodecGzip, CodecFlate} {
		sealed, err := Compress(plain, codec)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the compressed record region: the CRC over
		// the sealed bytes must catch it before any inflation happens.
		bad := append([]byte(nil), sealed...)
		bad[len(bad)-3] ^= 0xFF
		if _, err := CheckBatch(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s CheckBatch on corrupt batch: %v", codec, err)
		}
		if _, _, err := DecodeBatch(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s DecodeBatch on corrupt batch: %v", codec, err)
		}
		// A batch whose CRC was "fixed up" after corruption still fails:
		// the inflater rejects the stream, with the error wrapped as
		// corruption so readers treat both identically.
		resealed := append([]byte(nil), sealed...)
		resealed[len(resealed)-3] ^= 0xFF
		fixCRC(resealed)
		if _, _, err := DecodeBatch(resealed); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s DecodeBatch on re-CRCed corrupt batch: %v", codec, err)
		}
	}
}

// fixCRC recomputes the CRC of a (possibly corrupt) batch in place.
func fixCRC(b []byte) {
	crc := checksum(b[crcDataOffset:])
	b[crcOffset] = byte(crc >> 24)
	b[crcOffset+1] = byte(crc >> 16)
	b[crcOffset+2] = byte(crc >> 8)
	b[crcOffset+3] = byte(crc)
}

func TestCheckBatchUnknownCodec(t *testing.T) {
	plain := EncodeBatch(0, testRecords(2))
	bad := append([]byte(nil), plain...)
	bad[attrsOffset+1] |= 0x07 // codec 7: reserved
	fixCRC(bad)
	if _, err := CheckBatch(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CheckBatch with unknown codec: %v", err)
	}
}

func TestRestampBaseShiftsRecordOffsets(t *testing.T) {
	plain := EncodeBatch(0, testRecords(4))
	sealed, err := Compress(plain, CodecGzip)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestampBase(sealed, 1000); err != nil {
		t.Fatal(err)
	}
	// The CRC excludes the offset prefix, so the restamped batch still
	// verifies and decodes at the new base.
	if _, err := CheckBatch(sealed); err != nil {
		t.Fatalf("CheckBatch after restamp: %v", err)
	}
	got, _, err := DecodeBatch(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseOffset != 1000 || got.Records[3].Offset != 1003 {
		t.Fatalf("restamped offsets: base=%d last=%d", got.BaseOffset, got.Records[3].Offset)
	}
}

func TestMixedCodecScan(t *testing.T) {
	// A buffer of consecutive batches with different codecs — the shape of
	// a topic that enabled compression mid-life — scans as one stream.
	var buf []byte
	var want []string
	for i, codec := range []Codec{CodecNone, CodecGzip, CodecFlate, CodecNone} {
		recs := []Record{{Timestamp: 1, Value: []byte{byte('A' + i)}}}
		b, err := Compress(EncodeBatch(int64(i), recs), codec)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b...)
		want = append(want, string(recs[0].Value))
	}
	var got []string
	if err := ScanRecords(buf, func(r Record) error {
		got = append(got, string(r.Value))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"": CodecNone, "none": CodecNone, "gzip": CodecGzip, "flate": CodecFlate} {
		got, err := ParseCodec(s)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("ParseCodec should reject unknown codecs")
	}
}

func TestEncodeBatchIntoReusesBuffer(t *testing.T) {
	recs := testRecords(4)
	buf := make([]byte, 0, 4096)
	b1 := EncodeBatchInto(buf, 0, recs)
	if &b1[0] != &buf[:1][0] {
		t.Fatal("EncodeBatchInto should reuse the provided buffer")
	}
	b2 := EncodeBatch(0, recs)
	if !bytes.Equal(b1, b2) {
		t.Fatal("EncodeBatchInto output differs from EncodeBatch")
	}
}

func TestValidateBatchRejectsStructuralCorruption(t *testing.T) {
	for _, codec := range []Codec{CodecNone, CodecGzip} {
		plain := EncodeBatch(0, testRecords(4))
		sealed, err := Compress(plain, codec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateBatch(sealed); err != nil {
			t.Fatalf("%s: valid batch rejected: %v", codec, err)
		}
		// Lie about the record count and re-seal the CRC: the CRC passes
		// but the structural walk must reject it — this is the batch that
		// would otherwise be stored and wedge every reader.
		bad := append([]byte(nil), sealed...)
		bad[attrsOffset+25] = 9 // recordCount low byte: 4 -> 9
		fixCRC(bad)
		if _, err := CheckBatch(bad); err != nil {
			t.Fatalf("%s: CheckBatch should pass on re-CRCed batch: %v", codec, err)
		}
		if _, err := ValidateBatch(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: structurally corrupt batch accepted: %v", codec, err)
		}
	}
}

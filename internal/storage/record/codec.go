package record

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Codec identifies the compression applied to a batch's record region. It
// is carried in the low bits of the batch header's attributes field, so a
// compressed batch remains a self-describing sealed blob: brokers store and
// replicate it verbatim and only the final reader decompresses (paper §3.1:
// brokers move sealed batches cheaply at high fan-out).
type Codec int16

// Supported codecs. All are stdlib-only.
const (
	// CodecNone leaves the record region uncompressed.
	CodecNone Codec = 0
	// CodecGzip compresses the record region with gzip (BestSpeed).
	CodecGzip Codec = 1
	// CodecFlate compresses the record region with raw DEFLATE (BestSpeed);
	// same algorithm as gzip without the header/checksum overhead.
	CodecFlate Codec = 2

	// codecMask selects the codec bits of the attributes field.
	codecMask = 0x0007
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecGzip:
		return "gzip"
	case CodecFlate:
		return "flate"
	}
	return fmt.Sprintf("codec(%d)", int16(c))
}

// ParseCodec maps a configuration string ("none", "gzip", "flate", or
// empty for none) to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "none":
		return CodecNone, nil
	case "gzip":
		return CodecGzip, nil
	case "flate":
		return CodecFlate, nil
	}
	return CodecNone, fmt.Errorf("record: unknown codec %q", s)
}

// Valid reports whether c is a known codec.
func (c Codec) Valid() bool {
	return c == CodecNone || c == CodecGzip || c == CodecFlate
}

// PeekCodec returns the codec of the batch at the start of buf without
// validating anything beyond the header length.
func PeekCodec(buf []byte) (Codec, error) {
	if len(buf) < batchHeaderLen {
		return CodecNone, ErrShort
	}
	return Codec(int16(binary.BigEndian.Uint16(buf[attrsOffset:])) & codecMask), nil
}

// Compressor pools: gzip and flate writers are expensive to construct
// (window allocation), so flushed producer batches reuse them.
var gzipWriters = sync.Pool{
	New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	},
}

var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// compressBody compresses a batch's record region with the given codec.
func compressBody(codec Codec, body []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(body)/4 + 64)
	switch codec {
	case CodecGzip:
		w := gzipWriters.Get().(*gzip.Writer)
		w.Reset(&buf)
		if _, err := w.Write(body); err != nil {
			gzipWriters.Put(w)
			return nil, err
		}
		if err := w.Close(); err != nil {
			gzipWriters.Put(w)
			return nil, err
		}
		gzipWriters.Put(w)
	case CodecFlate:
		w := flateWriters.Get().(*flate.Writer)
		w.Reset(&buf)
		if _, err := w.Write(body); err != nil {
			flateWriters.Put(w)
			return nil, err
		}
		if err := w.Close(); err != nil {
			flateWriters.Put(w)
			return nil, err
		}
		flateWriters.Put(w)
	default:
		return nil, fmt.Errorf("record: cannot compress with codec %s", codec)
	}
	return buf.Bytes(), nil
}

// maxInflatedBody bounds how far a compressed record region may inflate
// (matching the wire layer's 64 MiB frame bound), so a stored deflate bomb
// cannot OOM readers: inflation stops at the bound and the batch is
// reported corrupt.
const maxInflatedBody = 64 << 20

// Decompressor pools mirror the writer pools: flate and gzip readers carry
// sliding-window state that is expensive to construct, and the consumer
// side inflates one batch per stored batch.
var gzipReaders sync.Pool

var flateReaders = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// decompressBody inflates a compressed record region. Errors are wrapped in
// ErrCorrupt: a batch that passed its CRC but fails to inflate was built
// wrong, and readers treat both identically.
func decompressBody(codec Codec, body []byte) ([]byte, error) {
	var r io.Reader
	var release func()
	switch codec {
	case CodecGzip:
		var gr *gzip.Reader
		if v := gzipReaders.Get(); v != nil {
			gr = v.(*gzip.Reader)
			if err := gr.Reset(bytes.NewReader(body)); err != nil {
				gzipReaders.Put(gr)
				return nil, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
			}
		} else {
			var err error
			if gr, err = gzip.NewReader(bytes.NewReader(body)); err != nil {
				return nil, fmt.Errorf("%w: gzip: %v", ErrCorrupt, err)
			}
		}
		r = gr
		release = func() { gzipReaders.Put(gr) }
	case CodecFlate:
		fr := flateReaders.Get().(io.ReadCloser)
		if err := fr.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
			flateReaders.Put(fr)
			return nil, fmt.Errorf("%w: flate: %v", ErrCorrupt, err)
		}
		r = fr
		release = func() { flateReaders.Put(fr) }
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, codec)
	}
	out, err := io.ReadAll(io.LimitReader(r, maxInflatedBody+1))
	release()
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, codec, err)
	}
	if len(out) > maxInflatedBody {
		return nil, fmt.Errorf("%w: %s: inflates beyond %d bytes", ErrCorrupt, codec, maxInflatedBody)
	}
	return out, nil
}

// CompressRaw compresses an arbitrary byte region with the given codec,
// using the same pooled compressors as batch sealing. Other layers (the
// archive's segment files) reuse it so the whole pipeline shares one
// compression vocabulary.
func CompressRaw(codec Codec, body []byte) ([]byte, error) {
	return compressBody(codec, body)
}

// DecompressRaw inflates a region produced by CompressRaw. Errors wrap
// ErrCorrupt.
func DecompressRaw(codec Codec, body []byte) ([]byte, error) {
	return decompressBody(codec, body)
}

// Compress seals an uncompressed batch with the given codec: the record
// region is compressed, the codec bits are set in the attributes field, the
// batch length is rewritten and the CRC recomputed over the compressed
// bytes. Header metadata (offsets, timestamps, record count) is preserved,
// so PeekBatchInfo keeps working on the sealed form and brokers never need
// to inflate it. CodecNone returns batch unchanged.
func Compress(batch []byte, codec Codec) ([]byte, error) {
	if codec == CodecNone {
		return batch, nil
	}
	if !codec.Valid() {
		return nil, fmt.Errorf("record: unknown codec %d", codec)
	}
	total, err := PeekBatchLen(batch)
	if err != nil {
		return nil, err
	}
	compressed, err := compressBody(codec, batch[batchHeaderLen:total])
	if err != nil {
		return nil, err
	}
	out := make([]byte, batchHeaderLen+len(compressed))
	copy(out, batch[:batchHeaderLen])
	copy(out[batchHeaderLen:], compressed)
	binary.BigEndian.PutUint32(out[8:], uint32(len(out)-12))
	attrs := binary.BigEndian.Uint16(out[attrsOffset:])
	attrs = attrs&^codecMask | uint16(codec)&codecMask
	binary.BigEndian.PutUint16(out[attrsOffset:], attrs)
	binary.BigEndian.PutUint32(out[crcOffset:], crc32.Checksum(out[crcDataOffset:], castagnoli))
	return out, nil
}

// Decompress rewrites a compressed batch into its equivalent uncompressed
// (CodecNone) form, re-sealing length, attributes and CRC. An uncompressed
// batch is returned unchanged. Readers normally never need this —
// DecodeBatch inflates transparently — but tools that rewrite batches
// (compaction of mixed-codec logs, debugging) do.
func Decompress(batch []byte) ([]byte, error) {
	total, err := PeekBatchLen(batch)
	if err != nil {
		return nil, err
	}
	codec, err := PeekCodec(batch)
	if err != nil {
		return nil, err
	}
	if codec == CodecNone {
		return batch, nil
	}
	body, err := decompressBody(codec, batch[batchHeaderLen:total])
	if err != nil {
		return nil, err
	}
	out := make([]byte, batchHeaderLen+len(body))
	copy(out, batch[:batchHeaderLen])
	copy(out[batchHeaderLen:], body)
	binary.BigEndian.PutUint32(out[8:], uint32(len(out)-12))
	attrs := binary.BigEndian.Uint16(out[attrsOffset:]) &^ codecMask
	binary.BigEndian.PutUint16(out[attrsOffset:], attrs)
	binary.BigEndian.PutUint32(out[crcOffset:], crc32.Checksum(out[crcDataOffset:], castagnoli))
	return out, nil
}

// CheckBatch verifies the structural integrity of the sealed batch at the
// start of buf — length sanity, a known codec, and the CRC over the (possibly
// compressed) record region — without decoding or inflating it. This is the
// broker's produce-path validation: cheap enough for the hot path, strong
// enough that a corrupted compressed blob is rejected before it is stored.
func CheckBatch(buf []byte) (BatchInfo, error) {
	info, err := PeekBatchInfo(buf)
	if err != nil {
		return BatchInfo{}, err
	}
	if len(buf) < info.Length {
		return BatchInfo{}, ErrShort
	}
	codec, _ := PeekCodec(buf)
	if !codec.Valid() {
		return BatchInfo{}, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, codec)
	}
	b := buf[:info.Length]
	if crc32.Checksum(b[crcDataOffset:], castagnoli) != binary.BigEndian.Uint32(b[crcOffset:]) {
		return BatchInfo{}, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return info, nil
}

// ValidateBatch is the broker's produce-path validation: CheckBatch plus a
// full structural walk of the record region (inflating compressed batches
// into a transient buffer — the stored bytes remain the producer's,
// verbatim). The walk allocates nothing and confirms that exactly
// RecordCount records parse and consume the whole region, so a CRC-valid
// but structurally corrupt batch is rejected at produce time instead of
// being stored and wedging every reader of the partition.
func ValidateBatch(buf []byte) (BatchInfo, error) {
	info, err := CheckBatch(buf)
	if err != nil {
		return BatchInfo{}, err
	}
	codec, _ := PeekCodec(buf)
	body := buf[batchHeaderLen:info.Length]
	if codec != CodecNone {
		if body, err = decompressBody(codec, body); err != nil {
			return BatchInfo{}, err
		}
	}
	if err := walkRecords(body, info.RecordCount); err != nil {
		return BatchInfo{}, err
	}
	return info, nil
}

// walkRecords bounds-checks count records in an uncompressed record region
// without materialising them, requiring the region to be consumed exactly.
func walkRecords(body []byte, count int) error {
	pos := 0
	skipBytes := func() bool {
		if pos+4 > len(body) {
			return false
		}
		n := int32(binary.BigEndian.Uint32(body[pos:]))
		pos += 4
		if n == -1 {
			return true
		}
		if n < 0 || pos+int(n) > len(body) {
			return false
		}
		pos += int(n)
		return true
	}
	for i := 0; i < count; i++ {
		if pos+12 > len(body) {
			return fmt.Errorf("%w: truncated record %d", ErrCorrupt, i)
		}
		pos += 12 // offsetDelta + timestampDelta
		if !skipBytes() || !skipBytes() {
			return fmt.Errorf("%w: bad key/value in record %d", ErrCorrupt, i)
		}
		if pos+4 > len(body) {
			return fmt.Errorf("%w: truncated record %d", ErrCorrupt, i)
		}
		hc := int(int32(binary.BigEndian.Uint32(body[pos:])))
		pos += 4
		if hc < 0 {
			return fmt.Errorf("%w: negative header count in record %d", ErrCorrupt, i)
		}
		for j := 0; j < hc; j++ {
			if !skipBytes() || !skipBytes() {
				return fmt.Errorf("%w: bad header in record %d", ErrCorrupt, i)
			}
		}
	}
	if pos != len(body) {
		return fmt.Errorf("%w: %d trailing bytes after %d records", ErrCorrupt, len(body)-pos, count)
	}
	return nil
}

// RestampBase rewrites the base offset of the sealed batch at the start of
// buf in place. The offset prefix sits outside the CRC-covered region
// precisely so the leader can assign offsets to a producer's sealed
// (possibly compressed) batch without opening it — record offsets inside
// are deltas, so the whole batch shifts with its base.
func RestampBase(buf []byte, base int64) error {
	if len(buf) < 8 {
		return ErrShort
	}
	binary.BigEndian.PutUint64(buf, uint64(base))
	return nil
}

package record

import "encoding/binary"

// BatchInfo summarises a batch header without decoding its records. The log
// uses it on the append and recovery paths where full decoding would waste
// cycles.
type BatchInfo struct {
	BaseOffset   int64
	LastOffset   int64
	MaxTimestamp int64
	RecordCount  int
	Length       int // total encoded length in bytes

	// Producer identity stamped by an idempotent producer, or the -1
	// sentinels (NoProducerID/NoProducerEpoch/NoSequence) for a plain
	// produce. BaseSequence numbers the batch's first record within the
	// producer's per-partition sequence space.
	ProducerID    int64
	ProducerEpoch int32
	BaseSequence  int64
}

// Idempotent reports whether the batch carries a producer identity.
func (i BatchInfo) Idempotent() bool { return i.ProducerID >= 0 }

// LastSequence is the sequence number of the batch's final record
// (BaseSequence + lastOffsetDelta). Meaningless unless Idempotent.
func (i BatchInfo) LastSequence() int64 {
	return i.BaseSequence + (i.LastOffset - i.BaseOffset)
}

// HeaderLen is the fixed size of a batch header; PeekBatchInfo needs only
// this many bytes.
const HeaderLen = batchHeaderLen

// PeekBatchInfo reads the batch header at the start of buf. Only the header
// needs to be present — the batch body may extend beyond buf. It validates
// length-field sanity but not the CRC; use DecodeBatch for full validation.
func PeekBatchInfo(buf []byte) (BatchInfo, error) {
	if len(buf) < batchHeaderLen {
		return BatchInfo{}, ErrShort
	}
	total := int(int32(binary.BigEndian.Uint32(buf[8:]))) + 12
	if total < batchHeaderLen {
		return BatchInfo{}, ErrCorrupt
	}
	base := int64(binary.BigEndian.Uint64(buf[0:]))
	pid := int64(binary.BigEndian.Uint64(buf[producerOffset:]))
	epoch := int32(binary.BigEndian.Uint32(buf[producerOffset+8:]))
	baseSeq := int64(binary.BigEndian.Uint64(buf[producerOffset+12:]))
	lastDelta := int32(binary.BigEndian.Uint32(buf[attrsOffset+2:]))
	maxTS := int64(binary.BigEndian.Uint64(buf[attrsOffset+14:]))
	count := int(int32(binary.BigEndian.Uint32(buf[attrsOffset+22:])))
	if lastDelta < 0 || count < 0 {
		return BatchInfo{}, ErrCorrupt
	}
	// The producer fields sit outside the CRC (so they can be stamped onto a
	// sealed batch); reject values no stamper can produce, mirroring the
	// recovery scan's base-offset regression check, so a torn prefix cannot
	// poison the producer-state table. A stamped batch carries all three
	// fields or none.
	if pid < NoProducerID || epoch < NoProducerEpoch || baseSeq < NoSequence {
		return BatchInfo{}, ErrCorrupt
	}
	if pid >= 0 != (epoch >= 0) || pid >= 0 != (baseSeq >= 0) {
		return BatchInfo{}, ErrCorrupt
	}
	return BatchInfo{
		BaseOffset:    base,
		LastOffset:    base + int64(lastDelta),
		MaxTimestamp:  maxTS,
		RecordCount:   count,
		Length:        total,
		ProducerID:    pid,
		ProducerEpoch: epoch,
		BaseSequence:  baseSeq,
	}, nil
}

// EncodeBatchKeepOffsets serialises records preserving each record's
// existing absolute offset (records must be in strictly increasing offset
// order). The batch's base offset is the first record's offset. Offset gaps
// are allowed: this is how log compaction rewrites segments while keeping
// surviving records addressable at their original offsets (paper §4.1).
func EncodeBatchKeepOffsets(records []Record) []byte {
	if len(records) == 0 {
		panic("record: EncodeBatchKeepOffsets called with no records")
	}
	base := records[0].Offset
	size := batchHeaderLen
	for i := range records {
		size += recordSize(&records[i])
	}
	buf := make([]byte, size)

	baseTS := records[0].Timestamp
	var maxTS int64
	for i := range records {
		if records[i].Timestamp > maxTS {
			maxTS = records[i].Timestamp
		}
	}
	last := records[len(records)-1].Offset

	binary.BigEndian.PutUint64(buf[0:], uint64(base))
	binary.BigEndian.PutUint32(buf[8:], uint32(size-12))
	fillProducerSentinels(buf)
	binary.BigEndian.PutUint16(buf[attrsOffset:], 0)
	binary.BigEndian.PutUint32(buf[attrsOffset+2:], uint32(last-base))
	binary.BigEndian.PutUint64(buf[attrsOffset+6:], uint64(baseTS))
	binary.BigEndian.PutUint64(buf[attrsOffset+14:], uint64(maxTS))
	binary.BigEndian.PutUint32(buf[attrsOffset+22:], uint32(len(records)))

	pos := batchHeaderLen
	for i := range records {
		pos = encodeRecord(buf, pos, int32(records[i].Offset-base), &records[i], baseTS)
	}
	crc := checksum(buf[crcDataOffset:])
	binary.BigEndian.PutUint32(buf[crcOffset:], crc)
	return buf
}

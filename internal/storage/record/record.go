// Package record defines the on-disk and on-wire representation of messages
// in the messaging layer: individual records (key, value, headers, timestamp)
// grouped into record batches that carry a base offset and a CRC32-C
// checksum. Batches are the unit of appending to a commit log, of
// replication, and of fetch responses, mirroring the design of the log-based
// messaging layer in the paper (§3.1).
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Errors returned when decoding batches.
var (
	// ErrCorrupt indicates that a batch failed its CRC check or had an
	// inconsistent length field.
	ErrCorrupt = errors.New("record: corrupt batch")
	// ErrShort indicates that the buffer ends before a complete batch.
	ErrShort = errors.New("record: short buffer")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the CRC32-C over a batch's checksummed region.
func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// Header is an application-defined key/value annotation on a record. The
// processing layer uses headers to carry lineage information on derived
// feeds (paper §3).
type Header struct {
	Key   string
	Value []byte
}

// Record is a single message. Offset and Timestamp are assigned by the
// broker on append (log-append time) unless the producer supplied a
// timestamp.
type Record struct {
	Offset    int64 // absolute offset within the partition
	Timestamp int64 // milliseconds since the Unix epoch
	Key       []byte
	Value     []byte
	Headers   []Header
}

// Batch is an ordered group of records sharing a contiguous offset range.
type Batch struct {
	BaseOffset int64
	Records    []Record
}

// LastOffset returns the offset of the final record in the batch.
// It panics on an empty batch, which is never produced by EncodeBatch.
func (b *Batch) LastOffset() int64 {
	return b.Records[len(b.Records)-1].Offset
}

// MaxTimestamp returns the largest record timestamp in the batch, or 0 for
// an empty batch.
func (b *Batch) MaxTimestamp() int64 {
	var max int64
	for i := range b.Records {
		if b.Records[i].Timestamp > max {
			max = b.Records[i].Timestamp
		}
	}
	return max
}

// Batch binary layout (all integers big-endian):
//
//	baseOffset      int64
//	batchLength     int32   // bytes following this field
//	producerID      int64   // -1 when not an idempotent produce
//	producerEpoch   int32   // -1 when not an idempotent produce
//	baseSequence    int64   // -1 when not an idempotent produce
//	crc             uint32  // CRC32-C of everything after this field
//	attributes      int16   // low bits: codec
//	lastOffsetDelta int32
//	baseTimestamp   int64
//	maxTimestamp    int64
//	recordCount     int32
//	records         ...
//
// The producer id/epoch/sequence fields sit with the base offset OUTSIDE the
// CRC-covered region: like the base offset (restamped by the leader), they
// are stamped onto an already-sealed — possibly compressed — batch by the
// producer's retry machinery without reopening the blob, so the stored bytes
// stay byte-identical across replication and zero-copy fetch.
//
// Record layout:
//
//	offsetDelta     int32
//	timestampDelta  int64
//	keyLen          int32   // -1 encodes a nil key
//	key             bytes
//	valueLen        int32   // -1 encodes a nil value
//	value           bytes
//	headerCount     int32
//	headers         { keyLen int32, key, valueLen int32, value }*
const (
	batchHeaderLen = 8 + 4 + 8 + 4 + 8 + 4 + 2 + 4 + 8 + 8 + 4
	// producerOffset is the byte position of the producerID field.
	producerOffset = 8 + 4
	// crcOffset is the byte position of the CRC field within a batch.
	crcOffset = producerOffset + 8 + 4 + 8
	// crcDataOffset is where the checksummed region begins.
	crcDataOffset = crcOffset + 4
	// attrsOffset is the byte position of the attributes field.
	attrsOffset = crcDataOffset
)

// NoProducerID and NoProducerEpoch are the sentinel values carried by batches
// produced without idempotence; NoSequence likewise marks an unstamped base
// sequence. Brokers skip producer-state tracking for such batches.
const (
	NoProducerID    int64 = -1
	NoProducerEpoch int32 = -1
	NoSequence      int64 = -1
)

// EncodeBatch serialises records as a single batch starting at baseOffset.
// Record offsets in the input are ignored; records are assigned consecutive
// offsets baseOffset, baseOffset+1, ... Timestamps are taken from the input
// records. EncodeBatch panics if records is empty: callers batch at least
// one record by construction.
func EncodeBatch(baseOffset int64, records []Record) []byte {
	return EncodeBatchInto(nil, baseOffset, records)
}

// EncodeBatchInto is EncodeBatch writing into dst's spare capacity, growing
// it only when the encoded batch does not fit. The commit log's append path
// pools these buffers: one batch encode per append with zero steady-state
// allocations.
func EncodeBatchInto(dst []byte, baseOffset int64, records []Record) []byte {
	if len(records) == 0 {
		panic("record: EncodeBatch called with no records")
	}
	size := batchHeaderLen
	for i := range records {
		size += recordSize(&records[i])
	}
	var buf []byte
	if cap(dst) >= size {
		buf = dst[:size]
	} else {
		buf = make([]byte, size)
	}

	baseTS := records[0].Timestamp
	var maxTS int64
	for i := range records {
		if records[i].Timestamp > maxTS {
			maxTS = records[i].Timestamp
		}
	}

	binary.BigEndian.PutUint64(buf[0:], uint64(baseOffset))
	binary.BigEndian.PutUint32(buf[8:], uint32(size-12)) // bytes after batchLength
	fillProducerSentinels(buf)
	// crc filled in last
	binary.BigEndian.PutUint16(buf[attrsOffset:], 0) // attributes
	binary.BigEndian.PutUint32(buf[attrsOffset+2:], uint32(len(records)-1))
	binary.BigEndian.PutUint64(buf[attrsOffset+6:], uint64(baseTS))
	binary.BigEndian.PutUint64(buf[attrsOffset+14:], uint64(maxTS))
	binary.BigEndian.PutUint32(buf[attrsOffset+22:], uint32(len(records)))

	pos := batchHeaderLen
	for i := range records {
		pos = encodeRecord(buf, pos, int32(i), &records[i], baseTS)
	}
	crc := crc32.Checksum(buf[crcDataOffset:], castagnoli)
	binary.BigEndian.PutUint32(buf[crcOffset:], crc)
	return buf
}

func recordSize(r *Record) int {
	size := 4 + 8 + 4 + len(r.Key) + 4 + len(r.Value) + 4
	for i := range r.Headers {
		size += 4 + len(r.Headers[i].Key) + 4 + len(r.Headers[i].Value)
	}
	return size
}

func encodeRecord(buf []byte, pos int, offsetDelta int32, r *Record, baseTS int64) int {
	binary.BigEndian.PutUint32(buf[pos:], uint32(offsetDelta))
	pos += 4
	binary.BigEndian.PutUint64(buf[pos:], uint64(r.Timestamp-baseTS))
	pos += 8
	pos = putBytes(buf, pos, r.Key)
	pos = putBytes(buf, pos, r.Value)
	binary.BigEndian.PutUint32(buf[pos:], uint32(len(r.Headers)))
	pos += 4
	for i := range r.Headers {
		pos = putBytes(buf, pos, []byte(r.Headers[i].Key))
		pos = putBytes(buf, pos, r.Headers[i].Value)
	}
	return pos
}

func putBytes(buf []byte, pos int, b []byte) int {
	if b == nil {
		binary.BigEndian.PutUint32(buf[pos:], 0xFFFFFFFF)
		return pos + 4
	}
	binary.BigEndian.PutUint32(buf[pos:], uint32(len(b)))
	pos += 4
	copy(buf[pos:], b)
	return pos + len(b)
}

// PeekBatchLen reports the total encoded length of the batch at the start of
// buf, without validating its contents. It returns ErrShort if buf does not
// contain a complete batch header + body.
func PeekBatchLen(buf []byte) (int, error) {
	if len(buf) < 12 {
		return 0, ErrShort
	}
	n := int(int32(binary.BigEndian.Uint32(buf[8:]))) + 12
	if n < batchHeaderLen {
		return 0, ErrCorrupt
	}
	if len(buf) < n {
		return 0, ErrShort
	}
	return n, nil
}

// PeekBaseOffset returns the base offset of the batch at the start of buf.
func PeekBaseOffset(buf []byte) (int64, error) {
	if len(buf) < 8 {
		return 0, ErrShort
	}
	return int64(binary.BigEndian.Uint64(buf)), nil
}

// fillProducerSentinels writes the -1 sentinels (all 0xFF bytes) over the
// 20-byte producer id/epoch/sequence region of a batch header.
func fillProducerSentinels(buf []byte) {
	for i := producerOffset; i < crcOffset; i++ {
		buf[i] = 0xFF
	}
}

// StampProducer writes the producer id, epoch and base sequence onto the
// sealed batch at the start of buf, in place. Like RestampBase, this works on
// an already-sealed (possibly compressed) batch: the producer fields live
// outside the CRC-covered region, so the blob's checksum and stored bytes are
// untouched. The producer stamps a batch once, immediately before its first
// send; retries resend the identical bytes, which is what lets the broker
// recognise them.
func StampProducer(buf []byte, id int64, epoch int32, baseSeq int64) error {
	if len(buf) < producerOffset+20 {
		return ErrShort
	}
	binary.BigEndian.PutUint64(buf[producerOffset:], uint64(id))
	binary.BigEndian.PutUint32(buf[producerOffset+8:], uint32(epoch))
	binary.BigEndian.PutUint64(buf[producerOffset+12:], uint64(baseSeq))
	return nil
}

// DecodeBatch decodes and CRC-verifies the batch at the start of buf,
// returning the batch and the number of bytes consumed. Compressed batches
// (see Codec) are inflated transparently: the CRC is verified over the
// sealed bytes first, so corruption is detected before inflation.
func DecodeBatch(buf []byte) (Batch, int, error) {
	total, err := PeekBatchLen(buf)
	if err != nil {
		return Batch{}, 0, err
	}
	b := buf[:total]
	wantCRC := binary.BigEndian.Uint32(b[crcOffset:])
	if crc32.Checksum(b[crcDataOffset:], castagnoli) != wantCRC {
		return Batch{}, 0, ErrCorrupt
	}
	baseOffset := int64(binary.BigEndian.Uint64(b[0:]))
	baseTS := int64(binary.BigEndian.Uint64(b[attrsOffset+6:]))
	count := int(int32(binary.BigEndian.Uint32(b[attrsOffset+22:])))
	if count < 0 {
		return Batch{}, 0, ErrCorrupt
	}
	codec := Codec(int16(binary.BigEndian.Uint16(b[attrsOffset:])) & codecMask)
	body := b[batchHeaderLen:]
	if codec != CodecNone {
		body, err = decompressBody(codec, body)
		if err != nil {
			return Batch{}, 0, err
		}
	}

	// The count is header data, not yet proven against the body: cap the
	// preallocation by what the region could possibly hold (a record is at
	// least 24 bytes) so a corrupt count fails the bounds checks below
	// instead of attempting a huge allocation.
	capHint := count
	if most := len(body)/24 + 1; capHint > most {
		capHint = most
	}
	records := make([]Record, 0, capHint)
	pos := 0
	for i := 0; i < count; i++ {
		var r Record
		pos, err = decodeRecord(body, pos, baseOffset, baseTS, &r)
		if err != nil {
			return Batch{}, 0, err
		}
		records = append(records, r)
	}
	return Batch{BaseOffset: baseOffset, Records: records}, total, nil
}

func decodeRecord(b []byte, pos int, baseOffset, baseTS int64, r *Record) (int, error) {
	if pos+12 > len(b) {
		return 0, ErrCorrupt
	}
	offsetDelta := int32(binary.BigEndian.Uint32(b[pos:]))
	pos += 4
	tsDelta := int64(binary.BigEndian.Uint64(b[pos:]))
	pos += 8
	var err error
	r.Offset = baseOffset + int64(offsetDelta)
	r.Timestamp = baseTS + tsDelta
	r.Key, pos, err = getBytes(b, pos)
	if err != nil {
		return 0, err
	}
	r.Value, pos, err = getBytes(b, pos)
	if err != nil {
		return 0, err
	}
	if pos+4 > len(b) {
		return 0, ErrCorrupt
	}
	hc := int(int32(binary.BigEndian.Uint32(b[pos:])))
	pos += 4
	if hc < 0 || hc > len(b) {
		return 0, ErrCorrupt
	}
	if hc > 0 {
		r.Headers = make([]Header, hc)
		for i := 0; i < hc; i++ {
			var k, v []byte
			k, pos, err = getBytes(b, pos)
			if err != nil {
				return 0, err
			}
			v, pos, err = getBytes(b, pos)
			if err != nil {
				return 0, err
			}
			r.Headers[i] = Header{Key: string(k), Value: v}
		}
	}
	return pos, nil
}

func getBytes(b []byte, pos int) ([]byte, int, error) {
	if pos+4 > len(b) {
		return nil, 0, ErrCorrupt
	}
	n := int32(binary.BigEndian.Uint32(b[pos:]))
	pos += 4
	if n == -1 {
		return nil, pos, nil
	}
	if n < 0 || pos+int(n) > len(b) {
		return nil, 0, ErrCorrupt
	}
	out := make([]byte, n)
	copy(out, b[pos:pos+int(n)])
	return out, pos + int(n), nil
}

// Scan iterates over consecutive batches in buf, invoking fn for each. It
// stops early if fn returns an error (which is then returned) and tolerates
// a trailing partial batch, which is common when a fetch response was cut at
// a byte limit.
func Scan(buf []byte, fn func(Batch) error) error {
	for len(buf) > 0 {
		b, n, err := DecodeBatch(buf)
		if err == ErrShort {
			return nil // trailing partial batch: normal at fetch boundaries
		}
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// ScanRecords iterates over every record in every complete batch in buf.
func ScanRecords(buf []byte, fn func(Record) error) error {
	return Scan(buf, func(b Batch) error {
		for i := range b.Records {
			if err := fn(b.Records[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// CountRecords returns the number of records across all complete batches in
// buf, without allocating decoded records for the caller.
func CountRecords(buf []byte) (int, error) {
	n := 0
	err := Scan(buf, func(b Batch) error {
		n += len(b.Records)
		return nil
	})
	return n, err
}

// String implements fmt.Stringer for debugging.
func (r Record) String() string {
	return fmt.Sprintf("Record{off=%d ts=%d key=%q value=%dB}", r.Offset, r.Timestamp, r.Key, len(r.Value))
}

// Package log implements the partition commit log of the messaging layer:
// an append-only sequence of record batches split into segment files with
// sparse in-memory offset indexes, per-topic retention, and recovery that
// truncates torn or corrupt tails. This is the storage substrate the paper
// builds the whole stack on (§3.1 "distributed commit log", §4.1).
package log

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/storage/record"
)

// PageTracker observes segment file I/O. The cache package implements it to
// model OS page-cache residency ("anti-caching", paper §4.1); a nil tracker
// costs nothing on the hot path. OnRead returns a simulated disk penalty
// that the reader sleeps for.
type PageTracker interface {
	OnWrite(segmentBase, pos, n int64)
	OnRead(segmentBase, pos, n int64) time.Duration
}

// Errors returned by log operations.
var (
	// ErrOffsetOutOfRange reports a read below the log start offset or
	// beyond the log end offset.
	ErrOffsetOutOfRange = errors.New("log: offset out of range")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("log: closed")
	// ErrNonMonotonic reports an append whose base offset is below the
	// current log end offset.
	ErrNonMonotonic = errors.New("log: non-monotonic append")
)

// indexEntry maps a relative offset to a byte position within the segment
// file. Entries are sparse: one per indexIntervalBytes of appended data.
type indexEntry struct {
	relOffset int32
	position  int64
}

// segment is one file of the log: batches covering offsets
// [baseOffset, nextOffset).
type segment struct {
	baseOffset int64
	path       string
	file       *os.File
	size       int64
	nextOffset int64
	firstTS    int64 // first batch's max timestamp (0 if empty)
	maxTS      int64 // largest batch max-timestamp seen
	index      []indexEntry
	indexLag   int64 // bytes appended since last index entry
}

const segmentSuffix = ".log"

// segmentPath renders the canonical file name for a base offset.
func segmentPath(dir string, baseOffset int64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", baseOffset, segmentSuffix))
}

// createSegment creates an empty segment file starting at baseOffset.
func createSegment(dir string, baseOffset int64) (*segment, error) {
	path := segmentPath(dir, baseOffset)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("log: create segment: %w", err)
	}
	return &segment{
		baseOffset: baseOffset,
		path:       path,
		file:       f,
		nextOffset: baseOffset,
	}, nil
}

// openSegment opens an existing segment file and rebuilds its in-memory
// index by scanning. A torn or corrupt tail (e.g. from a crash mid-write) is
// truncated away; everything before it is kept. trustedBytes is the synced
// prefix the durability checkpoint vouches for (0 = verify everything).
func openSegment(dir string, baseOffset int64, indexInterval int64, trustedBytes int64) (*segment, error) {
	path := segmentPath(dir, baseOffset)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("log: open segment: %w", err)
	}
	s := &segment{
		baseOffset: baseOffset,
		path:       path,
		file:       f,
		nextOffset: baseOffset,
	}
	if err := s.recover(indexInterval, trustedBytes); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans the file, rebuilding the index and truncating at the first
// corruption. Batches entirely inside the trusted prefix (fsynced before the
// checkpoint was written) are header-walked without CRC verification; the
// tail beyond it — the only bytes a crash can tear — is CRC-checked batch by
// batch.
func (s *segment) recover(indexInterval int64, trustedBytes int64) error {
	data, err := io.ReadAll(s.file)
	if err != nil {
		return fmt.Errorf("log: recover %s: %w", s.path, err)
	}
	var pos int64
	valid := int64(0)
	for int(pos) < len(data) {
		info, err := record.PeekBatchInfo(data[pos:])
		if err != nil {
			break
		}
		end := pos + int64(info.Length)
		if end > int64(len(data)) {
			break // partial batch: torn tail
		}
		if end > trustedBytes {
			// Unsynced (or unvouched) bytes: a CRC mismatch is a torn
			// write and truncates the rest.
			if _, err := record.CheckBatch(data[pos:end]); err != nil {
				break
			}
		}
		// The offset prefix is outside CRC coverage; reject batches whose
		// offsets regress or go negative as corruption.
		if info.BaseOffset < s.nextOffset || info.BaseOffset < s.baseOffset {
			break
		}
		s.noteAppend(info, pos, indexInterval)
		pos = end
		valid = pos
	}
	if valid < int64(len(data)) {
		if err := s.file.Truncate(valid); err != nil {
			return fmt.Errorf("log: truncate torn tail of %s: %w", s.path, err)
		}
	}
	s.size = valid
	if _, err := s.file.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// noteAppend updates segment bookkeeping for a batch appended (or
// discovered during recovery) at byte position pos.
func (s *segment) noteAppend(info record.BatchInfo, pos int64, indexInterval int64) {
	if s.size == 0 && pos == 0 && s.firstTS == 0 {
		s.firstTS = info.MaxTimestamp
	}
	if info.MaxTimestamp > s.maxTS {
		s.maxTS = info.MaxTimestamp
	}
	s.nextOffset = info.LastOffset + 1
	s.indexLag += int64(info.Length)
	if len(s.index) == 0 || s.indexLag >= indexInterval {
		s.index = append(s.index, indexEntry{
			relOffset: int32(info.BaseOffset - s.baseOffset),
			position:  pos,
		})
		s.indexLag = 0
	}
}

// append writes an encoded batch at the end of the segment.
func (s *segment) append(batch []byte, info record.BatchInfo, indexInterval int64, tracker PageTracker) error {
	if _, err := s.file.Write(batch); err != nil {
		return fmt.Errorf("log: append: %w", err)
	}
	if tracker != nil {
		tracker.OnWrite(s.baseOffset, s.size, int64(len(batch)))
	}
	s.noteAppend(info, s.size, indexInterval)
	s.size += int64(len(batch))
	return nil
}

// lookup returns the greatest indexed byte position whose batch base offset
// is at or below the wanted offset.
func (s *segment) lookup(offset int64) int64 {
	rel := offset - s.baseOffset
	lo, hi := 0, len(s.index)-1
	pos := int64(0)
	for lo <= hi {
		mid := (lo + hi) / 2
		if int64(s.index[mid].relOffset) <= rel {
			pos = s.index[mid].position
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return pos
}

// read returns up to maxBytes of whole batches starting from the first
// batch whose last offset is at or beyond the wanted offset. At least one
// complete batch is returned when any qualifies, even if it exceeds
// maxBytes, so that a large batch can never wedge a consumer.
func (s *segment) read(offset int64, maxBytes int, tracker PageTracker) ([]byte, error) {
	pos := s.lookup(offset)
	var hdr [record.HeaderLen]byte
	var first record.BatchInfo
	found := false
	// Skip batches that end before the wanted offset.
	for pos+int64(record.HeaderLen) <= s.size {
		if _, err := s.file.ReadAt(hdr[:], pos); err != nil && err != io.EOF {
			return nil, err
		}
		info, perr := record.PeekBatchInfo(hdr[:])
		if perr != nil {
			return nil, fmt.Errorf("log: read header at %d: %w", pos, perr)
		}
		if info.LastOffset >= offset {
			first = info
			found = true
			break
		}
		pos += int64(info.Length)
	}
	if !found {
		return nil, nil
	}
	// Always return at least one whole batch so a large batch can never
	// wedge a consumer whose maxBytes is smaller than it.
	want := int64(maxBytes)
	if want < int64(first.Length) {
		want = int64(first.Length)
	}
	if pos+want > s.size {
		want = s.size - pos
	}
	buf := make([]byte, want)
	n, err := s.file.ReadAt(buf, pos)
	if err != nil && err != io.EOF {
		return nil, err
	}
	buf = buf[:n]
	if tracker != nil {
		if penalty := tracker.OnRead(s.baseOffset, pos, int64(n)); penalty > 0 {
			time.Sleep(penalty)
		}
	}
	return buf[:wholeBatches(buf)], nil
}

// wholeBatches returns the length of the longest prefix of buf consisting
// of complete batches.
func wholeBatches(buf []byte) int {
	pos := 0
	for pos < len(buf) {
		n, err := record.PeekBatchLen(buf[pos:])
		if err != nil {
			break
		}
		pos += n
	}
	return pos
}

// truncateTo removes all data at offsets >= offset. It rescans the file to
// find the cut position and rebuilds the index.
func (s *segment) truncateTo(offset int64, indexInterval int64) error {
	data := make([]byte, s.size)
	if _, err := s.file.ReadAt(data, 0); err != nil && err != io.EOF {
		return err
	}
	var pos int64
	s.index = nil
	s.indexLag = 0
	s.maxTS = 0
	s.firstTS = 0
	s.nextOffset = s.baseOffset
	cut := int64(0)
	for int(pos) < len(data) {
		info, err := record.PeekBatchInfo(data[pos:])
		if err != nil {
			break
		}
		if info.LastOffset >= offset {
			break
		}
		s.noteAppend(info, pos, indexInterval)
		pos += int64(info.Length)
		cut = pos
	}
	if err := s.file.Truncate(cut); err != nil {
		return err
	}
	s.size = cut
	_, err := s.file.Seek(cut, io.SeekStart)
	return err
}

// flush fsyncs the segment file.
func (s *segment) flush() error { return s.file.Sync() }

// close closes the segment file.
func (s *segment) close() error { return s.file.Close() }

// remove closes and deletes the segment file.
func (s *segment) remove() error {
	s.file.Close()
	return os.Remove(s.path)
}

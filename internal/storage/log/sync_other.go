//go:build !linux

package log

import "os"

// fdatasync falls back to a full fsync on platforms without fdatasync(2).
func fdatasync(f *os.File) error {
	return f.Sync()
}

package log

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/storage/record"
)

func openTestLog(t *testing.T, cfg Config) *Log {
	t.Helper()
	l, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func rec(key, value string) record.Record {
	var k []byte
	if key != "" {
		k = []byte(key)
	}
	return record.Record{Timestamp: time.Now().UnixMilli(), Key: k, Value: []byte(value)}
}

// readAll decodes every record readable from offset.
func readAll(t *testing.T, l *Log, from int64) []record.Record {
	t.Helper()
	var out []record.Record
	off := from
	for {
		data, err := l.Read(off, 1<<20)
		if err != nil {
			t.Fatalf("Read(%d): %v", off, err)
		}
		if len(data) == 0 {
			return out
		}
		err = record.ScanRecords(data, func(r record.Record) error {
			if r.Offset >= off {
				out = append(out, r)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		off = out[len(out)-1].Offset + 1
	}
}

func TestAppendAssignsSequentialOffsets(t *testing.T) {
	l := openTestLog(t, Config{})
	base, err := l.Append([]record.Record{rec("a", "1"), rec("b", "2")})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if base != 0 {
		t.Fatalf("base = %d, want 0", base)
	}
	base, err = l.Append([]record.Record{rec("c", "3")})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if base != 2 {
		t.Fatalf("base = %d, want 2", base)
	}
	if got := l.NextOffset(); got != 3 {
		t.Fatalf("NextOffset = %d, want 3", got)
	}
}

func TestReadBackMatches(t *testing.T) {
	l := openTestLog(t, Config{})
	want := []string{"v0", "v1", "v2", "v3", "v4"}
	for _, v := range want {
		if _, err := l.Append([]record.Record{rec("k", v)}); err != nil {
			t.Fatal(err)
		}
	}
	got := readAll(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if string(r.Value) != want[i] || r.Offset != int64(i) {
			t.Fatalf("record %d = %v", i, r)
		}
	}
}

func TestReadFromMiddle(t *testing.T) {
	l := openTestLog(t, Config{})
	for i := 0; i < 10; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprint(i))})
	}
	got := readAll(t, l, 7)
	if len(got) != 3 || got[0].Offset != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestReadAtEndReturnsEmpty(t *testing.T) {
	l := openTestLog(t, Config{})
	l.Append([]record.Record{rec("k", "v")})
	data, err := l.Read(1, 1024)
	if err != nil || data != nil {
		t.Fatalf("Read(end) = %v, %v; want nil, nil", data, err)
	}
}

func TestReadOutOfRange(t *testing.T) {
	l := openTestLog(t, Config{})
	l.Append([]record.Record{rec("k", "v")})
	if _, err := l.Read(5, 1024); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("Read(5) err = %v, want ErrOffsetOutOfRange", err)
	}
	if _, err := l.Read(-1, 1024); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("Read(-1) err = %v, want ErrOffsetOutOfRange", err)
	}
}

func TestSegmentRolling(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 256})
	for i := 0; i < 50; i++ {
		if _, err := l.Append([]record.Record{rec("key", fmt.Sprintf("value-%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.SegmentCount(); n < 5 {
		t.Fatalf("SegmentCount = %d, want >= 5 with 256-byte segments", n)
	}
	// All data still readable across segment boundaries.
	got := readAll(t, l, 0)
	if len(got) != 50 {
		t.Fatalf("read %d records, want 50", len(got))
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("v%d", i))})
	}
	next := l.NextOffset()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Config{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.NextOffset(); got != next {
		t.Fatalf("NextOffset after reopen = %d, want %d", got, next)
	}
	got := readAll(t, l2, 0)
	if len(got) != 20 {
		t.Fatalf("read %d records after reopen, want 20", len(got))
	}
	// Appends continue at the right offset.
	base, err := l2.Append([]record.Record{rec("k", "new")})
	if err != nil || base != next {
		t.Fatalf("append after reopen: base=%d err=%v, want %d", base, err, next)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("v%d", i))})
	}
	l.Close()

	// Simulate a crash mid-write: append garbage to the segment file.
	path := segmentPath(dir, 0)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 9, 1, 2, 3})
	f.Close()

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if got := l2.NextOffset(); got != 5 {
		t.Fatalf("NextOffset = %d, want 5 (torn tail dropped)", got)
	}
	// New appends land cleanly where the torn data was.
	if base, err := l2.Append([]record.Record{rec("k", "recovered")}); err != nil || base != 5 {
		t.Fatalf("append after recovery: %d, %v", base, err)
	}
	if got := readAll(t, l2, 0); len(got) != 6 {
		t.Fatalf("read %d records, want 6", len(got))
	}
}

func TestCorruptMiddleTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Config{})
	for i := 0; i < 10; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("v%d", i))})
	}
	segs := l.Segments()
	l.Close()

	// Flip one byte in the middle of the file (inside some batch's CRC
	// region): recovery must keep the prefix and drop from the flip on.
	path := segmentPath(dir, segs[0].BaseOffset)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	next := l2.NextOffset()
	if next <= 0 || next >= 10 {
		t.Fatalf("NextOffset = %d, want in (0, 10)", next)
	}
	got := readAll(t, l2, 0)
	if int64(len(got)) != next {
		t.Fatalf("read %d records, next offset %d", len(got), next)
	}
}

func TestTruncateSuffix(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("v%02d", i))})
	}
	if err := l.Truncate(12); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if got := l.NextOffset(); got != 12 {
		t.Fatalf("NextOffset = %d, want 12", got)
	}
	got := readAll(t, l, 0)
	if len(got) != 12 {
		t.Fatalf("read %d records, want 12", len(got))
	}
	// Appends continue from the truncation point.
	base, err := l.Append([]record.Record{rec("k", "after")})
	if err != nil || base != 12 {
		t.Fatalf("append: %d, %v", base, err)
	}
}

func TestTruncateBeyondEndIsNoop(t *testing.T) {
	l := openTestLog(t, Config{})
	l.Append([]record.Record{rec("k", "v")})
	if err := l.Truncate(99); err != nil {
		t.Fatal(err)
	}
	if got := l.NextOffset(); got != 1 {
		t.Fatalf("NextOffset = %d, want 1", got)
	}
}

func TestRetentionBySize(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 256, RetentionBytes: 600, RetentionMs: -1})
	for i := 0; i < 50; i++ {
		l.Append([]record.Record{rec("key", fmt.Sprintf("value-%03d", i))})
	}
	before := l.SegmentCount()
	deleted, err := l.EnforceRetention(time.Now())
	if err != nil {
		t.Fatalf("EnforceRetention: %v", err)
	}
	if deleted == 0 {
		t.Fatalf("expected deletions with %d segments over 600-byte cap", before)
	}
	if l.Size() > 600+256 { // at most one segment of slack
		t.Fatalf("size %d still above retention", l.Size())
	}
	if l.StartOffset() == 0 {
		t.Fatal("start offset should have advanced")
	}
	// Reads below the start offset now fail.
	if _, err := l.Read(0, 1024); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("read below start: %v", err)
	}
	// Remaining data still readable.
	got := readAll(t, l, l.StartOffset())
	if int64(len(got)) != l.NextOffset()-l.StartOffset() {
		t.Fatalf("read %d records, want %d", len(got), l.NextOffset()-l.StartOffset())
	}
}

func TestRetentionByTime(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 256, RetentionMs: 1000})
	old := time.Now().Add(-time.Hour).UnixMilli()
	for i := 0; i < 30; i++ {
		l.Append([]record.Record{{Timestamp: old, Key: []byte("k"), Value: []byte(fmt.Sprintf("v%02d", i))}})
	}
	deleted, err := l.EnforceRetention(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("expected expired segments to be deleted")
	}
	if l.SegmentCount() != 1 {
		t.Fatalf("SegmentCount = %d, want 1 (active never deleted)", l.SegmentCount())
	}
}

func TestRetentionNeverDeletesActive(t *testing.T) {
	l := openTestLog(t, Config{RetentionBytes: 1, RetentionMs: 1})
	l.Append([]record.Record{{Timestamp: 1, Key: nil, Value: []byte("v")}})
	if _, err := l.EnforceRetention(time.Now()); err != nil {
		t.Fatal(err)
	}
	if l.SegmentCount() != 1 || l.NextOffset() != 1 {
		t.Fatal("active segment must survive retention")
	}
}

func TestCompactedLogSkipsRetention(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 128, RetentionBytes: 1, Compacted: true})
	for i := 0; i < 20; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("v%02d", i))})
	}
	deleted, err := l.EnforceRetention(time.Now())
	if err != nil || deleted != 0 {
		t.Fatalf("compacted log: deleted=%d err=%v, want 0, nil", deleted, err)
	}
}

func TestOffsetForTimestamp(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		ts := int64(1000 + i*100)
		l.Append([]record.Record{{Timestamp: ts, Key: []byte("k"), Value: []byte(fmt.Sprint(i))}})
	}
	cases := []struct {
		ts   int64
		want int64
	}{
		{500, 0},    // before everything
		{1000, 0},   // exact first
		{1050, 1},   // between 0 and 1
		{1500, 5},   // exact
		{2901, 20},  // beyond everything -> log end
		{99999, 20}, // far beyond
		{2900, 19},  // exact last
	}
	for _, c := range cases {
		got, err := l.OffsetForTimestamp(c.ts)
		if err != nil {
			t.Fatalf("OffsetForTimestamp(%d): %v", c.ts, err)
		}
		if got != c.want {
			t.Errorf("OffsetForTimestamp(%d) = %d, want %d", c.ts, got, c.want)
		}
	}
}

func TestAppendBatchPreservesOffsets(t *testing.T) {
	l := openTestLog(t, Config{})
	batch := record.EncodeBatch(0, []record.Record{rec("a", "1"), rec("b", "2")})
	if err := l.AppendBatch(batch); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	// A gap (as after compaction upstream) is allowed.
	gap := record.EncodeBatch(10, []record.Record{rec("c", "3")})
	if err := l.AppendBatch(gap); err != nil {
		t.Fatalf("AppendBatch with gap: %v", err)
	}
	if got := l.NextOffset(); got != 11 {
		t.Fatalf("NextOffset = %d, want 11", got)
	}
	// Regression below the log end is rejected.
	stale := record.EncodeBatch(5, []record.Record{rec("d", "4")})
	if err := l.AppendBatch(stale); !errors.Is(err, ErrNonMonotonic) {
		t.Fatalf("stale append err = %v, want ErrNonMonotonic", err)
	}
}

func TestReadSpansGap(t *testing.T) {
	l := openTestLog(t, Config{})
	l.AppendBatch(record.EncodeBatch(0, []record.Record{rec("a", "1")}))
	l.AppendBatch(record.EncodeBatch(10, []record.Record{rec("b", "2")}))
	// Reading at an offset inside the gap returns the next batch.
	data, err := l.Read(5, 1024)
	if err != nil {
		t.Fatalf("Read(5): %v", err)
	}
	var got []record.Record
	record.ScanRecords(data, func(r record.Record) error {
		got = append(got, r)
		return nil
	})
	if len(got) != 1 || got[0].Offset != 10 {
		t.Fatalf("got %v, want record at offset 10", got)
	}
}

func TestClosedLogErrors(t *testing.T) {
	l, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]record.Record{rec("k", "v")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed: %v", err)
	}
	if _, err := l.Read(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read on closed: %v", err)
	}
	if l.Close() != nil { // double close is fine
		t.Fatal("double close should be nil")
	}
}

func TestStartOffsetPersistedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Config{SegmentBytes: 256, RetentionBytes: 400, RetentionMs: -1})
	for i := 0; i < 40; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("value-%03d", i))})
	}
	l.EnforceRetention(time.Now())
	start := l.StartOffset()
	l.Close()
	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.StartOffset(); got != start {
		t.Fatalf("StartOffset after reopen = %d, want %d", got, start)
	}
}

func TestLargeBatchExceedingMaxBytesStillReadable(t *testing.T) {
	l := openTestLog(t, Config{})
	big := bytes.Repeat([]byte("x"), 8192)
	l.Append([]record.Record{{Timestamp: 1, Key: []byte("k"), Value: big}})
	// maxBytes far below the batch size: the whole batch is returned anyway.
	data, err := l.Read(0, 64)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	n, err := record.CountRecords(data)
	if err != nil || n != 1 {
		t.Fatalf("CountRecords = %d, %v", n, err)
	}
}

func TestFlushMessagesPolicy(t *testing.T) {
	l := openTestLog(t, Config{FlushMessages: 2})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]record.Record{rec("k", "v")}); err != nil {
			t.Fatal(err)
		}
	}
	// The legacy FlushMessages path must not error; the actual fsync
	// behaviour of every durability policy is asserted through the
	// injectable syncer in TestSyncPolicyMatrix (durability_test.go).
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAppendReadConsistency property-checks that for arbitrary record
// contents, appending then reading returns identical payloads in order.
func TestQuickAppendReadConsistency(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var appended [][]byte
	f := func(vals [][]byte) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 16 {
			vals = vals[:16]
		}
		recs := make([]record.Record, len(vals))
		for i, v := range vals {
			recs[i] = record.Record{Timestamp: 1, Value: v}
			appended = append(appended, v)
		}
		if _, err := l.Append(recs); err != nil {
			return false
		}
		// Verify the complete log contents after every append.
		i := 0
		off := int64(0)
		for {
			data, err := l.Read(off, 1<<20)
			if err != nil || data == nil {
				break
			}
			ok := true
			record.ScanRecords(data, func(r record.Record) error {
				if i >= len(appended) || !bytes.Equal(r.Value, appended[i]) {
					ok = false
				}
				i++
				off = r.Offset + 1
				return nil
			})
			if !ok {
				return false
			}
		}
		return i == len(appended)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsSnapshot(t *testing.T) {
	l := openTestLog(t, Config{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		l.Append([]record.Record{rec("k", fmt.Sprintf("value-%02d", i))})
	}
	segs := l.Segments()
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	if !segs[len(segs)-1].Active {
		t.Fatal("last segment should be active")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].BaseOffset <= segs[i-1].BaseOffset {
			t.Fatal("segments not sorted by base offset")
		}
		if segs[i-1].Active {
			t.Fatal("only last segment may be active")
		}
	}
	// ReadSegment returns parseable data.
	data, err := l.ReadSegment(segs[0].BaseOffset)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := record.CountRecords(data); err != nil || n == 0 {
		t.Fatalf("segment unreadable: n=%d err=%v", n, err)
	}
	if _, err := l.ReadSegment(12345); err == nil {
		t.Fatal("ReadSegment of unknown base should fail")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "bad.log"), []byte("hi"), 0o644) // unparseable base
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if _, err := l.Append([]record.Record{rec("k", "v")}); err != nil {
		t.Fatal(err)
	}
}

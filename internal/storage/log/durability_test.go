package log

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage/record"
)

// --- helpers ---------------------------------------------------------------

// countingSyncer wraps the real fsync with an atomic counter so tests can
// assert each policy's observable sync behaviour.
type countingSyncer struct{ n int64 }

func (c *countingSyncer) sync(f *os.File) error {
	atomic.AddInt64(&c.n, 1)
	return f.Sync()
}

func (c *countingSyncer) count() int64 { return atomic.LoadInt64(&c.n) }

// copyLogDir clones a log directory (segments, checkpoint, start-offset)
// into a fresh temp dir for destructive surgery.
func copyLogDir(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// assertRecords reopens nothing — it scans the open log from offset 0 and
// asserts exactly the given values in order with strictly increasing,
// gap-free offsets (no loss, no duplicates).
func assertRecords(t *testing.T, l *Log, want []string) {
	t.Helper()
	recs := readAll(t, l, 0)
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if string(r.Value) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, r.Value, want[i])
		}
		if r.Offset != int64(i) {
			t.Fatalf("record %d has offset %d (duplicate or gap)", i, r.Offset)
		}
	}
}

// waitDurable appends via SyncWait semantics: resolves when next is durable.
func waitDurable(t *testing.T, l *Log, next int64) {
	t.Helper()
	ch := l.SyncWait(next)
	if ch == nil {
		return
	}
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("SyncWait(%d): %v", next, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("SyncWait(%d): timed out", next)
	}
}

// --- fsync-policy matrix ---------------------------------------------------

// TestSyncPolicyMatrix asserts, for each durability policy, the observable
// sync behaviour through an injected syncer — the assertion that
// TestFlushMessagesPolicy historically could not make portably.
func TestSyncPolicyMatrix(t *testing.T) {
	t.Run("none", func(t *testing.T) {
		cs := &countingSyncer{}
		l := openTestLog(t, Config{Durability: Durability{Policy: SyncNone, Syncer: cs.sync}})
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]record.Record{rec("", fmt.Sprintf("v%d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(50 * time.Millisecond)
		if n := cs.count(); n != 0 {
			t.Fatalf("SyncNone performed %d syncs before close, want 0", n)
		}
		if ch := l.SyncWait(5); ch != nil {
			t.Fatal("SyncNone SyncWait returned a wait channel")
		}
	})

	t.Run("batch", func(t *testing.T) {
		cs := &countingSyncer{}
		l := openTestLog(t, Config{Durability: Durability{Policy: SyncBatch, Syncer: cs.sync}})
		open := cs.count() // Open syncs once to seal the recovered state
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]record.Record{rec("", fmt.Sprintf("v%d", i))}); err != nil {
				t.Fatal(err)
			}
			if got := l.SyncedNext(); got != int64(i+1) {
				t.Fatalf("SyncedNext = %d after append %d, want %d (inline sync)", got, i, i+1)
			}
		}
		if n := cs.count() - open; n < 5 {
			t.Fatalf("SyncBatch performed %d syncs for 5 appends, want >= 5", n)
		}
	})

	t.Run("interval", func(t *testing.T) {
		cs := &countingSyncer{}
		l := openTestLog(t, Config{Durability: Durability{
			Policy: SyncInterval, Interval: 5 * time.Millisecond, Syncer: cs.sync,
		}})
		open := cs.count()
		for i := 0; i < 3; i++ {
			if _, err := l.Append([]record.Record{rec("", fmt.Sprintf("v%d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(2 * time.Second)
		for l.SyncedNext() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := l.SyncedNext(); got < 3 {
			t.Fatalf("background interval sync never covered the appends (SyncedNext=%d)", got)
		}
		if n := cs.count() - open; n < 1 {
			t.Fatalf("SyncInterval performed %d syncs, want >= 1", n)
		}
	})

	t.Run("group", func(t *testing.T) {
		cs := &countingSyncer{}
		l := openTestLog(t, Config{Durability: Durability{
			Policy: SyncGroup, GroupWindow: 5 * time.Millisecond, Syncer: cs.sync,
		}})
		open := cs.count()
		const producers, rounds = 8, 5
		var wg sync.WaitGroup
		errCh := make(chan error, producers*rounds)
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					base, err := l.Append([]record.Record{rec("", fmt.Sprintf("p%d-%d", p, i))})
					if err != nil {
						errCh <- err
						return
					}
					if ch := l.SyncWait(base + 1); ch != nil {
						if err := <-ch; err != nil {
							errCh <- err
							return
						}
					}
					if l.SyncedNext() <= base {
						errCh <- fmt.Errorf("ack released at %d before durable (frontier %d)", base, l.SyncedNext())
						return
					}
				}
			}(p)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		appends := int64(producers * rounds)
		if n := cs.count() - open; n == 0 || n > appends/2 {
			t.Fatalf("group commit performed %d syncs for %d acked appends, want amortized (1..%d)", n, appends, appends/2)
		}
	})
}

// --- checkpointed recovery -------------------------------------------------

// TestCheckpointTrustedPrefixSkipsScan proves recovery honours the
// checkpoint in both directions: bytes below the checkpointed frontier are
// trusted without a CRC scan (corruption there goes unnoticed — exactly the
// "scan only the unsynced tail" contract), while without a checkpoint the
// full scan catches the same corruption and truncates at it.
func TestCheckpointTrustedPrefixSkipsScan(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Durability: Durability{Policy: SyncGroup, GroupWindow: time.Millisecond}}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64 // byte end position of each batch
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]record.Record{rec("", fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Segments()[0].Size)
	}
	waitDurable(t, l, 3)
	cp, ok := ReadCheckpoint(dir)
	if !ok {
		t.Fatal("no checkpoint after group commit")
	}
	if cp.SyncedNext != 3 || cp.SyncedBytes != ends[2] {
		t.Fatalf("checkpoint = %+v, want next=3 bytes=%d", cp, ends[2])
	}
	if err := l.CrashClose(); err != nil {
		t.Fatal(err)
	}

	// Corrupt a CRC-covered payload byte of the middle batch (inside the
	// trusted prefix). Payload, not header: recovery still walks batch
	// headers in the trusted region to rebuild the offset index, so only
	// CRC-detectable body corruption distinguishes "scan" from "trust".
	seg := segmentPath(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[ends[1]-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// With the checkpoint in place, recovery trusts the prefix: all three
	// offsets come back, corruption unnoticed — the scan was skipped.
	l, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextOffset(); got != 3 {
		t.Fatalf("checkpointed recovery NextOffset = %d, want 3 (trusted prefix not rescanned)", got)
	}
	if err := l.CrashClose(); err != nil {
		t.Fatal(err)
	}

	// Without the checkpoint the full CRC scan catches it and truncates
	// everything from the corrupted batch on.
	if err := os.Remove(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.NextOffset(); got != 1 {
		t.Fatalf("full-scan recovery NextOffset = %d, want 1 (truncated at corruption)", got)
	}
	assertRecords(t, l, []string{"v0"})
}

// TestCrashRecoveryUnsyncedTailTruncated models the real crash: group-commit
// acks some batches, more arrive unsynced, the process dies and the page
// cache is lost (file surgery truncates back to the checkpointed frontier
// and leaves torn garbage). Recovery must keep every acked batch, truncate
// exactly the unsynced torn tail, and never duplicate offsets.
func TestCrashRecoveryUnsyncedTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Durability: Durability{Policy: SyncGroup, GroupWindow: 2 * time.Millisecond}}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acked := []string{"a0", "a1", "a2"}
	for _, v := range acked {
		if _, err := l.Append([]record.Record{rec("", v)}); err != nil {
			t.Fatal(err)
		}
	}
	waitDurable(t, l, int64(len(acked))) // acked: durable by contract
	// Unacked appends the crash may lose.
	for i := 0; i < 2; i++ {
		if _, err := l.Append([]record.Record{rec("", fmt.Sprintf("u%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CrashClose(); err != nil {
		t.Fatal(err)
	}

	cp, ok := ReadCheckpoint(dir)
	if !ok {
		t.Fatal("no checkpoint")
	}
	if cp.SyncedNext < int64(len(acked)) {
		t.Fatalf("checkpoint next %d below acked %d: ack released before checkpoint", cp.SyncedNext, len(acked))
	}
	// The crash: unsynced page-cache bytes vanish, and the last in-flight
	// write tears.
	seg := segmentPath(dir, cp.SegmentBase)
	if err := os.Truncate(seg, cp.SyncedBytes); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-garbage-torn-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.NextOffset(); got != cp.SyncedNext {
		t.Fatalf("recovered NextOffset = %d, want %d (exactly the synced frontier)", got, cp.SyncedNext)
	}
	assertRecords(t, l, acked[:cp.SyncedNext])
}

// TestCrashBetweenFsyncAndCheckpoint kills the checkpoint write (via the
// injection hook) after the fdatasync has landed: the stale checkpoint must
// degrade recovery to a CRC scan of the tail — keeping every synced batch —
// never lose acked data.
func TestCrashBetweenFsyncAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var dropCheckpoints atomic.Bool
	cfg := Config{Durability: Durability{
		Policy:      SyncGroup,
		GroupWindow: time.Millisecond,
		CheckpointHook: func() error {
			if dropCheckpoints.Load() {
				return errors.New("crash before checkpoint write")
			}
			return nil
		},
	}}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]record.Record{rec("", "early")}); err != nil {
		t.Fatal(err)
	}
	waitDurable(t, l, 1) // checkpoint now covers offset 1
	dropCheckpoints.Store(true)
	late := []string{"late0", "late1", "late2"}
	for _, v := range late {
		if _, err := l.Append([]record.Record{rec("", v)}); err != nil {
			t.Fatal(err)
		}
	}
	// The fdatasync lands (acks release) but the checkpoint write "crashes".
	waitDurable(t, l, 4)
	if err := l.CrashClose(); err != nil {
		t.Fatal(err)
	}
	cp, ok := ReadCheckpoint(dir)
	if !ok || cp.SyncedNext != 1 {
		t.Fatalf("checkpoint = %+v, ok=%v; want stale next=1", cp, ok)
	}

	l, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.NextOffset(); got != 4 {
		t.Fatalf("recovered NextOffset = %d, want 4 (synced tail beyond stale checkpoint kept)", got)
	}
	assertRecords(t, l, append([]string{"early"}, late...))
}

// TestTruncateInvalidatesCheckpoint: follower reconciliation truncates the
// log; the checkpoint (whose byte positions describe the pre-truncation
// file) must not survive to poison the next recovery.
func TestTruncateInvalidatesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Durability: Durability{Policy: SyncGroup, GroupWindow: time.Millisecond}}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]record.Record{rec("", fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	waitDurable(t, l, 4)
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadCheckpoint(dir); ok {
		t.Fatal("checkpoint survived a truncation")
	}
	if got := l.SyncedNext(); got > 2 {
		t.Fatalf("SyncedNext = %d after Truncate(2)", got)
	}
	if err := l.CrashClose(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.NextOffset(); got != 2 {
		t.Fatalf("NextOffset after truncate+reopen = %d, want 2", got)
	}
	assertRecords(t, l, []string{"v0", "v1"})
}

// --- torn writes -----------------------------------------------------------

// TestTornWriteEveryByteBoundary truncates the segment at every byte
// boundary of the last batch and corrupts every CRC-relevant byte of it,
// asserting recovery always truncates exactly the torn batch: earlier
// batches survive, offsets never duplicate, and the log reopens writable.
func TestTornWriteEveryByteBoundary(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	keep := []string{"k0", "k1"}
	for _, v := range keep {
		if _, err := l.Append([]record.Record{rec("", v)}); err != nil {
			t.Fatal(err)
		}
	}
	lastStart := l.Segments()[0].Size
	if _, err := l.Append([]record.Record{rec("", "torn")}); err != nil {
		t.Fatal(err)
	}
	size := l.Segments()[0].Size
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func(t *testing.T, dir string) {
		t.Helper()
		rl, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer rl.Close()
		if got := rl.NextOffset(); got != int64(len(keep)) {
			t.Fatalf("NextOffset = %d, want %d (torn batch truncated)", got, len(keep))
		}
		assertRecords(t, rl, keep)
		// The recovered log must append cleanly where the tear was cut.
		if base, err := rl.Append([]record.Record{rec("", "after")}); err != nil || base != int64(len(keep)) {
			t.Fatalf("append after recovery: base=%d err=%v", base, err)
		}
	}

	// Truncation at every byte boundary of the last batch (a partial
	// write of any length).
	for cut := lastStart; cut < size; cut++ {
		cdir := copyLogDir(t, dir)
		if err := os.Truncate(segmentPath(cdir, 0), cut); err != nil {
			t.Fatal(err)
		}
		reopen(t, cdir)
	}

	// Corruption at every byte position of the last batch from the length
	// field on. (The first 8 bytes are the base-offset prefix, which is
	// outside CRC coverage by design — leaders restamp it in place — so
	// its corruption is caught by the offset-regression check only when
	// offsets regress, not guaranteed for arbitrary flips.)
	for pos := lastStart + 8; pos < size; pos++ {
		cdir := copyLogDir(t, dir)
		seg := segmentPath(cdir, 0)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[pos] ^= 0xFF
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		reopen(t, cdir)
	}
}

// TestRecoveryIdempotent reopens a recovered log repeatedly, asserting the
// recovery scan converges (no further truncation, no offset drift).
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Durability: Durability{Policy: SyncBatch}}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := []string{"a", "b", "c"}
	for _, v := range vals {
		if _, err := l.Append([]record.Record{rec("", v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CrashClose(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := l.NextOffset(); got != 3 {
			t.Fatalf("reopen %d: NextOffset = %d, want 3", i, got)
		}
		assertRecords(t, l, vals)
		if err := l.CrashClose(); err != nil {
			t.Fatal(err)
		}
	}
}

package log

import (
	"testing"

	"repro/internal/storage/record"
)

func benchLog(b *testing.B) *Log {
	b.Helper()
	l, err := Open(b.TempDir(), Config{SegmentBytes: 64 << 20, RetentionMs: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

func BenchmarkAppend64x512(b *testing.B) {
	l := benchLog(b)
	value := make([]byte, 512)
	recs := make([]record.Record, 64)
	b.ReportAllocs()
	b.SetBytes(64 * 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j] = record.Record{Timestamp: 1, Value: value}
		}
		if _, err := l.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialRead(b *testing.B) {
	l := benchLog(b)
	value := make([]byte, 512)
	recs := make([]record.Record, 64)
	for j := range recs {
		recs[j] = record.Record{Timestamp: 1, Value: value}
	}
	for i := 0; i < 256; i++ {
		if _, err := l.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	end := l.NextOffset()
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		off := int64(0)
		for off < end {
			data, err := l.Read(off, 1<<20)
			if err != nil || len(data) == 0 {
				break
			}
			total += int64(len(data))
			info, err := record.PeekBatchInfo(data[len(data)-lastBatch(data):])
			if err != nil {
				b.Fatal(err)
			}
			off = info.LastOffset + 1
		}
	}
	b.SetBytes(total / int64(b.N))
}

// lastBatch returns the length of the final complete batch in data.
func lastBatch(data []byte) int {
	pos, last := 0, 0
	for pos < len(data) {
		n, err := record.PeekBatchLen(data[pos:])
		if err != nil {
			break
		}
		last = n
		pos += n
	}
	return last
}

func BenchmarkRandomRead(b *testing.B) {
	l := benchLog(b)
	value := make([]byte, 512)
	recs := make([]record.Record, 64)
	for j := range recs {
		recs[j] = record.Record{Timestamp: 1, Value: value}
	}
	for i := 0; i < 256; i++ {
		l.Append(recs)
	}
	end := l.NextOffset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * 7919) % end
		if _, err := l.Read(off, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSealedCompressed measures the broker's compressed produce
// path: restamp + verbatim write, no decode, no recompression.
func BenchmarkAppendSealedCompressed(b *testing.B) {
	l := benchLog(b)
	value := make([]byte, 512)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	recs := make([]record.Record, 64)
	for j := range recs {
		recs[j] = record.Record{Timestamp: 1, Value: value}
	}
	sealed, err := record.Compress(record.EncodeBatch(0, recs), record.CodecFlate)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(64 * 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := append([]byte(nil), sealed...) // producer's fresh bytes
		if _, err := l.AppendSealed(batch); err != nil {
			b.Fatal(err)
		}
	}
}

package log

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// SyncPolicy selects when appended batches are made durable (fsynced). The
// broker maps producer acks onto the configured policy: under SyncGroup,
// produces with acks>=1 are not acknowledged until their offsets are covered
// by a group fdatasync.
type SyncPolicy int8

const (
	// SyncNone leaves flushing to the OS page cache (plus the legacy
	// FlushMessages counter and segment-roll syncs). Acks never wait for
	// durability. This is the zero value and the paper's default (§4.1).
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs from a background goroutine every Interval.
	// Acks do not wait; a crash loses at most one interval of appends.
	SyncInterval
	// SyncBatch fsyncs inline after every appended batch — maximum
	// durability, one fdatasync per batch.
	SyncBatch
	// SyncGroup batches many in-flight appends behind one fdatasync: the
	// first append after a sync opens a commit window (GroupWindow long,
	// cut short when GroupBytes accumulate); everything appended inside it
	// is covered by a single fdatasync, and SyncWait lets producers defer
	// their acks until that sync lands.
	SyncGroup
)

// String names the policy for tables and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncBatch:
		return "batch"
	case SyncGroup:
		return "group"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int8(p))
	}
}

// Durability defaults used when fields are zero.
const (
	DefaultSyncInterval = 50 * time.Millisecond
	DefaultGroupWindow  = 2 * time.Millisecond
	DefaultGroupBytes   = 4 << 20 // 4 MiB
)

// Durability is the log's WAL discipline: when appends are fsynced, and how
// recovery uses the persisted checkpoint to avoid rescanning synced data.
type Durability struct {
	// Policy selects the sync discipline; see SyncPolicy.
	Policy SyncPolicy
	// Interval is the background sync period for SyncInterval (default
	// DefaultSyncInterval). SyncGroup also runs no timer beyond its
	// window, so Interval is ignored there.
	Interval time.Duration
	// GroupWindow is how long a group commit waits for more appends to
	// pile in behind the pending fdatasync (default DefaultGroupWindow).
	GroupWindow time.Duration
	// GroupBytes cuts a commit window short once this many unsynced bytes
	// accumulate (default DefaultGroupBytes).
	GroupBytes int64
	// Syncer overrides how a segment file is synced (default fdatasync on
	// Linux, Sync elsewhere). Tests inject counting or failing syncers to
	// assert the observable sync behaviour of each policy; benchmarks
	// inject a modeled disk barrier.
	Syncer func(*os.File) error
	// CheckpointHook, when set, runs before each checkpoint file write; a
	// non-nil error skips the write. Crash tests use it to simulate dying
	// between the fdatasync and the checkpoint update.
	CheckpointHook func() error
}

func (d Durability) withDefaults() Durability {
	if d.Interval == 0 {
		d.Interval = DefaultSyncInterval
	}
	if d.GroupWindow == 0 {
		d.GroupWindow = DefaultGroupWindow
	}
	if d.GroupBytes == 0 {
		d.GroupBytes = DefaultGroupBytes
	}
	return d
}

// errSyncTruncated resolves sync waiters whose awaited offsets were removed
// by a truncation (leader change reconciliation) before becoming durable.
var errSyncTruncated = errors.New("log: truncated below awaited offset")

// syncWaiter parks a producer ack behind the durability frontier: ch
// receives nil once offsets below next are fsynced.
type syncWaiter struct {
	next int64
	ch   chan error
}

// syncFile syncs one segment file under the configured syncer, feeding the
// fsync count and latency series when metrics are wired.
func (l *Log) syncFile(f *os.File) error {
	var start time.Time
	if l.met != nil {
		start = time.Now()
	}
	var err error
	if s := l.cfg.Durability.Syncer; s != nil {
		err = s(f)
	} else {
		err = fdatasync(f)
	}
	if l.met != nil {
		l.met.fsyncs.Inc()
		l.met.fsyncNs.ObserveSince(start)
	}
	return err
}

// SyncedNext returns the durability frontier: every offset below it has been
// fsynced (or was recovered from disk at open, which proves it survived).
func (l *Log) SyncedNext() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.syncedNext
}

// SyncWait returns a channel that receives nil once every offset below next
// is durable under the log's sync policy, or an error if the log closes or
// truncates first. It returns nil when no wait is needed — the offsets are
// already durable, or the policy acknowledges without waiting (everything
// except SyncGroup; SyncBatch syncs inline before the append returns).
func (l *Log) SyncWait(next int64) <-chan error {
	if l.cfg.Durability.Policy != SyncGroup {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		ch := make(chan error, 1)
		ch <- ErrClosed
		return ch
	}
	if next <= l.syncedNext {
		return nil
	}
	ch := make(chan error, 1)
	l.syncWaiters = append(l.syncWaiters, syncWaiter{next: next, ch: ch})
	return ch
}

// noteDirtyLocked records n freshly appended unsynced bytes and, under
// SyncGroup, kicks the committer (urgently once GroupBytes accumulate).
func (l *Log) noteDirtyLocked(n int64) {
	if !l.dirty {
		// Clean→dirty transition: start the durability-lag clock health
		// checks read (how long the oldest unsynced append has waited).
		l.dirtySinceNano.Store(time.Now().UnixNano())
	}
	l.dirty = true
	l.unsyncedBytes += n
	if l.cfg.Durability.Policy == SyncGroup {
		select {
		case l.syncKick <- struct{}{}:
		default:
		}
		if l.unsyncedBytes >= l.cfg.Durability.GroupBytes {
			select {
			case l.syncUrgent <- struct{}{}:
			default:
			}
		}
	}
}

// advanceSyncedLocked raises the durability frontier and resolves every
// waiter it now covers.
func (l *Log) advanceSyncedLocked(next int64) {
	if next > l.syncedNext {
		l.syncedNext = next
	}
	if len(l.syncWaiters) == 0 {
		return
	}
	kept := l.syncWaiters[:0]
	for _, w := range l.syncWaiters {
		if w.next <= l.syncedNext {
			w.ch <- nil
		} else {
			kept = append(kept, w)
		}
	}
	l.syncWaiters = kept
}

// failSyncWaitersLocked resolves every pending waiter with err.
func (l *Log) failSyncWaitersLocked(err error) {
	for _, w := range l.syncWaiters {
		w.ch <- err
	}
	l.syncWaiters = nil
}

// startCommitter launches the background sync goroutine the policy needs.
func (l *Log) startCommitter() {
	switch l.cfg.Durability.Policy {
	case SyncGroup:
		l.syncWG.Add(1)
		go l.groupLoop()
	case SyncInterval:
		l.syncWG.Add(1)
		go l.intervalLoop()
	}
}

// stopCommitter stops the background sync goroutine and waits for it.
func (l *Log) stopCommitter() {
	l.stopOnce.Do(func() { close(l.stopSync) })
	l.syncWG.Wait()
}

// groupLoop is the SyncGroup committer: each kick (first unsynced append)
// opens a commit window; the window closes after GroupWindow or as soon as
// GroupBytes accumulate, and one fdatasync then covers every append that
// landed inside it.
func (l *Log) groupLoop() {
	defer l.syncWG.Done()
	window := l.cfg.Durability.GroupWindow
	for {
		select {
		case <-l.stopSync:
			return
		case <-l.syncKick:
		}
		t := time.NewTimer(window)
		select {
		case <-l.stopSync:
			t.Stop()
			return
		case <-l.syncUrgent:
			t.Stop()
		case <-t.C:
		}
		l.syncNow()
	}
}

// intervalLoop is the SyncInterval committer.
func (l *Log) intervalLoop() {
	defer l.syncWG.Done()
	t := time.NewTicker(l.cfg.Durability.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.syncNow()
		}
	}
}

// syncNow makes everything appended so far durable: one fdatasync of the
// active segment covers every batch since the last sync (rolled segments are
// synced at roll time), then the checkpoint records the new frontier so
// recovery scans only bytes written after it. The fsync itself runs outside
// l.mu — appends proceed concurrently; anything they add is simply not
// covered until the next sync.
func (l *Log) syncNow() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !l.dirty {
		l.mu.Unlock()
		return nil
	}
	a := l.active()
	f := a.file
	cp := checkpoint{base: a.baseOffset, pos: a.size, next: a.nextOffset}
	psnap := l.snapshotProducersLocked()
	gen := l.truncGen
	batched := l.unsyncedBytes
	l.dirty = false
	l.dirtySinceNano.Store(0)
	l.unsyncedBytes = 0
	l.mu.Unlock()
	if l.met != nil && batched > 0 {
		// One fdatasync covers this many appended bytes: the group-commit
		// batch size distribution.
		l.met.groupBytes.Observe(batched)
	}

	if err := l.syncFile(f); err != nil {
		l.mu.Lock()
		if l.truncGen == gen {
			// A sync raced by segment surgery (truncate closed the file
			// under us) is stale, not failed; otherwise surface the error
			// to every parked ack and retry on the next kick.
			l.dirty = true
			l.dirtySinceNano.CompareAndSwap(0, time.Now().UnixNano())
			l.failSyncWaitersLocked(err)
		}
		l.mu.Unlock()
		return err
	}
	l.persistCheckpoint(cp, gen)
	// The producer snapshot rides alongside the checkpoint: it describes
	// the same synced prefix, so recovery can seed the dedup table and
	// rescan only the tail the checkpoint does not cover.
	l.persistProducerSnapshot(psnap, gen)
	l.mu.Lock()
	if l.truncGen == gen {
		l.advanceSyncedLocked(cp.next)
	}
	l.mu.Unlock()
	l.lastSyncNano.Store(time.Now().UnixNano())
	return nil
}

// LastSyncTime returns when the log last made its contents durable (sync +
// checkpoint, or recovery at open). The zero time means never.
func (l *Log) LastSyncTime() time.Time {
	n := l.lastSyncNano.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// DurabilityLag reports how long the oldest unsynced append has been waiting
// for an fsync: 0 when everything appended is durable. Health checks alarm
// on this exceeding the configured sync cadence by a wide margin.
func (l *Log) DurabilityLag(now time.Time) time.Duration {
	n := l.dirtySinceNano.Load()
	if n == 0 {
		return 0
	}
	d := now.Sub(time.Unix(0, n))
	if d < 0 {
		return 0
	}
	return d
}

// Checkpoint file: the persisted durability frontier. Format is a single
// line "liquidcp v1 <segmentBase> <syncedBytes> <nextOffset> <crc32>"; the
// CRC self-guards the checkpoint against its own torn write (an invalid
// checkpoint just degrades recovery to a full scan, never to data loss).
const checkpointFile = "checkpoint"

type checkpoint struct {
	base int64 // active segment base offset at sync time
	pos  int64 // bytes of that segment covered by the sync
	next int64 // log end offset covered by the sync
}

func checkpointCRC(cp checkpoint) uint32 {
	return crc32.ChecksumIEEE([]byte(fmt.Sprintf("%d %d %d", cp.base, cp.pos, cp.next)))
}

func writeCheckpointFile(dir string, cp checkpoint) error {
	payload := fmt.Sprintf("liquidcp v1 %d %d %d %d\n", cp.base, cp.pos, cp.next, checkpointCRC(cp))
	tmp := filepath.Join(dir, checkpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, checkpointFile))
}

func readCheckpointFile(dir string) (checkpoint, bool) {
	b, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		return checkpoint{}, false
	}
	var cp checkpoint
	var crc uint32
	if _, err := fmt.Sscanf(string(b), "liquidcp v1 %d %d %d %d", &cp.base, &cp.pos, &cp.next, &crc); err != nil {
		return checkpoint{}, false
	}
	if crc != checkpointCRC(cp) || cp.base < 0 || cp.pos < 0 || cp.next < cp.base {
		return checkpoint{}, false
	}
	return cp, true
}

// persistCheckpoint writes the checkpoint file unless a truncation (or
// close) has invalidated the snapshot since it was taken — a stale
// checkpoint would let recovery trust bytes a truncate has since rewritten.
// Never call while holding l.mu (cpMu is acquired before l.mu here).
func (l *Log) persistCheckpoint(cp checkpoint, gen uint64) error {
	if hook := l.cfg.Durability.CheckpointHook; hook != nil {
		if err := hook(); err != nil {
			return err
		}
	}
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	l.mu.RLock()
	stale := l.truncGen != gen
	l.mu.RUnlock()
	if stale {
		return nil
	}
	return writeCheckpointFile(l.dir, cp)
}

// CheckpointInfo is the persisted durability frontier of a log directory.
type CheckpointInfo struct {
	SegmentBase int64 // active segment base at the recorded sync
	SyncedBytes int64 // bytes of that segment covered
	SyncedNext  int64 // log end offset covered
}

// ReadCheckpoint reads dir's durability checkpoint, reporting ok=false when
// absent or invalid (recovery then falls back to a full CRC scan).
func ReadCheckpoint(dir string) (CheckpointInfo, bool) {
	cp, ok := readCheckpointFile(dir)
	if !ok {
		return CheckpointInfo{}, false
	}
	return CheckpointInfo{SegmentBase: cp.base, SyncedBytes: cp.pos, SyncedNext: cp.next}, true
}

// CrashClose closes the log's file descriptors without flushing anything —
// the shutdown a power loss or SIGKILL produces, for recovery tests. Buffers
// the OS holds are NOT discarded (Go cannot drop the page cache), so tests
// pair this with file surgery that truncates back to the synced frontier.
// The instance is unusable afterwards.
func (l *Log) CrashClose() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.stopCommitter()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failSyncWaitersLocked(ErrClosed)
	var first error
	for _, s := range l.segments {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

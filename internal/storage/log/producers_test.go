package log

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage/record"
)

// stampedBatch encodes values into one sealed batch carrying producer
// stamps, the shape an idempotent client hands to AppendSealed.
func stampedBatch(t *testing.T, pid int64, epoch int32, seq int64, vals ...string) []byte {
	t.Helper()
	recs := make([]record.Record, len(vals))
	for i, v := range vals {
		recs[i] = record.Record{Timestamp: 1, Value: []byte(v)}
	}
	b := record.EncodeBatch(0, recs)
	if err := record.StampProducer(b, pid, epoch, seq); err != nil {
		t.Fatal(err)
	}
	return b
}

// sendStamped appends a fresh copy of the batch (AppendSealed restamps the
// base offset in place, so retries must resend their own bytes).
func sendStamped(l *Log, batch []byte) (int64, error) {
	return l.AppendSealed(append([]byte(nil), batch...))
}

// mustDup asserts the append was deduplicated onto [base, last].
func mustDup(t *testing.T, err error, base, last int64) {
	t.Helper()
	var dup *DupSequenceError
	if !errors.As(err, &dup) {
		t.Fatalf("want DupSequenceError, got %v", err)
	}
	if dup.BaseOffset != base || dup.LastOffset != last {
		t.Fatalf("dup span [%d,%d], want [%d,%d]", dup.BaseOffset, dup.LastOffset, base, last)
	}
}

// TestIdempotentDedupFencingAndSequencing drives the leader-side producer
// table through its full classification: retries dedup onto the original
// offsets, sequence gaps and unverifiable resends are rejected, and stale
// epochs are fenced once a newer instance produced.
func TestIdempotentDedupFencingAndSequencing(t *testing.T) {
	l := openTestLog(t, Config{})

	b0 := stampedBatch(t, 7, 0, 0, "a", "b", "c")
	base, err := sendStamped(l, b0)
	if err != nil || base != 0 {
		t.Fatalf("first append: base=%d err=%v", base, err)
	}
	// The classic resend window: the ack died, the producer resends the
	// identical batch. It must land on the original offsets, appending
	// nothing.
	_, err = sendStamped(l, b0)
	mustDup(t, err, 0, 2)
	if l.NextOffset() != 3 {
		t.Fatalf("NextOffset = %d after dedup, want 3", l.NextOffset())
	}

	b1 := stampedBatch(t, 7, 0, 3, "d", "e")
	if base, err = sendStamped(l, b1); err != nil || base != 3 {
		t.Fatalf("second append: base=%d err=%v", base, err)
	}
	// An older batch still in the window remains dedupable.
	_, err = sendStamped(l, b0)
	mustDup(t, err, 0, 2)

	// A sequence gap means a predecessor batch was lost: reject.
	if _, err := sendStamped(l, stampedBatch(t, 7, 0, 10, "x")); !errors.Is(err, ErrOutOfOrderSequence) {
		t.Fatalf("gap: got %v, want ErrOutOfOrderSequence", err)
	}
	// A resend whose record count disagrees with the appended batch is not
	// a retry of anything we have: reject rather than mis-dedup.
	if _, err := sendStamped(l, stampedBatch(t, 7, 0, 0, "a")); !errors.Is(err, ErrOutOfOrderSequence) {
		t.Fatalf("mismatched resend: got %v, want ErrOutOfOrderSequence", err)
	}

	// A new instance of the producer (higher epoch) starts at sequence 0;
	// the zombie's epoch is fenced from then on.
	if base, err = sendStamped(l, stampedBatch(t, 7, 1, 0, "f")); err != nil || base != 5 {
		t.Fatalf("epoch bump: base=%d err=%v", base, err)
	}
	if _, err := sendStamped(l, stampedBatch(t, 7, 0, 5, "zombie")); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("zombie: got %v, want ErrFencedEpoch", err)
	}

	// Unknown producers are always accepted: the table is a bounded cache.
	if base, err = sendStamped(l, stampedBatch(t, 99, 4, 1000, "g")); err != nil || base != 6 {
		t.Fatalf("unknown pid: base=%d err=%v", base, err)
	}
	// Unstamped batches bypass the table entirely.
	if _, err := l.AppendSealed(record.EncodeBatch(0, []record.Record{{Timestamp: 1, Value: []byte("plain")}})); err != nil {
		t.Fatalf("unstamped: %v", err)
	}
}

// TestIdempotentDedupSpansSplitBatches: an oversized uncompressed idempotent
// batch is split into stamped sub-batches on append (segment sizing must
// keep working), and a retry of the WHOLE original batch still dedups — the
// check matches its sequence range against the contiguous split entries.
func TestIdempotentDedupSpansSplitBatches(t *testing.T) {
	l := openTestLog(t, Config{MaxBatchBytes: 600})

	vals := make([]string, 8)
	for i := range vals {
		vals[i] = string(bytes.Repeat([]byte{byte('a' + i)}, 192))
	}
	big := stampedBatch(t, 3, 0, 0, vals...)
	if int64(len(big)) <= 600 {
		t.Fatalf("test batch too small: %dB", len(big))
	}
	if base, err := sendStamped(l, big); err != nil || base != 0 {
		t.Fatalf("append: base=%d err=%v", base, err)
	}
	if l.NextOffset() != 8 {
		t.Fatalf("NextOffset = %d, want 8", l.NextOffset())
	}
	data, err := l.Read(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	nbatches := 0
	for off := 0; off < len(data); {
		info, err := record.PeekBatchInfo(data[off:])
		if err != nil {
			t.Fatal(err)
		}
		nbatches++
		if !info.Idempotent() {
			t.Fatalf("split sub-batch at %d lost its producer stamps", info.BaseOffset)
		}
		off += info.Length
	}
	if nbatches < 2 {
		t.Fatalf("stored as %d batch(es), want a split", nbatches)
	}

	// The retry resends the original oversized batch; its range [0,7]
	// spans every split entry and must dedup onto the whole span.
	_, err = sendStamped(l, big)
	mustDup(t, err, 0, 7)
	if l.NextOffset() != 8 {
		t.Fatalf("NextOffset = %d after dedup, want 8", l.NextOffset())
	}
}

// TestProducerStateRebuiltFromScan: with no snapshot on disk the table is
// rebuilt by header-walking the recovered log, so a retry that straddles a
// broker restart still dedups.
func TestProducerStateRebuiltFromScan(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := stampedBatch(t, 5, 2, 0, "a", "b")
	b1 := stampedBatch(t, 5, 2, 2, "c")
	if _, err := sendStamped(l, b0); err != nil {
		t.Fatal(err)
	}
	if _, err := sendStamped(l, b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Forget everything the shutdown persisted: recovery must not depend
	// on a snapshot (or a checkpoint) existing.
	os.Remove(filepath.Join(dir, producerSnapshotFile))
	os.Remove(filepath.Join(dir, checkpointFile))

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, err = sendStamped(l2, b0)
	mustDup(t, err, 0, 1)
	_, err = sendStamped(l2, b1)
	mustDup(t, err, 2, 2)
	// The epoch survived the rebuild too: a stale instance stays fenced...
	if _, err := sendStamped(l2, stampedBatch(t, 5, 1, 3, "stale")); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("stale epoch after rebuild: got %v, want ErrFencedEpoch", err)
	}
	// ...and the live one continues where it left off.
	if base, err := sendStamped(l2, stampedBatch(t, 5, 2, 3, "d")); err != nil || base != 3 {
		t.Fatalf("continue after rebuild: base=%d err=%v", base, err)
	}
}

// TestProducerStateSnapshotPlusTailRescan: a crash image holding a producer
// snapshot that covers only a prefix (the PR 7 checkpoint flow) recovers by
// seeding the table from the snapshot and header-walking just the tail —
// retries of prefix AND tail batches both dedup after reopen.
func TestProducerStateSnapshotPlusTailRescan(t *testing.T) {
	dir := t.TempDir()
	// Checkpoints (and producer snapshots) persist under explicit sync
	// policies only.
	l, err := Open(dir, Config{Durability: Durability{Policy: SyncBatch}})
	if err != nil {
		t.Fatal(err)
	}
	b0 := stampedBatch(t, 11, 0, 0, "a", "b", "c")
	if _, err := sendStamped(l, b0); err != nil {
		t.Fatal(err)
	}
	// Flush persists the durability checkpoint and the producer snapshot
	// covering offset 3.
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, producerSnapshotFile)); err != nil {
		t.Fatalf("flush did not persist the producer snapshot: %v", err)
	}
	// The tail lands after the snapshot and is never flushed again.
	b1 := stampedBatch(t, 11, 0, 3, "d", "e")
	if _, err := sendStamped(l, b1); err != nil {
		t.Fatal(err)
	}
	crash := copyLogDir(t, dir)
	l.Close()

	l2, err := Open(crash, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextOffset(); got != 5 {
		t.Fatalf("NextOffset after crash recovery = %d, want 5", got)
	}
	_, err = sendStamped(l2, b0)
	mustDup(t, err, 0, 2)
	_, err = sendStamped(l2, b1)
	mustDup(t, err, 3, 4)
	if base, err := sendStamped(l2, stampedBatch(t, 11, 0, 5, "f")); err != nil || base != 5 {
		t.Fatalf("continue after recovery: base=%d err=%v", base, err)
	}
}

// TestTornWriteResendAppendsAfterTruncation: a batch torn by a crash is
// truncated away on recovery — so when the producer retries it (it never
// got the ack), the retry must APPEND, not dedup: the stale snapshot
// written at shutdown covers offsets the recovered log no longer has and
// has to be discarded, or the table would claim a batch the log lost.
func TestTornWriteResendAppendsAfterTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b0 := stampedBatch(t, 4, 0, 0, "a", "b", "c")
	b1 := stampedBatch(t, 4, 0, 3, "d", "e")
	if _, err := sendStamped(l, b0); err != nil {
		t.Fatal(err)
	}
	if _, err := sendStamped(l, b1); err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear b1: chop half of the last batch off the segment file. The
	// snapshot Close wrote covers offset 5 — now a lie.
	path := segmentPath(dir, segs[0].BaseOffset)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b1len, err := record.PeekBatchLen(b1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-b1len/2], 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, checkpointFile)) // the tail was never durable

	l2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextOffset(); got != 3 {
		t.Fatalf("NextOffset after torn recovery = %d, want 3", got)
	}
	// The producer retries b1 — the broker must take it as new data at
	// offset 3. Deduping here would acknowledge records the log lost.
	base, err := sendStamped(l2, b1)
	if err != nil || base != 3 {
		t.Fatalf("resend after truncation: base=%d err=%v", base, err)
	}
	// b0 survived intact and still dedups.
	_, err = sendStamped(l2, b0)
	mustDup(t, err, 0, 2)
	vals := []string{}
	for _, r := range readAll(t, l2, 0) {
		vals = append(vals, string(r.Value))
	}
	want := fmt.Sprint([]string{"a", "b", "c", "d", "e"})
	if fmt.Sprint(vals) != want {
		t.Fatalf("recovered values %v, want %v", vals, want)
	}
}

// TestTruncateRewindsProducerTable: an explicit suffix truncation (follower
// reconciliation) rewinds the table with the log — sequences above the cut
// are forgotten, so the leader's re-replicated batches append cleanly.
func TestTruncateRewindsProducerTable(t *testing.T) {
	l := openTestLog(t, Config{})
	b0 := stampedBatch(t, 6, 0, 0, "a", "b")
	b1 := stampedBatch(t, 6, 0, 2, "c", "d")
	if _, err := sendStamped(l, b0); err != nil {
		t.Fatal(err)
	}
	if _, err := sendStamped(l, b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	// b1 is gone from the log; its resend must append, not dedup.
	base, err := sendStamped(l, b1)
	if err != nil || base != 2 {
		t.Fatalf("resend after Truncate: base=%d err=%v", base, err)
	}
	_, err = sendStamped(l, b0)
	mustDup(t, err, 0, 1)
}

package log

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage/record"
)

// Producer-state table: the broker-side half of idempotent produce. Every
// batch stamped with a (producerID, epoch, baseSequence) is recorded here as
// it is appended — by the leader, by a follower replicating the leader's
// bytes, or by the recovery scan re-reading batch headers after a restart —
// so the table is always derivable from the log itself. The leader consults
// it before appending: a retried batch (same producer, same sequence range)
// is answered with the offsets of the original append instead of being
// appended again, an unexpected sequence is rejected, and a batch from a
// producer epoch older than the newest one seen is fenced.
//
// The table is bounded: per producer it keeps the current epoch and the last
// maxProducerBatches appended batches. That window is what makes retry dedup
// exact — a producer retries the batch it just sent, not one from an hour
// ago — while keeping the table O(producers), not O(log).

// maxProducerBatches is the per-producer dedup window: how many recently
// appended batches the leader can still recognise as duplicates.
const maxProducerBatches = 5

// Errors returned by AppendSealed for idempotent batches. The broker maps
// them to the corresponding wire codes.
var (
	// ErrOutOfOrderSequence rejects a batch whose base sequence is neither
	// the next expected one nor a recent duplicate.
	ErrOutOfOrderSequence = errors.New("log: out-of-order producer sequence")
	// ErrFencedEpoch rejects a batch from a producer epoch older than the
	// newest epoch seen for that producer id.
	ErrFencedEpoch = errors.New("log: producer epoch fenced")
)

// DupSequenceError reports that a batch was already appended; it carries the
// offsets assigned by the original append so the broker can ack the retry
// with them. It is success-shaped, not failure-shaped.
type DupSequenceError struct {
	BaseOffset int64
	LastOffset int64
}

func (e *DupSequenceError) Error() string {
	return fmt.Sprintf("log: duplicate producer sequence (original offsets %d..%d)", e.BaseOffset, e.LastOffset)
}

// producerBatch is one appended batch in a producer's recent window.
type producerBatch struct {
	baseSeq    int64
	lastSeq    int64
	baseOffset int64
	lastOffset int64
}

// producerEntry is the per-producer state: current epoch plus the recent
// batch window, oldest first.
type producerEntry struct {
	epoch  int32
	recent []producerBatch
}

// producerState is a partition's producer table. Guarded by the owning Log's
// mu.
type producerState struct {
	byID map[int64]*producerEntry
}

func newProducerState() *producerState {
	return &producerState{byID: make(map[int64]*producerEntry)}
}

// check classifies an incoming idempotent batch before append. It returns:
//   - (nil, nil): a new batch — append it;
//   - (*DupSequenceError, nil): a retry of an already-appended batch;
//   - (nil, ErrFencedEpoch / ErrOutOfOrderSequence): reject.
//
// An unknown producer id is always accepted: the table is a bounded cache
// rebuilt from the log, so "never seen" must mean "start tracking", not
// "reject" — otherwise a leader whose window aged out would wedge a healthy
// producer.
func (p *producerState) check(info record.BatchInfo) (*DupSequenceError, error) {
	e, ok := p.byID[info.ProducerID]
	if !ok {
		return nil, nil
	}
	switch {
	case info.ProducerEpoch < e.epoch:
		return nil, fmt.Errorf("%w: batch epoch %d, current %d", ErrFencedEpoch, info.ProducerEpoch, e.epoch)
	case info.ProducerEpoch > e.epoch:
		return nil, nil // fresh instance: note() will reset the window
	}
	if len(e.recent) == 0 {
		return nil, nil
	}
	last := e.recent[len(e.recent)-1]
	if info.BaseSequence == last.lastSeq+1 {
		return nil, nil // the expected next batch
	}
	for i := range e.recent {
		if e.recent[i].baseSeq == info.BaseSequence {
			// Walk contiguous entries until the retry's range is covered: an
			// oversized uncompressed batch is split into stamped sub-batches
			// on append (see AppendSealed), so one producer-side batch may
			// span several table entries.
			last := info.LastSequence()
			for j := i; j < len(e.recent); j++ {
				if j > i && e.recent[j].baseSeq != e.recent[j-1].lastSeq+1 {
					break
				}
				if e.recent[j].lastSeq == last {
					return &DupSequenceError{BaseOffset: e.recent[i].baseOffset, LastOffset: e.recent[j].lastOffset}, nil
				}
				if e.recent[j].lastSeq > last {
					break
				}
			}
			return nil, fmt.Errorf("%w: sequence %d resent with %d records, which does not match the appended batch boundaries",
				ErrOutOfOrderSequence, info.BaseSequence, last-info.BaseSequence+1)
		}
	}
	return nil, fmt.Errorf("%w: batch sequence %d, expected %d", ErrOutOfOrderSequence, info.BaseSequence, last.lastSeq+1)
}

// note records an appended idempotent batch. Called for every append that
// carries producer stamps — leader, follower, and recovery scan — so every
// replica converges on the same table.
func (p *producerState) note(info record.BatchInfo) {
	if !info.Idempotent() {
		return
	}
	e, ok := p.byID[info.ProducerID]
	if !ok {
		e = &producerEntry{epoch: info.ProducerEpoch}
		p.byID[info.ProducerID] = e
	} else if info.ProducerEpoch > e.epoch {
		e.epoch = info.ProducerEpoch
		e.recent = e.recent[:0]
	}
	e.recent = append(e.recent, producerBatch{
		baseSeq:    info.BaseSequence,
		lastSeq:    info.LastSequence(),
		baseOffset: info.BaseOffset,
		lastOffset: info.LastOffset,
	})
	if len(e.recent) > maxProducerBatches {
		copy(e.recent, e.recent[len(e.recent)-maxProducerBatches:])
		e.recent = e.recent[:maxProducerBatches]
	}
}

// reset clears the table.
func (p *producerState) reset() {
	p.byID = make(map[int64]*producerEntry)
}

// ------------------------------------------------------------- snapshot
//
// The table is snapshotted alongside the durability checkpoint (PR 7): a
// small binary file recording the log-end offset it covers plus every
// producer entry. On Open, a valid snapshot seeds the table and only batch
// headers beyond its coverage are rescanned; without one the whole local log
// is header-walked. Like the checkpoint, the snapshot is advisory — it is
// rewritten via tmp+sync+rename and discarded wholesale on any mismatch.

const producerSnapshotFile = "producer-state"

const producerSnapshotMagic = "liquidps"

// encodeProducerSnapshot serialises the table; next is the log-end offset
// the table covers.
func encodeProducerSnapshot(p *producerState, next int64) []byte {
	size := len(producerSnapshotMagic) + 2 + 8 + 4
	for _, e := range p.byID {
		size += 8 + 4 + 2 + len(e.recent)*32
	}
	size += 4 // crc
	buf := make([]byte, 0, size)
	buf = append(buf, producerSnapshotMagic...)
	buf = binary.BigEndian.AppendUint16(buf, 1) // version
	buf = binary.BigEndian.AppendUint64(buf, uint64(next))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.byID)))
	for id, e := range p.byID {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.epoch))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.recent)))
		for _, b := range e.recent {
			buf = binary.BigEndian.AppendUint64(buf, uint64(b.baseSeq))
			buf = binary.BigEndian.AppendUint64(buf, uint64(b.lastSeq))
			buf = binary.BigEndian.AppendUint64(buf, uint64(b.baseOffset))
			buf = binary.BigEndian.AppendUint64(buf, uint64(b.lastOffset))
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeProducerSnapshot parses a snapshot, returning the table and the
// log-end offset it covers.
func decodeProducerSnapshot(buf []byte) (*producerState, int64, error) {
	bad := errors.New("log: bad producer snapshot")
	if len(buf) < len(producerSnapshotMagic)+2+8+4+4 {
		return nil, 0, bad
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, bad
	}
	if string(body[:len(producerSnapshotMagic)]) != producerSnapshotMagic {
		return nil, 0, bad
	}
	pos := len(producerSnapshotMagic)
	if binary.BigEndian.Uint16(body[pos:]) != 1 {
		return nil, 0, bad
	}
	pos += 2
	next := int64(binary.BigEndian.Uint64(body[pos:]))
	pos += 8
	count := int(binary.BigEndian.Uint32(body[pos:]))
	pos += 4
	p := newProducerState()
	for i := 0; i < count; i++ {
		if pos+14 > len(body) {
			return nil, 0, bad
		}
		id := int64(binary.BigEndian.Uint64(body[pos:]))
		epoch := int32(binary.BigEndian.Uint32(body[pos+8:]))
		n := int(binary.BigEndian.Uint16(body[pos+12:]))
		pos += 14
		if n > maxProducerBatches || pos+n*32 > len(body) {
			return nil, 0, bad
		}
		e := &producerEntry{epoch: epoch, recent: make([]producerBatch, n)}
		for j := 0; j < n; j++ {
			e.recent[j] = producerBatch{
				baseSeq:    int64(binary.BigEndian.Uint64(body[pos:])),
				lastSeq:    int64(binary.BigEndian.Uint64(body[pos+8:])),
				baseOffset: int64(binary.BigEndian.Uint64(body[pos+16:])),
				lastOffset: int64(binary.BigEndian.Uint64(body[pos+24:])),
			}
			pos += 32
		}
		p.byID[id] = e
	}
	if pos != len(body) {
		return nil, 0, bad
	}
	return p, next, nil
}

// writeProducerSnapshotFile persists the snapshot via tmp+sync+rename, the
// same crash-safe discipline as the checkpoint file.
func writeProducerSnapshotFile(dir string, data []byte) error {
	tmp := filepath.Join(dir, producerSnapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, producerSnapshotFile))
}

// readProducerSnapshotFile loads and validates the snapshot, reporting ok
// only when it parses and checksums cleanly.
func readProducerSnapshotFile(dir string) (*producerState, int64, bool) {
	buf, err := os.ReadFile(filepath.Join(dir, producerSnapshotFile))
	if err != nil {
		return nil, 0, false
	}
	p, next, err := decodeProducerSnapshot(buf)
	if err != nil {
		return nil, 0, false
	}
	return p, next, true
}

// ProducerCount reports how many producer ids the idempotence dedup table
// currently tracks — the per-partition state a /status report surfaces.
func (l *Log) ProducerCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.producers.byID)
}

// rebuildProducersLocked reconstructs the table's view of batches at offsets
// >= from by header-walking the segment files. Recovery already truncated
// any torn tail, so every batch encountered has a sane header; headers that
// still fail to parse end the walk (they are beyond the recovered region).
func (l *Log) rebuildProducersLocked(from int64) {
	for _, s := range l.segments {
		if s.nextOffset <= from || s.size == 0 {
			continue
		}
		data := make([]byte, s.size)
		if _, err := s.file.ReadAt(data, 0); err != nil {
			return
		}
		for len(data) > 0 {
			info, err := record.PeekBatchInfo(data)
			if err != nil || info.Length > len(data) {
				return
			}
			if info.LastOffset >= from {
				l.producers.note(info)
			}
			data = data[info.Length:]
		}
	}
}

// persistProducerSnapshot writes the snapshot taken under l.mu, honouring
// the same truncation-generation staleness rule as checkpoints: if segment
// surgery happened after the snapshot was taken, it no longer describes the
// log and is skipped (the next sync writes a fresh one).
func (l *Log) persistProducerSnapshot(data []byte, gen uint64) {
	l.cpMu.Lock()
	defer l.cpMu.Unlock()
	l.mu.RLock()
	stale := l.truncGen != gen
	l.mu.RUnlock()
	if stale {
		return
	}
	writeProducerSnapshotFile(l.dir, data)
}

// snapshotProducersLocked captures the serialised table; callers pass it to
// persistProducerSnapshot outside l.mu.
func (l *Log) snapshotProducersLocked() []byte {
	return encodeProducerSnapshot(l.producers, l.active().nextOffset)
}

package log

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/storage/record"
)

// fillSegments appends records until the log has at least want segments.
func fillSegments(t *testing.T, l *Log, want int) {
	t.Helper()
	for i := 0; l.SegmentCount() < want; i++ {
		if _, err := l.Append([]record.Record{{
			Key:       []byte(fmt.Sprintf("k-%05d", i)),
			Value:     []byte(fmt.Sprintf("v-%05d", i)),
			Timestamp: 1, // ancient: always expired by any time horizon
		}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTieredRetentionNeverOutrunsOffloader is the invariant the tiered
// design stands on: hot retention may delete a local segment only after the
// offloader committed it to the tier manifest (SetOffloadedTo), no matter
// how far the hot horizon is exceeded.
func TestTieredRetentionNeverOutrunsOffloader(t *testing.T) {
	l, err := Open(t.TempDir(), Config{
		SegmentBytes:   2 << 10,
		Tiered:         true,
		RetentionMs:    -1, // no time horizon: the bytes path is under test
		RetentionBytes: 1,  // hot horizon exceeded from the first append
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillSegments(t, l, 5)

	// Guard at zero: nothing offloaded, nothing deletable.
	if n, err := l.EnforceRetention(time.Now()); err != nil || n != 0 {
		t.Fatalf("retention with zero guard deleted %d segments (err %v), want 0", n, err)
	}
	if l.StartOffset() != 0 {
		t.Fatalf("start offset moved to %d with nothing offloaded", l.StartOffset())
	}

	// A partial guard frees exactly the fully covered segments.
	segs := l.Segments()
	guard := segs[2].BaseOffset // first two segments fully tiered
	l.SetOffloadedTo(guard)
	n, err := l.EnforceRetention(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("deleted %d segments, want 2 (the offloaded prefix)", n)
	}
	if got := l.StartOffset(); got != guard {
		t.Fatalf("local start %d, want %d", got, guard)
	}

	// Records at and beyond the guard still read back locally.
	if _, err := l.Read(guard, 1024); err != nil {
		t.Fatalf("read at new local start: %v", err)
	}
	if _, err := l.Read(guard-1, 1024); err == nil {
		t.Fatal("read below local start should fail (the cold tier owns it now)")
	}
}

// TestTieredRetentionTimeHorizonGuarded covers the RetentionMs path: every
// segment is long expired by age, but only the offloaded prefix may go.
func TestTieredRetentionTimeHorizonGuarded(t *testing.T) {
	l, err := Open(t.TempDir(), Config{
		SegmentBytes:   2 << 10,
		Tiered:         true,
		RetentionMs:    1, // 1ms horizon: all timestamps (1) are expired
		RetentionBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillSegments(t, l, 4)
	if n, err := l.EnforceRetention(time.Now()); err != nil || n != 0 {
		t.Fatalf("expired-but-unoffloaded segments deleted: %d (err %v)", n, err)
	}
	segs := l.Segments()
	l.SetOffloadedTo(segs[1].BaseOffset)
	if n, err := l.EnforceRetention(time.Now()); err != nil || n != 1 {
		t.Fatalf("deleted %d segments, want 1", n)
	}
}

// TestTieredRetentionUnlimitedHot covers RetentionMs=-1 + RetentionBytes=-1
// on a tiered log: offload raises the guard, but with no hot horizon
// nothing is ever deleted locally.
func TestTieredRetentionUnlimitedHot(t *testing.T) {
	l, err := Open(t.TempDir(), Config{
		SegmentBytes:   2 << 10,
		Tiered:         true,
		RetentionMs:    -1,
		RetentionBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillSegments(t, l, 4)
	l.SetOffloadedTo(l.NextOffset())
	if n, err := l.EnforceRetention(time.Now()); err != nil || n != 0 {
		t.Fatalf("unlimited hot horizon deleted %d segments (err %v)", n, err)
	}
	if l.SegmentCount() != 4 {
		t.Fatalf("segment count %d, want 4", l.SegmentCount())
	}
}

// TestNonTieredRetentionUnaffected pins the default path: without Tiered,
// the guard plays no part and retention behaves exactly as before.
func TestNonTieredRetentionUnaffected(t *testing.T) {
	l, err := Open(t.TempDir(), Config{
		SegmentBytes:   2 << 10,
		RetentionMs:    -1,
		RetentionBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillSegments(t, l, 4)
	n, err := l.EnforceRetention(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // everything but the active segment
		t.Fatalf("deleted %d segments, want 3", n)
	}
}

// TestOffloadGuardMonotonic pins SetOffloadedTo's monotonicity: a stale
// follower adopting an older leader start cannot lower the guard.
func TestOffloadGuardMonotonic(t *testing.T) {
	l, err := Open(t.TempDir(), Config{Tiered: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetOffloadedTo(100)
	l.SetOffloadedTo(50)
	if got := l.OffloadedTo(); got != 100 {
		t.Fatalf("guard = %d, want 100", got)
	}
}

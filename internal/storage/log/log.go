package log

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage/record"
)

// Config controls a partition log. The zero value selects defaults suitable
// for tests; production-style deployments override segment and retention
// settings per topic (paper §4.1 "log retention").
type Config struct {
	// SegmentBytes is the roll size for segment files.
	SegmentBytes int64
	// IndexIntervalBytes is the spacing of sparse index entries.
	IndexIntervalBytes int64
	// RetentionMs bounds data age; segments whose newest record is older
	// are deleted. -1 disables time retention.
	RetentionMs int64
	// RetentionBytes bounds total log size; oldest segments are deleted
	// while the log exceeds it. -1 disables size retention.
	RetentionBytes int64
	// FlushMessages forces an fsync every N appended batches; 0 leaves
	// flushing to the OS (the paper's default behaviour, §4.1).
	FlushMessages int64
	// MaxBatchBytes splits large appends into multiple batches of at
	// most this encoded size, so batches stay well below the segment
	// size and segments can roll (a single record larger than the limit
	// still becomes one oversized batch).
	MaxBatchBytes int64
	// Compacted marks the log for key-based compaction instead of
	// deletion-based retention.
	Compacted bool
	// Tiered marks the log as the hot tier of a tiered partition: the
	// retention settings above become the HOT horizon (local bytes/age),
	// and EnforceRetention refuses to delete a segment until the tier
	// engine has raised the offload guard past it (SetOffloadedTo) — local
	// deletion must never outrun the offloader, or records acked below the
	// high watermark could vanish from both tiers.
	Tiered bool
	// Tracker optionally observes segment I/O for page-cache modelling.
	Tracker PageTracker
	// Durability is the WAL sync discipline: when appends are fsynced,
	// whether acks wait for group commit, and checkpointed recovery. The
	// zero value (SyncNone) keeps the legacy OS-buffered behaviour.
	Durability Durability
	// Metrics, when set, receives WAL durability metrics (fsync count and
	// latency, group-commit batch size distribution). The counters are
	// process-wide: every log sharing the registry feeds the same series.
	Metrics *metrics.Registry
}

// Defaults used when Config fields are zero.
const (
	DefaultSegmentBytes       = 32 << 20 // 32 MiB
	DefaultIndexIntervalBytes = 4096
	DefaultRetentionMs        = 7 * 24 * 3600 * 1000 // one week
	DefaultRetentionBytes     = int64(-1)
	DefaultMaxBatchBytes      = 32 << 10 // 32 KiB
)

func (c Config) withDefaults() Config {
	if c.SegmentBytes == 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	if c.IndexIntervalBytes == 0 {
		c.IndexIntervalBytes = DefaultIndexIntervalBytes
	}
	if c.RetentionMs == 0 {
		c.RetentionMs = DefaultRetentionMs
	}
	if c.RetentionBytes == 0 {
		c.RetentionBytes = DefaultRetentionBytes
	}
	if c.MaxBatchBytes == 0 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	c.Durability = c.Durability.withDefaults()
	// Batches must stay well below the segment size or segments never
	// roll (and retention/compaction never find inactive segments).
	if quarter := c.SegmentBytes / 4; c.MaxBatchBytes > quarter {
		c.MaxBatchBytes = quarter
		if c.MaxBatchBytes < 1024 {
			c.MaxBatchBytes = 1024
		}
	}
	return c
}

// Log is a single partition's commit log: an ordered list of segments, the
// last of which is active for appends. All methods are safe for concurrent
// use.
type Log struct {
	dir string
	cfg Config

	mu          sync.RWMutex
	segments    []*segment // ascending base offset; last is active
	startOffset int64      // first locally retained offset
	offloadedTo int64      // tiered logs: offsets below this are durably tiered
	closed      bool

	appendsSinceFlush int64

	// producers is the idempotent-produce dedup table, maintained from the
	// producer stamps on appended batches (guarded by mu).
	producers *producerState

	// Durability state (guarded by mu unless noted).
	syncedNext    int64        // offsets below this are durable
	dirty         bool         // active segment has unsynced appends
	unsyncedBytes int64        // bytes appended since the last sync
	syncWaiters   []syncWaiter // acks parked behind the frontier (SyncGroup)
	truncGen      uint64       // bumped by segment surgery; stales checkpoints
	syncKick      chan struct{}
	syncUrgent    chan struct{}
	stopSync      chan struct{}
	stopOnce      sync.Once
	syncWG        sync.WaitGroup
	syncMu        sync.Mutex // serialises syncNow
	cpMu          sync.Mutex // serialises checkpoint file writes/removal

	// met holds pre-resolved durability metrics (nil when Config.Metrics is
	// unset). lastSyncNano/dirtySinceNano track checkpoint freshness for
	// health checks; they are atomics so readers never take l.mu.
	met            *logMetrics
	lastSyncNano   atomic.Int64
	dirtySinceNano atomic.Int64
}

// logMetrics pre-resolves the WAL durability series so hot paths skip the
// registry map lookups.
type logMetrics struct {
	fsyncs     *metrics.Counter
	fsyncNs    *metrics.Histogram
	groupBytes *metrics.Histogram
}

// Open opens or creates the log in dir. When a valid durability checkpoint
// exists, recovery trusts the synced prefix it describes (segments sealed
// before the checkpointed one were synced at roll time; the checkpointed
// segment is synced up to the recorded byte position) and CRC-scans only the
// unsynced tail beyond it, truncating torn writes. Without a checkpoint —
// or on compacted logs, whose segment bytes are rewritten in place — every
// batch is CRC-verified.
func Open(dir string, cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("log: mkdir: %w", err)
	}
	l := &Log{
		dir:        dir,
		cfg:        cfg,
		producers:  newProducerState(),
		syncKick:   make(chan struct{}, 1),
		syncUrgent: make(chan struct{}, 1),
		stopSync:   make(chan struct{}),
	}
	if cfg.Metrics != nil {
		l.met = &logMetrics{
			fsyncs:     cfg.Metrics.Counter("log.fsync.count"),
			fsyncNs:    cfg.Metrics.Histogram("log.fsync.ns"),
			groupBytes: cfg.Metrics.Histogram("log.groupcommit.batch.bytes"),
		}
	}

	cp, cpOK := readCheckpointFile(dir)
	if cfg.Compacted {
		cpOK = false
	}
	bases, err := listSegmentBases(dir)
	if err != nil {
		return nil, err
	}
	for _, base := range bases {
		trusted := int64(0)
		if cpOK {
			switch {
			case base < cp.base:
				trusted = math.MaxInt64 // sealed before the checkpoint: synced at roll
			case base == cp.base:
				trusted = cp.pos
			}
		}
		s, err := openSegment(dir, base, cfg.IndexIntervalBytes, trusted)
		if err != nil {
			return nil, err
		}
		l.segments = append(l.segments, s)
	}
	if len(l.segments) == 0 {
		s, err := createSegment(dir, 0)
		if err != nil {
			return nil, err
		}
		l.segments = []*segment{s}
	}
	l.startOffset = l.segments[0].baseOffset
	// Look for a persisted start offset (advanced by retention past
	// segment bases when compaction ran).
	if so, err := readStartOffset(dir); err == nil && so > l.startOffset {
		l.startOffset = so
	}
	if cfg.Durability.Policy != SyncNone {
		// Make the recovered state durable before serving: the tail beyond
		// the old checkpoint survived the crash, but nothing proves it was
		// ever synced — one fsync plus a fresh checkpoint re-establishes
		// the invariant that everything on disk is the frontier.
		a := l.active()
		if err := l.syncFile(a.file); err != nil {
			return nil, fmt.Errorf("log: sync recovered state: %w", err)
		}
		if err := writeCheckpointFile(dir, checkpoint{base: a.baseOffset, pos: a.size, next: a.nextOffset}); err != nil {
			return nil, fmt.Errorf("log: write checkpoint: %w", err)
		}
	}
	l.syncedNext = l.active().nextOffset
	// Everything recovered is durable (or freshly re-synced above): the
	// checkpoint-freshness clock starts now.
	l.lastSyncNano.Store(time.Now().UnixNano())
	// Rebuild the producer table. A valid snapshot (written alongside the
	// checkpoint) seeds the state it covered; batch headers beyond its
	// coverage — the recovered unsynced tail — are rescanned. Without a
	// usable snapshot, or on compacted logs whose bytes are rewritten in
	// place, the whole local log is header-walked.
	rebuildFrom := l.startOffset
	if ps, psNext, ok := readProducerSnapshotFile(dir); ok && !cfg.Compacted && psNext <= l.active().nextOffset {
		l.producers = ps
		rebuildFrom = psNext
	}
	l.rebuildProducersLocked(rebuildFrom)
	l.startCommitter()
	return l, nil
}

// listSegmentBases returns sorted segment base offsets found in dir.
func listSegmentBases(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("log: readdir: %w", err)
	}
	var bases []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		base, err := strconv.ParseInt(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

const startOffsetFile = "start-offset"

func readStartOffset(dir string) (int64, error) {
	b, err := os.ReadFile(filepath.Join(dir, startOffsetFile))
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
}

func writeStartOffset(dir string, v int64) error {
	return os.WriteFile(filepath.Join(dir, startOffsetFile), []byte(strconv.FormatInt(v, 10)), 0o644)
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Config returns the effective configuration.
func (l *Log) Config() Config { return l.cfg }

// NextOffset returns the offset the next appended record will receive (the
// log end offset).
func (l *Log) NextOffset() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.active().nextOffset
}

// StartOffset returns the first locally retained offset (the local log
// start; on a tiered log, older offsets may still be served from the cold
// tier).
func (l *Log) StartOffset() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.startOffset
}

// SetOffloadedTo raises the offload guard: offsets below the given offset
// are durably tiered (segment uploaded and manifest committed), so hot
// retention may delete their local copies. The guard is monotonic; lower
// values are ignored. Leaders raise it after each manifest commit;
// followers adopt the leader's local log start from fetch responses (the
// leader only advances it past offloaded data).
func (l *Log) SetOffloadedTo(offset int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset > l.offloadedTo {
		l.offloadedTo = offset
	}
}

// OffloadedTo returns the current offload guard.
func (l *Log) OffloadedTo() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.offloadedTo
}

// Size returns the total byte size of all segments.
func (l *Log) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n int64
	for _, s := range l.segments {
		n += s.size
	}
	return n
}

// SegmentCount returns the number of segment files.
func (l *Log) SegmentCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.segments)
}

func (l *Log) active() *segment { return l.segments[len(l.segments)-1] }

// encBufPool recycles batch-encode buffers on the append hot path. Encoded
// batches live only until the segment write returns, so one pooled buffer
// per in-flight append removes the per-batch allocation entirely.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// maxPooledEncBuf caps the capacity returned to encBufPool, so one
// oversized batch (a single record beyond MaxBatchBytes) cannot pin a huge
// buffer in the pool for the process lifetime.
const maxPooledEncBuf = 1 << 20

func putEncBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledEncBuf {
		encBufPool.Put(bp)
	}
}

// Append assigns consecutive offsets to records, stamps zero timestamps
// with now (log-append time), encodes them as batches of at most
// MaxBatchBytes, and appends them. It returns the base offset assigned to
// the first record.
func (l *Log) Append(records []record.Record) (int64, error) {
	if len(records) == 0 {
		return 0, fmt.Errorf("log: empty append")
	}
	now := time.Now().UnixMilli()
	for i := range records {
		if records[i].Timestamp == 0 {
			records[i].Timestamp = now
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	return l.appendRecordsLocked(records)
}

// appendRecordsLocked encodes records into batches of at most MaxBatchBytes
// (through a pooled buffer) and appends them, assigning offsets from the
// log end.
func (l *Log) appendRecordsLocked(records []record.Record) (int64, error) {
	return l.appendRecordsStampedLocked(records, record.NoProducerID, record.NoProducerEpoch, record.NoSequence)
}

// appendRecordsStampedLocked is appendRecordsLocked with an optional
// producer identity: when pid is a real id each sub-batch is stamped with
// it, sequences advancing record-by-record from baseSeq, so a split
// oversized batch leaves the same dedup trail its unsplit original would
// have (check() matches a retry against the contiguous span of entries).
func (l *Log) appendRecordsStampedLocked(records []record.Record, pid int64, epoch int32, baseSeq int64) (int64, error) {
	bp := encBufPool.Get().(*[]byte)
	defer putEncBuf(bp)
	base := l.active().nextOffset
	next := base
	for start := 0; start < len(records); {
		end := start + 1
		size := estimateRecordSize(&records[start])
		for end < len(records) {
			n := estimateRecordSize(&records[end])
			if size+n > l.cfg.MaxBatchBytes {
				break
			}
			size += n
			end++
		}
		batch := record.EncodeBatchInto((*bp)[:0], next, records[start:end])
		if pid >= 0 {
			if err := record.StampProducer(batch, pid, epoch, baseSeq+int64(start)); err != nil {
				return 0, err
			}
		}
		*bp = batch[:0] // retain grown capacity for the next iteration
		if err := l.appendLocked(batch); err != nil {
			return 0, err
		}
		next += int64(end - start)
		start = end
	}
	return base, nil
}

// AppendSealed appends an already-encoded batch as the partition leader:
// the batch's base offset is restamped in place to the current log end
// offset (record offsets inside are deltas and shift with it) and the bytes
// are stored verbatim — compressed batches are never inflated or re-encoded
// here, which is what lets the broker serve the producer's exact bytes to
// followers, consumers and the archiver. The caller is expected to have
// validated the batch (record.ValidateBatch); offsets and timestamps inside
// are the producer's. It returns the assigned base offset.
//
// One exception keeps segment rolling honest: an UNCOMPRESSED batch larger
// than MaxBatchBytes is decoded and re-batched exactly as Append would,
// because storing it as a single oversized blob would defeat the per-topic
// segment sizing that retention and compaction depend on. Compressed
// batches are exempt — they are opaque by contract (their inflated size is
// bounded by the producer's flush size anyway) and always land verbatim.
func (l *Log) AppendSealed(batch []byte) (int64, error) {
	info, err := record.PeekBatchInfo(batch)
	if err != nil {
		return 0, err
	}
	codec, err := record.PeekCodec(batch)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if info.Idempotent() {
		// Leader-side dedup: a retried batch is answered with its original
		// offsets (as a *DupSequenceError, which the broker treats as
		// success), an unexpected sequence or a fenced epoch is rejected.
		dup, err := l.producers.check(info)
		if err != nil {
			return 0, err
		}
		if dup != nil {
			return 0, dup
		}
	}
	// Idempotent oversized batches are re-batched too, with the producer
	// stamps carried onto every sub-batch: sequences advance with the
	// records, so the dedup table records the same sequence span the unsplit
	// original would have, and a retry of the whole batch still matches (the
	// check above walks the contiguous split entries).
	if codec == record.CodecNone && int64(info.Length) > l.cfg.MaxBatchBytes && info.RecordCount > 1 {
		decoded, _, err := record.DecodeBatch(batch)
		if err != nil {
			return 0, err
		}
		return l.appendRecordsStampedLocked(decoded.Records, info.ProducerID, info.ProducerEpoch, info.BaseSequence)
	}
	base := l.active().nextOffset
	if err := record.RestampBase(batch, base); err != nil {
		return 0, err
	}
	if err := l.appendLocked(batch); err != nil {
		return 0, err
	}
	return base, nil
}

// estimateRecordSize approximates a record's encoded footprint.
func estimateRecordSize(r *record.Record) int64 {
	n := int64(len(r.Key) + len(r.Value) + 64)
	for i := range r.Headers {
		n += int64(len(r.Headers[i].Key) + len(r.Headers[i].Value) + 8)
	}
	return n
}

// AppendBatch appends an already-encoded batch, preserving its offsets.
// The batch base offset must be at or beyond the current log end offset;
// gaps are allowed (they arise when replicating a compacted log). This is
// the path replica fetchers use.
func (l *Log) AppendBatch(batch []byte) error {
	info, err := record.PeekBatchInfo(batch)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if info.BaseOffset < l.active().nextOffset {
		return fmt.Errorf("%w: batch base %d below log end %d", ErrNonMonotonic, info.BaseOffset, l.active().nextOffset)
	}
	return l.appendLocked(batch)
}

// appendLocked rolls the active segment if needed and writes the batch,
// then applies the durability policy: SyncBatch syncs inline, SyncGroup
// kicks the group committer, the rest leave the bytes for the background
// sync (or the OS). Rolling always syncs the sealed segment first — that is
// what lets checkpointed recovery trust whole segments below the
// checkpointed one without rescanning them.
func (l *Log) appendLocked(batch []byte) error {
	info, err := record.PeekBatchInfo(batch)
	if err != nil {
		return err
	}
	a := l.active()
	if a.size > 0 && a.size+int64(len(batch)) > l.cfg.SegmentBytes {
		if err := l.syncFile(a.file); err != nil {
			return err
		}
		ns, err := createSegment(l.dir, a.nextOffset)
		if err != nil {
			return err
		}
		l.segments = append(l.segments, ns)
		a = ns
	}
	if err := a.append(batch, info, l.cfg.IndexIntervalBytes, l.cfg.Tracker); err != nil {
		return err
	}
	// Every successful append feeds the producer table, whatever the path —
	// leader produce, follower replication — so replicas converge on the
	// same dedup state as the leader without any extra replication traffic.
	l.producers.note(info)
	l.noteDirtyLocked(int64(len(batch)))
	if l.cfg.Durability.Policy == SyncBatch {
		if err := l.syncFile(a.file); err != nil {
			return err
		}
		l.dirty = false
		l.dirtySinceNano.Store(0)
		l.unsyncedBytes = 0
		l.advanceSyncedLocked(a.nextOffset)
		l.lastSyncNano.Store(time.Now().UnixNano())
	}
	l.appendsSinceFlush++
	if l.cfg.FlushMessages > 0 && l.appendsSinceFlush >= l.cfg.FlushMessages {
		l.appendsSinceFlush = 0
		return a.flush()
	}
	return nil
}

// Read returns up to maxBytes of whole batches starting at offset. Reading
// at the log end offset returns (nil, nil). Reads below the start offset or
// beyond the end offset return ErrOffsetOutOfRange.
func (l *Log) Read(offset int64, maxBytes int) ([]byte, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrClosed
	}
	end := l.active().nextOffset
	if offset == end {
		return nil, nil
	}
	if offset < l.startOffset || offset > end {
		return nil, fmt.Errorf("%w: offset %d not in [%d, %d]", ErrOffsetOutOfRange, offset, l.startOffset, end)
	}
	// Find the segment containing offset: the last segment whose base is
	// <= offset. If its data ends before the offset (compaction gaps),
	// fall through to the next segment.
	idx := sort.Search(len(l.segments), func(i int) bool {
		return l.segments[i].baseOffset > offset
	}) - 1
	if idx < 0 {
		idx = 0
	}
	for ; idx < len(l.segments); idx++ {
		data, err := l.segments[idx].read(offset, maxBytes, l.cfg.Tracker)
		if err != nil {
			return nil, err
		}
		if data != nil {
			return data, nil
		}
	}
	return nil, nil
}

// OffsetForTimestamp returns the offset of the first record whose timestamp
// is at or after ts, or the log end offset if no such record exists.
func (l *Log) OffsetForTimestamp(ts int64) (int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return 0, ErrClosed
	}
	for _, s := range l.segments {
		if s.maxTS < ts || s.size == 0 {
			continue
		}
		// Scan this segment's records for the first qualifying one.
		data := make([]byte, s.size)
		if _, err := s.file.ReadAt(data, 0); err != nil {
			return 0, err
		}
		found := int64(-1)
		err := record.ScanRecords(data, func(r record.Record) error {
			if r.Timestamp >= ts && found == -1 {
				found = r.Offset
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		if found >= 0 {
			if found < l.startOffset {
				return l.startOffset, nil
			}
			return found, nil
		}
	}
	return l.active().nextOffset, nil
}

// Truncate removes all records at offsets >= offset. Used by followers to
// reconcile divergent suffixes after leader changes. The persisted
// checkpoint is invalidated (removed) — its byte positions describe the
// pre-truncation file — and any acks parked beyond the cut are failed.
func (l *Log) Truncate(offset int64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if offset >= l.active().nextOffset {
		l.mu.Unlock()
		return nil
	}
	err := l.truncateLocked(offset)
	l.truncGen++
	// The truncated suffix may hold the producer table's newest entries;
	// rebuild the table from the surviving log so a duplicate arriving
	// after the cut is still judged against what the log actually holds.
	l.producers.reset()
	l.rebuildProducersLocked(l.startOffset)
	if l.syncedNext > l.active().nextOffset {
		l.syncedNext = l.active().nextOffset
	}
	kept := l.syncWaiters[:0]
	for _, w := range l.syncWaiters {
		if w.next > l.active().nextOffset {
			w.ch <- errSyncTruncated
		} else {
			kept = append(kept, w)
		}
	}
	l.syncWaiters = kept
	l.mu.Unlock()
	// Remove the now-stale checkpoint outside l.mu (cpMu orders before
	// l.mu everywhere else). A concurrent syncNow either saw the gen bump
	// and skipped its write, or wrote first and is deleted here — the next
	// sync rewrites it.
	l.cpMu.Lock()
	os.Remove(filepath.Join(l.dir, checkpointFile))
	os.Remove(filepath.Join(l.dir, producerSnapshotFile))
	l.cpMu.Unlock()
	return err
}

// truncateLocked performs the segment surgery of Truncate.
func (l *Log) truncateLocked(offset int64) error {
	// Drop whole segments whose base is at or beyond the cut.
	for len(l.segments) > 1 && l.segments[len(l.segments)-1].baseOffset >= offset {
		last := l.segments[len(l.segments)-1]
		if err := last.remove(); err != nil {
			return err
		}
		l.segments = l.segments[:len(l.segments)-1]
	}
	return l.active().truncateTo(offset, l.cfg.IndexIntervalBytes)
}

// EnforceRetention applies time and size retention, deleting whole inactive
// segments. It returns the number of segments deleted. now is injectable
// for tests.
func (l *Log) EnforceRetention(now time.Time) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.cfg.Compacted {
		return 0, nil // compacted logs retain by key, not by age/size
	}
	deleted := 0
	nowMs := now.UnixMilli()
	for len(l.segments) > 1 {
		oldest := l.segments[0]
		expired := l.cfg.RetentionMs > 0 && oldest.maxTS > 0 &&
			nowMs-oldest.maxTS > l.cfg.RetentionMs
		var total int64
		for _, s := range l.segments {
			total += s.size
		}
		oversize := l.cfg.RetentionBytes > 0 && total > l.cfg.RetentionBytes
		if !expired && !oversize {
			break
		}
		// Tiered logs: never delete a record the offloader has not
		// committed to the tier manifest, regardless of how far the hot
		// horizon is exceeded. Segments are ordered, so the first
		// un-offloaded one stops the pass.
		if l.cfg.Tiered && oldest.nextOffset > l.offloadedTo {
			break
		}
		if err := oldest.remove(); err != nil {
			return deleted, err
		}
		l.segments = l.segments[1:]
		l.startOffset = l.segments[0].baseOffset
		deleted++
	}
	if deleted > 0 {
		if err := writeStartOffset(l.dir, l.startOffset); err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// Flush fsyncs the active segment, advances the durability frontier, and —
// under an explicit sync policy — persists a checkpoint.
func (l *Log) Flush() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	a := l.active()
	f := a.file
	cp := checkpoint{base: a.baseOffset, pos: a.size, next: a.nextOffset}
	psnap := l.snapshotProducersLocked()
	gen := l.truncGen
	l.dirty = false
	l.dirtySinceNano.Store(0)
	l.unsyncedBytes = 0
	l.mu.Unlock()
	if err := l.syncFile(f); err != nil {
		return err
	}
	if l.cfg.Durability.Policy != SyncNone {
		l.persistCheckpoint(cp, gen)
		l.persistProducerSnapshot(psnap, gen)
	}
	l.mu.Lock()
	if l.truncGen == gen {
		l.advanceSyncedLocked(cp.next)
	}
	l.mu.Unlock()
	l.lastSyncNano.Store(time.Now().UnixNano())
	return nil
}

// Close flushes and closes all segments, stopping the background committer
// first and persisting a final checkpoint so the next Open skips the scan.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.stopCommitter()
	l.mu.Lock()
	var first error
	for _, s := range l.segments {
		if err := l.syncFile(s.file); err != nil && first == nil {
			first = err
		}
	}
	a := l.active()
	var cp *checkpoint
	var psnap []byte
	if first == nil && l.cfg.Durability.Policy != SyncNone {
		cp = &checkpoint{base: a.baseOffset, pos: a.size, next: a.nextOffset}
		psnap = l.snapshotProducersLocked()
	}
	l.advanceSyncedLocked(a.nextOffset)
	l.failSyncWaitersLocked(ErrClosed)
	for _, s := range l.segments {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	l.mu.Unlock()
	if cp != nil {
		l.cpMu.Lock()
		writeCheckpointFile(l.dir, *cp)
		writeProducerSnapshotFile(l.dir, psnap)
		l.cpMu.Unlock()
	}
	return first
}

// SegmentInfo describes one segment for introspection and compaction.
type SegmentInfo struct {
	BaseOffset int64
	NextOffset int64
	Size       int64
	MaxTS      int64
	Active     bool
}

// Segments returns a snapshot of segment metadata.
func (l *Log) Segments() []SegmentInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]SegmentInfo, len(l.segments))
	for i, s := range l.segments {
		out[i] = SegmentInfo{
			BaseOffset: s.baseOffset,
			NextOffset: s.nextOffset,
			Size:       s.size,
			MaxTS:      s.maxTS,
			Active:     i == len(l.segments)-1,
		}
	}
	return out
}

// ReadSegment returns the raw bytes of the segment with the given base
// offset. Compaction uses it to rewrite inactive segments.
func (l *Log) ReadSegment(baseOffset int64) ([]byte, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, s := range l.segments {
		if s.baseOffset == baseOffset {
			data := make([]byte, s.size)
			if s.size == 0 {
				return data, nil
			}
			if _, err := s.file.ReadAt(data, 0); err != nil {
				return nil, err
			}
			return data, nil
		}
	}
	return nil, fmt.Errorf("log: no segment with base %d", baseOffset)
}

// ReplaceSegments atomically swaps the inactive segments whose base offsets
// are listed in oldBases for new segments built from the batches in
// newSegments (a list of encoded batch sequences, one per new segment, with
// ascending preserved offsets). The active segment is never replaced. This
// is the commit step of log compaction (paper §4.1).
func (l *Log) ReplaceSegments(oldBases []int64, newSegments [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(oldBases) == 0 {
		return nil
	}
	oldSet := make(map[int64]bool, len(oldBases))
	for _, b := range oldBases {
		oldSet[b] = true
	}
	if oldSet[l.active().baseOffset] {
		return fmt.Errorf("log: cannot replace active segment")
	}
	// Build replacement segment files under temporary names first.
	var newSegs []*segment
	cleanup := func() {
		for _, s := range newSegs {
			s.remove()
		}
	}
	for _, data := range newSegments {
		if len(data) == 0 {
			continue
		}
		base, err := record.PeekBaseOffset(data)
		if err != nil {
			cleanup()
			return err
		}
		tmp := filepath.Join(l.dir, fmt.Sprintf("%020d.cleaned", base))
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			cleanup()
			return err
		}
		f, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
		if err != nil {
			cleanup()
			return err
		}
		s := &segment{baseOffset: base, path: tmp, file: f}
		if err := s.recover(l.cfg.IndexIntervalBytes, 0); err != nil {
			cleanup()
			return err
		}
		newSegs = append(newSegs, s)
	}
	// Fsync the replacement files before destroying the old segments: the
	// renames below commit them under canonical names, and a crash must not
	// be able to commit torn bytes after the originals are gone.
	for _, s := range newSegs {
		if err := s.file.Sync(); err != nil {
			cleanup()
			return err
		}
	}
	// Remove the old segments and splice in the new ones.
	var kept []*segment
	for _, s := range l.segments {
		if oldSet[s.baseOffset] {
			if err := s.remove(); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, s)
	}
	// Rename cleaned files to their canonical names.
	for _, s := range newSegs {
		canonical := segmentPath(l.dir, s.baseOffset)
		if err := os.Rename(s.path, canonical); err != nil {
			return err
		}
		s.path = canonical
	}
	l.segments = append(newSegs, kept...)
	sort.Slice(l.segments, func(i, j int) bool {
		return l.segments[i].baseOffset < l.segments[j].baseOffset
	})
	// Compaction rewrote segment bytes in place; any checkpoint taken
	// before this swap must not be persisted (compacted logs also ignore
	// checkpoints at Open, this is belt-and-braces).
	l.truncGen++
	return nil
}

package log

import (
	"bytes"
	"testing"

	"repro/internal/storage/record"
)

// TestAppendSealedCompressedVerbatim: a compressed sealed batch is stored
// byte-identically (base offset aside) regardless of its size.
func TestAppendSealedCompressedVerbatim(t *testing.T) {
	l, err := Open(t.TempDir(), Config{MaxBatchBytes: 1024, RetentionMs: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	recs := make([]record.Record, 64)
	for i := range recs {
		recs[i] = record.Record{Timestamp: 1, Value: bytes.Repeat([]byte("xyz-"), 64)}
	}
	sealed, err := record.Compress(record.EncodeBatch(0, recs), record.CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), sealed...)
	base, err := l.AppendSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Fatalf("base = %d", base)
	}
	if l.NextOffset() != 64 {
		t.Fatalf("next offset = %d, want 64", l.NextOffset())
	}
	got, err := l.Read(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stored compressed batch differs from sealed input")
	}
}

// TestAppendSealedOversizedUncompressedRebatches: an uncompressed sealed
// batch above MaxBatchBytes is split like Append would split it, so
// segment sizing (and therefore retention/compaction) keeps working.
func TestAppendSealedOversizedUncompressedRebatches(t *testing.T) {
	l, err := Open(t.TempDir(), Config{MaxBatchBytes: 1024, RetentionMs: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	recs := make([]record.Record, 64)
	for i := range recs {
		recs[i] = record.Record{Timestamp: 1, Value: bytes.Repeat([]byte("xyz-"), 64)}
	}
	big := record.EncodeBatch(0, recs)
	if len(big) <= 1024 {
		t.Fatalf("test batch too small: %dB", len(big))
	}
	if _, err := l.AppendSealed(big); err != nil {
		t.Fatal(err)
	}
	if l.NextOffset() != 64 {
		t.Fatalf("next offset = %d, want 64", l.NextOffset())
	}
	data, err := l.Read(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	nbatches := 0
	if err := record.Scan(data, func(b record.Batch) error {
		nbatches++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if nbatches < 2 {
		t.Fatalf("oversized uncompressed batch stored as %d batch(es), want re-batching", nbatches)
	}
	n, err := record.CountRecords(data)
	if err != nil || n != 64 {
		t.Fatalf("records = %d, %v", n, err)
	}
}

package log

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/storage/record"
)

// SegmentRange is a raw byte range of whole, visible record batches inside
// one segment file, held open on its own read-only descriptor. It is the
// zero-copy fetch path's currency: the wire layer splices it straight into
// the response frame with WriteTo, which on Linux TCP connections uses
// sendfile(2) — stored bytes are wire bytes (the byte-identical batch
// invariant), so they never pass through user space. The descriptor is
// independent of the log's append handle (no shared seek position) and, on
// POSIX systems, keeps serving even if retention unlinks the file mid-serve.
// Callers must Close it after the response is written.
type SegmentRange struct {
	f   *os.File
	pos int64
	n   int64
}

// Len returns the range length in bytes.
func (r *SegmentRange) Len() int64 { return r.n }

// WriteTo streams the range into w.
func (r *SegmentRange) WriteTo(w io.Writer) (int64, error) {
	if r.n == 0 || r.f == nil {
		return 0, nil
	}
	if _, err := r.f.Seek(r.pos, io.SeekStart); err != nil {
		return 0, err
	}
	return io.CopyN(w, r.f, r.n)
}

// Bytes reads the range into memory — the bridge to the buffered
// representation, for equivalence tests and callers that need bytes.
func (r *SegmentRange) Bytes() ([]byte, error) {
	if r.n == 0 || r.f == nil {
		return []byte{}, nil
	}
	buf := make([]byte, r.n)
	if _, err := r.f.ReadAt(buf, r.pos); err != nil {
		return nil, err
	}
	return buf, nil
}

// Close releases the range's file descriptor.
func (r *SegmentRange) Close() error {
	if r.f == nil {
		return nil
	}
	return r.f.Close()
}

// ReadRange resolves the same read Read performs — up to maxBytes of whole
// batches starting at offset, at least one batch when any qualifies —
// into a raw byte range of the owning segment file instead of a copy,
// additionally excluding batches whose last offset reaches limit (the
// caller's high watermark; limit < 0 means unbounded, the follower
// replication view). Results mirror the buffered path exactly:
//
//   - (nil, nil) where Read would return (nil, nil) — nothing at or beyond
//     offset (reading at the log end);
//   - a zero-length range where the buffered path would return data that
//     the visibility trim empties (the first qualifying batch is not yet
//     below the high watermark);
//   - otherwise a range holding exactly the bytes Read-then-trim would.
//
// The returned range MUST be closed by the caller.
func (l *Log) ReadRange(offset int64, maxBytes int, limit int64) (*SegmentRange, error) {
	if limit < 0 {
		limit = math.MaxInt64
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrClosed
	}
	end := l.active().nextOffset
	if offset == end {
		return nil, nil
	}
	if offset < l.startOffset || offset > end {
		return nil, fmt.Errorf("%w: offset %d not in [%d, %d]", ErrOffsetOutOfRange, offset, l.startOffset, end)
	}
	idx := sort.Search(len(l.segments), func(i int) bool {
		return l.segments[i].baseOffset > offset
	}) - 1
	if idx < 0 {
		idx = 0
	}
	for ; idx < len(l.segments); idx++ {
		s := l.segments[idx]
		pos, n, err := s.rangeAt(offset, maxBytes, limit)
		if err != nil {
			return nil, err
		}
		if pos < 0 {
			continue // nothing at or beyond offset in this segment
		}
		if n == 0 {
			// The first qualifying batch exists but is not visible under
			// limit yet: an empty (but non-nil) result, like the buffered
			// path's visibility trim.
			return &SegmentRange{}, nil
		}
		f, err := os.Open(s.path)
		if err != nil {
			return nil, err
		}
		if t := l.cfg.Tracker; t != nil {
			if penalty := t.OnRead(s.baseOffset, pos, n); penalty > 0 {
				time.Sleep(penalty)
			}
		}
		return &SegmentRange{f: f, pos: pos, n: n}, nil
	}
	return nil, nil
}

// rangeAt computes the byte range read-then-trim would return for (offset,
// maxBytes) bounded by limit (exclusive last-offset cap). pos == -1 means no
// batch at or beyond offset lives in this segment; n == 0 with pos >= 0
// means the first qualifying batch is not visible under limit.
func (s *segment) rangeAt(offset int64, maxBytes int, limit int64) (int64, int64, error) {
	pos := s.lookup(offset)
	var hdr [record.HeaderLen]byte
	var first record.BatchInfo
	found := false
	// Skip batches that end before the wanted offset.
	for pos+int64(record.HeaderLen) <= s.size {
		if _, err := s.file.ReadAt(hdr[:], pos); err != nil && err != io.EOF {
			return 0, 0, err
		}
		info, perr := record.PeekBatchInfo(hdr[:])
		if perr != nil {
			return 0, 0, fmt.Errorf("log: read header at %d: %w", pos, perr)
		}
		if info.LastOffset >= offset {
			first = info
			found = true
			break
		}
		pos += int64(info.Length)
	}
	if !found {
		return -1, 0, nil
	}
	if first.LastOffset >= limit {
		return pos, 0, nil
	}
	// Budget mirrors segment.read: at least one whole batch, else maxBytes,
	// capped at the segment end.
	want := int64(maxBytes)
	if want < int64(first.Length) {
		want = int64(first.Length)
	}
	if pos+want > s.size {
		want = s.size - pos
	}
	// Extend over whole visible batches within the budget.
	n := int64(0)
	cur := pos
	info := first
	for {
		next := n + int64(info.Length)
		if next > want || info.LastOffset >= limit {
			break
		}
		n = next
		cur += int64(info.Length)
		if cur+int64(record.HeaderLen) > s.size {
			break
		}
		if _, err := s.file.ReadAt(hdr[:], cur); err != nil && err != io.EOF {
			return 0, 0, err
		}
		ni, perr := record.PeekBatchInfo(hdr[:])
		if perr != nil {
			return 0, 0, fmt.Errorf("log: read header at %d: %w", cur, perr)
		}
		info = ni
	}
	return pos, n, nil
}

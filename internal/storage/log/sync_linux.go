//go:build linux

package log

import (
	"os"
	"syscall"
)

// fdatasync flushes a file's data (not its metadata) to stable storage. On
// Linux this is fdatasync(2): segment appends only grow the file, so syncing
// the length update alongside the data is all the WAL needs, and skipping
// the mtime/atime inode flush saves a journal commit per sync.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("broker.requests").Add(5)
	reg.HistogramFamily("broker.api.latency.ns", "api").With("produce").Observe(1000)
	sl := NewSlowLog(8, time.Minute)
	sl.Observe(SlowLogEntry{API: "fetch", Principal: "anon", Topic: "orders", Partition: 2, Duration: 50 * time.Millisecond})

	unhealthy := errors.New("boom")
	var failing error
	srv, err := Start(Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health: []HealthCheck{
			{Name: "always-ok", Check: func() error { return nil }},
			{Name: "toggle", Check: func() error { return failing }},
		},
		Status:  func() any { return map[string]any{"broker": 1, "partitionsLed": 3} },
		SlowLog: sl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	samples, err := LintExposition(body)
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	found := false
	for _, s := range samples {
		if s.Name == "broker_requests" && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("broker_requests sample missing:\n%s", body)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	failing = unhealthy
	code, body = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "boom") {
		t.Fatalf("/healthz with failing check: status %d body %s", code, body)
	}
	failing = nil

	code, body = get(t, base+"/status")
	if code != 200 {
		t.Fatalf("/status status %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st["partitionsLed"] != float64(3) {
		t.Fatalf("/status content wrong: %v", st)
	}

	code, body = get(t, base+"/debug/slowlog")
	if code != 200 {
		t.Fatalf("/debug/slowlog status %d", code)
	}
	var entries []SlowLogEntry
	if err := json.Unmarshal(body, &entries); err != nil || len(entries) != 1 || entries[0].API != "fetch" {
		t.Fatalf("/debug/slowlog wrong: %v %s", err, body)
	}

	code, _ = get(t, base+"/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	code, body = get(t, base+"/debug/pprof/profile?seconds=1")
	if code != 200 || len(body) == 0 {
		t.Fatalf("/debug/pprof/profile status %d, %d bytes", code, len(body))
	}
}

func TestStartRequiresRegistry(t *testing.T) {
	if _, err := Start(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Start without registry should fail")
	}
}

func TestSlowLogDisplacesFastest(t *testing.T) {
	sl := NewSlowLog(3, time.Hour)
	for i, d := range []time.Duration{10, 30, 20} {
		sl.Observe(SlowLogEntry{API: fmt.Sprintf("a%d", i), Duration: d * time.Millisecond})
	}
	// Faster than everything retained: dropped.
	sl.Observe(SlowLogEntry{API: "fast", Duration: 5 * time.Millisecond})
	// Slower than the current fastest: displaces it.
	sl.Observe(SlowLogEntry{API: "slow", Duration: 40 * time.Millisecond})
	got := sl.Slowest()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	if got[0].API != "slow" || got[1].Duration != 30*time.Millisecond || got[2].Duration != 20*time.Millisecond {
		t.Fatalf("wrong retention order: %+v", got)
	}
}

func TestSlowLogExpiresByAge(t *testing.T) {
	sl := NewSlowLog(8, time.Minute)
	now := time.Unix(1000, 0)
	sl.now = func() time.Time { return now }
	sl.Observe(SlowLogEntry{API: "old", Duration: time.Second})
	now = now.Add(2 * time.Minute)
	sl.Observe(SlowLogEntry{API: "new", Duration: time.Millisecond})
	got := sl.Slowest()
	if len(got) != 1 || got[0].API != "new" {
		t.Fatalf("expiry wrong: %+v", got)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"missing-type":     "no_type_metric 1\n",
		"duplicate-series": "# TYPE a counter\na 1\na 2\n",
		"nan":              "# TYPE a gauge\na NaN\n",
		"duplicate-type":   "# TYPE a counter\n# TYPE a counter\na 1\n",
		"bucket-decrease":  "# TYPE h histogram\nh_bucket{le=\"2\"} 5\nh_bucket{le=\"4\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing-inf":      "# TYPE h histogram\nh_bucket{le=\"2\"} 5\nh_sum 1\nh_count 5\n",
		"count-mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
	}
	for name, text := range cases {
		if _, err := LintExposition([]byte(text)); err == nil {
			t.Fatalf("%s: lint accepted bad exposition:\n%s", name, text)
		}
	}
	good := "# TYPE a counter\na{x=\"1\"} 1\na{x=\"2\"} 2\n# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 4\nh_count 3\n"
	if _, err := LintExposition([]byte(good)); err != nil {
		t.Fatalf("lint rejected good exposition: %v", err)
	}
}

func TestLintRealRegistryOutput(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("c.one").Inc()
	reg.Gauge("g.one").Set(-3)
	h := reg.Histogram("h.one")
	for i := int64(1); i < 2000; i *= 3 {
		h.Observe(i)
	}
	reg.CounterFamily("fam.api", "api", "code").With("produce", "0").Add(7)
	reg.HistogramFamily("fam.lat", "api").With("fetch").Observe(12345)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := LintExposition([]byte(b.String())); err != nil {
		t.Fatalf("real registry output fails lint: %v\n%s", err, b.String())
	}
}

func TestParseExpositionLabels(t *testing.T) {
	samples, err := ParseExposition([]byte("m{topic=\"a\\\"b\",partition=\"3\"} 42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Label("topic") != `a"b` || samples[0].Label("partition") != "3" || samples[0].Value != 42 {
		t.Fatalf("parse wrong: %+v", samples)
	}
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowLogEntry is one recorded request in the slow log.
type SlowLogEntry struct {
	API       string        `json:"api"`
	Principal string        `json:"principal,omitempty"`
	Topic     string        `json:"topic,omitempty"`
	Partition int32         `json:"partition"`
	Duration  time.Duration `json:"durationNs"`
	At        time.Time     `json:"at"`
}

// SlowLog keeps a bounded set of the slowest recent requests. Capacity
// bounds memory; once full, a new observation only enters by displacing the
// current fastest entry, and Slowest drops entries older than the window so
// the log reflects recent behaviour rather than all-time records. Note that
// long-poll fetches legitimately dominate: their duration includes the
// configured wait budget, same as Kafka's request logs.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	window  time.Duration
	entries []SlowLogEntry
	now     func() time.Time
}

// NewSlowLog returns a slow log keeping up to capacity entries from the last
// window (defaults: 64 entries, 10 minutes).
func NewSlowLog(capacity int, window time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 64
	}
	if window <= 0 {
		window = 10 * time.Minute
	}
	return &SlowLog{cap: capacity, window: window, now: time.Now}
}

// Observe offers one completed request to the log.
func (s *SlowLog) Observe(e SlowLogEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.At.IsZero() {
		e.At = s.now()
	}
	s.expireLocked(s.now())
	if len(s.entries) < s.cap {
		s.entries = append(s.entries, e)
		return
	}
	// Full: displace the fastest entry if this one is slower.
	minIdx := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].Duration < s.entries[minIdx].Duration {
			minIdx = i
		}
	}
	if e.Duration > s.entries[minIdx].Duration {
		s.entries[minIdx] = e
	}
}

// expireLocked drops entries older than the window.
func (s *SlowLog) expireLocked(now time.Time) {
	cutoff := now.Add(-s.window)
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.At.After(cutoff) {
			kept = append(kept, e)
		}
	}
	s.entries = kept
}

// Slowest returns the retained entries, slowest first.
func (s *SlowLog) Slowest() []SlowLogEntry {
	s.mu.Lock()
	s.expireLocked(s.now())
	out := append([]SlowLogEntry(nil), s.entries...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Len reports how many entries are currently retained.
func (s *SlowLog) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.now())
	return len(s.entries)
}

package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its labels, and the
// value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of a label, or "" if absent.
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseExposition parses Prometheus text exposition format (the subset our
// writer emits: # TYPE comments, name{labels} value lines) into samples.
// Scrapers, the admin CLI and tests share this parser.
func ParseExposition(text []byte) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(strings.NewReader(string(text)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses one `name{l="v",...} value` line.
func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("no value in %q", line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"` into dst, honouring \\, \" and \n
// escapes.
func parseLabels(in string, dst map[string]string) error {
	for in != "" {
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if len(in) == 0 || in[0] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		in = in[1:]
		var val strings.Builder
		i := 0
		for ; i < len(in); i++ {
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(in) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		dst[key] = val.String()
		in = strings.TrimPrefix(in[i+1:], ",")
	}
	return nil
}

// LintExposition checks exposition text for the properties CI and the chaos
// suite gate on: it parses cleanly, is non-empty, every sample series
// (name + label tuple) is unique, every sample's base family has a # TYPE
// line, no value is NaN or infinite, and histogram cumulative buckets are
// non-decreasing and agree with _count.
func LintExposition(text []byte) ([]Sample, error) {
	samples, err := ParseExposition(text)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("exposition is empty")
	}

	typed := map[string]string{} // family name -> declared type
	sc := bufio.NewScanner(strings.NewReader(string(text)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("malformed TYPE line %q", line)
		}
		if _, dup := typed[fields[2]]; dup {
			return nil, fmt.Errorf("duplicate # TYPE for %q", fields[2])
		}
		typed[fields[2]] = fields[3]
	}

	seen := map[string]bool{}
	for _, s := range samples {
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return nil, fmt.Errorf("sample %s has non-finite value %v", s.Name, s.Value)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("duplicate series %s", key)
		}
		seen[key] = true
		base := s.Name
		if t, ok := typed[base]; !ok || t == "" {
			// Histogram component samples resolve to their base family.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if b, found := strings.CutSuffix(base, suffix); found && typed[b] == "histogram" {
					base = b
					break
				}
			}
			if _, ok := typed[base]; !ok {
				return nil, fmt.Errorf("sample %s has no # TYPE line", s.Name)
			}
		}
	}

	if err := lintHistograms(samples, typed); err != nil {
		return nil, err
	}
	return samples, nil
}

// lintHistograms checks that each histogram series' cumulative buckets are
// non-decreasing and that the +Inf bucket equals _count.
func lintHistograms(samples []Sample, typed map[string]string) error {
	type histState struct {
		last    float64
		inf     float64
		sawInf  bool
		count   float64
		sawCnt  bool
		ordered bool
	}
	hists := map[string]*histState{}
	state := func(name, labelKey string) *histState {
		k := name + labelKey
		h, ok := hists[k]
		if !ok {
			h = &histState{ordered: true}
			hists[k] = h
		}
		return h
	}
	for _, s := range samples {
		if base, ok := strings.CutSuffix(s.Name, "_bucket"); ok && typed[base] == "histogram" {
			h := state(base, labelKeyWithout(s, "le"))
			if s.Value < h.last {
				h.ordered = false
			}
			h.last = s.Value
			if s.Label("le") == "+Inf" {
				h.inf, h.sawInf = s.Value, true
			}
		} else if base, ok := strings.CutSuffix(s.Name, "_count"); ok && typed[base] == "histogram" {
			h := state(base, labelKeyWithout(s, "le"))
			h.count, h.sawCnt = s.Value, true
		}
	}
	for k, h := range hists {
		if !h.ordered {
			return fmt.Errorf("histogram %s: cumulative buckets decrease", k)
		}
		if !h.sawInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", k)
		}
		if h.sawCnt && h.inf != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", k, h.inf, h.count)
		}
	}
	return nil
}

// seriesKey identifies a sample series: name plus sorted label pairs.
func seriesKey(s Sample) string {
	return s.Name + labelKeyWithout(s, "")
}

// labelKeyWithout renders the sample's labels (minus one excluded name,
// e.g. "le") as a canonical sorted string.
func labelKeyWithout(s Sample, exclude string) string {
	if len(s.Labels) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(s.Labels))
	for k, v := range s.Labels {
		if k == exclude && exclude != "" {
			continue
		}
		pairs = append(pairs, k+`="`+v+`"`)
	}
	if len(pairs) == 0 {
		return ""
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// Package obs is the per-broker ops plane: an HTTP server exposing
// Prometheus-format metrics, health checks, a JSON status report, pprof
// profiling, and a slow-request log. It is the paper's §4.3 operability
// story made concrete — the signals an operator needs to run the stack at
// scale (fetch p99, replication lag, fsync cadence, group lag) without
// attaching a debugger. Everything is stdlib-only, like the rest of the
// repo.
package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
)

// HealthCheck is one named /healthz probe. Check returns nil when healthy.
type HealthCheck struct {
	Name  string
	Check func() error
}

// Config configures an ops server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9644" or ":0" for an
	// ephemeral port.
	Addr string
	// Registry backs /metrics. Required.
	Registry *metrics.Registry
	// Health checks back /healthz; all must pass for a 200.
	Health []HealthCheck
	// Status, if set, is marshalled to JSON on /status.
	Status func() any
	// SlowLog, if set, backs /debug/slowlog.
	SlowLog *SlowLog
	// Logger receives serve errors; nil discards them.
	Logger *slog.Logger
}

// Server is a running ops HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// Start binds the configured address and serves in a background goroutine.
func Start(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("obs: Config.Registry is required")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	// pprof registers on http.DefaultServeMux via its init; wire the same
	// handlers onto our private mux so a broker process never exposes
	// whatever else landed on the default mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed && cfg.Logger != nil {
			cfg.Logger.Error("ops server exited", "addr", cfg.Addr, "err", err)
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately. In-flight scrapes are abandoned —
// broker shutdown must not wait on a slow profiling request.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Registry.WritePrometheus(w); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Warn("metrics write failed", "err", err)
	}
}

// healthResult is one check's outcome in the /healthz body.
type healthResult struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	results := make([]healthResult, 0, len(s.cfg.Health))
	healthy := true
	for _, hc := range s.cfg.Health {
		res := healthResult{Name: hc.Name, OK: true}
		if err := hc.Check(); err != nil {
			res.OK = false
			res.Error = err.Error()
			healthy = false
		}
		results = append(results, res)
	}
	w.Header().Set("Content-Type", "application/json")
	if !healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{"healthy": healthy, "checks": results})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Status == nil {
		http.Error(w, "no status source configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.cfg.Status())
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SlowLog == nil {
		http.Error(w, "no slowlog configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, s.cfg.SlowLog.Slowest())
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

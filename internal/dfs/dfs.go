// Package dfs is a miniature distributed file system standing in for
// HDFS/GFS as the substrate of the baseline MR/DFS data integration stack
// the paper argues against (§1, §2). It provides coarse-grained,
// chunk-oriented file storage with namenode-style metadata and a cost
// model that charges the latencies such a system pays in production:
// per-operation metadata RPCs, per-chunk access setup, replication write
// amplification, and bounded bandwidth. Chunks are real files on local
// disk, so data paths are genuinely exercised; the cost model adds the
// distributed-system latencies a local directory would otherwise hide.
// Namenode metadata persists in an fsimage file inside the directory, so
// reopening it (from the same or another process) restores the committed
// namespace — archived data outlives the process that wrote it.
package dfs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the file system.
var (
	// ErrNotFound reports a missing path.
	ErrNotFound = errors.New("dfs: file not found")
	// ErrExists reports a create of an existing path.
	ErrExists = errors.New("dfs: file exists")
	// ErrClosed reports use of a closed handle or file system.
	ErrClosed = errors.New("dfs: closed")
	// ErrReadOnly reports a mutation through a read-only handle.
	ErrReadOnly = errors.New("dfs: read-only file system")
)

// CostModel charges the latencies of a production DFS. Zero values cost
// nothing, so tests can run the data path at memory speed.
type CostModel struct {
	// MetadataOp is the namenode round trip paid by open/create/list/
	// delete/rename/stat.
	MetadataOp time.Duration
	// ChunkAccess is paid per chunk read or written (datanode dial,
	// pipeline setup).
	ChunkAccess time.Duration
	// ReadBandwidth / WriteBandwidth cap throughput in bytes/second
	// (0 = unlimited). Writes are amplified by the replication factor.
	ReadBandwidth  int64
	WriteBandwidth int64
	// Sleep is injectable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// ProductionModel returns a cost model with HDFS-like magnitudes (a few
// ms of metadata latency, ~1ms chunk setup, GbE-class bandwidth).
func ProductionModel() CostModel {
	return CostModel{
		MetadataOp:     2 * time.Millisecond,
		ChunkAccess:    time.Millisecond,
		ReadBandwidth:  125 << 20, // ~1 Gb/s
		WriteBandwidth: 125 << 20,
	}
}

func (c CostModel) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// chargeMeta pays one metadata operation.
func (c CostModel) chargeMeta() { c.sleep(c.MetadataOp) }

// chargeRead pays for reading n bytes of one chunk.
func (c CostModel) chargeRead(n int64) {
	d := c.ChunkAccess
	if c.ReadBandwidth > 0 {
		d += time.Duration(n * int64(time.Second) / c.ReadBandwidth)
	}
	c.sleep(d)
}

// chargeWrite pays for writing n bytes of one chunk with replication.
func (c CostModel) chargeWrite(n int64, replication int) {
	d := c.ChunkAccess
	if c.WriteBandwidth > 0 {
		d += time.Duration(n * int64(replication) * int64(time.Second) / c.WriteBandwidth)
	}
	c.sleep(d)
}

// Config parameterises the file system.
type Config struct {
	// Dir is the local backing directory.
	Dir string
	// ChunkBytes is the chunk size (default 4 MiB).
	ChunkBytes int64
	// Replication is the simulated replica count (write amplification;
	// default 3, as HDFS).
	Replication int
	// Cost charges distributed-system latencies.
	Cost CostModel
	// ReadOnly opens a lock-free reader over the committed fsimage:
	// mutations are refused, and the handle can coexist with one live
	// writer (it sees the namespace as of Open; committed chunks are
	// immutable). Offline scans and backfills use this to read an archive
	// a streaming archiver is still writing.
	ReadOnly bool
}

func (c Config) withDefaults() Config {
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 4 << 20
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	return c
}

// FileInfo describes one file.
type FileInfo struct {
	Path    string
	Size    int64
	Chunks  int
	ModTime time.Time
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	chunks  []string // backing chunk file names
	size    int64
	modTime time.Time
}

// FS is the file system: namenode metadata plus chunk storage.
type FS struct {
	cfg  Config
	lock *os.File // exclusive directory lock held while open

	mu        sync.Mutex
	files     map[string]*fileMeta
	nextChunk int64
	closed    bool

	stats Stats
}

// Stats counts file system activity.
type Stats struct {
	MetadataOps   int64
	BytesRead     int64
	BytesWritten  int64
	ChunksRead    int64
	ChunksWritten int64
}

// Open creates or opens a file system rooted at cfg.Dir. Namenode metadata
// persists in an fsimage file inside the directory, so a file system
// reopened by a later process sees every committed file — the property
// that lets separate archiver, MR, and backfill processes share one tree.
func Open(cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("dfs: Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "chunks"), 0o755); err != nil {
		return nil, err
	}
	// One live WRITING handle per directory: concurrent writers would
	// interleave chunk allocation and overwrite each other's fsimage.
	// Read-only handles skip the lock and read the committed image.
	var lock *os.File
	if !cfg.ReadOnly {
		var err error
		if lock, err = lockDir(cfg.Dir); err != nil {
			return nil, err
		}
	}
	fs := &FS{cfg: cfg, lock: lock, files: make(map[string]*fileMeta)}
	if err := fs.loadImage(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	return fs, nil
}

// persistedFile is one file's record in the fsimage.
type persistedFile struct {
	Chunks    []string `json:"chunks"`
	Size      int64    `json:"size"`
	ModTimeMs int64    `json:"modTimeMs"`
}

// persistedImage is the on-disk namenode state.
type persistedImage struct {
	NextChunk int64                    `json:"nextChunk"`
	Files     map[string]persistedFile `json:"files"`
}

// imagePath locates the fsimage file.
func (fs *FS) imagePath() string { return filepath.Join(fs.cfg.Dir, "namenode.json") }

// loadImage restores namenode metadata written by a previous process.
func (fs *FS) loadImage() error {
	data, err := os.ReadFile(fs.imagePath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	var img persistedImage
	if err := json.Unmarshal(data, &img); err != nil {
		return fmt.Errorf("dfs: corrupt fsimage %s: %w", fs.imagePath(), err)
	}
	fs.nextChunk = img.NextChunk
	for path, pf := range img.Files {
		fs.files[path] = &fileMeta{
			chunks:  pf.Chunks,
			size:    pf.Size,
			modTime: time.UnixMilli(pf.ModTimeMs),
		}
	}
	return nil
}

// persistLocked checkpoints namenode metadata (callers hold fs.mu). The
// write-tmp-then-rename protocol keeps the image atomic; local rename cost
// is not charged — it stands in for the namenode's own journal, not for
// client-visible RPCs. Each commit rewrites the full image (O(files)); an
// append-only journal with periodic compaction would make this O(1) per
// mutation if namespaces grow beyond the tens of thousands of files this
// repo exercises.
func (fs *FS) persistLocked() error {
	img := persistedImage{NextChunk: fs.nextChunk, Files: make(map[string]persistedFile, len(fs.files))}
	for path, meta := range fs.files {
		img.Files[path] = persistedFile{
			Chunks:    meta.chunks,
			Size:      meta.size,
			ModTimeMs: meta.modTime.UnixMilli(),
		}
	}
	data, err := json.Marshal(img)
	if err != nil {
		return err
	}
	tmp := fs.imagePath() + ".tmp"
	if err := writeFileSync(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, fs.imagePath())
}

// writeFileSync writes data to path and fsyncs it before returning, so the
// rename that follows cannot commit a torn image after a crash.
func writeFileSync(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Stats returns activity counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// IsReadOnly reports whether the handle refuses mutations.
func (fs *FS) IsReadOnly() bool { return fs.cfg.ReadOnly }

// Refresh reloads the committed fsimage from disk on a read-only handle,
// advancing its namespace snapshot past files a concurrent writer has
// committed or pruned since Open. Writers own the image and never refresh.
func (fs *FS) Refresh() error {
	if !fs.cfg.ReadOnly {
		return nil
	}
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	fs.stats.MetadataOps++
	fs.files = make(map[string]*fileMeta)
	return fs.loadImage()
}

// chunkPath renders a chunk's backing path.
func (fs *FS) chunkPath(name string) string {
	return filepath.Join(fs.cfg.Dir, "chunks", name)
}

// Create opens a new file for writing. The file becomes visible to
// readers only on Close — the coarse-grained, whole-file semantics that
// make a DFS unsuitable for record-at-a-time access (paper §1).
func (fs *FS) Create(path string) (*Writer, error) {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	if fs.cfg.ReadOnly {
		return nil, fmt.Errorf("%w: create %s", ErrReadOnly, path)
	}
	fs.stats.MetadataOps++
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	return &Writer{fs: fs, path: path}, nil
}

// WriteFile creates path with the given contents.
func (fs *FS) WriteFile(path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Open opens a file for reading.
func (fs *FS) Open(path string) (*Reader, error) {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	fs.stats.MetadataOps++
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	chunks := append([]string(nil), meta.chunks...)
	return &Reader{fs: fs, chunks: chunks, size: meta.size}, nil
}

// ReadFile returns a file's full contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out := make([]byte, 0, r.size)
	buf := make([]byte, fs.cfg.ChunkBytes)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, errEOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// List returns files whose paths start with prefix, sorted.
func (fs *FS) List(prefix string) []FileInfo {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetadataOps++
	var out []FileInfo
	for path, meta := range fs.files {
		if strings.HasPrefix(path, prefix) {
			out = append(out, FileInfo{
				Path:    path,
				Size:    meta.size,
				Chunks:  len(meta.chunks),
				ModTime: meta.modTime,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Stat describes one file.
func (fs *FS) Stat(path string) (FileInfo, error) {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetadataOps++
	meta, ok := fs.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return FileInfo{Path: path, Size: meta.size, Chunks: len(meta.chunks), ModTime: meta.modTime}, nil
}

// Delete removes a file and its chunks. The fsimage is persisted before
// the chunks go, so a crash mid-delete leaves at worst orphan chunks —
// never a committed namespace pointing at missing data.
func (fs *FS) Delete(path string) error {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return ErrClosed
	}
	if fs.cfg.ReadOnly {
		fs.mu.Unlock()
		return fmt.Errorf("%w: delete %s", ErrReadOnly, path)
	}
	meta, ok := fs.files[path]
	if ok {
		delete(fs.files, path)
	}
	fs.stats.MetadataOps++
	var err error
	if ok {
		if err = fs.persistLocked(); err != nil {
			fs.files[path] = meta // persist failed: the delete did not commit
		}
	}
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if err != nil {
		return err
	}
	for _, c := range meta.chunks {
		os.Remove(fs.chunkPath(c))
	}
	return nil
}

// DeletePrefix removes every file under prefix, returning the count.
func (fs *FS) DeletePrefix(prefix string) int {
	n := 0
	for _, info := range fs.List(prefix) {
		if fs.Delete(info.Path) == nil {
			n++
		}
	}
	return n
}

// Rename atomically moves a file — the commit step of MR job output.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	if fs.cfg.ReadOnly {
		return fmt.Errorf("%w: rename %s", ErrReadOnly, oldPath)
	}
	fs.stats.MetadataOps++
	meta, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	if _, ok := fs.files[newPath]; ok {
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = meta
	if err := fs.persistLocked(); err != nil {
		delete(fs.files, newPath)
		fs.files[oldPath] = meta // persist failed: the rename did not commit
		return err
	}
	return nil
}

// Close invalidates the file system handle and releases the directory lock
// (chunks remain on disk).
func (fs *FS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.closed {
		fs.closed = true
		unlockDir(fs.lock)
		fs.lock = nil
	}
	return nil
}

var errEOF = errors.New("dfs: EOF")

// IsEOF reports whether err marks the end of a file.
func IsEOF(err error) bool { return errors.Is(err, errEOF) }

// Writer accumulates chunks; Close commits the file to the namenode.
type Writer struct {
	fs     *FS
	path   string
	buf    []byte
	chunks []string
	size   int64
	done   bool
}

// Write buffers data, spilling full chunks to storage.
func (w *Writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, ErrClosed
	}
	w.buf = append(w.buf, p...)
	w.size += int64(len(p))
	for int64(len(w.buf)) >= w.fs.cfg.ChunkBytes {
		chunk := w.buf[:w.fs.cfg.ChunkBytes]
		if err := w.spill(chunk); err != nil {
			return 0, err
		}
		w.buf = w.buf[w.fs.cfg.ChunkBytes:]
	}
	return len(p), nil
}

// spill writes one chunk to backing storage, paying the write cost.
func (w *Writer) spill(chunk []byte) error {
	w.fs.mu.Lock()
	w.fs.nextChunk++
	name := fmt.Sprintf("c%012d", w.fs.nextChunk)
	w.fs.stats.BytesWritten += int64(len(chunk))
	w.fs.stats.ChunksWritten++
	w.fs.mu.Unlock()
	if err := os.WriteFile(w.fs.chunkPath(name), chunk, 0o644); err != nil {
		return err
	}
	w.fs.cfg.Cost.chargeWrite(int64(len(chunk)), w.fs.cfg.Replication)
	w.chunks = append(w.chunks, name)
	return nil
}

// Close flushes the tail chunk and commits the file.
func (w *Writer) Close() error {
	if w.done {
		return ErrClosed
	}
	w.done = true
	if len(w.buf) > 0 {
		if err := w.spill(w.buf); err != nil {
			return err
		}
	}
	w.fs.cfg.Cost.chargeMeta()
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.closed {
		// The handle was closed (and its directory lock released) after
		// this writer was created; committing now could overwrite an
		// fsimage another process owns.
		return ErrClosed
	}
	w.fs.stats.MetadataOps++
	if _, ok := w.fs.files[w.path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, w.path)
	}
	w.fs.files[w.path] = &fileMeta{chunks: w.chunks, size: w.size, modTime: time.Now()}
	if err := w.fs.persistLocked(); err != nil {
		delete(w.fs.files, w.path) // persist failed: the file did not commit
		return err
	}
	return nil
}

// Abort discards the file's chunks without committing.
func (w *Writer) Abort() {
	w.done = true
	for _, c := range w.chunks {
		os.Remove(w.fs.chunkPath(c))
	}
}

// Reader streams a file chunk by chunk.
type Reader struct {
	fs     *FS
	chunks []string
	size   int64
	idx    int
	cur    []byte
	done   bool
}

// Read fills p from the file, returning errEOF (test with IsEOF) at the
// end.
func (r *Reader) Read(p []byte) (int, error) {
	if r.done {
		return 0, ErrClosed
	}
	for len(r.cur) == 0 {
		if r.idx >= len(r.chunks) {
			return 0, errEOF
		}
		data, err := os.ReadFile(r.fs.chunkPath(r.chunks[r.idx]))
		if err != nil {
			return 0, err
		}
		r.idx++
		r.fs.cfg.Cost.chargeRead(int64(len(data)))
		r.fs.mu.Lock()
		r.fs.stats.BytesRead += int64(len(data))
		r.fs.stats.ChunksRead++
		r.fs.mu.Unlock()
		r.cur = data
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close releases the reader.
func (r *Reader) Close() error {
	r.done = true
	return nil
}

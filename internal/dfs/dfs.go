// Package dfs is a miniature distributed file system standing in for
// HDFS/GFS as the substrate of the baseline MR/DFS data integration stack
// the paper argues against (§1, §2). It provides coarse-grained,
// chunk-oriented file storage with namenode-style metadata and a cost
// model that charges the latencies such a system pays in production:
// per-operation metadata RPCs, per-chunk access setup, replication write
// amplification, and bounded bandwidth. Chunks are real files on local
// disk, so data paths are genuinely exercised; the cost model adds the
// distributed-system latencies a local directory would otherwise hide.
package dfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the file system.
var (
	// ErrNotFound reports a missing path.
	ErrNotFound = errors.New("dfs: file not found")
	// ErrExists reports a create of an existing path.
	ErrExists = errors.New("dfs: file exists")
	// ErrClosed reports use of a closed handle or file system.
	ErrClosed = errors.New("dfs: closed")
)

// CostModel charges the latencies of a production DFS. Zero values cost
// nothing, so tests can run the data path at memory speed.
type CostModel struct {
	// MetadataOp is the namenode round trip paid by open/create/list/
	// delete/rename/stat.
	MetadataOp time.Duration
	// ChunkAccess is paid per chunk read or written (datanode dial,
	// pipeline setup).
	ChunkAccess time.Duration
	// ReadBandwidth / WriteBandwidth cap throughput in bytes/second
	// (0 = unlimited). Writes are amplified by the replication factor.
	ReadBandwidth  int64
	WriteBandwidth int64
	// Sleep is injectable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// ProductionModel returns a cost model with HDFS-like magnitudes (a few
// ms of metadata latency, ~1ms chunk setup, GbE-class bandwidth).
func ProductionModel() CostModel {
	return CostModel{
		MetadataOp:     2 * time.Millisecond,
		ChunkAccess:    time.Millisecond,
		ReadBandwidth:  125 << 20, // ~1 Gb/s
		WriteBandwidth: 125 << 20,
	}
}

func (c CostModel) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// chargeMeta pays one metadata operation.
func (c CostModel) chargeMeta() { c.sleep(c.MetadataOp) }

// chargeRead pays for reading n bytes of one chunk.
func (c CostModel) chargeRead(n int64) {
	d := c.ChunkAccess
	if c.ReadBandwidth > 0 {
		d += time.Duration(n * int64(time.Second) / c.ReadBandwidth)
	}
	c.sleep(d)
}

// chargeWrite pays for writing n bytes of one chunk with replication.
func (c CostModel) chargeWrite(n int64, replication int) {
	d := c.ChunkAccess
	if c.WriteBandwidth > 0 {
		d += time.Duration(n * int64(replication) * int64(time.Second) / c.WriteBandwidth)
	}
	c.sleep(d)
}

// Config parameterises the file system.
type Config struct {
	// Dir is the local backing directory.
	Dir string
	// ChunkBytes is the chunk size (default 4 MiB).
	ChunkBytes int64
	// Replication is the simulated replica count (write amplification;
	// default 3, as HDFS).
	Replication int
	// Cost charges distributed-system latencies.
	Cost CostModel
}

func (c Config) withDefaults() Config {
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 4 << 20
	}
	if c.Replication == 0 {
		c.Replication = 3
	}
	return c
}

// FileInfo describes one file.
type FileInfo struct {
	Path    string
	Size    int64
	Chunks  int
	ModTime time.Time
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	chunks  []string // backing chunk file names
	size    int64
	modTime time.Time
}

// FS is the file system: namenode metadata plus chunk storage.
type FS struct {
	cfg Config

	mu        sync.Mutex
	files     map[string]*fileMeta
	nextChunk int64
	closed    bool

	stats Stats
}

// Stats counts file system activity.
type Stats struct {
	MetadataOps   int64
	BytesRead     int64
	BytesWritten  int64
	ChunksRead    int64
	ChunksWritten int64
}

// Open creates or opens a file system rooted at cfg.Dir.
func Open(cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("dfs: Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "chunks"), 0o755); err != nil {
		return nil, err
	}
	return &FS{cfg: cfg, files: make(map[string]*fileMeta)}, nil
}

// Stats returns activity counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// chunkPath renders a chunk's backing path.
func (fs *FS) chunkPath(name string) string {
	return filepath.Join(fs.cfg.Dir, "chunks", name)
}

// Create opens a new file for writing. The file becomes visible to
// readers only on Close — the coarse-grained, whole-file semantics that
// make a DFS unsuitable for record-at-a-time access (paper §1).
func (fs *FS) Create(path string) (*Writer, error) {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	fs.stats.MetadataOps++
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	return &Writer{fs: fs, path: path}, nil
}

// WriteFile creates path with the given contents.
func (fs *FS) WriteFile(path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

// Open opens a file for reading.
func (fs *FS) Open(path string) (*Reader, error) {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, ErrClosed
	}
	fs.stats.MetadataOps++
	meta, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	chunks := append([]string(nil), meta.chunks...)
	return &Reader{fs: fs, chunks: chunks, size: meta.size}, nil
}

// ReadFile returns a file's full contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	out := make([]byte, 0, r.size)
	buf := make([]byte, fs.cfg.ChunkBytes)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, errEOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// List returns files whose paths start with prefix, sorted.
func (fs *FS) List(prefix string) []FileInfo {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetadataOps++
	var out []FileInfo
	for path, meta := range fs.files {
		if strings.HasPrefix(path, prefix) {
			out = append(out, FileInfo{
				Path:    path,
				Size:    meta.size,
				Chunks:  len(meta.chunks),
				ModTime: meta.modTime,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Stat describes one file.
func (fs *FS) Stat(path string) (FileInfo, error) {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetadataOps++
	meta, ok := fs.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return FileInfo{Path: path, Size: meta.size, Chunks: len(meta.chunks), ModTime: meta.modTime}, nil
}

// Delete removes a file and its chunks.
func (fs *FS) Delete(path string) error {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	meta, ok := fs.files[path]
	if ok {
		delete(fs.files, path)
	}
	fs.stats.MetadataOps++
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	for _, c := range meta.chunks {
		os.Remove(fs.chunkPath(c))
	}
	return nil
}

// DeletePrefix removes every file under prefix, returning the count.
func (fs *FS) DeletePrefix(prefix string) int {
	n := 0
	for _, info := range fs.List(prefix) {
		if fs.Delete(info.Path) == nil {
			n++
		}
	}
	return n
}

// Rename atomically moves a file — the commit step of MR job output.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.cfg.Cost.chargeMeta()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetadataOps++
	meta, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	if _, ok := fs.files[newPath]; ok {
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = meta
	return nil
}

// Close invalidates the file system handle (chunks remain on disk).
func (fs *FS) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.closed = true
	return nil
}

var errEOF = errors.New("dfs: EOF")

// IsEOF reports whether err marks the end of a file.
func IsEOF(err error) bool { return errors.Is(err, errEOF) }

// Writer accumulates chunks; Close commits the file to the namenode.
type Writer struct {
	fs     *FS
	path   string
	buf    []byte
	chunks []string
	size   int64
	done   bool
}

// Write buffers data, spilling full chunks to storage.
func (w *Writer) Write(p []byte) (int, error) {
	if w.done {
		return 0, ErrClosed
	}
	w.buf = append(w.buf, p...)
	w.size += int64(len(p))
	for int64(len(w.buf)) >= w.fs.cfg.ChunkBytes {
		chunk := w.buf[:w.fs.cfg.ChunkBytes]
		if err := w.spill(chunk); err != nil {
			return 0, err
		}
		w.buf = w.buf[w.fs.cfg.ChunkBytes:]
	}
	return len(p), nil
}

// spill writes one chunk to backing storage, paying the write cost.
func (w *Writer) spill(chunk []byte) error {
	w.fs.mu.Lock()
	w.fs.nextChunk++
	name := fmt.Sprintf("c%012d", w.fs.nextChunk)
	w.fs.stats.BytesWritten += int64(len(chunk))
	w.fs.stats.ChunksWritten++
	w.fs.mu.Unlock()
	if err := os.WriteFile(w.fs.chunkPath(name), chunk, 0o644); err != nil {
		return err
	}
	w.fs.cfg.Cost.chargeWrite(int64(len(chunk)), w.fs.cfg.Replication)
	w.chunks = append(w.chunks, name)
	return nil
}

// Close flushes the tail chunk and commits the file.
func (w *Writer) Close() error {
	if w.done {
		return ErrClosed
	}
	w.done = true
	if len(w.buf) > 0 {
		if err := w.spill(w.buf); err != nil {
			return err
		}
	}
	w.fs.cfg.Cost.chargeMeta()
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.stats.MetadataOps++
	if _, ok := w.fs.files[w.path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, w.path)
	}
	w.fs.files[w.path] = &fileMeta{chunks: w.chunks, size: w.size, modTime: time.Now()}
	return nil
}

// Abort discards the file's chunks without committing.
func (w *Writer) Abort() {
	w.done = true
	for _, c := range w.chunks {
		os.Remove(w.fs.chunkPath(c))
	}
}

// Reader streams a file chunk by chunk.
type Reader struct {
	fs     *FS
	chunks []string
	size   int64
	idx    int
	cur    []byte
	done   bool
}

// Read fills p from the file, returning errEOF (test with IsEOF) at the
// end.
func (r *Reader) Read(p []byte) (int, error) {
	if r.done {
		return 0, ErrClosed
	}
	for len(r.cur) == 0 {
		if r.idx >= len(r.chunks) {
			return 0, errEOF
		}
		data, err := os.ReadFile(r.fs.chunkPath(r.chunks[r.idx]))
		if err != nil {
			return 0, err
		}
		r.idx++
		r.fs.cfg.Cost.chargeRead(int64(len(data)))
		r.fs.mu.Lock()
		r.fs.stats.BytesRead += int64(len(data))
		r.fs.stats.ChunksRead++
		r.fs.mu.Unlock()
		r.cur = data
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Close releases the reader.
func (r *Reader) Close() error {
	r.done = true
	return nil
}

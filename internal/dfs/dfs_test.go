package dfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func openFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	cfg.Dir = t.TempDir()
	fs, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := openFS(t, Config{ChunkBytes: 64})
	data := bytes.Repeat([]byte("0123456789"), 50) // 500B -> 8 chunks
	if err := fs.WriteFile("/data/input", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/data/input")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %d bytes, want %d", len(got), len(data))
	}
	info, err := fs.Stat("/data/input")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 500 || info.Chunks != 8 {
		t.Fatalf("stat = %+v", info)
	}
}

func TestCreateExclusive(t *testing.T) {
	fs := openFS(t, Config{})
	if err := fs.WriteFile("/f", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("b")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestFileInvisibleUntilClose(t *testing.T) {
	fs := openFS(t, Config{})
	w, err := fs.Create("/pending")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("partial"))
	if _, err := fs.Open("/pending"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted file visible: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/pending"); err != nil {
		t.Fatalf("committed file not visible: %v", err)
	}
}

func TestAbortDiscards(t *testing.T) {
	fs := openFS(t, Config{ChunkBytes: 4})
	w, _ := fs.Create("/a")
	w.Write([]byte("12345678")) // spills chunks
	w.Abort()
	if _, err := fs.Open("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted file visible: %v", err)
	}
}

func TestListAndDelete(t *testing.T) {
	fs := openFS(t, Config{})
	fs.WriteFile("/logs/a", []byte("1"))
	fs.WriteFile("/logs/b", []byte("2"))
	fs.WriteFile("/other/c", []byte("3"))
	got := fs.List("/logs/")
	if len(got) != 2 || got[0].Path != "/logs/a" || got[1].Path != "/logs/b" {
		t.Fatalf("List = %+v", got)
	}
	if err := fs.Delete("/logs/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/logs/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if n := fs.DeletePrefix("/logs/"); n != 1 {
		t.Fatalf("DeletePrefix = %d", n)
	}
	if len(fs.List("/")) != 1 {
		t.Fatal("wrong survivors")
	}
}

func TestRename(t *testing.T) {
	fs := openFS(t, Config{})
	fs.WriteFile("/tmp/x", []byte("data"))
	if err := fs.Rename("/tmp/x", "/out/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/tmp/x"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old path still visible")
	}
	got, err := fs.ReadFile("/out/x")
	if err != nil || string(got) != "data" {
		t.Fatalf("renamed contents = %q %v", got, err)
	}
	fs.WriteFile("/tmp/y", []byte("other"))
	if err := fs.Rename("/tmp/y", "/out/x"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename over existing: %v", err)
	}
	if err := fs.Rename("/missing", "/z"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	fs := openFS(t, Config{ChunkBytes: 100})
	fs.WriteFile("/f", bytes.Repeat([]byte("x"), 250))
	fs.ReadFile("/f")
	s := fs.Stats()
	if s.BytesWritten != 250 || s.ChunksWritten != 3 {
		t.Fatalf("write stats = %+v", s)
	}
	if s.BytesRead != 250 || s.ChunksRead != 3 {
		t.Fatalf("read stats = %+v", s)
	}
	if s.MetadataOps == 0 {
		t.Fatal("no metadata ops recorded")
	}
}

func TestCostModelCharged(t *testing.T) {
	var mu sync.Mutex
	var slept time.Duration
	cost := CostModel{
		MetadataOp:  time.Millisecond,
		ChunkAccess: time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept += d
			mu.Unlock()
		},
	}
	fs := openFS(t, Config{ChunkBytes: 100, Cost: cost})
	fs.WriteFile("/f", bytes.Repeat([]byte("x"), 250)) // create meta + 3 chunks + commit meta
	mu.Lock()
	got := slept
	mu.Unlock()
	want := 2*time.Millisecond + 3*time.Millisecond
	if got != want {
		t.Fatalf("charged %v, want %v", got, want)
	}
}

func TestBandwidthCharge(t *testing.T) {
	var mu sync.Mutex
	var slept time.Duration
	cost := CostModel{
		WriteBandwidth: 1 << 20, // 1 MiB/s
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept += d
			mu.Unlock()
		},
	}
	fs := openFS(t, Config{ChunkBytes: 1 << 20, Replication: 2, Cost: cost})
	fs.WriteFile("/f", bytes.Repeat([]byte("x"), 1<<19)) // 0.5 MiB * 2 replicas
	mu.Lock()
	got := slept
	mu.Unlock()
	if got != time.Second {
		t.Fatalf("charged %v, want 1s (0.5MiB at 1MiB/s with 2 replicas)", got)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := openFS(t, Config{})
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read = %d bytes, %v", len(got), err)
	}
}

func TestClosedFS(t *testing.T) {
	fs := openFS(t, Config{})
	if err := fs.WriteFile("/pre", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w, err := fs.Create("/late")
	if err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if _, err := fs.Create("/x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("create on closed: %v", err)
	}
	if _, err := fs.Open("/x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("open on closed: %v", err)
	}
	// Mutations after Close must not touch the fsimage: the directory
	// lock is gone and another process may own it now.
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("writer commit on closed: %v", err)
	}
	if err := fs.Delete("/pre"); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete on closed: %v", err)
	}
	if err := fs.Rename("/pre", "/post"); !errors.Is(err, ErrClosed) {
		t.Fatalf("rename on closed: %v", err)
	}
}

func TestNamenodePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/keep/a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/keep/b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/drop", []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/drop"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/keep/b", "/keep/c"); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// A second process opens the same directory: committed state must be
	// exactly what the first one left.
	fs2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.ReadFile("/keep/a")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("reopen read /keep/a = %q, %v", got, err)
	}
	got, err = fs2.ReadFile("/keep/c")
	if err != nil || string(got) != "beta" {
		t.Fatalf("reopen read /keep/c = %q, %v", got, err)
	}
	if _, err := fs2.Open("/drop"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted file visible after reopen: %v", err)
	}
	if _, err := fs2.Open("/keep/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renamed-away path visible after reopen: %v", err)
	}
	// New writes must not collide with chunk names from the first run.
	if err := fs2.WriteFile("/keep/d", []byte("delta")); err != nil {
		t.Fatal(err)
	}
	got, err = fs2.ReadFile("/keep/a")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("old file damaged by new writes: %q, %v", got, err)
	}
}

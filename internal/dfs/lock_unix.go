//go:build unix

package dfs

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on the directory, so two live FS
// handles cannot interleave chunk allocation or fsimage writes. The lock
// dies with the process, so a crash never wedges the directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("dfs: %s is in use by another file system handle: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the advisory lock.
func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}

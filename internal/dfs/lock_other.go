//go:build !unix

package dfs

import "os"

// lockDir is a no-op on platforms without flock; single-handle discipline
// is then the caller's responsibility.
func lockDir(string) (*os.File, error) { return nil, nil }

// unlockDir matches lockDir.
func unlockDir(*os.File) {}

//go:build unix

package dfs

import (
	"errors"
	"testing"
)

func TestDirectoryLockIsExclusive(t *testing.T) {
	dir := t.TempDir()
	fs1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("second writing Open of a live directory succeeded; want lock error")
	}
	fs1.Close()
	fs2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	fs2.Close()
}

func TestReadOnlyCoexistsWithWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteFile("/a", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	// A read-only handle opens lock-free while the writer is live and
	// sees the committed namespace as of its Open.
	r, err := Open(Config{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open alongside live writer: %v", err)
	}
	defer r.Close()
	got, err := r.ReadFile("/a")
	if err != nil || string(got) != "committed" {
		t.Fatalf("read-only read = %q, %v", got, err)
	}
	// Mutations through the read-only handle are refused.
	if _, err := r.Create("/b"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create on read-only = %v, want ErrReadOnly", err)
	}
	if err := r.Delete("/a"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete on read-only = %v, want ErrReadOnly", err)
	}
	if err := r.Rename("/a", "/z"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("rename on read-only = %v, want ErrReadOnly", err)
	}
	// Refresh advances the snapshot past the writer's newer commits.
	if err := w.WriteFile("/b", []byte("later")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFile("/b"); err == nil {
		t.Fatal("stale snapshot saw a file committed after Open")
	}
	if err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	got, err = r.ReadFile("/b")
	if err != nil || string(got) != "later" {
		t.Fatalf("post-refresh read = %q, %v", got, err)
	}
}

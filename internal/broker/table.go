package broker

import (
	"repro/internal/state"
	"repro/internal/table"
	"repro/internal/wire"
)

// The broker-side table host: every compacted feed created with
// TopicSpec.Table gets, on each partition's CURRENT LEADER, a
// table.Partition materializing the committed log into a key→value view.
// Attachment follows leadership exactly like tier adoption — promoted
// leaders bootstrap from offset 0 through the same committed-read path
// consumers use, demoted leaders drop their view (the next leader rebuilds
// from its own log, which replication guarantees holds every acked write).

// replicaSource adapts a replica's committed read path to table.Source.
type replicaSource struct{ r *replica }

func (s replicaSource) ReadCommitted(offset int64, maxBytes int) ([]byte, int64, int64, wire.ErrorCode) {
	return s.r.readForConsumer(offset, maxBytes)
}

func (s replicaSource) Notify() <-chan struct{} { return s.r.notifyChan() }

// tableFor returns the table partition served for t, if any.
func (b *Broker) tableFor(t tp) *table.Partition {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tables[t]
}

// attachTable starts materializing a table partition this broker now leads.
func (b *Broker) attachTable(t tp, r *replica) {
	p := table.NewPartition(replicaSource{r: r}, state.NewMem())
	b.mu.Lock()
	if b.stopped || b.tables[t] != nil {
		b.mu.Unlock()
		p.Close()
		return
	}
	b.tables[t] = p
	b.mu.Unlock()
	b.logger.Info("table attached", "tp", t.String())
}

// detachTable stops and drops the table partition for t, if attached.
func (b *Broker) detachTable(t tp) {
	b.mu.Lock()
	p := b.tables[t]
	delete(b.tables, t)
	b.mu.Unlock()
	if p != nil {
		p.Close()
		b.logger.Info("table detached", "tp", t.String())
	}
}

// detachAllTables closes every table partition (shutdown path).
func (b *Broker) detachAllTables() {
	b.mu.Lock()
	tables := b.tables
	b.tables = make(map[tp]*table.Partition)
	b.mu.Unlock()
	for _, p := range tables {
		p.Close()
	}
}

// tableView resolves a read to the locally-served table partition, or the
// error code the client should act on: unknown partition, not leader
// (routing refresh), or leader-without-view (attach in progress; retry).
func (b *Broker) tableView(topic string, partition int32) (*table.Partition, *replica, wire.ErrorCode) {
	t := tp{topic: topic, partition: partition}
	r := b.getReplica(t)
	if r == nil {
		return nil, nil, wire.ErrUnknownTopicOrPartition
	}
	if _, _, _, isLeader := r.snapshotState(); !isLeader {
		return nil, nil, wire.ErrNotLeaderForPartition
	}
	p := b.tableFor(t)
	if p == nil || p.Err() != nil {
		return nil, nil, wire.ErrTableNotServed
	}
	return p, r, wire.ErrNone
}

// checkTableLag enforces the request's staleness bound. A negative bound
// accepts anything; otherwise the view must trail the high watermark by at
// most maxLag offsets.
func checkTableLag(applied, hw, maxLag int64) wire.ErrorCode {
	if maxLag >= 0 && hw-applied > maxLag {
		return wire.ErrTableStale
	}
	return wire.ErrNone
}

func (b *Broker) handleTableGet(req *wire.TableGetRequest) *wire.TableGetResponse {
	resp := &wire.TableGetResponse{}
	p, r, code := b.tableView(req.Topic, req.Partition)
	if code != wire.ErrNone {
		resp.Err = code
		return resp
	}
	_, epoch, _, _ := r.snapshotState()
	resp.LeaderEpoch = epoch
	resp.AppliedOffset, resp.HighWatermark = p.Freshness()
	if code := checkTableLag(resp.AppliedOffset, resp.HighWatermark, req.MaxLagOffsets); code != wire.ErrNone {
		resp.Err = code // freshness watermark still reported
		return resp
	}
	v, found, err := p.Get(req.Key)
	if err != nil {
		resp.Err = wire.ErrUnknown
		return resp
	}
	resp.Found = found
	resp.Value = v
	b.cfg.Metrics.Counter("broker.table.gets").Inc()
	return resp
}

// maxTableRangeEntries caps one range response regardless of the requested
// limit so a scan cannot blow the frame budget.
const maxTableRangeEntries = 10_000

func (b *Broker) handleTableRange(req *wire.TableRangeRequest) *wire.TableRangeResponse {
	resp := &wire.TableRangeResponse{}
	p, r, code := b.tableView(req.Topic, req.Partition)
	if code != wire.ErrNone {
		resp.Err = code
		return resp
	}
	_, epoch, _, _ := r.snapshotState()
	resp.LeaderEpoch = epoch
	resp.AppliedOffset, resp.HighWatermark = p.Freshness()
	resp.ApproxLen = int64(p.ApproxLen())
	if code := checkTableLag(resp.AppliedOffset, resp.HighWatermark, req.MaxLagOffsets); code != wire.ErrNone {
		resp.Err = code
		return resp
	}
	limit := req.Limit
	if limit <= 0 {
		return resp // status-only probe
	}
	if limit > maxTableRangeEntries {
		limit = maxTableRangeEntries
	}
	err := p.Range(req.From, req.To, func(k, v []byte) bool {
		if int32(len(resp.Entries)) == limit {
			resp.More = true
			return false
		}
		resp.Entries = append(resp.Entries, wire.TableEntry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		resp.Err = wire.ErrUnknown
		resp.Entries = nil
		return resp
	}
	b.cfg.Metrics.Counter("broker.table.ranges").Inc()
	return resp
}

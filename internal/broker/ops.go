package broker

// Ops plane: the labeled metric families, slow-request log, health checks
// and status report behind the per-broker observability endpoints
// (internal/obs). Everything here is stdlib-only and designed to stay off
// the hot path: families are pre-resolved once at startup so a request
// records into child metrics via one RLock map hit, and the gauge families
// that require walking broker state (replication lag, group lag, checkpoint
// age, table freshness) are rebuilt by a 1s housekeeping tick instead of
// being computed per scrape.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage/log"
	"repro/internal/table"
	"repro/internal/wire"
)

// slowLogCapacity bounds the ring of slowest recent requests kept for
// /debug/slowlog; slowLogWindow ages entries out so the page reflects the
// recent past, not the slowest requests since boot.
const (
	slowLogCapacity = 128
	slowLogWindow   = 10 * time.Minute
)

// walHealthLag is the WAL checkpoint age beyond which /healthz degrades:
// a log that has carried unsynced bytes for this long means the sync loop
// is wedged or the disk has stalled.
const walHealthLag = 5 * time.Second

// brokerMetrics pre-resolves every labeled family the request path and the
// ops tick record into. Resolving the family once (instead of per request)
// keeps the per-request cost to a child lookup plus atomic adds.
type brokerMetrics struct {
	// Per-API request instrumentation, recorded by serveConn around
	// dispatch.
	apiRequests *metrics.CounterFamily   // broker.api.requests{api}
	apiLatency  *metrics.HistogramFamily // broker.api.latency.ns{api}
	apiBytesIn  *metrics.CounterFamily   // broker.api.bytes.in{api}
	apiErrors   *metrics.CounterFamily   // broker.api.errors{api,code}

	// Fetch service path: zero-copy splice vs buffered re-encode.
	fetchServed *metrics.CounterFamily // broker.fetch.served{path}

	// Gauge families rebuilt each opsTick. Every tuple carries this
	// broker's id label so that, when several brokers share one registry
	// (the in-process core.Stack), each tick retires only its own stale
	// tuples via DeleteWhere instead of wiping its peers' with Reset.
	id                string               // this broker's id, as a label value
	replicaLagOffsets *metrics.GaugeFamily // broker.replica.lag.offsets{broker,topic,partition,follower}
	replicaLagMs      *metrics.GaugeFamily // broker.replica.lag.ms{broker,topic,partition,follower}
	groupLag          *metrics.GaugeFamily // broker.group.lag{broker,group,topic,partition}
	checkpointAgeMs   *metrics.GaugeFamily // log.checkpoint.age.ms{broker,topic,partition}
	tableLag          *metrics.GaugeFamily // broker.table.lag.offsets{broker,topic,partition}
	tableApplied      *metrics.GaugeFamily // broker.table.applied.offset{broker,topic,partition}

	slowlog *obs.SlowLog

	// now is the broker's injected clock, for slow-log timestamps.
	now func() time.Time
}

func newBrokerMetrics(reg *metrics.Registry, brokerID int32, now func() time.Time) *brokerMetrics {
	return &brokerMetrics{
		now:               now,
		id:                strconv.Itoa(int(brokerID)),
		apiRequests:       reg.CounterFamily("broker.api.requests", "api"),
		apiLatency:        reg.HistogramFamily("broker.api.latency.ns", "api"),
		apiBytesIn:        reg.CounterFamily("broker.api.bytes.in", "api"),
		apiErrors:         reg.CounterFamily("broker.api.errors", "api", "code"),
		fetchServed:       reg.CounterFamily("broker.fetch.served", "path"),
		replicaLagOffsets: reg.GaugeFamily("broker.replica.lag.offsets", "broker", "topic", "partition", "follower"),
		replicaLagMs:      reg.GaugeFamily("broker.replica.lag.ms", "broker", "topic", "partition", "follower"),
		groupLag:          reg.GaugeFamily("broker.group.lag", "broker", "group", "topic", "partition"),
		checkpointAgeMs:   reg.GaugeFamily("log.checkpoint.age.ms", "broker", "topic", "partition"),
		tableLag:          reg.GaugeFamily("broker.table.lag.offsets", "broker", "topic", "partition"),
		tableApplied:      reg.GaugeFamily("broker.table.applied.offset", "broker", "topic", "partition"),
		slowlog:           obs.NewSlowLog(slowLogCapacity, slowLogWindow),
	}
}

// purge retires every gauge tuple this broker exported. Called on shutdown:
// a standalone broker's metrics endpoint dies with the process, but in an
// in-process stack the shared registry outlives the broker, and a dead
// broker's last gauge values must not linger on its peers' /metrics.
func (m *brokerMetrics) purge() {
	m.replicaLagOffsets.DeleteWhere("broker", m.id)
	m.replicaLagMs.DeleteWhere("broker", m.id)
	m.checkpointAgeMs.DeleteWhere("broker", m.id)
	m.groupLag.DeleteWhere("broker", m.id)
	m.tableLag.DeleteWhere("broker", m.id)
	m.tableApplied.DeleteWhere("broker", m.id)
}

// noteRequest records one dispatched request into the per-API families and
// the slow log. d includes handler time only (frame read/write excluded);
// for long-poll fetches it includes the wait budget, same as Kafka's
// request logs — a "slow" fetch is usually an idle one.
func (m *brokerMetrics) noteRequest(api wire.APIKey, principal string, reqBytes int, resp wire.Message, d time.Duration) {
	name := api.String()
	m.apiRequests.With(name).Inc()
	m.apiLatency.With(name).Observe(int64(d))
	m.apiBytesIn.With(name).Add(int64(reqBytes))
	for _, code := range respErrorCodes(resp) {
		// ErrorCode.String() is prose; the numeric code keeps label
		// values short and stable.
		m.apiErrors.With(name, strconv.Itoa(int(code))).Inc()
	}
	topic, partition := respDetail(resp)
	m.slowlog.Observe(obs.SlowLogEntry{
		API:       name,
		Principal: principal,
		Topic:     topic,
		Partition: partition,
		Duration:  d,
		At:        m.now(),
	})
}

// respDetail extracts the first topic/partition a response touches, for
// slow-log attribution. Multi-partition requests are attributed to their
// first entry — the slow log is a pointer, not an audit trail.
func respDetail(resp wire.Message) (string, int32) {
	switch r := resp.(type) {
	case *wire.ProduceResponse:
		if len(r.Topics) > 0 && len(r.Topics[0].Partitions) > 0 {
			return r.Topics[0].Name, r.Topics[0].Partitions[0].Partition
		}
	case *wire.FetchResponse:
		if len(r.Topics) > 0 && len(r.Topics[0].Partitions) > 0 {
			return r.Topics[0].Name, r.Topics[0].Partitions[0].Partition
		}
	case *wire.ListOffsetsResponse:
		if len(r.Topics) > 0 && len(r.Topics[0].Partitions) > 0 {
			return r.Topics[0].Name, r.Topics[0].Partitions[0].Partition
		}
	case *wire.OffsetCommitResponse:
		if len(r.Topics) > 0 && len(r.Topics[0].Partitions) > 0 {
			return r.Topics[0].Name, r.Topics[0].Partitions[0].Partition
		}
	case *wire.OffsetFetchResponse:
		if len(r.Topics) > 0 && len(r.Topics[0].Partitions) > 0 {
			return r.Topics[0].Name, r.Topics[0].Partitions[0].Partition
		}
	case *wire.TierStatusResponse:
		if len(r.Topics) > 0 && len(r.Topics[0].Partitions) > 0 {
			return r.Topics[0].Name, r.Topics[0].Partitions[0].Partition
		}
	case *wire.CreateTopicsResponse:
		if len(r.Results) > 0 {
			return r.Results[0].Name, -1
		}
	case *wire.DeleteTopicsResponse:
		if len(r.Results) > 0 {
			return r.Results[0].Name, -1
		}
	}
	return "", -1
}

// respErrorCodes collects the non-zero error codes a response carries, so
// broker.api.errors{api,code} counts failures by kind without the handlers
// having to thread instrumentation through every early return.
func respErrorCodes(resp wire.Message) []wire.ErrorCode {
	var out []wire.ErrorCode
	add := func(c wire.ErrorCode) {
		if c != wire.ErrNone {
			out = append(out, c)
		}
	}
	switch r := resp.(type) {
	case *wire.ProduceResponse:
		for i := range r.Topics {
			for j := range r.Topics[i].Partitions {
				add(r.Topics[i].Partitions[j].Err)
			}
		}
	case *wire.FetchResponse:
		for i := range r.Topics {
			for j := range r.Topics[i].Partitions {
				add(r.Topics[i].Partitions[j].Err)
			}
		}
	case *wire.ListOffsetsResponse:
		for i := range r.Topics {
			for j := range r.Topics[i].Partitions {
				add(r.Topics[i].Partitions[j].Err)
			}
		}
	case *wire.OffsetCommitResponse:
		for i := range r.Topics {
			for j := range r.Topics[i].Partitions {
				add(r.Topics[i].Partitions[j].Err)
			}
		}
	case *wire.OffsetFetchResponse:
		for i := range r.Topics {
			for j := range r.Topics[i].Partitions {
				add(r.Topics[i].Partitions[j].Err)
			}
		}
	case *wire.CreateTopicsResponse:
		for i := range r.Results {
			add(r.Results[i].Err)
		}
	case *wire.DeleteTopicsResponse:
		for i := range r.Results {
			add(r.Results[i].Err)
		}
	case *wire.AlterQuotasResponse:
		for i := range r.Results {
			add(r.Results[i].Err)
		}
	case *wire.OffsetQueryResponse:
		add(r.Err)
	case *wire.InitProducerResponse:
		add(r.Err)
	case *wire.FindCoordinatorResponse:
		add(r.Err)
	case *wire.JoinGroupResponse:
		add(r.Err)
	case *wire.SyncGroupResponse:
		add(r.Err)
	case *wire.HeartbeatResponse:
		add(r.Err)
	case *wire.LeaveGroupResponse:
		add(r.Err)
	case *wire.DescribeQuotasResponse:
		add(r.Err)
	case *wire.TableGetResponse:
		add(r.Err)
	case *wire.TableRangeResponse:
		add(r.Err)
	}
	return out
}

// ------------------------------------------------------------ ops tick

// opsTick rebuilds the gauge families that mirror broker state: replication
// lag per follower, consumer-group lag per committed stream, WAL checkpoint
// age and table-materializer freshness. Delete+rebuild (rather than
// incremental updates) is what retires tuples for partitions or groups this
// broker stopped hosting — a stale gauge is worse than a missing one. The
// deletion is scoped to this broker's own label so concurrent ticks from
// other brokers sharing the registry never wipe each other's tuples.
func (b *Broker) opsTick(now time.Time) {
	if b.met == nil {
		return
	}
	m := b.met

	m.replicaLagOffsets.DeleteWhere("broker", m.id)
	m.replicaLagMs.DeleteWhere("broker", m.id)
	m.checkpointAgeMs.DeleteWhere("broker", m.id)
	for _, r := range b.replicaSnapshot() {
		topic, part := r.tp.topic, strconv.Itoa(int(r.tp.partition))
		for _, f := range r.followerLags(now) {
			fl := strconv.Itoa(int(f.id))
			m.replicaLagOffsets.With(m.id, topic, part, fl).Set(f.offsets)
			m.replicaLagMs.With(m.id, topic, part, fl).Set(f.ms)
		}
		m.checkpointAgeMs.With(m.id, topic, part).Set(r.log.DurabilityLag(now).Milliseconds())
	}

	m.groupLag.DeleteWhere("broker", m.id)
	for _, gl := range b.offsets.lagSnapshot() {
		if gl.Lag < 0 {
			continue // HW not resolvable locally; another broker exports it
		}
		m.groupLag.With(m.id, gl.Group, gl.Topic, strconv.Itoa(int(gl.Partition))).Set(gl.Lag)
	}

	m.tableLag.DeleteWhere("broker", m.id)
	m.tableApplied.DeleteWhere("broker", m.id)
	b.mu.Lock()
	tables := make(map[tp]tableFreshness, len(b.tables))
	for t, p := range b.tables {
		applied, hw := p.Freshness()
		tables[t] = tableFreshness{applied: applied, hw: hw}
	}
	b.mu.Unlock()
	for t, f := range tables {
		part := strconv.Itoa(int(t.partition))
		lag := f.hw - f.applied
		if lag < 0 {
			lag = 0
		}
		m.tableLag.With(m.id, t.topic, part).Set(lag)
		m.tableApplied.With(m.id, t.topic, part).Set(f.applied)
	}
}

type tableFreshness struct{ applied, hw int64 }

// ------------------------------------------------------------ health

// healthChecks builds the /healthz probes: coordination-session liveness
// (a broker whose session expired is about to lose all its leaderships),
// WAL durability (no log has carried unsynced bytes past walHealthLag),
// and counter monotonicity (metrics.NegativeAdds, which flags instrumented
// code handing negative deltas to counters).
func (b *Broker) healthChecks() []obs.HealthCheck {
	return []obs.HealthCheck{
		{Name: "coord-session", Check: func() error {
			if !b.store.SessionAlive(b.session) {
				return errSessionExpired
			}
			return nil
		}},
		{Name: "wal-durability", Check: func() error {
			if b.cfg.Durability.Policy == log.SyncNone {
				return nil // nothing is promised, nothing can be late
			}
			now := b.cfg.Now()
			for _, r := range b.replicaSnapshot() {
				if lag := r.log.DurabilityLag(now); lag > walHealthLag {
					return fmt.Errorf("%s unsynced for %s", r.tp.String(), lag.Round(time.Millisecond))
				}
			}
			return nil
		}},
		{Name: "metrics-monotone", Check: func() error {
			if n := metrics.NegativeAdds(); n > 0 {
				return fmt.Errorf("%d negative counter adds", n)
			}
			return nil
		}},
	}
}

var errSessionExpired = errors.New("coordination session expired")

// ------------------------------------------------------------ status

// statusReport is the /status document: a point-in-time JSON snapshot of
// everything an operator asks first — what this broker leads, how far its
// followers and tables are behind, how much data is hot vs tiered cold,
// and whether quotas are biting.
type statusReport struct {
	Broker     int32             `json:"broker"`
	Addr       string            `json:"addr"`
	OpsAddr    string            `json:"opsAddr"`
	Controller int32             `json:"controller"`
	Partitions []partitionStatus `json:"partitions"`
	Tables     []tableStatus     `json:"tables,omitempty"`
	Throttles  map[string]int64  `json:"quotaThrottles"`
	SlowLogLen int               `json:"slowlogLen"`
}

type partitionStatus struct {
	Topic         string  `json:"topic"`
	Partition     int32   `json:"partition"`
	Leader        bool    `json:"leader"`
	LeaderID      int32   `json:"leaderId"`
	Epoch         int32   `json:"epoch"`
	ISR           []int32 `json:"isr,omitempty"`
	StartOffset   int64   `json:"startOffset"`
	NextOffset    int64   `json:"nextOffset"`
	HighWatermark int64   `json:"highWatermark"`
	HotSegments   int     `json:"hotSegments"`
	HotBytes      int64   `json:"hotBytes"`
	ColdSegments  int     `json:"coldSegments,omitempty"`
	ColdBytes     int64   `json:"coldBytes,omitempty"`
	Producers     int     `json:"producers,omitempty"`
	SyncLagMs     int64   `json:"syncLagMs,omitempty"`
}

type tableStatus struct {
	Topic         string `json:"topic"`
	Partition     int32  `json:"partition"`
	AppliedOffset int64  `json:"appliedOffset"`
	HighWatermark int64  `json:"highWatermark"`
	Rows          int    `json:"rows"`
}

// statusReportNow assembles the /status snapshot.
func (b *Broker) statusReportNow() statusReport {
	now := b.cfg.Now()
	rep := statusReport{
		Broker:     b.cfg.ID,
		Addr:       b.Addr(),
		OpsAddr:    b.OpsAddr(),
		Controller: b.reg.ControllerID(),
		Throttles:  map[string]int64{},
	}
	for _, kind := range []string{"request", "produce", "fetch"} {
		rep.Throttles[kind] = b.cfg.Metrics.Counter("broker.quota.throttles." + kind).Value()
	}
	if b.met != nil {
		rep.SlowLogLen = b.met.slowlog.Len()
	}

	for _, r := range b.replicaSnapshot() {
		r.mu.Lock()
		ps := partitionStatus{
			Topic:         r.tp.topic,
			Partition:     r.tp.partition,
			Leader:        r.isLeader,
			LeaderID:      r.leaderID,
			Epoch:         r.epoch,
			ISR:           append([]int32(nil), r.isr...),
			HighWatermark: r.hw,
		}
		t := r.tier
		r.mu.Unlock()
		ps.StartOffset = r.log.StartOffset()
		ps.NextOffset = r.log.NextOffset()
		ps.HotSegments = r.log.SegmentCount()
		ps.HotBytes = r.log.Size()
		ps.Producers = r.log.ProducerCount()
		ps.SyncLagMs = r.log.DurabilityLag(now).Milliseconds()
		if t != nil {
			st := t.TierStats()
			ps.ColdSegments = st.Segments
			ps.ColdBytes = st.Bytes
		}
		rep.Partitions = append(rep.Partitions, ps)
	}
	sort.Slice(rep.Partitions, func(i, j int) bool {
		a, c := rep.Partitions[i], rep.Partitions[j]
		if a.Topic != c.Topic {
			return a.Topic < c.Topic
		}
		return a.Partition < c.Partition
	})

	b.mu.Lock()
	tables := make(map[tp]*table.Partition, len(b.tables))
	for t, p := range b.tables {
		tables[t] = p
	}
	b.mu.Unlock()
	for t, p := range tables {
		applied, hw := p.Freshness()
		rep.Tables = append(rep.Tables, tableStatus{
			Topic:         t.topic,
			Partition:     t.partition,
			AppliedOffset: applied,
			HighWatermark: hw,
			Rows:          p.ApproxLen(),
		})
	}
	sort.Slice(rep.Tables, func(i, j int) bool {
		a, c := rep.Tables[i], rep.Tables[j]
		if a.Topic != c.Topic {
			return a.Topic < c.Topic
		}
		return a.Partition < c.Partition
	})
	return rep
}

package broker

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage/cache"
	"repro/internal/storage/compact"
	"repro/internal/storage/log"
	"repro/internal/storage/record"
	"repro/internal/table"
	"repro/internal/tier"
)

// Config parameterises one broker.
type Config struct {
	// ID is the unique broker id.
	ID int32
	// Host/Port to listen on; Port 0 picks an ephemeral port.
	Host string
	Port int32
	// DataDir holds partition logs.
	DataDir string
	// SessionTimeout bounds how long after this broker stops heartbeating
	// it is declared dead by the controller.
	SessionTimeout time.Duration
	// KeepAliveInterval is the heartbeat period (default timeout/4).
	KeepAliveInterval time.Duration
	// ReplicaMaxLag is the ISR-shrink threshold: a follower that has not
	// caught up for this long is removed from the ISR (paper §4.3).
	ReplicaMaxLag time.Duration
	// ReplicaFetchWaitMs is the long-poll budget of replica fetchers.
	ReplicaFetchWaitMs int32
	// ReplicaFetchBytes bounds one replication fetch.
	ReplicaFetchBytes int32
	// RetentionInterval is how often retention is enforced (0 disables).
	RetentionInterval time.Duration
	// CompactionInterval is how often compacted topics are cleaned
	// (0 disables).
	CompactionInterval time.Duration
	// OffsetsPartitions is the partition count of the internal offsets
	// topic.
	OffsetsPartitions int32
	// OffsetsReplication is its replication factor (capped at the live
	// broker count at creation time).
	OffsetsReplication int16
	// Default log settings for topics that do not override them.
	DefaultSegmentBytes   int32
	DefaultRetentionMs    int64
	DefaultRetentionBytes int64
	// Durability is the WAL sync discipline applied to every partition log
	// on this broker (log.Durability): when appends are fsynced, and —
	// under the group-commit policy — that produce acks are deferred until
	// the covering fdatasync lands. The zero value keeps the legacy
	// OS-buffered flushing.
	Durability log.Durability
	// DisableZeroCopyFetch routes fetch responses through the legacy
	// buffered re-encode path instead of splicing raw committed batch
	// ranges from segment files into the socket (sendfile). Zero-copy is
	// on by default; the switch exists for equivalence testing and
	// diagnosis.
	DisableZeroCopyFetch bool
	// PageCache, when non-nil, attaches an OS page-cache model to every
	// partition log (one cache instance per partition, sized by
	// PageCache.CapacityBytes): reads of non-resident pages pay the
	// modeled disk penalty, reproducing the anti-caching behaviour of
	// paper §4.1 inside the full stack. Nil (the default) costs nothing.
	PageCache *cache.Config
	// TierFS is the DFS handle tiered topics offload to (internal/tier).
	// Nil disables tiering on this broker: tiered topics still work, but
	// this broker never offloads and never deletes local segments of
	// tiered logs (the offload guard stays at zero, so no data is lost).
	TierFS *dfs.FS
	// TierRoot is the DFS prefix for tiered data (default "/tier").
	TierRoot string
	// TierInterval is how often partition leaders offload sealed segments
	// and enforce the total (tiered) retention horizon (default 500ms;
	// 0 uses the default, negative disables the loop).
	TierInterval time.Duration
	// TierCacheBytes bounds the cold-reader LRU shared by every tiered
	// partition this broker leads (default tier.DefaultCacheBytes).
	TierCacheBytes int64
	// TierCodec compresses uploaded cold segments. The zero value selects
	// the default, flate; cold segments are always written compressed.
	TierCodec record.Codec
	// TierUploadHook is a crash-injection hook for recovery tests: it runs
	// after a cold segment is renamed into place and before its manifest
	// commit. Returning an error aborts the offload there, leaving the
	// on-DFS state a crashed leader leaves behind. Nil in production.
	TierUploadHook func(topic string, partition int32, path string) error
	// DefaultQuota is the rate quota applied to every principal
	// (client-id) that has no per-principal quota persisted in the
	// coordination service (cmd/liquid-admin `quota set`). The zero value
	// disables default governance. Replication fetches are always exempt.
	DefaultQuota cluster.QuotaConfig
	// Listen binds the broker's listener; nil means plain TCP net.Listen.
	// Chaos harnesses (internal/chaos) substitute a listener factory that
	// registers the broker on an injected network so its links can be
	// severed, delayed or corrupted per §4.3 failure experiments.
	Listen func(host string, port int32) (net.Listener, error)
	// Dial opens this broker's outbound connections (replication fetches to
	// partition leaders); nil means plain TCP. Injected together with
	// Listen so asymmetric partitions cut replication links too.
	Dial client.Dialer
	// Now is the broker's clock for liveness decisions (ISR lag, group
	// member expiry, rebalance deadlines); nil means time.Now. Tests inject
	// a fake clock to drive expiry deterministically instead of sleeping.
	Now func() time.Time
	// Logger receives operational events; nil discards them.
	Logger *slog.Logger
	// Metrics receives broker counters; nil creates a private registry.
	Metrics *metrics.Registry
	// OpsAddr, when non-empty, binds the broker's ops HTTP server
	// (internal/obs): /metrics, /healthz, /status, /debug/pprof/* and
	// /debug/slowlog. "host:0" picks an ephemeral port; the bound address
	// is advertised in cluster metadata so admin tools can find it.
	// Empty disables the server.
	OpsAddr string
	// DisableInstrumentation turns off the per-request metric families,
	// the slow log, WAL metrics and the gauge-exporter tick. It exists for
	// one purpose: the E25 benchmark's baseline, which measures the cost
	// of the instrumentation itself.
	DisableInstrumentation bool
}

func (c Config) withDefaults() Config {
	if c.Host == "" {
		c.Host = "127.0.0.1"
	}
	if c.SessionTimeout == 0 {
		c.SessionTimeout = 2 * time.Second
	}
	if c.KeepAliveInterval == 0 {
		c.KeepAliveInterval = c.SessionTimeout / 4
	}
	if c.ReplicaMaxLag == 0 {
		c.ReplicaMaxLag = 2 * time.Second
	}
	if c.ReplicaFetchWaitMs == 0 {
		c.ReplicaFetchWaitMs = 50
	}
	if c.ReplicaFetchBytes == 0 {
		c.ReplicaFetchBytes = 1 << 20
	}
	if c.RetentionInterval == 0 {
		c.RetentionInterval = 15 * time.Second
	}
	if c.TierRoot == "" {
		c.TierRoot = "/tier"
	}
	if c.TierInterval == 0 {
		c.TierInterval = 500 * time.Millisecond
	}
	if c.TierCodec == record.CodecNone {
		c.TierCodec = record.CodecFlate
	}
	if c.OffsetsPartitions == 0 {
		c.OffsetsPartitions = 4
	}
	if c.OffsetsReplication == 0 {
		c.OffsetsReplication = 1
	}
	if c.Listen == nil {
		c.Listen = func(host string, port int32) (net.Listener, error) {
			return net.Listen("tcp", fmt.Sprintf("%s:%d", host, port))
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	return c
}

// Broker is one messaging-layer node.
type Broker struct {
	cfg        Config
	store      *coord.Store
	reg        *cluster.Registry
	session    coord.SessionID
	controller *cluster.Controller
	listener   net.Listener
	logger     *slog.Logger

	mu       sync.Mutex
	replicas map[tp]*replica
	tables   map[tp]*table.Partition // materialized views of led table partitions
	conns    map[net.Conn]struct{}
	stopped  bool

	fetchers *fetcherManager
	groups   *groupCoordinator
	offsets  *offsetManager
	quotas   *quotaManager

	tierCache *tier.Cache // shared cold-reader LRU (nil without TierFS)

	met *brokerMetrics // request-path families + slow log (nil when disabled)
	ops *obs.Server    // ops HTTP endpoint (nil without OpsAddr)

	stopCh      chan struct{}
	wg          sync.WaitGroup
	watchCancel func()
}

// Start launches a broker against the shared coordination store: it binds
// its listener, registers its ephemeral liveness node, adopts replicas for
// existing topics, joins the controller election and begins serving.
func Start(store *coord.Store, cfg Config) (*Broker, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("broker: DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	ln, err := cfg.Listen(cfg.Host, cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("broker: listen: %w", err)
	}
	cfg.Port = int32(ln.Addr().(*net.TCPAddr).Port)

	b := &Broker{
		cfg:      cfg,
		store:    store,
		reg:      cluster.NewRegistry(store),
		listener: ln,
		logger:   cfg.Logger.With("broker", cfg.ID),
		replicas: make(map[tp]*replica),
		tables:   make(map[tp]*table.Partition),
		conns:    make(map[net.Conn]struct{}),
		stopCh:   make(chan struct{}),
	}
	b.fetchers = newFetcherManager(b)
	b.groups = newGroupCoordinator(b)
	b.offsets = newOffsetManager(b)
	b.quotas = newQuotaManager(b, cfg.DefaultQuota)
	if cfg.TierFS != nil {
		b.tierCache = tier.NewCache(cfg.TierCacheBytes, cfg.Metrics)
	}
	if !cfg.DisableInstrumentation {
		b.met = newBrokerMetrics(cfg.Metrics, cfg.ID, cfg.Now)
	}
	if cfg.OpsAddr != "" {
		opsCfg := obs.Config{
			Addr:     cfg.OpsAddr,
			Registry: cfg.Metrics,
			Health:   b.healthChecks(),
			Status:   func() any { return b.statusReportNow() },
			Logger:   b.logger,
		}
		if b.met != nil {
			opsCfg.SlowLog = b.met.slowlog
		}
		srv, err := obs.Start(opsCfg)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("broker: ops server: %w", err)
		}
		b.ops = srv
	}

	b.session = store.CreateSession(cfg.SessionTimeout)
	info := cluster.BrokerInfo{ID: cfg.ID, Host: cfg.Host, Port: cfg.Port, OpsAddr: b.OpsAddr()}
	if err := b.reg.RegisterBroker(b.session, info); err != nil {
		ln.Close()
		if b.ops != nil {
			b.ops.Close()
		}
		return nil, fmt.Errorf("broker: register: %w", err)
	}

	// Adopt replicas for already-known topics, then watch for changes.
	events, cancel := store.Watch("/")
	b.watchCancel = cancel
	b.syncAllTopics()

	b.controller = cluster.NewController(b.reg, b.session, cfg.ID, cfg.Logger)
	b.controller.Start()

	b.wg.Add(3)
	go b.watchLoop(events)
	go b.acceptLoop()
	go b.housekeeping()
	if cfg.TierFS != nil && cfg.TierInterval > 0 {
		b.wg.Add(1)
		go b.tierLoop()
	}

	b.logger.Info("broker started", "addr", b.Addr())
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string {
	return fmt.Sprintf("%s:%d", b.cfg.Host, b.cfg.Port)
}

// ID returns the broker id.
func (b *Broker) ID() int32 { return b.cfg.ID }

// OpsAddr returns the bound address of the ops HTTP server, or "" when the
// broker runs without one.
func (b *Broker) OpsAddr() string {
	if b.ops == nil {
		return ""
	}
	return b.ops.Addr()
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.cfg.Metrics }

// clientID renders this broker's identity for replication fetches.
func (b *Broker) clientID() string { return "broker-" + strconv.Itoa(int(b.cfg.ID)) }

// brokerAddr resolves a broker id to its address via the registry.
func (b *Broker) brokerAddr(id int32) (string, bool) {
	for _, info := range b.reg.LiveBrokers() {
		if info.ID == id {
			return info.Addr(), true
		}
	}
	return "", false
}

// getReplica returns the locally hosted replica for a partition, or nil.
func (b *Broker) getReplica(t tp) *replica {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.replicas[t]
}

// coordinatesGroup reports whether this broker leads the offsets-topic
// partition for the group.
func (b *Broker) coordinatesGroup(group string) bool {
	r := b.getReplica(tp{topic: OffsetsTopic, partition: groupPartition(group, b.cfg.OffsetsPartitions)})
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.isLeader
}

// logDir renders the directory for a partition log.
func (b *Broker) logDir(t tp) string {
	return filepath.Join(b.cfg.DataDir, fmt.Sprintf("%s-%d", t.topic, t.partition))
}

// logConfigFor merges topic config with broker defaults. For tiered topics
// the log's retention settings are the HOT horizon (HotRetention*): the
// topic-level Retention* values bound the total tiered log and are enforced
// by the tier engine against the cold tier.
func (b *Broker) logConfigFor(tc cluster.TopicConfig) log.Config {
	cfg := log.Config{
		SegmentBytes:   int64(tc.SegmentBytes),
		RetentionMs:    tc.RetentionMs,
		RetentionBytes: tc.RetentionBytes,
		Compacted:      tc.Compacted,
		Tiered:         tc.Tiered,
	}
	if tc.Tiered {
		cfg.RetentionMs = tc.HotRetentionMs
		cfg.RetentionBytes = tc.HotRetentionBytes
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = int64(b.cfg.DefaultSegmentBytes)
	}
	if cfg.RetentionMs == 0 {
		cfg.RetentionMs = b.cfg.DefaultRetentionMs
	}
	if cfg.RetentionBytes == 0 {
		cfg.RetentionBytes = b.cfg.DefaultRetentionBytes
	}
	if b.cfg.PageCache != nil {
		cfg.Tracker = cache.New(*b.cfg.PageCache)
	}
	cfg.Durability = b.cfg.Durability
	if !b.cfg.DisableInstrumentation {
		cfg.Metrics = b.cfg.Metrics
	}
	return cfg
}

// tierConfigFor builds the tier engine config for a tiered topic.
func (b *Broker) tierConfigFor(t tp, tc cluster.TopicConfig) tier.Config {
	cfg := tier.Config{
		Root:                b.cfg.TierRoot,
		Codec:               b.cfg.TierCodec,
		TotalRetentionMs:    tc.RetentionMs,
		TotalRetentionBytes: tc.RetentionBytes,
	}
	if cfg.TotalRetentionMs == 0 {
		cfg.TotalRetentionMs = b.cfg.DefaultRetentionMs
	}
	if cfg.TotalRetentionBytes == 0 {
		cfg.TotalRetentionBytes = b.cfg.DefaultRetentionBytes
	}
	if hook := b.cfg.TierUploadHook; hook != nil {
		cfg.OnUploaded = func(path string) error {
			return hook(t.topic, t.partition, path)
		}
	}
	return cfg
}

// syncAllTopics adopts replicas and roles for every topic in the registry.
func (b *Broker) syncAllTopics() {
	for _, name := range b.reg.Topics() {
		info, err := b.reg.GetTopic(name)
		if err != nil {
			continue
		}
		b.ensureTopic(info)
	}
}

// ensureTopic opens local replicas for partitions assigned to this broker
// and applies their current leadership state.
func (b *Broker) ensureTopic(info cluster.TopicInfo) {
	for p, replicas := range info.Assignment {
		hosted := false
		for _, id := range replicas {
			if id == b.cfg.ID {
				hosted = true
				break
			}
		}
		if !hosted {
			continue
		}
		t := tp{topic: info.Name, partition: int32(p)}
		b.mu.Lock()
		if b.stopped {
			b.mu.Unlock()
			return
		}
		_, exists := b.replicas[t]
		if !exists {
			l, err := log.Open(b.logDir(t), b.logConfigFor(info.Config))
			if err != nil {
				b.mu.Unlock()
				b.logger.Error("open log failed", "tp", t.String(), "err", err)
				continue
			}
			b.replicas[t] = newReplica(t, l, b.cfg.ID)
		}
		b.mu.Unlock()
		if !exists {
			b.applyPartitionState(t)
		}
	}
}

// removeTopic closes and deletes local replicas of a deleted topic.
func (b *Broker) removeTopic(name string) {
	b.mu.Lock()
	var victims []*replica
	for t, r := range b.replicas {
		if t.topic == name {
			victims = append(victims, r)
			delete(b.replicas, t)
		}
	}
	b.mu.Unlock()
	for _, r := range victims {
		b.fetchers.remove(r.tp)
		b.detachTable(r.tp)
		r.close()
		os.RemoveAll(b.logDir(r.tp))
	}
}

// applyPartitionState reads a partition's registry state and transitions
// the local replica's role accordingly.
func (b *Broker) applyPartitionState(t tp) {
	r := b.getReplica(t)
	if r == nil {
		return
	}
	st, ver, err := b.reg.PartitionState(t.topic, t.partition)
	if err != nil {
		return
	}
	info, err := b.reg.GetTopic(t.topic)
	if err != nil || int(t.partition) >= len(info.Assignment) {
		return
	}
	wasOffsetsLeader := b.isOffsetsLeader(t, r)
	if st.Leader == b.cfg.ID {
		b.fetchers.remove(t)
		r.becomeLeader(st.Epoch, info.Assignment[t.partition], st.ISR, ver)
		if t.topic == OffsetsTopic && !wasOffsetsLeader {
			b.offsets.load(t.partition, r)
		}
		// Re-applied state (ISR changes) keeps the existing engine; a
		// fresh promotion recovers tier state from the manifest.
		if info.Config.Tiered && r.tierPartition() == nil {
			b.adoptTierLeadership(t, info.Config, r)
		}
		// A fresh promotion materializes the table view from the local
		// log (re-applied state keeps the running materializer).
		if info.Config.Table && b.tableFor(t) == nil {
			b.attachTable(t, r)
		}
	} else {
		r.setTier(nil) // followers replicate only the hot log
		b.detachTable(t)
		if err := r.becomeFollower(st.Leader, st.Epoch, ver); err != nil {
			b.logger.Error("follower transition failed", "tp", t.String(), "err", err)
		}
		if t.topic == OffsetsTopic && wasOffsetsLeader {
			b.offsets.unload(t.partition)
		}
		if st.Leader >= 0 {
			b.fetchers.assign(t, st.Leader)
		} else {
			b.fetchers.remove(t)
		}
	}
}

// adoptTierLeadership opens (or refreshes) the cold-tier engine for a
// tiered partition this broker now leads: the manifest is reloaded from the
// DFS — the source of truth for cold data across hand-overs — and orphan
// segments a crashed predecessor uploaded without committing are swept. The
// offload guard is raised to the recovered frontier so hot retention may
// resume deleting already-tiered local segments.
func (b *Broker) adoptTierLeadership(t tp, tc cluster.TopicConfig, r *replica) {
	if b.cfg.TierFS == nil {
		b.logger.Warn("tiered topic led by broker without TierFS; offload disabled", "tp", t.String())
		return
	}
	p, err := tier.Open(b.cfg.TierFS, t.topic, t.partition, b.tierConfigFor(t, tc), b.tierCache, r.log.Config().Tracker, b.cfg.Metrics)
	if err != nil {
		b.logger.Error("tier open failed", "tp", t.String(), "err", err)
		return
	}
	// Reclaim files a crash between a retention commit and its deletions
	// left behind (they sit below the committed tier start, where Open's
	// orphan sweep does not look).
	p.SweepBelowStart()
	r.log.SetOffloadedTo(p.NextOffset())
	r.setTier(p)
}

// isOffsetsLeader reports whether r is a leader replica of the offsets
// topic (used to detect offset-manager load/unload transitions).
func (b *Broker) isOffsetsLeader(t tp, r *replica) bool {
	if t.topic != OffsetsTopic {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.isLeader
}

// watchLoop reacts to registry changes: topics appearing/disappearing and
// partition leadership moving.
func (b *Broker) watchLoop(events <-chan coord.Event) {
	defer b.wg.Done()
	for {
		select {
		case <-b.stopCh:
			return
		case ev, ok := <-events:
			if !ok {
				// Watch overflowed: resync everything. Register the
				// replacement watch under b.mu with a stopped check, so a
				// concurrent shutdown (which snapshots watchCancel under
				// the same lock) can never miss it and leak a watcher on
				// the store — the store outlives this broker.
				b.mu.Lock()
				if b.stopped {
					b.mu.Unlock()
					return
				}
				var cancel func()
				events, cancel = b.store.Watch("/")
				old := b.watchCancel
				b.watchCancel = cancel
				b.mu.Unlock()
				if old != nil {
					old()
				}
				b.syncAllTopics()
				b.quotas.invalidateAll()
				continue
			}
			b.handleEvent(ev)
		}
	}
}

func (b *Broker) handleEvent(ev coord.Event) {
	if topic, ok := cutTopicPath(ev.Path); ok {
		switch ev.Type {
		case coord.EventCreated:
			if info, err := b.reg.GetTopic(topic); err == nil {
				b.ensureTopic(info)
			}
		case coord.EventDeleted:
			b.removeTopic(topic)
		}
		return
	}
	if topic, partition, ok := cluster.ParseStatePath(ev.Path); ok {
		if ev.Type == coord.EventCreated || ev.Type == coord.EventUpdated {
			b.applyPartitionState(tp{topic: topic, partition: partition})
		}
		return
	}
	if principal, ok := cluster.ParseQuotaPath(ev.Path); ok {
		// Quota changed (or was removed) through any broker: drop the
		// cached governor so the next charge re-reads the registry.
		b.quotas.invalidate(principal)
		return
	}
}

// cutTopicPath extracts a topic name from a /topics/<name> path.
func cutTopicPath(path string) (string, bool) {
	if len(path) <= len(cluster.TopicsPrefix) || path[:len(cluster.TopicsPrefix)] != cluster.TopicsPrefix {
		return "", false
	}
	return path[len(cluster.TopicsPrefix):], true
}

// housekeeping runs the periodic duties: session keepalive, ISR shrink,
// group expiry, retention and compaction.
func (b *Broker) housekeeping() {
	defer b.wg.Done()
	keepalive := newTicker(b.cfg.KeepAliveInterval)
	defer keepalive.Stop()
	isr := newTicker(b.cfg.ReplicaMaxLag / 2)
	defer isr.Stop()
	groups := newTicker(250 * time.Millisecond)
	defer groups.Stop()

	// The gauge exporter walks every replica and checkpoint stream; 1s is
	// frequent enough for dashboards and cheap enough to never matter.
	var opsC <-chan time.Time
	if b.met != nil {
		t := newTicker(time.Second)
		defer t.Stop()
		opsC = t.C
	}

	var retentionC, compactionC <-chan time.Time
	if b.cfg.RetentionInterval > 0 {
		t := newTicker(b.cfg.RetentionInterval)
		defer t.Stop()
		retentionC = t.C
	}
	if b.cfg.CompactionInterval > 0 {
		t := newTicker(b.cfg.CompactionInterval)
		defer t.Stop()
		compactionC = t.C
	}
	for {
		select {
		case <-b.stopCh:
			return
		case <-keepalive.C:
			if err := b.store.KeepAlive(b.session); err != nil {
				b.logger.Warn("session lost", "err", err)
			}
		case <-isr.C:
			b.shrinkLaggingISRs()
		case <-groups.C:
			b.groups.tick(b.cfg.Now())
		case <-opsC:
			b.opsTick(b.cfg.Now())
		case <-retentionC:
			b.enforceRetention()
		case <-compactionC:
			b.compactLogs()
		}
	}
}

// tierLoop drives tiering on its own goroutine: offloading a large segment
// (read, compress, DFS write) can take longer than a keepalive period, so
// it must never share a loop with the session heartbeat — a busy offloader
// would otherwise expire the broker's liveness and trigger a spurious
// failover.
func (b *Broker) tierLoop() {
	defer b.wg.Done()
	t := newTicker(b.cfg.TierInterval)
	defer t.Stop()
	for {
		select {
		case <-b.stopCh:
			return
		case <-t.C:
			b.tierTick()
		}
	}
}

// tierTick runs one offload + cold-retention pass over every tiered
// partition this broker leads (paper §4.1: the offloader is what lets the
// hot log stay small while consumers rewind arbitrarily far).
func (b *Broker) tierTick() {
	now := b.cfg.Now()
	for _, r := range b.replicaSnapshot() {
		t := r.tierPartition()
		if t == nil {
			continue
		}
		if _, err := t.Offload(r.log, r.highWatermark()); err != nil {
			if errors.Is(err, tier.ErrConflict) {
				// A newer leader owns the partition; drop the stale
				// engine — the state watcher re-adopts if we lead again.
				r.setTier(nil)
				continue
			}
			b.logger.Warn("tier offload failed", "tp", r.tp.String(), "err", err)
			continue
		}
		if _, err := t.EnforceRetention(now, r.log.Size()); err != nil && !errors.Is(err, tier.ErrConflict) {
			b.logger.Warn("tier retention failed", "tp", r.tp.String(), "err", err)
		}
	}
}

// shrinkLaggingISRs removes followers that stopped keeping up from the ISR
// of partitions this broker leads (paper §4.3).
func (b *Broker) shrinkLaggingISRs() {
	now := b.cfg.Now()
	for _, r := range b.replicaSnapshot() {
		lagging := r.laggingFollowers(b.cfg.ReplicaMaxLag, now)
		for _, id := range lagging {
			b.updateISR(r, id, false)
		}
	}
}

// updateISR commits an ISR change (add or remove) through the registry
// with CAS, then installs it locally.
func (b *Broker) updateISR(r *replica, followerID int32, add bool) {
	for attempt := 0; attempt < 3; attempt++ {
		st, ver, err := b.reg.PartitionState(r.tp.topic, r.tp.partition)
		if err != nil {
			return
		}
		if st.Leader != b.cfg.ID {
			return // no longer leader; controller owns this partition now
		}
		newISR := st.ISR[:0:0]
		found := false
		for _, id := range st.ISR {
			if id == followerID {
				found = true
				if !add {
					continue
				}
			}
			newISR = append(newISR, id)
		}
		if add && !found {
			newISR = append(newISR, followerID)
		}
		if len(newISR) == len(st.ISR) && found == add {
			r.setISR(newISR, ver)
			return // already in desired shape
		}
		st.ISR = newISR
		nv, err := b.reg.SetPartitionState(r.tp.topic, r.tp.partition, st, ver)
		if err != nil {
			if errors.Is(err, coord.ErrBadVersion) {
				continue
			}
			return
		}
		r.setISR(newISR, nv)
		b.logger.Info("isr updated", "tp", r.tp.String(), "isr", newISR, "add", add, "follower", followerID)
		return
	}
}

// enforceRetention applies retention to every local log.
func (b *Broker) enforceRetention() {
	now := b.cfg.Now()
	for _, r := range b.replicaSnapshot() {
		if _, err := r.log.EnforceRetention(now); err != nil && !errors.Is(err, log.ErrClosed) {
			b.logger.Warn("retention failed", "tp", r.tp.String(), "err", err)
		}
	}
}

// compactLogs runs a compaction pass over compacted topics.
func (b *Broker) compactLogs() {
	for _, r := range b.replicaSnapshot() {
		if r.log.Config().Compacted {
			if _, err := compact.Compact(r.log); err != nil && !errors.Is(err, log.ErrClosed) {
				b.logger.Warn("compaction failed", "tp", r.tp.String(), "err", err)
			}
		}
	}
}

// replicaSnapshot copies the replica list without holding the broker lock
// during per-replica work.
func (b *Broker) replicaSnapshot() []*replica {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*replica, 0, len(b.replicas))
	for _, r := range b.replicas {
		out = append(out, r)
	}
	return out
}

// Stop shuts the broker down gracefully: the session is closed so the
// controller reassigns leadership immediately.
func (b *Broker) Stop() {
	b.shutdown(true)
}

// Kill simulates a crash: the listener drops and heartbeats stop, but the
// session is left to expire on its own, exactly as a dead machine would
// behave (used by the failover experiments, paper §4.3).
func (b *Broker) Kill() {
	b.shutdown(false)
}

func (b *Broker) shutdown(graceful bool) {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	b.mu.Unlock()

	close(b.stopCh)
	b.listener.Close()
	if b.ops != nil {
		b.ops.Close()
	}
	// Drop every open connection so per-connection goroutines unblock;
	// a crashed machine's sockets die with it.
	b.mu.Lock()
	for conn := range b.conns {
		conn.Close()
	}
	b.mu.Unlock()
	b.controller.Stop()
	b.fetchers.stopAll()
	b.groups.dropAll()
	// The watch loop swaps watchCancel under b.mu when its watch overflows;
	// snapshot it under the same lock.
	b.mu.Lock()
	cancel := b.watchCancel
	b.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if graceful {
		b.store.CloseSession(b.session)
	}
	b.wg.Wait()
	// Past wg.Wait no opsTick can run again, so the purge of this broker's
	// gauge tuples from the (possibly shared) registry is final.
	if b.met != nil {
		b.met.purge()
	}
	// Close materializers before their replicas so run loops see a clean
	// stop instead of reads against closed logs.
	b.detachAllTables()
	for _, r := range b.replicaSnapshot() {
		r.close()
	}
	b.logger.Info("broker stopped", "graceful", graceful)
}

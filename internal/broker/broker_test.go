package broker_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/coord"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// testCluster is an in-process multi-broker cluster over real TCP.
type testCluster struct {
	store      *coord.Store
	stopExpiry func()
	brokers    []*broker.Broker
	addrs      []string
	dataDirs   []string
}

// startCluster boots n brokers with test-friendly (fast) timeouts.
func startCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	store := coord.New(coord.Config{})
	tc := &testCluster{store: store, stopExpiry: store.StartExpiry(50 * time.Millisecond)}
	rf := int16(1)
	if n > 1 {
		rf = int16(n)
		if rf > 3 {
			rf = 3
		}
	}
	for i := 0; i < n; i++ {
		dataDir := t.TempDir()
		tc.dataDirs = append(tc.dataDirs, dataDir)
		b, err := broker.Start(store, broker.Config{
			ID:                 int32(i + 1),
			DataDir:            dataDir,
			SessionTimeout:     600 * time.Millisecond,
			ReplicaMaxLag:      time.Second,
			RetentionInterval:  time.Hour, // not under test here
			OffsetsPartitions:  2,
			OffsetsReplication: rf,
		})
		if err != nil {
			t.Fatalf("start broker %d: %v", i+1, err)
		}
		tc.brokers = append(tc.brokers, b)
		tc.addrs = append(tc.addrs, b.Addr())
	}
	t.Cleanup(tc.shutdown)
	return tc
}

func (tc *testCluster) shutdown() {
	for _, b := range tc.brokers {
		b.Stop()
	}
	tc.stopExpiry()
}

// newClient builds a client with aggressive retries suitable for failover
// tests.
func (tc *testCluster) newClient(t *testing.T) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		Bootstrap:    tc.addrs,
		ClientID:     "test",
		MaxRetries:   60,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func createTopic(t *testing.T, c *client.Client, name string, partitions int32, rf int16) {
	t.Helper()
	if err := c.CreateTopic(wire.TopicSpec{
		Name:              name,
		NumPartitions:     partitions,
		ReplicationFactor: rf,
	}); err != nil {
		t.Fatalf("create topic %s: %v", name, err)
	}
}

// collectN polls until n messages arrive or the deadline passes.
func collectN(t *testing.T, poll func(time.Duration) ([]client.Message, error), n int, timeout time.Duration) []client.Message {
	t.Helper()
	var out []client.Message
	deadline := time.Now().Add(timeout)
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("collected %d/%d messages before timeout", len(out), n)
		}
		msgs, err := poll(200 * time.Millisecond)
		if err != nil {
			continue // transient during rebalances/failovers
		}
		out = append(out, msgs...)
	}
	return out
}

func TestProduceConsumeSingleBroker(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "events", 1, 1)

	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < 10; i++ {
		off, err := p.SendSync(client.Message{
			Topic: "events",
			Key:   []byte("k"),
			Value: []byte(fmt.Sprintf("v%d", i)),
		})
		if err != nil {
			t.Fatalf("SendSync %d: %v", i, err)
		}
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}

	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	if err := cons.Assign("events", 0, client.StartEarliest); err != nil {
		t.Fatal(err)
	}
	msgs := collectN(t, cons.Poll, 10, 5*time.Second)
	for i, m := range msgs {
		if string(m.Value) != fmt.Sprintf("v%d", i) || m.Offset != int64(i) {
			t.Fatalf("msg %d = %+v", i, m)
		}
		if m.Timestamp == 0 {
			t.Fatal("broker should stamp append time")
		}
	}
	if got := cons.Position("events", 0); got != 10 {
		t.Fatalf("position = %d", got)
	}
}

func TestProducerBatchingAndHeaders(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "batched", 1, 1)

	p := client.NewProducer(c, client.ProducerConfig{Linger: time.Hour}) // only explicit flush
	defer p.Close()
	for i := 0; i < 50; i++ {
		err := p.Send(client.Message{
			Topic:   "batched",
			Value:   []byte(fmt.Sprintf("v%d", i)),
			Headers: []record.Header{{Key: "lineage", Value: []byte("test-job")}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("batched", 0, client.StartEarliest)
	msgs := collectN(t, cons.Poll, 50, 5*time.Second)
	if len(msgs[0].Headers) != 1 || msgs[0].Headers[0].Key != "lineage" {
		t.Fatalf("headers lost: %+v", msgs[0].Headers)
	}
}

func TestKeyedPartitioningPreservesPerKeyOrder(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "keyed", 4, 1)

	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	const keys, each = 8, 20
	for i := 0; i < each; i++ {
		for k := 0; k < keys; k++ {
			err := p.Send(client.Message{
				Topic: "keyed",
				Key:   []byte(fmt.Sprintf("user-%d", k)),
				Value: []byte(fmt.Sprintf("%d", i)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	for pt := int32(0); pt < 4; pt++ {
		cons.Assign("keyed", pt, client.StartEarliest)
	}
	msgs := collectN(t, cons.Poll, keys*each, 10*time.Second)

	// Same key -> same partition, and values in send order per key.
	partOf := make(map[string]int32)
	lastVal := make(map[string]int)
	for _, m := range msgs {
		k := string(m.Key)
		if p0, ok := partOf[k]; ok && p0 != m.Partition {
			t.Fatalf("key %s on two partitions: %d, %d", k, p0, m.Partition)
		}
		partOf[k] = m.Partition
	}
	// Per-partition streams are ordered by offset; verify per-key values
	// are monotone within each partition.
	byPartition := make(map[int32][]client.Message)
	for _, m := range msgs {
		byPartition[m.Partition] = append(byPartition[m.Partition], m)
	}
	for _, ms := range byPartition {
		for i := 1; i < len(ms); i++ {
			if ms[i].Offset <= ms[i-1].Offset {
				t.Fatal("offsets not monotone within partition")
			}
		}
	}
	for _, m := range msgs {
		k := string(m.Key)
		var v int
		fmt.Sscanf(string(m.Value), "%d", &v)
		if prev, ok := lastVal[k]; ok && v < prev {
			t.Fatalf("key %s order violated: %d after %d", k, v, prev)
		}
		lastVal[k] = v
	}
}

func TestListOffsetsAndSeekByTimestamp(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "timed", 1, 1)

	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	base := time.Now().UnixMilli()
	for i := 0; i < 10; i++ {
		if _, err := p.SendSync(client.Message{
			Topic:     "timed",
			Timestamp: base + int64(i*1000),
			Value:     []byte(fmt.Sprintf("v%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	early, err := c.ListOffset("timed", 0, wire.TimestampEarliest)
	if err != nil || early != 0 {
		t.Fatalf("earliest = %d, %v", early, err)
	}
	latest, err := c.ListOffset("timed", 0, wire.TimestampLatest)
	if err != nil || latest != 10 {
		t.Fatalf("latest = %d, %v", latest, err)
	}
	mid, err := c.ListOffset("timed", 0, base+5000)
	if err != nil || mid != 5 {
		t.Fatalf("mid = %d, %v (rewindability by timestamp)", mid, err)
	}
}

func TestReplicationAcksAllSurvivesLeaderKill(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.newClient(t)
	createTopic(t, c, "ha", 1, 3)

	p := client.NewProducer(c, client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()

	// Produce a first tranche so replication is warmed up.
	var acked []string
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("pre-%d", i)
		if _, err := p.SendSync(client.Message{Topic: "ha", Key: []byte("k"), Value: []byte(v)}); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		acked = append(acked, v)
	}

	// Kill the partition leader the hard way (crash, not graceful).
	leaderID, err := c.LeaderFor("ha", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tc.brokers {
		if b.ID() == leaderID {
			b.Kill()
		}
	}

	// Keep producing through the failover; every acked message must
	// survive.
	for i := 0; i < 20; i++ {
		v := fmt.Sprintf("post-%d", i)
		if _, err := p.SendSync(client.Message{Topic: "ha", Key: []byte("k"), Value: []byte(v)}); err != nil {
			t.Fatalf("produce after kill %d: %v", i, err)
		}
		acked = append(acked, v)
	}

	newLeader, err := c.LeaderFor("ha", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newLeader == leaderID {
		t.Fatalf("leadership did not move off %d", leaderID)
	}

	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	if err := cons.Assign("ha", 0, client.StartEarliest); err != nil {
		t.Fatal(err)
	}
	msgs := collectN(t, cons.Poll, len(acked), 15*time.Second)
	seen := make(map[string]bool)
	for _, m := range msgs {
		seen[string(m.Value)] = true
	}
	for _, v := range acked {
		if !seen[v] {
			t.Fatalf("acked message %q lost after failover", v)
		}
	}
}

func TestConsumerGroupQueueAndPubSubSemantics(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "work", 4, 1)

	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	const total = 80
	for i := 0; i < total; i++ {
		if err := p.Send(client.Message{Topic: "work", Value: []byte(fmt.Sprintf("m%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	groupCfg := func(group string) client.GroupConfig {
		return client.GroupConfig{
			Group:             group,
			Topics:            []string{"work"},
			SessionTimeout:    3 * time.Second,
			RebalanceTimeout:  5 * time.Second,
			HeartbeatInterval: 100 * time.Millisecond,
		}
	}
	g1a, err := client.NewGroupConsumer(c, client.ConsumerConfig{}, groupCfg("g1"))
	if err != nil {
		t.Fatal(err)
	}
	defer g1a.Close()
	g1b, err := client.NewGroupConsumer(c, client.ConsumerConfig{}, groupCfg("g1"))
	if err != nil {
		t.Fatal(err)
	}
	defer g1b.Close()
	g2, err := client.NewGroupConsumer(c, client.ConsumerConfig{}, groupCfg("g2"))
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()

	var mu sync.Mutex
	g1Seen := make(map[string]int)
	g2Seen := make(map[string]int)
	var wg sync.WaitGroup
	drain := func(g *client.GroupConsumer, into map[string]int, want int) {
		defer wg.Done()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			mu.Lock()
			n := 0
			for _, v := range into {
				n += v
			}
			mu.Unlock()
			if n >= want {
				return
			}
			msgs, err := g.Poll(200 * time.Millisecond)
			if err != nil {
				continue
			}
			mu.Lock()
			for _, m := range msgs {
				into[string(m.Value)]++
			}
			mu.Unlock()
		}
	}
	wg.Add(3)
	go drain(g1a, g1Seen, total)
	go drain(g1b, g1Seen, total)
	go drain(g2, g2Seen, total)
	wg.Wait()

	mu.Lock()
	// Queue semantics within g1: every message exactly once across the
	// two members.
	for i := 0; i < total; i++ {
		v := fmt.Sprintf("m%d", i)
		if g1Seen[v] != 1 {
			mu.Unlock()
			t.Fatalf("g1 saw %q %d times, want exactly 1", v, g1Seen[v])
		}
		if g2Seen[v] < 1 {
			mu.Unlock()
			t.Fatalf("g2 missed %q (pub/sub across groups)", v)
		}
	}
	mu.Unlock()
	// Load balancing: with both members polling independently, the
	// assignment settles at two partitions each.
	var stop2 int32
	for _, g := range []*client.GroupConsumer{g1a, g1b} {
		go func(g *client.GroupConsumer) {
			for atomic.LoadInt32(&stop2) == 0 {
				g.Poll(50 * time.Millisecond)
			}
		}(g)
	}
	defer atomic.StoreInt32(&stop2, 1)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(g1a.Assignment()["work"]) == 2 && len(g1b.Assignment()["work"]) == 2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("assignment never balanced: %v / %v",
		g1a.Assignment()["work"], g1b.Assignment()["work"])
}

func TestGroupRebalanceOnMemberExit(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "rb", 2, 1)

	cfg := client.GroupConfig{
		Group:             "rbg",
		Topics:            []string{"rb"},
		SessionTimeout:    3 * time.Second,
		RebalanceTimeout:  5 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
	}
	gA, _ := client.NewGroupConsumer(c, client.ConsumerConfig{}, cfg)
	defer gA.Close()
	gB, _ := client.NewGroupConsumer(c, client.ConsumerConfig{}, cfg)

	// Drive both (concurrently, as two separate applications would) into
	// a stable generation with one partition each.
	var phase int32 // 0 = both polling, 1 = B stops, 2 = all stop
	var wg sync.WaitGroup
	bStopped := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for atomic.LoadInt32(&phase) < 2 {
			gA.Poll(50 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		defer close(bStopped)
		for atomic.LoadInt32(&phase) < 1 {
			gB.Poll(50 * time.Millisecond)
		}
	}()
	defer func() {
		atomic.StoreInt32(&phase, 2)
		wg.Wait()
	}()

	deadline := time.Now().Add(15 * time.Second)
	balanced := false
	for time.Now().Before(deadline) {
		if len(gA.Assignment()["rb"]) == 1 && len(gB.Assignment()["rb"]) == 1 {
			balanced = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !balanced {
		t.Fatalf("initial split wrong: %v / %v", gA.Assignment(), gB.Assignment())
	}

	// B leaves; A should take over both partitions. Wait for B's poll loop
	// to actually exit (deterministic handshake, not a sleep) so Close
	// cannot race a poll in flight.
	atomic.StoreInt32(&phase, 1)
	<-bStopped
	gB.Close()
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(gA.Assignment()["rb"]) == 2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("A never took over: %v", gA.Assignment())
}

func TestOffsetCommitFetchAndAnnotationQuery(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "ck", 1, 1)

	// Commit a v1 checkpoint, then v2 checkpoints.
	commit := func(off int64, version string) {
		t.Helper()
		err := c.CommitOffsets("job", map[string]map[int32]int64{"ck": {0: off}},
			map[string]string{"version": version})
		if err != nil {
			t.Fatalf("commit %d: %v", off, err)
		}
	}
	commit(10, "v1")
	commit(20, "v1")
	commit(30, "v2")
	commit(40, "v2")

	got, err := c.FetchOffsets("job", "ck", []int32{0})
	if err != nil || got[0] != 40 {
		t.Fatalf("FetchOffsets = %v, %v", got, err)
	}
	// Rewind to the last v1 checkpoint (paper §4.2: metadata-based
	// access for reprocessing after a software version change).
	off, found, err := c.QueryOffset("job", "ck", 0, "version", "v1")
	if err != nil || !found || off != 20 {
		t.Fatalf("QueryOffset v1 = %d %v %v", off, found, err)
	}
	off, found, err = c.QueryOffset("job", "ck", 0, "version", "v3")
	if err != nil || found {
		t.Fatalf("QueryOffset v3 = %d %v %v, want not found", off, found, err)
	}
	// Timestamp queries resolve to the newest checkpoint at/before now.
	off, found, err = c.QueryOffset("job", "ck", 0, "@timestamp",
		fmt.Sprint(time.Now().UnixMilli()))
	if err != nil || !found || off != 40 {
		t.Fatalf("QueryOffset @timestamp = %d %v %v", off, found, err)
	}
	// Unknown group has no checkpoints.
	got, err = c.FetchOffsets("nobody", "ck", []int32{0})
	if err != nil || got[0] != -1 {
		t.Fatalf("unknown group = %v, %v", got, err)
	}
}

func TestOffsetsSurviveCoordinatorFailover(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.newClient(t)
	createTopic(t, c, "cf", 1, 3)

	if err := c.CommitOffsets("grp", map[string]map[int32]int64{"cf": {0: 123}},
		map[string]string{"version": "v7"}); err != nil {
		t.Fatal(err)
	}
	coordID, err := c.FindCoordinator("grp")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range tc.brokers {
		if b.ID() == coordID {
			b.Kill()
		}
	}
	// The new coordinator must restore the checkpoint from the
	// replicated offsets topic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := c.FetchOffsets("grp", "cf", []int32{0})
		if err == nil && got[0] == 123 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint lost after coordinator failover: %v err=%v", got, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	off, found, err := c.QueryOffset("grp", "cf", 0, "version", "v7")
	if err != nil || !found || off != 123 {
		t.Fatalf("annotation query after failover = %d %v %v", off, found, err)
	}
}

func TestSlowConsumerDoesNotBlockProducerOrFastConsumer(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "dec", 1, 1)

	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()

	fast := client.NewConsumer(c, client.ConsumerConfig{})
	defer fast.Close()
	fast.Assign("dec", 0, client.StartEarliest)
	slow := client.NewConsumer(c, client.ConsumerConfig{})
	defer slow.Close()
	slow.Assign("dec", 0, client.StartEarliest)

	// Produce steadily; fast consumer keeps up; slow consumer polls
	// rarely. Producer latency must not degrade (decoupling, §3.2).
	var worst time.Duration
	for i := 0; i < 100; i++ {
		start := time.Now()
		if _, err := p.SendSync(client.Message{Topic: "dec", Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
		if i%10 == 0 {
			fast.Poll(10 * time.Millisecond)
		}
	}
	if worst > 2*time.Second {
		t.Fatalf("producer latency degraded to %v with slow consumer attached", worst)
	}
	// The slow consumer can still read everything from the start.
	msgs := collectN(t, slow.Poll, 100, 10*time.Second)
	if len(msgs) < 100 {
		t.Fatalf("slow consumer read %d/100", len(msgs))
	}
}

func TestMetadataReflectsCluster(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.newClient(t)
	createTopic(t, c, "meta", 6, 2)

	brokers, err := c.Brokers()
	if err != nil || len(brokers) != 3 {
		t.Fatalf("brokers = %v, %v", brokers, err)
	}
	n, err := c.PartitionCount("meta")
	if err != nil || n != 6 {
		t.Fatalf("partitions = %d, %v", n, err)
	}
	leaders := make(map[int32]int)
	for p := int32(0); p < 6; p++ {
		l, err := c.LeaderFor("meta", p)
		if err != nil {
			t.Fatal(err)
		}
		leaders[l]++
	}
	if len(leaders) != 3 {
		t.Fatalf("leadership not spread over brokers: %v", leaders)
	}
}

func TestDeleteTopic(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "gone", 1, 1)
	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	if _, err := p.SendSync(client.Message{Topic: "gone", Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteTopic("gone"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteTopic("gone"); err == nil {
		t.Fatal("second delete should fail")
	}
}

func TestAcksNoneIsFireAndForget(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "fire", 1, 1)

	p := client.NewProducer(c, client.ProducerConfig{Acks: client.AcksNone})
	defer p.Close()
	for i := 0; i < 20; i++ {
		if _, err := p.SendSync(client.Message{Topic: "fire", Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// The data still lands (eventually) — verify by consuming.
	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	cons.Assign("fire", 0, client.StartEarliest)
	collectN(t, cons.Poll, 20, 5*time.Second)
}

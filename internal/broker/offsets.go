package broker

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/storage/record"
	"repro/internal/wire"
)

// OffsetsTopic is the internal compacted topic backing the offset manager
// (paper §3.1 "highly-available, logically-centralized offset manager").
// A group's coordinator is the leader of the partition the group hashes to.
const OffsetsTopic = "__liquid_offsets"

// checkpointHistory bounds how many recent checkpoints are retained per
// (group, topic, partition) for metadata-based queries (paper §4.2):
// rewinding to "the offsets processed by software version v1" needs history,
// not just the newest commit.
const checkpointHistory = 64

// Checkpoint is one committed offset with its annotations.
type Checkpoint struct {
	Offset      int64  `json:"offset"`
	Metadata    string `json:"metadata"`
	CommittedAt int64  `json:"committedAt"` // ms since epoch
}

// offsetKey identifies a checkpoint stream.
type offsetKey struct {
	group     string
	topic     string
	partition int32
}

func (k offsetKey) encode() []byte {
	return []byte(k.group + "\x00" + k.topic + "\x00" + strconv.Itoa(int(k.partition)))
}

func decodeOffsetKey(b []byte) (offsetKey, bool) {
	parts := strings.Split(string(b), "\x00")
	if len(parts) != 3 {
		return offsetKey{}, false
	}
	p, err := strconv.Atoi(parts[2])
	if err != nil {
		return offsetKey{}, false
	}
	return offsetKey{group: parts[0], topic: parts[1], partition: int32(p)}, true
}

// offsetManager maintains checkpoint histories in memory, persisted to the
// compacted offsets topic so they survive coordinator failover.
type offsetManager struct {
	b *Broker

	mu     sync.Mutex
	byPart map[int32]map[offsetKey][]Checkpoint // offsets-topic partition -> state
}

func newOffsetManager(b *Broker) *offsetManager {
	return &offsetManager{b: b, byPart: make(map[int32]map[offsetKey][]Checkpoint)}
}

// groupPartition maps a group to its offsets-topic partition.
func groupPartition(group string, numPartitions int32) int32 {
	h := fnv.New32a()
	h.Write([]byte(group))
	return int32(h.Sum32() % uint32(numPartitions))
}

// load replays an offsets-topic partition into memory; called when this
// broker becomes its leader.
func (o *offsetManager) load(partition int32, r *replica) {
	state := make(map[offsetKey][]Checkpoint)
	off := r.log.StartOffset()
	for {
		data, err := r.log.Read(off, 1<<20)
		if err != nil || len(data) == 0 {
			break
		}
		record.ScanRecords(data, func(rec record.Record) error {
			if rec.Offset < off {
				return nil
			}
			off = rec.Offset + 1
			key, ok := decodeOffsetKey(rec.Key)
			if !ok {
				return nil
			}
			if rec.Value == nil {
				delete(state, key)
				return nil
			}
			var hist []Checkpoint
			if json.Unmarshal(rec.Value, &hist) == nil {
				state[key] = hist
			}
			return nil
		})
	}
	o.mu.Lock()
	o.byPart[partition] = state
	o.mu.Unlock()
	o.b.logger.Debug("offset manager loaded", "partition", partition, "keys", len(state))
}

// unload drops in-memory state for a partition whose leadership moved away.
func (o *offsetManager) unload(partition int32) {
	o.mu.Lock()
	delete(o.byPart, partition)
	o.mu.Unlock()
}

// commit records a checkpoint, appending the updated history to the
// offsets topic.
func (o *offsetManager) commit(group, topic string, partition int32, offset int64, metadata string) wire.ErrorCode {
	opart := groupPartition(group, o.b.cfg.OffsetsPartitions)
	r := o.b.getReplica(tp{topic: OffsetsTopic, partition: opart})
	if r == nil {
		return wire.ErrNotCoordinator
	}
	key := offsetKey{group: group, topic: topic, partition: partition}

	o.mu.Lock()
	state, ok := o.byPart[opart]
	if !ok {
		o.mu.Unlock()
		return wire.ErrNotCoordinator
	}
	hist := append(state[key], Checkpoint{
		Offset:      offset,
		Metadata:    metadata,
		CommittedAt: o.b.now().UnixMilli(),
	})
	if len(hist) > checkpointHistory {
		hist = hist[len(hist)-checkpointHistory:]
	}
	state[key] = hist
	value, err := json.Marshal(hist)
	o.mu.Unlock()
	if err != nil {
		return wire.ErrUnknown
	}
	// Checkpoints are committed with full ISR acknowledgement so they
	// survive coordinator failover: a successor restores them from the
	// replicated offsets partition.
	_, ackCh, durCh, code := r.appendAsLeader([]record.Record{{Key: key.encode(), Value: value}}, -1)
	if code != wire.ErrNone {
		return code
	}
	select {
	case code = <-ackCh:
	case <-o.b.after(5 * time.Second):
		return wire.ErrRequestTimedOut
	}
	if code == wire.ErrNone && durCh != nil {
		select {
		case err := <-durCh:
			code = durErrorCode(err)
		case <-o.b.after(5 * time.Second):
			return wire.ErrRequestTimedOut
		}
	}
	return code
}

// fetch returns the newest checkpoint for a key, or found=false.
func (o *offsetManager) fetch(group, topic string, partition int32) (Checkpoint, bool, wire.ErrorCode) {
	opart := groupPartition(group, o.b.cfg.OffsetsPartitions)
	o.mu.Lock()
	defer o.mu.Unlock()
	state, ok := o.byPart[opart]
	if !ok {
		return Checkpoint{}, false, wire.ErrNotCoordinator
	}
	hist := state[offsetKey{group: group, topic: topic, partition: partition}]
	if len(hist) == 0 {
		return Checkpoint{}, false, wire.ErrNone
	}
	return hist[len(hist)-1], true, wire.ErrNone
}

// query implements metadata-based access (paper §4.2): the newest
// checkpoint whose annotation key equals value, or — for the reserved key
// "@timestamp" — the newest checkpoint committed at or before the given
// millisecond timestamp.
func (o *offsetManager) query(req *wire.OffsetQueryRequest) *wire.OffsetQueryResponse {
	opart := groupPartition(req.Group, o.b.cfg.OffsetsPartitions)
	o.mu.Lock()
	defer o.mu.Unlock()
	state, ok := o.byPart[opart]
	if !ok {
		return &wire.OffsetQueryResponse{Err: wire.ErrNotCoordinator}
	}
	hist := state[offsetKey{group: req.Group, topic: req.Topic, partition: req.Partition}]
	if req.AnnotationKey == "@timestamp" {
		ts, err := strconv.ParseInt(req.AnnotationValue, 10, 64)
		if err != nil {
			return &wire.OffsetQueryResponse{Err: wire.ErrInvalidRequest}
		}
		for i := len(hist) - 1; i >= 0; i-- {
			if hist[i].CommittedAt <= ts {
				return &wire.OffsetQueryResponse{Found: true, Offset: hist[i].Offset, Metadata: hist[i].Metadata}
			}
		}
		return &wire.OffsetQueryResponse{}
	}
	for i := len(hist) - 1; i >= 0; i-- {
		var annotations map[string]string
		if json.Unmarshal([]byte(hist[i].Metadata), &annotations) != nil {
			continue
		}
		if annotations[req.AnnotationKey] == req.AnnotationValue {
			return &wire.OffsetQueryResponse{Found: true, Offset: hist[i].Offset, Metadata: hist[i].Metadata}
		}
	}
	return &wire.OffsetQueryResponse{}
}

// GroupLag is one consumer group's committed position on one partition
// measured against the partition's high watermark. HighWatermark and Lag
// are -1 when this broker does not host the partition (the coordinator for
// a group need not host the topics the group consumes); the gauge exporter
// skips those tuples and the broker that leads the partition exports them.
type GroupLag struct {
	Group         string `json:"group"`
	Topic         string `json:"topic"`
	Partition     int32  `json:"partition"`
	Committed     int64  `json:"committed"`
	HighWatermark int64  `json:"highWatermark"`
	Lag           int64  `json:"lag"`
}

// lagSnapshot computes lag for every checkpoint stream this broker
// coordinates. Committed offsets are copied under o.mu first and high
// watermarks resolved after it is released: getReplica takes b.mu, and the
// two locks are never nested anywhere in the broker.
func (o *offsetManager) lagSnapshot() []GroupLag {
	type stream struct {
		k         offsetKey
		committed int64
	}
	o.mu.Lock()
	streams := make([]stream, 0, 16)
	for _, state := range o.byPart {
		for k, hist := range state {
			if len(hist) == 0 {
				continue
			}
			streams = append(streams, stream{k: k, committed: hist[len(hist)-1].Offset})
		}
	}
	o.mu.Unlock()

	out := make([]GroupLag, 0, len(streams))
	for _, s := range streams {
		gl := GroupLag{
			Group:         s.k.group,
			Topic:         s.k.topic,
			Partition:     s.k.partition,
			Committed:     s.committed,
			HighWatermark: -1,
			Lag:           -1,
		}
		if r := o.b.getReplica(tp{topic: s.k.topic, partition: s.k.partition}); r != nil {
			hw := r.highWatermark()
			gl.HighWatermark = hw
			if gl.Lag = hw - s.committed; gl.Lag < 0 {
				gl.Lag = 0
			}
		}
		out = append(out, gl)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		if a.Topic != b.Topic {
			return a.Topic < b.Topic
		}
		return a.Partition < b.Partition
	})
	return out
}

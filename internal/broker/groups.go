package broker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Group coordination implements the consumer-group protocol of the
// messaging layer (paper §3.1): within a group the system behaves as a
// queue (each message goes to one member), across groups as pub/sub. The
// coordinator for a group is the broker leading the offsets-topic partition
// the group hashes to; members join (triggering a rebalance), the first
// member becomes group leader and computes the partition assignment
// client-side, SyncGroup distributes it, and heartbeats police liveness.

// groupState is the rebalance state machine.
type groupState int

const (
	groupEmpty groupState = iota
	groupPreparingRebalance
	groupCompletingRebalance
	groupStable
)

func (s groupState) String() string {
	switch s {
	case groupEmpty:
		return "empty"
	case groupPreparingRebalance:
		return "preparing-rebalance"
	case groupCompletingRebalance:
		return "completing-rebalance"
	case groupStable:
		return "stable"
	}
	return "unknown"
}

// member is one consumer in a group.
type member struct {
	id             string
	metadata       []byte
	assignment     []byte
	sessionTimeout time.Duration
	lastHeartbeat  time.Time
	pendingJoin    chan *wire.JoinGroupResponse
	pendingSync    chan *wire.SyncGroupResponse
}

// group is the coordinator-side state of one consumer group.
type group struct {
	name       string
	state      groupState
	generation int32
	protocol   string
	leaderID   string
	members    map[string]*member
	nextMember int
	// rebalanceDeadline bounds how long the join barrier waits for all
	// known members to rejoin before evicting stragglers.
	rebalanceDeadline time.Time
	rebalanceTimeout  time.Duration
}

// groupCoordinator owns all groups this broker coordinates.
type groupCoordinator struct {
	b *Broker

	mu     sync.Mutex
	groups map[string]*group
}

func newGroupCoordinator(b *Broker) *groupCoordinator {
	return &groupCoordinator{b: b, groups: make(map[string]*group)}
}

// handleJoin processes a JoinGroup request, returning a channel the caller
// blocks on (the join barrier) or an immediate error response.
func (g *groupCoordinator) handleJoin(req *wire.JoinGroupRequest, clientID string) <-chan *wire.JoinGroupResponse {
	ch := make(chan *wire.JoinGroupResponse, 1)
	if !g.b.coordinatesGroup(req.Group) {
		ch <- &wire.JoinGroupResponse{Err: wire.ErrNotCoordinator}
		return ch
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	grp, ok := g.groups[req.Group]
	if !ok {
		grp = &group{name: req.Group, members: make(map[string]*member)}
		g.groups[req.Group] = grp
	}
	now := g.b.cfg.Now()
	memberID := req.MemberID
	if memberID == "" {
		grp.nextMember++
		memberID = fmt.Sprintf("%s-%d", clientID, grp.nextMember)
	}
	m, exists := grp.members[memberID]
	if !exists {
		m = &member{id: memberID}
		grp.members[memberID] = m
	}
	m.metadata = req.Metadata
	m.sessionTimeout = time.Duration(req.SessionTimeoutMs) * time.Millisecond
	if m.sessionTimeout <= 0 {
		m.sessionTimeout = 10 * time.Second
	}
	m.lastHeartbeat = now
	m.pendingJoin = ch

	rebalanceTimeout := time.Duration(req.RebalanceTimeoutMs) * time.Millisecond
	if rebalanceTimeout <= 0 {
		rebalanceTimeout = 3 * time.Second
	}
	if grp.state != groupPreparingRebalance {
		grp.state = groupPreparingRebalance
		grp.rebalanceDeadline = now.Add(rebalanceTimeout)
		grp.rebalanceTimeout = rebalanceTimeout
		grp.protocol = req.Protocol
		// Wake parked syncs from the previous generation: they must
		// rejoin.
		for _, om := range grp.members {
			if om.pendingSync != nil {
				om.pendingSync <- &wire.SyncGroupResponse{Err: wire.ErrRebalanceInProgress}
				om.pendingSync = nil
			}
		}
	}
	g.maybeCompleteJoinLocked(grp)
	return ch
}

// maybeCompleteJoinLocked finishes the join barrier when every known
// member has a pending join, or when the rebalance deadline passed (then
// stragglers are evicted). Called with g.mu held.
func (g *groupCoordinator) maybeCompleteJoinLocked(grp *group) {
	if grp.state != groupPreparingRebalance {
		return
	}
	allJoined := true
	for _, m := range grp.members {
		if m.pendingJoin == nil {
			allJoined = false
			break
		}
	}
	expired := g.b.cfg.Now().After(grp.rebalanceDeadline)
	if !allJoined && !expired {
		return
	}
	if !allJoined {
		// Evict members that missed the barrier.
		for id, m := range grp.members {
			if m.pendingJoin == nil {
				delete(grp.members, id)
			}
		}
	}
	if len(grp.members) == 0 {
		grp.state = groupEmpty
		return
	}
	grp.generation++
	// Deterministic leader: lexicographically smallest member id, unless
	// the previous leader is still present.
	ids := make([]string, 0, len(grp.members))
	for id := range grp.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if _, ok := grp.members[grp.leaderID]; !ok || grp.leaderID == "" {
		grp.leaderID = ids[0]
	}
	memberList := make([]wire.GroupMember, 0, len(ids))
	for _, id := range ids {
		memberList = append(memberList, wire.GroupMember{
			MemberID: id,
			Metadata: grp.members[id].metadata,
		})
	}
	now := g.b.cfg.Now()
	for _, id := range ids {
		m := grp.members[id]
		resp := &wire.JoinGroupResponse{
			Generation: grp.generation,
			Protocol:   grp.protocol,
			LeaderID:   grp.leaderID,
			MemberID:   id,
		}
		if id == grp.leaderID {
			resp.Members = memberList
		}
		// The barrier may have parked this member for a long time;
		// restart its session clock so it is not expired mid-sync.
		m.lastHeartbeat = now
		m.pendingJoin <- resp
		m.pendingJoin = nil
	}
	grp.state = groupCompletingRebalance
	g.b.logger.Debug("group rebalanced",
		"group", grp.name, "generation", grp.generation, "members", len(ids))
}

// tick drives join-barrier deadlines and member expiry; the broker calls it
// periodically.
func (g *groupCoordinator) tick(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, grp := range g.groups {
		if grp.state == groupPreparingRebalance && now.After(grp.rebalanceDeadline) {
			g.maybeCompleteJoinLocked(grp)
		}
		// Expire members whose heartbeats stopped — except those parked
		// in a join barrier, whose liveness is the pending join itself.
		victim := false
		for id, m := range grp.members {
			if m.pendingJoin != nil {
				continue
			}
			if now.Sub(m.lastHeartbeat) > m.sessionTimeout {
				delete(grp.members, id)
				victim = true
				g.b.logger.Debug("group member expired", "group", grp.name, "member", id)
			}
		}
		if victim && len(grp.members) == 0 {
			grp.state = groupEmpty
			continue
		}
		if victim {
			if grp.state != groupPreparingRebalance {
				grp.state = groupPreparingRebalance
				grp.rebalanceDeadline = now.Add(grp.rebalanceTimeout)
			}
			// The expired member may have been the last straggler the
			// join barrier was waiting for.
			g.maybeCompleteJoinLocked(grp)
		}
	}
}

// handleSync processes a SyncGroup request.
func (g *groupCoordinator) handleSync(req *wire.SyncGroupRequest) <-chan *wire.SyncGroupResponse {
	ch := make(chan *wire.SyncGroupResponse, 1)
	if !g.b.coordinatesGroup(req.Group) {
		ch <- &wire.SyncGroupResponse{Err: wire.ErrNotCoordinator}
		return ch
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	grp, ok := g.groups[req.Group]
	if !ok {
		ch <- &wire.SyncGroupResponse{Err: wire.ErrUnknownMemberID}
		return ch
	}
	m, ok := grp.members[req.MemberID]
	if !ok {
		ch <- &wire.SyncGroupResponse{Err: wire.ErrUnknownMemberID}
		return ch
	}
	if req.Generation != grp.generation {
		ch <- &wire.SyncGroupResponse{Err: wire.ErrIllegalGeneration}
		return ch
	}
	switch grp.state {
	case groupStable:
		ch <- &wire.SyncGroupResponse{Assignment: m.assignment}
		return ch
	case groupCompletingRebalance:
		// fall through
	default:
		ch <- &wire.SyncGroupResponse{Err: wire.ErrRebalanceInProgress}
		return ch
	}
	if req.MemberID == grp.leaderID {
		// The leader delivers everyone's assignment.
		byID := make(map[string][]byte, len(req.Assignments))
		for _, a := range req.Assignments {
			byID[a.MemberID] = a.Assignment
		}
		for id, om := range grp.members {
			om.assignment = byID[id]
			if om.pendingSync != nil {
				om.pendingSync <- &wire.SyncGroupResponse{Assignment: om.assignment}
				om.pendingSync = nil
			}
		}
		grp.state = groupStable
		ch <- &wire.SyncGroupResponse{Assignment: m.assignment}
		return ch
	}
	m.pendingSync = ch
	return ch
}

// handleHeartbeat refreshes liveness and signals rebalances.
func (g *groupCoordinator) handleHeartbeat(req *wire.HeartbeatRequest) wire.ErrorCode {
	if !g.b.coordinatesGroup(req.Group) {
		return wire.ErrNotCoordinator
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	grp, ok := g.groups[req.Group]
	if !ok {
		return wire.ErrUnknownMemberID
	}
	m, ok := grp.members[req.MemberID]
	if !ok {
		return wire.ErrUnknownMemberID
	}
	m.lastHeartbeat = g.b.cfg.Now()
	if req.Generation != grp.generation {
		return wire.ErrIllegalGeneration
	}
	if grp.state == groupPreparingRebalance {
		return wire.ErrRebalanceInProgress
	}
	return wire.ErrNone
}

// handleLeave removes a member and triggers a rebalance for the rest.
func (g *groupCoordinator) handleLeave(req *wire.LeaveGroupRequest) wire.ErrorCode {
	if !g.b.coordinatesGroup(req.Group) {
		return wire.ErrNotCoordinator
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	grp, ok := g.groups[req.Group]
	if !ok {
		return wire.ErrNone
	}
	m, ok := grp.members[req.MemberID]
	if !ok {
		return wire.ErrNone
	}
	if m.pendingJoin != nil {
		m.pendingJoin <- &wire.JoinGroupResponse{Err: wire.ErrUnknownMemberID}
	}
	if m.pendingSync != nil {
		m.pendingSync <- &wire.SyncGroupResponse{Err: wire.ErrUnknownMemberID}
	}
	delete(grp.members, req.MemberID)
	if len(grp.members) == 0 {
		grp.state = groupEmpty
		return wire.ErrNone
	}
	if grp.state != groupPreparingRebalance {
		grp.state = groupPreparingRebalance
		grp.rebalanceDeadline = g.b.cfg.Now().Add(grp.rebalanceTimeout)
	}
	g.maybeCompleteJoinLocked(grp)
	return wire.ErrNone
}

// dropAll fails all parked requests; used at broker shutdown.
func (g *groupCoordinator) dropAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, grp := range g.groups {
		for _, m := range grp.members {
			if m.pendingJoin != nil {
				m.pendingJoin <- &wire.JoinGroupResponse{Err: wire.ErrCoordinatorNotAvailable}
				m.pendingJoin = nil
			}
			if m.pendingSync != nil {
				m.pendingSync <- &wire.SyncGroupResponse{Err: wire.ErrCoordinatorNotAvailable}
				m.pendingSync = nil
			}
		}
	}
	g.groups = make(map[string]*group)
}

package broker_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// rawConn dials a dedicated wire connection to the leader of topic/0.
func rawConn(t *testing.T, c *client.Client, topic string) *client.Conn {
	t.Helper()
	leader, err := c.LeaderFor(topic, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := c.DialDedicated(leader)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// rawProduce sends one sealed payload to topic/0 and returns the assigned
// base offset.
func rawProduce(t *testing.T, conn *client.Conn, topic string, payload []byte) (int64, wire.ErrorCode) {
	t.Helper()
	var resp wire.ProduceResponse
	err := conn.RoundTrip(wire.APIProduce, &wire.ProduceRequest{
		RequiredAcks: 1,
		TimeoutMs:    5000,
		Topics: []wire.ProduceTopic{{
			Name:       topic,
			Partitions: []wire.ProducePartition{{Partition: 0, Records: payload}},
		}},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	p := resp.Topics[0].Partitions[0]
	return p.BaseOffset, p.Err
}

// rawFetch pulls raw stored bytes from topic/0 at offset, optionally as a
// follower (replicaID >= 0 reads beyond the high watermark).
func rawFetch(t *testing.T, conn *client.Conn, topic string, offset int64, replicaID int32) []byte {
	t.Helper()
	var resp wire.FetchResponse
	err := conn.RoundTrip(wire.APIFetch, &wire.FetchRequest{
		ReplicaID: replicaID,
		MaxWaitMs: 1000,
		MinBytes:  1,
		MaxBytes:  1 << 20,
		Topics: []wire.FetchTopic{{
			Name:       topic,
			Partitions: []wire.FetchPartition{{Partition: 0, Offset: offset, MaxBytes: 1 << 20}},
		}},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	p := resp.Topics[0].Partitions[0]
	if p.Err != wire.ErrNone {
		t.Fatalf("fetch error: %v", p.Err.Err())
	}
	// Records aliases the connection's frame buffer; copy before the next
	// round trip on this conn.
	return append([]byte(nil), p.Records...)
}

func sealedBatch(t *testing.T, codec record.Codec, base int, values ...string) []byte {
	t.Helper()
	recs := make([]record.Record, len(values))
	for i, v := range values {
		recs[i] = record.Record{Timestamp: int64(base + i + 1), Value: []byte(v)}
	}
	sealed, err := record.Compress(record.EncodeBatch(0, recs), codec)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

// TestCompressedBatchStoredAndServedByteIdentical is the zero-recompression
// contract: the broker stores a producer's compressed batch with only its
// base offset restamped, and serves the same bytes to consumers and
// followers.
func TestCompressedBatchStoredAndServedByteIdentical(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "sealed", 1, 1)
	conn := rawConn(t, c, "sealed")

	b1 := sealedBatch(t, record.CodecGzip, 0, "alpha", "beta", "gamma")
	b2 := sealedBatch(t, record.CodecFlate, 3, strings32())
	if base, code := rawProduce(t, conn, "sealed", b1); base != 0 || code != wire.ErrNone {
		t.Fatalf("produce b1: base=%d err=%v", base, code)
	}
	if base, code := rawProduce(t, conn, "sealed", b2); base != 3 || code != wire.ErrNone {
		t.Fatalf("produce b2: base=%d err=%v", base, code)
	}

	// The expected stored form is the produced bytes with the assigned
	// base offset stamped in — nothing else may change.
	want1 := append([]byte(nil), b1...)
	record.RestampBase(want1, 0)
	want2 := append([]byte(nil), b2...)
	record.RestampBase(want2, 3)
	want := append(append([]byte(nil), want1...), want2...)

	got := rawFetch(t, conn, "sealed", 0, -1)
	if !bytes.Equal(got, want) {
		t.Fatalf("consumer fetch returned %dB != produced %dB (recompression or rewrite happened)", len(got), len(want))
	}
	// Followers replicate through the same read path; their fetch must see
	// the identical bytes (this is what AppendBatch stores verbatim on the
	// follower's log).
	gotF := rawFetch(t, conn, "sealed", 0, 99)
	if !bytes.Equal(gotF, want) {
		t.Fatal("follower fetch differs from produced bytes")
	}
}

// strings32 returns one compressible 32-byte-ish value.
func strings32() string {
	return "delta-delta-delta-delta-delta-32"
}

// TestCorruptCompressedProduceRejected flips a byte inside a compressed
// batch: the broker must reject it with a corrupt-message error, not store
// it.
func TestCorruptCompressedProduceRejected(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "corrupt", 1, 1)
	conn := rawConn(t, c, "corrupt")

	bad := sealedBatch(t, record.CodecGzip, 0, "payload-payload-payload")
	bad[len(bad)-2] ^= 0xFF
	if _, code := rawProduce(t, conn, "corrupt", bad); code != wire.ErrCorruptMessage {
		t.Fatalf("corrupt produce accepted: err=%v", code)
	}
	// Nothing may have been stored.
	if got := rawFetch(t, conn, "corrupt", 0, 99); len(got) != 0 {
		t.Fatalf("corrupt batch was stored: %dB readable", len(got))
	}
}

// TestCompressedReplicationByteIdentical produces compressed batches with
// acks=all on an RF=2 topic and asserts the leader's and follower's
// partition logs are byte-for-byte identical on disk.
func TestCompressedReplicationByteIdentical(t *testing.T) {
	tc := startCluster(t, 2)
	c := tc.newClient(t)
	createTopic(t, c, "mirrored", 1, 2)

	p := client.NewProducer(c, client.ProducerConfig{
		Acks:  client.AcksAll,
		Codec: client.CodecGzip,
	})
	defer p.Close()
	for i := 0; i < 20; i++ {
		if _, err := p.SendSync(client.Message{
			Topic: "mirrored",
			Value: bytes.Repeat([]byte(fmt.Sprintf("value-%d-", i)), 64),
		}); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
	}

	// acks=all means the full ISR has every batch; compare the two
	// brokers' on-disk partition logs.
	read := func(dir string) []byte {
		var all []byte
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".log" {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, b...)
		}
		return all
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		a := read(filepath.Join(tc.dataDirs[0], "mirrored-0"))
		b := read(filepath.Join(tc.dataDirs[1], "mirrored-0"))
		if len(a) > 0 && bytes.Equal(a, b) {
			// Both replicas hold compressed batches, verbatim.
			codec, err := record.PeekCodec(a)
			if err != nil || codec != record.CodecGzip {
				t.Fatalf("stored batch codec = %v, %v", codec, err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica logs never converged: leader %dB follower %dB", len(a), len(b))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMixedCodecTopic interleaves uncompressed, gzip and flate batches on
// one partition — the shape of a topic whose producers enabled compression
// at different times — and consumes them back in order.
func TestMixedCodecTopic(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "mixed", 1, 1)

	codecs := []client.Codec{client.CodecNone, client.CodecGzip, client.CodecFlate}
	var want []string
	for round := 0; round < 3; round++ {
		p := client.NewProducer(c, client.ProducerConfig{Codec: codecs[round]})
		for i := 0; i < 10; i++ {
			v := fmt.Sprintf("round-%d-msg-%d", round, i)
			want = append(want, v)
			if err := p.Send(client.Message{Topic: "mixed", Value: []byte(v)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}

	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	if err := cons.Assign("mixed", 0, client.StartEarliest); err != nil {
		t.Fatal(err)
	}
	var got []string
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < len(want) && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if m.Offset != int64(len(got)) {
				t.Fatalf("offset %d out of order (want %d)", m.Offset, len(got))
			}
			got = append(got, string(m.Value))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("consumed %d/%d messages", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("msg %d = %q, want %q", i, got[i], want[i])
		}
	}
}

package broker

import (
	"log/slog"
	"testing"
	"time"

	"repro/internal/storage/log"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// These tests drive the broker's liveness decisions — ISR lag detection and
// group-member expiry — entirely through injected clocks: no sleeps, no
// tickers, no flake. The timing-dependent paths take explicit now values
// (or read Config.Now), so a test advances time by passing a later instant.

var clockBase = time.Unix(1_700_000_000, 0)

func TestLaggingFollowerDetectionInjectedClock(t *testing.T) {
	l, err := log.Open(t.TempDir(), log.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := newReplica(tp{topic: "lag", partition: 0}, l, 1)
	defer r.close()
	r.becomeLeader(1, []int32{1, 2}, []int32{1, 2}, 1)

	// Follower 2 fetches at t0 with an empty log: caught up.
	r.onFollowerFetch(2, 0, clockBase)
	if lag := r.laggingFollowers(time.Second, clockBase); len(lag) != 0 {
		t.Fatalf("caught-up follower flagged lagging: %v", lag)
	}

	// The leader appends; the follower never fetches again.
	if _, _, _, code := r.appendAsLeader([]record.Record{{Timestamp: 1, Value: []byte("x")}}, 1); code != 0 {
		t.Fatalf("append failed: %v", code)
	}
	// Within maxLag: not yet lagging.
	if lag := r.laggingFollowers(time.Second, clockBase.Add(500*time.Millisecond)); len(lag) != 0 {
		t.Fatalf("follower flagged lagging before maxLag: %v", lag)
	}
	// Past maxLag: flagged for ISR shrink.
	lag := r.laggingFollowers(time.Second, clockBase.Add(1500*time.Millisecond))
	if len(lag) != 1 || lag[0] != 2 {
		t.Fatalf("lagging = %v, want [2]", lag)
	}

	// The follower catches up: it stops being lagging, and the high
	// watermark advances to cover the replicated record.
	r.onFollowerFetch(2, 1, clockBase.Add(2*time.Second))
	if lag := r.laggingFollowers(time.Second, clockBase.Add(2*time.Second)); len(lag) != 0 {
		t.Fatalf("caught-up follower still lagging: %v", lag)
	}
	if hw := r.highWatermark(); hw != 1 {
		t.Fatalf("hw = %d after full replication, want 1", hw)
	}
}

// clockBroker builds an offline Broker shell whose Config.Now reads the
// test's clock variable — enough structure for the group coordinator's
// state machine, which needs no network.
func clockBroker(now *time.Time) *Broker {
	cfg := Config{Now: func() time.Time { return *now }}.withDefaults()
	return &Broker{
		cfg:    cfg,
		logger: slog.Default(),
	}
}

func TestGroupMemberExpiryInjectedClock(t *testing.T) {
	now := clockBase
	b := clockBroker(&now)
	g := newGroupCoordinator(b)
	grp := &group{
		name:             "g",
		state:            groupStable,
		generation:       3,
		rebalanceTimeout: 2 * time.Second,
		members: map[string]*member{
			"fast": {id: "fast", sessionTimeout: time.Second, lastHeartbeat: clockBase},
			"slow": {id: "slow", sessionTimeout: 5 * time.Second, lastHeartbeat: clockBase},
		},
	}
	g.groups["g"] = grp

	// Before any timeout: nothing changes.
	g.tick(clockBase.Add(500 * time.Millisecond))
	if len(grp.members) != 2 || grp.state != groupStable {
		t.Fatalf("premature expiry: members=%d state=%v", len(grp.members), grp.state)
	}

	// Past "fast"'s session timeout: it is evicted and the group enters a
	// rebalance for the survivor.
	now = clockBase.Add(1500 * time.Millisecond)
	g.tick(now)
	if _, ok := grp.members["fast"]; ok {
		t.Fatal("expired member still present")
	}
	if _, ok := grp.members["slow"]; !ok {
		t.Fatal("live member evicted")
	}
	if grp.state != groupPreparingRebalance {
		t.Fatalf("state = %v, want preparing-rebalance", grp.state)
	}

	// The survivor never rejoins; when the rebalance deadline passes it is
	// evicted too and the group empties.
	now = grp.rebalanceDeadline.Add(time.Millisecond)
	g.tick(now)
	if grp.state != groupEmpty || len(grp.members) != 0 {
		t.Fatalf("state=%v members=%d, want empty group", grp.state, len(grp.members))
	}
}

func TestGroupRebalanceBarrierExpiryInjectedClock(t *testing.T) {
	now := clockBase
	b := clockBroker(&now)
	g := newGroupCoordinator(b)
	grp := &group{
		name:              "g",
		state:             groupPreparingRebalance,
		generation:        1,
		rebalanceTimeout:  2 * time.Second,
		rebalanceDeadline: clockBase.Add(2 * time.Second),
		members:           map[string]*member{},
	}
	joinCh := make(chan *wire.JoinGroupResponse, 1)
	ready := &member{id: "ready", sessionTimeout: 30 * time.Second, lastHeartbeat: clockBase}
	ready.pendingJoin = joinCh
	straggler := &member{id: "straggler", sessionTimeout: 30 * time.Second, lastHeartbeat: clockBase}
	grp.members["ready"] = ready
	grp.members["straggler"] = straggler
	g.groups["g"] = grp

	// Barrier holds while the straggler is missing and the deadline is in
	// the future.
	g.tick(clockBase.Add(time.Second))
	if grp.state != groupPreparingRebalance {
		t.Fatalf("barrier released early: %v", grp.state)
	}
	select {
	case <-joinCh:
		t.Fatal("join completed before deadline with a straggler missing")
	default:
	}

	// Deadline passes: the straggler is evicted, the barrier completes for
	// the joined member, which becomes leader of the next generation.
	now = clockBase.Add(2*time.Second + time.Millisecond)
	g.tick(now)
	select {
	case resp := <-joinCh:
		if resp.Generation != 2 || resp.LeaderID != "ready" {
			t.Fatalf("join response = gen %d leader %q", resp.Generation, resp.LeaderID)
		}
	default:
		t.Fatal("barrier never completed after deadline")
	}
	if _, ok := grp.members["straggler"]; ok {
		t.Fatal("straggler survived the deadline")
	}
	if grp.state != groupCompletingRebalance {
		t.Fatalf("state = %v, want completing-rebalance", grp.state)
	}
}

package broker_test

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/coord"
	"repro/internal/wire"
)

// startClusterWithRetention boots brokers that enforce retention often.
func startClusterWithRetention(t *testing.T, n int, interval time.Duration) *testCluster {
	t.Helper()
	store := coord.New(coord.Config{})
	tc := &testCluster{store: store, stopExpiry: store.StartExpiry(50 * time.Millisecond)}
	for i := 0; i < n; i++ {
		b, err := broker.Start(store, broker.Config{
			ID:                 int32(i + 1),
			DataDir:            t.TempDir(),
			SessionTimeout:     600 * time.Millisecond,
			RetentionInterval:  interval,
			OffsetsPartitions:  2,
			OffsetsReplication: 1,
		})
		if err != nil {
			t.Fatalf("start broker %d: %v", i+1, err)
		}
		tc.brokers = append(tc.brokers, b)
		tc.addrs = append(tc.addrs, b.Addr())
	}
	t.Cleanup(tc.shutdown)
	return tc
}

// writeRaw sends raw bytes on a fresh TCP connection.
func writeRaw(t *testing.T, addr string, raw []byte) error {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	_, err = nc.Write(raw)
	return err
}

// Additional broker coverage: error paths, validation, retention-driven
// resets, ISR dynamics and replication catch-up.

func TestProduceToUnknownTopicFails(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	if _, err := p.SendSync(client.Message{Topic: "ghost", Value: []byte("x")}); err == nil {
		t.Fatal("produce to missing topic accepted")
	}
}

func TestCreateTopicValidation(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	cases := []wire.TopicSpec{
		{Name: ""},
		{Name: "has spaces"},
		{Name: "bad/slash"},
	}
	for _, spec := range cases {
		if err := c.CreateTopic(spec); err == nil {
			t.Fatalf("invalid topic %q accepted", spec.Name)
		}
	}
	// Replication beyond the live broker count fails.
	if err := c.CreateTopic(wire.TopicSpec{Name: "toowide", NumPartitions: 1, ReplicationFactor: 5}); err == nil {
		t.Fatal("rf beyond cluster size accepted")
	}
	// Duplicate creation fails with TopicAlreadyExists.
	createTopic(t, c, "dup", 1, 1)
	err := c.CreateTopic(wire.TopicSpec{Name: "dup", NumPartitions: 1, ReplicationFactor: 1})
	if wire.Code(err) != wire.ErrTopicAlreadyExists {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestCreateTopicDefaultsPartitionsAndRF(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	if err := c.CreateTopic(wire.TopicSpec{Name: "minimal"}); err != nil {
		t.Fatal(err)
	}
	n, err := c.PartitionCount("minimal")
	if err != nil || n != 1 {
		t.Fatalf("partitions = %d, %v", n, err)
	}
}

func TestConsumerResetOnRetention(t *testing.T) {
	// A consumer whose position was deleted by retention resets to the
	// new log start (ResetEarliest policy).
	store := tcStore(t)
	tc := store
	c := tc.newClient(t)
	if err := c.CreateTopic(wire.TopicSpec{
		Name:          "aging",
		NumPartitions: 1,
		// Aggressive size retention: ~1 segment kept.
		RetentionBytes: 4 << 10,
		SegmentBytes:   2 << 10,
		RetentionMs:    -1,
	}); err != nil {
		t.Fatal(err)
	}
	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < 200; i++ {
		if err := p.Send(client.Message{Topic: "aging", Value: []byte(fmt.Sprintf("event-%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait for the retention tick to delete old segments.
	deadline := time.Now().Add(15 * time.Second)
	for {
		early, err := c.ListOffset("aging", 0, wire.TimestampEarliest)
		if err == nil && early > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retention never advanced the log start")
		}
		time.Sleep(100 * time.Millisecond)
	}
	cons := client.NewConsumer(c, client.ConsumerConfig{OnReset: client.ResetEarliest})
	defer cons.Close()
	// Assign at offset 0, now below the log start: the consumer must
	// reset instead of wedging.
	if err := cons.Seek("aging", 0, 0); err == nil {
		t.Fatal("seek before assign should fail")
	}
	if err := cons.Assign("aging", 0, 0); err != nil {
		t.Fatal(err)
	}
	msgs := collectN(t, cons.Poll, 10, 15*time.Second)
	if msgs[0].Offset == 0 {
		t.Fatal("consumer read offset 0, which retention deleted")
	}
}

// tcStore builds a cluster whose brokers run retention frequently.
func tcStore(t *testing.T) *testCluster {
	t.Helper()
	tc := startClusterWithRetention(t, 1, 200*time.Millisecond)
	return tc
}

func TestISRShrinksWhenFollowerDies(t *testing.T) {
	tc := startCluster(t, 3)
	c := tc.newClient(t)
	createTopic(t, c, "shrink", 1, 3)
	p := client.NewProducer(c, client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()
	if _, err := p.SendSync(client.Message{Topic: "shrink", Value: []byte("warm")}); err != nil {
		t.Fatal(err)
	}
	leader, err := c.LeaderFor("shrink", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a follower (not the leader).
	var follower int32
	for _, b := range tc.brokers {
		if b.ID() != leader {
			follower = b.ID()
			break
		}
	}
	for _, b := range tc.brokers {
		if b.ID() == follower {
			b.Kill()
		}
	}
	// acks=all produces keep succeeding once the ISR shrinks.
	deadline := time.Now().Add(20 * time.Second)
	ok := false
	for time.Now().Before(deadline) {
		if _, err := p.SendSync(client.Message{Topic: "shrink", Value: []byte("after")}); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("acks=all produce never recovered after follower death (ISR did not shrink)")
	}
}

func TestFollowerCatchUpAfterRestartWindow(t *testing.T) {
	// A follower that missed data (killed) is excluded; the remaining
	// replicas still serve. This validates N-1 fault tolerance of §4.3.
	tc := startCluster(t, 3)
	c := tc.newClient(t)
	createTopic(t, c, "n1", 1, 3)
	p := client.NewProducer(c, client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()
	for i := 0; i < 10; i++ {
		if _, err := p.SendSync(client.Message{Topic: "n1", Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill two of three replicas: the sole survivor (if leader) still
	// serves committed data for reads.
	leader, _ := c.LeaderFor("n1", 0)
	killed := 0
	for _, b := range tc.brokers {
		if b.ID() != leader && killed < 2 {
			b.Kill()
			killed++
		}
	}
	cons := client.NewConsumer(c, client.ConsumerConfig{})
	defer cons.Close()
	if err := cons.Assign("n1", 0, client.StartEarliest); err != nil {
		t.Fatal(err)
	}
	msgs := collectN(t, cons.Poll, 10, 20*time.Second)
	if len(msgs) < 10 {
		t.Fatalf("read %d/10 after two follower deaths", len(msgs))
	}
}

func TestListOffsetsUnknownPartition(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "lo", 1, 1)
	if _, err := c.ListOffset("lo", 7, wire.TimestampLatest); err == nil {
		t.Fatal("list offsets for missing partition accepted")
	}
}

func TestGroupConsumerResumesFromCommit(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "resume", 1, 1)
	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	for i := 0; i < 30; i++ {
		p.Send(client.Message{Topic: "resume", Value: []byte(fmt.Sprintf("v%02d", i))})
	}
	p.Flush()

	cfg := client.GroupConfig{
		Group:             "resumers",
		Topics:            []string{"resume"},
		AutoCommit:        true,
		SessionTimeout:    3 * time.Second,
		RebalanceTimeout:  5 * time.Second,
		HeartbeatInterval: 200 * time.Millisecond,
	}
	g1, err := client.NewGroupConsumer(c, client.ConsumerConfig{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := collectN(t, g1.Poll, 30, 20*time.Second)
	if len(first) < 30 {
		t.Fatalf("first consumer got %d/30", len(first))
	}
	g1.Close() // commits on close

	// Produce more; a NEW member of the same group must see only the new
	// data (it resumes from the committed offset).
	for i := 30; i < 40; i++ {
		p.Send(client.Message{Topic: "resume", Value: []byte(fmt.Sprintf("v%02d", i))})
	}
	p.Flush()
	g2, err := client.NewGroupConsumer(c, client.ConsumerConfig{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	second := collectN(t, g2.Poll, 10, 20*time.Second)
	for _, m := range second {
		if m.Offset < 30 {
			t.Fatalf("resumed consumer re-read offset %d (already committed)", m.Offset)
		}
	}
}

func TestConnCorrelationAndClose(t *testing.T) {
	tc := startCluster(t, 1)
	conn, err := client.Dial(tc.addrs[0], "t", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.MetadataResponse
	if err := conn.RoundTrip(wire.APIMetadata, &wire.MetadataRequest{}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Brokers) != 1 {
		t.Fatalf("brokers = %v", resp.Brokers)
	}
	conn.Close()
	if !conn.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if err := conn.RoundTrip(wire.APIMetadata, &wire.MetadataRequest{}, &resp); !errors.Is(err, client.ErrConnClosed) {
		t.Fatalf("round trip on closed conn: %v", err)
	}
}

func TestBrokerSurvivesGarbageBytes(t *testing.T) {
	// A connection that sends garbage must be dropped without affecting
	// the broker (resource isolation against misbehaving clients, §2.1).
	tc := startCluster(t, 1)
	c := tc.newClient(t)
	createTopic(t, c, "robust", 1, 1)

	conn, err := client.Dial(tc.addrs[0], "garbage", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A frame with a bogus huge length prefix: the broker must reject it.
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}
	if err := writeRaw(t, tc.addrs[0], raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The broker still serves normal clients.
	p := client.NewProducer(c, client.ProducerConfig{})
	defer p.Close()
	if _, err := p.SendSync(client.Message{Topic: "robust", Value: []byte("ok")}); err != nil {
		t.Fatalf("broker unhealthy after garbage: %v", err)
	}
}

package broker_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// quotaClient builds a client whose ClientID is the quota principal under
// test.
func (tc *testCluster) quotaClient(t *testing.T, principal string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		Bootstrap:    tc.addrs,
		ClientID:     principal,
		MaxRetries:   60,
		RetryBackoff: 25 * time.Millisecond,
		MetadataTTL:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestQuotaAlterDescribeRoundTrip(t *testing.T) {
	tc := startCluster(t, 1)
	c := tc.newClient(t)

	if got, err := c.DescribeQuotas(); err != nil || len(got) != 0 {
		t.Fatalf("initial DescribeQuotas = %v, %v", got, err)
	}
	entry := wire.QuotaEntry{Principal: "tenant-a", ProduceBytesPerSec: 1 << 20, RequestsPerSec: 100}
	if err := c.SetQuota(entry); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}
	if err := c.SetQuota(wire.QuotaEntry{Principal: "tenant-b", FetchBytesPerSec: 2 << 20}); err != nil {
		t.Fatalf("SetQuota b: %v", err)
	}
	all, err := c.DescribeQuotas()
	if err != nil || len(all) != 2 {
		t.Fatalf("DescribeQuotas = %v, %v", all, err)
	}
	if all[0] != entry {
		t.Fatalf("entry round trip: %+v != %+v", all[0], entry)
	}
	one, err := c.DescribeQuotas("tenant-b", "unconfigured")
	if err != nil || len(one) != 1 || one[0].Principal != "tenant-b" {
		t.Fatalf("selective DescribeQuotas = %v, %v", one, err)
	}
	if err := c.DeleteQuota("tenant-a"); err != nil {
		t.Fatalf("DeleteQuota: %v", err)
	}
	if got, _ := c.DescribeQuotas(); len(got) != 1 {
		t.Fatalf("after delete: %v", got)
	}

	// Invalid alters are rejected with ErrInvalidRequest.
	if err := c.SetQuota(wire.QuotaEntry{Principal: ""}); err == nil {
		t.Fatal("empty principal accepted")
	}
	if err := c.SetQuota(wire.QuotaEntry{Principal: "x", ProduceBytesPerSec: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

// TestProduceThrottledByQuota exercises the produce charge point end to
// end: an aggressor principal with a tight byte quota sees ThrottleTimeMs
// verdicts (visible in Producer.Throttled) while a co-located principal
// without a quota never does.
func TestProduceThrottledByQuota(t *testing.T) {
	tc := startCluster(t, 1)
	admin := tc.newClient(t)
	createTopic(t, admin, "shared", 1, 1)

	if err := admin.SetQuota(wire.QuotaEntry{Principal: "aggr", ProduceBytesPerSec: 64 << 10}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}

	aggr := client.NewProducer(tc.quotaClient(t, "aggr"), client.ProducerConfig{})
	defer aggr.Close()
	victim := client.NewProducer(tc.quotaClient(t, "victim"), client.ProducerConfig{})
	defer victim.Close()

	// ~4x the aggressor's per-second budget, sent as fast as the quota
	// allows: the bucket must run dry and the broker must answer with
	// throttle verdicts the client honors.
	value := bytes.Repeat([]byte("x"), 32<<10)
	for i := 0; i < 8; i++ {
		if _, err := aggr.SendSync(client.Message{Topic: "shared", Value: value}); err != nil {
			t.Fatalf("aggr send %d: %v", i, err)
		}
		if _, err := victim.SendSync(client.Message{Topic: "shared", Value: []byte("small")}); err != nil {
			t.Fatalf("victim send %d: %v", i, err)
		}
	}
	if st := aggr.Throttled(); st.Count == 0 || st.Delay == 0 {
		t.Fatalf("aggressor was never throttled: %+v", st)
	}
	if st := victim.Throttled(); st.Count != 0 {
		t.Fatalf("victim was throttled: %+v", st)
	}
}

// TestAcksNoneProduceThrottledByQuota covers the fire-and-forget gap:
// acks=0 produces have no response frame to carry ThrottleTimeMs, so the
// broker applies the penalty as socket-level backpressure — it delays
// reading the connection's next frame. A quota-busting acks=0 flood must
// therefore take at least its budgeted time to land, instead of bypassing
// quotas entirely.
func TestAcksNoneProduceThrottledByQuota(t *testing.T) {
	tc := startCluster(t, 1)
	admin := tc.newClient(t)
	createTopic(t, admin, "fire", 1, 1)
	if err := admin.SetQuota(wire.QuotaEntry{Principal: "fire-hose", ProduceBytesPerSec: 64 << 10}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}

	p := client.NewProducer(tc.quotaClient(t, "fire-hose"), client.ProducerConfig{
		Acks:       client.AcksNone,
		BatchBytes: 1 << 30, // no size-triggered flushes; we flush explicitly
		Linger:     time.Hour,
	})
	defer p.Close()

	// 5 x 64KiB at 64KiB/s: the burst absorbs the first, the serve loop
	// must hold the connection ~1s per following frame.
	value := bytes.Repeat([]byte("f"), 64<<10)
	const n = 5
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := p.Send(client.Message{Topic: "fire", Value: value}); err != nil {
			t.Fatalf("send: %v", err)
		}
		if err := p.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	// All records must land despite fire-and-forget + throttling.
	cons := client.NewConsumer(tc.newClient(t), client.ConsumerConfig{})
	defer cons.Close()
	if err := cons.Assign("fire", 0, client.StartEarliest); err != nil {
		t.Fatalf("assign: %v", err)
	}
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for got < n && time.Now().Before(deadline) {
		msgs, err := cons.Poll(250 * time.Millisecond)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		got += len(msgs)
	}
	elapsed := time.Since(start)
	if got != n {
		t.Fatalf("only %d/%d acks=0 records landed", got, n)
	}
	if elapsed < 1500*time.Millisecond {
		t.Fatalf("acks=0 flood landed in %v — socket backpressure not applied", elapsed)
	}
	if v := tc.brokers[0].Metrics().Counter("broker.quota.throttles.produce").Value(); v == 0 {
		t.Fatal("no produce throttles recorded for the acks=0 flood")
	}
}

// TestFetchThrottledByQuota exercises the fetch charge point: a reader
// with a tight fetch-byte quota gets throttled draining a backlog, and the
// cluster keeps serving (all records still arrive).
func TestFetchThrottledByQuota(t *testing.T) {
	tc := startCluster(t, 1)
	admin := tc.newClient(t)
	createTopic(t, admin, "backlog", 1, 1)

	p := client.NewProducer(tc.newClient(t), client.ProducerConfig{BatchBytes: 256 << 10})
	defer p.Close()
	value := bytes.Repeat([]byte("y"), 8<<10)
	const n = 32
	for i := 0; i < n; i++ {
		if err := p.Send(client.Message{Topic: "backlog", Value: value}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	if err := admin.SetQuota(wire.QuotaEntry{Principal: "reader", FetchBytesPerSec: 64 << 10}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}
	cons := client.NewConsumer(tc.quotaClient(t, "reader"), client.ConsumerConfig{MaxBytes: 64 << 10})
	defer cons.Close()
	if err := cons.Assign("backlog", 0, client.StartEarliest); err != nil {
		t.Fatalf("assign: %v", err)
	}
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for got < n && time.Now().Before(deadline) {
		msgs, err := cons.Poll(250 * time.Millisecond)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		got += len(msgs)
	}
	if got != n {
		t.Fatalf("reader drained %d/%d records", got, n)
	}
	if st := cons.Throttled(); st.Count == 0 {
		t.Fatalf("reader was never throttled draining 256KiB at 64KiB/s: %+v", st)
	}
}

// TestQuotaChangeConvergesViaWatch verifies the cache-invalidation path:
// once a principal's quota is lifted, its cached governor is dropped (via
// the /quotas/ registry watch) and throttling stops.
func TestQuotaChangeConvergesViaWatch(t *testing.T) {
	tc := startCluster(t, 1)
	admin := tc.newClient(t)
	createTopic(t, admin, "conv", 1, 1)
	if err := admin.SetQuota(wire.QuotaEntry{Principal: "conv-tenant", ProduceBytesPerSec: 16 << 10}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}

	p := client.NewProducer(tc.quotaClient(t, "conv-tenant"), client.ProducerConfig{})
	defer p.Close()
	value := bytes.Repeat([]byte("z"), 16<<10)
	for i := 0; i < 4; i++ {
		if _, err := p.SendSync(client.Message{Topic: "conv", Value: value}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	before := p.Throttled()
	if before.Count == 0 {
		t.Fatalf("tenant was never throttled under the tight quota")
	}

	// Lift the quota; the broker's watch must invalidate the cached
	// governor, after which produces stop accruing throttle verdicts.
	if err := admin.DeleteQuota("conv-tenant"); err != nil {
		t.Fatalf("DeleteQuota: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mark := p.Throttled()
		if _, err := p.SendSync(client.Message{Topic: "conv", Value: value}); err != nil {
			t.Fatalf("send: %v", err)
		}
		if p.Throttled() == mark {
			return // an unthrottled produce went through
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant still throttled after quota removal: %+v", p.Throttled())
		}
	}
}

package broker

import (
	"errors"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/storage/log"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// acceptLoop serves client and replica connections. Each connection is
// handled by one goroutine processing requests serially; blocking APIs
// (long-poll fetch, join barriers) therefore block only their own
// connection, which clients know to dedicate.
func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			return // listener closed on shutdown
		}
		b.mu.Lock()
		if b.stopped {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer func() {
				conn.Close()
				b.mu.Lock()
				delete(b.conns, conn)
				b.mu.Unlock()
			}()
			b.serveConn(conn)
		}()
	}
}

func (b *Broker) serveConn(conn net.Conn) {
	// The frame buffer is reused across requests on this connection:
	// dispatch fully consumes each request (produce payloads are appended
	// to the log before the next frame is read), and anything a handler
	// retains longer — group metadata, offset commits — is copied during
	// decode. Responses go out through pooled writers as a single frame.
	var rbuf []byte
	for {
		select {
		case <-b.stopCh:
			return
		default:
		}
		payload, err := wire.ReadFrameInto(conn, rbuf)
		if err != nil {
			return
		}
		// Keep the buffer for reuse, but never pin a giant frame's worth
		// of memory to an idle connection.
		if cap(payload) <= 1<<20 {
			rbuf = payload
		} else {
			rbuf = nil
		}
		hdr, body, err := wire.DecodeRequest(payload)
		if err != nil {
			return
		}
		// Instrumentation wraps dispatch only: handler time including any
		// long-poll wait, excluding frame I/O. The timestamp is taken lazily
		// so the disabled path (E25 baseline) costs a nil check and nothing
		// else.
		var start time.Time
		if b.met != nil {
			start = b.now()
		}
		resp, reply, delay := b.dispatch(hdr, body)
		if b.met != nil {
			b.met.noteRequest(hdr.API, hdr.ClientID, len(payload), resp, b.since(start))
		}
		if !reply {
			// Fire-and-forget (acks=0) has no response frame to carry a
			// ThrottleTimeMs verdict, so the quota penalty is applied as
			// socket-level backpressure instead: delay reading this
			// connection's next frame. Only this principal's own
			// connection goroutine sleeps — shared broker state is
			// untouched — which is what keeps an acks=0 flood from
			// bypassing quotas entirely.
			if delay > 0 {
				if delay > maxThrottle {
					delay = maxThrottle
				}
				select {
				case <-b.after(delay):
				case <-b.stopCh:
					return
				}
			}
			continue
		}
		err = wire.WriteResponseFrame(conn, hdr.CorrelationID, resp)
		if fr, ok := resp.(*wire.FetchResponse); ok {
			// Zero-copy fetch responses hold open segment file ranges
			// until their bytes are spliced into the frame.
			closeFetchRanges(fr)
		}
		if err != nil {
			return
		}
	}
}

// dispatch decodes and routes one request. reply=false means the request
// is fire-and-forget (acks=0 produce) and no response frame is written;
// delay then carries the quota penalty the serve loop must apply as
// socket-level backpressure (it is always 0 when reply is true).
func (b *Broker) dispatch(hdr wire.RequestHeader, r *wire.Reader) (wire.Message, bool, time.Duration) {
	body, ok := wire.NewRequestBody(hdr.API)
	if !ok {
		return &wire.ProduceResponse{}, true, 0 // unknown API: empty response
	}
	body.Decode(r)
	if r.Err() != nil {
		return &wire.ProduceResponse{}, true, 0
	}
	b.cfg.Metrics.Counter("broker.requests").Inc()
	// Every request charges the principal's request-rate quota — except
	// replication fetches, which are exempt end to end (throttling a
	// follower would starve the ISR, not the tenant causing the load).
	// The penalty is surfaced on produce/fetch responses
	// (ThrottleTimeMs); for other APIs the charge still drains the
	// bucket, so a flood of metadata or offset traffic shows up on the
	// next produce/fetch.
	var reqPenalty time.Duration
	if f, ok := body.(*wire.FetchRequest); !ok || f.ReplicaID < 0 {
		reqPenalty = b.quotas.chargeRequest(hdr.ClientID)
	}
	//wireclass:dispatch
	switch req := body.(type) {
	case *wire.ProduceRequest:
		resp := b.handleProduce(req, hdr.ClientID, reqPenalty)
		if req.RequiredAcks == 0 {
			return resp, false, time.Duration(resp.ThrottleTimeMs) * time.Millisecond
		}
		return resp, true, 0
	case *wire.FetchRequest:
		return b.handleFetch(req, hdr.ClientID, reqPenalty), true, 0
	case *wire.ListOffsetsRequest:
		return b.handleListOffsets(req), true, 0
	case *wire.MetadataRequest:
		return b.handleMetadata(req), true, 0
	case *wire.CreateTopicsRequest:
		return b.handleCreateTopics(req), true, 0
	case *wire.DeleteTopicsRequest:
		return b.handleDeleteTopics(req), true, 0
	case *wire.OffsetCommitRequest:
		return b.handleOffsetCommit(req), true, 0
	case *wire.OffsetFetchRequest:
		return b.handleOffsetFetch(req), true, 0
	case *wire.OffsetQueryRequest:
		return b.offsets.query(req), true, 0
	case *wire.TierStatusRequest:
		return b.handleTierStatus(req), true, 0
	case *wire.TableGetRequest:
		return b.handleTableGet(req), true, 0
	case *wire.TableRangeRequest:
		return b.handleTableRange(req), true, 0
	case *wire.DescribeQuotasRequest:
		return b.handleDescribeQuotas(req), true, 0
	case *wire.AlterQuotasRequest:
		return b.handleAlterQuotas(req), true, 0
	case *wire.FindCoordinatorRequest:
		return b.handleFindCoordinator(req), true, 0
	case *wire.InitProducerRequest:
		return b.handleInitProducer(req), true, 0
	case *wire.JoinGroupRequest:
		return <-b.groups.handleJoin(req, hdr.ClientID), true, 0
	case *wire.SyncGroupRequest:
		return <-b.groups.handleSync(req), true, 0
	case *wire.HeartbeatRequest:
		return &wire.HeartbeatResponse{Err: b.groups.handleHeartbeat(req)}, true, 0
	case *wire.LeaveGroupRequest:
		return &wire.LeaveGroupResponse{Err: b.groups.handleLeave(req)}, true, 0
	}
	return &wire.ProduceResponse{}, true, 0
}

// ------------------------------------------------------------- produce

func (b *Broker) handleProduce(req *wire.ProduceRequest, principal string, reqPenalty time.Duration) *wire.ProduceResponse {
	resp := &wire.ProduceResponse{}
	// Charge the produce byte quota for the whole payload up front —
	// rejected batches cost the broker validation work too — and answer
	// immediately with the penalty; the handler never sleeps (the client
	// honors ThrottleTimeMs before its next request).
	payloadBytes := 0
	for _, t := range req.Topics {
		for _, p := range t.Partitions {
			payloadBytes += len(p.Records)
		}
	}
	penalty := maxDuration(reqPenalty, b.quotas.chargeProduce(principal, payloadBytes))
	resp.ThrottleTimeMs = throttleMs(penalty)
	type pending struct {
		topic int
		part  int
		ch    <-chan wire.ErrorCode
		dur   <-chan error
		dup   bool
	}
	var waits []pending
	timeout := time.Duration(req.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for _, t := range req.Topics {
		rt := wire.ProduceRespTopic{Name: t.Name}
		for _, p := range t.Partitions {
			rp := wire.ProduceRespPartition{Partition: p.Partition, BaseOffset: -1}
			r := b.getReplica(tp{topic: t.Name, partition: p.Partition})
			if r == nil {
				rp.Err = wire.ErrUnknownTopicOrPartition
				rt.Partitions = append(rt.Partitions, rp)
				continue
			}
			batches, nrecords, err := splitProducePayload(p.Records)
			if err != nil || nrecords == 0 {
				rp.Err = wire.ErrCorruptMessage
				rt.Partitions = append(rt.Partitions, rp)
				continue
			}
			base, ackCh, durCh, code := r.appendSealedAsLeader(batches, req.RequiredAcks)
			rp.Err = code
			rp.BaseOffset = base
			rp.HighWatermark = r.highWatermark()
			if code == wire.ErrNone {
				b.cfg.Metrics.Counter("broker.messages.in").Add(int64(nrecords))
			}
			if ackCh != nil || durCh != nil {
				waits = append(waits, pending{
					topic: len(resp.Topics), part: len(rt.Partitions), ch: ackCh, dur: durCh,
					dup: code == wire.ErrDuplicateSequence,
				})
			}
			rt.Partitions = append(rt.Partitions, rp)
		}
		resp.Topics = append(resp.Topics, rt)
	}
	if len(waits) > 0 {
		// Replication (acks=all) and group-commit durability share one
		// deadline: an ack is released only when both the ISR has the
		// batch and — under SyncGroup — the covering fdatasync has landed.
		deadline := newTimer(timeout)
		defer deadline.Stop()
		for _, w := range waits {
			code := wire.ErrNone
			if w.ch != nil {
				select {
				case code = <-w.ch:
				case <-deadline.C:
					code = wire.ErrRequestTimedOut
				case <-b.stopCh:
					code = wire.ErrBrokerNotAvailable
				}
			}
			if code == wire.ErrNone && w.dur != nil {
				select {
				case err := <-w.dur:
					code = durErrorCode(err)
				case <-deadline.C:
					code = wire.ErrRequestTimedOut
				case <-b.stopCh:
					code = wire.ErrBrokerNotAvailable
				}
			}
			if code == wire.ErrNone && w.dup {
				// The waits confirmed the ORIGINAL append is replicated and
				// durable; keep reporting the dedup so the client can tell a
				// dup-ack from a first append.
				code = wire.ErrDuplicateSequence
			}
			resp.Topics[w.topic].Partitions[w.part].Err = code
		}
	}
	return resp
}

// durErrorCode maps a group-commit durability outcome to a produce error.
func durErrorCode(err error) wire.ErrorCode {
	switch {
	case err == nil:
		return wire.ErrNone
	case errors.Is(err, log.ErrClosed):
		return wire.ErrBrokerNotAvailable
	default:
		// Truncated below the awaited offset (leadership lost before the
		// sync) or an fsync failure: the write may not survive.
		return wire.ErrUnknown
	}
}

// splitProducePayload splits a produce payload into its sealed batches,
// validating each one fully (record.ValidateBatch: CRC + a structural walk,
// inflating compressed bodies into a transient buffer) so a CRC-valid but
// malformed batch can never be stored and wedge the partition's readers.
// The stored bytes stay the producer's verbatim — validation never
// re-encodes or re-compresses; the leader only restamps base offsets.
// Producers send one batch per partition, but a payload of several
// consecutive batches is accepted. It returns the batches and the total
// record count.
func splitProducePayload(data []byte) ([][]byte, int, error) {
	var batches [][]byte
	nrecords := 0
	for len(data) > 0 {
		info, err := record.ValidateBatch(data)
		if err != nil {
			return nil, 0, err
		}
		batches = append(batches, data[:info.Length])
		nrecords += info.RecordCount
		data = data[info.Length:]
	}
	return batches, nrecords, nil
}

// --------------------------------------------------------------- fetch

func (b *Broker) handleFetch(req *wire.FetchRequest, principal string, reqPenalty time.Duration) *wire.FetchResponse {
	isFollower := req.ReplicaID >= 0
	maxWait := time.Duration(req.MaxWaitMs) * time.Millisecond
	if maxWait < 0 {
		maxWait = 0
	}
	if maxWait > 30*time.Second {
		maxWait = 30 * time.Second
	}
	minBytes := int(req.MinBytes)
	deadline := b.now().Add(maxWait)

	// Single-partition requests (the common consumer case) wait
	// event-driven on the partition's notify channel; multi-partition
	// requests poll.
	var single *replica
	if len(req.Topics) == 1 && len(req.Topics[0].Partitions) == 1 {
		single = b.getReplica(tp{topic: req.Topics[0].Name, partition: req.Topics[0].Partitions[0].Partition})
	}
	zeroCopy := !b.cfg.DisableZeroCopyFetch
	for {
		resp, total, hasError := b.collectFetch(req, isFollower, zeroCopy)
		if total >= minBytes || hasError || !b.now().Before(deadline) {
			if total > 0 {
				b.cfg.Metrics.Counter("broker.fetch.bytes").Add(int64(total))
			}
			// Replication fetches are quota-exempt: throttling a follower
			// would slow the ISR, not the tenant that caused the load.
			if !isFollower {
				penalty := maxDuration(reqPenalty, b.quotas.chargeFetch(principal, total))
				resp.ThrottleTimeMs = throttleMs(penalty)
			}
			return resp
		}
		// This pass is discarded for another long-poll round; release any
		// segment file handles its ranges hold.
		closeFetchRanges(resp)
		remain := b.until(deadline)
		if single != nil {
			select {
			case <-single.notifyChan():
			case <-b.after(remain):
			case <-b.stopCh:
				return resp
			}
		} else {
			wait := 2 * time.Millisecond
			if wait > remain {
				wait = remain
			}
			select {
			case <-b.after(wait):
			case <-b.stopCh:
				return resp
			}
		}
	}
}

// closeFetchRanges releases the segment file handles a zero-copy fetch
// response holds. Called after the response frame is written (or when a
// long-poll pass discards the response).
func closeFetchRanges(resp *wire.FetchResponse) {
	for i := range resp.Topics {
		for j := range resp.Topics[i].Partitions {
			p := &resp.Topics[i].Partitions[j]
			if rng, ok := p.RecordsRange.(*log.SegmentRange); ok {
				rng.Close()
			}
			p.RecordsRange = nil
		}
	}
}

// collectFetch performs one non-blocking pass over the requested
// partitions. With zeroCopy set, reads resolve to raw segment file ranges
// (spliced into the response frame by the wire layer — sendfile on TCP)
// instead of copies; cold-tier reads and range failures fall back to the
// buffered path per partition.
func (b *Broker) collectFetch(req *wire.FetchRequest, isFollower, zeroCopy bool) (*wire.FetchResponse, int, bool) {
	resp := &wire.FetchResponse{}
	total := 0
	hasError := false
	// Follower catch-up times feed the ISR lag decision, which compares
	// against Config.Now — both sides must read the same (injectable)
	// clock or a fake clock would never (or always) shrink the ISR.
	now := b.cfg.Now()
	for _, t := range req.Topics {
		rt := wire.FetchRespTopic{Name: t.Name}
		for _, p := range t.Partitions {
			rp := wire.FetchRespPartition{Partition: p.Partition}
			r := b.getReplica(tp{topic: t.Name, partition: p.Partition})
			if r == nil {
				rp.Err = wire.ErrUnknownTopicOrPartition
				hasError = true
				rt.Partitions = append(rt.Partitions, rp)
				continue
			}
			maxBytes := int(p.MaxBytes)
			if maxBytes <= 0 {
				maxBytes = int(req.MaxBytes)
			}
			if maxBytes <= 0 {
				maxBytes = 1 << 20
			}
			var data []byte
			var rng *log.SegmentRange
			var hw, start int64
			var code wire.ErrorCode
			served := false
			if zeroCopy {
				if isFollower {
					rng, hw, start, code, served = r.readRangeForFollower(p.Offset, maxBytes)
				} else {
					rng, hw, start, code, served = r.readRangeForConsumer(p.Offset, maxBytes)
				}
			}
			if !served {
				if isFollower {
					data, hw, start, code = r.readForFollower(p.Offset, maxBytes)
				} else {
					data, hw, start, code = r.readForConsumer(p.Offset, maxBytes)
				}
			}
			if isFollower && code == wire.ErrNone {
				for _, id := range r.onFollowerFetch(req.ReplicaID, p.Offset, now) {
					b.updateISR(r, id, true)
				}
			}
			rp.Err = code
			rp.HighWatermark = hw
			rp.LogStartOffset = start
			if rng != nil {
				rp.RecordsRange = rng
				total += int(rng.Len())
				b.cfg.Metrics.Counter("broker.fetch.splice.bytes").Add(rng.Len())
				if b.met != nil {
					b.met.fetchServed.With("splice").Inc()
				}
			} else {
				rp.Records = data
				total += len(data)
				if b.met != nil && len(data) > 0 {
					b.met.fetchServed.With("buffered").Inc()
				}
			}
			if code != wire.ErrNone {
				hasError = true
			}
			rt.Partitions = append(rt.Partitions, rp)
		}
		resp.Topics = append(resp.Topics, rt)
	}
	return resp, total, hasError
}

// --------------------------------------------------------- list offsets

func (b *Broker) handleListOffsets(req *wire.ListOffsetsRequest) *wire.ListOffsetsResponse {
	resp := &wire.ListOffsetsResponse{}
	for _, t := range req.Topics {
		rt := wire.ListOffsetsRespTopic{Name: t.Name}
		for _, p := range t.Partitions {
			rp := wire.ListOffsetsRespPartition{Partition: p.Partition, Offset: -1}
			r := b.getReplica(tp{topic: t.Name, partition: p.Partition})
			if r == nil {
				rp.Err = wire.ErrUnknownTopicOrPartition
			} else {
				r.mu.Lock()
				isLeader := r.isLeader
				hw := r.hw
				r.mu.Unlock()
				switch {
				case !isLeader:
					rp.Err = wire.ErrNotLeaderForPartition
				case p.Timestamp == wire.TimestampEarliest:
					// Earliest means tiered-earliest on tiered topics:
					// the oldest offset a consumer can actually rewind
					// to, not just the oldest held locally.
					rp.Offset = r.earliestAvailable()
				case p.Timestamp == wire.TimestampLatest:
					rp.Offset = hw
				default:
					off, err := offsetForTimestamp(r, p.Timestamp)
					if err != nil {
						rp.Err = wire.ErrUnknown
					} else {
						if off > hw {
							off = hw
						}
						rp.Offset = off
						rp.Timestamp = p.Timestamp
					}
				}
			}
			rt.Partitions = append(rt.Partitions, rp)
		}
		resp.Topics = append(resp.Topics, rt)
	}
	return resp
}

// offsetForTimestamp resolves a timestamp to an offset across both tiers:
// the cold tier holds the oldest data, so it is consulted first; the hot
// log answers for anything newer.
func offsetForTimestamp(r *replica, ts int64) (int64, error) {
	if t := r.tierPartition(); t != nil {
		off, ok, err := t.OffsetForTimestamp(ts)
		if err != nil {
			return 0, err
		}
		if ok {
			return off, nil
		}
	}
	return r.log.OffsetForTimestamp(ts)
}

// ---------------------------------------------------------- tier status

// handleTierStatus reports per-partition tiered-storage state for the
// partitions this broker leads: hot/cold segment counts, tiered bytes, and
// the local vs tiered start offsets (cmd/liquid-admin `tier ls`).
func (b *Broker) handleTierStatus(req *wire.TierStatusRequest) *wire.TierStatusResponse {
	resp := &wire.TierStatusResponse{}
	names := req.Topics
	if len(names) == 0 {
		names = b.reg.Topics()
	}
	for _, name := range names {
		info, err := b.reg.GetTopic(name)
		if err != nil {
			resp.Topics = append(resp.Topics, wire.TierStatusTopic{
				Name: name,
				Partitions: []wire.TierStatusPartition{
					{Partition: -1, Err: wire.ErrUnknownTopicOrPartition},
				},
			})
			continue
		}
		rt := wire.TierStatusTopic{Name: name}
		for p := int32(0); p < int32(len(info.Assignment)); p++ {
			r := b.getReplica(tp{topic: name, partition: p})
			if r == nil {
				continue // not hosted here; another broker answers for it
			}
			rp := wire.TierStatusPartition{Partition: p, Tiered: info.Config.Tiered}
			r.mu.Lock()
			isLeader := r.isLeader
			r.mu.Unlock()
			if !isLeader {
				rp.Err = wire.ErrNotLeaderForPartition
				rt.Partitions = append(rt.Partitions, rp)
				continue
			}
			rp.LocalStartOffset = r.log.StartOffset()
			rp.EarliestOffset = r.earliestAvailable()
			rp.NextOffset = r.log.NextOffset()
			rp.LocalSegments = int32(r.log.SegmentCount())
			rp.LocalBytes = r.log.Size()
			if t := r.tierPartition(); t != nil {
				st := t.TierStats()
				rp.TieredNextOffset = st.NextOffset
				rp.TieredSegments = int32(st.Segments)
				rp.TieredBytes = st.Bytes
				rp.TieredRecords = st.Records
			}
			rt.Partitions = append(rt.Partitions, rp)
		}
		resp.Topics = append(resp.Topics, rt)
	}
	return resp
}

// ------------------------------------------------------------ metadata

func (b *Broker) handleMetadata(req *wire.MetadataRequest) *wire.MetadataResponse {
	resp := &wire.MetadataResponse{ControllerID: b.reg.ControllerID()}
	for _, info := range b.reg.LiveBrokers() {
		resp.Brokers = append(resp.Brokers, wire.BrokerMeta{ID: info.ID, Host: info.Host, Port: info.Port, OpsAddr: info.OpsAddr})
	}
	names := req.Topics
	if len(names) == 0 {
		names = b.reg.Topics()
	}
	for _, name := range names {
		tm := wire.TopicMeta{Name: name}
		info, err := b.reg.GetTopic(name)
		if err != nil {
			tm.Err = wire.ErrUnknownTopicOrPartition
			resp.Topics = append(resp.Topics, tm)
			continue
		}
		tm.Compacted = info.Config.Compacted
		for p, replicas := range info.Assignment {
			pm := wire.PartitionMeta{ID: int32(p), Leader: -1, Replicas: replicas}
			st, _, err := b.reg.PartitionState(name, int32(p))
			if err != nil {
				pm.Err = wire.ErrLeaderNotAvailable
			} else {
				pm.Leader = st.Leader
				pm.LeaderEpoch = st.Epoch
				pm.ISR = st.ISR
				if st.Leader < 0 {
					pm.Err = wire.ErrLeaderNotAvailable
				}
			}
			tm.Partitions = append(tm.Partitions, pm)
		}
		resp.Topics = append(resp.Topics, tm)
	}
	return resp
}

// --------------------------------------------------------- admin APIs

func (b *Broker) handleCreateTopics(req *wire.CreateTopicsRequest) *wire.CreateTopicsResponse {
	resp := &wire.CreateTopicsResponse{}
	for _, spec := range req.Topics {
		resp.Results = append(resp.Results, wire.TopicResult{
			Name: spec.Name,
			Err:  b.createTopic(spec),
		})
	}
	return resp
}

// createTopic validates a spec, computes the replica assignment over live
// brokers and publishes the topic. Every broker (including this one) adopts
// its replicas through the registry watch; this broker also adopts
// synchronously so the creating client can produce immediately.
func (b *Broker) createTopic(spec wire.TopicSpec) wire.ErrorCode {
	if spec.Name == "" || len(spec.Name) > 255 {
		return wire.ErrInvalidTopic
	}
	for _, c := range spec.Name {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.') {
			return wire.ErrInvalidTopic
		}
	}
	if spec.Tiered && spec.Compacted {
		// A compacted log retains by key, not by horizon; there is no
		// contiguous prefix to offload. This exclusion also keeps table
		// restore-from-0 a purely local read: a table's changelog can
		// never straddle the cold tier.
		return wire.ErrInvalidTopic
	}
	if spec.Table && !spec.Compacted {
		// A table is a view over the latest record per key; only a
		// compacted log retains exactly that set.
		return wire.ErrInvalidTopic
	}
	if spec.NumPartitions <= 0 {
		spec.NumPartitions = 1
	}
	if spec.ReplicationFactor <= 0 {
		spec.ReplicationFactor = 1
	}
	live := b.reg.LiveBrokers()
	ids := make([]int32, len(live))
	for i, info := range live {
		ids[i] = info.ID
	}
	assignment, err := cluster.AssignReplicas(ids, spec.NumPartitions, spec.ReplicationFactor)
	if err != nil {
		return wire.ErrNotEnoughReplicas
	}
	info := cluster.TopicInfo{
		Name: spec.Name,
		Config: cluster.TopicConfig{
			NumPartitions:     spec.NumPartitions,
			ReplicationFactor: spec.ReplicationFactor,
			RetentionMs:       spec.RetentionMs,
			RetentionBytes:    spec.RetentionBytes,
			SegmentBytes:      spec.SegmentBytes,
			Compacted:         spec.Compacted,
			Tiered:            spec.Tiered,
			HotRetentionMs:    spec.HotRetentionMs,
			HotRetentionBytes: spec.HotRetentionBytes,
			Table:             spec.Table,
		},
		Assignment: assignment,
	}
	if err := b.reg.CreateTopic(info); err != nil {
		if errors.Is(err, coord.ErrExists) {
			return wire.ErrTopicAlreadyExists
		}
		return wire.ErrUnknown
	}
	b.ensureTopic(info)
	return wire.ErrNone
}

func (b *Broker) handleDeleteTopics(req *wire.DeleteTopicsRequest) *wire.DeleteTopicsResponse {
	resp := &wire.DeleteTopicsResponse{}
	for _, name := range req.Names {
		code := wire.ErrNone
		if err := b.reg.DeleteTopic(name); err != nil {
			code = wire.ErrUnknownTopicOrPartition
		}
		resp.Results = append(resp.Results, wire.TopicResult{Name: name, Err: code})
	}
	return resp
}

// -------------------------------------------------------- offset APIs

// ensureOffsetsTopic creates the internal offsets topic on first use.
func (b *Broker) ensureOffsetsTopic() {
	if _, err := b.reg.GetTopic(OffsetsTopic); err == nil {
		return
	}
	rf := b.cfg.OffsetsReplication
	if n := len(b.reg.LiveBrokers()); int(rf) > n {
		rf = int16(n)
	}
	b.createTopic(wire.TopicSpec{
		Name:              OffsetsTopic,
		NumPartitions:     b.cfg.OffsetsPartitions,
		ReplicationFactor: rf,
		Compacted:         true,
	})
}

func (b *Broker) handleFindCoordinator(req *wire.FindCoordinatorRequest) *wire.FindCoordinatorResponse {
	b.ensureOffsetsTopic()
	partition := groupPartition(req.Key, b.cfg.OffsetsPartitions)
	st, _, err := b.reg.PartitionState(OffsetsTopic, partition)
	if err != nil || st.Leader < 0 {
		return &wire.FindCoordinatorResponse{Err: wire.ErrCoordinatorNotAvailable, NodeID: -1}
	}
	for _, info := range b.reg.LiveBrokers() {
		if info.ID == st.Leader {
			return &wire.FindCoordinatorResponse{NodeID: info.ID, Host: info.Host, Port: info.Port}
		}
	}
	return &wire.FindCoordinatorResponse{Err: wire.ErrCoordinatorNotAvailable, NodeID: -1}
}

// handleInitProducer allocates an idempotent-producer identity through the
// coordination store; any broker can serve it. Named producers get their
// stable id back with a bumped epoch, fencing earlier instances.
func (b *Broker) handleInitProducer(req *wire.InitProducerRequest) *wire.InitProducerResponse {
	pi, err := b.reg.AllocateProducer(req.Name)
	if err != nil {
		return &wire.InitProducerResponse{Err: wire.ErrCoordinatorNotAvailable, ProducerID: -1, Epoch: -1}
	}
	return &wire.InitProducerResponse{ProducerID: pi.ID, Epoch: pi.Epoch}
}

func (b *Broker) handleOffsetCommit(req *wire.OffsetCommitRequest) *wire.OffsetCommitResponse {
	resp := &wire.OffsetCommitResponse{}
	for _, t := range req.Topics {
		rt := wire.OffsetCommitRespTopic{Name: t.Name}
		for _, p := range t.Partitions {
			code := b.offsets.commit(req.Group, t.Name, p.Partition, p.Offset, p.Metadata)
			rt.Partitions = append(rt.Partitions, wire.OffsetCommitRespPartition{
				Partition: p.Partition,
				Err:       code,
			})
		}
		resp.Topics = append(resp.Topics, rt)
	}
	return resp
}

func (b *Broker) handleOffsetFetch(req *wire.OffsetFetchRequest) *wire.OffsetFetchResponse {
	resp := &wire.OffsetFetchResponse{}
	for _, t := range req.Topics {
		rt := wire.OffsetFetchRespTopic{Name: t.Name}
		for _, p := range t.Partitions {
			cp, found, code := b.offsets.fetch(req.Group, t.Name, p)
			rp := wire.OffsetFetchRespPartition{Partition: p, Err: code, Offset: -1}
			if found {
				rp.Offset = cp.Offset
				rp.Metadata = cp.Metadata
			}
			rt.Partitions = append(rt.Partitions, rp)
		}
		resp.Topics = append(resp.Topics, rt)
	}
	return resp
}

// Package broker implements a messaging-layer broker: partition replicas
// with leader/follower roles, the produce path with configurable
// durability (acks 0/1/all), long-poll fetches, follower replication with
// in-sync-replica tracking and high-watermark advancement, group
// coordination and the offset manager. It is the Kafka-equivalent node of
// the paper's messaging layer (§3.1, §4.1, §4.3).
package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/storage/log"
	"repro/internal/storage/record"
	"repro/internal/tier"
	"repro/internal/wire"
)

// tp identifies a topic partition.
type tp struct {
	topic     string
	partition int32
}

func (t tp) String() string { return fmt.Sprintf("%s-%d", t.topic, t.partition) }

// ackWaiter blocks an acks=all produce until the high watermark covers its
// batch (or a timeout/leadership change fails it).
type ackWaiter struct {
	minHW int64 // request completes when hw >= minHW
	ch    chan wire.ErrorCode
}

// followerState is the leader's view of one follower.
type followerState struct {
	leo          int64 // follower's log end offset; -1 until first fetch
	lastCaughtUp time.Time
}

// replica is one partition replica hosted by this broker. It wraps the
// partition's commit log with leadership state.
type replica struct {
	tp       tp
	log      *log.Log
	brokerID int32

	mu           sync.Mutex
	isLeader     bool
	leaderID     int32
	epoch        int32
	hw           int64
	replicas     []int32
	isr          []int32
	stateVersion int64
	followers    map[int32]*followerState
	waiters      []ackWaiter
	notifyCh     chan struct{} // closed and replaced on append/HW advance
	closed       bool
	// tier is the partition's cold-tier engine, attached while this
	// replica leads a tiered partition (leadership hand-over recovers it
	// from the DFS manifest; followers replicate only the hot log).
	tier *tier.Partition
}

func newReplica(t tp, l *log.Log, brokerID int32) *replica {
	return &replica{
		tp:       t,
		log:      l,
		brokerID: brokerID,
		leaderID: -1,
		hw:       l.NextOffset(), // standalone logs start fully committed
		notifyCh: make(chan struct{}),
	}
}

// notifyLocked wakes all waiters on the notification channel.
func (r *replica) notifyLocked() {
	close(r.notifyCh)
	r.notifyCh = make(chan struct{})
}

// notifyChan returns the current broadcast channel; it is closed on the
// next append or high-watermark advance.
func (r *replica) notifyChan() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notifyCh
}

// highWatermark returns the current high watermark.
func (r *replica) highWatermark() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hw
}

// becomeLeader promotes the replica. Follower log-end offsets start
// unknown; the high watermark cannot advance past them until they fetch.
func (r *replica) becomeLeader(epoch int32, replicas, isr []int32, stateVersion int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	wasLeader := r.isLeader
	r.isLeader = true
	r.leaderID = r.brokerID
	r.epoch = epoch
	r.replicas = append([]int32(nil), replicas...)
	r.isr = append([]int32(nil), isr...)
	r.stateVersion = stateVersion
	if !wasLeader {
		r.followers = make(map[int32]*followerState)
		for _, id := range replicas {
			if id != r.brokerID {
				r.followers[id] = &followerState{leo: -1}
			}
		}
		// A sole-survivor leader commits everything it has.
		r.maybeAdvanceHWLocked()
	}
	r.notifyLocked()
}

// becomeFollower demotes the replica. Outstanding acks=all produces fail
// with NotLeader so clients retry against the new leader. The local log is
// truncated to the high watermark: anything above it was never committed
// and may diverge from the new leader (paper §4.3 hand-over).
func (r *replica) becomeFollower(leaderID, epoch int32, stateVersion int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.isLeader = false
	r.leaderID = leaderID
	r.epoch = epoch
	r.stateVersion = stateVersion
	r.followers = nil
	r.failWaitersLocked(wire.ErrNotLeaderForPartition)
	if err := r.log.Truncate(r.hw); err != nil {
		return err
	}
	r.notifyLocked()
	return nil
}

// failWaitersLocked completes all pending produce waiters with an error.
func (r *replica) failWaitersLocked(code wire.ErrorCode) {
	for _, w := range r.waiters {
		w.ch <- code
	}
	r.waiters = nil
}

// maybeAdvanceHWLocked recomputes the high watermark as the minimum log end
// offset across the ISR and completes satisfied waiters.
func (r *replica) maybeAdvanceHWLocked() {
	if !r.isLeader {
		return
	}
	minLEO := r.log.NextOffset()
	for _, id := range r.isr {
		if id == r.brokerID {
			continue
		}
		f, ok := r.followers[id]
		if !ok || f.leo < 0 {
			return // an ISR member has not fetched yet: cannot advance
		}
		if f.leo < minLEO {
			minLEO = f.leo
		}
	}
	if minLEO > r.hw {
		r.hw = minLEO
		kept := r.waiters[:0]
		for _, w := range r.waiters {
			if r.hw >= w.minHW {
				w.ch <- wire.ErrNone
			} else {
				kept = append(kept, w)
			}
		}
		r.waiters = kept
		r.notifyLocked()
	}
}

// appendAsLeader appends records, returning the assigned base offset, a
// channel that resolves when the batch is committed (acks=all), and a
// channel that resolves when the batch is durable under the log's sync
// policy (group commit; nil when no wait is needed). It is the path for
// broker-internal appends (the offsets topic); client produce goes through
// appendSealedAsLeader.
func (r *replica) appendAsLeader(records []record.Record, acks int16) (int64, <-chan wire.ErrorCode, <-chan error, wire.ErrorCode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, nil, nil, wire.ErrBrokerNotAvailable
	}
	if !r.isLeader {
		return 0, nil, nil, wire.ErrNotLeaderForPartition
	}
	base, err := r.log.Append(records)
	if err != nil {
		return 0, nil, nil, wire.ErrUnknown
	}
	last := base + int64(len(records)) - 1
	ch, code := r.finishAppendLocked(last, acks)
	return base, ch, r.durWaitLocked(last, acks), code
}

// durWaitLocked arranges the group-commit durability wait for an append
// ending at last: any acknowledged produce (acks != 0) defers its ack until
// the covering fdatasync lands. Returns nil when no wait is needed (policy
// without deferred acks, or already durable).
func (r *replica) durWaitLocked(last int64, acks int16) <-chan error {
	if acks == 0 {
		return nil
	}
	return r.log.SyncWait(last + 1)
}

// appendSealedAsLeader appends a producer's already-encoded (and
// CheckBatch-validated) batches verbatim, restamping only their base
// offsets. Compressed batches stay sealed end to end: the bytes written
// here are the bytes followers replicate, consumers fetch and the archiver
// drains — zero recompression anywhere in the pipeline (paper §3.1/§4.1).
//
// Idempotent batches are deduplicated against the log's producer-state
// table: a retried batch is answered with the offsets of its original
// append — reported as ErrDuplicateSequence, which clients treat as success
// — and its ack still waits until the high watermark and the durability
// frontier cover the ORIGINAL append, so a dup-acked retry carries the same
// guarantee as a first append. Out-of-order sequences and fenced epochs are
// rejected with their dedicated codes.
func (r *replica) appendSealedAsLeader(batches [][]byte, acks int16) (int64, <-chan wire.ErrorCode, <-chan error, wire.ErrorCode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, nil, nil, wire.ErrBrokerNotAvailable
	}
	if !r.isLeader {
		return 0, nil, nil, wire.ErrNotLeaderForPartition
	}
	base := int64(-1)
	last := int64(-1)
	dups := 0
	for _, b := range batches {
		bo, err := r.log.AppendSealed(b)
		if err != nil {
			var dup *log.DupSequenceError
			switch {
			case errors.As(err, &dup):
				dups++
				if base < 0 {
					base = dup.BaseOffset
				}
				if dup.LastOffset > last {
					last = dup.LastOffset
				}
				continue
			case errors.Is(err, log.ErrFencedEpoch):
				return 0, nil, nil, wire.ErrFencedEpoch
			case errors.Is(err, log.ErrOutOfOrderSequence):
				return 0, nil, nil, wire.ErrOutOfOrderSequence
			}
			return 0, nil, nil, wire.ErrUnknown
		}
		if base < 0 {
			base = bo
		}
	}
	// Leader appends are serialised by r.mu, so the log end is exactly the
	// end of what was just written; when everything was deduplicated, the
	// waits cover the furthest original append instead.
	if dups < len(batches) {
		if end := r.log.NextOffset() - 1; end > last {
			last = end
		}
	}
	ch, code := r.finishAppendLocked(last, acks)
	if code == wire.ErrNone && dups == len(batches) {
		code = wire.ErrDuplicateSequence
	}
	return base, ch, r.durWaitLocked(last, acks), code
}

// finishAppendLocked advances the high watermark, wakes long-polls and
// arranges the acks=all waiter for an append ending at last.
func (r *replica) finishAppendLocked(last int64, acks int16) (<-chan wire.ErrorCode, wire.ErrorCode) {
	r.maybeAdvanceHWLocked()
	r.notifyLocked() // wake follower long-polls
	if acks != -1 {
		return nil, wire.ErrNone
	}
	if r.hw >= last+1 {
		done := make(chan wire.ErrorCode, 1)
		done <- wire.ErrNone
		return done, wire.ErrNone
	}
	w := ackWaiter{minHW: last + 1, ch: make(chan wire.ErrorCode, 1)}
	r.waiters = append(r.waiters, w)
	return w.ch, wire.ErrNone
}

// appendAsFollower appends a replicated batch and adopts the leader's high
// watermark (bounded by the local log end).
func (r *replica) appendAsFollower(batch []byte, leaderHW int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return log.ErrClosed
	}
	if len(batch) > 0 {
		if err := r.log.AppendBatch(batch); err != nil {
			return err
		}
	}
	hw := leaderHW
	if leo := r.log.NextOffset(); hw > leo {
		hw = leo
	}
	if hw > r.hw {
		r.hw = hw
	}
	return nil
}

// setFollowerHW adopts the leader's HW when a fetch returned no data.
func (r *replica) setFollowerHW(leaderHW int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hw := leaderHW
	if leo := r.log.NextOffset(); hw > leo {
		hw = leo
	}
	if hw > r.hw {
		r.hw = hw
	}
}

// onFollowerFetch records a follower's fetch position (it has every offset
// below fetchOffset). It returns the follower ids that just caught up to
// the log end but are outside the ISR — candidates for ISR expansion,
// which the broker commits through the coordination service.
func (r *replica) onFollowerFetch(followerID int32, fetchOffset int64, now time.Time) []int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.isLeader {
		return nil
	}
	f, ok := r.followers[followerID]
	if !ok {
		f = &followerState{leo: -1}
		r.followers[followerID] = f
	}
	if fetchOffset > f.leo {
		f.leo = fetchOffset
	}
	leo := r.log.NextOffset()
	if f.leo >= leo {
		f.lastCaughtUp = now
	}
	r.maybeAdvanceHWLocked()
	if f.leo >= r.hw && !r.inISRLocked(followerID) {
		return []int32{followerID}
	}
	return nil
}

func (r *replica) inISRLocked(id int32) bool {
	for _, x := range r.isr {
		if x == id {
			return true
		}
	}
	return false
}

// laggingFollowers returns ISR members whose last caught-up time is older
// than maxLag — candidates for ISR shrink.
func (r *replica) laggingFollowers(maxLag time.Duration, now time.Time) []int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.isLeader {
		return nil
	}
	var out []int32
	for _, id := range r.isr {
		if id == r.brokerID {
			continue
		}
		f, ok := r.followers[id]
		if !ok {
			continue
		}
		caughtUp := f.leo >= r.log.NextOffset()
		if !caughtUp && now.Sub(f.lastCaughtUp) > maxLag {
			out = append(out, id)
		}
	}
	return out
}

// followerLag is one follower's replication progress behind this leader,
// in offsets (LEO gap) and wall time (how long since it was last caught
// up). Exported on the ops plane as broker.replica.lag.{offsets,ms}.
type followerLag struct {
	id      int32
	offsets int64
	ms      int64
}

// followerLags snapshots per-follower replication lag; nil unless leading.
// Every assigned follower with fetch state is reported, in or out of the
// ISR — an out-of-ISR follower's growing lag is exactly what an operator
// needs to see.
func (r *replica) followerLags(now time.Time) []followerLag {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.isLeader {
		return nil
	}
	leo := r.log.NextOffset()
	out := make([]followerLag, 0, len(r.followers))
	for id, f := range r.followers {
		if id == r.brokerID {
			continue
		}
		lag := leo - f.leo
		if lag < 0 {
			lag = 0
		}
		var ms int64
		if lag > 0 {
			if ms = now.Sub(f.lastCaughtUp).Milliseconds(); ms < 0 {
				ms = 0
			}
		}
		out = append(out, followerLag{id: id, offsets: lag, ms: ms})
	}
	return out
}

// setISR installs a new ISR (already committed to the coordination
// service) and re-evaluates the high watermark.
func (r *replica) setISR(isr []int32, stateVersion int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.isr = append([]int32(nil), isr...)
	r.stateVersion = stateVersion
	r.maybeAdvanceHWLocked()
}

// setTier attaches (or, with nil, detaches) the cold-tier engine.
func (r *replica) setTier(t *tier.Partition) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tier = t
}

// tierPartition returns the attached cold-tier engine, or nil.
func (r *replica) tierPartition() *tier.Partition {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tier
}

// earliestAvailable returns the earliest offset a consumer can rewind to:
// the tiered-earliest when cold segments exist, the local log start
// otherwise.
func (r *replica) earliestAvailable() int64 {
	t := r.tierPartition()
	start := r.log.StartOffset()
	if t != nil {
		if e, ok := t.Earliest(); ok && e < start {
			return e
		}
	}
	return start
}

// snapshotState returns the replica's current view for metadata responses.
func (r *replica) snapshotState() (leader int32, epoch int32, isr []int32, isLeader bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderID, r.epoch, append([]int32(nil), r.isr...), r.isLeader
}

// readForConsumer reads committed data (below the high watermark). The
// third return value is the earliest AVAILABLE offset — tiered-earliest
// when the partition has cold segments, the local log start otherwise — so
// an out-of-range response tells the client exactly where auto-reset may
// resume instead of making it guess.
func (r *replica) readForConsumer(offset int64, maxBytes int) ([]byte, int64, int64, wire.ErrorCode) {
	r.mu.Lock()
	hw := r.hw
	isLeader := r.isLeader
	closed := r.closed
	t := r.tier
	r.mu.Unlock()
	if closed {
		return nil, 0, 0, wire.ErrBrokerNotAvailable
	}
	if !isLeader {
		return nil, 0, 0, wire.ErrNotLeaderForPartition
	}
	start := r.log.StartOffset()
	earliest := start
	if t != nil {
		if e, ok := t.Earliest(); ok && e < earliest {
			earliest = e
		}
	}
	if offset < start && t != nil && offset >= earliest {
		// Cold read: the offset fell off the hot log but the tier holds
		// it. Everything tiered is below an old high watermark, so the
		// whole response is committed data.
		data, err := t.Read(offset, maxBytes)
		switch {
		case err == nil:
			return data, hw, earliest, wire.ErrNone
		case errors.Is(err, tier.ErrOffsetBelowTier):
			return nil, hw, earliest, wire.ErrOffsetOutOfRange
		case errors.Is(err, tier.ErrNotCovered):
			// Between the offload frontier and the local start there is
			// no data on either tier; contiguity makes this unreachable
			// unless the manifest lags a concurrent reload — have the
			// client retry via out-of-range with the true earliest.
			return nil, hw, earliest, wire.ErrOffsetOutOfRange
		default:
			return nil, hw, earliest, wire.ErrUnknown
		}
	}
	if offset < earliest || offset > hw {
		if offset >= hw && offset <= r.log.NextOffset() {
			return nil, hw, earliest, wire.ErrNone // caught up: empty fetch
		}
		return nil, hw, earliest, wire.ErrOffsetOutOfRange
	}
	data, err := r.log.Read(offset, maxBytes)
	if err != nil {
		return nil, hw, earliest, wire.ErrUnknown
	}
	// Serve only batches fully below the high watermark. Batch boundaries
	// align with HW because replication moves whole batches.
	data = data[:visibleBatches(data, hw)]
	return data, hw, earliest, wire.ErrNone
}

// readForFollower reads up to the log end (followers replicate uncommitted
// data; it becomes committed exactly when they have it).
func (r *replica) readForFollower(offset int64, maxBytes int) ([]byte, int64, int64, wire.ErrorCode) {
	r.mu.Lock()
	hw := r.hw
	isLeader := r.isLeader
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, 0, 0, wire.ErrBrokerNotAvailable
	}
	if !isLeader {
		return nil, 0, 0, wire.ErrNotLeaderForPartition
	}
	start := r.log.StartOffset()
	if offset < start {
		return nil, hw, start, wire.ErrOffsetOutOfRange
	}
	end := r.log.NextOffset()
	if offset > end {
		return nil, hw, start, wire.ErrOffsetOutOfRange
	}
	data, err := r.log.Read(offset, maxBytes)
	if err != nil {
		return nil, hw, start, wire.ErrUnknown
	}
	return data, hw, start, wire.ErrNone
}

// readRangeForConsumer is the zero-copy variant of readForConsumer: instead
// of copying committed batches into a buffer, it resolves them to a raw
// range of the segment file for the wire layer to splice into the response
// frame. The guard logic mirrors readForConsumer exactly (the zero-copy
// equivalence test holds the two paths byte-identical). ok=false means this
// path does not serve the read — cold-tier reads and range resolution
// errors — and the caller must fall back to the buffered path.
func (r *replica) readRangeForConsumer(offset int64, maxBytes int) (rng *log.SegmentRange, hw, earliest int64, code wire.ErrorCode, ok bool) {
	r.mu.Lock()
	hw = r.hw
	isLeader := r.isLeader
	closed := r.closed
	t := r.tier
	r.mu.Unlock()
	if closed {
		return nil, 0, 0, wire.ErrBrokerNotAvailable, true
	}
	if !isLeader {
		return nil, 0, 0, wire.ErrNotLeaderForPartition, true
	}
	start := r.log.StartOffset()
	earliest = start
	if t != nil {
		if e, ok := t.Earliest(); ok && e < earliest {
			earliest = e
		}
	}
	if offset < start && t != nil && offset >= earliest {
		return nil, hw, earliest, wire.ErrNone, false // cold read: buffered path
	}
	if offset < earliest || offset > hw {
		if offset >= hw && offset <= r.log.NextOffset() {
			return nil, hw, earliest, wire.ErrNone, true // caught up: empty fetch
		}
		return nil, hw, earliest, wire.ErrOffsetOutOfRange, true
	}
	rng, err := r.log.ReadRange(offset, maxBytes, hw)
	if err != nil {
		return nil, hw, earliest, wire.ErrNone, false // fall back to the buffered read
	}
	return rng, hw, earliest, wire.ErrNone, true
}

// readRangeForFollower is the zero-copy variant of readForFollower:
// replication reads up to the log end with no visibility bound.
func (r *replica) readRangeForFollower(offset int64, maxBytes int) (rng *log.SegmentRange, hw, start int64, code wire.ErrorCode, ok bool) {
	r.mu.Lock()
	hw = r.hw
	isLeader := r.isLeader
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, 0, 0, wire.ErrBrokerNotAvailable, true
	}
	if !isLeader {
		return nil, 0, 0, wire.ErrNotLeaderForPartition, true
	}
	start = r.log.StartOffset()
	if offset < start {
		return nil, hw, start, wire.ErrOffsetOutOfRange, true
	}
	end := r.log.NextOffset()
	if offset > end {
		return nil, hw, start, wire.ErrOffsetOutOfRange, true
	}
	rng, err := r.log.ReadRange(offset, maxBytes, -1)
	if err != nil {
		return nil, hw, start, wire.ErrNone, false
	}
	return rng, hw, start, wire.ErrNone, true
}

// visibleBatches returns the byte length of the prefix of data whose
// batches end below hw.
func visibleBatches(data []byte, hw int64) int {
	pos := 0
	for pos < len(data) {
		info, err := record.PeekBatchInfo(data[pos:])
		if err != nil || info.LastOffset >= hw {
			break
		}
		if pos+info.Length > len(data) {
			break
		}
		pos += info.Length
	}
	return pos
}

// close marks the replica closed and fails outstanding waiters.
func (r *replica) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.failWaitersLocked(wire.ErrBrokerNotAvailable)
	r.notifyLocked()
	return r.log.Close()
}

package broker

import (
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/storage/record"
	"repro/internal/wire"
)

// fetcherManager runs one replicaFetcher per source broker this broker
// follows. A follower broker acts as a normal consumer of its leader,
// appending fetched batches to its local log (paper §4.3).
type fetcherManager struct {
	b *Broker

	mu       sync.Mutex
	fetchers map[int32]*replicaFetcher
}

func newFetcherManager(b *Broker) *fetcherManager {
	return &fetcherManager{b: b, fetchers: make(map[int32]*replicaFetcher)}
}

// assign routes a partition's replication to the given leader, removing any
// previous assignment.
func (m *fetcherManager) assign(t tp, leaderID int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, f := range m.fetchers {
		if id != leaderID {
			f.removePartition(t)
		}
	}
	f, ok := m.fetchers[leaderID]
	if !ok {
		f = newReplicaFetcher(m.b, leaderID)
		m.fetchers[leaderID] = f
		f.start()
	}
	f.addPartition(t)
}

// remove stops replicating a partition (this broker became its leader, or
// the partition is gone).
func (m *fetcherManager) remove(t tp) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.fetchers {
		f.removePartition(t)
	}
}

// stopAll terminates every fetcher.
func (m *fetcherManager) stopAll() {
	m.mu.Lock()
	fetchers := make([]*replicaFetcher, 0, len(m.fetchers))
	for _, f := range m.fetchers {
		fetchers = append(fetchers, f)
	}
	m.fetchers = make(map[int32]*replicaFetcher)
	m.mu.Unlock()
	for _, f := range fetchers {
		f.stopAndWait()
	}
}

// replicaFetcher pulls batches for a set of partitions from one leader.
type replicaFetcher struct {
	b        *Broker
	leaderID int32

	mu           sync.Mutex
	fetchOffsets map[tp]int64 // next offset to request
	stopped      bool

	stop chan struct{}
	done chan struct{}
}

func newReplicaFetcher(b *Broker, leaderID int32) *replicaFetcher {
	return &replicaFetcher{
		b:            b,
		leaderID:     leaderID,
		fetchOffsets: make(map[tp]int64),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
}

func (f *replicaFetcher) start() { go f.run() }

func (f *replicaFetcher) stopAndWait() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		<-f.done
		return
	}
	f.stopped = true
	f.mu.Unlock()
	close(f.stop)
	<-f.done
}

func (f *replicaFetcher) addPartition(t tp) {
	r := f.b.getReplica(t)
	if r == nil {
		return
	}
	f.mu.Lock()
	f.fetchOffsets[t] = r.log.NextOffset()
	f.mu.Unlock()
}

func (f *replicaFetcher) removePartition(t tp) {
	f.mu.Lock()
	delete(f.fetchOffsets, t)
	f.mu.Unlock()
}

// snapshot returns the current fetch positions.
func (f *replicaFetcher) snapshot() map[tp]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[tp]int64, len(f.fetchOffsets))
	for k, v := range f.fetchOffsets {
		out[k] = v
	}
	return out
}

func (f *replicaFetcher) run() {
	defer close(f.done)
	var conn *client.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := func() bool {
		select {
		case <-f.stop:
			return false
		case <-f.b.after(50 * time.Millisecond):
			return true
		}
	}
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		parts := f.snapshot()
		if len(parts) == 0 {
			if !backoff() {
				return
			}
			continue
		}
		if conn == nil || conn.Closed() {
			addr, ok := f.b.brokerAddr(f.leaderID)
			if !ok {
				if !backoff() {
					return
				}
				continue
			}
			c, err := client.DialWith(f.b.cfg.Dial, addr, f.b.clientID(), time.Second)
			if err != nil {
				if !backoff() {
					return
				}
				continue
			}
			conn = c
		}
		req := &wire.FetchRequest{
			ReplicaID: f.b.cfg.ID,
			MaxWaitMs: f.b.cfg.ReplicaFetchWaitMs,
			MinBytes:  1,
			MaxBytes:  f.b.cfg.ReplicaFetchBytes,
		}
		byTopic := make(map[string][]wire.FetchPartition)
		for t, off := range parts {
			byTopic[t.topic] = append(byTopic[t.topic], wire.FetchPartition{
				Partition: t.partition,
				Offset:    off,
				MaxBytes:  f.b.cfg.ReplicaFetchBytes,
			})
		}
		for topic, ps := range byTopic {
			req.Topics = append(req.Topics, wire.FetchTopic{Name: topic, Partitions: ps})
		}
		var resp wire.FetchResponse
		if err := conn.RoundTrip(wire.APIFetch, req, &resp); err != nil {
			conn.Close()
			conn = nil
			if !backoff() {
				return
			}
			continue
		}
		f.apply(&resp)
	}
}

// apply folds a fetch response into local replica logs.
func (f *replicaFetcher) apply(resp *wire.FetchResponse) {
	for i := range resp.Topics {
		t := &resp.Topics[i]
		for j := range t.Partitions {
			p := &t.Partitions[j]
			key := tp{topic: t.Name, partition: p.Partition}
			r := f.b.getReplica(key)
			if r == nil {
				f.removePartition(key)
				continue
			}
			switch p.Err {
			case wire.ErrNone:
				// Tiered topics: the leader's local log start only moves
				// past offloaded (manifest-committed) data, so it is a
				// safe offload guard for this follower's hot retention —
				// local deletion here can never outrun the offloader.
				if r.log.Config().Tiered {
					r.log.SetOffloadedTo(p.LogStartOffset)
				}
				if len(p.Records) == 0 {
					r.setFollowerHW(p.HighWatermark)
					continue
				}
				next, err := appendFetched(r, p.Records, p.HighWatermark)
				if err != nil {
					f.b.logger.Warn("replica append failed",
						"tp", key.String(), "err", err)
					continue
				}
				f.mu.Lock()
				if _, ok := f.fetchOffsets[key]; ok {
					f.fetchOffsets[key] = next
				}
				f.mu.Unlock()
			case wire.ErrOffsetOutOfRange:
				// Fell behind the leader's retention: resume from its
				// log start (the gap is legitimate data loss by
				// retention, not corruption).
				f.mu.Lock()
				if _, ok := f.fetchOffsets[key]; ok {
					f.fetchOffsets[key] = p.LogStartOffset
				}
				f.mu.Unlock()
			case wire.ErrNotLeaderForPartition, wire.ErrUnknownTopicOrPartition:
				// Leadership is moving; the state watcher reassigns us.
			}
		}
	}
}

// appendFetched splits a fetch payload into batches and appends each,
// returning the next fetch offset.
func appendFetched(r *replica, data []byte, leaderHW int64) (int64, error) {
	pos := 0
	next := int64(-1)
	for pos < len(data) {
		info, err := record.PeekBatchInfo(data[pos:])
		if err == record.ErrShort {
			break
		}
		if err != nil {
			return next, err
		}
		if pos+info.Length > len(data) {
			break
		}
		if err := r.appendAsFollower(data[pos:pos+info.Length], leaderHW); err != nil {
			return next, err
		}
		next = info.LastOffset + 1
		pos += info.Length
	}
	if next == -1 {
		next = r.log.NextOffset()
	}
	return next, nil
}

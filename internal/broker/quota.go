package broker

import (
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/isolation"
	"repro/internal/wire"
)

// maxThrottle caps the backpressure penalty handed to a client in one
// response. The deficit itself is unbounded — a principal that keeps
// flooding keeps accruing it — but each response asks for at most this
// much delay so a throttled client can still observe config changes.
const maxThrottle = 30 * time.Second

// quotaManager enforces per-principal (client-id) rate quotas in the
// broker request path — the broker-side half of the "ETL-as-a-service"
// isolation story (paper §3.2, §4.4): internal/isolation governs a job's
// CPU/memory on the processing layer, this governs a tenant's produce
// bytes, fetch bytes and request rate on the messaging layer. It reuses
// the same token-bucket machinery (isolation.Rate) in its non-blocking
// form: handlers charge, receive a penalty, and surface it to the client
// as ThrottleTimeMs — the server never sleeps in its handler goroutine.
//
// Per-principal configs live in the coordination service (cluster
// QuotasPrefix), so every broker converges on the same limits and they
// survive leader failover; principals without a persisted config run at
// the broker's default quota. Governors are cached per principal and
// invalidated by the registry watch when a quota changes.
type quotaManager struct {
	b   *Broker
	def cluster.QuotaConfig

	mu      sync.Mutex
	tenants map[string]*tenantGovernor
	// gen increments on every invalidation. A governor built from a
	// registry read that started before an invalidation landed must not
	// enter the cache (it may encode the pre-change config): governor()
	// snapshots gen before reading the registry and only caches when it
	// is unchanged, so a concurrent `quota set` can never be masked by a
	// stale cache entry.
	gen uint64
}

// maxCachedTenants bounds the governor cache: client-ids are untrusted
// input, and a client cycling unique ids must not grow broker memory
// without bound. Past the cap the cache is reset wholesale — governed
// principals rebuild their buckets (with a fresh burst) on next charge,
// which is a far smaller distortion than unbounded growth.
const maxCachedTenants = 4096

// ungoverned is the shared governor for principals with no limits at all:
// all-nil buckets charge nothing, so every such principal caches the same
// instance (one map entry, no per-principal bucket state).
var ungoverned = &tenantGovernor{}

// tenantGovernor holds one principal's rate buckets. Unlimited dimensions
// have nil buckets (a nil isolation.Rate charges nothing). persisted marks
// governors built from an operator-set registry quota: those survive a
// cache reset, so a named principal's accrued deficit can never be
// forgiven by other client-ids churning the cache.
type tenantGovernor struct {
	cfg       cluster.QuotaConfig
	persisted bool
	produce   *isolation.Rate
	fetch     *isolation.Rate
	requests  *isolation.Rate
}

func newQuotaManager(b *Broker, def cluster.QuotaConfig) *quotaManager {
	return &quotaManager{b: b, def: def, tenants: make(map[string]*tenantGovernor)}
}

// governor returns the cached governor for a principal, resolving its
// config from the registry (falling back to the broker default) on miss.
func (m *quotaManager) governor(principal string) *tenantGovernor {
	m.mu.Lock()
	g, ok := m.tenants[principal]
	gen := m.gen
	m.mu.Unlock()
	if ok {
		return g
	}
	cfg, persisted := m.def, false
	if q, found, err := m.b.reg.GetQuota(principal); err == nil && found {
		cfg, persisted = q, true
	}
	if cfg.IsZero() {
		g = ungoverned // nothing to enforce; cache the shared instance
	} else {
		g = m.newGovernor(cfg)
		g.persisted = persisted
	}
	m.mu.Lock()
	switch cached, ok := m.tenants[principal]; {
	case ok:
		g = cached // lost a build race; keep the existing buckets
	case m.gen != gen:
		// An invalidation landed while we read the registry: our config
		// may be stale. Serve this one charge from it but do not cache —
		// the next charge re-reads the registry.
	default:
		if len(m.tenants) >= maxCachedTenants {
			// Shed only non-persisted entries (shared ungoverned markers
			// and default-quota buckets): operator-set quotas keep their
			// buckets — and their accrued deficits — no matter how many
			// throwaway client-ids churn the cache.
			kept := make(map[string]*tenantGovernor)
			for p, t := range m.tenants {
				if t.persisted {
					kept[p] = t
				}
			}
			m.tenants = kept
		}
		m.tenants[principal] = g
	}
	m.mu.Unlock()
	return g
}

func (m *quotaManager) newGovernor(cfg cluster.QuotaConfig) *tenantGovernor {
	g := &tenantGovernor{cfg: cfg}
	now := m.b.cfg.Now
	if cfg.ProduceBytesPerSec > 0 {
		g.produce = isolation.NewRate(isolation.RateConfig{PerSec: float64(cfg.ProduceBytesPerSec), Now: now})
	}
	if cfg.FetchBytesPerSec > 0 {
		g.fetch = isolation.NewRate(isolation.RateConfig{PerSec: float64(cfg.FetchBytesPerSec), Now: now})
	}
	if cfg.RequestsPerSec > 0 {
		g.requests = isolation.NewRate(isolation.RateConfig{PerSec: float64(cfg.RequestsPerSec), Now: now})
	}
	return g
}

// invalidate drops a principal's cached governor so the next charge
// rebuilds it from the registry. Called from the broker's watch loop on
// /quotas/ events — this is how an AlterQuotas accepted by any broker
// reaches every broker's hot path.
func (m *quotaManager) invalidate(principal string) {
	m.mu.Lock()
	m.gen++
	delete(m.tenants, principal)
	m.mu.Unlock()
}

// invalidateAll drops every cached governor — used when the registry
// watch overflows and individual quota events may have been lost.
func (m *quotaManager) invalidateAll() {
	m.mu.Lock()
	m.gen++
	m.tenants = make(map[string]*tenantGovernor)
	m.mu.Unlock()
}

// chargeRequest charges one request against the principal's request-rate
// bucket and returns the penalty.
func (m *quotaManager) chargeRequest(principal string) time.Duration {
	return m.note("request", m.governor(principal).requests.Charge(1))
}

// chargeProduce charges appended payload bytes.
func (m *quotaManager) chargeProduce(principal string, bytes int) time.Duration {
	return m.note("produce", m.governor(principal).produce.Charge(float64(bytes)))
}

// chargeFetch charges fetched response bytes.
func (m *quotaManager) chargeFetch(principal string, bytes int) time.Duration {
	return m.note("fetch", m.governor(principal).fetch.Charge(float64(bytes)))
}

// note records throttle metrics and passes the penalty through.
func (m *quotaManager) note(kind string, penalty time.Duration) time.Duration {
	if penalty > 0 {
		m.b.cfg.Metrics.Counter("broker.quota.throttles." + kind).Inc()
		m.b.cfg.Metrics.Histogram("broker.quota.throttle").Observe(int64(penalty))
	}
	return penalty
}

// throttleMs converts a penalty into the wire ThrottleTimeMs field:
// capped, rounded up so sub-millisecond penalties are not lost.
func throttleMs(d time.Duration) int32 {
	if d <= 0 {
		return 0
	}
	if d > maxThrottle {
		d = maxThrottle
	}
	return int32((d + time.Millisecond - 1) / time.Millisecond)
}

// maxDuration returns the larger of two penalties: a client only needs to
// honor the worst verdict, the buckets have already been charged.
func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------- admin APIs

// handleDescribeQuotas returns the persisted quota entries (all of them
// when no principals are named). Principals without a persisted quota are
// omitted: they run at the broker default.
func (b *Broker) handleDescribeQuotas(req *wire.DescribeQuotasRequest) *wire.DescribeQuotasResponse {
	resp := &wire.DescribeQuotasResponse{}
	if len(req.Principals) == 0 {
		all := b.reg.Quotas()
		names := make([]string, 0, len(all))
		for principal := range all {
			names = append(names, principal)
		}
		sort.Strings(names)
		for _, principal := range names {
			resp.Entries = append(resp.Entries, quotaEntry(principal, all[principal]))
		}
		return resp
	}
	for _, principal := range req.Principals {
		q, ok, err := b.reg.GetQuota(principal)
		if err != nil {
			resp.Err = wire.ErrUnknown
			return resp
		}
		if ok {
			resp.Entries = append(resp.Entries, quotaEntry(principal, q))
		}
	}
	return resp
}

// handleAlterQuotas upserts or removes quotas through the registry. Any
// broker accepts the request; the others converge through their watches.
func (b *Broker) handleAlterQuotas(req *wire.AlterQuotasRequest) *wire.AlterQuotasResponse {
	resp := &wire.AlterQuotasResponse{}
	for _, op := range req.Ops {
		code := b.alterQuota(op)
		resp.Results = append(resp.Results, wire.TopicResult{Name: op.Entry.Principal, Err: code})
	}
	return resp
}

func (b *Broker) alterQuota(op wire.AlterQuotaOp) wire.ErrorCode {
	e := op.Entry
	if e.Principal == "" || e.ProduceBytesPerSec < 0 || e.FetchBytesPerSec < 0 || e.RequestsPerSec < 0 {
		return wire.ErrInvalidRequest
	}
	var err error
	if op.Remove {
		err = b.reg.DeleteQuota(e.Principal)
	} else {
		err = b.reg.SetQuota(e.Principal, cluster.QuotaConfig{
			ProduceBytesPerSec: e.ProduceBytesPerSec,
			FetchBytesPerSec:   e.FetchBytesPerSec,
			RequestsPerSec:     e.RequestsPerSec,
		})
	}
	if err != nil {
		return wire.ErrUnknown
	}
	// The watch invalidates too, but asynchronously; dropping the local
	// cache here makes the accepting broker enforce the change immediately.
	b.quotas.invalidate(e.Principal)
	return wire.ErrNone
}

func quotaEntry(principal string, q cluster.QuotaConfig) wire.QuotaEntry {
	return wire.QuotaEntry{
		Principal:          principal,
		ProduceBytesPerSec: q.ProduceBytesPerSec,
		FetchBytesPerSec:   q.FetchBytesPerSec,
		RequestsPerSec:     q.RequestsPerSec,
	}
}

package broker

import "time"

// This file is the broker's only door to the wall clock. Everything that
// reads the time goes through the injected cfg.Now so that seeded chaos
// runs observe a reproducible clock; everything that *waits* real time
// goes through the helpers below, each of which is a single audited
// escape hatch. liquid-vet's clockdiscipline analyzer rejects any direct
// time.Now / time.After / ticker construction elsewhere in this package.

// now reads the injected clock.
func (b *Broker) now() time.Time { return b.cfg.Now() }

// since is time.Since against the injected clock.
func (b *Broker) since(t time.Time) time.Duration { return b.now().Sub(t) }

// until is time.Until against the injected clock.
func (b *Broker) until(t time.Time) time.Duration { return t.Sub(b.now()) }

// after waits d of real time. Chaos schedules inject only Now — timers and
// long-poll waits deliberately stay on the runtime timer wheel, so every
// such wait funnels through this one reviewed call site.
func (b *Broker) after(d time.Duration) <-chan time.Time {
	//lint:ignore clockdiscipline real-time waits intentionally bypass the injected clock; this helper is the single audited escape hatch
	return time.After(d)
}

// newTicker is the package's one sanctioned ticker constructor; see after.
func newTicker(d time.Duration) *time.Ticker {
	//lint:ignore clockdiscipline periodic duties run on real time by design; this helper is the single audited escape hatch
	return time.NewTicker(d)
}

// newTimer is the package's one sanctioned timer constructor; see after.
func newTimer(d time.Duration) *time.Timer {
	//lint:ignore clockdiscipline ack deadlines run on real time by design; this helper is the single audited escape hatch
	return time.NewTimer(d)
}

package broker

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/storage/log"
	"repro/internal/storage/record"
	"repro/internal/tier"
	"repro/internal/wire"
)

// These tests hold the zero-copy fetch path byte-identical to the legacy
// buffered path: same guard outcomes, same response payloads, same wire
// frames — across codecs, segment boundaries, mid-batch seek offsets,
// visibility trims and cold-tier fallbacks. The splice is an optimization
// with no observable protocol surface.

// sealedBatch producer-encodes vals as one batch under codec, exactly like
// a client produce request.
func sealedBatch(t *testing.T, codec record.Codec, vals ...string) []byte {
	t.Helper()
	recs := make([]record.Record, len(vals))
	for i, v := range vals {
		recs[i] = record.Record{Key: []byte(fmt.Sprintf("k-%s", v)), Value: []byte(v), Timestamp: int64(i + 1)}
	}
	sealed, err := record.Compress(record.EncodeBatch(0, recs), codec)
	if err != nil {
		t.Fatal(err)
	}
	return sealed
}

// zcReplica builds a leader replica over a fresh log with small segments and
// appends 3-record batches cycling through all codecs, so reads cross
// segment boundaries, compressed bodies and mid-batch offsets.
func zcReplica(t *testing.T, soleLeader bool) *replica {
	t.Helper()
	l, err := log.Open(t.TempDir(), log.Config{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r := newReplica(tp{topic: "zc", partition: 0}, l, 1)
	t.Cleanup(func() { r.close() })
	if soleLeader {
		r.becomeLeader(1, []int32{1}, []int32{1}, 1)
	} else {
		r.becomeLeader(1, []int32{1, 2}, []int32{1, 2}, 1)
	}
	codecs := []record.Codec{record.CodecNone, record.CodecGzip, record.CodecFlate}
	for i := 0; i < 12; i++ {
		b := sealedBatch(t, codecs[i%len(codecs)],
			fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("c%d", i))
		if _, _, _, code := r.appendSealedAsLeader([][]byte{b}, 1); code != wire.ErrNone {
			t.Fatalf("append %d: %v", i, code)
		}
	}
	return r
}

// rangeBytes materializes a SegmentRange with legacy nil/empty semantics:
// nil range stays nil, an empty range is a non-nil empty slice.
func rangeBytes(t *testing.T, rng *log.SegmentRange) []byte {
	t.Helper()
	if rng == nil {
		return nil
	}
	defer rng.Close()
	b, err := rng.Bytes()
	if err != nil {
		t.Fatalf("range bytes: %v", err)
	}
	return b
}

func assertSameRead(t *testing.T, what string, data []byte, hw1, e1 int64, c1 wire.ErrorCode,
	rb []byte, hw2, e2 int64, c2 wire.ErrorCode) {
	t.Helper()
	if c1 != c2 || hw1 != hw2 || e1 != e2 {
		t.Fatalf("%s: guards diverge: buffered (hw=%d earliest=%d code=%v) vs range (hw=%d earliest=%d code=%v)",
			what, hw1, e1, c1, hw2, e2, c2)
	}
	if (data == nil) != (rb == nil) {
		t.Fatalf("%s: nil-ness diverges: buffered nil=%v range nil=%v", what, data == nil, rb == nil)
	}
	if !bytes.Equal(data, rb) {
		t.Fatalf("%s: payloads diverge: buffered %d bytes, range %d bytes", what, len(data), len(rb))
	}
}

func TestZeroCopyConsumerReadEquivalence(t *testing.T) {
	r := zcReplica(t, true)
	end := r.log.NextOffset()
	if hw := r.highWatermark(); hw != end {
		t.Fatalf("hw = %d, want %d", hw, end)
	}
	for offset := int64(0); offset <= end; offset++ {
		for _, maxBytes := range []int{1, 100, 1 << 20} {
			data, hw1, e1, c1 := r.readForConsumer(offset, maxBytes)
			rng, hw2, e2, c2, ok := r.readRangeForConsumer(offset, maxBytes)
			if !ok {
				t.Fatalf("offset %d maxBytes %d: zero-copy refused an untired hot read", offset, maxBytes)
			}
			what := fmt.Sprintf("consumer offset %d maxBytes %d", offset, maxBytes)
			assertSameRead(t, what, data, hw1, e1, c1, rangeBytes(t, rng), hw2, e2, c2)
		}
	}
	// Past the end and below the start the guards must agree too.
	for _, offset := range []int64{end + 1, -1} {
		data, hw1, e1, c1 := r.readForConsumer(offset, 1<<20)
		rng, hw2, e2, c2, ok := r.readRangeForConsumer(offset, 1<<20)
		if !ok {
			t.Fatalf("offset %d: guard outcome must not fall back", offset)
		}
		assertSameRead(t, fmt.Sprintf("consumer offset %d", offset), data, hw1, e1, c1, rangeBytes(t, rng), hw2, e2, c2)
	}
}

func TestZeroCopyVisibilityTrimEquivalence(t *testing.T) {
	// A follower stuck mid-batch pins the high watermark inside the first
	// batch: consumers must see an empty (but present) record set, and the
	// zero-copy path must produce the identical encoding.
	r := zcReplica(t, false)
	if hw := r.highWatermark(); hw != 0 {
		t.Fatalf("hw = %d before follower fetch, want 0", hw)
	}
	r.onFollowerFetch(2, 1, time.Unix(1_700_000_000, 0)) // hw = 1: mid-batch
	for offset := int64(0); offset <= 1; offset++ {
		data, hw1, e1, c1 := r.readForConsumer(offset, 1<<20)
		rng, hw2, e2, c2, ok := r.readRangeForConsumer(offset, 1<<20)
		if !ok {
			t.Fatalf("offset %d: trimmed read must not fall back", offset)
		}
		assertSameRead(t, fmt.Sprintf("trimmed offset %d", offset), data, hw1, e1, c1, rangeBytes(t, rng), hw2, e2, c2)
	}
}

func TestZeroCopyFollowerReadEquivalence(t *testing.T) {
	// Followers read past the high watermark (replication moves uncommitted
	// data); the range path must match there as well.
	r := zcReplica(t, false) // hw stays 0: everything is "uncommitted"
	end := r.log.NextOffset()
	for offset := int64(0); offset <= end; offset++ {
		data, hw1, e1, c1 := r.readForFollower(offset, 700)
		rng, hw2, e2, c2, ok := r.readRangeForFollower(offset, 700)
		if !ok {
			t.Fatalf("offset %d: follower range read fell back", offset)
		}
		assertSameRead(t, fmt.Sprintf("follower offset %d", offset), data, hw1, e1, c1, rangeBytes(t, rng), hw2, e2, c2)
	}
}

func TestZeroCopySplicedFrameByteEquivalence(t *testing.T) {
	// The ultimate contract: a response frame carrying spliced file ranges is
	// byte-identical to the frame the legacy encoder produces — including a
	// multi-partition response mixing spliced, buffered, empty and absent
	// record sets.
	r := zcReplica(t, true)
	end := r.log.NextOffset()

	build := func(zeroCopy bool) []byte {
		t.Helper()
		resp := &wire.FetchResponse{Topics: []wire.FetchRespTopic{{Name: "zc"}}}
		for _, offset := range []int64{0, 5, end} { // base, mid-batch, caught-up
			var p wire.FetchRespPartition
			if zeroCopy {
				rng, hw, earliest, code, ok := r.readRangeForConsumer(offset, 700)
				if !ok {
					t.Fatalf("offset %d fell back", offset)
				}
				p = wire.FetchRespPartition{Partition: int32(offset), Err: code, HighWatermark: hw, LogStartOffset: earliest}
				if rng != nil {
					p.RecordsRange = rng
					t.Cleanup(func() { rng.Close() })
				}
			} else {
				data, hw, earliest, code := r.readForConsumer(offset, 700)
				p = wire.FetchRespPartition{Partition: int32(offset), Err: code, HighWatermark: hw, LogStartOffset: earliest, Records: data}
			}
			resp.Topics[0].Partitions = append(resp.Topics[0].Partitions, p)
		}
		var buf bytes.Buffer
		if err := wire.WriteResponseFrame(&buf, 42, resp); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	legacy := build(false)
	spliced := build(true)
	if !bytes.Equal(legacy, spliced) {
		t.Fatalf("frames diverge: legacy %d bytes, spliced %d bytes", len(legacy), len(spliced))
	}

	// And the spliced frame must decode like any other fetch response.
	rd := wire.NewReader(spliced[4:]) // skip the length prefix
	if corr := rd.Int32(); corr != 42 {
		t.Fatalf("correlation = %d", corr)
	}
	var decoded wire.FetchResponse
	decoded.Decode(rd)
	if err := rd.Err(); err != nil {
		t.Fatalf("decode spliced frame: %v", err)
	}
	if got := len(decoded.Topics[0].Partitions); got != 3 {
		t.Fatalf("decoded %d partitions, want 3", got)
	}
	if decoded.Topics[0].Partitions[2].Records != nil {
		t.Fatal("caught-up partition decoded non-nil records")
	}
}

func TestZeroCopyColdReadFallsBack(t *testing.T) {
	// Offload sealed segments to the cold tier and expire them locally: a
	// fetch below the local start must decline the zero-copy path (ok=false)
	// and be served by the buffered cold read, while hot offsets keep the
	// splice.
	dir := t.TempDir()
	l, err := log.Open(dir, log.Config{SegmentBytes: 4 << 10, Tiered: true, RetentionMs: -1, RetentionBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := newReplica(tp{topic: "zc", partition: 0}, l, 1)
	defer r.close()
	r.becomeLeader(1, []int32{1}, []int32{1}, 1)
	for i := 0; i < 400; i++ {
		rec := record.Record{Key: []byte(fmt.Sprintf("k-%05d", i)), Value: []byte(fmt.Sprintf("v-%05d", i))}
		if _, _, _, code := r.appendAsLeader([]record.Record{rec}, 1); code != wire.ErrNone {
			t.Fatalf("append %d: %v", i, code)
		}
	}
	fs, err := dfs.Open(dfs.Config{Dir: filepath.Join(t.TempDir(), "tierfs")})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	p, err := tier.Open(fs, "zc", 0, tier.Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Offload(l, r.highWatermark()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.EnforceRetention(time.Now()); err != nil {
		t.Fatal(err)
	}
	r.setTier(p)
	start := l.StartOffset()
	if start == 0 {
		t.Fatal("retention kept everything local; cold path not reachable")
	}

	// Cold offset: zero-copy declines, buffered path serves.
	if _, _, _, _, ok := r.readRangeForConsumer(0, 2048); ok {
		t.Fatal("zero-copy path claimed a cold-tier read")
	}
	data, _, earliest, code := r.readForConsumer(0, 2048)
	if code != wire.ErrNone || len(data) == 0 {
		t.Fatalf("cold buffered read: code=%v bytes=%d", code, len(data))
	}
	if earliest != 0 {
		t.Fatalf("earliest = %d, want 0 (tiered)", earliest)
	}

	// Hot offset: both paths serve, byte-identical.
	bdata, hw1, e1, c1 := r.readForConsumer(start, 2048)
	rng, hw2, e2, c2, ok := r.readRangeForConsumer(start, 2048)
	if !ok {
		t.Fatal("hot read fell back despite local data")
	}
	assertSameRead(t, "hot read", bdata, hw1, e1, c1, rangeBytes(t, rng), hw2, e2, c2)
}

package tier

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/storage/log"
	"repro/internal/storage/record"
)

// openTestLog builds a tiered log with small segments and appends n records
// ("v-%05d" payloads), returning the log.
func openTestLog(t *testing.T, dir string, n int) *log.Log {
	t.Helper()
	l, err := log.Open(dir, log.Config{
		SegmentBytes: 4 << 10,
		Tiered:       true,
		RetentionMs:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append([]record.Record{{
			Key:   []byte(fmt.Sprintf("k-%05d", i)),
			Value: []byte(fmt.Sprintf("v-%05d", i)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func openTestFS(t *testing.T) *dfs.FS {
	t.Helper()
	fs, err := dfs.Open(dfs.Config{Dir: filepath.Join(t.TempDir(), "tierfs")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestOffloadAndColdRead(t *testing.T) {
	const n = 500
	l := openTestLog(t, t.TempDir(), n)
	defer l.Close()
	if l.SegmentCount() < 3 {
		t.Fatalf("want several segments, got %d", l.SegmentCount())
	}
	fs := openTestFS(t)
	p, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hw := l.NextOffset()
	up, err := p.Offload(l, hw)
	if err != nil {
		t.Fatal(err)
	}
	if up != l.SegmentCount()-1 {
		t.Fatalf("offloaded %d segments, want %d (all sealed)", up, l.SegmentCount()-1)
	}
	segs := l.Segments()
	frontier := segs[len(segs)-1].BaseOffset // active segment's base
	if got := p.NextOffset(); got != frontier {
		t.Fatalf("offload frontier %d, want %d", got, frontier)
	}
	if got := l.OffloadedTo(); got != frontier {
		t.Fatalf("offload guard %d, want %d", got, frontier)
	}
	if e, ok := p.Earliest(); !ok || e != 0 {
		t.Fatalf("tiered earliest = %d,%v; want 0,true", e, ok)
	}

	// Read everything tiered back through the cold path and verify
	// offsets, keys and values survive the LIQARCH2 round trip.
	var next int64
	for next < frontier {
		data, err := p.Read(next, 2048)
		if err != nil {
			t.Fatalf("cold read at %d: %v", next, err)
		}
		got := 0
		err = record.ScanRecords(data, func(r record.Record) error {
			if r.Offset < next {
				return nil // leading records of the covering batch
			}
			if want := fmt.Sprintf("v-%05d", r.Offset); string(r.Value) != want {
				return fmt.Errorf("offset %d value %q, want %q", r.Offset, r.Value, want)
			}
			next = r.Offset + 1
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			t.Fatalf("cold read at %d returned no new records", next)
		}
	}

	// Above the frontier the hot log owns the offsets.
	if _, err := p.Read(frontier, 2048); !errors.Is(err, ErrNotCovered) {
		t.Fatalf("read at frontier: %v, want ErrNotCovered", err)
	}
}

func TestOffloadSkipsUncommitted(t *testing.T) {
	l := openTestLog(t, t.TempDir(), 300)
	defer l.Close()
	fs := openTestFS(t)
	p, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With the high watermark pinned at 0 (no replication ack yet),
	// nothing may be offloaded.
	if up, err := p.Offload(l, 0); err != nil || up != 0 {
		t.Fatalf("offload below hw: %d,%v; want 0,nil", up, err)
	}
	// A watermark mid-segment keeps that segment hot.
	segs := l.Segments()
	hw := segs[1].BaseOffset + 1 // one record into the second segment
	up, err := p.Offload(l, hw)
	if err != nil {
		t.Fatal(err)
	}
	if up != 1 {
		t.Fatalf("offloaded %d segments, want 1 (only the first is fully below hw)", up)
	}
	if got := p.NextOffset(); got != segs[1].BaseOffset {
		t.Fatalf("frontier %d, want %d", got, segs[1].BaseOffset)
	}
}

// TestOffloadRecoversAcrossReopen proves the manifest is the source of
// truth: a fresh engine (a new leader) resumes from the committed frontier
// and never duplicates a tiered offset, even when its local segment
// boundaries straddle the frontier.
func TestOffloadRecoversAcrossReopen(t *testing.T) {
	l := openTestLog(t, t.TempDir(), 400)
	defer l.Close()
	fs := openTestFS(t)
	p1, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	segs := l.Segments()
	// Offload only the first two segments, as if the leader died mid-way.
	if _, err := p1.Offload(l, segs[2].BaseOffset); err != nil {
		t.Fatal(err)
	}
	frontier := p1.NextOffset()

	p2, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.NextOffset(); got != frontier {
		t.Fatalf("recovered frontier %d, want %d", got, frontier)
	}
	if _, err := p2.Offload(l, l.NextOffset()); err != nil {
		t.Fatal(err)
	}
	assertContiguous(t, fs, p2)
}

// assertContiguous verifies the manifest's segments are gapless,
// duplicate-free, and exactly match the committed files on the DFS.
func assertContiguous(t *testing.T, fs *dfs.FS, p *Partition) {
	t.Helper()
	man := p.manifest()
	want := man.StartOffset
	for _, s := range man.Segments {
		if s.BaseOffset != want {
			t.Fatalf("segment %s starts at %d, want %d (gap or duplicate)", s.Path, s.BaseOffset, want)
		}
		if s.Records != s.LastOffset-s.BaseOffset+1 {
			t.Fatalf("segment %s record count %d != offset span %d", s.Path, s.Records, s.LastOffset-s.BaseOffset+1)
		}
		want = s.LastOffset + 1
	}
	if man.NextOffset != want {
		t.Fatalf("NextOffset %d, want %d", man.NextOffset, want)
	}
	inManifest := make(map[string]bool, len(man.Segments))
	for _, s := range man.Segments {
		inManifest[s.Path] = true
	}
	for _, info := range fs.List(SegmentsPrefix(p.cfg.Root, p.topic)) {
		if pn, _, _, ok := parseSegmentPath(info.Path); ok && pn == p.partition && !inManifest[info.Path] {
			t.Fatalf("orphan segment on DFS: %s", info.Path)
		}
	}
}

func TestColdRetentionAdvancesTierStart(t *testing.T) {
	l := openTestLog(t, t.TempDir(), 500)
	defer l.Close()
	fs := openTestFS(t)
	p, err := Open(fs, "feed", 0, Config{TotalRetentionBytes: 1}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Offload(l, l.NextOffset()); err != nil {
		t.Fatal(err)
	}
	before := p.TierStats()
	if before.Segments < 2 {
		t.Fatalf("want >= 2 cold segments, got %d", before.Segments)
	}
	// A 1-byte total horizon expires every cold segment.
	dropped, err := p.EnforceRetention(time.Now(), l.Size())
	if err != nil {
		t.Fatal(err)
	}
	if dropped != before.Segments {
		t.Fatalf("dropped %d, want %d", dropped, before.Segments)
	}
	if _, ok := p.Earliest(); ok {
		t.Fatal("cold tier should be empty after retention")
	}
	st := p.TierStats()
	if st.StartOffset != st.NextOffset {
		t.Fatalf("empty tier start %d != frontier %d", st.StartOffset, st.NextOffset)
	}
	// The files are gone too.
	for _, info := range fs.List(SegmentsPrefix(p.cfg.Root, "feed")) {
		if _, _, _, ok := parseSegmentPath(info.Path); ok {
			t.Fatalf("cold segment file survived retention: %s", info.Path)
		}
	}
	// Reads below the tier start are gone for good.
	if _, err := p.Read(0, 1024); !errors.Is(err, ErrNotCovered) && !errors.Is(err, ErrOffsetBelowTier) {
		t.Fatalf("read of expired offset: %v", err)
	}
}

func TestOffsetForTimestamp(t *testing.T) {
	dir := t.TempDir()
	l, err := log.Open(dir, log.Config{SegmentBytes: 2 << 10, Tiered: true, RetentionMs: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := time.Now().UnixMilli()
	for i := 0; i < 200; i++ {
		if _, err := l.Append([]record.Record{{
			Timestamp: base + int64(i)*1000,
			Value:     []byte(fmt.Sprintf("v-%05d", i)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	fs := openTestFS(t)
	p, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Offload(l, l.NextOffset()); err != nil {
		t.Fatal(err)
	}
	off, ok, err := p.OffsetForTimestamp(base + 42*1000)
	if err != nil || !ok || off != 42 {
		t.Fatalf("OffsetForTimestamp = %d,%v,%v; want 42,true,nil", off, ok, err)
	}
	// A timestamp beyond every tiered record defers to the hot log.
	if _, ok, err := p.OffsetForTimestamp(base + 10_000*1000); err != nil || ok {
		t.Fatalf("future timestamp resolved in cold tier: ok=%v err=%v", ok, err)
	}
}

func TestCacheEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(1<<10, reg) // tiny: every reader evicts the previous one
	mk := func(name string, size int) func() (*segReader, error) {
		return func() (*segReader, error) {
			return &segReader{path: name, data: make([]byte, size)}, nil
		}
	}
	if _, err := c.get("a", mk("a", 800)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("b", mk("b", 800)); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Stats(); n != 1 {
		t.Fatalf("cache holds %d readers, want 1 after eviction", n)
	}
	if got := reg.Counter("tier.cache.evict").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// A re-get of the evicted reader is a miss and reloads.
	if _, err := c.get("a", mk("a", 100)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("tier.cache.miss").Value(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}
}

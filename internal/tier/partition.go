package tier

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/dfs"
	"repro/internal/metrics"
	"repro/internal/storage/log"
	"repro/internal/storage/record"
)

// coldBatchBytes is the target encoded size of one re-encoded batch when a
// cold segment is hydrated; it mirrors the log's default MaxBatchBytes so
// cold fetches look like hot ones to consumers and byte budgets.
const coldBatchBytes = 32 << 10

// Partition is one partition's tier engine, owned by the partition's
// current leader. It offloads sealed local segments to the DFS, serves
// reads below the local log start from the cold tier, and enforces the
// total (tiered) retention horizon. The manifest it commits is the source
// of truth: a new leader opens the partition and recovers the exact tier
// state, sweeping any orphan segment a crashed predecessor left between
// upload and commit.
type Partition struct {
	fs        *dfs.FS
	cfg       Config
	topic     string
	partition int32
	cache     *Cache
	tracker   log.PageTracker
	reg       *metrics.Registry

	mu  sync.Mutex
	man *Manifest // treated as immutable; replaced wholesale on commit
}

// Stats is a point-in-time summary of one partition's cold tier.
type Stats struct {
	Segments    int
	Records     int64
	Bytes       int64
	StartOffset int64 // earliest tiered offset (== NextOffset when empty)
	NextOffset  int64 // offload frontier
}

// Open loads the partition's tier manifest and sweeps orphans — segment
// files a crashed leader renamed into place before committing the manifest,
// and stray .tmp files. Orphans start at or beyond NextOffset, exactly the
// range the new leader will re-offload from its own log, so sweeping them
// is what guarantees no duplicate tiered segments after recovery.
func Open(fs *dfs.FS, topic string, partition int32, cfg Config, cache *Cache, tracker log.PageTracker, reg *metrics.Registry) (*Partition, error) {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cache == nil {
		cache = NewCache(0, reg)
	}
	man, err := LoadManifest(fs, cfg.Root, topic, partition)
	if err != nil {
		return nil, err
	}
	for _, info := range fs.List(SegmentsPrefix(cfg.Root, topic)) {
		if trimmed := strings.TrimSuffix(info.Path, ".tmp"); trimmed != info.Path {
			if p, _, _, ok := parseSegmentPath(trimmed); ok && p == partition {
				_ = fs.Delete(info.Path)
			}
			continue
		}
		p, base, _, ok := parseSegmentPath(info.Path)
		if ok && p == partition && base >= man.NextOffset {
			_ = fs.Delete(info.Path)
		}
	}
	return &Partition{
		fs: fs, cfg: cfg, topic: topic, partition: partition,
		cache: cache, tracker: tracker, reg: reg,
		man: man,
	}, nil
}

// manifest snapshots the current (immutable) manifest.
func (p *Partition) manifest() *Manifest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.man
}

// NextOffset returns the offload frontier: every offset below it is tiered.
func (p *Partition) NextOffset() int64 { return p.manifest().NextOffset }

// Earliest returns the earliest tiered offset; ok is false when the cold
// tier holds no segments (nothing has been offloaded, or total retention
// deleted everything).
func (p *Partition) Earliest() (int64, bool) {
	m := p.manifest()
	if len(m.Segments) == 0 {
		return 0, false
	}
	return m.StartOffset, true
}

// TierStats summarises the cold tier for status APIs and the admin tool.
func (p *Partition) TierStats() Stats {
	m := p.manifest()
	s := Stats{
		Segments:    len(m.Segments),
		Records:     m.Records(),
		Bytes:       m.Bytes(),
		StartOffset: m.NextOffset,
		NextOffset:  m.NextOffset,
	}
	if len(m.Segments) > 0 {
		s.StartOffset = m.StartOffset
	}
	return s
}

// Offload uploads every sealed local segment fully below the high watermark
// and not yet tiered, committing the manifest after each segment and
// raising the log's offload guard so hot retention may delete the local
// copy. It returns the number of segments uploaded. Records already tiered
// (a new leader whose local segment boundaries straddle the frontier) are
// filtered out, so the cold tier never holds an offset twice.
func (p *Partition) Offload(l *log.Log, hw int64) (int, error) {
	uploaded := 0
	for _, s := range l.Segments() {
		if s.Active || s.NextOffset > hw {
			continue // only sealed, fully committed segments are tiered
		}
		man := p.manifest()
		if s.NextOffset <= man.NextOffset {
			// Fully tiered already; raise the guard in case this leader
			// just recovered the manifest.
			l.SetOffloadedTo(man.NextOffset)
			continue
		}
		if err := p.offloadSegment(l, s, man); err != nil {
			return uploaded, err
		}
		uploaded++
	}
	return uploaded, nil
}

// offloadSegment uploads one local segment (clipped to offsets at or beyond
// the offload frontier) and commits the manifest.
func (p *Partition) offloadSegment(l *log.Log, s log.SegmentInfo, man *Manifest) error {
	raw, err := l.ReadSegment(s.BaseOffset)
	if err != nil {
		return err
	}
	var recs []archive.Record
	err = record.ScanRecords(raw, func(r record.Record) error {
		if r.Offset >= man.NextOffset {
			recs = append(recs, archive.Record{
				Offset:    r.Offset,
				Timestamp: r.Timestamp,
				Key:       r.Key,
				Value:     r.Value,
				Headers:   r.Headers,
			})
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("tier: scan local segment %d of %s/%d: %w", s.BaseOffset, p.topic, p.partition, err)
	}
	if len(recs) == 0 {
		return nil
	}
	data, err := archive.EncodeSegmentCodec(recs, p.cfg.Codec)
	if err != nil {
		return err
	}
	base, last := recs[0].Offset, recs[len(recs)-1].Offset
	final := segmentPath(p.cfg.Root, p.topic, p.partition, base, last)
	tmp := final + ".tmp"
	// Sweep a tmp leftover from a crashed upload of the same range; the
	// final path is never pre-deleted — an existing one means a newer
	// leader owns this range and this instance is stale.
	_ = p.fs.Delete(tmp)
	if err := p.fs.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := p.fs.Rename(tmp, final); err != nil {
		_ = p.fs.Delete(tmp)
		if errors.Is(err, dfs.ErrExists) {
			return fmt.Errorf("%w: segment %s", ErrConflict, final)
		}
		return err
	}
	if p.cfg.OnUploaded != nil {
		// Injected crash between segment upload and manifest commit.
		if err := p.cfg.OnUploaded(final); err != nil {
			return err
		}
	}
	info := SegmentInfo{
		Path:           final,
		BaseOffset:     base,
		LastOffset:     last,
		Records:        int64(len(recs)),
		Bytes:          int64(len(data)),
		FirstTimestamp: recs[0].Timestamp,
		LastTimestamp:  recs[len(recs)-1].Timestamp,
	}
	next := *man
	next.Segments = append(append([]SegmentInfo(nil), man.Segments...), info)
	next.NextOffset = last + 1
	if len(man.Segments) == 0 {
		next.StartOffset = base
	}
	if err := commitManifest(p.fs, p.cfg.Root, &next); err != nil {
		// Withdraw the uploaded segment only when the commit failed for a
		// non-conflict reason (IO): the file is ours and would linger as
		// an orphan. On ErrConflict the file at this path may no longer
		// be ours at all — a newer leader can have swept our upload and
		// re-uploaded the same range to the same path before committing —
		// so deleting it would destroy manifest-referenced cold data.
		if !errors.Is(err, ErrConflict) {
			_ = p.fs.Delete(final)
		}
		return err
	}
	p.mu.Lock()
	p.man = &next
	p.mu.Unlock()
	// Only now may hot retention delete the local copy: the records are
	// durably tiered and the manifest points at them.
	l.SetOffloadedTo(next.NextOffset)
	p.reg.Counter("tier.segments.offloaded").Inc()
	p.reg.Counter("tier.bytes.offloaded").Add(info.Bytes)
	p.reg.Counter("tier.records.offloaded").Add(info.Records)
	return nil
}

// Read serves a cold fetch: whole re-encoded batches starting at the batch
// containing offset, up to maxBytes (at least one batch). It returns
// ErrOffsetBelowTier when total retention already dropped the offset and
// ErrNotCovered when the offset is above the offload frontier (the hot log
// owns it).
func (p *Partition) Read(offset int64, maxBytes int) ([]byte, error) {
	p.mu.Lock()
	man := p.man
	p.mu.Unlock()
	if len(man.Segments) == 0 {
		return nil, ErrNotCovered
	}
	if offset < man.StartOffset {
		return nil, fmt.Errorf("%w: offset %d below tier start %d", ErrOffsetBelowTier, offset, man.StartOffset)
	}
	idx := sort.Search(len(man.Segments), func(i int) bool {
		return man.Segments[i].LastOffset >= offset
	})
	if idx == len(man.Segments) {
		return nil, ErrNotCovered
	}
	info := man.Segments[idx]
	r, err := p.hydrate(info)
	if err != nil {
		return nil, err
	}
	data := r.read(offset, maxBytes)
	if data == nil {
		return nil, ErrNotCovered
	}
	p.reg.Counter("tier.reads.cold").Inc()
	p.reg.Counter("tier.reads.cold.bytes").Add(int64(len(data)))
	return data, nil
}

// hydrate fetches a cold segment through the shared LRU, decoding and
// re-encoding it as wire batches on a miss. The miss charges the
// partition's page-cache model (paper §4.1): cold bytes were evicted from
// the OS cache long ago, so hydration pays the modeled disk penalty on top
// of the DFS cost model.
func (p *Partition) hydrate(info SegmentInfo) (*segReader, error) {
	return p.cache.get(info.Path, func() (*segReader, error) {
		raw, err := p.fs.ReadFile(info.Path)
		if err != nil {
			return nil, err
		}
		if p.tracker != nil {
			// Cold segments use negative file ids so their pages can never
			// collide with (still resident) local segment pages.
			if penalty := p.tracker.OnRead(-info.BaseOffset-1, 0, int64(len(raw))); penalty > 0 {
				time.Sleep(penalty)
			}
		}
		recs, err := archive.DecodeSegment(raw)
		if err != nil {
			return nil, err
		}
		return buildSegReader(info, recs)
	})
}

// buildSegReader re-encodes archived records as wire record batches with
// their original offsets and timestamps, splitting on any offset gap (the
// batch codec assigns consecutive offsets from a base).
func buildSegReader(info SegmentInfo, recs []archive.Record) (*segReader, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("tier: empty cold segment %s", info.Path)
	}
	r := &segReader{path: info.Path, base: recs[0].Offset, last: recs[len(recs)-1].Offset}
	var batch []record.Record
	var batchBytes int
	var first int64
	flush := func() {
		if len(batch) == 0 {
			return
		}
		pos := len(r.data)
		r.data = append(r.data, record.EncodeBatch(first, batch)...)
		r.index = append(r.index, batchIdx{
			firstOffset: first,
			lastOffset:  first + int64(len(batch)) - 1,
			pos:         pos,
			length:      len(r.data) - pos,
		})
		batch = batch[:0]
		batchBytes = 0
	}
	for i := range recs {
		a := &recs[i]
		if len(batch) == 0 {
			first = a.Offset
		} else if a.Offset != first+int64(len(batch)) {
			flush()
			first = a.Offset
		}
		batch = append(batch, record.Record{
			Timestamp: a.Timestamp,
			Key:       a.Key,
			Value:     a.Value,
			Headers:   a.Headers,
		})
		batchBytes += len(a.Key) + len(a.Value) + 64
		if batchBytes >= coldBatchBytes {
			flush()
		}
	}
	flush()
	return r, nil
}

// OffsetForTimestamp returns the offset of the first tiered record whose
// timestamp is at or after ts; ok is false when no tiered record qualifies
// (the hot log should be consulted instead).
func (p *Partition) OffsetForTimestamp(ts int64) (int64, bool, error) {
	man := p.manifest()
	for _, info := range man.Segments {
		if info.LastTimestamp < ts {
			continue
		}
		r, err := p.hydrate(info)
		if err != nil {
			return 0, false, err
		}
		// Scan the hydrated batches for the first qualifying record.
		found := int64(-1)
		err = record.ScanRecords(r.data, func(rec record.Record) error {
			if rec.Timestamp >= ts && found == -1 {
				found = rec.Offset
			}
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		if found >= 0 {
			return found, true, nil
		}
	}
	return 0, false, nil
}

// EnforceRetention applies the total (tiered) horizon to the cold tier:
// cold segments older than TotalRetentionMs, or the oldest cold segments
// while hot+cold bytes exceed TotalRetentionBytes, are deleted and the tier
// start offset advances. localBytes is the partition's current hot log
// size. It returns the number of cold segments deleted.
func (p *Partition) EnforceRetention(now time.Time, localBytes int64) (int, error) {
	man := p.manifest()
	nowMs := now.UnixMilli()
	coldBytes := man.Bytes()
	drop := 0
	for drop < len(man.Segments) {
		old := man.Segments[drop]
		expired := p.cfg.TotalRetentionMs > 0 && old.LastTimestamp > 0 &&
			nowMs-old.LastTimestamp > p.cfg.TotalRetentionMs
		oversize := p.cfg.TotalRetentionBytes > 0 && coldBytes+localBytes > p.cfg.TotalRetentionBytes
		if !expired && !oversize {
			break
		}
		coldBytes -= old.Bytes
		drop++
	}
	if drop == 0 {
		return 0, nil
	}
	next := *man
	next.Segments = append([]SegmentInfo(nil), man.Segments[drop:]...)
	if len(next.Segments) > 0 {
		next.StartOffset = next.Segments[0].BaseOffset
	} else {
		next.StartOffset = next.NextOffset
	}
	if err := commitManifest(p.fs, p.cfg.Root, &next); err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.man = &next
	p.mu.Unlock()
	// Delete the files only after the manifest stopped referencing them. A
	// crash between the commit and these deletions leaks unreachable files
	// below the committed tier start; SweepBelowStart (run at the next
	// leadership adoption) reclaims them.
	for i := 0; i < drop; i++ {
		_ = p.fs.Delete(man.Segments[i].Path)
		p.cache.invalidate(man.Segments[i].Path)
		p.reg.Counter("tier.segments.expired").Inc()
	}
	return drop, nil
}

// SweepBelowStart deletes cold segment files below the committed tier start
// (leaked by a crash between a retention commit and its file deletions).
// Best-effort; invoked opportunistically by the broker's housekeeping.
func (p *Partition) SweepBelowStart() {
	man := p.manifest()
	if len(man.Segments) == 0 && man.NextOffset == 0 {
		return
	}
	for _, info := range p.fs.List(SegmentsPrefix(p.cfg.Root, p.topic)) {
		pn, _, last, ok := parseSegmentPath(info.Path)
		if ok && pn == p.partition && last < man.StartOffset {
			_ = p.fs.Delete(info.Path)
			p.cache.invalidate(info.Path)
		}
	}
}

// Package tier implements tiered log storage for the messaging layer: the
// leader of each partition offloads sealed (rolled, below-high-watermark)
// log segments to the DFS in the archive's LIQARCH2 compressed segment
// format, tracks them in a per-partition tier manifest committed by atomic
// rename, and serves reads below the local log start transparently from the
// cold tier through a bounded LRU of hydrated segment readers.
//
// This closes the gap the paper's design promises to close (§2, §4.1 log
// retention, §4.2 annotated checkpoints): a consumer can rewind "as far
// back as needed" through the same fetch API, because the local hot log and
// the DFS cold tier are two tiers of one logical log rather than two
// disconnected stacks. Retention splits accordingly: the hot horizon bounds
// local bytes/age (enforced by storage/log, which never deletes a record
// the offloader has not committed to the manifest), and the total horizon
// bounds the tiered log as a whole (enforced here, against the cold tier).
//
// Crash safety follows internal/archive's discipline exactly: segment
// upload (tmp write + atomic rename), then manifest commit (tmp write +
// atomic rename with sequence fencing), then local deletion. A crash
// between upload and commit leaves an orphan segment file that the next
// leader sweeps on open; a crash between commit and local deletion leaves a
// harmless overlap that the read path resolves by preferring the hot copy.
package tier

import (
	"errors"

	"repro/internal/storage/record"
)

// Errors returned by the tier engine.
var (
	// ErrOffsetBelowTier reports a read below the earliest tiered offset:
	// the record is gone from both tiers (total retention deleted it).
	ErrOffsetBelowTier = errors.New("tier: offset below earliest tiered offset")
	// ErrNotCovered reports a read that no tiered segment covers (the
	// offset sits above the offload frontier; the hot log owns it).
	ErrNotCovered = errors.New("tier: offset not covered by tiered segments")
	// ErrConflict reports a manifest or segment commit lost to a concurrent
	// writer (a newer leader took the partition over); the caller must
	// reload before offloading further.
	ErrConflict = errors.New("tier: manifest committed concurrently")
)

// Config parameterises one partition's tier engine.
type Config struct {
	// Root is the DFS prefix tiered data lives under (default "/tier").
	Root string
	// Codec compresses uploaded segment files (LIQARCH2 format). The zero
	// value selects the default, flate — cold segments are always written
	// compressed (CodecNone is indistinguishable from unset here, and an
	// uncompressed cold tier has no use case: the DFS is the slow tier).
	Codec record.Codec
	// TotalRetentionMs / TotalRetentionBytes bound the tiered log as a
	// whole (hot + cold): cold segments older than TotalRetentionMs, or the
	// oldest cold segments while hot+cold bytes exceed TotalRetentionBytes,
	// are deleted and the tier start offset advances. <= 0 disables each.
	TotalRetentionMs    int64
	TotalRetentionBytes int64
	// OnUploaded is a crash-injection hook for recovery tests: it runs
	// after a segment file is renamed into place and before the manifest
	// commit — the exact window a crash leaves an orphan segment. Returning
	// an error aborts the offload there. Nil in production.
	OnUploaded func(path string) error
}

func (c Config) withDefaults() Config {
	if c.Root == "" {
		c.Root = "/tier"
	}
	if c.Codec == 0 {
		c.Codec = record.CodecFlate
	}
	return c
}

package tier

import (
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"strconv"
	"strings"
	"time"

	"repro/internal/dfs"
)

// manifestKeep bounds how many historical manifest versions survive a
// commit; older versions are pruned best-effort.
const manifestKeep = 3

// SegmentInfo is one committed cold segment in a partition's tier manifest.
type SegmentInfo struct {
	// Path is the segment file's DFS path.
	Path string `json:"path"`
	// BaseOffset / LastOffset bound the feed offsets the segment holds.
	BaseOffset int64 `json:"baseOffset"`
	LastOffset int64 `json:"lastOffset"`
	// Records / Bytes size the segment (Bytes is the on-DFS, possibly
	// compressed, file size).
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// FirstTimestamp / LastTimestamp are the broker timestamps at the
	// segment's bounds (ms since epoch).
	FirstTimestamp int64 `json:"firstTimestamp"`
	LastTimestamp  int64 `json:"lastTimestamp"`
}

// Manifest is the committed cold-tier state of one partition: the ordered
// immutable segments, the earliest tiered offset (advanced by total
// retention) and the offload frontier. It is the source of truth for cold
// data: leadership hand-over and restart recover tier state from it, and
// the read path trusts it to resolve which tier owns an offset.
type Manifest struct {
	Topic     string `json:"topic"`
	Partition int32  `json:"partition"`
	Seq       int64  `json:"seq"`
	// StartOffset is the earliest offset still held by the cold tier —
	// the tiered-earliest a consumer can rewind to.
	StartOffset int64 `json:"startOffset"`
	// NextOffset is the offload frontier: every offset below it is durably
	// tiered (or was, until total retention deleted it).
	NextOffset  int64         `json:"nextOffset"`
	Segments    []SegmentInfo `json:"segments"`
	UpdatedAtMs int64         `json:"updatedAtMs"`
}

// Bytes totals the cold segment file bytes.
func (m *Manifest) Bytes() int64 {
	var n int64
	for i := range m.Segments {
		n += m.Segments[i].Bytes
	}
	return n
}

// Records totals the cold record count.
func (m *Manifest) Records() int64 {
	var n int64
	for i := range m.Segments {
		n += m.Segments[i].Records
	}
	return n
}

// Layout. A tier root holds, per topic:
//
//	<root>/<topic>/segments/p<part>-o<base>-<last>.seg   immutable cold data
//	<root>/<topic>/manifest/p<part>/<seq>.json           committed manifests
//
// The shape mirrors internal/archive's layout so operators read both the
// same way; the trees are disjoint (different roots) because the tier is
// broker-owned state while the archive is a consumer-side export.

func topicRoot(root, topic string) string {
	return path.Join("/", root, topic)
}

// SegmentsPrefix returns the DFS prefix holding a topic's cold segments.
func SegmentsPrefix(root, topic string) string {
	return topicRoot(root, topic) + "/segments/"
}

// manifestPrefix returns the DFS prefix of one partition's manifests.
func manifestPrefix(root, topic string, partition int32) string {
	return fmt.Sprintf("%s/manifest/p%05d/", topicRoot(root, topic), partition)
}

// segmentPath renders a cold segment's committed path.
func segmentPath(root, topic string, partition int32, base, last int64) string {
	return fmt.Sprintf("%sp%05d-o%020d-%020d.seg", SegmentsPrefix(root, topic), partition, base, last)
}

// parseSegmentPath extracts partition and offset bounds from a segment
// path; ok is false for foreign files.
func parseSegmentPath(p string) (partition int32, base, last int64, ok bool) {
	name := path.Base(p)
	if !strings.HasSuffix(name, ".seg") || !strings.HasPrefix(name, "p") {
		return 0, 0, 0, false
	}
	parts := strings.Split(strings.TrimSuffix(name, ".seg"), "-")
	if len(parts) != 3 || !strings.HasPrefix(parts[1], "o") {
		return 0, 0, 0, false
	}
	pn, err1 := strconv.ParseInt(parts[0][1:], 10, 32)
	b, err2 := strconv.ParseInt(strings.TrimPrefix(parts[1], "o"), 10, 64)
	l, err3 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, 0, 0, false
	}
	return int32(pn), b, l, true
}

// LoadManifest reads the newest committed tier manifest of a partition,
// returning an empty zero-offset manifest when none exists. On a read-only
// handle, a read that loses the race with the writer's prune refreshes the
// snapshot and retries, as archive.LoadManifest does.
func LoadManifest(fs *dfs.FS, root, topic string, partition int32) (*Manifest, error) {
	prefix := manifestPrefix(root, topic, partition)
	for attempt := 0; ; attempt++ {
		infos := fs.List(prefix)
		// Committed manifests are <seq>.json; names zero-pad seq so List
		// order is commit order and the last entry is newest.
		var newest string
		for _, info := range infos {
			if strings.HasSuffix(info.Path, ".json") {
				newest = info.Path
			}
		}
		if newest == "" {
			return &Manifest{Topic: topic, Partition: partition}, nil
		}
		data, err := fs.ReadFile(newest)
		if err != nil {
			if fs.IsReadOnly() && attempt == 0 {
				if rerr := fs.Refresh(); rerr == nil {
					continue
				}
			}
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("tier: manifest %s: %w", newest, err)
		}
		return &m, nil
	}
}

// commitManifest durably publishes the next manifest version: write to a
// temporary path, then atomically rename into place. A crash before the
// rename leaves the previous version authoritative. Commits are fenced: a
// writer whose loaded Seq is stale (a zombie leader offloading after the
// partition moved) gets ErrConflict instead of regressing the manifest.
func commitManifest(fs *dfs.FS, root string, m *Manifest) error {
	m.Seq++
	m.UpdatedAtMs = time.Now().UnixMilli()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	cur, err := LoadManifest(fs, root, m.Topic, m.Partition)
	if err != nil {
		return err
	}
	if cur.Seq >= m.Seq {
		return fmt.Errorf("%w: %s/%d at seq %d, commit attempted seq %d",
			ErrConflict, m.Topic, m.Partition, cur.Seq, m.Seq)
	}
	prefix := manifestPrefix(root, m.Topic, m.Partition)
	tmp := fmt.Sprintf("%stmp-%020d", prefix, m.Seq)
	final := fmt.Sprintf("%s%020d.json", prefix, m.Seq)
	// A same-seq tmp leftover from an aborted commit is ours to sweep; the
	// final path is never pre-deleted — an existing one means a concurrent
	// commit won.
	_ = fs.Delete(tmp)
	if err := fs.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		if errors.Is(err, dfs.ErrExists) {
			_ = fs.Delete(tmp)
			return fmt.Errorf("%w: %s/%d seq %d committed concurrently",
				ErrConflict, m.Topic, m.Partition, m.Seq)
		}
		return err
	}
	// Prune old versions and stray tmp files, best-effort.
	for _, info := range fs.List(prefix) {
		if info.Path == final {
			continue
		}
		if !strings.HasSuffix(info.Path, ".json") {
			_ = fs.Delete(info.Path)
			continue
		}
		seqStr := strings.TrimSuffix(path.Base(info.Path), ".json")
		if seq, err := strconv.ParseInt(seqStr, 10, 64); err == nil && seq+manifestKeep <= m.Seq {
			_ = fs.Delete(info.Path)
		}
	}
	return nil
}

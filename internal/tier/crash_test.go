package tier

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage/record"
)

// errInjectedCrash stands in for a SIGKILL between segment upload and
// manifest commit.
var errInjectedCrash = errors.New("injected crash")

// TestCrashBetweenUploadAndCommit exercises the exact window a dying leader
// leaves an orphan: the segment file is renamed into place on the DFS but
// the manifest never commits. The next open (a new leader, or the restarted
// one re-elected) must sweep the orphan and re-offload — no acked record
// lost, no duplicate tiered segment.
func TestCrashBetweenUploadAndCommit(t *testing.T) {
	const n = 400
	l := openTestLog(t, t.TempDir(), n)
	defer l.Close()
	fs := openTestFS(t)

	var uploaded string
	crashy, err := Open(fs, "feed", 0, Config{
		OnUploaded: func(path string) error {
			uploaded = path
			return errInjectedCrash // die before the manifest commit
		},
	}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crashy.Offload(l, l.NextOffset()); !errors.Is(err, errInjectedCrash) {
		t.Fatalf("offload error = %v, want injected crash", err)
	}
	if uploaded == "" {
		t.Fatal("hook never saw an upload")
	}
	// The crash left an orphan: a committed-looking file the manifest does
	// not reference.
	if _, err := fs.Stat(uploaded); err != nil {
		t.Fatalf("orphan segment missing from DFS: %v", err)
	}
	if crashy.NextOffset() != 0 {
		t.Fatalf("manifest advanced past the crash: frontier %d", crashy.NextOffset())
	}
	// The guard never moved, so hot retention cannot delete anything —
	// the records exist on no committed tier yet.
	if got := l.OffloadedTo(); got != 0 {
		t.Fatalf("offload guard %d, want 0 (nothing committed)", got)
	}

	// Recovery: a new engine sweeps the orphan on open and re-offloads.
	p, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(uploaded); err == nil {
		t.Fatalf("orphan %s survived recovery sweep", uploaded)
	}
	if _, err := p.Offload(l, l.NextOffset()); err != nil {
		t.Fatal(err)
	}
	assertContiguous(t, fs, p)

	// Every offloaded record reads back exactly once.
	frontier := p.NextOffset()
	next := int64(0)
	for next < frontier {
		data, err := p.Read(next, 4096)
		if err != nil {
			t.Fatalf("cold read at %d: %v", next, err)
		}
		err = record.ScanRecords(data, func(r record.Record) error {
			if r.Offset < next {
				return nil
			}
			if r.Offset != next {
				return fmt.Errorf("offset %d, want %d (gap or duplicate)", r.Offset, next)
			}
			if want := fmt.Sprintf("v-%05d", r.Offset); string(r.Value) != want {
				return fmt.Errorf("offset %d value %q, want %q", r.Offset, r.Value, want)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashLeavesTmpFile covers the earlier half of the window: the crash
// lands mid-write, before the rename, leaving only a .tmp file. Recovery
// sweeps it and the range re-offloads cleanly.
func TestCrashLeavesTmpFile(t *testing.T) {
	l := openTestLog(t, t.TempDir(), 300)
	defer l.Close()
	fs := openTestFS(t)

	// Fabricate the post-crash DFS state directly: a partial tmp upload.
	tmp := segmentPath("/tier", "feed", 0, 0, 99) + ".tmp"
	if err := fs.WriteFile(tmp, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	p, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range fs.List(SegmentsPrefix("/tier", "feed")) {
		if strings.HasSuffix(info.Path, ".tmp") {
			t.Fatalf("tmp file survived recovery sweep: %s", info.Path)
		}
	}
	if _, err := p.Offload(l, l.NextOffset()); err != nil {
		t.Fatal(err)
	}
	assertContiguous(t, fs, p)
}

// TestZombieLeaderFenced proves a stale engine (the old leader, paused
// through a hand-over) cannot regress the manifest a newer leader has been
// committing to: its next commit observes the newer sequence and aborts
// with ErrConflict, and its uploaded segment is withdrawn.
func TestZombieLeaderFenced(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	lOld := openTestLog(t, dirA, 300)
	defer lOld.Close()
	fs := openTestFS(t)

	zombie, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The new leader (same offsets replicated to its own log) offloads
	// everything first.
	lNew := openTestLog(t, dirB, 300)
	defer lNew.Close()
	fresh, err := Open(fs, "feed", 0, Config{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Offload(lNew, lNew.NextOffset()); err != nil {
		t.Fatal(err)
	}
	// The zombie wakes up holding a stale (empty) manifest and tries to
	// offload the same range.
	if _, err := zombie.Offload(lOld, lOld.NextOffset()); !errors.Is(err, ErrConflict) {
		t.Fatalf("zombie offload error = %v, want ErrConflict", err)
	}
	assertContiguous(t, fs, fresh)
	// The fence must leave the winner's committed files untouched: a
	// conflicted writer may no longer own the file at its upload path
	// (the winner can have swept and re-uploaded the same range), so the
	// conflict path never deletes it.
	for _, s := range fresh.manifest().Segments {
		if _, err := fs.Stat(s.Path); err != nil {
			t.Fatalf("winner's committed segment %s gone after zombie conflict: %v", s.Path, err)
		}
	}
}

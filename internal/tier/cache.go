package tier

import (
	"container/list"
	"sort"

	"repro/internal/metrics"
)

// DefaultCacheBytes sizes the cold-reader LRU when the broker does not
// override it.
const DefaultCacheBytes = 64 << 20

// segReader is one hydrated cold segment: the records re-encoded as wire
// record batches (so the fetch path serves them byte-compatible with hot
// reads) plus a dense per-batch offset index. Immutable once built.
type segReader struct {
	path       string
	base, last int64
	data       []byte // concatenated encoded batches
	index      []batchIdx
}

// batchIdx locates one batch inside a segReader's data.
type batchIdx struct {
	firstOffset int64
	lastOffset  int64
	pos         int
	length      int
}

// footprint is the reader's cache charge.
func (s *segReader) footprint() int64 {
	return int64(len(s.data)) + int64(len(s.index))*32 + 128
}

// read returns whole batches starting at the batch containing offset, up to
// maxBytes (always at least one batch). It returns nil when offset is past
// the segment's last offset.
func (s *segReader) read(offset int64, maxBytes int) []byte {
	if offset > s.last {
		return nil
	}
	// First batch whose last offset is at or beyond the wanted offset.
	i := sort.Search(len(s.index), func(i int) bool {
		return s.index[i].lastOffset >= offset
	})
	if i == len(s.index) {
		return nil
	}
	start := s.index[i].pos
	end := start + s.index[i].length
	for j := i + 1; j < len(s.index); j++ {
		if end-start+s.index[j].length > maxBytes {
			break
		}
		end += s.index[j].length
	}
	return s.data[start:end]
}

// Cache is a bounded LRU of hydrated cold-segment readers, shared by every
// tiered partition a broker serves. It is the cold tier's page cache: a hit
// serves from broker memory, a miss pays the DFS read (and the modeled
// page-cache penalty) to hydrate. Loads are deduplicated so concurrent
// fetches of one segment hydrate it once.
type Cache struct {
	capacity int64
	reg      *metrics.Registry

	mu      chanMutex
	entries map[string]*cacheEntry
	lru     *list.List // front = most recent; values are *cacheEntry
	used    int64
}

// cacheEntry holds one (possibly still loading) reader.
type cacheEntry struct {
	path  string
	ready chan struct{} // closed once r/err are set
	r     *segReader
	err   error
	elem  *list.Element
}

// chanMutex is a channel-based mutex so loads can release it around DFS I/O.
type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// NewCache builds a cold-reader cache with the given byte capacity
// (DefaultCacheBytes when <= 0). The registry receives hit/miss/eviction
// counters; nil creates a private one.
func NewCache(capacityBytes int64, reg *metrics.Registry) *Cache {
	if capacityBytes <= 0 {
		capacityBytes = DefaultCacheBytes
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Cache{
		capacity: capacityBytes,
		reg:      reg,
		mu:       make(chanMutex, 1),
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
	}
}

// get returns the hydrated reader for a segment path, loading it with load
// on a miss. Concurrent gets for one path share a single load.
func (c *Cache) get(path string, load func() (*segReader, error)) (*segReader, error) {
	c.mu.lock()
	if e, ok := c.entries[path]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		c.reg.Counter("tier.cache.hit").Inc()
		return e.r, nil
	}
	e := &cacheEntry{path: path, ready: make(chan struct{})}
	c.entries[path] = e
	c.mu.unlock()

	c.reg.Counter("tier.cache.miss").Inc()
	r, err := load()
	c.mu.lock()
	e.r, e.err = r, err
	close(e.ready)
	if err != nil {
		delete(c.entries, path) // a failed load is retryable
		c.mu.unlock()
		return nil, err
	}
	e.elem = c.lru.PushFront(e)
	c.used += r.footprint()
	c.evictLocked()
	c.mu.unlock()
	return r, nil
}

// evictLocked drops least-recently-used readers until within capacity,
// always keeping the most recent one so a segment larger than the whole
// cache can still be served.
func (c *Cache) evictLocked() {
	for c.used > c.capacity && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.path)
		c.used -= e.r.footprint()
		c.reg.Counter("tier.cache.evict").Inc()
	}
}

// invalidate drops a segment (deleted by total retention) from the cache.
func (c *Cache) invalidate(path string) {
	c.mu.lock()
	defer c.mu.unlock()
	e, ok := c.entries[path]
	if !ok || e.elem == nil {
		return
	}
	c.lru.Remove(e.elem)
	delete(c.entries, path)
	c.used -= e.r.footprint()
}

// Stats reports the cache's current occupancy.
func (c *Cache) Stats() (readers int, bytes int64) {
	c.mu.lock()
	defer c.mu.unlock()
	return c.lru.Len(), c.used
}

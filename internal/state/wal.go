package state

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write-ahead log for the persistent store's memtable. Each record is:
//
//	crc     uint32  // CRC32-C over everything after this field
//	op      uint8   // 0 = put, 1 = delete
//	keyLen  uint32
//	key     bytes
//	valLen  uint32  // present only for put
//	value   bytes
//
// A torn tail (crash mid-write) is detected by CRC or short read and
// truncated on replay, like the commit log's recovery path.

const (
	walOpPut    = 0
	walOpDelete = 1
)

var walTable = crc32.MakeTable(crc32.Castagnoli)

// wal is an append-only intent log.
type wal struct {
	f    *os.File
	path string
	size int64
}

// openWAL opens or creates the WAL file.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("state: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, size: st.Size()}, nil
}

// appendRecord writes one operation.
func (w *wal) appendRecord(op byte, key, value []byte) error {
	body := make([]byte, 0, 1+4+len(key)+4+len(value))
	body = append(body, op)
	body = binary.BigEndian.AppendUint32(body, uint32(len(key)))
	body = append(body, key...)
	if op == walOpPut {
		body = binary.BigEndian.AppendUint32(body, uint32(len(value)))
		body = append(body, value...)
	}
	buf := make([]byte, 0, 4+len(body))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(body, walTable))
	buf = append(buf, body...)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("state: wal append: %w", err)
	}
	w.size += int64(len(buf))
	return nil
}

// replay streams valid records to fn, truncating a torn tail in place.
func (w *wal) replay(fn func(op byte, key, value []byte)) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return err
	}
	pos := 0
	valid := 0
	for pos < len(data) {
		rec, n, ok := parseWALRecord(data[pos:])
		if !ok {
			break
		}
		fn(rec.op, rec.key, rec.value)
		pos += n
		valid = pos
	}
	if valid < len(data) {
		if err := w.f.Truncate(int64(valid)); err != nil {
			return err
		}
		w.size = int64(valid)
	}
	_, err = w.f.Seek(w.size, io.SeekStart)
	return err
}

type walRecord struct {
	op         byte
	key, value []byte
}

// parseWALRecord decodes one record, reporting ok=false for short or
// corrupt data.
func parseWALRecord(b []byte) (walRecord, int, bool) {
	if len(b) < 4+1+4 {
		return walRecord{}, 0, false
	}
	wantCRC := binary.BigEndian.Uint32(b)
	pos := 4
	op := b[pos]
	if op != walOpPut && op != walOpDelete {
		return walRecord{}, 0, false
	}
	pos++
	keyLen := int(binary.BigEndian.Uint32(b[pos:]))
	pos += 4
	if keyLen < 0 || pos+keyLen > len(b) {
		return walRecord{}, 0, false
	}
	key := b[pos : pos+keyLen]
	pos += keyLen
	var value []byte
	if op == walOpPut {
		if pos+4 > len(b) {
			return walRecord{}, 0, false
		}
		valLen := int(binary.BigEndian.Uint32(b[pos:]))
		pos += 4
		if valLen < 0 || pos+valLen > len(b) {
			return walRecord{}, 0, false
		}
		value = b[pos : pos+valLen]
		pos += valLen
	}
	if crc32.Checksum(b[4:pos], walTable) != wantCRC {
		return walRecord{}, 0, false
	}
	out := walRecord{op: op}
	out.key = append([]byte(nil), key...)
	if op == walOpPut {
		out.value = append([]byte(nil), value...)
	}
	return out, pos, true
}

// reset truncates the WAL to empty (after a memtable flush).
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	return nil
}

// sync fsyncs the WAL.
func (w *wal) sync() error { return w.f.Sync() }

// close closes the file.
func (w *wal) close() error { return w.f.Close() }

package state

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// KVConfig parameterises the persistent store.
type KVConfig struct {
	// MemtableEntries is the flush threshold: once the memtable holds
	// this many entries it is written out as a sorted run.
	MemtableEntries int
	// MaxRuns triggers a full merge once exceeded.
	MaxRuns int
	// SyncWAL fsyncs the write-ahead log on every write (durable but
	// slow); off by default, matching the processing layer's stance that
	// the changelog — not local disk — is the recovery source of truth.
	SyncWAL bool
}

func (c KVConfig) withDefaults() KVConfig {
	if c.MemtableEntries == 0 {
		c.MemtableEntries = 16 * 1024
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 4
	}
	return c
}

// KV is a persistent log-structured store: writes land in a WAL-backed
// memtable, which flushes to immutable sorted runs; reads consult the
// memtable then runs newest-first; a background-free merge compacts runs
// when they pile up. It stands in for RocksDB as the off-heap local state
// of the processing layer (paper §4.4).
type KV struct {
	dir string
	cfg KVConfig

	mu       sync.RWMutex
	mem      map[string]memEntry
	runs     []*run // oldest first
	wal      *wal
	nextRun  int
	closed   bool
	liveKeys int
}

type memEntry struct {
	value     []byte
	tombstone bool
}

// OpenKV opens or creates a persistent store in dir, replaying the WAL.
func OpenKV(dir string, cfg KVConfig) (*KV, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	kv := &KV{dir: dir, cfg: cfg, mem: make(map[string]memEntry)}

	// Load runs in file order (ascending run number = oldest first).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var runNums []int
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, runSuffix) {
			if n, err := strconv.Atoi(strings.TrimSuffix(name, runSuffix)); err == nil {
				runNums = append(runNums, n)
			}
		}
	}
	sort.Ints(runNums)
	for _, n := range runNums {
		r, err := openRun(runPath(dir, n))
		if err != nil {
			return nil, err
		}
		kv.runs = append(kv.runs, r)
		if n >= kv.nextRun {
			kv.nextRun = n + 1
		}
	}

	w, err := openWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	kv.wal = w
	err = w.replay(func(op byte, key, value []byte) {
		if op == walOpPut {
			kv.mem[string(key)] = memEntry{value: value}
		} else {
			kv.mem[string(key)] = memEntry{tombstone: true}
		}
	})
	if err != nil {
		w.close()
		return nil, err
	}
	kv.recountLive()
	return kv, nil
}

// recountLive recomputes the live key count (open-time only).
func (kv *KV) recountLive() {
	seen := make(map[string]bool)
	n := 0
	if kv.cfg.MaxRuns > 0 {
		for key, e := range kv.mem {
			seen[key] = true
			if !e.tombstone {
				n++
			}
		}
		for i := len(kv.runs) - 1; i >= 0; i-- {
			for _, e := range kv.runs[i].entries {
				k := string(e.key)
				if seen[k] {
					continue
				}
				seen[k] = true
				if e.value != nil {
					n++
				}
			}
		}
	}
	kv.liveKeys = n
}

// Get implements Store.
func (kv *KV) Get(key []byte) ([]byte, bool, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if kv.closed {
		return nil, false, ErrClosed
	}
	if e, ok := kv.mem[string(key)]; ok {
		if e.tombstone {
			return nil, false, nil
		}
		return append([]byte(nil), e.value...), true, nil
	}
	for i := len(kv.runs) - 1; i >= 0; i-- {
		if v, ok := kv.runs[i].get(key); ok {
			if v == nil {
				return nil, false, nil // tombstone
			}
			return append([]byte(nil), v...), true, nil
		}
	}
	return nil, false, nil
}

// Put implements Store.
func (kv *KV) Put(key, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	if err := kv.wal.appendRecord(walOpPut, key, value); err != nil {
		return err
	}
	if kv.cfg.SyncWAL {
		if err := kv.wal.sync(); err != nil {
			return err
		}
	}
	prev, existed := kv.lookupLocked(key)
	if !existed || prev == nil {
		kv.liveKeys++
	}
	kv.mem[string(key)] = memEntry{value: append([]byte(nil), value...)}
	return kv.maybeFlushLocked()
}

// Delete implements Store.
func (kv *KV) Delete(key []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	if err := kv.wal.appendRecord(walOpDelete, key, nil); err != nil {
		return err
	}
	if kv.cfg.SyncWAL {
		if err := kv.wal.sync(); err != nil {
			return err
		}
	}
	if prev, existed := kv.lookupLocked(key); existed && prev != nil {
		kv.liveKeys--
	}
	kv.mem[string(key)] = memEntry{tombstone: true}
	return kv.maybeFlushLocked()
}

// lookupLocked resolves a key through memtable and runs; value nil means
// tombstone or absent.
func (kv *KV) lookupLocked(key []byte) ([]byte, bool) {
	if e, ok := kv.mem[string(key)]; ok {
		if e.tombstone {
			return nil, true
		}
		return e.value, true
	}
	for i := len(kv.runs) - 1; i >= 0; i-- {
		if v, ok := kv.runs[i].get(key); ok {
			return v, true
		}
	}
	return nil, false
}

// maybeFlushLocked flushes the memtable to a run and merges runs when they
// pile up.
func (kv *KV) maybeFlushLocked() error {
	if len(kv.mem) < kv.cfg.MemtableEntries {
		return nil
	}
	if err := kv.flushLocked(); err != nil {
		return err
	}
	if len(kv.runs) > kv.cfg.MaxRuns {
		return kv.mergeLocked()
	}
	return nil
}

// flushLocked writes the memtable as a new sorted run and resets the WAL.
func (kv *KV) flushLocked() error {
	if len(kv.mem) == 0 {
		return nil
	}
	entries := make([]entry, 0, len(kv.mem))
	for k, e := range kv.mem {
		if e.tombstone {
			entries = append(entries, entry{key: []byte(k), value: nil})
		} else {
			entries = append(entries, entry{key: []byte(k), value: e.value})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return compareEntries(entries[i], entries[j]) < 0 })
	r, err := writeRun(runPath(kv.dir, kv.nextRun), entries)
	if err != nil {
		return err
	}
	kv.nextRun++
	kv.runs = append(kv.runs, r)
	kv.mem = make(map[string]memEntry)
	return kv.wal.reset()
}

// mergeLocked merges all runs into one, dropping shadowed entries and —
// since nothing older remains — tombstones.
func (kv *KV) mergeLocked() error {
	latest := make(map[string][]byte) // nil value = tombstone
	var order []string
	for _, r := range kv.runs { // oldest -> newest: later wins
		for _, e := range r.entries {
			k := string(e.key)
			if _, seen := latest[k]; !seen {
				order = append(order, k)
			}
			latest[k] = e.value
		}
	}
	sort.Strings(order)
	merged := make([]entry, 0, len(order))
	for _, k := range order {
		if v := latest[k]; v != nil {
			merged = append(merged, entry{key: []byte(k), value: v})
		}
	}
	r, err := writeRun(runPath(kv.dir, kv.nextRun), merged)
	if err != nil {
		return err
	}
	kv.nextRun++
	old := kv.runs
	kv.runs = []*run{r}
	for _, o := range old {
		o.remove()
	}
	return nil
}

// Range implements Store.
func (kv *KV) Range(from, to []byte, fn func(key, value []byte) bool) error {
	kv.mu.RLock()
	if kv.closed {
		kv.mu.RUnlock()
		return ErrClosed
	}
	// Build a merged snapshot view (newest wins).
	latest := make(map[string][]byte)
	for _, r := range kv.runs {
		for _, e := range r.entries {
			latest[string(e.key)] = e.value
		}
	}
	for k, e := range kv.mem {
		if e.tombstone {
			latest[k] = nil
		} else {
			latest[k] = e.value
		}
	}
	keys := make([]string, 0, len(latest))
	for k, v := range latest {
		if v == nil {
			continue
		}
		if from != nil && k < string(from) {
			continue
		}
		if to != nil && k >= string(to) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kvPair struct{ k, v []byte }
	snapshot := make([]kvPair, 0, len(keys))
	for _, k := range keys {
		snapshot = append(snapshot, kvPair{k: []byte(k), v: append([]byte(nil), latest[k]...)})
	}
	kv.mu.RUnlock()
	for _, e := range snapshot {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Len implements Store.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.liveKeys
}

// Flush forces the memtable to disk; primarily for tests and shutdown.
func (kv *KV) Flush() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return ErrClosed
	}
	return kv.flushLocked()
}

// RunCount reports how many sorted runs exist (introspection for tests).
func (kv *KV) RunCount() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.runs)
}

// Close flushes and closes the store.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	var first error
	if err := kv.wal.sync(); err != nil {
		first = err
	}
	if err := kv.wal.close(); err != nil && first == nil {
		first = err
	}
	for _, r := range kv.runs {
		r.release()
	}
	return first
}

// ---------------------------------------------------------------- runs

const runSuffix = ".run"

func runPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%06d%s", n, runSuffix))
}

// run is one immutable sorted file, fully resident in memory. Format:
//
//	count   uint32
//	crc     uint32  // over all entry bytes
//	entries { keyLen uint32, key, valLen uint32 (0xFFFFFFFF = tombstone), value }*
type run struct {
	path    string
	entries []entry
}

// writeRun persists sorted entries as a run file.
func writeRun(path string, entries []entry) (*run, error) {
	var body []byte
	for _, e := range entries {
		body = binary.BigEndian.AppendUint32(body, uint32(len(e.key)))
		body = append(body, e.key...)
		if e.value == nil {
			body = binary.BigEndian.AppendUint32(body, 0xFFFFFFFF)
		} else {
			body = binary.BigEndian.AppendUint32(body, uint32(len(e.value)))
			body = append(body, e.value...)
		}
	}
	buf := make([]byte, 0, 8+len(body))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(body, walTable))
	buf = append(buf, body...)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	return &run{path: path, entries: entries}, nil
}

// writeFileSync writes data to path and fsyncs it before returning. Run
// files are renamed into place and then trusted as durable (the WAL records
// that cover them are dropped), so a torn run after a crash would lose data.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openRun loads a run file, validating its checksum.
func openRun(path string) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("state: run %s truncated", path)
	}
	count := int(binary.BigEndian.Uint32(data))
	wantCRC := binary.BigEndian.Uint32(data[4:])
	body := data[8:]
	if crc32.Checksum(body, walTable) != wantCRC {
		return nil, fmt.Errorf("state: run %s corrupt", path)
	}
	entries := make([]entry, 0, count)
	pos := 0
	for i := 0; i < count; i++ {
		if pos+4 > len(body) {
			return nil, fmt.Errorf("state: run %s short", path)
		}
		kl := int(binary.BigEndian.Uint32(body[pos:]))
		pos += 4
		if pos+kl+4 > len(body) {
			return nil, fmt.Errorf("state: run %s short", path)
		}
		key := append([]byte(nil), body[pos:pos+kl]...)
		pos += kl
		vl := binary.BigEndian.Uint32(body[pos:])
		pos += 4
		var value []byte
		if vl != 0xFFFFFFFF {
			if pos+int(vl) > len(body) {
				return nil, fmt.Errorf("state: run %s short", path)
			}
			value = append([]byte(nil), body[pos:pos+int(vl)]...)
			pos += int(vl)
		}
		entries = append(entries, entry{key: key, value: value})
	}
	return &run{path: path, entries: entries}, nil
}

// get binary-searches the run. ok distinguishes "present (maybe
// tombstone)" from "absent".
func (r *run) get(key []byte) ([]byte, bool) {
	i := sort.Search(len(r.entries), func(i int) bool {
		return compareEntries(r.entries[i], entry{key: key}) >= 0
	})
	if i < len(r.entries) && string(r.entries[i].key) == string(key) {
		return r.entries[i].value, true
	}
	return nil, false
}

// remove deletes the run file.
func (r *run) remove() {
	os.Remove(r.path)
	r.entries = nil
}

// release drops in-memory entries without deleting the file.
func (r *run) release() { r.entries = nil }

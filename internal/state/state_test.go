package state

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storeImpls runs a subtest against every Store implementation.
func storeImpls(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		s := NewMem()
		defer s.Close()
		fn(t, s)
	})
	t.Run("kv", func(t *testing.T) {
		s, err := OpenKV(t.TempDir(), KVConfig{MemtableEntries: 64, MaxRuns: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fn(t, s)
	})
}

func TestPutGetDelete(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if err := s.Put([]byte("a"), []byte("1")); err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.Get([]byte("a"))
		if err != nil || !ok || string(v) != "1" {
			t.Fatalf("Get = %q %v %v", v, ok, err)
		}
		if err := s.Put([]byte("a"), []byte("2")); err != nil {
			t.Fatal(err)
		}
		v, _, _ = s.Get([]byte("a"))
		if string(v) != "2" {
			t.Fatalf("overwrite failed: %q", v)
		}
		if err := s.Delete([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := s.Get([]byte("a")); ok {
			t.Fatal("deleted key still present")
		}
		// Deleting absent keys is a no-op.
		if err := s.Delete([]byte("never")); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGetAbsent(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		v, ok, err := s.Get([]byte("ghost"))
		if err != nil || ok || v != nil {
			t.Fatalf("absent Get = %q %v %v", v, ok, err)
		}
	})
}

func TestLenTracksLiveKeys(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for i := 0; i < 100; i++ {
			s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
		}
		if got := s.Len(); got != 100 {
			t.Fatalf("Len = %d, want 100", got)
		}
		s.Put([]byte("k000"), []byte("v2")) // overwrite: no growth
		if got := s.Len(); got != 100 {
			t.Fatalf("Len after overwrite = %d", got)
		}
		for i := 0; i < 40; i++ {
			s.Delete([]byte(fmt.Sprintf("k%03d", i)))
		}
		if got := s.Len(); got != 60 {
			t.Fatalf("Len after deletes = %d, want 60", got)
		}
	})
}

func TestRangeOrderedAndBounded(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for _, k := range []string{"d", "b", "a", "c", "e"} {
			s.Put([]byte(k), []byte("v-"+k))
		}
		var got []string
		s.Range(nil, nil, func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		want := []string{"a", "b", "c", "d", "e"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("Range = %v", got)
		}
		// Bounded [b, d).
		got = nil
		s.Range([]byte("b"), []byte("d"), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		if fmt.Sprint(got) != fmt.Sprint([]string{"b", "c"}) {
			t.Fatalf("bounded Range = %v", got)
		}
		// Early stop.
		got = nil
		s.Range(nil, nil, func(k, v []byte) bool {
			got = append(got, string(k))
			return len(got) < 2
		})
		if len(got) != 2 {
			t.Fatalf("early stop = %v", got)
		}
	})
}

func TestValueIsolation(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		v := []byte("orig")
		s.Put([]byte("k"), v)
		v[0] = 'X'
		got, _, _ := s.Get([]byte("k"))
		if string(got) != "orig" {
			t.Fatalf("store shares caller buffer: %q", got)
		}
		got[0] = 'Y'
		got2, _, _ := s.Get([]byte("k"))
		if string(got2) != "orig" {
			t.Fatalf("store shares returned buffer: %q", got2)
		}
	})
}

func TestClosedStoreErrors(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		s.Close()
		if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Put on closed: %v", err)
		}
		if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Get on closed: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestKVFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenKV(dir, KVConfig{MemtableEntries: 32, MaxRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		kv.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 100; i++ {
		kv.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenKV(dir, KVConfig{MemtableEntries: 32, MaxRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if got := kv2.Len(); got != 400 {
		t.Fatalf("Len after reopen = %d, want 400", got)
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := kv2.Get([]byte(fmt.Sprintf("k%04d", i))); ok {
			t.Fatalf("deleted key k%04d resurrected", i)
		}
	}
	for i := 100; i < 500; i++ {
		v, ok, _ := kv2.Get([]byte(fmt.Sprintf("k%04d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%04d = %q %v", i, v, ok)
		}
	}
}

func TestKVWALReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenKV(dir, KVConfig{MemtableEntries: 1 << 20}) // never flush
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		kv.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	kv.Delete([]byte("k7"))
	// Simulate a crash: do NOT close (no flush); reopen replays the WAL.
	kv.wal.f.Sync()

	kv2, err := OpenKV(dir, KVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if _, ok, _ := kv2.Get([]byte("k7")); ok {
		t.Fatal("deleted key survived WAL replay")
	}
	v, ok, _ := kv2.Get([]byte("k42"))
	if !ok || string(v) != "v42" {
		t.Fatalf("k42 = %q %v", v, ok)
	}
}

func TestKVWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	kv, _ := OpenKV(dir, KVConfig{MemtableEntries: 1 << 20})
	for i := 0; i < 20; i++ {
		kv.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	kv.wal.f.Sync()
	// Append garbage to the WAL, as a torn write would leave.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3, 4, 5})
	f.Close()

	kv2, err := OpenKV(dir, KVConfig{})
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer kv2.Close()
	if got := kv2.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	// New writes continue cleanly.
	if err := kv2.Put([]byte("new"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestKVMergeCompactsRuns(t *testing.T) {
	kv, err := OpenKV(t.TempDir(), KVConfig{MemtableEntries: 16, MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Hammer a small key space so runs contain many shadowed versions.
	for i := 0; i < 600; i++ {
		kv.Put([]byte(fmt.Sprintf("k%d", i%8)), []byte(fmt.Sprintf("v%d", i)))
	}
	if got := kv.RunCount(); got > 3 {
		t.Fatalf("RunCount = %d, merge not keeping up", got)
	}
	if got := kv.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		if _, ok, _ := kv.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("k%d missing after merges", i)
		}
	}
}

func TestKVMergeDropsTombstones(t *testing.T) {
	kv, err := OpenKV(t.TempDir(), KVConfig{MemtableEntries: 8, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for i := 0; i < 64; i++ {
		kv.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	for i := 0; i < 64; i++ {
		kv.Delete([]byte(fmt.Sprintf("k%d", i)))
	}
	kv.Flush()
	kv.mu.Lock()
	kv.mergeLocked()
	total := 0
	for _, r := range kv.runs {
		total += len(r.entries)
	}
	kv.mu.Unlock()
	if total != 0 {
		t.Fatalf("merged run holds %d entries, want 0 (tombstones dropped)", total)
	}
}

// TestQuickStoreMatchesModel property-checks both stores against a plain
// map over random operation sequences.
func TestQuickStoreMatchesModel(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		dir, err := os.MkdirTemp("", "kvq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		kv, err := OpenKV(dir, KVConfig{MemtableEntries: 8, MaxRuns: 2})
		if err != nil {
			return false
		}
		defer kv.Close()
		mem := NewMem()
		defer mem.Close()
		model := make(map[string]string)

		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			key := []byte(fmt.Sprintf("k%d", rng.Intn(16)))
			switch op % 3 {
			case 0, 1:
				val := []byte(fmt.Sprintf("v%d", rng.Int()))
				if kv.Put(key, val) != nil || mem.Put(key, val) != nil {
					return false
				}
				model[string(key)] = string(val)
			case 2:
				if kv.Delete(key) != nil || mem.Delete(key) != nil {
					return false
				}
				delete(model, string(key))
			}
		}
		// Every key agrees across model, MemStore and KV.
		for i := 0; i < 16; i++ {
			key := []byte(fmt.Sprintf("k%d", i))
			want, wantOK := model[string(key)]
			for _, s := range []Store{kv, mem} {
				got, ok, err := s.Get(key)
				if err != nil || ok != wantOK || (ok && string(got) != want) {
					return false
				}
			}
		}
		if kv.Len() != len(model) || mem.Len() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBinarySearch(t *testing.T) {
	entries := []entry{
		{key: []byte("a"), value: []byte("1")},
		{key: []byte("c"), value: nil}, // tombstone
		{key: []byte("e"), value: []byte("5")},
	}
	r, err := writeRun(filepath.Join(t.TempDir(), "000001.run"), entries)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("get a = %q %v", v, ok)
	}
	if v, ok := r.get([]byte("c")); !ok || v != nil {
		t.Fatalf("tombstone = %q %v", v, ok)
	}
	if _, ok := r.get([]byte("b")); ok {
		t.Fatal("absent key found")
	}
}

func TestRunCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "000001.run")
	_, err := writeRun(path, []entry{{key: []byte("k"), value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := openRun(path); err == nil {
		t.Fatal("corrupt run accepted")
	}
}

func TestLargeValuesRoundTrip(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		big := bytes.Repeat([]byte("x"), 1<<16)
		if err := s.Put([]byte("big"), big); err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.Get([]byte("big"))
		if err != nil || !ok || !bytes.Equal(v, big) {
			t.Fatalf("big value mismatch: %d bytes, ok=%v err=%v", len(v), ok, err)
		}
	})
}

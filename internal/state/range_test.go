package state

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestKVRangeAcrossRunsAndMemtable pins the merged-view semantics Range
// must provide when the latest state of the keyspace is spread over several
// sorted runs plus the live memtable, with tombstones interleaved at every
// level: newest layer wins, tombstones hide older values (including
// run-resident ones), and a re-put after a flushed delete resurrects the
// key. The table materializer's scan path (TableRange) depends on exactly
// this.
func TestKVRangeAcrossRunsAndMemtable(t *testing.T) {
	kv, err := OpenKV(t.TempDir(), KVConfig{MemtableEntries: 1 << 20, MaxRuns: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }

	// Run 1: keys 0..59 at v1.
	for i := 0; i < 60; i++ {
		if err := kv.Put(key(i), []byte(fmt.Sprintf("v1-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}

	// Run 2: overwrite every 3rd key to v2, tombstone every 5th.
	for i := 0; i < 60; i += 3 {
		if err := kv.Put(key(i), []byte(fmt.Sprintf("v2-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i += 5 {
		if err := kv.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}

	// Memtable (unflushed): overwrite every 7th key to v3, tombstone every
	// 11th, and resurrect key 10 (deleted in run 2) at v4.
	for i := 0; i < 60; i += 7 {
		if err := kv.Put(key(i), []byte(fmt.Sprintf("v3-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i += 11 {
		if err := kv.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Put(key(10), []byte("v4-010")); err != nil {
		t.Fatal(err)
	}

	if got := kv.RunCount(); got != 2 {
		t.Fatalf("RunCount = %d, want 2 (test must span multiple runs)", got)
	}

	// Model: replay the same layers on a plain map.
	model := make(map[string]string)
	for i := 0; i < 60; i++ {
		model[string(key(i))] = fmt.Sprintf("v1-%03d", i)
	}
	for i := 0; i < 60; i += 3 {
		model[string(key(i))] = fmt.Sprintf("v2-%03d", i)
	}
	for i := 0; i < 60; i += 5 {
		delete(model, string(key(i)))
	}
	for i := 0; i < 60; i += 7 {
		model[string(key(i))] = fmt.Sprintf("v3-%03d", i)
	}
	for i := 0; i < 60; i += 11 {
		delete(model, string(key(i)))
	}
	model[string(key(10))] = "v4-010"

	got := make(map[string]string)
	var prev string
	if err := kv.Range(nil, nil, func(k, v []byte) bool {
		if string(k) <= prev && prev != "" {
			t.Fatalf("Range out of order: %q after %q", k, prev)
		}
		prev = string(k)
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("Range saw %d keys, model has %d", len(got), len(model))
	}
	for k, want := range model {
		if got[k] != want {
			t.Fatalf("key %q = %q, want %q", k, got[k], want)
		}
	}

	// Point reads agree with the merged view (same layers, Get path).
	if v, ok, _ := kv.Get(key(10)); !ok || string(v) != "v4-010" {
		t.Fatalf("resurrected key = %q %v, want v4-010", v, ok)
	}
	if _, ok, _ := kv.Get(key(55)); ok {
		t.Fatal("key deleted in memtable (55 = 11*5) still visible")
	}
	if kv.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", kv.Len(), len(model))
	}
}

// TestStoreRangeConformance drives both Store implementations through the
// same randomized put/delete workload and asserts Range agrees with a map
// model on contents, order, bounds, and early stop — the conformance
// contract that lets the broker's table host treat the backing store as
// interchangeable.
func TestStoreRangeConformance(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		rng := rand.New(rand.NewSource(6))
		model := make(map[string]string)
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(300))
			if rng.Intn(4) == 0 {
				if err := s.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%06d", op)
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
			// Occasionally force the KV through its flush path so later
			// ranges cross run boundaries, not just the memtable.
			if kv, ok := s.(*KV); ok && op%500 == 499 {
				if err := kv.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}

		sorted := make([]string, 0, len(model))
		for k := range model {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)

		// Full scan: exact contents in ascending order.
		var keys []string
		if err := s.Range(nil, nil, func(k, v []byte) bool {
			keys = append(keys, string(k))
			if model[string(k)] != string(v) {
				t.Fatalf("key %q = %q, model %q", k, v, model[string(k)])
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(keys) != fmt.Sprint(sorted) {
			t.Fatalf("full Range = %d keys, model %d; first diff around %v", len(keys), len(sorted), keys)
		}

		// Bounded scans [from, to) at random cut points agree with the
		// model's slice of the sorted keyspace.
		for trial := 0; trial < 20; trial++ {
			from := fmt.Sprintf("key-%03d", rng.Intn(300))
			to := fmt.Sprintf("key-%03d", rng.Intn(300))
			var want []string
			for _, k := range sorted {
				if k >= from && k < to {
					want = append(want, k)
				}
			}
			var got []string
			if err := s.Range([]byte(from), []byte(to), func(k, v []byte) bool {
				got = append(got, string(k))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Range[%q,%q) = %v, want %v", from, to, got, want)
			}
		}

		// Early stop halts exactly where the callback says.
		var n int
		if err := s.Range(nil, nil, func(k, v []byte) bool {
			n++
			return n < 7
		}); err != nil {
			t.Fatal(err)
		}
		if want := 7; len(sorted) >= want && n != want {
			t.Fatalf("early stop visited %d keys, want %d", n, want)
		}
	})
}

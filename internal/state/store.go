// Package state provides the local state stores of the processing layer
// (paper §3.2 "stateful processing", §4.4): tasks keep state as arbitrary
// keyed data accessed locally for efficiency. Two implementations exist —
// an in-memory map store, and a persistent log-structured store (memtable +
// write-ahead log + sorted runs) standing in for RocksDB. Fault tolerance
// comes from the changelog mechanism in the processing layer, which
// replays keyed updates from the messaging layer.
package state

import (
	"bytes"
	"errors"
	"sort"
	"sync"
)

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("state: store closed")

// Store is keyed local state. Implementations are safe for concurrent use.
type Store interface {
	// Get returns the value for key, with found=false for absent keys.
	Get(key []byte) (value []byte, found bool, err error)
	// Put stores a value.
	Put(key, value []byte) error
	// Delete removes a key; deleting an absent key is a no-op.
	Delete(key []byte) error
	// Range calls fn over keys in [from, to) in ascending order; nil
	// bounds are open. fn returning false stops the scan.
	Range(from, to []byte, fn func(key, value []byte) bool) error
	// Len returns the number of live keys.
	Len() int
	// Close releases resources.
	Close() error
}

// MemStore is a sorted in-memory Store. The zero value is not usable; use
// NewMem.
type MemStore struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Get implements Store.
func (s *MemStore) Get(key []byte) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.m[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Put implements Store.
func (s *MemStore) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.m, string(key))
	return nil
}

// Range implements Store.
func (s *MemStore) Range(from, to []byte, fn func(key, value []byte) bool) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if from != nil && k < string(from) {
			continue
		}
		if to != nil && k >= string(to) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct{ k, v []byte }
	snapshot := make([]kv, 0, len(keys))
	for _, k := range keys {
		snapshot = append(snapshot, kv{k: []byte(k), v: append([]byte(nil), s.m[k]...)})
	}
	s.mu.RUnlock()
	for _, e := range snapshot {
		if !fn(e.k, e.v) {
			return nil
		}
	}
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.m = nil
	return nil
}

// entry is one key/value pair in a run; tombstones carry a nil value.
type entry struct {
	key   []byte
	value []byte // nil = tombstone
}

// compareEntries orders entries by key.
func compareEntries(a, b entry) int { return bytes.Compare(a.key, b.key) }

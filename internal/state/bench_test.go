package state

import (
	"fmt"
	"testing"
)

func benchKV(b *testing.B) *KV {
	b.Helper()
	kv, err := OpenKV(b.TempDir(), KVConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { kv.Close() })
	return kv
}

func BenchmarkKVPut(b *testing.B) {
	kv := benchKV(b)
	value := make([]byte, 128)
	b.ReportAllocs()
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%4096))
		if err := kv.Put(key, value); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVGet(b *testing.B) {
	kv := benchKV(b)
	value := make([]byte, 128)
	for i := 0; i < 4096; i++ {
		kv.Put([]byte(fmt.Sprintf("key-%d", i)), value)
	}
	kv.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%4096))
		if _, ok, err := kv.Get(key); err != nil || !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkMemStorePut(b *testing.B) {
	s := NewMem()
	defer s.Close()
	value := make([]byte, 128)
	b.ReportAllocs()
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%4096))
		if err := s.Put(key, value); err != nil {
			b.Fatal(err)
		}
	}
}

package workload

import (
	"testing"
)

func TestRUMDeterministicUnderSeed(t *testing.T) {
	g1 := NewRUM(RUMConfig{Seed: 7}, 1000)
	g2 := NewRUM(RUMConfig{Seed: 7}, 1000)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestRUMRoundTrip(t *testing.T) {
	g := NewRUM(RUMConfig{Seed: 1}, 0)
	e := g.Next()
	got, err := DecodeRUM(e.Encode())
	if err != nil || got != e {
		t.Fatalf("round trip: %+v vs %+v (%v)", got, e, err)
	}
}

func TestRUMSlowCDNIsSlower(t *testing.T) {
	g := NewRUM(RUMConfig{Seed: 3, SlowCDN: "cdn-beta", SlowFactor: 10}, 0)
	var slowSum, slowN, fastSum, fastN int64
	for i := 0; i < 5000; i++ {
		e := g.Next()
		if e.CDN == "cdn-beta" {
			slowSum += e.LoadMs
			slowN++
		} else {
			fastSum += e.LoadMs
			fastN++
		}
	}
	if slowN == 0 || fastN == 0 {
		t.Fatal("generator skipped a CDN")
	}
	slowAvg := slowSum / slowN
	fastAvg := fastSum / fastN
	if slowAvg < 5*fastAvg {
		t.Fatalf("slow CDN avg %dms vs others %dms: not degraded enough", slowAvg, fastAvg)
	}
}

func TestRUMTimestampsMonotone(t *testing.T) {
	g := NewRUM(RUMConfig{Seed: 9}, 500)
	last := int64(0)
	for i := 0; i < 1000; i++ {
		e := g.Next()
		if e.Timestamp < last {
			t.Fatal("timestamps went backwards")
		}
		last = e.Timestamp
	}
}

func TestCallGraphWellFormed(t *testing.T) {
	g := NewCallGraph(CallGraphConfig{Seed: 5}, 0)
	for i := 0; i < 100; i++ {
		trace := g.NextTrace()
		if len(trace) == 0 {
			t.Fatal("empty trace")
		}
		spans := map[int]bool{}
		roots := 0
		reqID := trace[0].RequestID
		for _, e := range trace {
			if e.RequestID != reqID {
				t.Fatal("mixed request ids within a trace")
			}
			if spans[e.SpanID] {
				t.Fatal("duplicate span id")
			}
			spans[e.SpanID] = true
			if e.ParentSpan == -1 {
				roots++
				if e.Service != "frontend" {
					t.Fatalf("root service = %s", e.Service)
				}
			}
		}
		if roots != 1 {
			t.Fatalf("trace has %d roots", roots)
		}
		// Every parent exists.
		for _, e := range trace {
			if e.ParentSpan >= 0 && !spans[e.ParentSpan] {
				t.Fatalf("orphan span %d (parent %d missing)", e.SpanID, e.ParentSpan)
			}
		}
	}
}

func TestCallGraphSlowService(t *testing.T) {
	g := NewCallGraph(CallGraphConfig{Seed: 2, SlowService: "ads-svc", FanOut: 3, MaxDepth: 4}, 0)
	var slowMin int64 = 1 << 62
	var fastMax int64
	found := false
	for i := 0; i < 500; i++ {
		for _, e := range g.NextTrace() {
			if e.Service == "ads-svc" {
				found = true
				if e.DurMs < slowMin {
					slowMin = e.DurMs
				}
			} else if e.DurMs > fastMax {
				fastMax = e.DurMs
			}
		}
	}
	if !found {
		t.Skip("ads-svc never sampled (tiny trace shapes)")
	}
	if slowMin <= fastMax {
		t.Fatalf("slow service min %dms <= fast max %dms", slowMin, fastMax)
	}
}

func TestCallEventRoundTrip(t *testing.T) {
	g := NewCallGraph(CallGraphConfig{Seed: 1}, 0)
	e := g.NextTrace()[0]
	got, err := DecodeCall(e.Encode())
	if err != nil || got != e {
		t.Fatalf("round trip: %+v vs %+v (%v)", got, e, err)
	}
}

func TestProfileZipfSkew(t *testing.T) {
	g := NewProfile(ProfileConfig{Seed: 11, Users: 1000}, 0)
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().UserID]++
	}
	// Zipf: the hottest user should account for a large share while the
	// key space touched is much smaller than n.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Fatalf("hottest user only %d/%d updates; zipf skew missing", max, n)
	}
	if len(counts) >= n/2 {
		t.Fatalf("%d distinct users for %d updates; no reuse", len(counts), n)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	g := NewProfile(ProfileConfig{Seed: 1}, 0)
	e := g.Next()
	got, err := DecodeProfile(e.Encode())
	if err != nil || got != e {
		t.Fatalf("round trip: %+v vs %+v (%v)", got, e, err)
	}
}

func TestMetricsSpikeHost(t *testing.T) {
	g := NewMetrics(MetricsConfig{Seed: 4, Hosts: 10, SpikeHost: "host-003"}, 0)
	var spikeMax, otherMax float64
	for i := 0; i < 20000; i++ {
		e := g.Next()
		if e.Name != "errors.rate" {
			continue
		}
		if e.Host == "host-003" {
			if e.Value > spikeMax {
				spikeMax = e.Value
			}
		} else if e.Value > otherMax {
			otherMax = e.Value
		}
	}
	if spikeMax < 50 {
		t.Fatalf("spike host error rate max %.1f, want >= 50", spikeMax)
	}
	if otherMax > 2 {
		t.Fatalf("healthy host error rate max %.1f, want <= 2", otherMax)
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	g := NewMetrics(MetricsConfig{Seed: 1}, 0)
	e := g.Next()
	got, err := DecodeMetric(e.Encode())
	if err != nil || got != e {
		t.Fatalf("round trip: %+v vs %+v (%v)", got, e, err)
	}
}

func TestMultiTenantDeterministicAndWeighted(t *testing.T) {
	cfg := MultiTenantConfig{
		Seed: 7,
		Tenants: []TenantSpec{
			{ID: "victim", Weight: 1, ValueBytes: 64},
			{ID: "aggr", Weight: 3, ValueBytes: 256},
		},
	}
	g1, g2 := NewMultiTenant(cfg), NewMultiTenant(cfg)
	const n = 4000
	for i := 0; i < n; i++ {
		e1, e2 := g1.Next(), g2.Next()
		if e1.Tenant != e2.Tenant || e1.Seq != e2.Seq || string(e1.Payload) != string(e2.Payload) {
			t.Fatalf("generators diverged at %d: %+v vs %+v", i, e1, e2)
		}
	}
	counts := g1.Counts()
	if counts["victim"]+counts["aggr"] != n {
		t.Fatalf("counts don't sum: %v", counts)
	}
	// 3:1 weighting: the aggressor should carry ~75% of events.
	share := float64(counts["aggr"]) / n
	if share < 0.70 || share > 0.80 {
		t.Fatalf("aggressor share = %.2f, want ~0.75 (%v)", share, counts)
	}
}

func TestMultiTenantSequencesDense(t *testing.T) {
	g := NewMultiTenant(MultiTenantConfig{Tenants: []TenantSpec{{ID: "a"}, {ID: "b"}}})
	next := map[string]int64{}
	for i := 0; i < 500; i++ {
		e := g.Next()
		if e.Seq != next[e.Tenant] {
			t.Fatalf("tenant %s seq %d, want dense %d", e.Tenant, e.Seq, next[e.Tenant])
		}
		next[e.Tenant]++
		if len(e.Payload) != 100 {
			t.Fatalf("default payload size = %d", len(e.Payload))
		}
	}
}

func TestMultiTenantDefaults(t *testing.T) {
	g := NewMultiTenant(MultiTenantConfig{})
	e := g.Next()
	if e.Tenant != "tenant-0" || len(e.Payload) != 100 {
		t.Fatalf("defaults broken: %+v", e)
	}
}

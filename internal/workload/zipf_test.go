package workload

import (
	"bytes"
	"testing"
)

func TestKeyGeneratorDeterministic(t *testing.T) {
	a := NewKeys(KeyConfig{Seed: 7, Keys: 1000, ZipfS: 1.2})
	b := NewKeys(KeyConfig{Seed: 7, Keys: 1000, ZipfS: 1.2})
	for i := 0; i < 10_000; i++ {
		ka, kb := a.Next(), b.Next()
		if !bytes.Equal(ka, kb) {
			t.Fatalf("draw %d diverged: %q vs %q", i, ka, kb)
		}
	}
	c := NewKeys(KeyConfig{Seed: 8, Keys: 1000, ZipfS: 1.2})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.NextIndex() == c.NextIndex() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestKeyGeneratorSkew sanity-checks the distribution shape: the hottest
// key must be drawn far more often than the uniform share, and draws must
// cover a nontrivial part of the population (a long tail, not a constant).
func TestKeyGeneratorSkew(t *testing.T) {
	const keys, draws = 10_000, 200_000
	g := NewKeys(KeyConfig{Seed: 42, Keys: keys, ZipfS: 1.1})
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[g.NextIndex()]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	uniform := draws / keys // 20 per key if uniform
	if top < 50*uniform {
		t.Fatalf("hottest key drawn %d times; want far above uniform share %d", top, uniform)
	}
	if len(counts) < keys/100 {
		t.Fatalf("only %d distinct keys drawn; tail too short", len(counts))
	}
	for idx := range counts {
		if idx < 0 || idx >= keys {
			t.Fatalf("index %d out of population [0,%d)", idx, keys)
		}
	}
}

func TestKeyGeneratorDefaults(t *testing.T) {
	g := NewKeys(KeyConfig{Seed: 1})
	if g.Keys() != 1_000_000 {
		t.Fatalf("default cardinality = %d", g.Keys())
	}
	k := g.Key(42)
	if string(k) != "key-00000042" {
		t.Fatalf("rendered key = %q", k)
	}
}

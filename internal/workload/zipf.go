package workload

import (
	"fmt"
	"math/rand"
)

// KeyConfig shapes a deterministic zipfian key generator: the shared key
// chooser of mixed read/write benches (E22) — point reads and writes must
// draw from the same skewed population for cache-like behaviour (a few hot
// keys dominate, a long tail is touched rarely), and a fixed seed makes a
// run reproducible.
type KeyConfig struct {
	Seed int64
	// Keys is the key cardinality (default 1_000_000).
	Keys int
	// ZipfS is the skew parameter (>1; default 1.1). Larger is more
	// skewed; values near 1 approach a heavy uniform tail.
	ZipfS float64
	// Prefix namespaces the rendered keys (default "key").
	Prefix string
}

func (c KeyConfig) withDefaults() KeyConfig {
	if c.Keys == 0 {
		c.Keys = 1_000_000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Prefix == "" {
		c.Prefix = "key"
	}
	return c
}

// KeyGenerator draws keys from a zipfian distribution over a fixed
// population. It is deterministic under a fixed seed and NOT safe for
// concurrent use; give each worker its own generator (same config,
// different seed) for concurrent load.
type KeyGenerator struct {
	cfg  KeyConfig
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewKeys creates a generator.
func NewKeys(cfg KeyConfig) *KeyGenerator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &KeyGenerator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1)),
	}
}

// Keys returns the key cardinality.
func (g *KeyGenerator) Keys() int { return g.cfg.Keys }

// NextIndex returns the next key index in [0, Keys).
func (g *KeyGenerator) NextIndex() int { return int(g.zipf.Uint64()) }

// Next returns the next key, rendered as "<prefix>-<index>" with a fixed
// width so lexicographic and numeric order agree.
func (g *KeyGenerator) Next() []byte {
	return g.Key(g.NextIndex())
}

// Key renders the key for one index.
func (g *KeyGenerator) Key(i int) []byte {
	return []byte(fmt.Sprintf("%s-%08d", g.cfg.Prefix, i))
}

// Package workload generates the synthetic input data of the paper's
// production use cases (§5.1): real-user-monitoring page-load events,
// REST call-graph traces, zipf-keyed user profile updates, and operational
// metrics. Generators are deterministic under a seed so experiments are
// reproducible, and their statistical shape (zipf key popularity, call
// fan-out, latency distributions) matches the narratives in the paper.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
)

// RUMEvent is a real-user-monitoring page-load event (§5.1 "site speed
// monitoring"): timestamp, page, load time, client region and serving CDN.
type RUMEvent struct {
	Timestamp int64  `json:"ts"` // ms since epoch
	Page      string `json:"page"`
	Region    string `json:"region"`
	CDN       string `json:"cdn"`
	LoadMs    int64  `json:"loadMs"`
	SessionID string `json:"session"`
}

// Encode marshals the event for the messaging layer.
func (e RUMEvent) Encode() []byte {
	b, _ := json.Marshal(e)
	return b
}

// DecodeRUM parses an encoded RUMEvent.
func DecodeRUM(b []byte) (RUMEvent, error) {
	var e RUMEvent
	err := json.Unmarshal(b, &e)
	return e, err
}

// Regions and CDNs used by the RUM generator.
var (
	Regions = []string{"us-east", "us-west", "eu-west", "eu-central", "ap-south", "ap-east"}
	CDNs    = []string{"cdn-alpha", "cdn-beta", "cdn-gamma"}
	Pages   = []string{"/feed", "/profile", "/jobs", "/messaging", "/search", "/notifications"}
)

// RUMConfig shapes the RUM generator.
type RUMConfig struct {
	Seed int64
	// BaseLoadMs is the median healthy load time (default 200).
	BaseLoadMs int64
	// SlowCDN, if non-empty, makes one CDN degrade: its load times are
	// multiplied by SlowFactor — the anomaly the paper's monitoring
	// pipeline detects and reroutes around.
	SlowCDN    string
	SlowFactor float64
	// Sessions is the session-id cardinality (default 1000).
	Sessions int
}

// RUMGenerator produces a deterministic RUM event stream.
type RUMGenerator struct {
	cfg RUMConfig
	rng *rand.Rand
	now int64
}

// NewRUM creates a generator starting at startMs.
func NewRUM(cfg RUMConfig, startMs int64) *RUMGenerator {
	if cfg.BaseLoadMs == 0 {
		cfg.BaseLoadMs = 200
	}
	if cfg.SlowFactor == 0 {
		cfg.SlowFactor = 5
	}
	if cfg.Sessions == 0 {
		cfg.Sessions = 1000
	}
	return &RUMGenerator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), now: startMs}
}

// Next returns the next event, advancing simulated time ~1ms per event.
func (g *RUMGenerator) Next() RUMEvent {
	g.now += int64(g.rng.Intn(3))
	cdn := CDNs[g.rng.Intn(len(CDNs))]
	// Log-normal-ish load time: base + exponential tail.
	load := g.cfg.BaseLoadMs + int64(g.rng.ExpFloat64()*float64(g.cfg.BaseLoadMs)/2)
	if cdn == g.cfg.SlowCDN {
		load = int64(float64(load) * g.cfg.SlowFactor)
	}
	return RUMEvent{
		Timestamp: g.now,
		Page:      Pages[g.rng.Intn(len(Pages))],
		Region:    Regions[g.rng.Intn(len(Regions))],
		CDN:       cdn,
		LoadMs:    load,
		SessionID: fmt.Sprintf("s-%d", g.rng.Intn(g.cfg.Sessions)),
	}
}

// TenantSpec declares one tenant of a multi-tenant workload (§3.2/§4.4
// "ETL-as-a-service": many teams share one nearline stack). Weight sets
// the tenant's share of the event stream; ValueBytes its payload size —
// a noisy neighbor is simply a tenant with a large weight and large
// payloads.
type TenantSpec struct {
	// ID is the tenant's principal (used as the client-id, so broker
	// quotas key on it).
	ID string
	// Weight is the tenant's relative share of generated events
	// (default 1).
	Weight float64
	// ValueBytes sizes the tenant's payloads (default 100).
	ValueBytes int
}

// TenantEvent is one tenant's produced record.
type TenantEvent struct {
	// Tenant is the generating tenant's ID.
	Tenant string
	// Seq is the tenant-local sequence number (dense per tenant, so
	// conservation checks can detect loss per principal).
	Seq int64
	// Payload is the deterministic value body.
	Payload []byte
}

// MultiTenantConfig shapes the multi-tenant generator.
type MultiTenantConfig struct {
	Seed int64
	// Tenants lists the sharing tenants; empty defaults to one "tenant-0".
	Tenants []TenantSpec
}

// MultiTenantGenerator interleaves the event streams of several tenants,
// weighted and deterministic under a seed. Benchmarks (E19) and tests use
// it to drive aggressor/victim mixes against broker quotas.
type MultiTenantGenerator struct {
	cfg    MultiTenantConfig
	rng    *rand.Rand
	cum    []float64 // cumulative weights for tenant selection
	total  float64
	seq    []int64
	counts map[string]int64
}

// NewMultiTenant creates a generator.
func NewMultiTenant(cfg MultiTenantConfig) *MultiTenantGenerator {
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []TenantSpec{{ID: "tenant-0"}}
	}
	for i := range cfg.Tenants {
		if cfg.Tenants[i].Weight <= 0 {
			cfg.Tenants[i].Weight = 1
		}
		if cfg.Tenants[i].ValueBytes <= 0 {
			cfg.Tenants[i].ValueBytes = 100
		}
	}
	g := &MultiTenantGenerator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		seq:    make([]int64, len(cfg.Tenants)),
		counts: make(map[string]int64, len(cfg.Tenants)),
	}
	for _, t := range cfg.Tenants {
		g.total += t.Weight
		g.cum = append(g.cum, g.total)
	}
	return g
}

// Next returns the next event: a weighted tenant pick with a dense
// per-tenant sequence and a deterministic payload of the tenant's size.
func (g *MultiTenantGenerator) Next() TenantEvent {
	x := g.rng.Float64() * g.total
	idx := 0
	for idx < len(g.cum)-1 && x >= g.cum[idx] {
		idx++
	}
	t := g.cfg.Tenants[idx]
	seq := g.seq[idx]
	g.seq[idx]++
	g.counts[t.ID]++
	payload := make([]byte, t.ValueBytes)
	header := fmt.Sprintf("%s/%08d/", t.ID, seq)
	copy(payload, header)
	for i := len(header); i < len(payload); i++ {
		payload[i] = byte('a' + (seq+int64(i))%26)
	}
	return TenantEvent{Tenant: t.ID, Seq: seq, Payload: payload}
}

// Counts returns how many events each tenant has generated so far.
func (g *MultiTenantGenerator) Counts() map[string]int64 {
	out := make(map[string]int64, len(g.counts))
	for k, v := range g.counts {
		out[k] = v
	}
	return out
}

// CallEvent is one REST call of a front-end request (§5.1 "call graph
// assembly"). All calls of one page view share a RequestID; ParentSpan
// links the tree.
type CallEvent struct {
	RequestID  string `json:"reqId"`
	SpanID     int    `json:"span"`
	ParentSpan int    `json:"parent"` // -1 for the root
	Service    string `json:"service"`
	DurMs      int64  `json:"durMs"`
	Timestamp  int64  `json:"ts"`
}

// Encode marshals the event.
func (e CallEvent) Encode() []byte {
	b, _ := json.Marshal(e)
	return b
}

// DecodeCall parses an encoded CallEvent.
func DecodeCall(b []byte) (CallEvent, error) {
	var e CallEvent
	err := json.Unmarshal(b, &e)
	return e, err
}

// Services in the call-graph generator.
var Services = []string{
	"frontend", "profile-svc", "feed-svc", "search-svc", "ads-svc",
	"graph-svc", "media-svc", "notif-svc",
}

// CallGraphConfig shapes the trace generator.
type CallGraphConfig struct {
	Seed int64
	// FanOut is the mean child calls per span (default 2).
	FanOut int
	// MaxDepth bounds the call tree (default 3).
	MaxDepth int
	// SlowService, if non-empty, gets pathological latencies — the slow
	// call the paper's pipeline pinpoints within seconds.
	SlowService string
}

// CallGraphGenerator produces whole request traces.
type CallGraphGenerator struct {
	cfg     CallGraphConfig
	rng     *rand.Rand
	nextReq int
	now     int64
}

// NewCallGraph creates a generator starting at startMs.
func NewCallGraph(cfg CallGraphConfig, startMs int64) *CallGraphGenerator {
	if cfg.FanOut == 0 {
		cfg.FanOut = 2
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 3
	}
	return &CallGraphGenerator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), now: startMs}
}

// NextTrace returns all call events of one request. Events arrive
// interleaved in production; callers may shuffle them.
func (g *CallGraphGenerator) NextTrace() []CallEvent {
	g.nextReq++
	g.now += int64(1 + g.rng.Intn(5))
	reqID := fmt.Sprintf("req-%08d", g.nextReq)
	var events []CallEvent
	span := 0
	var gen func(parent, depth int)
	gen = func(parent, depth int) {
		id := span
		span++
		svc := Services[g.rng.Intn(len(Services))]
		if parent == -1 {
			svc = "frontend"
		}
		dur := int64(1 + g.rng.Intn(20))
		if svc == g.cfg.SlowService {
			dur += 200 + int64(g.rng.Intn(300))
		}
		events = append(events, CallEvent{
			RequestID:  reqID,
			SpanID:     id,
			ParentSpan: parent,
			Service:    svc,
			DurMs:      dur,
			Timestamp:  g.now,
		})
		if depth >= g.cfg.MaxDepth {
			return
		}
		children := g.rng.Intn(g.cfg.FanOut + 1)
		for i := 0; i < children; i++ {
			gen(id, depth+1)
		}
	}
	gen(-1, 0)
	return events
}

// ProfileUpdate is a user-profile field change (§5.1 "data cleaning and
// normalization" and §4.2's motivating workload: only a small share of
// profiles change per period).
type ProfileUpdate struct {
	UserID string `json:"user"`
	Field  string `json:"field"`
	Value  string `json:"value"`
	Ts     int64  `json:"ts"`
}

// Encode marshals the update.
func (e ProfileUpdate) Encode() []byte {
	b, _ := json.Marshal(e)
	return b
}

// DecodeProfile parses an encoded ProfileUpdate.
func DecodeProfile(b []byte) (ProfileUpdate, error) {
	var e ProfileUpdate
	err := json.Unmarshal(b, &e)
	return e, err
}

// ProfileFields that updates touch.
var ProfileFields = []string{"headline", "position", "company", "location", "skills"}

// ProfileConfig shapes the update generator.
type ProfileConfig struct {
	Seed int64
	// Users is the user-id cardinality (default 10000).
	Users int
	// ZipfS is the skew parameter (>1; default 1.2): few users update
	// constantly, most rarely.
	ZipfS float64
}

// ProfileGenerator produces zipf-keyed profile updates.
type ProfileGenerator struct {
	cfg  ProfileConfig
	rng  *rand.Rand
	zipf *rand.Zipf
	now  int64
}

// NewProfile creates a generator starting at startMs.
func NewProfile(cfg ProfileConfig, startMs int64) *ProfileGenerator {
	if cfg.Users == 0 {
		cfg.Users = 10000
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &ProfileGenerator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-1)),
		now:  startMs,
	}
}

// Next returns the next update.
func (g *ProfileGenerator) Next() ProfileUpdate {
	g.now += int64(g.rng.Intn(4))
	field := ProfileFields[g.rng.Intn(len(ProfileFields))]
	return ProfileUpdate{
		UserID: fmt.Sprintf("user-%06d", g.zipf.Uint64()),
		Field:  field,
		Value:  fmt.Sprintf("%s-v%d", field, g.rng.Intn(1000)),
		Ts:     g.now,
	}
}

// MetricEvent is an operational metric sample (§5.1 "operational
// analysis"): host, metric name, value.
type MetricEvent struct {
	Host  string  `json:"host"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Ts    int64   `json:"ts"`
}

// Encode marshals the sample.
func (e MetricEvent) Encode() []byte {
	b, _ := json.Marshal(e)
	return b
}

// DecodeMetric parses an encoded MetricEvent.
func DecodeMetric(b []byte) (MetricEvent, error) {
	var e MetricEvent
	err := json.Unmarshal(b, &e)
	return e, err
}

// MetricNames emitted by the generator.
var MetricNames = []string{"cpu.util", "mem.used", "disk.io", "net.rx", "errors.rate"}

// MetricsConfig shapes the generator.
type MetricsConfig struct {
	Seed  int64
	Hosts int // default 50
	// SpikeHost, if non-empty, emits anomalous error rates for one host.
	SpikeHost string
}

// MetricsGenerator produces operational metric samples.
type MetricsGenerator struct {
	cfg MetricsConfig
	rng *rand.Rand
	now int64
}

// NewMetrics creates a generator starting at startMs.
func NewMetrics(cfg MetricsConfig, startMs int64) *MetricsGenerator {
	if cfg.Hosts == 0 {
		cfg.Hosts = 50
	}
	return &MetricsGenerator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), now: startMs}
}

// Next returns the next sample.
func (g *MetricsGenerator) Next() MetricEvent {
	g.now += int64(g.rng.Intn(3))
	host := fmt.Sprintf("host-%03d", g.rng.Intn(g.cfg.Hosts))
	name := MetricNames[g.rng.Intn(len(MetricNames))]
	value := g.rng.Float64() * 100
	if name == "errors.rate" {
		value = g.rng.Float64() * 2
		if host == g.cfg.SpikeHost {
			value = 50 + g.rng.Float64()*50
		}
	}
	return MetricEvent{Host: host, Name: name, Value: value, Ts: g.now}
}

// Package metrics provides a small, dependency-free metrics registry with
// counters, gauges and latency histograms. It is used by every layer of the
// stack (brokers, clients, processing jobs) so that experiments can report
// rates, lag and latency distributions without external tooling.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// strictMonotone makes a negative Counter.Add panic instead of being
// dropped. It is on inside test binaries: a negative delta is always a
// programming error (a miscomputed byte count, a double-subtract), and a
// silent no-op would let it hide until it skews a committed benchmark.
var strictMonotone = testing.Testing()

// negativeAdds counts negative deltas handed to Counter.Add in production
// (where panicking would be worse than dropping). It should always be zero;
// NegativeAdds exposes it so health checks can assert that.
var negativeAdds atomic.Int64

// NegativeAdds reports how many negative deltas Counter.Add has dropped
// process-wide. Non-zero means some call site violates the monotone
// contract.
func NegativeAdds() int64 { return negativeAdds.Load() }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Counters are monotone by contract: delta
// must be >= 0. A negative delta panics in test binaries and is counted in
// NegativeAdds (then dropped) in production; it is never applied.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		negativeAdds.Add(1)
		if strictMonotone {
			panic(fmt.Sprintf("metrics: Counter.Add(%d) violates the monotone contract", delta))
		}
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential buckets in a Histogram. Bucket i
// covers values in [2^i, 2^(i+1)) nanoseconds when used for durations, giving
// a range from 1ns to ~36 minutes with ≤2x relative error.
const histBuckets = 42

// Histogram records a distribution of int64 observations (typically
// nanoseconds) in exponential buckets. It is safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records a single observation. Values below 1 are clamped to 1.
func (h *Histogram) Observe(v int64) {
	if v < 1 {
		v = 1
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	b := bits64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// ObserveSince records the time elapsed since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// bits64 returns the index of the highest set bit (floor(log2(v))).
func bits64(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the maximum observation seen, or 0 if empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Quantile returns an upper-bound estimate for the q-th quantile
// (0 ≤ q ≤ 1). The estimate is the upper edge of the bucket containing the
// quantile, clamped to the observed maximum — a bucket's upper edge can
// exceed every value actually recorded in it, and an unclamped estimate
// would report P99 > Max (nonsense in committed BENCH_*.json) — so it errs
// high by at most 2x and never beyond Max.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	max := h.max.Load()
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			// Upper edge of bucket i, clamped to the observed max.
			upper := int64(1) << uint(i+1)
			if upper > max {
				upper = max
			}
			return upper
		}
	}
	return max
}

// Snapshot is a point-in-time copy of a histogram's summary statistics.
type Snapshot struct {
	Count int64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
}

// Snapshot returns summary statistics for the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	families   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		families:   make(map[string]*family),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Dump renders all metrics as sorted "name value" lines, suitable for logs
// and test assertions.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		s := h.Snapshot()
		lines = append(lines, fmt.Sprintf("histogram %s count=%d mean=%.0f p50=%d p99=%d max=%d",
			name, s.Count, s.Mean, s.P50, s.P99, s.Max))
	}
	sort.Strings(lines)
	var out strings.Builder
	for _, l := range lines {
		out.WriteString(l)
		out.WriteByte('\n')
	}
	return out.String()
}

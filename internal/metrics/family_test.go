package metrics

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the documented bucket contract: bucket i
// covers [2^i, 2^(i+1)), so every power of two lands in its own bucket and
// ±1 neighbours land one bucket below/same.
func TestHistogramBucketBoundaries(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		edge := int64(1) << uint(i)
		cases := []struct {
			v    int64
			want int
		}{
			{edge - 1, i - 1}, // just below the edge: previous bucket
			{edge, i},         // lower edge: inclusive
			{edge + 1, i},     // just above: same bucket
		}
		for _, c := range cases {
			var h Histogram
			h.Observe(c.v)
			got := -1
			for b := 0; b < histBuckets; b++ {
				if h.buckets[b].Load() != 0 {
					got = b
					break
				}
			}
			if got != c.want {
				t.Fatalf("Observe(%d): landed in bucket %d, want %d", c.v, got, c.want)
			}
		}
	}
	// Values past the last edge clamp into the final bucket.
	var h Histogram
	h.Observe(math.MaxInt64)
	if h.buckets[histBuckets-1].Load() != 1 {
		t.Fatalf("MaxInt64 observation did not clamp to final bucket")
	}
}

// parseCumBuckets reconstructs a histogram's cumulative buckets, sum and
// count from Prometheus exposition text — the same parse a scraper would do.
func parseCumBuckets(t *testing.T, text, name string) (buckets []CumBucket, sum, count int64) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			leStr, valStr, ok := strings.Cut(rest, "\"} ")
			if !ok {
				t.Fatalf("malformed bucket line %q", line)
			}
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket count in %q: %v", line, err)
			}
			upper := int64(math.MaxInt64)
			if leStr != "+Inf" {
				if upper, err = strconv.ParseInt(leStr, 10, 64); err != nil {
					t.Fatalf("bad le in %q: %v", line, err)
				}
			}
			buckets = append(buckets, CumBucket{Upper: upper, Count: v})
		case strings.HasPrefix(line, name+"_sum "):
			sum, _ = strconv.ParseInt(strings.TrimPrefix(line, name+"_sum "), 10, 64)
		case strings.HasPrefix(line, name+"_count "):
			count, _ = strconv.ParseInt(strings.TrimPrefix(line, name+"_count "), 10, 64)
		}
	}
	return buckets, sum, count
}

// TestQuantileRoundTripsExposition feeds several distributions through the
// Prometheus writer, re-parses the cumulative buckets, and checks that the
// quantile recomputed from exposition output matches Histogram.Quantile
// (which additionally clamps to the observed max).
func TestQuantileRoundTripsExposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	distros := map[string]func() int64{
		"uniform":   func() int64 { return rng.Int63n(1 << 20) },
		"exp":       func() int64 { return int64(1) << uint(rng.Intn(40)) },
		"constant":  func() int64 { return 4096 },
		"two-point": func() int64 { return []int64{10, 1e9}[rng.Intn(2)] },
	}
	for name, gen := range distros {
		r := NewRegistry()
		h := r.Histogram("rt." + name)
		var sum int64
		for i := 0; i < 5000; i++ {
			v := gen()
			sum += v
			h.Observe(v)
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		buckets, gotSum, gotCount := parseCumBuckets(t, b.String(), SanitizeName("rt."+name))
		if gotCount != 5000 || gotSum != sum {
			t.Fatalf("%s: exposition count/sum = %d/%d, want 5000/%d", name, gotCount, gotSum, sum)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 1} {
			want := h.Quantile(q)
			got := QuantileFromCumulative(buckets, q)
			if got > h.Max() {
				got = h.Max() // Quantile's max clamp, applied scraper-side
			}
			if got != want {
				t.Fatalf("%s: q=%v: exposition round-trip = %d, Quantile = %d", name, q, got, want)
			}
		}
	}
}

func TestCounterFamily(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("api.requests", "api")
	f.With("produce").Add(3)
	f.With("fetch").Inc()
	f.With("produce").Inc()
	if got := f.With("produce").Value(); got != 4 {
		t.Fatalf("produce counter = %d, want 4", got)
	}
	if got := f.With("fetch").Value(); got != 1 {
		t.Fatalf("fetch counter = %d, want 1", got)
	}
	// Same name returns the same underlying family.
	if r.CounterFamily("api.requests", "api").With("produce") != f.With("produce") {
		t.Fatalf("family lookup not stable")
	}
}

func TestFamilyLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong label arity did not panic")
		}
	}()
	f.With("only-one")
}

func TestFamilyRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterFamily("dup", "a")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind redefinition did not panic")
		}
	}()
	r.GaugeFamily("dup", "a")
}

func TestGaugeFamilyResetAndEach(t *testing.T) {
	r := NewRegistry()
	f := r.GaugeFamily("lag", "topic", "partition")
	f.With("orders", "0").Set(7)
	f.With("orders", "1").Set(9)
	var seen int
	f.Each(func(values []string, g *Gauge) { seen++ })
	if seen != 2 {
		t.Fatalf("Each visited %d children, want 2", seen)
	}
	f.Reset()
	seen = 0
	f.Each(func(values []string, g *Gauge) { seen++ })
	if seen != 0 {
		t.Fatalf("Reset left %d children", seen)
	}
}

func TestGatherIncludesEverything(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(-5)
	r.Histogram("h").Observe(100)
	r.HistogramFamily("hf", "topic").With("t1").Observe(50)
	fams := r.Gather()
	byName := map[string]GatheredFamily{}
	for _, f := range fams {
		if _, dup := byName[f.Name]; dup {
			t.Fatalf("duplicate family %q in Gather", f.Name)
		}
		byName[f.Name] = f
	}
	if f := byName["c"]; f.Kind != KindCounter || f.Points[0].Value != 2 {
		t.Fatalf("counter gathered wrong: %+v", f)
	}
	if f := byName["g"]; f.Kind != KindGauge || f.Points[0].Value != -5 {
		t.Fatalf("gauge gathered wrong: %+v", f)
	}
	if f := byName["h"]; f.Kind != KindHistogram || f.Points[0].Hist.Count != 1 {
		t.Fatalf("histogram gathered wrong: %+v", f)
	}
	hf := byName["hf"]
	if len(hf.LabelNames) != 1 || hf.LabelNames[0] != "topic" || len(hf.Points) != 1 ||
		hf.Points[0].LabelValues[0] != "t1" || hf.Points[0].Hist.Count != 1 {
		t.Fatalf("histogram family gathered wrong: %+v", hf)
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name > fams[i].Name {
			t.Fatalf("Gather output not sorted: %q before %q", fams[i-1].Name, fams[i].Name)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"broker.requests":  "broker_requests",
		"log.fsync-ns":     "log_fsync_ns",
		"9lives":           "_9lives",
		"ok_name:sub":      "ok_name:sub",
		"weird name\u00e9": "weird_name__",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Fatalf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterFamily("broker.api.requests", "api").With("produce").Add(10)
	r.Gauge("up").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE broker_api_requests counter\n",
		"broker_api_requests{api=\"produce\"} 10\n",
		"# TYPE up gauge\n",
		"up 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterFamily("esc", "l").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc{l="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestFamilyConcurrent(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("conc", "k")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				f.With(strconv.Itoa(i % 10)).Inc()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	var total int64
	for i := 0; i < 10; i++ {
		total += f.With(strconv.Itoa(i)).Value()
	}
	if total != 8000 {
		t.Fatalf("concurrent family total = %d, want 8000", total)
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(0) // zero is a legal no-op
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

// TestCounterNegativeAddPanicsInTests pins the monotone contract: inside a
// test binary a negative delta must fail loudly (panic) rather than be
// silently dropped, and it must never be applied to the counter.
func TestCounterNegativeAddPanicsInTests(t *testing.T) {
	var c Counter
	c.Add(5)
	before := NegativeAdds()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Add(-3) did not panic in a test binary")
			}
		}()
		c.Add(-3)
	}()
	if got := c.Value(); got != 5 {
		t.Fatalf("negative delta was applied: Value() = %d, want 5", got)
	}
	if got := NegativeAdds(); got != before+1 {
		t.Fatalf("NegativeAdds() = %d, want %d", got, before+1)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("Value() = %d, want 6", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Value() = %d, want %d", got, workers*each)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count() = %d, want 1000", got)
	}
	if got := h.Max(); got != 1000 {
		t.Fatalf("Max() = %d, want 1000", got)
	}
	if got := h.Mean(); got != 500.5 {
		t.Fatalf("Mean() = %v, want 500.5", got)
	}
	// Exponential buckets err high by at most 2x.
	p50 := h.Quantile(0.5)
	if p50 < 500 || p50 > 1024 {
		t.Fatalf("P50 = %d, want within [500, 1024]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 2048 {
		t.Fatalf("P99 = %d, want within [990, 2048]", p99)
	}
}

// TestHistogramQuantileClampedToMax is the regression test for the
// P99 > Max bug: with a single observation every quantile lands in one
// bucket whose upper edge (1<<(i+1)) exceeds the observation, and the
// snapshot used to report that edge. All quantiles must now equal the one
// observed value.
func TestHistogramQuantileClampedToMax(t *testing.T) {
	var h Histogram
	h.Observe(1000) // bucket upper edge is 1024
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%v) = %d, want 1000 (the observed max)", q, got)
		}
	}
	s := h.Snapshot()
	if s.P50 > s.Max || s.P95 > s.Max || s.P99 > s.Max {
		t.Fatalf("snapshot quantiles exceed max: %+v", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram should report zeros, got %+v", h.Snapshot())
	}
}

func TestHistogramClampsLow(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(0)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count() = %d, want 2", got)
	}
	if got := h.Sum(); got != 2 { // both clamped to 1
		t.Fatalf("Sum() = %d, want 2", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	h.Observe(100)
	if got := h.Quantile(-0.5); got == 0 {
		t.Fatalf("Quantile(-0.5) should clamp to 0th percentile and find the value, got 0")
	}
	if got := h.Quantile(1.5); got == 0 {
		t.Fatalf("Quantile(1.5) should clamp to max, got 0")
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if got := r.Counter("x").Value(); got != 1 {
		t.Fatalf("registry returned a different counter: value %d", got)
	}
	g := r.Gauge("y")
	g.Set(3)
	if got := r.Gauge("y").Value(); got != 3 {
		t.Fatalf("registry returned a different gauge: value %d", got)
	}
	h := r.Histogram("z")
	h.Observe(7)
	if got := r.Histogram("z").Count(); got != 1 {
		t.Fatalf("registry returned a different histogram: count %d", got)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(2)
	r.Gauge("b.lag").Set(-1)
	r.Histogram("c.latency").Observe(10)
	out := r.Dump()
	for _, want := range []string{"counter a.count 2", "gauge b.lag -1", "histogram c.latency count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump() missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotFields(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(int64(i + 1))
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

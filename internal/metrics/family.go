package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind identifies what a metric family holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// labelSep joins label values into a child key. It is a control character so
// it cannot collide with realistic label values (topic names, API names).
const labelSep = "\x1f"

// family is the shared implementation behind the three typed family views: a
// name, an ordered label-name list, and one child metric per distinct
// label-value tuple.
type family struct {
	name   string
	kind   Kind
	labels []string

	mu   sync.RWMutex
	kids map[string]*child
}

// child pairs a label-value tuple with its metric (exactly one of c/g/h is
// set, matching the family kind).
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// lookup returns the child for the given label values, creating it on first
// use. The read-locked fast path keeps With cheap on hot paths.
func (f *family) lookup(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %q wants labels %v, got %d values", f.name, f.labels, len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	k, ok := f.kids[key]
	f.mu.RUnlock()
	if ok {
		return k
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if k, ok = f.kids[key]; ok {
		return k
	}
	k = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		k.c = &Counter{}
	case KindGauge:
		k.g = &Gauge{}
	case KindHistogram:
		k.h = &Histogram{}
	}
	f.kids[key] = k
	return k
}

// sortedKids returns the children ordered by label-value tuple, for stable
// Gather/exposition output.
func (f *family) sortedKids() []*child {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.kids))
	for k := range f.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.kids[k]
	}
	return out
}

// CounterFamily is a set of counters keyed by label values (e.g. one counter
// per API name, or per topic).
type CounterFamily struct{ f *family }

// With returns the counter for the given label values, creating it on first
// use. The number of values must match the family's label names.
func (cf *CounterFamily) With(values ...string) *Counter { return cf.f.lookup(values).c }

// GaugeFamily is a set of gauges keyed by label values.
type GaugeFamily struct{ f *family }

// With returns the gauge for the given label values, creating it on first use.
func (gf *GaugeFamily) With(values ...string) *Gauge { return gf.f.lookup(values).g }

// Each calls fn for every child gauge currently in the family.
func (gf *GaugeFamily) Each(fn func(values []string, g *Gauge)) {
	for _, k := range gf.f.sortedKids() {
		fn(k.values, k.g)
	}
}

// Reset drops every child gauge. Used by periodic exporters that rebuild the
// family from scratch each tick so stale label tuples (a partition no longer
// led, a departed follower) do not linger at their last value.
func (gf *GaugeFamily) Reset() {
	gf.f.mu.Lock()
	gf.f.kids = make(map[string]*child)
	gf.f.mu.Unlock()
}

// DeleteWhere drops every child gauge whose value for the named label equals
// value. Periodic exporters sharing one registry across brokers use this to
// retire only their own stale tuples (keyed by a per-broker label) without
// wiping tuples concurrently exported by their peers, which Reset would do.
// An unknown label name deletes nothing.
func (gf *GaugeFamily) DeleteWhere(label, value string) {
	idx := -1
	for i, l := range gf.f.labels {
		if l == label {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	gf.f.mu.Lock()
	for key, k := range gf.f.kids {
		if k.values[idx] == value {
			delete(gf.f.kids, key)
		}
	}
	gf.f.mu.Unlock()
}

// HistogramFamily is a set of histograms keyed by label values.
type HistogramFamily struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (hf *HistogramFamily) With(values ...string) *Histogram { return hf.f.lookup(values).h }

// getFamily returns the named family, creating it with the given kind and
// label names on first use. Redefining a name with a different kind or label
// set is a programming error and panics.
func (r *Registry) getFamily(name string, kind Kind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:   name,
			kind:   kind,
			labels: append([]string(nil), labels...),
			kids:   make(map[string]*child),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: family %q redefined (%v %v vs %v %v)", name, f.kind, f.labels, kind, labels))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("metrics: family %q redefined with labels %v (was %v)", name, labels, f.labels))
		}
	}
	return f
}

// CounterFamily returns the labeled counter family with the given name,
// creating it if needed.
func (r *Registry) CounterFamily(name string, labels ...string) *CounterFamily {
	return &CounterFamily{f: r.getFamily(name, KindCounter, labels)}
}

// GaugeFamily returns the labeled gauge family with the given name, creating
// it if needed.
func (r *Registry) GaugeFamily(name string, labels ...string) *GaugeFamily {
	return &GaugeFamily{f: r.getFamily(name, KindGauge, labels)}
}

// HistogramFamily returns the labeled histogram family with the given name,
// creating it if needed.
func (r *Registry) HistogramFamily(name string, labels ...string) *HistogramFamily {
	return &HistogramFamily{f: r.getFamily(name, KindHistogram, labels)}
}

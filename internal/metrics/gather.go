package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// BucketUpperBound returns the exclusive upper edge of histogram bucket i:
// bucket i covers [2^i, 2^(i+1)).
func BucketUpperBound(i int) int64 { return int64(1) << uint(i+1) }

// CumBucket is one cumulative histogram bucket in exposition form: Count
// observations were ≤ Upper. The final bucket has Upper == math.MaxInt64
// (rendered as le="+Inf") and carries the total count.
type CumBucket struct {
	Upper int64
	Count int64
}

// HistData is a point-in-time copy of a histogram's full state, including
// per-bucket counts (Snapshot carries only summary statistics).
type HistData struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [histBuckets]int64
}

// Cumulative converts the raw bucket counts to exposition-format cumulative
// buckets: one entry per occupied bucket plus the trailing +Inf bucket.
func (d *HistData) Cumulative() []CumBucket {
	out := make([]CumBucket, 0, 8)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		if d.Buckets[i] == 0 {
			continue
		}
		cum += d.Buckets[i]
		out = append(out, CumBucket{Upper: BucketUpperBound(i), Count: cum})
	}
	return append(out, CumBucket{Upper: math.MaxInt64, Count: d.Count})
}

// data copies the histogram's state. Concurrent observers may land between
// the field loads; the copy is still a valid histogram.
func (h *Histogram) data() HistData {
	d := HistData{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		d.Buckets[i] = h.buckets[i].Load()
	}
	return d
}

// Cumulative returns the histogram's exposition-format cumulative buckets.
func (h *Histogram) Cumulative() []CumBucket {
	d := h.data()
	return d.Cumulative()
}

// QuantileFromCumulative estimates the q-th quantile from cumulative
// buckets, returning the upper edge of the bucket containing the quantile —
// the same estimator Histogram.Quantile uses before clamping to the observed
// max. It lets scrapers recompute quantiles from /metrics output.
func QuantileFromCumulative(buckets []CumBucket, q float64) int64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.Count >= rank {
			return b.Upper
		}
	}
	return buckets[len(buckets)-1].Upper
}

// Point is one sample of a gathered family: a label-value tuple plus either
// a scalar value (counter/gauge) or histogram data.
type Point struct {
	LabelValues []string
	Value       int64
	Hist        *HistData
}

// GatheredFamily is one metric family in a Gather snapshot. Unlabeled
// registry metrics appear as families with no label names and one point.
type GatheredFamily struct {
	Name       string
	Kind       Kind
	LabelNames []string
	Points     []Point
}

// Gather snapshots every metric in the registry — unlabeled counters,
// gauges and histograms plus all labeled families — sorted by name. It is
// the single source for the Prometheus writer, /status handlers and tests.
func (r *Registry) Gather() []GatheredFamily {
	r.mu.Lock()
	out := make([]GatheredFamily, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.families))
	for name, c := range r.counters {
		out = append(out, GatheredFamily{Name: name, Kind: KindCounter, Points: []Point{{Value: c.Value()}}})
	}
	for name, g := range r.gauges {
		out = append(out, GatheredFamily{Name: name, Kind: KindGauge, Points: []Point{{Value: g.Value()}}})
	}
	fams := make([]*family, 0, len(r.families))
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	// Histograms and family children are copied outside the registry lock:
	// they are internally synchronised, and a 42-bucket copy per histogram
	// is too much work to hold the map lock over.
	for name, h := range hists {
		d := h.data()
		out = append(out, GatheredFamily{Name: name, Kind: KindHistogram, Points: []Point{{Hist: &d}}})
	}
	for _, f := range fams {
		gf := GatheredFamily{Name: f.name, Kind: f.kind, LabelNames: f.labels}
		for _, k := range f.sortedKids() {
			p := Point{LabelValues: k.values}
			switch f.kind {
			case KindCounter:
				p.Value = k.c.Value()
			case KindGauge:
				p.Value = k.g.Value()
			case KindHistogram:
				d := k.h.data()
				p.Hist = &d
			}
			gf.Points = append(gf.Points, p)
		}
		out = append(out, gf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SanitizeName maps an internal metric name (dotted, e.g. "broker.requests")
// to a Prometheus-legal name: every character outside [a-zA-Z0-9_:] becomes
// an underscore, and a leading digit gains an underscore prefix.
func SanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders {name="value",...} for a point, with extra appended
// as a pre-rendered pair (used for the histogram le label). Returns "" when
// there is nothing to render.
func formatLabels(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeName(n))
		b.WriteString(`="`)
		if i < len(values) {
			b.WriteString(escapeLabelValue(values[i]))
		}
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): a # TYPE line per family, counters and gauges as single
// samples, histograms as cumulative _bucket{le=...} samples plus _sum and
// _count. Internal dotted names are sanitized (broker.requests →
// broker_requests).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Gather() {
		name := SanitizeName(fam.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.Kind); err != nil {
			return err
		}
		for _, p := range fam.Points {
			if fam.Kind != KindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", name, formatLabels(fam.LabelNames, p.LabelValues, ""), p.Value); err != nil {
					return err
				}
				continue
			}
			for _, b := range p.Hist.Cumulative() {
				le := `le="+Inf"`
				if b.Upper != math.MaxInt64 {
					le = fmt.Sprintf(`le="%d"`, b.Upper)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(fam.LabelNames, p.LabelValues, le), b.Count); err != nil {
					return err
				}
			}
			labels := formatLabels(fam.LabelNames, p.LabelValues, "")
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, p.Hist.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, p.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

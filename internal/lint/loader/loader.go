// Package loader loads and type-checks Go packages for the liquid-vet
// analyzers without golang.org/x/tools/go/packages. It shells out to
// `go list -deps -export -json`, which compiles the requested packages and
// hands back gc export data for every dependency, then parses the target
// packages' sources and type-checks them against that export data via the
// standard library's gc importer. Everything works offline: the only
// inputs are the go toolchain and the module being analyzed.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
	Incomplete  bool
	Error       *struct{ Err string }
}

// Load lists patterns in dir, type-checks every matched (non-dependency)
// package, and returns them. Test files are not loaded: `go list -deps`
// does not surface test-only dependencies' export data, and the analyzers
// deliberately skip test files anyway (see package analysis).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil && t.Incomplete {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{
			Importer: imp,
			// Collect the first error only; analyzers need a clean
			// package, and the go toolchain already reported details
			// during `go list -export`.
			Error: func(error) {},
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

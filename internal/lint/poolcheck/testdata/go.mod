module pooldata

go 1.24

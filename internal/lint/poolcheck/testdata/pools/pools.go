// Package pools exercises the sync.Pool Get/Put pairing rules.
package pools

import "sync"

var bufs = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// Bad: the buffer never goes back.
func leak() int {
	b := bufs.Get().(*[]byte) // want `sync\.Pool\.Get on bufs without a paired Put`
	return len(*b)
}

// Good: deferred Put on every return path.
func roundTrip() int {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return len(*b)
}

// Good: release delegated to a same-package helper.
func viaHelper() int {
	b := bufs.Get().(*[]byte)
	defer release(b)
	return len(*b)
}

func release(b *[]byte) {
	*b = (*b)[:0]
	bufs.Put(b)
}

// Good: acquire helper — escape via return is sanctioned because the
// package defines a release helper (release above) for the same pool.
func acquire() *[]byte {
	return bufs.Get().(*[]byte)
}

// orphans has Gets escaping via return but no Put anywhere in the
// package: every borrow leaks.
var orphans = sync.Pool{New: func() any { return new(int) }}

func acquireOrphan() *int {
	return orphans.Get().(*int) // want `escapes via return but the package has no release helper`
}

// Bad: a pooled value parked in a struct outlives the borrow.
type holder struct{ buf *[]byte }

func park(h *holder) {
	b := bufs.Get().(*[]byte)
	h.buf = b // want `pooled value b stored into a struct field`
	bufs.Put(b)
}

// Suppressed: a deliberate exception carries its reason.
func sanctionedLeak() int {
	//lint:ignore poolcheck one-shot path, measured: pool pressure is irrelevant here
	b := bufs.Get().(*[]byte)
	return len(*b)
}

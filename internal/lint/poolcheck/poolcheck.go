// Package poolcheck enforces the Get/Put discipline on sync.Pool values.
//
// The hot paths (wire frame encoding, log batch encoding, compression
// codecs) recycle buffers through sync.Pools; a Get without a matching
// Put is a silent allocation-rate regression, and a pooled value that
// escapes into longer-lived storage gets recycled under its new owner —
// a use-after-reuse corruption bug.
//
// Package-local rules, per pool variable (any package-level var or
// struct field of type sync.Pool):
//
//   - A function that calls pool.Get and does not return the value must
//     also Put it back on the same pool in the same function (directly,
//     in a deferred closure, or by calling a same-package release helper
//     that Puts on that pool).
//   - A function that returns the gotten value is an acquire helper;
//     that is allowed only when the package also defines a release
//     helper for the same pool (GetWriter/PutWriter style), so callers
//     have a sanctioned way to return the value.
//   - The gotten value must not be stored into a struct field: pooled
//     objects must not outlive the function that borrowed them.
//
// Suppress intentional exceptions with "//lint:ignore poolcheck <reason>".
package poolcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "sync.Pool.Get must have a paired Put, and pooled values must not escape",
	Run:  run,
}

// funcFacts is what one pass over a function body records.
type funcFacts struct {
	decl *ast.FuncDecl
	// gets maps each Get call to the pool object and the variable the
	// result was bound to (nil when unassigned or assigned through a
	// non-ident).
	gets []getSite
	// puts is the set of pool objects Put directly in this function
	// (closures included).
	puts map[types.Object]bool
	// calls is the set of same-package functions invoked.
	calls map[types.Object]bool
	// returned is the set of objects appearing in return statements;
	// returnedCalls the call expressions returned directly.
	returned      map[types.Object]bool
	returnedCalls map[*ast.CallExpr]bool
	// fieldStores maps variable objects to the position of an
	// assignment that stores them into a struct field.
	fieldStores map[types.Object]ast.Node
}

type getSite struct {
	call   *ast.CallExpr
	pool   types.Object
	result types.Object
}

func run(pass *analysis.Pass) error {
	var fns []*funcFacts
	// releasers[pool] = true when some function in the package Puts on
	// the pool; acquire helpers are legal only in that case.
	releasers := map[types.Object]map[types.Object]bool{} // funcObj -> pools put
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ff := collect(pass, fn)
			fns = append(fns, ff)
			if obj := pass.Info.Defs[fn.Name]; obj != nil && len(ff.puts) > 0 {
				pools := map[types.Object]bool{}
				for p := range ff.puts {
					pools[p] = true
				}
				releasers[obj] = pools
			}
		}
	}
	anyReleaser := map[types.Object]bool{}
	for _, pools := range releasers {
		for p := range pools {
			anyReleaser[p] = true
		}
	}

	for _, ff := range fns {
		for _, g := range ff.gets {
			escaped := ff.returnedCalls[g.call] || (g.result != nil && ff.returned[g.result])
			if escaped {
				// Acquire helper: needs a package-level release
				// helper for this pool.
				if !anyReleaser[g.pool] {
					pass.Reportf(g.call.Pos(),
						"pooled value from %s escapes via return but the package has no release helper that Puts it back", poolName(g.pool))
				}
			} else if !ff.puts[g.pool] && !callsReleaser(ff, releasers, g.pool) {
				pass.Reportf(g.call.Pos(),
					"sync.Pool.Get on %s without a paired Put in this function; Put on every return path (defer the release) or the pool drains into the allocator", poolName(g.pool))
			}
			if g.result != nil {
				if store, ok := ff.fieldStores[g.result]; ok {
					pass.Reportf(store.Pos(),
						"pooled value %s stored into a struct field; pooled objects must not outlive the function that borrowed them", g.result.Name())
				}
			}
		}
	}
	return nil
}

func callsReleaser(ff *funcFacts, releasers map[types.Object]map[types.Object]bool, pool types.Object) bool {
	for callee := range ff.calls {
		if releasers[callee][pool] {
			return true
		}
	}
	return false
}

func poolName(o types.Object) string { return o.Name() }

func collect(pass *analysis.Pass, fn *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{
		decl:          fn,
		puts:          map[types.Object]bool{},
		calls:         map[types.Object]bool{},
		returned:      map[types.Object]bool{},
		returnedCalls: map[*ast.CallExpr]bool{},
		fieldStores:   map[types.Object]ast.Node{},
	}
	// Assignments are visited before the Get call they wrap, so result
	// bindings are recorded here and merged after the walk.
	bindings := map[*ast.CallExpr]types.Object{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pool, method, ok := poolCall(pass, n); ok {
				switch method {
				case "Get":
					ff.gets = append(ff.gets, getSite{call: n, pool: pool})
				case "Put":
					ff.puts[pool] = true
				}
			} else if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					ff.calls[obj] = true
				}
			}
		case *ast.AssignStmt:
			// v := pool.Get().(T) / v := pool.Get()
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if call, ok := getCall(pass, rhs); ok {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := firstObj(pass, id); obj != nil {
								bindings[call] = obj
							}
						}
					}
				}
			}
			// x.field = v
			for i, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if i < len(n.Rhs) {
					if id, ok := unparen(n.Rhs[i]).(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							if _, seen := ff.fieldStores[obj]; !seen {
								ff.fieldStores[obj] = n
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			// Only a value returned directly (possibly through & or
			// parens) escapes; `return len(*b)` does not hand the
			// pooled object to the caller.
			for _, res := range n.Results {
				if call, ok := getCall(pass, res); ok {
					ff.returnedCalls[call] = true
				}
				e := unparen(res)
				if u, ok := e.(*ast.UnaryExpr); ok {
					e = unparen(u.X)
				}
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						ff.returned[obj] = true
					}
				}
			}
		}
		return true
	})
	for i := range ff.gets {
		if obj, ok := bindings[ff.gets[i].call]; ok {
			ff.gets[i].result = obj
		}
	}
	return ff
}

// getCall unwraps expr (through parens and type assertions) to a
// pool.Get call.
func getCall(pass *analysis.Pass, expr ast.Expr) (*ast.CallExpr, bool) {
	switch e := unparen(expr).(type) {
	case *ast.TypeAssertExpr:
		return getCall(pass, e.X)
	case *ast.CallExpr:
		if _, method, ok := poolCall(pass, e); ok && method == "Get" {
			return e, true
		}
	}
	return nil, false
}

// poolCall reports whether call is <pool>.Get() or <pool>.Put(x) on a
// value of type sync.Pool, returning the pool's variable object.
func poolCall(pass *analysis.Pass, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return nil, "", false
	}
	var obj types.Object
	switch x := unparen(sel.X).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[x.Sel]
	}
	if obj == nil || !isPoolType(obj.Type()) {
		return nil, "", false
	}
	return obj, sel.Sel.Name, true
}

func isPoolType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

func firstObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

package poolcheck_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, "testdata", poolcheck.Analyzer)
}

// Package leakcheck fails a test binary when goroutines running this
// repo's code survive the test run. Wire it in with a one-line TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// Unlike a per-test check, a TestMain-level check is immune to goroutines
// that legitimately outlive one test but must not outlive the suite
// (shared stacks, cached clients). The check only inspects stacks that
// mention this module's own packages, so runtime and testing-harness
// goroutines never trip it.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies frames that belong to this repo. Only goroutines
// with such a frame count as leaks.
const modulePrefix = "repro/internal/"

// settle is how long Main waits for straggler goroutines to exit before
// declaring them leaked. Shutdown paths that take longer than this on an
// idle machine are bugs in their own right.
const settle = 5 * time.Second

// Main runs the tests, then fails the binary if repo goroutines are still
// alive once the suite has finished and had settle time to wind down.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if stacks := wait(settle); len(stacks) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked after tests:\n\n%s\n",
				len(stacks), strings.Join(stacks, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// wait polls until no repo goroutines remain or the deadline passes,
// returning the stacks of the survivors.
func wait(d time.Duration) []string {
	deadline := time.Now().Add(d)
	for {
		stacks := leakedStacks()
		if len(stacks) == 0 || time.Now().After(deadline) {
			return stacks
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leakedStacks snapshots all goroutines and keeps the ones running repo
// code, excluding the calling goroutine.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.HasPrefix(g, "goroutine ") {
			continue
		}
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		// The first block is this goroutine (runtime.Stack's caller);
		// leakcheck frames identify it regardless of ordering.
		if strings.Contains(g, modulePrefix+"lint/leakcheck") {
			continue
		}
		out = append(out, g)
	}
	return out
}

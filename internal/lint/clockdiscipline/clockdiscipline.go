// Package clockdiscipline forbids direct wall-clock calls in packages
// that declare an injectable clock.
//
// The chaos harness reproduces failure schedules from a single seed; that
// only works if every timestamp a package reads comes from the clock the
// scenario injects (broker.Config.Now, core.Config.Clock, coord's session
// clock, ...). A stray time.Now() in such a package silently reads the
// wall clock instead — timestamps, deadlines and latency measurements
// stop being reproducible, which is exactly the class of drift that made
// seeded chaos runs diverge. The analyzer fires on direct calls to
// time.Now, time.Since, time.Until, time.Sleep, time.After, time.Tick,
// time.NewTicker, time.NewTimer and time.AfterFunc in any package that
// declares a clock hook; route the call through the injected clock, or —
// for genuine real-time waits that no injected clock replaces (background
// ticker loops) — suppress one choke-point helper with
// "//lint:ignore clockdiscipline <reason>".
//
// A package "declares an injectable clock" when a (non-test) struct field
// named Now or Clock has type func() time.Time, or it defines a named
// type Clock with that underlying type. Referencing time.Now as a default
// value (cfg.Now = time.Now) is a reference, not a call, and is allowed.
package clockdiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "clockdiscipline",
	Doc:  "forbid direct time.Now/Sleep/After/... calls in packages with an injectable clock",
	Run:  run,
}

// banned lists the time functions whose direct call breaks seeded
// reproducibility when the package has a clock hook to use instead.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	hook := clockHook(pass)
	if hook == "" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := analysis.IsPkgCall(pass.Info, call, "time")
			if ok && banned[name] {
				pass.Reportf(call.Pos(),
					"direct time.%s call in a package with an injectable clock (%s); use the injected clock so seeded chaos runs stay reproducible",
					name, hook)
			}
			return true
		})
	}
	return nil
}

// clockHook returns a description of the package's injectable clock
// declaration, or "" if the package declares none.
func clockHook(pass *analysis.Pass) string {
	hook := ""
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if hook != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					t := pass.Info.Types[field.Type].Type
					if t == nil || !isClockFunc(t) {
						continue
					}
					for _, name := range field.Names {
						if name.Name == "Now" || name.Name == "Clock" {
							hook = "field " + name.Name + " func() time.Time"
							return false
						}
					}
				}
			case *ast.TypeSpec:
				if n.Name.Name == "Clock" {
					if t := pass.Info.Types[n.Type].Type; t != nil && isClockFunc(t) {
						hook = "type Clock func() time.Time"
						return false
					}
				}
			}
			return true
		})
		if hook != "" {
			break
		}
	}
	return hook
}

// isClockFunc reports whether t is func() time.Time.
func isClockFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}

module clockdata

go 1.24

// Package plain declares no injectable clock; direct time calls are fine.
package plain

import "time"

func stamp() int64 {
	return time.Now().UnixMilli()
}

func wait() {
	time.Sleep(time.Millisecond)
}

// Package clocked declares an injectable clock, so direct time calls are
// clockdiscipline violations.
package clocked

import "time"

// Config carries the injectable clock.
type Config struct {
	Now func() time.Time
}

// Default clock as a reference, not a call: allowed.
func defaults(c *Config) {
	if c.Now == nil {
		c.Now = time.Now
	}
}

func stamp(c *Config) int64 {
	good := c.Now().UnixMilli()
	bad := time.Now().UnixMilli() // want `direct time\.Now call in a package with an injectable clock`
	return good + bad
}

func waits(c *Config) {
	time.Sleep(time.Millisecond)     // want `direct time\.Sleep call`
	<-time.After(time.Millisecond)   // want `direct time\.After call`
	t := time.NewTicker(time.Second) // want `direct time\.NewTicker call`
	t.Stop()
	_ = time.Since(c.Now()) // want `direct time\.Since call`
}

// A documented real-time wait is suppressed with an ignore directive.
func sanctionedWait() {
	//lint:ignore clockdiscipline periodic wake is a real-time wait, not a timestamp read
	time.Sleep(time.Millisecond)
}

package clockdiscipline_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/clockdiscipline"
)

func TestClockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", clockdiscipline.Analyzer)
}

// Package locks exercises the "guarded by" field annotations.
package locks

import "sync"

// Counter is shared state with an annotated field.
type Counter struct {
	mu sync.RWMutex
	// n is the running total (guarded by mu).
	n int
	// label never changes after construction; unguarded on purpose.
	label string
}

// Bad: no lock in sight.
func (c *Counter) Bump() {
	c.n++ // want `field n is guarded by mu but accessed without holding it`
}

// Good: write lock held somewhere in the function.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// Good: read lock counts.
func (c *Counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Good: the Locked suffix encodes the caller-holds convention.
func (c *Counter) bumpLocked() {
	c.n++
}

// addQuietly's caller holds mu, so the direct access is sanctioned.
func (c *Counter) addQuietly(d int) {
	c.n += d
}

// Good: freshly constructed locals are not shared yet.
func NewCounter(start int) *Counter {
	c := &Counter{label: "fresh"}
	c.n = start
	return c
}

// Unguarded fields stay unchecked.
func (c *Counter) Label() string {
	return c.label
}

// Suppressed with a reason: single-goroutine teardown.
func (c *Counter) drain() int {
	//lint:ignore lockguard teardown runs after every goroutine has exited
	return c.n
}

// Dangling annotations are themselves findings.
type broken struct {
	// v cannot be checked (guarded by missing).
	v int // want `'guarded by missing' names no field of this struct`
}

func (b *broken) get() int { return b.v }

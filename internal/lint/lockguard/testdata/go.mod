module lockdata

go 1.24

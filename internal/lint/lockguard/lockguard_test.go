package lockguard_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer)
}

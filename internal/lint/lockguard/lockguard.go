// Package lockguard enforces "guarded by <mutex>" field annotations.
//
// The stack's concurrent structures document their locking discipline in
// field comments ("guarded by mu"). Those comments were previously held
// up only by review; this analyzer makes them load-bearing: a field whose
// doc or line comment says "guarded by <name>" may only be accessed in
// functions that visibly acquire that mutex.
//
// The check is flow-insensitive and package-local, tuned to catch the
// common regression (a new method touching shared state without taking
// the lock) without drowning real code in noise:
//
//   - An access `x.field` is satisfied when the same function (closures
//     included) calls x.<guard>.Lock, RLock, TryLock or TryRLock on the
//     same base expression x.
//   - Functions whose name ends in "Locked", or whose doc comment says
//     the caller must hold the lock ("caller holds mu", "callers hold",
//     "mu held", "must hold"), are exempt: they encode the
//     caller-holds-the-lock convention.
//   - Accesses through a variable declared locally in the same function
//     (not a parameter or receiver) are exempt: freshly constructed
//     objects are not shared yet. Composite-literal construction
//     (Foo{field: v}) is likewise not an access.
//
// The guard named in the annotation must be a field of the same struct;
// a dangling annotation is itself reported. Suppress intentional
// lock-free accesses (initialization before goroutines start, teardown
// after they stop) with "//lint:ignore lockguard <reason>".
package lockguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated 'guarded by mu' may only be accessed with that mutex held",
	Run:  run,
}

var (
	guardedRe    = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	callerHoldRe = regexp.MustCompile(`(?i)caller[s]? (must )?hold|must hold|[A-Za-z_]+ held|while holding`)
)

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}

func run(pass *analysis.Pass) error {
	// guards maps a guarded field object to the guard field object of
	// the same struct.
	guards := map[types.Object]types.Object{}
	for _, f := range pass.Files {
		collectAnnotations(pass, f, guards)
	}
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectAnnotations finds struct fields annotated "guarded by <name>"
// and resolves the guard to a sibling field.
func collectAnnotations(pass *analysis.Pass, f *ast.File, guards map[types.Object]types.Object) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		// Index the struct's fields by name for guard resolution.
		byName := map[string]types.Object{}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					byName[name.Name] = obj
				}
			}
		}
		for _, field := range st.Fields.List {
			guardName := annotationIn(field.Doc) + annotationIn(field.Comment)
			m := guardedRe.FindStringSubmatch(guardName)
			if m == nil {
				continue
			}
			guard, ok := byName[m[1]]
			if !ok {
				pass.Reportf(field.Pos(),
					"'guarded by %s' names no field of this struct; the annotation cannot be enforced", m[1])
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && obj != guard {
					guards[obj] = guard
				}
			}
		}
		return true
	})
}

func annotationIn(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	return cg.Text()
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]types.Object) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	if fn.Doc != nil && callerHoldRe.MatchString(fn.Doc.Text()) {
		return
	}

	// locked collects (base expression, guard object) pairs for every
	// lock acquisition in the function, closures included.
	type lockKey struct {
		base  string
		guard types.Object
	}
	locked := map[lockKey]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !lockMethods[sel.Sel.Name] {
			return true
		}
		// Receiver must be <base>.<guardField>.
		recv, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[recv.Sel]
		if obj == nil {
			return true
		}
		locked[lockKey{types.ExprString(recv.X), obj}] = true
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		guard, guarded := guards[obj]
		if !guarded {
			return true
		}
		base := types.ExprString(sel.X)
		if locked[lockKey{base, guard}] {
			return true
		}
		if isFunctionLocal(pass, fn, sel.X) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s is guarded by %s but accessed without holding it in %s; acquire %s.%s or document the convention (Locked suffix, 'caller holds' doc, or //lint:ignore lockguard <reason>)",
			sel.Sel.Name, guard.Name(), fn.Name.Name, base, guard.Name())
		return true
	})
}

// isFunctionLocal reports whether the access base is a variable declared
// inside fn's body — a freshly constructed, not-yet-shared object.
// Parameters and receivers are declared before the body's opening brace,
// so they do not qualify.
func isFunctionLocal(pass *analysis.Pass, fn *ast.FuncDecl, base ast.Expr) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return obj.Pos() > fn.Body.Lbrace && obj.Pos() < fn.Body.Rbrace
}

// Package analysistest runs an analyzer over a golden testdata module and
// checks its diagnostics against "// want" expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout: each analyzer keeps a self-contained module under
// testdata/ — a go.mod (so `go list` works offline with stdlib-only
// imports) plus one directory per test package. An expectation is written
// on the line it applies to:
//
//	bad := pool.Get() // want `sync\.Pool\.Get without a paired Put`
//
// Multiple expectations on one line are allowed; each diagnostic must
// match exactly one pending expectation on its line, and every
// expectation must be consumed. //lint:ignore directives are honored
// before matching, so negative suppression cases need no want comments.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run loads the module rooted at dir (typically "testdata") and checks
// the analyzer's diagnostics against the // want expectations in it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	for _, pkg := range pkgs {
		unit := &analysis.Unit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		diags, err := unit.Run([]*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: running %s: %v", pkg.PkgPath, a.Name, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, pkg *loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation) // file -> line -> pending
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, raw := range parseWants(t, c.Text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", raw, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expectation)
					}
					wants[pos.Filename][pos.Line] = append(
						wants[pos.Filename][pos.Line], &expectation{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(wants, pos, d.Message) {
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, pos.Column, d.Message)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.raw)
				}
			}
		}
	}
}

func match(wants map[string]map[int][]*expectation, pos token.Position, msg string) bool {
	for _, e := range wants[pos.Filename][pos.Line] {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the quoted regexps from a `// want "re" \`re\“
// comment, or nil if the comment is not a want comment.
func parseWants(t *testing.T, text string) []string {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil
	}
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q := rest[0]
		if q != '"' && q != '`' {
			t.Fatalf("malformed want comment %q: expectations must be quoted", text)
		}
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			t.Fatalf("malformed want comment %q: unterminated %c", text, q)
		}
		lit := rest[:end+2]
		s, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("malformed want expectation %s in %q: %v", lit, text, err)
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+2:])
	}
	return out
}

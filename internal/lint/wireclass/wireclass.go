// Package wireclass enforces exhaustive classification of the wire
// protocol's error codes and API keys.
//
// PR 8 shipped new error codes whose retriability was decided implicitly
// by a switch's default arm — "new code, unclassified" is exactly how a
// terminal error ends up silently retried (or a retriable one surfaced
// to callers). This analyzer makes the classification tables load-
// bearing; adding a constant without deciding its semantics everywhere
// is now a compile-gate failure.
//
// In the package named "wire" (the one defining type ErrorCode):
//
//   - Every ErrorCode constant must have a registered message: a key in
//     the package-level `errorNames` map literal.
//   - Every ErrorCode constant must be explicitly classified in the
//     package-level `retriable` map literal — true or false, stated,
//     never defaulted.
//   - Every APIKey constant must have a case in APIKey.String (the
//     per-API metrics label and slowlog name) and a case in
//     NewRequestBody (the decode dispatch).
//
// In any package that marks a type switch with a "//wireclass:dispatch"
// comment (the broker's request dispatch): the switch must have a case
// for every exported request type of the imported wire package — a type
// named *Request implementing wire.Message. A new API cannot be decoded
// without also being served.
package wireclass

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireclass",
	Doc:  "wire error codes and API keys must be exhaustively classified (messages, retriability, labels, dispatch)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "wire" && pass.Pkg.Scope().Lookup("ErrorCode") != nil {
		checkWirePackage(pass)
	}
	checkDispatchSwitches(pass)
	return nil
}

// ------------------------------------------------------------- wire side

func checkWirePackage(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	errType, _ := scope.Lookup("ErrorCode").(*types.TypeName)
	apiType, _ := scope.Lookup("APIKey").(*types.TypeName)

	errConsts := constsOf(scope, errType)
	apiConsts := constsOf(scope, apiType)

	names := mapLiteralKeys(pass, "errorNames")
	retri := mapLiteralKeys(pass, "retriable")
	stringCases := switchCaseObjects(pass, methodDecl(pass, "APIKey", "String"))
	decodeCases := switchCaseObjects(pass, funcDecl(pass, "NewRequestBody"))

	for _, c := range errConsts {
		if names != nil && !names[c] {
			pass.Reportf(c.Pos(), "wire.ErrorCode %s has no registered message in errorNames", c.Name())
		}
		if retri == nil {
			continue // reported once below
		}
		if !retri[c] {
			pass.Reportf(c.Pos(), "wire.ErrorCode %s is not classified in the retriable table; every code must state its retry semantics explicitly", c.Name())
		}
	}
	if retri == nil && errType != nil {
		pass.Reportf(errType.Pos(), "package wire must classify every ErrorCode in a package-level `retriable` map literal")
	}
	if names == nil && errType != nil {
		pass.Reportf(errType.Pos(), "package wire must register every ErrorCode message in a package-level `errorNames` map literal")
	}
	for _, c := range apiConsts {
		if stringCases != nil && !stringCases[c] {
			pass.Reportf(c.Pos(), "wire.APIKey %s has no case in APIKey.String; every API needs a metrics label", c.Name())
		}
		if decodeCases != nil && !decodeCases[c] {
			pass.Reportf(c.Pos(), "wire.APIKey %s has no case in NewRequestBody; the broker cannot decode this API's requests", c.Name())
		}
	}
}

// constsOf returns the package-level constants of the given named type,
// in declaration order.
func constsOf(scope *types.Scope, tn *types.TypeName) []*types.Const {
	if tn == nil {
		return nil
	}
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Type() == tn.Type() {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// mapLiteralKeys returns the constant objects used as keys in the
// package-level `var name = map[...]...{...}` literal, or nil if no such
// literal exists.
func mapLiteralKeys(pass *analysis.Pass, name string) map[types.Object]bool {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys := map[types.Object]bool{}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id, ok := kv.Key.(*ast.Ident); ok {
							if obj := pass.Info.Uses[id]; obj != nil {
								keys[obj] = true
							}
						}
					}
					return keys
				}
			}
		}
	}
	return nil
}

// switchCaseObjects returns every constant object appearing as a case
// expression in any switch inside fn, or nil if fn is nil.
func switchCaseObjects(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	if fn == nil || fn.Body == nil {
		return nil
	}
	out := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func methodDecl(pass *analysis.Pass, recvType, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != name || fn.Recv == nil || len(fn.Recv.List) != 1 {
				continue
			}
			t := pass.Info.Types[fn.Recv.List[0].Type].Type
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == recvType {
				return fn
			}
		}
	}
	return nil
}

func funcDecl(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == name {
				return fn
			}
		}
	}
	return nil
}

// --------------------------------------------------------- dispatch side

// checkDispatchSwitches verifies every type switch marked with a
// "//wireclass:dispatch" comment covers all request types of the
// imported wire package.
func checkDispatchSwitches(pass *analysis.Pass) {
	for _, f := range pass.Files {
		directives := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//wireclass:dispatch") {
					directives[pass.Fset.Position(c.End()).Line] = true
				}
			}
		}
		if len(directives) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			line := pass.Fset.Position(ts.Pos()).Line
			if !directives[line-1] && !directives[line] {
				return true
			}
			checkDispatch(pass, ts)
			return true
		})
	}
}

func checkDispatch(pass *analysis.Pass, ts *ast.TypeSwitchStmt) {
	wirePkg := importedWire(pass)
	if wirePkg == nil {
		pass.Reportf(ts.Pos(), "//wireclass:dispatch switch in a package that does not import the wire package")
		return
	}
	required := requestTypes(wirePkg)

	covered := map[types.Object]bool{}
	ast.Inspect(ts.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			t := pass.Info.Types[e].Type
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				covered[named.Obj()] = true
			}
		}
		return true
	})
	for _, req := range required {
		if !covered[req] {
			pass.Reportf(ts.Pos(), "dispatch type switch has no case for %s.%s; the API decodes but is never served", wirePkg.Name(), req.Name())
		}
	}
}

// importedWire finds the imported package that defines the wire protocol
// (package name "wire" with an ErrorCode type).
func importedWire(pass *analysis.Pass) *types.Package {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "wire" && imp.Scope().Lookup("ErrorCode") != nil {
			return imp
		}
	}
	return nil
}

// requestTypes returns wire's exported *Request message types in a
// stable order.
func requestTypes(wirePkg *types.Package) []types.Object {
	scope := wirePkg.Scope()
	msg, _ := scope.Lookup("Message").(*types.TypeName)
	var msgIface *types.Interface
	if msg != nil {
		msgIface, _ = msg.Type().Underlying().(*types.Interface)
	}
	var out []types.Object
	for _, name := range scope.Names() {
		if !strings.HasSuffix(name, "Request") || name == "RequestHeader" {
			continue
		}
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
			continue
		}
		if msgIface != nil && !types.Implements(types.NewPointer(tn.Type()), msgIface) {
			continue
		}
		out = append(out, tn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

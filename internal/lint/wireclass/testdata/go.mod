module wireclassdata

go 1.24

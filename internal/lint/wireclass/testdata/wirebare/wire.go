// Package wire (bare variant): the classification tables are missing
// entirely, which is reported once at the type.
package wire

// ErrorCode is the protocol error code.
type ErrorCode int16 // want `must classify every ErrorCode in a package-level .retriable. map literal` `must register every ErrorCode message in a package-level .errorNames. map literal`

// Codes.
const (
	ErrNone ErrorCode = 0
)

// Package wire (bad variant): constants exist that the classification
// tables and switches do not cover.
package wire

// ErrorCode is the protocol error code.
type ErrorCode int16

// Codes.
const (
	ErrNone ErrorCode = 0
	ErrBoom ErrorCode = 1
	ErrLost ErrorCode = 2 // want `ErrLost has no registered message in errorNames` `ErrLost is not classified in the retriable table`
)

var errorNames = map[ErrorCode]string{
	ErrNone: "none",
	ErrBoom: "boom",
}

var retriable = map[ErrorCode]bool{
	ErrNone: false,
	ErrBoom: true,
}

// Retriable reports retry semantics from the table.
func (e ErrorCode) Retriable() bool { return retriable[e] }

// String names the code.
func (e ErrorCode) String() string { return errorNames[e] }

// APIKey identifies a request type.
type APIKey int16

// APIs.
const (
	APIPing   APIKey = 0
	APIBounce APIKey = 1 // want `APIBounce has no case in APIKey\.String` `APIBounce has no case in NewRequestBody`
)

// String is the per-API metrics label.
func (k APIKey) String() string {
	switch k {
	case APIPing:
		return "ping"
	}
	return "api-?"
}

// Message is a wire message.
type Message interface{ Encode() }

// PingRequest is dispatched.
type PingRequest struct{}

func (*PingRequest) Encode() {}

// BounceRequest is decodable but unclassified.
type BounceRequest struct{}

func (*BounceRequest) Encode() {}

// NewRequestBody allocates the body for an API.
func NewRequestBody(api APIKey) (Message, bool) {
	switch api {
	case APIPing:
		return &PingRequest{}, true
	}
	return nil, false
}

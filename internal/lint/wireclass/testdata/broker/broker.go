// Package broker exercises the //wireclass:dispatch exhaustiveness check
// against the good wire package.
package broker

import wire "wireclassdata/wireok"

// Bad: the marked dispatch switch serves Ping but not Bounce.
func dispatchBad(body wire.Message) string {
	//wireclass:dispatch
	switch body.(type) { // want `dispatch type switch has no case for wire\.BounceRequest`
	case *wire.PingRequest:
		return "ping"
	}
	return ""
}

// Good: every request type has a case.
func dispatchGood(body wire.Message) string {
	//wireclass:dispatch
	switch body.(type) {
	case *wire.PingRequest:
		return "ping"
	case *wire.BounceRequest:
		return "bounce"
	}
	return ""
}

// Unmarked switches are not dispatch switches and stay unchecked.
func classify(body wire.Message) string {
	switch body.(type) {
	case *wire.PingRequest:
		return "ping"
	}
	return "other"
}

// Package wire (good variant): everything classified, no findings.
package wire

// ErrorCode is the protocol error code.
type ErrorCode int16

// Codes.
const (
	ErrNone ErrorCode = 0
	ErrBoom ErrorCode = 1
)

var errorNames = map[ErrorCode]string{
	ErrNone: "none",
	ErrBoom: "boom",
}

var retriable = map[ErrorCode]bool{
	ErrNone: false,
	ErrBoom: true,
}

// Retriable reports retry semantics from the table.
func (e ErrorCode) Retriable() bool { return retriable[e] }

// String names the code.
func (e ErrorCode) String() string { return errorNames[e] }

// APIKey identifies a request type.
type APIKey int16

// APIs.
const (
	APIPing   APIKey = 0
	APIBounce APIKey = 1
)

// String is the per-API metrics label.
func (k APIKey) String() string {
	switch k {
	case APIPing:
		return "ping"
	case APIBounce:
		return "bounce"
	}
	return "api-?"
}

// Message is a wire message.
type Message interface{ Encode() }

// PingRequest pings.
type PingRequest struct{}

func (*PingRequest) Encode() {}

// BounceRequest bounces.
type BounceRequest struct{}

func (*BounceRequest) Encode() {}

// RequestHeader is not a message type and is exempt from dispatch.
type RequestHeader struct{}

// NewRequestBody allocates the body for an API.
func NewRequestBody(api APIKey) (Message, bool) {
	switch api {
	case APIPing:
		return &PingRequest{}, true
	case APIBounce:
		return &BounceRequest{}, true
	}
	return nil, false
}

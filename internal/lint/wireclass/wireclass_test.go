package wireclass_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wireclass"
)

func TestWireClass(t *testing.T) {
	analysistest.Run(t, "testdata", wireclass.Analyzer)
}

package multichecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// vetConfig is the JSON the go command writes for each package when the
// binary is used as `go vet -vettool=...`. Field names and semantics
// follow x/tools' unitchecker protocol; fields this driver does not need
// are omitted (unknown JSON keys are ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standalone                bool
	SucceedOnTypecheckFailure bool
	VetxOnly                  bool
	VetxOutput                string
}

// unitchecker analyzes the single package described by cfgPath and exits.
// Diagnostics go to stderr in file:line:col form; exit status 2 signals
// findings to the go command. The facts file (VetxOutput) is always
// written — empty, since these analyzers are fact-free — because the go
// command treats a missing output as a tool failure.
func unitchecker(cfgPath string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: the go command only wants facts, and this
		// suite has none.
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	info := loader.NewInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: tpkg, Info: info}
	diags, err := unit.Run(analyzers)
	if err != nil {
		fatalf("%s: %v", cfg.ImportPath, err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "liquid-vet: "+format+"\n", args...)
	os.Exit(1)
}

// Package multichecker drives a set of analysis.Analyzers from a command
// line. It supports two modes:
//
//   - Standalone: `liquid-vet [packages]` loads the packages (default
//     ./...) via the loader and prints findings. Exit status 1 if any.
//   - Vet tool: `go vet -vettool=$(which liquid-vet) ./...`. The go
//     command drives the tool once per package with a JSON config file
//     (the unitchecker protocol); see unitchecker.go.
//
// This mirrors x/tools' multichecker+unitchecker pair, reimplemented on
// the standard library because the build environment is offline.
package multichecker

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Main runs the analyzers according to os.Args and exits.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// go vet protocol: version probe (build cache key) and flag probe.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("%s version v1.0.0\n", progname)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool-specific flags are exposed to the go command.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		unitchecker(args[len(args)-1], analyzers)
		return
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [-only name,...] [packages]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		os.Exit(0)
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "%s: no analyzer matches -only=%s\n", progname, *only)
			os.Exit(2)
		}
		analyzers = filtered
	}

	pkgs, err := loader.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	found := false
	for _, pkg := range pkgs {
		unit := &analysis.Unit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		diags, err := unit.Run(analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, pkg.PkgPath, err)
			os.Exit(2)
		}
		for _, d := range diags {
			found = true
			pos := pkg.Fset.Position(d.Pos)
			name := pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if found {
		os.Exit(1)
	}
}

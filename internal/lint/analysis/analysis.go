// Package analysis is a minimal, dependency-free implementation of the
// golang.org/x/tools/go/analysis API surface that liquid-vet needs. The
// container this repo builds in has no module proxy access and x/tools is
// not vendored, so the framework is reimplemented on the standard library
// (go/ast, go/types) with the same shapes — Analyzer, Pass, Diagnostic —
// so the analyzers port to the real framework unchanged if the dependency
// ever becomes available.
//
// Deliberate differences from x/tools:
//
//   - No Facts: every analyzer here is package-local by design. Cross-
//     package knowledge comes from type information of imported packages
//     (e.g. wireclass enumerates wire's exported request types through the
//     broker package's import graph), never from serialized facts.
//   - No ResultOf/Requires: the analyzers are independent.
//   - Test files are excluded from analysis (but included in type
//     checking): the invariants enforced here are production-code
//     invariants, and white-box tests legitimately break several of them
//     (unlocked field access in single-threaded tests, tmp renames without
//     fsync in fixtures, real clocks in benchmarks).
//   - Suppression is a single uniform mechanism: a "//lint:ignore <name>
//     <reason>" comment on the reported line or the line above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant, why it holds,
	// and how to suppress a finding.
	Doc string
	// Run reports violations via pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's worth of parsed+typed code to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test files. AllFiles additionally
	// includes _test.go files for the rare analyzer that wants them.
	Files    []*ast.File
	AllFiles []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Unit is one package ready to be analyzed. Drivers (multichecker,
// analysistest) construct a Unit and call Run.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File // all parsed files, test files included
	Pkg   *types.Package
	Info  *types.Info
}

// Run executes the analyzers over the unit, applies //lint:ignore
// filtering, and returns the surviving diagnostics sorted by position.
func (u *Unit) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var nonTest []*ast.File
	for _, f := range u.Files {
		if !strings.HasSuffix(u.Fset.File(f.Pos()).Name(), "_test.go") {
			nonTest = append(nonTest, f)
		}
	}
	ignore := buildIgnoreIndex(u.Fset, u.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    nonTest,
			AllFiles: u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			if !ignore.ignored(u.Fset, name, d.Pos) {
				out = append(out, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := u.Fset.Position(out[i].Pos), u.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// ignoreRe matches "//lint:ignore <analyzer> <reason>". The reason is
// required: a suppression without a recorded why is convention drift, the
// exact thing this suite exists to stop.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)

type ignoreIndex struct {
	// byFile maps filename -> line -> analyzer names suppressed there.
	byFile map[string]map[int][]string
}

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	ix := &ignoreIndex{byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ix.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					ix.byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], m[1])
			}
		}
	}
	return ix
}

// ignored reports whether a directive for the analyzer sits on the
// diagnostic's line or the line immediately above it.
func (ix *ignoreIndex) ignored(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := ix.byFile[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "*" {
				return true
			}
		}
	}
	return false
}

// IsPkgCall reports whether call is a call of the form pkg.Name(...) where
// pkg resolves to an imported package with the given import path, and
// returns the selected function name.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

package commitdiscipline_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/commitdiscipline"
)

func TestCommitDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", commitdiscipline.Analyzer)
}

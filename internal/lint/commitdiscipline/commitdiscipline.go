// Package commitdiscipline enforces the tmp+sync+rename commit pattern.
//
// Every durable artifact in this stack — WAL checkpoints, producer-state
// snapshots, tier/archive manifests, the dfs fsimage, state-store runs —
// is committed by writing a temporary file and atomically renaming it
// into place. The atomicity of os.Rename is only half the contract: if
// the tmp file's data is not fsynced before the rename, a crash after
// the rename can leave the *committed* name pointing at empty or torn
// bytes, which recovery then trusts. The pattern is copy-pasted across
// packages and was unverifiable by review; this analyzer machine-checks
// it.
//
// Rule: a call to os.Rename must be preceded, earlier in the same
// function, by a File.Sync call (any *.Sync() method call) or a call to
// a helper whose name contains "sync" (writeFileSync, fdatasync, ...).
// Renames that genuinely need no durability (renaming inside a directory
// that is rebuilt from scratch on crash) are suppressed with
// "//lint:ignore commitdiscipline <reason>".
package commitdiscipline

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "commitdiscipline",
	Doc:  "os.Rename commits must be preceded by a Sync of the tmp file (tmp+sync+rename)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// First pass: positions of all sync-ish calls in the function,
	// including inside closures (a deferred cleanup that syncs still
	// counts as establishing the discipline textually before the
	// rename).
	var syncs []token.Pos
	var renames []*ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := analysis.IsPkgCall(pass.Info, call, "os"); ok && name == "Rename" {
			renames = append(renames, call)
			return true
		}
		if isSyncish(call) {
			syncs = append(syncs, call.Pos())
		}
		return true
	})
	for _, rename := range renames {
		ok := false
		for _, s := range syncs {
			if s < rename.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(rename.Pos(),
				"os.Rename commit without a preceding Sync in this function; fsync the tmp file before the rename (tmp+sync+rename) so a crash cannot commit torn bytes")
		}
	}
}

// isSyncish reports whether the call looks like it makes bytes durable: a
// .Sync() method call, or any function/method whose name mentions sync.
func isSyncish(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	return name == "Sync" || strings.Contains(strings.ToLower(name), "sync")
}

// Package commit exercises the tmp+sync+rename commit discipline.
package commit

import (
	"os"
	"path/filepath"
)

// Bad: WriteFile leaves the data in the page cache; the rename can
// commit torn bytes after a crash.
func commitUnsynced(dir string, data []byte) error {
	tmp := filepath.Join(dir, "manifest.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest")) // want `os\.Rename commit without a preceding Sync`
}

// Good: explicit open, write, fsync, close, rename.
func commitSynced(dir string, data []byte) error {
	tmp := filepath.Join(dir, "manifest.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest"))
}

// Good: durability delegated to a helper whose name says it syncs.
func commitViaHelper(dir string, data []byte) error {
	tmp := filepath.Join(dir, "manifest.tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "manifest"))
}

func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// A rename that needs no durability is suppressed with a reason.
func shuffleScratch(dir string) error {
	//lint:ignore commitdiscipline scratch dir is rebuilt from scratch on crash
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
}

module commitdata

go 1.24

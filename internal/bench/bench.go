// Package bench implements the experiment harness: one function per
// experiment (E1–E16), each reproducing a claim of the paper as a
// measurable table and as machine-readable Results (WriteJSON emits
// BENCH_<exp>.json so the performance trajectory is tracked across PRs).
// cmd/liquid-bench runs them from the command line; bench_test.go wraps
// them as testing.B benchmarks. Absolute numbers depend on the machine;
// the reproduction target is the shape — who wins, by what magnitude,
// where the crossovers fall.
package bench

import (
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test
	Headers []string
	Rows    [][]string
	Notes   []string
	// Results are the machine-readable measurements behind the rows; see
	// WriteJSON. Experiments populate them where the numbers are tracked
	// across PRs.
	Results []Result
}

// Render formats the table for terminals and EXPERIMENTS.md.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale selects experiment sizing: Quick keeps every experiment under a
// few seconds for CI; Full uses the sizes recorded in EXPERIMENTS.md.
type Scale struct {
	Quick bool
}

// pick returns quick or full depending on the scale.
func (s Scale) pick(quick, full int) int {
	if s.Quick {
		return quick
	}
	return full
}

// quietLogger discards routine broker chatter during experiments.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
}

// newStack boots an experiment stack.
func newStack(brokers int, mutate func(*core.Config)) (*core.Stack, error) {
	cfg := core.Config{
		Brokers:        brokers,
		SessionTimeout: 750 * time.Millisecond,
		Logger:         quietLogger(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Start(cfg)
}

// produceValues publishes n messages of size valueBytes, round-robin keyed
// by keyspace (0 = unkeyed), returning when all are flushed.
func produceValues(s *core.Stack, topic string, n, valueBytes, keyspace int, acks int16) error {
	p := s.NewProducer(client.ProducerConfig{Acks: acks, BatchBytes: 256 << 10})
	defer p.Close()
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < n; i++ {
		msg := client.Message{Topic: topic, Value: value}
		if keyspace > 0 {
			msg.Key = []byte(fmt.Sprintf("key-%d", i%keyspace))
		}
		if err := p.Send(msg); err != nil {
			return err
		}
	}
	return p.Flush()
}

// consumeCount reads messages from all partitions until n arrive or the
// deadline passes, returning the count.
func consumeCount(s *core.Stack, topic string, partitions int32, n int, timeout time.Duration) (int, error) {
	cons := s.NewConsumer(client.ConsumerConfig{})
	defer cons.Close()
	for p := int32(0); p < partitions; p++ {
		if err := cons.Assign(topic, p, client.StartEarliest); err != nil {
			return 0, err
		}
	}
	got := 0
	deadline := time.Now().Add(timeout)
	for got < n && time.Now().Before(deadline) {
		msgs, err := cons.Poll(200 * time.Millisecond)
		if err != nil {
			continue
		}
		got += len(msgs)
	}
	return got, nil
}

// durations summarises a latency sample set.
type durations []time.Duration

func (d durations) sortCopy() durations {
	c := append(durations(nil), d...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

// p returns the q-quantile (0..1).
func (d durations) p(q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	c := d.sortCopy()
	idx := int(q * float64(len(c)-1))
	return c[idx]
}

func (d durations) mean() time.Duration {
	if len(d) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d {
		sum += v
	}
	return sum / time.Duration(len(d))
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// mbPerSec renders bytes/duration as MB/s.
func mbPerSec(bytes int64, d time.Duration) string {
	if d == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(bytes)/d.Seconds()/(1<<20))
}

// All runs every experiment at the given scale.
func All(scale Scale) []Table {
	return []Table{
		E1PipelineLatency(scale),
		E2ThroughputVsLogSize(scale),
		E3AntiCaching(scale),
		E4Compaction(scale),
		E5Incremental(scale),
		E6Failover(scale),
		E7AcksTradeoff(scale),
		E8Isolation(scale),
		E9ConsumerGroups(scale),
		E10Decoupling(scale),
		E11ManyTopics(scale),
		E12UseCases(scale),
		E13StateRecovery(scale),
		E14ArchiveExport(scale),
		E15ArchiveScan(scale),
		E16Compression(scale),
		E17Availability(scale),
		E18RewindScan(scale),
		E19NoisyNeighbor(scale),
		E20Durability(scale),
		E22TableReads(scale),
		E24IdempotenceOverhead(scale),
		E25ObservabilityOverhead(scale),
	}
}

// ByID returns the experiment runner for an id like "E7".
func ByID(id string) (func(Scale) Table, bool) {
	m := map[string]func(Scale) Table{
		"E1":  E1PipelineLatency,
		"E2":  E2ThroughputVsLogSize,
		"E3":  E3AntiCaching,
		"E4":  E4Compaction,
		"E5":  E5Incremental,
		"E6":  E6Failover,
		"E7":  E7AcksTradeoff,
		"E8":  E8Isolation,
		"E9":  E9ConsumerGroups,
		"E10": E10Decoupling,
		"E11": E11ManyTopics,
		"E12": E12UseCases,
		"E13": E13StateRecovery,
		"E14": E14ArchiveExport,
		"E15": E15ArchiveScan,
		"E16": E16Compression,
		"E17": E17Availability,
		"E18": E18RewindScan,
		"E19": E19NoisyNeighbor,
		"E20": E20Durability,
		"E22": E22TableReads,
		"E24": E24IdempotenceOverhead,
		"E25": E25ObservabilityOverhead,
	}
	f, ok := m[strings.ToUpper(id)]
	return f, ok
}

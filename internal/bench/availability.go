package bench

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
)

// E17Availability measures what §4.3's fault tolerance costs and buys:
// acks=all produce latency (p50/p99) on a healthy replicated partition,
// the time-to-recover when the partition leader is forcibly killed, produce
// latency through the failover window, and — the invariant the design
// exists for — zero acknowledged records lost across the hand-over. The
// stack runs on the chaos transport (internal/chaos) end to end, so the
// numbers include the injectable network path the failure suite uses.
func E17Availability(scale Scale) Table {
	t := Table{
		ID:      "E17",
		Title:   "availability: produce latency and time-to-recover across leader failover",
		Claim:   "§4.3: a hand-over process selects a new leader among the followers; committed data survives and service resumes within the liveness-detection window",
		Headers: []string{"phase", "produces", "p50 ms", "p99 ms"},
	}
	const sessionTimeout = 750 * time.Millisecond
	net := chaos.NewNetwork(17)
	s, err := core.Start(core.Config{
		Brokers:        3,
		SessionTimeout: sessionTimeout,
		Chaos:          net,
		Logger:         quietLogger(),
	})
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	defer s.Shutdown()
	const topic = "avail"
	if err := s.CreateFeed(topic, 1, 3); err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	p := s.NewProducer(client.ProducerConfig{Acks: client.AcksAll})
	defer p.Close()

	n := scale.pick(150, 600)
	var acked []string
	producePhase := func(phase string) (durations, time.Duration) {
		var lat durations
		start := time.Now()
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("%s-%06d", phase, i)
			t0 := time.Now()
			if _, err := p.SendSync(client.Message{Topic: topic, Key: []byte("k"), Value: []byte(v)}); err == nil {
				lat = append(lat, time.Since(t0))
				acked = append(acked, v)
			}
		}
		return lat, time.Since(start)
	}

	healthy, healthyDur := producePhase("healthy")

	// Force the failover: crash the leader, then hammer produces until one
	// succeeds — that first success marks recovery (§4.3's hand-over is
	// bounded below by the session-liveness window).
	leader, err := s.Client().LeaderFor(topic, 0)
	if err != nil {
		t.Notes = append(t.Notes, "failed: "+err.Error())
		return t
	}
	killAt := time.Now()
	s.KillBroker(leader)
	failedAttempts := 0
	var ttr time.Duration
	for {
		v := fmt.Sprintf("failover-%06d", failedAttempts)
		if _, err := p.SendSync(client.Message{Topic: topic, Key: []byte("k"), Value: []byte(v)}); err == nil {
			ttr = time.Since(killAt)
			acked = append(acked, v)
			break
		}
		failedAttempts++
		if time.Since(killAt) > 60*time.Second {
			t.Notes = append(t.Notes, "failed: cluster never recovered")
			return t
		}
	}

	recovered, recoveredDur := producePhase("post-failover")

	// The §4.3 invariant: every acknowledged record survives the failover.
	lost := countLost(s, topic, acked)

	t.Rows = append(t.Rows,
		[]string{"healthy (acks=all)", fmt.Sprint(len(healthy)), ms(healthy.p(0.5)), ms(healthy.p(0.99))},
		[]string{"post-failover", fmt.Sprint(len(recovered)), ms(recovered.p(0.5)), ms(recovered.p(0.99))},
	)
	t.Results = append(t.Results,
		Result{
			Name:          "healthy",
			RecordsPerSec: float64(len(healthy)) / healthyDur.Seconds(),
			P50Ms:         float64(healthy.p(0.5)) / float64(time.Millisecond),
			P99Ms:         float64(healthy.p(0.99)) / float64(time.Millisecond),
		},
		Result{
			Name:          "post-failover",
			RecordsPerSec: float64(len(recovered)) / recoveredDur.Seconds(),
			P50Ms:         float64(recovered.p(0.5)) / float64(time.Millisecond),
			P99Ms:         float64(recovered.p(0.99)) / float64(time.Millisecond),
		},
		Result{
			Name: "failover",
			Extra: map[string]string{
				"time_to_recover_ms": fmt.Sprintf("%.1f", float64(ttr)/float64(time.Millisecond)),
				"session_timeout_ms": fmt.Sprintf("%.0f", float64(sessionTimeout)/float64(time.Millisecond)),
				"failed_attempts":    fmt.Sprint(failedAttempts),
				"acked_records":      fmt.Sprint(len(acked)),
				"acked_records_lost": fmt.Sprint(lost),
				"killed_leader":      fmt.Sprint(leader),
				"chaos_network_seed": fmt.Sprint(net.Seed()),
			},
		},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("time-to-recover %s after leader kill (session timeout %s, %d failed attempts); %d/%d acked records survived",
			ttr.Round(time.Millisecond), sessionTimeout, failedAttempts, len(acked)-lost, len(acked)),
		"expected shape: TTR ≈ session timeout + election; p99 recovers to healthy levels; zero acked loss")
	return t
}

// countLost scans the partition (via the chaos harness's canonical scan,
// which surfaces a stalled read as an error instead of undercounting) and
// returns how many acked values are missing.
func countLost(s *core.Stack, topic string, acked []string) int {
	scan, err := chaos.ScanFeed(s.Client(), topic, 1, 30*time.Second)
	if err != nil {
		return len(acked) // unscannable feed: report everything as at risk
	}
	lost := 0
	for _, v := range acked {
		if scan.Values[v] == 0 {
			lost++
		}
	}
	return lost
}

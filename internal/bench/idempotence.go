package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

// E24IdempotenceOverhead measures what exactly-once produce costs: the same
// concurrent acked workload as E20's produce side, run with producer
// idempotence on (the default — every batch stamped with producer id,
// epoch and base sequence; the broker checks and feeds its per-partition
// dedup table on every append) and off (DisableIdempotence). No modeled
// disk barrier is attached: under the default OS-flush policy the produce
// path is CPU-bound, which is the worst case for the dedup bookkeeping —
// any table cost shows up directly instead of hiding behind an fsync.
//
// The reproduction target: the stamped path stays within 5% of the
// unstamped path. The dedup check is a bounded ring walk under the log
// lock and the stamp itself is 20 bytes written outside the CRC, so the
// acked-dup guarantee (no duplicates even for acks lost to a failover)
// should be close to free.
func E24IdempotenceOverhead(scale Scale) Table {
	t := Table{
		ID:      "E24",
		Title:   "Idempotent produce overhead: stamped batches + broker dedup table vs plain produce",
		Claim:   "closing the acks=all resend-duplicate window with producer epochs and sequence dedup costs <5% produce throughput",
		Headers: []string{"configuration", "records", "MB/s", "krec/s", "errors"},
	}

	const (
		valueBytes = 1 << 10
		producers  = 12
	)
	n := scale.pick(1800, 24000)

	cases := []struct {
		name    string
		disable bool
	}{
		{"produce/idempotence-off", true},
		{"produce/idempotent", false},
	}
	mbps := make(map[string]float64, len(cases))
	for _, c := range cases {
		s, err := newStack(1, nil)
		if err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		topic := "e24-produce"
		if err := s.CreateFeed(topic, 1, 1); err != nil {
			s.Shutdown()
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		value := make([]byte, valueBytes)
		for i := range value {
			value[i] = byte('a' + i%26)
		}
		perProducer := n / producers
		var wg sync.WaitGroup
		var sendErrs atomic.Int64
		start := time.Now()
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prod := s.NewProducer(client.ProducerConfig{
					Acks:               1,
					BatchBytes:         128 << 10,
					DisableIdempotence: c.disable,
				})
				defer prod.Close()
				for i := 0; i < perProducer; i++ {
					if err := prod.Send(client.Message{Topic: topic, Value: value}); err != nil {
						sendErrs.Add(1)
						return
					}
				}
				if err := prod.Flush(); err != nil {
					sendErrs.Add(1)
				}
			}()
		}
		wg.Wait()
		dur := time.Since(start)
		s.Shutdown()
		produced := int64(perProducer*producers) * valueBytes
		rate := float64(produced) / dur.Seconds() / (1 << 20)
		mbps[c.name] = rate
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(perProducer * producers), fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%.1f", float64(perProducer*producers)/dur.Seconds()/1e3),
			fmt.Sprint(sendErrs.Load()),
		})
		t.Results = append(t.Results, Result{
			Name:          c.name,
			RecordsPerSec: float64(perProducer*producers) / dur.Seconds(),
			MBPerSec:      rate,
			Extra: map[string]string{
				"acked_records":      fmt.Sprint(perProducer * producers),
				"concurrent_senders": fmt.Sprint(producers),
				"producer_errors":    fmt.Sprint(sendErrs.Load()),
			},
		})
	}
	if off, on := mbps["produce/idempotence-off"], mbps["produce/idempotent"]; off > 0 && on > 0 {
		overhead := (off - on) / off * 100
		t.Results[len(t.Results)-1].Extra["overhead_pct_vs_off"] = fmt.Sprintf("%.1f", overhead)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"idempotent produce overhead: %.1f%% vs idempotence-off (target < 5%%; negative means within noise)", overhead))
	}
	t.Notes = append(t.Notes,
		"both runs use 12 concurrent acks=1 producers, 1 KiB values, one partition, OS-flush durability — CPU-bound, the worst case for per-append dedup bookkeeping")
	return t
}

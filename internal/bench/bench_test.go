package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "a claim",
		Headers: []string{"col-a", "b"},
		Rows:    [][]string{{"1", "longer-cell"}, {"22", "x"}},
		Notes:   []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"EX — demo", "claim: a claim", "col-a", "longer-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Columns align: both rows render the first cell padded to width 5.
	if !strings.Contains(out, "1      longer-cell") {
		t.Fatalf("column padding wrong:\n%s", out)
	}
}

func TestByIDKnowsAllExperiments(t *testing.T) {
	for _, id := range []string{"E1", "e2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E22", "E24", "E25"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%s) unknown", id)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestScalePick(t *testing.T) {
	if (Scale{Quick: true}).pick(1, 2) != 1 || (Scale{}).pick(1, 2) != 2 {
		t.Fatal("pick wrong")
	}
}

func TestDurationsStats(t *testing.T) {
	d := durations{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	if d.p(0) != time.Millisecond || d.p(1) != 3*time.Millisecond {
		t.Fatalf("quantiles wrong: %v %v", d.p(0), d.p(1))
	}
	if d.mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", d.mean())
	}
	var empty durations
	if empty.p(0.5) != 0 || empty.mean() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestFormatters(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.50" {
		t.Fatalf("ms = %q", ms(1500*time.Microsecond))
	}
	if mbPerSec(2<<20, time.Second) != "2.0" {
		t.Fatalf("mbPerSec = %q", mbPerSec(2<<20, time.Second))
	}
	if mbPerSec(1, 0) != "inf" {
		t.Fatal("zero-duration rate should be inf")
	}
}

// TestE2SmokeShape runs the cheapest experiment end to end and sanity
// checks its output shape; the full suite runs via bench_test.go at the
// repository root and cmd/liquid-bench.
func TestE2SmokeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := E2ThroughputVsLogSize(Scale{Quick: true})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v (notes %v)", tab.Rows, tab.Notes)
	}
	for _, row := range tab.Rows {
		if len(row) != 3 || row[1] == "" || row[2] == "" {
			t.Fatalf("malformed row %v", row)
		}
	}
}

package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// E25ObservabilityOverhead measures what the PR-9 ops plane costs on the
// hot path: the same concurrent acked produce workload as E24 plus a full
// read-back, run with instrumentation on (the default — every request
// timed into per-API histogram families, client-side e2e latency tracing,
// the 1s gauge exporter tick, and a live /metrics+pprof HTTP server) and
// off (DisableInstrumentation, no ops server). OS-flush durability keeps
// the path CPU-bound, the worst case for per-request bookkeeping.
//
// The reproduction target: instrumentation stays within 3% on both the
// produce and consume side. The design that makes this plausible: metric
// families are pre-resolved at startup so a request records via one
// read-locked map hit plus atomic adds, and the gauge families that walk
// broker state are rebuilt by a once-per-second tick, never per request
// or per scrape.
func E25ObservabilityOverhead(scale Scale) Table {
	t := Table{
		ID:      "E25",
		Title:   "Observability overhead: full request-path instrumentation + ops server vs bare broker",
		Claim:   "per-API latency/bytes/error families, e2e tracing and the /metrics exporter cost <3% end-to-end throughput",
		Headers: []string{"configuration", "records", "produce MB/s", "consume MB/s", "errors"},
	}

	const (
		valueBytes = 1 << 10
		producers  = 12
	)
	n := scale.pick(1800, 24000)
	// One read of the feed finishes in tens of milliseconds — far too
	// short to price a per-record cost. The consume side is measured
	// over repeated full read-backs so scheduler jitter and the 1s gauge
	// tick average out.
	readPasses := scale.pick(2, 8)

	cases := []struct {
		name    string
		disable bool
	}{
		{"instrumentation-off", true},
		{"instrumented", false},
	}
	produceMBps := make(map[string]float64, len(cases))
	consumeMBps := make(map[string]float64, len(cases))
	for _, c := range cases {
		s, err := newStack(1, func(cfg *core.Config) {
			cfg.DisableInstrumentation = c.disable
			if !c.disable {
				// The instrumented run carries a live ops server so the
				// scrape surface (HTTP listener, registered pprof mux)
				// is part of what is being priced, not just the counters.
				cfg.OpsAddr = "127.0.0.1:0"
			}
		})
		if err != nil {
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		topic := "e25-feed"
		if err := s.CreateFeed(topic, 1, 1); err != nil {
			s.Shutdown()
			t.Notes = append(t.Notes, "failed: "+err.Error())
			return t
		}
		value := make([]byte, valueBytes)
		for i := range value {
			value[i] = byte('a' + i%26)
		}
		perProducer := n / producers
		total := perProducer * producers
		var wg sync.WaitGroup
		var sendErrs atomic.Int64
		start := time.Now()
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				prod := s.NewProducer(client.ProducerConfig{
					Acks:       1,
					BatchBytes: 128 << 10,
				})
				defer prod.Close()
				for i := 0; i < perProducer; i++ {
					if err := prod.Send(client.Message{Topic: topic, Value: value}); err != nil {
						sendErrs.Add(1)
						return
					}
				}
				if err := prod.Flush(); err != nil {
					sendErrs.Add(1)
				}
			}()
		}
		wg.Wait()
		produceDur := time.Since(start)

		start = time.Now()
		got := 0
		var consumeErr error
		for pass := 0; pass < readPasses; pass++ {
			var g int
			if g, consumeErr = consumeCount(s, topic, 1, total, 60*time.Second); consumeErr != nil {
				break
			}
			got += g
		}
		consumeDur := time.Since(start)
		s.Shutdown()
		if consumeErr != nil {
			t.Notes = append(t.Notes, "failed: "+consumeErr.Error())
			return t
		}

		produceRate := float64(total) * valueBytes / produceDur.Seconds() / (1 << 20)
		consumeRate := float64(got) * valueBytes / consumeDur.Seconds() / (1 << 20)
		produceMBps[c.name] = produceRate
		consumeMBps[c.name] = consumeRate
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(total), fmt.Sprintf("%.1f", produceRate),
			fmt.Sprintf("%.1f", consumeRate), fmt.Sprint(sendErrs.Load()),
		})
		t.Results = append(t.Results, Result{
			Name:          c.name,
			RecordsPerSec: float64(total) / produceDur.Seconds(),
			MBPerSec:      produceRate,
			Extra: map[string]string{
				"acked_records":      fmt.Sprint(total),
				"consumed_records":   fmt.Sprint(got),
				"read_passes":        fmt.Sprint(readPasses),
				"consume_mb_per_sec": fmt.Sprintf("%.1f", consumeRate),
				"concurrent_senders": fmt.Sprint(producers),
				"producer_errors":    fmt.Sprint(sendErrs.Load()),
			},
		})
	}
	if off, on := produceMBps["instrumentation-off"], produceMBps["instrumented"]; off > 0 && on > 0 {
		overhead := (off - on) / off * 100
		t.Results[len(t.Results)-1].Extra["produce_overhead_pct_vs_off"] = fmt.Sprintf("%.1f", overhead)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"produce overhead: %.1f%% vs instrumentation-off (target < 3%%; negative means within noise)", overhead))
	}
	if off, on := consumeMBps["instrumentation-off"], consumeMBps["instrumented"]; off > 0 && on > 0 {
		overhead := (off - on) / off * 100
		t.Results[len(t.Results)-1].Extra["consume_overhead_pct_vs_off"] = fmt.Sprintf("%.1f", overhead)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"consume overhead: %.1f%% vs instrumentation-off (target < 3%%; negative means within noise)", overhead))
	}
	t.Notes = append(t.Notes,
		"both runs use 12 concurrent acks=1 producers then repeated full read-backs, 1 KiB values, one partition, OS-flush durability; the instrumented run also serves /metrics+pprof and runs the 1s gauge exporter tick")
	return t
}
